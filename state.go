package midas

import (
	"fmt"
	"io"
	"math"

	"midas/internal/binio"
	"midas/internal/dict"
	"midas/internal/fact"
	"midas/internal/idset"
	"midas/internal/kb"
)

// Session state block ("MSS1"): the ID-faithful serialization of a
// session's KB and corpus, written into durability snapshots by
// internal/store. Unlike the public SaveBinary formats — which emit
// only the strings a structure uses and remap IDs on load — the state
// block serializes the interning dictionaries verbatim in ID order,
// then the KB triples and corpus facts as raw IDs with exact float32
// confidence bits, plus the KB mutation epoch. That exactness is the
// point: Fingerprint hashes interned IDs and the epoch, and slice
// entity order derives from ID order, so a session restored from a
// state block is fingerprint- and slice-identical to the one that
// wrote it — including for the mutations replayed on top of it from a
// write-ahead log, which re-intern into identical IDs.
//
// Layout, all binio varints:
//
//	"MSS1"
//	4 × dictionary (subjects, predicates, objects, URLs): count, strings
//	KB triple count, triples sorted by (S,P,O) — S delta-encoded, P, O
//	KB epoch
//	corpus fact count, facts in order: S, P, O, URL, Float32bits(conf)
const stateMagic = "MSS1"

// WriteState serializes the session's discovery-relevant state (KB,
// corpus, dictionaries, epoch). It holds the session read lock:
// concurrent discoveries proceed, mutations wait.
func (s *Session) WriteState(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := binio.NewWriter(w)
	bw.Magic(stateMagic)
	space := s.kb.store.Space()
	for _, d := range []*dict.Dict{space.Subjects, space.Predicates, space.Objects, s.corpus.c.URLs} {
		strs := d.Strings()
		bw.Int(len(strs))
		for _, str := range strs {
			bw.String(str)
		}
	}
	triples := s.kb.store.Triples()
	bw.Int(len(triples))
	var prevS uint64
	for i, t := range triples {
		// Sorted by subject first, so S is non-decreasing and
		// delta-encodes cheaply (same trick as the public KB binary).
		sID := uint64(uint32(t.S))
		if i == 0 {
			bw.Uvarint(sID)
		} else {
			bw.Uvarint(sID - prevS)
		}
		prevS = sID
		bw.Uvarint(uint64(uint32(t.P)))
		bw.Uvarint(uint64(uint32(t.O)))
	}
	bw.Uvarint(s.kb.store.Epoch())
	facts := s.corpus.c.Facts
	bw.Int(len(facts))
	for _, e := range facts {
		bw.Uvarint(uint64(uint32(e.Triple.S)))
		bw.Uvarint(uint64(uint32(e.Triple.P)))
		bw.Uvarint(uint64(uint32(e.Triple.O)))
		bw.Uvarint(uint64(uint32(e.URL)))
		bw.Uvarint(uint64(math.Float32bits(e.Conf)))
	}
	return bw.Flush()
}

// ReadState reconstructs a session from a state block written by
// WriteState, with the given discovery options (nil = defaults). The
// restored session is fingerprint-identical to the writer; it holds no
// incremental-discovery prior, so its next discovery runs from scratch
// — which the incremental path guarantees is result-identical.
func ReadState(r io.Reader, opts *Options) (*Session, error) {
	br := binio.NewReader(r)
	br.Magic(stateMagic)

	readDict := func(d *dict.Dict, what string) error {
		n := br.Int()
		if err := br.Err(); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			str := br.String()
			if err := br.Err(); err != nil {
				return err
			}
			if d.Put(str) != dict.ID(i) {
				return fmt.Errorf("%w: duplicate %s string %q", binio.ErrCorrupt, what, str)
			}
		}
		return nil
	}

	space := kb.NewSpace()
	store := kb.New(space)
	corpus := fact.NewCorpus(space)
	for _, sec := range []struct {
		d    *dict.Dict
		what string
	}{
		{space.Subjects, "subject"},
		{space.Predicates, "predicate"},
		{space.Objects, "object"},
		{corpus.URLs, "url"},
	} {
		if err := readDict(sec.d, sec.what); err != nil {
			return nil, err
		}
	}
	nSubj := uint64(space.Subjects.Len())
	nPred := uint64(space.Predicates.Len())
	nObj := uint64(space.Objects.Len())
	nURL := uint64(corpus.URLs.Len())

	nTriples := br.Int()
	if err := br.Err(); err != nil {
		return nil, err
	}
	var prevS uint64
	for i := 0; i < nTriples; i++ {
		sID := br.Uvarint()
		if i > 0 {
			sID += prevS
		}
		prevS = sID
		pID, oID := br.Uvarint(), br.Uvarint()
		if err := br.Err(); err != nil {
			return nil, err
		}
		if sID >= nSubj || pID >= nPred || oID >= nObj {
			return nil, fmt.Errorf("%w: KB triple %d references out-of-range string", binio.ErrCorrupt, i)
		}
		t := kb.Triple{S: dict.ID(sID), P: dict.ID(pID), O: dict.ID(oID)}
		if !store.Add(t) {
			return nil, fmt.Errorf("%w: duplicate KB triple %d", binio.ErrCorrupt, i)
		}
	}
	epoch := br.Uvarint()
	nFacts := br.Int()
	if err := br.Err(); err != nil {
		return nil, err
	}
	if epoch < uint64(nTriples) {
		return nil, fmt.Errorf("%w: KB epoch %d below triple count %d", binio.ErrCorrupt, epoch, nTriples)
	}
	for i := 0; i < nFacts; i++ {
		sID, pID, oID := br.Uvarint(), br.Uvarint(), br.Uvarint()
		uID, confBits := br.Uvarint(), br.Uvarint()
		if err := br.Err(); err != nil {
			return nil, err
		}
		if sID >= nSubj || pID >= nPred || oID >= nObj || uID >= nURL || confBits > math.MaxUint32 {
			return nil, fmt.Errorf("%w: corpus fact %d references out-of-range value", binio.ErrCorrupt, i)
		}
		corpus.AddTriple(
			kb.Triple{S: dict.ID(sID), P: dict.ID(pID), O: dict.ID(oID)},
			dict.ID(uID),
			math.Float32frombits(uint32(confBits)),
		)
	}
	store.RestoreEpoch(epoch)
	return &Session{
		kb:     &KB{store: store},
		corpus: &Corpus{c: corpus},
		opts:   opts.orDefault(),
		factFP: idset.FingerprintSeed,
		dirty:  true,
	}, nil
}

// KBEpoch returns the session KB's mutation epoch — the counter the
// fingerprint folds in. Durability snapshots stamp it so recovery can
// restore it exactly (see internal/store).
func (s *Session) KBEpoch() uint64 {
	return s.kb.store.Epoch()
}
