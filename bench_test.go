// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md §3 maps experiment ids to these targets), the
// ablation studies of DESIGN.md §4, and micro-benchmarks of the core
// data structures. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benches print their paper-style tables once (first
// iteration) so a bench run doubles as a reproduction log; recorded
// outputs live in EXPERIMENTS.md.
package midas_test

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"midas"
	"midas/internal/baselines"
	"midas/internal/core"
	"midas/internal/datagen"
	"midas/internal/experiments"
	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/slice"
)

// tableOnce gates printing each experiment's table to one iteration.
var tableOnce sync.Map

func printOnce(key string, render func(w io.Writer)) {
	if _, dup := tableOnce.LoadOrStore(key, true); dup {
		return
	}
	fmt.Fprintf(os.Stdout, "\n--- %s ---\n", key)
	render(os.Stdout)
}

// --- Figure 3: qualitative top slices on the KnowledgeVault sim ---

func BenchmarkFig3QualitativeKnowledgeVault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(3, 6, 0)
		printOnce("fig3", func(w io.Writer) { experiments.RenderFig3(w, rows) })
	}
}

// --- Figure 7: dataset statistics ---

func BenchmarkFig7DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(0.25, 7)
		printOnce("fig7", func(w io.Writer) { experiments.RenderFig7(w, rows) })
	}
}

// --- Figure 8: silver-standard snapshot ---

func BenchmarkFig8SilverStandard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8("reverb-slim", 3, 7)
		printOnce("fig8", func(w io.Writer) { experiments.RenderFig8(w, rows) })
	}
}

// --- Figure 9: quality vs. KB coverage on the Slim datasets ---

func fig9Result(b *testing.B, dataset string, coverages []float64) *experiments.Fig9Result {
	cfg := experiments.DefaultFig9Config()
	cfg.Dataset = dataset
	cfg.Coverages = coverages
	return experiments.Fig9(cfg)
}

func BenchmarkFig9PRCoverage0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig9Result(b, "reverb-slim", []float64{0})
		printOnce("fig9a", func(w io.Writer) { experiments.RenderFig9Curves(w, res, 0) })
	}
}

func BenchmarkFig9PRCoverage40(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig9Result(b, "reverb-slim", []float64{0.4})
		printOnce("fig9c", func(w io.Writer) { experiments.RenderFig9Curves(w, res, 0.4) })
	}
}

func BenchmarkFig9PRCoverage80(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig9Result(b, "reverb-slim", []float64{0.8})
		printOnce("fig9e", func(w io.Writer) { experiments.RenderFig9Curves(w, res, 0.8) })
	}
}

// BenchmarkFig9Recall/Precision/FMeasure share one sweep: the metric
// panels of Figures 9b/9d/9f are views of the same run.
func BenchmarkFig9Recall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig9Result(b, "reverb-slim", []float64{0, 0.2, 0.4, 0.6, 0.8})
		printOnce("fig9bdf", func(w io.Writer) { experiments.RenderFig9(w, res) })
	}
}

func BenchmarkFig9Precision(b *testing.B) { BenchmarkFig9Recall(b) }
func BenchmarkFig9FMeasure(b *testing.B)  { BenchmarkFig9Recall(b) }

func BenchmarkFig9NELLSlim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig9Result(b, "nell-slim", []float64{0, 0.4, 0.8})
		printOnce("fig9-nell", func(w io.Writer) { experiments.RenderFig9(w, res) })
	}
}

// --- Figure 10: top-k precision and runtime on the full corpora ---

func fig10Result(dataset string) *experiments.Fig10Result {
	cfg := experiments.DefaultFig10Config(dataset)
	cfg.Scale = 0.25
	cfg.Ratios = []float64{0.5, 1.0}
	return experiments.Fig10(cfg)
}

func BenchmarkFig10TopKReVerb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig10Result("reverb")
		printOnce("fig10ab", func(w io.Writer) { experiments.RenderFig10(w, res) })
	}
}

func BenchmarkFig10TimeReVerb(b *testing.B) { BenchmarkFig10TopKReVerb(b) }

func BenchmarkFig10TopKNELL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig10Result("nell")
		printOnce("fig10cd", func(w io.Writer) { experiments.RenderFig10(w, res) })
	}
}

func BenchmarkFig10TimeNELL(b *testing.B) { BenchmarkFig10TopKNELL(b) }

// --- Figure 11: synthetic sweeps ---

func fig11Result(factCounts, optimalCounts []int) *experiments.Fig11Result {
	cfg := experiments.DefaultFig11Config()
	cfg.FactCounts = factCounts
	cfg.OptimalCounts = optimalCounts
	cfg.Trials = 1
	return experiments.Fig11(cfg)
}

func BenchmarkFig11AccuracyVsFacts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig11Result([]int{1000, 2500, 5000, 7500, 10000}, nil)
		printOnce("fig11ab", func(w io.Writer) { experiments.RenderFig11(w, res) })
	}
}

func BenchmarkFig11RuntimeVsFacts(b *testing.B) { BenchmarkFig11AccuracyVsFacts(b) }

func BenchmarkFig11AccuracyVsOptimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig11Result(nil, []int{1, 2, 4, 6, 8, 10})
		printOnce("fig11cd", func(w io.Writer) { experiments.RenderFig11(w, res) })
	}
}

func BenchmarkFig11RuntimeVsOptimal(b *testing.B) { BenchmarkFig11AccuracyVsOptimal(b) }

// --- Ablations (DESIGN.md §4) ---

func BenchmarkAblationNoCanonicalPruning(b *testing.B) {
	table := synthTable(5000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DiscoverTable(table, core.Options{DisableCanonicalPrune: true})
	}
}

func BenchmarkAblationNoProfitPruning(b *testing.B) {
	table := synthTable(5000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DiscoverTable(table, core.Options{DisableProfitPrune: true})
	}
}

func BenchmarkAblationFullPruning(b *testing.B) {
	table := synthTable(5000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DiscoverTable(table, core.Options{})
	}
}

func BenchmarkAblationFlatVsHierarchical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationFlatVsHierarchical(7, 0)
		printOnce("ablation-flat", func(w io.Writer) {
			experiments.RenderAblation(w, "flat vs hierarchical", rows)
		})
	}
}

func BenchmarkAblationComboCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationComboCap(7, []int{1, 16, 64, 256})
		printOnce("ablation-combo", func(w io.Writer) {
			experiments.RenderAblation(w, "combo cap", rows)
		})
	}
}

func BenchmarkAblationParallelism(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			world := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				framework.Run(world.Corpus, world.KB, framework.Options{Workers: workers})
			}
		})
	}
}

// --- Micro-benchmarks of the core machinery ---

func synthTable(n int, seed int64) *fact.Table {
	p := datagen.DefaultSyntheticParams()
	p.Facts = n
	p.Seed = seed
	p.KnownRatio = 0.98
	syn := datagen.NewSynthetic(p)
	return fact.Build(syn.Source, syn.Corpus.Space, syn.Triples(), syn.KB)
}

func BenchmarkMIDASalgSingleSource(b *testing.B) {
	table := synthTable(5000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DiscoverTable(table, core.Options{})
	}
}

func BenchmarkGreedySingleSource(b *testing.B) {
	table := synthTable(5000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.Greedy(table, slice.DefaultCostModel())
	}
}

func BenchmarkAggClusterSingleSource(b *testing.B) {
	table := synthTable(2000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.AggCluster(table, slice.DefaultCostModel())
	}
}

func BenchmarkFactTableBuild(b *testing.B) {
	p := datagen.DefaultSyntheticParams()
	p.Seed = 5
	syn := datagen.NewSynthetic(p)
	triples := syn.Triples()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fact.Build(syn.Source, syn.Corpus.Space, triples, syn.KB)
	}
}

func BenchmarkFrameworkEndToEnd(b *testing.B) {
	world := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		framework.Run(world.Corpus, world.KB, framework.Options{})
	}
}

func BenchmarkPublicDiscover(b *testing.B) {
	existing := midas.NewKB()
	corpus := midas.NewCorpus(existing)
	for i := 0; i < 2000; i++ {
		corpus.Add(midas.Fact{
			Subject:    fmt.Sprintf("entity %d", i),
			Predicate:  "kind",
			Object:     fmt.Sprintf("type %d", i%10),
			Confidence: 0.9,
			URL:        fmt.Sprintf("http://bench.example.org/t%d/e%d.htm", i%10, i),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		midas.Discover(corpus, existing, nil)
	}
}

// BenchmarkIncrementalDiscover measures the delta-aware re-discovery
// path: a session primed on the full 100-domain Slim corpus receives a
// one-fact delta on a single source each iteration and re-discovers.
// Steady-state cost is the touched branch plus consolidation, not the
// full corpus; an iteration that reuses nothing is a bug, not a slow
// run.
func BenchmarkIncrementalDiscover(b *testing.B) {
	world := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	facts := worldFacts(world)
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(facts...)
	sess.Discover()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.AddFacts(midas.Fact{
			Subject:    fmt.Sprintf("delta entity %d", i),
			Predicate:  "kind",
			Object:     fmt.Sprintf("delta kind %d", i),
			Confidence: 0.9,
			URL:        facts[0].URL,
		})
		if res := sess.Discover(); res.SourcesReused == 0 {
			b.Fatal("incremental discover reused nothing")
		}
	}
}

// --- Scaling sweep (EXPERIMENTS.md "scaling") ---

func BenchmarkScalingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Scaling([]float64{0.25, 0.5, 1.0}, 7, 0)
		printOnce("scaling", func(w io.Writer) { experiments.RenderScaling(w, rows) })
	}
}

// --- Annotation-effort extension (EXPERIMENTS.md "annotation") ---

func BenchmarkAnnotationWrapperQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Annotation(7, 20, 20, 0)
		printOnce("annotation", func(w io.Writer) { experiments.RenderAnnotation(w, rows) })
	}
}

func BenchmarkCostModelSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.CostSensitivity(7, 0)
		printOnce("costmodel", func(w io.Writer) { experiments.RenderCostSensitivity(w, rows) })
	}
}
