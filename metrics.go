package midas

import (
	"io"

	"midas/internal/obs"
)

// Metrics is a handle on an observability registry: the counters, phase
// timers, gauges, and histograms the pipeline emits as a side effect of
// every run (per-round shard counts and timings, hierarchy pruning
// tallies, consolidation keep/drop decisions, KB load throughput).
//
// Pass a Metrics via Options.Metrics to isolate one run's numbers;
// otherwise the pipeline reports into the shared DefaultMetrics()
// registry, which the midas and midas-bench binaries expose through
// their -stats flag. See README.md ("Observability & CI") for the
// snapshot schema.
type Metrics struct {
	reg *obs.Registry
}

// NewMetrics returns an empty, isolated metrics registry.
func NewMetrics() *Metrics { return &Metrics{reg: obs.New()} }

// DefaultMetrics returns the process-wide registry that instrumented
// code reports into when no explicit Metrics is configured.
func DefaultMetrics() *Metrics { return &Metrics{reg: obs.Default()} }

// WriteJSON writes an indented JSON snapshot of the collected metrics:
// {"counters": {...}, "gauges": {...}, "timers": {...},
// "histograms": {...}}, with keys sorted so output is deterministic for
// a given metric state.
func (m *Metrics) WriteJSON(w io.Writer) error { return m.reg.WriteJSON(w) }

// WriteFile writes a JSON snapshot to path, creating or truncating it.
func (m *Metrics) WriteFile(path string) error { return m.reg.WriteFile(path) }

// Counter returns the current value of a named counter (0 if the
// counter has not been touched).
func (m *Metrics) Counter(name string) int64 { return m.reg.Counter(name).Value() }

// Reset clears all collected metrics.
func (m *Metrics) Reset() { m.reg.Reset() }

func (m *Metrics) registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}
