package midas

import (
	"io"
	"net/http"

	"midas/internal/obs"
)

// Metrics is a handle on an observability registry: the counters, phase
// timers, gauges, and histograms the pipeline emits as a side effect of
// every run (per-round shard counts and timings, hierarchy pruning
// tallies, consolidation keep/drop decisions, KB load throughput).
//
// Pass a Metrics via Options.Metrics to isolate one run's numbers;
// otherwise the pipeline reports into the shared DefaultMetrics()
// registry, which the midas and midas-bench binaries expose through
// their -stats flag. See README.md ("Observability & CI") for the
// snapshot schema.
type Metrics struct {
	reg *obs.Registry
}

// NewMetrics returns an empty, isolated metrics registry.
func NewMetrics() *Metrics { return &Metrics{reg: obs.New()} }

// DefaultMetrics returns the process-wide registry that instrumented
// code reports into when no explicit Metrics is configured.
func DefaultMetrics() *Metrics { return &Metrics{reg: obs.Default()} }

// WriteJSON writes an indented JSON snapshot of the collected metrics:
// {"counters": {...}, "gauges": {...}, "timers": {...},
// "histograms": {...}}, with keys sorted so output is deterministic for
// a given metric state.
func (m *Metrics) WriteJSON(w io.Writer) error { return m.reg.WriteJSON(w) }

// WriteFile writes a JSON snapshot to path, creating or truncating it.
func (m *Metrics) WriteFile(path string) error { return m.reg.WriteFile(path) }

// WriteOpenMetrics writes the collected metrics in the OpenMetrics /
// Prometheus text exposition format (the body served at /metrics).
func (m *Metrics) WriteOpenMetrics(w io.Writer) error { return m.reg.WriteOpenMetrics(w) }

// Handler returns the live-telemetry HTTP handler over this registry:
// /metrics (OpenMetrics text), /debug/vars (expvar JSON), and
// /debug/pprof. Mount it on any server to scrape a run while it is in
// flight.
func (m *Metrics) Handler() http.Handler { return obs.NewServeMux(m.reg) }

// Serve starts serving Handler() on addr in a background goroutine and
// returns the bound address (useful with ":0"). The server lives for
// the remainder of the process.
func (m *Metrics) Serve(addr string) (string, error) {
	a, err := obs.ListenAndServe(addr, m.reg)
	if err != nil {
		return "", err
	}
	return a.String(), nil
}

// Counter returns the current value of a named counter (0 if the
// counter has not been touched).
func (m *Metrics) Counter(name string) int64 { return m.reg.Counter(name).Value() }

// Reset clears all collected metrics.
func (m *Metrics) Reset() { m.reg.Reset() }

func (m *Metrics) registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// ConfigureLogging installs the process-wide structured logger that
// the pipeline and serving path write through, from the string forms
// the binaries accept as -log-level (debug|info|warn|error|off) and
// -log-format (logfmt|json). Level "off" disables logging, the default
// state of a fresh process.
func ConfigureLogging(w io.Writer, level, format string) error {
	return obs.InstallDefaultLogger(w, level, format)
}

// Tracer records spans — named, timed, parented intervals covering the
// whole pipeline run, each hierarchy round, and each source's
// build/detect/consolidate phases — and exports them as Chrome
// trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Pass one via Options.Trace; a nil Tracer disables
// tracing at zero cost.
type Tracer struct {
	t *obs.Tracer
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{t: obs.NewTracer()} }

// WriteChromeTrace writes the spans recorded so far as Chrome
// trace-event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error { return t.t.WriteChromeTrace(w) }

// WriteFile writes the Chrome trace to path, creating or truncating it.
func (t *Tracer) WriteFile(path string) error { return t.t.WriteFile(path) }

func (t *Tracer) tracer() *obs.Tracer {
	if t == nil {
		return nil
	}
	return t.t
}
