package midas

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteMarkdownReport renders a discovery result as a human-readable
// Markdown document: a summary, a ranked table, and a section per slice
// with its defining properties, annotation-effort indicators, and a
// sample of its entities. top bounds the detailed sections (0 = all).
func (r *Result) WriteMarkdownReport(w io.Writer, top int) error {
	if top <= 0 || top > len(r.Slices) {
		top = len(r.Slices)
	}
	totalNew := 0
	sources := make(map[string]bool)
	for _, s := range r.Slices {
		totalNew += s.NewFacts
		sources[s.Source] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# MIDAS discovery report\n\n")
	fmt.Fprintf(&b, "%d slices across %d web sources, contributing %d new facts; "+
		"%d sources examined over %d hierarchy rounds.\n\n",
		len(r.Slices), len(sources), totalNew, r.SourcesProcessed, r.Rounds)

	fmt.Fprintf(&b, "| # | Profit | New | Facts | Source | Slice |\n")
	fmt.Fprintf(&b, "|---|--------|-----|-------|--------|-------|\n")
	for i, s := range r.Slices {
		fmt.Fprintf(&b, "| %d | %.1f | %d | %d | %s | %s |\n",
			i+1, s.Profit, s.NewFacts, s.Facts, s.Source, mdEscape(s.Description))
	}
	b.WriteString("\n")

	for i := 0; i < top; i++ {
		s := r.Slices[i]
		fmt.Fprintf(&b, "## %d. %s\n\n", i+1, mdEscape(s.Description))
		fmt.Fprintf(&b, "Extract from `%s` — %d new of %d facts (profit %.2f).\n\n",
			s.Source, s.NewFacts, s.Facts, s.Profit)
		fmt.Fprintf(&b, "Properties:\n\n")
		for _, p := range s.Properties {
			fmt.Fprintf(&b, "- `%s` = `%s`\n", p.Predicate, p.Value)
		}
		// Annotation-effort indicator: the paper argues slices are easy
		// to annotate because their entities share few predicates — a
		// narrow slice means a small labeling vocabulary.
		fmt.Fprintf(&b, "\n%d entities", len(s.Entities))
		if n := len(s.Entities); n > 0 {
			step := max1(n / 5)
			var sample []string
			for j := 0; j < n && len(sample) < 5; j += step {
				sample = append(sample, s.Entities[j])
			}
			fmt.Fprintf(&b, " (sample: %s)", strings.Join(sample, "; "))
		}
		b.WriteString("\n\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

func mdEscape(s string) string {
	return strings.NewReplacer("|", "\\|", "\n", " ").Replace(s)
}

// WriteCSVReport renders the result as CSV with one row per slice:
// rank, profit, new facts, total facts, source, description, entity
// count, properties (semicolon-joined pred=value pairs).
func (r *Result) WriteCSVReport(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"rank", "profit", "new_facts", "facts", "source", "description", "entities", "properties",
	}); err != nil {
		return err
	}
	for i, s := range r.Slices {
		props := make([]string, len(s.Properties))
		for j, p := range s.Properties {
			props[j] = p.Predicate + "=" + p.Value
		}
		if err := cw.Write([]string{
			strconv.Itoa(i + 1),
			strconv.FormatFloat(s.Profit, 'f', 3, 64),
			strconv.Itoa(s.NewFacts),
			strconv.Itoa(s.Facts),
			s.Source,
			s.Description,
			strconv.Itoa(len(s.Entities)),
			strings.Join(props, "; "),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TopSources aggregates the result by web source, summing slice
// contributions; sources are returned in decreasing total-profit order.
// This is the "which sites should we onboard" view of a discovery run.
func (r *Result) TopSources() []SourceSummary {
	agg := make(map[string]*SourceSummary)
	var order []string
	for _, s := range r.Slices {
		ss, ok := agg[s.Source]
		if !ok {
			ss = &SourceSummary{Source: s.Source}
			agg[s.Source] = ss
			order = append(order, s.Source)
		}
		ss.Slices++
		ss.NewFacts += s.NewFacts
		ss.TotalProfit += s.Profit
	}
	out := make([]SourceSummary, 0, len(order))
	for _, src := range order {
		out = append(out, *agg[src])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TotalProfit != out[j].TotalProfit {
			return out[i].TotalProfit > out[j].TotalProfit
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// SourceSummary aggregates a result's slices per web source.
type SourceSummary struct {
	Source      string
	Slices      int
	NewFacts    int
	TotalProfit float64
}
