package midas_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"midas"
)

// runningExample loads the paper's Figure 2 facts through the public
// API.
func runningExample() (*midas.Corpus, *midas.KB) {
	existing := midas.NewKB()
	for _, t := range [][3]string{
		{"Project Mercury", "category", "space_program"},
		{"Project Mercury", "started", "1959"},
		{"Project Mercury", "sponsor", "NASA"},
		{"Project Gemini", "category", "space_program"},
		{"Project Gemini", "sponsor", "NASA"},
		{"Apollo program", "category", "space_program"},
		{"Apollo program", "sponsor", "NASA"},
	} {
		existing.Add(t[0], t[1], t[2])
	}
	corpus := midas.NewCorpus(existing)
	add := func(s, p, o, url string) {
		corpus.Add(midas.Fact{Subject: s, Predicate: p, Object: o, Confidence: 0.9, URL: url})
	}
	add("Project Mercury", "category", "space_program", "http://space.skyrocket.de/doc_sat/mercury-history.htm")
	add("Project Mercury", "started", "1959", "http://space.skyrocket.de/doc_sat/mercury-history.htm")
	add("Project Mercury", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/mercury-history.htm")
	add("Project Gemini", "category", "space_program", "http://space.skyrocket.de/doc_sat/gemini-history.htm")
	add("Project Gemini", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/gemini-history.htm")
	add("Atlas", "category", "rocket_family", "http://space.skyrocket.de/doc_lau_fam/atlas.htm")
	add("Atlas", "sponsor", "NASA", "http://space.skyrocket.de/doc_lau_fam/atlas.htm")
	add("Atlas", "started", "1957", "http://space.skyrocket.de/doc_lau_fam/atlas.htm")
	add("Apollo program", "category", "space_program", "http://space.skyrocket.de/doc_sat/apollo-history.htm")
	add("Apollo program", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/apollo-history.htm")
	add("Castor-4", "category", "rocket_family", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm")
	add("Castor-4", "started", "1971", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm")
	add("Castor-4", "sponsor", "NASA", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm")
	return corpus, existing
}

// TestPublicAPIRunningExample exercises the documented entry point on
// the paper's running example.
func TestPublicAPIRunningExample(t *testing.T) {
	corpus, existing := runningExample()
	// The paper's walkthrough uses f_p = 1 for this 13-fact example.
	res := midas.Discover(corpus, existing, &midas.Options{
		Cost: midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1},
	})
	if len(res.Slices) != 1 {
		t.Fatalf("want 1 slice, got %d: %+v", len(res.Slices), res.Slices)
	}
	s := res.Slices[0]
	if s.Source != "space.skyrocket.de/doc_lau_fam" {
		t.Errorf("source = %q", s.Source)
	}
	if !strings.Contains(s.Description, "rocket_family") || !strings.Contains(s.Description, "NASA") {
		t.Errorf("description = %q", s.Description)
	}
	if s.NewFacts != 6 {
		t.Errorf("new facts = %d, want 6", s.NewFacts)
	}
	if len(s.Entities) != 2 || s.Entities[0] == s.Entities[1] {
		t.Errorf("entities = %v, want Atlas and Castor-4", s.Entities)
	}
	if s.Profit <= 0 {
		t.Errorf("profit = %f, want > 0", s.Profit)
	}
}

// TestDiscoverSource exercises the single-source entry point.
func TestDiscoverSource(t *testing.T) {
	corpus, existing := runningExample()
	_ = corpus
	facts := []midas.Fact{
		{Subject: "Atlas", Predicate: "category", Object: "rocket_family", Confidence: 0.9},
		{Subject: "Atlas", Predicate: "sponsor", Object: "NASA", Confidence: 0.9},
		{Subject: "Castor-4", Predicate: "category", Object: "rocket_family", Confidence: 0.9},
		{Subject: "Castor-4", Predicate: "sponsor", Object: "NASA", Confidence: 0.9},
		{Subject: "Castor-4", Predicate: "started", Object: "1971", Confidence: 0.9},
		{Subject: "junk", Predicate: "x", Object: "y", Confidence: 0.2},
	}
	res := midas.DiscoverSource("space.skyrocket.de", facts, existing, &midas.Options{
		MinConfidence: 0.7,
		// The tiny example needs the paper's walkthrough training cost
		// (f_p = 1); the default f_p = 10 only pays off for slices with
		// a dozen or more new facts.
		Cost: midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1},
	})
	if len(res.Slices) != 1 {
		t.Fatalf("want 1 slice, got %d", len(res.Slices))
	}
	if got := res.Slices[0].NewFacts; got != 5 {
		t.Errorf("new facts = %d, want 5 (low-confidence fact dropped)", got)
	}
}

// TestKBTSVRoundTrip exercises the persistence helpers.
func TestKBTSVRoundTrip(t *testing.T) {
	k := midas.NewKB()
	k.Add("a", "b", "c")
	k.Add("d", "e", "f")
	var buf bytes.Buffer
	if err := k.SaveTSV(&buf); err != nil {
		t.Fatal(err)
	}
	k2 := midas.NewKB()
	n, err := k2.LoadTSV(&buf)
	if err != nil || n != 2 {
		t.Fatalf("load: n=%d err=%v", n, err)
	}
	if !k2.Contains("a", "b", "c") || !k2.Contains("d", "e", "f") || k2.Contains("x", "y", "z") {
		t.Error("round-trip membership mismatch")
	}
}

// TestEmptyKBDiscover builds a knowledge base from scratch.
func TestEmptyKBDiscover(t *testing.T) {
	corpus := midas.NewCorpus(nil)
	for i := 0; i < 30; i++ {
		name := string(rune('a' + i%26))
		corpus.Add(midas.Fact{
			Subject: "species " + name + string(rune('0'+i/26)), Predicate: "kingdom", Object: "animalia",
			Confidence: 0.9, URL: "http://wildlife.example.org/species/e" + name + ".htm",
		})
	}
	res := midas.Discover(corpus, nil, nil)
	if len(res.Slices) == 0 {
		t.Fatal("want at least one slice on an empty KB")
	}
	if res.Slices[0].NewFacts != 30 {
		t.Errorf("new facts = %d, want 30", res.Slices[0].NewFacts)
	}
}

// TestMaxSlicesBudget: the extraction budget keeps only the most
// profitable slices.
func TestMaxSlicesBudget(t *testing.T) {
	corpus := midas.NewCorpus(nil)
	for v := 0; v < 4; v++ {
		n := 20 + v*20 // verticals of increasing size
		for i := 0; i < n; i++ {
			corpus.Add(midas.Fact{
				Subject:    fmt.Sprintf("v%d-e%d", v, i),
				Predicate:  "kind",
				Object:     fmt.Sprintf("type%d", v),
				Confidence: 0.9,
				URL:        fmt.Sprintf("http://site%d.example.com/pages/e%d.htm", v, i),
			})
		}
	}
	full := midas.Discover(corpus, nil, nil)
	if len(full.Slices) != 4 {
		t.Fatalf("full discovery = %d slices, want 4", len(full.Slices))
	}
	capped := midas.Discover(corpus, nil, &midas.Options{MaxSlices: 2})
	if len(capped.Slices) != 2 {
		t.Fatalf("capped discovery = %d slices, want 2", len(capped.Slices))
	}
	// The two largest verticals must be the ones kept.
	for _, s := range capped.Slices {
		if s.NewFacts < 60 {
			t.Errorf("budget kept a small slice (%d new facts)", s.NewFacts)
		}
	}
}

// TestNumericBucketWidth: range properties unite entities with nearby
// numeric values that share no exact property.
func TestNumericBucketWidth(t *testing.T) {
	corpus := midas.NewCorpus(nil)
	for i := 0; i < 20; i++ {
		corpus.Add(midas.Fact{
			Subject:    fmt.Sprintf("rocket%d", i),
			Predicate:  "started",
			Object:     fmt.Sprintf("%d", 1950+i%10), // every year distinct-ish
			Confidence: 0.9,
			URL:        fmt.Sprintf("http://rockets.example.com/r/%d.htm", i),
		})
		corpus.Add(midas.Fact{
			Subject:    fmt.Sprintf("rocket%d", i),
			Predicate:  "serial",
			Object:     fmt.Sprintf("sn-%d", i),
			Confidence: 0.9,
			URL:        fmt.Sprintf("http://rockets.example.com/r/%d.htm", i),
		})
	}
	opts := &midas.Options{Cost: midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1}}
	plain := midas.Discover(corpus, nil, opts)
	// Exact-valued years fragment the source: each year covers ≤ 2
	// entities, so no single slice unites the rockets.
	for _, s := range plain.Slices {
		if len(s.Entities) == 20 {
			t.Fatalf("unexpected 20-entity slice without bucketing: %q", s.Description)
		}
	}
	opts.NumericBucketWidth = 10
	bucketed := midas.Discover(corpus, nil, opts)
	found := false
	for _, s := range bucketed.Slices {
		if strings.Contains(s.Description, "started = [1950,1960)") && len(s.Entities) == 20 {
			found = true
		}
	}
	if !found {
		for _, s := range bucketed.Slices {
			t.Logf("slice: %q entities=%d", s.Description, len(s.Entities))
		}
		t.Error("bucketing did not produce the decade slice")
	}
}

// TestKBBinaryRoundTripPublic covers the public binary persistence.
func TestKBBinaryRoundTripPublic(t *testing.T) {
	k := midas.NewKB()
	k.Add("a", "b", "c")
	k.Add("d", "e", "f")
	var buf bytes.Buffer
	if err := k.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	k2 := midas.NewKB()
	if n, err := k2.LoadBinary(&buf); err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !k2.Contains("a", "b", "c") {
		t.Error("binary round trip lost a fact")
	}
}

// TestDiscoverContextCancellation covers the public cancellable entry.
func TestDiscoverContextCancellation(t *testing.T) {
	corpus, existing := runningExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := midas.DiscoverContext(ctx, corpus, existing, nil)
	if err == nil {
		t.Fatal("want context error")
	}
	if len(res.Slices) != 0 {
		t.Errorf("cancelled discovery returned %d slices", len(res.Slices))
	}
	res, err = midas.DiscoverContext(context.Background(), corpus, existing, &midas.Options{
		Cost: midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1},
	})
	if err != nil || len(res.Slices) != 1 {
		t.Errorf("live context: err=%v slices=%d", err, len(res.Slices))
	}
}

// TestFuseOption: the public fusion switch removes low-confidence
// conflicting values before discovery.
func TestFuseOption(t *testing.T) {
	corpus := midas.NewCorpus(nil)
	for i := 0; i < 20; i++ {
		subj := fmt.Sprintf("star %d", i)
		url := fmt.Sprintf("http://astro.example.org/stars/%d.htm", i)
		corpus.Add(midas.Fact{Subject: subj, Predicate: "class", Object: "dwarf", Confidence: 0.9, URL: url})
		if i < 3 {
			// Conflicting corrupted classification at low confidence.
			corpus.Add(midas.Fact{Subject: subj, Predicate: "class", Object: fmt.Sprintf("garbled-%d", i), Confidence: 0.4, URL: url})
		}
	}
	opts := &midas.Options{Cost: midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1}, Fuse: true}
	res := midas.Discover(corpus, nil, opts)
	if len(res.Slices) == 0 {
		t.Fatal("no slices")
	}
	if got := res.Slices[0].NewFacts; got != 20 {
		t.Errorf("top slice new facts = %d, want 20 (conflicts fused away)", got)
	}
	for _, s := range res.Slices[0].Entities {
		_ = s
	}
}

// TestTypeOntologyOption: subclass expansion through the public API
// makes a broader-type slice reachable.
func TestTypeOntologyOption(t *testing.T) {
	existing := midas.NewKB()
	corpus := midas.NewCorpus(existing)
	for i := 0; i < 7; i++ {
		corpus.Add(midas.Fact{Subject: fmt.Sprintf("golf-%d", i), Predicate: "be a", Object: "golf_course",
			Confidence: 0.9, URL: fmt.Sprintf("http://resorts.example.com/x/g%d.htm", i)})
		corpus.Add(midas.Fact{Subject: fmt.Sprintf("ski-%d", i), Predicate: "be a", Object: "ski_resort",
			Confidence: 0.9, URL: fmt.Sprintf("http://resorts.example.com/x/s%d.htm", i)})
	}
	// Without the ontology, neither 7-entity vertical pays f_p = 10.
	res := midas.Discover(corpus, existing, nil)
	if len(res.Slices) != 0 {
		t.Fatalf("want nothing before expansion, got %d", len(res.Slices))
	}
	ont := midas.NewOntology(existing)
	ont.AddSubclass("golf_course", "sports_facility")
	ont.AddSubclass("ski_resort", "sports_facility")
	if ont.Len() != 2 {
		t.Fatalf("ontology edges = %d", ont.Len())
	}
	res = midas.Discover(corpus, existing, &midas.Options{
		TypeOntology:   ont,
		TypePredicates: []string{"be a"},
	})
	if len(res.Slices) == 0 {
		t.Fatal("expansion enabled no slices")
	}
	covered := make(map[string]bool)
	for _, s := range res.Slices {
		for _, e := range s.Entities {
			covered[e] = true
		}
	}
	if len(covered) != 14 {
		t.Errorf("slices cover %d entities, want 14", len(covered))
	}
}

// TestCorpusBinaryPublic: the public corpus binary round trip preserves
// confidences (unlike N-Quads).
func TestCorpusBinaryPublic(t *testing.T) {
	c := midas.NewCorpus(nil)
	c.Add(midas.Fact{Subject: "a", Predicate: "p", Object: "x", Confidence: 0.875, URL: "http://h.com/1"})
	var buf bytes.Buffer
	if err := c.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := midas.NewCorpus(nil)
	if n, err := c2.LoadBinary(&buf); err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if c2.Len() != 1 {
		t.Errorf("len = %d", c2.Len())
	}
}
