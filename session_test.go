package midas_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"midas"
)

func sessionCorpusFacts() []midas.Fact {
	var facts []midas.Fact
	for v := 0; v < 3; v++ {
		for i := 0; i < 25; i++ {
			url := fmt.Sprintf("http://site%d.example.com/wiki/e%d.htm", v, i)
			subj := fmt.Sprintf("v%d entity %d", v, i)
			facts = append(facts,
				midas.Fact{Subject: subj, Predicate: "kind", Object: fmt.Sprintf("type%d", v), Confidence: 0.9, URL: url},
				midas.Fact{Subject: subj, Predicate: "id", Object: fmt.Sprintf("id-%d-%d", v, i), Confidence: 0.9, URL: url},
			)
		}
	}
	return facts
}

// TestSessionAugmentationLoop: absorbing the top slice each round makes
// the recommendations move on and eventually dry up.
func TestSessionAugmentationLoop(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(sessionCorpusFacts()...)
	if sess.CorpusSize() != 150 {
		t.Fatalf("corpus = %d", sess.CorpusSize())
	}

	seen := make(map[string]bool)
	rounds := 0
	for ; rounds < 10; rounds++ {
		res := sess.Discover()
		if len(res.Slices) == 0 {
			break
		}
		top := res.Slices[0]
		if seen[top.Description] {
			t.Fatalf("round %d recommended %q again after absorption", rounds, top.Description)
		}
		seen[top.Description] = true
		if added := sess.Absorb(top); added == 0 {
			t.Fatalf("absorb added nothing for %q", top.Description)
		}
	}
	if rounds != 3 {
		t.Errorf("loop ran %d rounds, want 3 (one per vertical)", rounds)
	}
	kbFacts, covered := sess.Progress()
	if kbFacts != 150 {
		t.Errorf("KB = %d facts, want all 150 absorbed", kbFacts)
	}
	if covered != 1.0 {
		t.Errorf("coverage = %.3f, want 1.0", covered)
	}
}

// TestSessionAbsorbScopedToSource: absorbing a slice must not import
// facts about the same entities from other sources.
func TestSessionAbsorbScopedToSource(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	var facts []midas.Fact
	for i := 0; i < 20; i++ {
		subj := fmt.Sprintf("e%d", i)
		facts = append(facts,
			midas.Fact{Subject: subj, Predicate: "kind", Object: "widget", Confidence: 0.9,
				URL: fmt.Sprintf("http://a.com/w/p%d.htm", i)},
			// Same entity also mentioned on another domain.
			midas.Fact{Subject: subj, Predicate: "seen at", Object: fmt.Sprintf("place %d", i), Confidence: 0.9,
				URL: fmt.Sprintf("http://b.org/mentions/m%d.htm", i)},
		)
	}
	sess.AddFacts(facts...)
	res := sess.Discover()
	if len(res.Slices) == 0 {
		t.Fatal("no slices")
	}
	var widget *midas.Slice
	for i := range res.Slices {
		if res.Slices[i].Description == "kind = widget" {
			widget = &res.Slices[i]
		}
	}
	if widget == nil {
		t.Fatal("widget slice missing")
	}
	added := sess.Absorb(*widget)
	if added != 20 {
		t.Errorf("absorbed %d facts, want only the 20 a.com facts", added)
	}
	if sess.KB().Contains("e0", "seen at", "place 0") {
		t.Error("absorb leaked a fact from the other domain")
	}
}

// TestSessionAddFactsBetweenRounds: new extraction output arriving
// mid-session is picked up by the next Discover and Absorb.
func TestSessionAddFactsBetweenRounds(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(sessionCorpusFacts()...)
	res := sess.Discover()
	before := len(res.Slices)

	var fresh []midas.Fact
	for i := 0; i < 30; i++ {
		fresh = append(fresh, midas.Fact{
			Subject: fmt.Sprintf("new entity %d", i), Predicate: "kind", Object: "newtype",
			Confidence: 0.9, URL: fmt.Sprintf("http://late.example.net/x/e%d.htm", i),
		})
	}
	sess.AddFacts(fresh...)
	res = sess.Discover()
	if len(res.Slices) != before+1 {
		t.Errorf("slices = %d, want %d", len(res.Slices), before+1)
	}
	for _, s := range res.Slices {
		if s.Description == "kind = newtype" {
			if got := sess.Absorb(s); got != 30 {
				t.Errorf("absorbed %d, want 30", got)
			}
			return
		}
	}
	t.Error("new vertical not discovered")
}

// TestSessionMetrics: a Session configured with an isolated Metrics
// leaves a per-iteration trail — discovery timers and counters, KB and
// coverage gauges — scrapeable as OpenMetrics.
func TestSessionMetrics(t *testing.T) {
	m := midas.NewMetrics()
	sess := midas.NewSession(nil, &midas.Options{Metrics: m})
	sess.AddFacts(sessionCorpusFacts()...)
	if got := m.Counter("session/facts_added"); got != 150 {
		t.Errorf("session/facts_added = %d, want 150", got)
	}

	res := sess.Discover()
	if len(res.Slices) == 0 {
		t.Fatal("no slices discovered")
	}
	sess.Absorb(res.Slices[0])
	sess.Discover()
	sess.Progress()

	if got := m.Counter("session/discoveries"); got != 2 {
		t.Errorf("session/discoveries = %d, want 2", got)
	}
	if got := m.Counter("session/absorbs"); got != 1 {
		t.Errorf("session/absorbs = %d, want 1", got)
	}
	if got := m.Counter("session/facts_absorbed"); got <= 0 {
		t.Errorf("session/facts_absorbed = %d, want > 0", got)
	}

	var buf strings.Builder
	if err := m.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"midas_session_discoveries_total 2",
		"midas_session_discover_seconds_count 2",
		"# TYPE midas_session_kb_facts gauge",
		"# TYPE midas_session_corpus_coverage gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics exposition missing %q", want)
		}
	}
}

// TestSessionFingerprint: stable on an unchanged session, moves on
// AddFacts and on Absorb (the KB grew), and is insensitive to the
// order-independent parts of the call pattern (Discover, Progress).
func TestSessionFingerprint(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(sessionCorpusFacts()...)
	fp := sess.Fingerprint()
	if sess.Fingerprint() != fp {
		t.Fatal("fingerprint changed with no mutation")
	}
	res := sess.Discover()
	sess.Progress()
	if sess.Fingerprint() != fp {
		t.Error("Discover/Progress must not move the fingerprint")
	}
	sess.AddFacts(midas.Fact{
		Subject: "late entity", Predicate: "kind", Object: "type0",
		Confidence: 0.9, URL: "http://site0.example.com/wiki/late.htm",
	})
	fpAdd := sess.Fingerprint()
	if fpAdd == fp {
		t.Error("AddFacts must move the fingerprint")
	}
	if len(res.Slices) == 0 {
		t.Fatal("no slices")
	}
	if sess.Absorb(res.Slices[0]) == 0 {
		t.Fatal("absorb added nothing")
	}
	if sess.Fingerprint() == fpAdd {
		t.Error("Absorb that grows the KB must move the fingerprint")
	}

	// A second session built the same way reproduces the fingerprint.
	again := midas.NewSession(nil, nil)
	again.AddFacts(sessionCorpusFacts()...)
	if again.Fingerprint() != fp {
		t.Error("identical sessions must share a fingerprint")
	}
}

// TestSessionConcurrent: ≥8 goroutines hammer one session with the full
// method surface; run under -race this proves the RWMutex guard. The
// assertions are deliberately weak — the point is the interleaving.
func TestSessionConcurrent(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(sessionCorpusFacts()...)

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				switch c % 4 {
				case 0:
					res, err := sess.DiscoverContext(context.Background())
					if err != nil {
						t.Errorf("discover: %v", err)
					}
					for _, sl := range res.Slices {
						sess.Absorb(sl)
					}
				case 1:
					sess.AddFacts(midas.Fact{
						Subject:   fmt.Sprintf("c%d entity %d", c, i),
						Predicate: "kind", Object: "concurrent",
						Confidence: 0.9,
						URL:        fmt.Sprintf("http://conc.example.com/c%d/e%d.htm", c, i),
					})
					sess.Fingerprint()
				case 2:
					sess.Discover()
					sess.CorpusSize()
				default:
					sess.Progress()
					sess.Fingerprint()
				}
			}
		}(c)
	}
	wg.Wait()
	if kb, _ := sess.Progress(); kb == 0 {
		t.Error("nothing absorbed across the run")
	}
}
