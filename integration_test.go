package midas_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"midas"
	"midas/internal/datagen"
	"midas/internal/eval"
	"midas/internal/experiments"
	"midas/internal/framework"
	"midas/internal/kb"
	"midas/internal/rdf"
)

// TestIntegrationRDFPipeline: generate a corpus, persist KB and corpus
// through the public RDF round trip, rediscover from the files, and
// verify the result matches the direct in-memory run and still scores
// against the silver standard.
func TestIntegrationRDFPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	world := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	dir := t.TempDir()

	// Persist via internal writers (what midas-datagen does).
	kbPath := filepath.Join(dir, "kb.nt")
	corpusPath := filepath.Join(dir, "facts.nq")
	kf, err := os.Create(kbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rdf.SaveKB(kf, world.KB); err != nil {
		t.Fatal(err)
	}
	kf.Close()
	cf, err := os.Create(corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rdf.SaveCorpus(cf, world.Corpus); err != nil {
		t.Fatal(err)
	}
	cf.Close()

	// Reload through the public API.
	existing := midas.NewKB()
	kf2, _ := os.Open(kbPath)
	if _, err := existing.LoadNTriples(kf2); err != nil {
		t.Fatal(err)
	}
	kf2.Close()
	if existing.Size() != world.KB.Size() {
		t.Fatalf("KB size after round trip: %d vs %d", existing.Size(), world.KB.Size())
	}
	corpus := midas.NewCorpus(existing)
	cf2, _ := os.Open(corpusPath)
	if _, err := corpus.LoadNQuads(cf2, 0.9); err != nil {
		t.Fatal(err)
	}
	cf2.Close()
	if corpus.Len() != len(world.Corpus.Facts) {
		t.Fatalf("corpus size after round trip: %d vs %d", corpus.Len(), len(world.Corpus.Facts))
	}

	// Discover from the reloaded state and compare against the direct
	// in-memory run: same slice count, same total new facts.
	fromFiles := midas.Discover(corpus, existing, nil)
	direct := experimentsRunDirect(t, world)
	if len(fromFiles.Slices) != len(direct) {
		t.Errorf("slices from files = %d, direct = %d", len(fromFiles.Slices), len(direct))
	}

	// Score the file-based run against the silver standard by matching
	// each silver slice to a predicted slice with the same fact counts
	// and source. (The full Jaccard scoring runs in the experiments
	// tests; here the cross-format agreement is what's under test.)
	bySource := make(map[string]int)
	for _, s := range fromFiles.Slices {
		bySource[s.Source]++
	}
	missing := 0
	for _, gs := range world.Silver {
		if bySource[gs.Source] == 0 {
			missing++
		}
	}
	if missing > len(world.Silver)/10 {
		t.Errorf("%d of %d silver sources have no predicted slice", missing, len(world.Silver))
	}
}

// experimentsRunDirect runs MIDAS directly on the in-memory world.
func experimentsRunDirect(t *testing.T, world *datagen.World) []string {
	t.Helper()
	existing := midas.NewKB()
	for _, tr := range world.KB.Triples() {
		s, p, o := world.Corpus.Space.StringTriple(tr)
		existing.Add(s, p, o)
	}
	corpus := midas.NewCorpus(existing)
	for _, e := range world.Corpus.Facts {
		s, p, o := world.Corpus.Space.StringTriple(e.Triple)
		corpus.Add(midas.Fact{Subject: s, Predicate: p, Object: o,
			Confidence: float64(e.Conf), URL: world.Corpus.URLs.String(e.URL)})
	}
	res := midas.Discover(corpus, existing, nil)
	out := make([]string, len(res.Slices))
	for i, s := range res.Slices {
		out[i] = s.Source + "|" + s.Description
	}
	return out
}

// TestIntegrationSessionOverSilver: a Session over the slim corpus,
// absorbing everything it discovers, must drive the silver slices'
// recall to ~1 and then return (near-)nothing.
func TestIntegrationSessionOverSilver(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	world := datagen.NELLSlim(datagen.DefaultSlimParams(3))
	existing := midas.NewKB()
	for _, tr := range world.KB.Triples() {
		s, p, o := world.Corpus.Space.StringTriple(tr)
		existing.Add(s, p, o)
	}
	sess := midas.NewSession(existing, nil)
	for _, e := range world.Corpus.Facts {
		s, p, o := world.Corpus.Space.StringTriple(e.Triple)
		sess.AddFacts(midas.Fact{Subject: s, Predicate: p, Object: o,
			Confidence: float64(e.Conf), URL: world.Corpus.URLs.String(e.URL)})
	}

	first := sess.Discover()
	if len(first.Slices) == 0 {
		t.Fatal("nothing discovered")
	}
	for _, s := range first.Slices {
		sess.Absorb(s)
	}
	second := sess.Discover()
	if len(second.Slices) > len(first.Slices)/5 {
		t.Errorf("after absorbing everything, %d slices remain (first round had %d)",
			len(second.Slices), len(first.Slices))
	}
	// Coverage rises well past the initial KB's share but not to 1.0:
	// the forum noise and known-content residue are never worth
	// extracting, which is the point of the profit function.
	_, covered := sess.Progress()
	if covered < 0.6 || covered > 0.95 {
		t.Errorf("corpus coverage after absorption = %.3f, want 0.6–0.95", covered)
	}
}

// TestIntegrationOracleAgreesWithSilver: on the slim corpus the two
// evaluation methodologies — silver-standard Jaccard matching and the
// human-labeling oracle — must broadly agree on MIDAS's output quality.
func TestIntegrationOracleAgreesWithSilver(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	world := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	out := experimentsMIDAS(world)

	silverSets := make([][]kb.Triple, len(world.Silver))
	for i := range world.Silver {
		silverSets[i] = world.Silver[i].Facts
	}
	silverScore := eval.Score(out.FactSets, silverSets)

	oracle := &eval.Oracle{VerticalOf: world.VerticalOf, KB: world.KB, Seed: 1}
	correct := 0
	for i := range out.Slices {
		if oracle.Correct(out.Slices[i], out.FactSets[i]) {
			correct++
		}
	}
	oraclePrecision := float64(correct) / float64(len(out.Slices))
	if diff := silverScore.Precision - oraclePrecision; diff > 0.15 || diff < -0.15 {
		t.Errorf("silver precision %.3f and oracle precision %.3f disagree by %.3f",
			silverScore.Precision, oraclePrecision, diff)
	}
}

// TestIntegrationReportFiles: the CLI-facing report writers produce
// parseable files for a real discovery result.
func TestIntegrationReportFiles(t *testing.T) {
	corpus := midas.NewCorpus(nil)
	for i := 0; i < 30; i++ {
		corpus.Add(midas.Fact{
			Subject: fmt.Sprintf("thing %d", i), Predicate: "kind", Object: "gadget",
			Confidence: 0.9, URL: fmt.Sprintf("http://shop.example.com/g/%d.htm", i),
		})
	}
	res := midas.Discover(corpus, nil, nil)
	var md, csv bytes.Buffer
	if err := res.WriteMarkdownReport(&md, 0); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSVReport(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "kind = gadget") {
		t.Error("markdown report missing slice")
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(res.Slices)+1 {
		t.Errorf("csv lines = %d, want %d", lines, len(res.Slices)+1)
	}
}

// experimentsMIDAS runs the framework directly over a generated world.
func experimentsMIDAS(world *datagen.World) *framework.Output {
	return experiments.MIDAS.Run(world.Corpus, world.KB, experiments.DefaultCost(), 0)
}
