package midas

import "midas/internal/reason"

// Ontology is a subclass hierarchy over type values, used with
// Options.TypeOntology to let slices form at broader types. Create it
// against the KB the corpus shares strings with.
type Ontology struct {
	o *reason.Ontology
}

// NewOntology returns an empty ontology bound to the KB's string space.
func NewOntology(k *KB) *Ontology {
	return &Ontology{o: reason.NewOntology(k.store.Space())}
}

// AddSubclass records child ⊑ parent (e.g. "golf_course" ⊑
// "sports_facility"). Duplicate edges are ignored; cycles are tolerated.
func (o *Ontology) AddSubclass(child, parent string) {
	o.o.AddSubclass(child, parent)
}

// Len returns the number of subclass edges.
func (o *Ontology) Len() int { return o.o.Len() }
