// Multi-source comparison: run MIDAS and the paper's three baselines
// (NAIVE, GREEDY, AGGCLUSTER) under the same parallel framework on a
// ReVerb-Slim-style corpus with a known silver standard, and print each
// method's precision/recall/F-measure — a miniature of the Figure 9
// experiment.
//
//	go run ./examples/multisource
package main

import (
	"fmt"
	"time"

	"midas/internal/datagen"
	"midas/internal/eval"
	"midas/internal/experiments"
	"midas/internal/kb"
)

func main() {
	world := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	st := world.Stats()
	fmt.Printf("corpus: %d facts, %d predicates, %d URLs; silver standard: %d slices\n\n",
		st.Facts, st.Predicates, st.URLs, len(world.Silver))

	existing, silver := world.WithCoverage(0.2, 1)
	silverSets := make([][]kb.Triple, len(silver))
	for i := range silver {
		silverSets[i] = silver[i].Facts
	}

	fmt.Printf("%-12s %9s %9s %9s %9s %8s\n", "method", "precision", "recall", "F1", "slices", "seconds")
	for _, m := range experiments.AllMethods() {
		start := time.Now()
		out := m.Run(world.Corpus, existing, experiments.DefaultCost(), 0)
		secs := time.Since(start).Seconds()
		score := eval.Score(out.FactSets, silverSets)
		fmt.Printf("%-12s %9.3f %9.3f %9.3f %9d %8.2f\n",
			m, score.Precision, score.Recall, score.F1, len(out.Slices), secs)
	}

	fmt.Println("\ntop MIDAS recommendations:")
	out := experiments.MIDAS.Run(world.Corpus, existing, experiments.DefaultCost(), 0)
	for i, s := range out.Slices {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s @ %s (%d new facts, profit %.1f)\n",
			s.Description(world.Corpus.Space), s.Source, s.NewFacts, s.Profit)
	}
}
