// The paper's running example (Figures 2, 4, 5 and Examples 1-16 of
// Wang et al., ICDE 2019): thirteen facts extracted from five pages of
// space.skyrocket.de, six of which — the rocket families — are missing
// from Freebase. MIDAS should recommend extracting "rocket families
// sponsored by NASA" from the doc_lau_fam sub-domain, exactly as in
// Example 16.
//
//	go run ./examples/spaceprograms
package main

import (
	"fmt"

	"midas"
)

type row struct {
	s, p, o, url string
	inFreebase   bool
}

var facts = []row{
	{"Project Mercury", "category", "space_program", "http://space.skyrocket.de/doc_sat/mercury-history.htm", true},
	{"Project Mercury", "started", "1959", "http://space.skyrocket.de/doc_sat/mercury-history.htm", true},
	{"Project Mercury", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/mercury-history.htm", true},
	{"Project Gemini", "category", "space_program", "http://space.skyrocket.de/doc_sat/gemini-history.htm", true},
	{"Project Gemini", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/gemini-history.htm", true},
	{"Atlas", "category", "rocket_family", "http://space.skyrocket.de/doc_lau_fam/atlas.htm", false},
	{"Atlas", "sponsor", "NASA", "http://space.skyrocket.de/doc_lau_fam/atlas.htm", false},
	{"Atlas", "started", "1957", "http://space.skyrocket.de/doc_lau_fam/atlas.htm", false},
	{"Apollo program", "category", "space_program", "http://space.skyrocket.de/doc_sat/apollo-history.htm", true},
	{"Apollo program", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/apollo-history.htm", true},
	{"Castor-4", "category", "rocket_family", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm", false},
	{"Castor-4", "started", "1971", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm", false},
	{"Castor-4", "sponsor", "NASA", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm", false},
}

func main() {
	freebase := midas.NewKB()
	corpus := midas.NewCorpus(freebase)
	for _, f := range facts {
		if f.inFreebase {
			freebase.Add(f.s, f.p, f.o)
		}
		corpus.Add(midas.Fact{Subject: f.s, Predicate: f.p, Object: f.o, Confidence: 0.9, URL: f.url})
	}
	fmt.Printf("Freebase knows %d of the %d extracted facts.\n\n", freebase.Size(), corpus.Len())

	// The paper's walkthrough uses f_p = 1 (Section II, Definition 9).
	opts := &midas.Options{Cost: midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1}}

	// First, MIDASalg on the whole domain as a single source — the
	// Section III-A walkthrough. Expected: slice S5, profit 4.327
	// (Figure 5c).
	var all []midas.Fact
	for _, f := range facts {
		all = append(all, midas.Fact{Subject: f.s, Predicate: f.p, Object: f.o, Confidence: 0.9})
	}
	single := midas.DiscoverSource("space.skyrocket.de", all, freebase, opts)
	fmt.Println("MIDASalg on the whole domain (Examples 13/14):")
	for _, s := range single.Slices {
		fmt.Printf("  S = %q  entities=%v  profit=%.3f\n", s.Description, s.Entities, s.Profit)
	}

	// Then the full multi-source framework over the page URLs — the
	// Section III-B walkthrough. Expected: the same slice, but now
	// pinned to the cheaper sub-domain doc_lau_fam (Example 16).
	multi := midas.Discover(corpus, freebase, opts)
	fmt.Println("\nMulti-source framework over the URL hierarchy (Example 16):")
	for _, s := range multi.Slices {
		fmt.Printf("  extract %q from %s  (%d new facts, profit %.3f)\n",
			s.Description, s.Source, s.NewFacts, s.Profit)
	}
}
