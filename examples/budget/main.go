// Extension features: extraction budgets and generalized numeric-range
// properties.
//
// A museum aggregator lists artifacts with exact creation years — every
// year distinct, so the year predicate contributes nothing to any slice
// definition. Numeric bucketing rewrites the years into century ranges:
// the canonical slices now carry the period ("created = [1500,1600)")
// in their defining property sets, exactly the "year > 2000"-style
// generalization the paper sketches. MaxSlices then imposes an
// extraction budget, keeping only the most profitable slices.
//
//	go run ./examples/budget
package main

import (
	"fmt"
	"os"

	"midas"
)

func main() {
	corpus := midas.NewCorpus(nil)
	eras := []struct {
		name    string
		century int
		count   int
	}{
		{"renaissance paintings", 1500, 40},
		{"baroque sculptures", 1600, 30},
		{"impressionist paintings", 1800, 24},
		{"modernist prints", 1900, 14},
	}
	id := 0
	for _, era := range eras {
		for i := 0; i < era.count; i++ {
			id++
			subject := fmt.Sprintf("%s #%d", era.name, i)
			url := fmt.Sprintf("https://artifacts.example.museum/catalog/item%d.htm", id)
			corpus.Add(midas.Fact{Subject: subject, Predicate: "created",
				Object:     fmt.Sprintf("%d", era.century+(i*83)%100), // all years distinct
				Confidence: 0.9, URL: url})
			corpus.Add(midas.Fact{Subject: subject, Predicate: "medium",
				Object: era.name, Confidence: 0.9, URL: url})
		}
	}

	base := &midas.Options{Cost: midas.CostModel{Fp: 2, Fc: 0.001, Fd: 0.01, Fv: 0.1}}

	fmt.Println("without numeric bucketing (distinct years contribute nothing to slice definitions):")
	show(midas.Discover(corpus, nil, base))

	fmt.Println("\nwith NumericBucketWidth=100 (per-century range properties):")
	withBuckets := *base
	withBuckets.NumericBucketWidth = 100
	show(midas.Discover(corpus, nil, &withBuckets))

	fmt.Println("\nsame, under an extraction budget of 2 slices:")
	capped := withBuckets
	capped.MaxSlices = 2
	res := midas.Discover(corpus, nil, &capped)
	show(res)

	fmt.Println("\nMarkdown report of the budgeted result:")
	if err := res.WriteMarkdownReport(os.Stdout, 2); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func show(res *midas.Result) {
	for _, s := range res.Slices {
		fmt.Printf("  %-50s new=%-4d entities=%-3d profit=%.1f\n",
			s.Description, s.NewFacts, len(s.Entities), s.Profit)
	}
	if len(res.Slices) == 0 {
		fmt.Println("  (no profitable slices)")
	}
}
