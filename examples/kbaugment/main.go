// KB augmentation loop: simulate the industrial pipeline the paper
// targets, using midas.Session. A KnowledgeVault-style extraction
// corpus is generated over themed web domains; each round MIDAS
// proposes slices, the top three are "extracted" (absorbed into the
// KB), and the next round's recommendations move to the remaining gaps.
//
//	go run ./examples/kbaugment
package main

import (
	"fmt"

	"midas"
	"midas/internal/datagen"
)

func main() {
	// Simulated extraction output over themed domains (see
	// internal/datagen; stands in for KnowledgeVault/ClueWeb).
	world := datagen.KnowledgeVaultSim(42)

	// Re-ingest through the public API: the KB and corpus a downstream
	// user would have.
	existing := midas.NewKB()
	for _, t := range world.KB.Triples() {
		s, p, o := world.Corpus.Space.StringTriple(t)
		existing.Add(s, p, o)
	}
	sess := midas.NewSession(existing, nil)
	for _, e := range world.Corpus.Facts {
		s, p, o := world.Corpus.Space.StringTriple(e.Triple)
		sess.AddFacts(midas.Fact{Subject: s, Predicate: p, Object: o,
			Confidence: float64(e.Conf), URL: world.Corpus.URLs.String(e.URL)})
	}
	kbFacts, covered := sess.Progress()
	fmt.Printf("KB: %d facts; extraction corpus: %d facts (%.0f%% already known)\n",
		kbFacts, sess.CorpusSize(), 100*covered)

	for round := 1; round <= 3; round++ {
		res := sess.Discover()
		if len(res.Slices) == 0 {
			fmt.Printf("\nround %d: no profitable slices remain — the KB has absorbed the corpus\n", round)
			break
		}
		fmt.Printf("\nround %d: %d candidate slices; extracting the top 3:\n", round, len(res.Slices))
		top := res.Slices
		if len(top) > 3 {
			top = top[:3]
		}
		for _, s := range top {
			added := sess.Absorb(s)
			fmt.Printf("  %-55s @ %-45s new=%-4d absorbed=%d\n",
				s.Description, s.Source, s.NewFacts, added)
		}
		kbFacts, covered = sess.Progress()
		fmt.Printf("  KB grew to %d facts; corpus coverage %.0f%%\n", kbFacts, 100*covered)
	}
}
