// Quickstart: discover what to extract from a small web corpus to
// augment an existing knowledge base.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"midas"
)

func main() {
	// The knowledge base we want to augment. It already knows a few
	// cocktails but nothing about their ingredients.
	existing := midas.NewKB()
	existing.Add("Margarita", "type", "cocktail")
	existing.Add("Daiquiri", "type", "cocktail")
	existing.Add("Mojito", "type", "cocktail")

	// Facts produced by an automated extraction pipeline over the Web —
	// noisy, partial, but enough for MIDAS to spot a promising source.
	corpus := midas.NewCorpus(existing)
	cocktails := []struct{ name, base, glass string }{
		{"Margarita", "tequila", "coupe"},
		{"Daiquiri", "rum", "coupe"},
		{"Mojito", "rum", "highball"},
		{"Negroni", "gin", "rocks"},
		{"Martini", "gin", "martini"},
		{"Paloma", "tequila", "highball"},
		{"Gimlet", "gin", "coupe"},
		{"Sidecar", "cognac", "coupe"},
		{"Sazerac", "whiskey", "rocks"},
		{"Manhattan", "whiskey", "coupe"},
	}
	for i, c := range cocktails {
		url := fmt.Sprintf("https://drinks.example.com/recipes/c%d.htm", i)
		corpus.Add(midas.Fact{Subject: c.name, Predicate: "type", Object: "cocktail", Confidence: 0.9, URL: url})
		corpus.Add(midas.Fact{Subject: c.name, Predicate: "base spirit", Object: c.base, Confidence: 0.85, URL: url})
		corpus.Add(midas.Fact{Subject: c.name, Predicate: "served in", Object: c.glass, Confidence: 0.8, URL: url})
	}
	// A news page the extractor also processed: many facts, no coherent
	// content — MIDAS should ignore it.
	for i := 0; i < 12; i++ {
		corpus.Add(midas.Fact{
			Subject: fmt.Sprintf("headline %d", i), Predicate: "mentions",
			Object:     fmt.Sprintf("story-%d", i),
			Confidence: 0.9, URL: "https://news.example.com/today.htm",
		})
	}

	result := midas.Discover(corpus, existing, &midas.Options{
		// Small example: use a unit training cost so a 10-entity slice
		// is worth reporting (the default f_p=10 targets web-scale
		// sources with dozens of new facts).
		Cost:          midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1},
		MinConfidence: 0.7,
	})

	fmt.Printf("processed %d web sources in %d rounds\n\n", result.SourcesProcessed, result.Rounds)
	for _, s := range result.Slices {
		fmt.Printf("extract %q\n  from  %s\n  worth %d new facts of %d total (profit %.2f)\n\n",
			s.Description, s.Source, s.NewFacts, s.Facts, s.Profit)
	}
	if len(result.Slices) == 0 {
		fmt.Println("no profitable slices found")
	}
}
