package source_test

import (
	"strings"
	"testing"

	"midas/internal/source"
)

// FuzzNormalize: normalization must never panic, must be idempotent,
// and its output must satisfy the hierarchy invariants (Depth/Parent/
// Levels agree).
func FuzzNormalize(f *testing.F) {
	for _, s := range []string{
		"http://space.skyrocket.de/doc_sat/mercury-history.htm",
		"HTTPS://WWW.CDC.GOV/niosh/",
		"", "///", "http://", "a.com///b//c", "a.com/b?q=1#frag",
		"no scheme here", "scheme://host/päth/ünïcode", "\t\n",
		"http://h/" + strings.Repeat("x/", 50),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, url string) {
		n := source.Normalize(url)
		if got := source.Normalize(n); got != n {
			// Idempotence can only break if normalization reintroduces
			// separators; scheme-less re-normalization must be stable.
			// One legal exception: a normalized host segment containing
			// "://" cannot occur since Normalize strips the first one.
			t.Fatalf("not idempotent: %q → %q → %q", url, n, got)
		}
		levels := source.Levels(n)
		if len(levels) != source.Depth(n) {
			t.Fatalf("levels/depth disagree for %q: %d vs %d", n, len(levels), source.Depth(n))
		}
		cur := n
		for i := len(levels) - 1; i > 0; i-- {
			p, ok := source.Parent(cur)
			if !ok {
				t.Fatalf("missing parent at level %d of %q", i, n)
			}
			if p != levels[i-1] {
				t.Fatalf("parent chain diverges from Levels for %q", n)
			}
			cur = p
		}
		if len(levels) > 0 {
			if _, ok := source.Parent(levels[0]); ok {
				t.Fatalf("domain level of %q has a parent", n)
			}
		}
	})
}
