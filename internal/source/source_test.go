package source_test

import (
	"testing"
	"testing/quick"

	"midas/internal/source"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://space.skyrocket.de/doc_sat/mercury-history.htm", "space.skyrocket.de/doc_sat/mercury-history.htm"},
		{"HTTPS://WWW.CDC.GOV/niosh/", "www.cdc.gov/niosh"},
		{"https://a.com//b//c/", "a.com/b/c"},
		{"a.com/b?q=1", "a.com/b"},
		{"a.com/b#frag", "a.com/b"},
		{"a.com", "a.com"},
		{"HTTP://A.COM/Path/Keeps/Case", "a.com/Path/Keeps/Case"},
		{"", ""},
	}
	for _, c := range cases {
		if got := source.Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDepthParentDomain(t *testing.T) {
	src := "a.com/b/c"
	if d := source.Depth(src); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	p, ok := source.Parent(src)
	if !ok || p != "a.com/b" {
		t.Errorf("Parent = %q/%v", p, ok)
	}
	if _, ok := source.Parent("a.com"); ok {
		t.Error("domain should have no parent")
	}
	if d := source.Domain(src); d != "a.com" {
		t.Errorf("Domain = %q", d)
	}
	if d := source.Depth(""); d != 0 {
		t.Errorf("Depth(\"\") = %d", d)
	}
}

func TestLevels(t *testing.T) {
	got := source.Levels("a.com/b/c")
	want := []string{"a.com", "a.com/b", "a.com/b/c"}
	if len(got) != len(want) {
		t.Fatalf("levels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("levels[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if source.Levels("") != nil {
		t.Error("Levels(\"\") should be nil")
	}
}

// Property: Parent chains terminate at the domain, depth decreases by
// one per step, and Levels is consistent with the chain.
func TestHierarchyProperties(t *testing.T) {
	f := func(segs []string) bool {
		src := "host.example"
		n := 0
		for _, s := range segs {
			if s == "" || n >= 6 {
				continue
			}
			clean := ""
			for _, r := range s {
				if r != '/' && r != '?' && r != '#' && r != '\n' {
					clean += string(r)
				}
			}
			if clean == "" {
				continue
			}
			src += "/" + clean
			n++
		}
		levels := source.Levels(src)
		if len(levels) != source.Depth(src) {
			return false
		}
		cur := src
		for i := len(levels) - 1; i >= 0; i-- {
			if levels[i] != cur {
				return false
			}
			p, ok := source.Parent(cur)
			if i == 0 {
				if ok {
					return false
				}
			} else {
				if !ok || source.Depth(p) != source.Depth(cur)-1 {
					return false
				}
				cur = p
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTree(t *testing.T) {
	tree := source.NewTree([]string{
		"a.com/x/1",
		"a.com/x/2",
		"a.com/y",
		"b.org/z/deep/leaf",
	})
	roots := tree.Roots()
	if len(roots) != 2 || roots[0] != "a.com" || roots[1] != "b.org" {
		t.Fatalf("roots = %v", roots)
	}
	if kids := tree.Children("a.com"); len(kids) != 2 {
		t.Errorf("children(a.com) = %v", kids)
	}
	if kids := tree.Children("a.com/x"); len(kids) != 2 {
		t.Errorf("children(a.com/x) = %v", kids)
	}
	// All granularities: a.com, a.com/x, a.com/x/1, a.com/x/2, a.com/y,
	// b.org, b.org/z, b.org/z/deep, b.org/z/deep/leaf.
	if got := tree.Size(); got != 9 {
		t.Errorf("size = %d, want 9", got)
	}
	visited := 0
	lastDepth := 0
	tree.Walk(func(src string, depth int) {
		visited++
		if depth > lastDepth+1 {
			t.Errorf("walk jumped from depth %d to %d at %s", lastDepth, depth, src)
		}
		lastDepth = depth
		if source.Depth(src) != depth {
			t.Errorf("depth mismatch at %s: %d vs %d", src, source.Depth(src), depth)
		}
	})
	if visited != 9 {
		t.Errorf("walk visited %d, want 9", visited)
	}
}
