// Package source models web sources and the URL hierarchy MIDAS exploits
// (Section II-A): a web source is any granularity of a URL hierarchy —
// a web domain (cdc.gov), a sub-domain path (cdc.gov/niosh), or a single
// page (cdc.gov/niosh/ipcsneng/neng0363.html). The hierarchy drives the
// multi-source framework's sharding: each round groups sources under
// their one-level-coarser parent.
package source

import (
	"sort"
	"strings"
)

// Normalize canonicalizes a URL into a source path: scheme, query,
// fragment, and trailing slashes are stripped; the host keeps its case
// lowered; path segments are preserved. Examples:
//
//	http://space.skyrocket.de/doc_sat/mercury-history.htm
//	  → space.skyrocket.de/doc_sat/mercury-history.htm
//	HTTPS://WWW.CDC.GOV/niosh/
//	  → www.cdc.gov/niosh
func Normalize(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "?#"); i >= 0 {
		s = s[:i]
	}
	s = strings.Trim(s, "/")
	// Collapse duplicate slashes.
	for strings.Contains(s, "//") {
		s = strings.ReplaceAll(s, "//", "/")
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return strings.ToLower(s[:i]) + s[i:]
	}
	return strings.ToLower(s)
}

// Depth returns the number of hierarchy levels of a normalized source:
// 1 for a bare domain, 2 for domain/x, and so on. Depth("") is 0.
func Depth(src string) int {
	if src == "" {
		return 0
	}
	return strings.Count(src, "/") + 1
}

// Parent returns the one-level-coarser web source of a normalized source
// and reports whether one exists (bare domains have no parent).
func Parent(src string) (string, bool) {
	i := strings.LastIndexByte(src, '/')
	if i < 0 {
		return "", false
	}
	return src[:i], true
}

// Domain returns the domain (coarsest) level of a normalized source.
func Domain(src string) string {
	if i := strings.IndexByte(src, '/'); i >= 0 {
		return src[:i]
	}
	return src
}

// Levels returns every granularity of the source from domain to the
// source itself, coarsest first.
func Levels(src string) []string {
	if src == "" {
		return nil
	}
	var out []string
	for i := 0; i < len(src); i++ {
		if src[i] == '/' {
			out = append(out, src[:i])
		}
	}
	return append(out, src)
}

// Tree indexes a set of sources by their parents.
type Tree struct {
	children map[string][]string
	roots    []string
}

// NewTree builds the hierarchy over the given normalized sources and all
// of their ancestor levels.
func NewTree(sources []string) *Tree {
	t := &Tree{children: make(map[string][]string)}
	seen := make(map[string]struct{})
	var add func(string)
	add = func(src string) {
		if _, dup := seen[src]; dup {
			return
		}
		seen[src] = struct{}{}
		if p, ok := Parent(src); ok {
			t.children[p] = append(t.children[p], src)
			add(p)
		} else {
			t.roots = append(t.roots, src)
		}
	}
	for _, s := range sources {
		add(s)
	}
	sort.Strings(t.roots)
	for _, c := range t.children {
		sort.Strings(c)
	}
	return t
}

// Children returns the direct children of src, sorted.
func (t *Tree) Children(src string) []string { return t.children[src] }

// Roots returns the domain-level sources, sorted.
func (t *Tree) Roots() []string { return t.roots }

// Walk visits every source in the tree, parents before children.
func (t *Tree) Walk(fn func(src string, depth int)) {
	var rec func(src string, depth int)
	rec = func(src string, depth int) {
		fn(src, depth)
		for _, c := range t.children[src] {
			rec(c, depth+1)
		}
	}
	for _, r := range t.roots {
		rec(r, 1)
	}
}

// Size returns the number of sources in the tree (all granularities).
func (t *Tree) Size() int {
	n := len(t.roots)
	for _, c := range t.children {
		n += len(c)
	}
	return n
}
