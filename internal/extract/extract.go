// Package extract simulates the automated knowledge-extraction
// pipelines whose output MIDAS consumes (Figure 1b of the paper:
// KnowledgeVault, ReVerb, NELL), and the wrapper-induction step of the
// industry-standard pipeline (Figure 1a) that runs after MIDAS picks a
// slice.
//
// The simulation reproduces the two failure modes the paper builds on:
//
//   - low recall: most true facts are never extracted (the TAC-KBP
//     systems the paper cites stay below 0.3 recall), with type/anchor
//     facts surviving more often than long-tail attributes;
//   - low precision: a fraction of emissions are wrong — the object is
//     corrupted — and carry systematically lower confidence, which is
//     why the paper only trusts facts above a confidence threshold
//     (0.7 for KnowledgeVault, 0.75 for ReVerb and NELL).
package extract

import (
	"fmt"
	"math/rand"

	"midas/internal/fact"
	"midas/internal/kb"
)

// Params configures the simulated extractor.
type Params struct {
	// Recall is the probability a true attribute fact is extracted.
	Recall float64
	// AnchorRecall is the probability for the entity's anchor (type)
	// fact; type facts are the easiest pattern for extractors.
	AnchorRecall float64
	// WrongRate is the expected number of wrong emissions per true fact
	// considered (object corrupted; subject and predicate plausible).
	WrongRate float64
	// ConfCorrect is the confidence range assigned to correct
	// extractions (min, max).
	ConfCorrect [2]float64
	// ConfWrong is the confidence range for wrong extractions; keeping
	// most of it below the trust threshold models a calibrated
	// extractor.
	ConfWrong [2]float64
}

// DefaultParams mirrors the corpus generators: 60% attribute recall,
// 96% anchor recall, 12% wrong emissions mostly below the 0.75
// threshold.
func DefaultParams() Params {
	return Params{
		Recall:       0.6,
		AnchorRecall: 0.96,
		WrongRate:    0.12,
		ConfCorrect:  [2]float64{0.75, 1.0},
		ConfWrong:    [2]float64{0.40, 0.78},
	}
}

// Emission is one extractor output for an entity.
type Emission struct {
	Triple kb.Triple
	Conf   float64
	// Wrong marks corrupted emissions (ground truth; downstream
	// consumers only see Conf).
	Wrong bool
	// FactIdx is the index of the true fact this emission derives
	// from.
	FactIdx int
}

func confIn(rng *rand.Rand, r [2]float64) float64 {
	return r[0] + (r[1]-r[0])*rng.Float64()
}

// Apply simulates extraction over one entity's true facts. facts[anchor]
// (if anchor ≥ 0) uses AnchorRecall. Wrong emissions corrupt the object
// into a fresh value interned in space.
func Apply(rng *rand.Rand, facts []kb.Triple, anchor int, space *kb.Space, p Params) []Emission {
	var out []Emission
	for i, t := range facts {
		recall := p.Recall
		if i == anchor {
			recall = p.AnchorRecall
		}
		if rng.Float64() < recall {
			out = append(out, Emission{Triple: t, Conf: confIn(rng, p.ConfCorrect), FactIdx: i})
		}
		if p.WrongRate > 0 && rng.Float64() < p.WrongRate {
			corrupt := kb.Triple{
				S: t.S,
				P: t.P,
				O: space.Objects.Put(fmt.Sprintf("spurious-%d", rng.Int63())),
			}
			out = append(out, Emission{Triple: corrupt, Conf: confIn(rng, p.ConfWrong), Wrong: true, FactIdx: i})
		}
	}
	return out
}

// Page is one web page of ground truth: the facts a perfect extractor
// would produce. AnchorIdx marks the entity-type fact (-1 for none).
type Page struct {
	URL       string
	Facts     []kb.Triple
	AnchorIdx int
}

// Pipeline is a reusable simulated extractor over whole pages.
type Pipeline struct {
	Params Params
	Space  *kb.Space
	rng    *rand.Rand
}

// NewPipeline returns a deterministic pipeline for the space.
func NewPipeline(space *kb.Space, params Params, seed int64) *Pipeline {
	return &Pipeline{Params: params, Space: space, rng: rand.New(rand.NewSource(seed))}
}

// Run extracts a corpus from ground-truth pages. The returned kept
// lists, parallel to pages, hold the indexes of each page's true facts
// that were correctly extracted (wrong emissions are not listed but do
// enter the corpus).
func (pl *Pipeline) Run(pages []Page) (*fact.Corpus, [][]int) {
	corpus := fact.NewCorpus(pl.Space)
	kept := make([][]int, len(pages))
	for pi, page := range pages {
		url := corpus.URLs.Put(page.URL)
		for _, e := range Apply(pl.rng, page.Facts, page.AnchorIdx, pl.Space, pl.Params) {
			corpus.AddTriple(e.Triple, url, float32(e.Conf))
			if !e.Wrong {
				kept[pi] = append(kept[pi], e.FactIdx)
			}
		}
	}
	return corpus, kept
}

// WrapperExtract simulates the industry-standard step downstream of
// MIDAS (Figure 1a): once a slice is selected, wrapper induction
// extracts all facts of the matching entities from the ground-truth
// pages with near-perfect fidelity. An entity matches when it carries
// every property in props on its page.
func WrapperExtract(pages []Page, props []fact.Property) []kb.Triple {
	var out []kb.Triple
	for _, page := range pages {
		// Group the page's facts by subject.
		bySubject := make(map[int32][]kb.Triple)
		for _, t := range page.Facts {
			bySubject[t.S] = append(bySubject[t.S], t)
		}
		for _, facts := range bySubject {
			if matchesAll(facts, props) {
				out = append(out, facts...)
			}
		}
	}
	return out
}

func matchesAll(facts []kb.Triple, props []fact.Property) bool {
	for _, p := range props {
		found := false
		for _, t := range facts {
			if t.P == p.Pred() && t.O == p.Value() {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
