package extract_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"midas/internal/extract"
	"midas/internal/fact"
	"midas/internal/kb"
)

func truePage(sp *kb.Space, url string, entities, attrs int) extract.Page {
	page := extract.Page{URL: url, AnchorIdx: -1}
	for e := 0; e < entities; e++ {
		s := fmt.Sprintf("%s-e%d", url, e)
		page.Facts = append(page.Facts, sp.Intern(s, "type", "thing"))
		for a := 0; a < attrs; a++ {
			page.Facts = append(page.Facts, sp.Intern(s, fmt.Sprintf("attr%d", a), fmt.Sprintf("%s-v%d", s, a)))
		}
	}
	return page
}

// TestApplyRecall: extraction keeps roughly Recall of the facts and
// marks anchors with the higher rate.
func TestApplyRecall(t *testing.T) {
	sp := kb.NewSpace()
	rng := rand.New(rand.NewSource(1))
	params := extract.Params{Recall: 0.5, AnchorRecall: 1.0, ConfCorrect: [2]float64{0.8, 1}}

	totalKept, totalFacts := 0, 0
	anchors := 0
	for e := 0; e < 500; e++ {
		facts := []kb.Triple{
			sp.Intern(fmt.Sprintf("e%d", e), "type", "thing"),
			sp.Intern(fmt.Sprintf("e%d", e), "a", "1"),
			sp.Intern(fmt.Sprintf("e%d", e), "b", "2"),
		}
		for _, em := range extract.Apply(rng, facts, 0, sp, params) {
			if em.Wrong {
				t.Fatal("WrongRate 0 must emit no wrong facts")
			}
			totalKept++
			if em.FactIdx == 0 {
				anchors++
			}
			if em.Conf < 0.8 || em.Conf > 1 {
				t.Fatalf("confidence %f out of range", em.Conf)
			}
		}
		totalFacts += 2 // non-anchor facts
	}
	if anchors != 500 {
		t.Errorf("anchors kept = %d, want all 500 (AnchorRecall 1.0)", anchors)
	}
	attrKept := float64(totalKept-anchors) / float64(totalFacts)
	if math.Abs(attrKept-0.5) > 0.06 {
		t.Errorf("attribute recall = %.3f, want ≈ 0.5", attrKept)
	}
}

// TestApplyWrongEmissions: wrong facts keep subject/predicate, corrupt
// the object, and sit in the lower confidence band.
func TestApplyWrongEmissions(t *testing.T) {
	sp := kb.NewSpace()
	rng := rand.New(rand.NewSource(2))
	params := extract.Params{
		Recall:      1,
		WrongRate:   0.5,
		ConfCorrect: [2]float64{0.8, 1},
		ConfWrong:   [2]float64{0.3, 0.6},
	}
	facts := make([]kb.Triple, 400)
	for i := range facts {
		facts[i] = sp.Intern(fmt.Sprintf("e%d", i), "p", fmt.Sprintf("v%d", i))
	}
	wrong := 0
	for _, em := range extract.Apply(rng, facts, -1, sp, params) {
		if !em.Wrong {
			continue
		}
		wrong++
		orig := facts[em.FactIdx]
		if em.Triple.S != orig.S || em.Triple.P != orig.P {
			t.Fatal("wrong emission must keep subject and predicate")
		}
		if em.Triple.O == orig.O {
			t.Fatal("wrong emission must corrupt the object")
		}
		if em.Conf < 0.3 || em.Conf > 0.6 {
			t.Fatalf("wrong confidence %f out of band", em.Conf)
		}
	}
	if math.Abs(float64(wrong)/400-0.5) > 0.1 {
		t.Errorf("wrong rate = %d/400, want ≈ 0.5", wrong)
	}
}

// TestPipelineRunAndThreshold: the trusted view of a pipeline's output
// (confidence filter) removes most wrong emissions.
func TestPipelineRunAndThreshold(t *testing.T) {
	sp := kb.NewSpace()
	pages := []extract.Page{
		truePage(sp, "a.com/p1", 30, 4),
		truePage(sp, "a.com/p2", 30, 4),
	}
	pages[0].AnchorIdx, pages[1].AnchorIdx = 0, 0
	pl := extract.NewPipeline(sp, extract.DefaultParams(), 3)
	corpus, kept := pl.Run(pages)

	if len(kept) != 2 || len(kept[0]) == 0 {
		t.Fatal("kept lists missing")
	}
	trusted := corpus.FilterConfidence(0.75)
	if len(trusted.Facts) >= len(corpus.Facts) {
		t.Error("threshold removed nothing")
	}
	// Every kept index corresponds to a true fact present in the corpus.
	trueSet := make(map[kb.Triple]bool)
	for _, p := range pages {
		for _, f := range p.Facts {
			trueSet[f] = true
		}
	}
	correct, wrong := 0, 0
	for _, e := range trusted.Facts {
		if trueSet[e.Triple] {
			correct++
		} else {
			wrong++
		}
	}
	if correct == 0 {
		t.Fatal("no correct facts survived")
	}
	if frac := float64(wrong) / float64(correct+wrong); frac > 0.05 {
		t.Errorf("wrong fraction after threshold = %.3f, want ≤ 0.05", frac)
	}
	// Without the threshold the corpus is substantially dirtier.
	rawWrong := 0
	for _, e := range corpus.Facts {
		if !trueSet[e.Triple] {
			rawWrong++
		}
	}
	if rawWrong <= wrong {
		t.Error("raw corpus should contain more wrong facts than the trusted view")
	}
}

// TestWrapperExtract: wrapper induction pulls every fact of matching
// entities and nothing else.
func TestWrapperExtract(t *testing.T) {
	sp := kb.NewSpace()
	page := extract.Page{URL: "a.com/p"}
	mk := func(s, p, o string) kb.Triple {
		tr := sp.Intern(s, p, o)
		page.Facts = append(page.Facts, tr)
		return tr
	}
	mk("atlas", "category", "rocket")
	atlasSponsor := mk("atlas", "sponsor", "NASA")
	mk("mercury", "category", "program")
	mercurySponsor := mk("mercury", "sponsor", "NASA")

	props := []fact.Property{fact.Prop(sp.Predicates.Lookup("category"), sp.Objects.Lookup("rocket"))}
	got := extract.WrapperExtract([]extract.Page{page}, props)
	if len(got) != 2 {
		t.Fatalf("extracted %d facts, want 2", len(got))
	}
	seen := make(map[kb.Triple]bool)
	for _, tr := range got {
		seen[tr] = true
	}
	if !seen[atlasSponsor] || seen[mercurySponsor] {
		t.Error("wrapper extracted the wrong entities")
	}
}

func TestWorldTrustedVsRaw(t *testing.T) {
	// The datagen worlds expose both views; raw must be a superset.
	// (Covered here to keep the extract contract and datagen wiring in
	// one place.)
	sp := kb.NewSpace()
	pl := extract.NewPipeline(sp, extract.DefaultParams(), 9)
	corpus, _ := pl.Run([]extract.Page{truePage(sp, "b.org/x", 50, 5)})
	trusted := corpus.FilterConfidence(0.75)
	if len(trusted.Facts) == 0 || len(trusted.Facts) > len(corpus.Facts) {
		t.Errorf("trusted %d of %d", len(trusted.Facts), len(corpus.Facts))
	}
}
