package wrapper_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"midas/internal/dict"
	"midas/internal/kb"
	"midas/internal/wrapper"
)

// templatePages renders n entities with preds["p0","p1",...] in stable
// slots (anchor slot 0).
func templatePages(sp *kb.Space, vertical string, n int, preds []string, slotBase int) []wrapper.Page {
	var pages []wrapper.Page
	for e := 0; e < n; e++ {
		subj := sp.Subjects.Put(fmt.Sprintf("%s-e%d", vertical, e))
		page := wrapper.Page{URL: fmt.Sprintf("http://x.com/%s/e%d.htm", vertical, e)}
		for i, p := range preds {
			page.Fields = append(page.Fields, wrapper.Field{
				Slot:    slotBase + i,
				Subject: subj,
				Pred:    sp.Predicates.Put(p),
				Object:  sp.Objects.Put(fmt.Sprintf("%s-v%d-%d", vertical, e, i)),
			})
		}
		pages = append(pages, page)
	}
	return pages
}

func annotateFirst(pages []wrapper.Page, k int) map[dict.ID]bool {
	out := make(map[dict.ID]bool)
	for _, p := range pages {
		for _, f := range p.Fields {
			if len(out) >= k {
				return out
			}
			out[f.Subject] = true
		}
	}
	return out
}

// TestInduceHomogeneous: annotating a few entities of one template
// yields a perfect wrapper for the rest.
func TestInduceHomogeneous(t *testing.T) {
	sp := kb.NewSpace()
	pages := templatePages(sp, "golf", 40, []string{"type", "holes", "country"}, 0)
	w := wrapper.Induce(pages, annotateFirst(pages, 5))
	if w.Conflicts != 0 {
		t.Errorf("conflicts = %d, want 0", w.Conflicts)
	}
	q := w.Evaluate(pages, nil)
	if q.Precision != 1 || q.Recall != 1 {
		t.Errorf("quality = %+v, want perfect", q)
	}
	if q.Truth != 120 {
		t.Errorf("truth = %d, want 120", q.Truth)
	}
}

// TestInduceMixedTemplates: two verticals whose templates collide on
// slots produce conflicted, low-precision wrappers when annotated
// together.
func TestInduceMixedTemplates(t *testing.T) {
	sp := kb.NewSpace()
	a := templatePages(sp, "golf", 20, []string{"type", "holes"}, 0)
	b := templatePages(sp, "beer", 20, []string{"style", "abv"}, 0) // same slots, different preds
	all := append(append([]wrapper.Page{}, a...), b...)

	annotated := annotateFirst(a, 5)
	for s := range annotateFirst(b, 5) {
		annotated[s] = true
	}
	w := wrapper.Induce(all, annotated)
	if w.Conflicts == 0 {
		t.Fatal("colliding templates must conflict")
	}
	q := w.Evaluate(all, nil)
	if q.Precision > 0.7 {
		t.Errorf("mixed-template precision = %.3f, want degraded", q.Precision)
	}

	// Annotating only one vertical and scoping to it stays perfect.
	wa := wrapper.Induce(a, annotateFirst(a, 5))
	scope := make(map[dict.ID]bool)
	for _, p := range a {
		for _, f := range p.Fields {
			scope[f.Subject] = true
		}
	}
	if q := wa.Evaluate(a, scope); q.F1 != 1 {
		t.Errorf("scoped wrapper F1 = %.3f, want 1", q.F1)
	}
}

// TestInduceEmptyAnnotation: no annotations, no wrapper.
func TestInduceEmptyAnnotation(t *testing.T) {
	sp := kb.NewSpace()
	pages := templatePages(sp, "x", 5, []string{"p"}, 0)
	w := wrapper.Induce(pages, nil)
	if len(w.SlotPred) != 0 {
		t.Errorf("learned %d slots from nothing", len(w.SlotPred))
	}
	q := w.Evaluate(pages, nil)
	if q.Extracted != 0 || q.Recall != 0 {
		t.Errorf("quality = %+v", q)
	}
}

// TestApplyUnknownSlotsSkipped: fields in unlearned slots are not
// extracted.
func TestApplyUnknownSlotsSkipped(t *testing.T) {
	sp := kb.NewSpace()
	pages := templatePages(sp, "x", 10, []string{"p0", "p1"}, 0)
	// Annotate entities but then evaluate pages that also carry an
	// extra field in a new slot.
	w := wrapper.Induce(pages, annotateFirst(pages, 3))
	extra := pages
	extra[0].Fields = append(extra[0].Fields, wrapper.Field{
		Slot: 99, Subject: extra[0].Fields[0].Subject,
		Pred: sp.Predicates.Put("hidden"), Object: sp.Objects.Put("v"),
	})
	q := w.Evaluate(extra, nil)
	if q.Precision != 1 {
		t.Errorf("precision = %.3f; unknown slots must not be extracted", q.Precision)
	}
	if q.Recall == 1 {
		t.Error("recall should drop: the hidden field is unreachable")
	}
}

// TestInduceDeterministicTieBreak property: induction is deterministic
// for any annotation subset.
func TestInduceDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := kb.NewSpace()
		var pages []wrapper.Page
		for e := 0; e < 10; e++ {
			subj := sp.Subjects.Put(fmt.Sprintf("e%d", e))
			page := wrapper.Page{URL: fmt.Sprintf("u%d", e)}
			for i := 0; i < 1+rng.Intn(4); i++ {
				page.Fields = append(page.Fields, wrapper.Field{
					Slot:    rng.Intn(3),
					Subject: subj,
					Pred:    sp.Predicates.Put(fmt.Sprintf("p%d", rng.Intn(3))),
					Object:  sp.Objects.Put(fmt.Sprintf("o%d", rng.Intn(5))),
				})
			}
			pages = append(pages, page)
		}
		annotated := annotateFirst(pages, 5)
		a := wrapper.Induce(pages, annotated)
		b := wrapper.Induce(pages, annotated)
		if len(a.SlotPred) != len(b.SlotPred) || a.Conflicts != b.Conflicts {
			return false
		}
		for slot, pred := range a.SlotPred {
			if b.SlotPred[slot] != pred {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
