// Package wrapper simulates the wrapper-induction step of the
// industry-standard pipeline (Figure 1a of the paper): once MIDAS
// recommends a slice, crowd workers annotate a handful of its entities
// and wrapper induction learns extraction patterns ("XPath patterns")
// that generalize to the rest of the source.
//
// Pages are modeled as templated documents: every fact occupies a slot
// (the stand-in for a DOM path). Pages rendered from one template put
// each predicate in a stable slot, so a wrapper learned from a few
// annotated entities extracts the rest nearly perfectly; mixing
// templates — which is what annotating a whole heterogeneous source
// forces — makes slots ambiguous and the induced wrapper wrong. This is
// the mechanism behind the paper's claim that slices "allow for easy
// annotation": a slice's entities share a template, a whole source's
// do not.
package wrapper

import (
	"sort"

	"midas/internal/dict"
	"midas/internal/kb"
)

// Field is one rendered fact on a page: the slot it occupies (its
// "DOM path") and the fact itself.
type Field struct {
	Slot    int
	Subject dict.ID
	Pred    dict.ID
	Object  dict.ID
}

// Page is a templated web page: the fields of one or more entities.
type Page struct {
	URL    string
	Fields []Field
}

// Wrapper is an induced extractor: a mapping from slot to predicate.
// Applying it to a page emits (subject, mapped predicate, object) for
// every field whose slot it knows.
type Wrapper struct {
	// SlotPred maps slot → predicate learned by majority vote.
	SlotPred map[int]dict.ID
	// Support counts the annotation votes behind each slot.
	Support map[int]int
	// Conflicts counts slots whose annotations disagreed (the majority
	// still wins, but disagreement predicts extraction errors).
	Conflicts int
}

// Induce learns a wrapper from annotated entities: for every field of
// an annotated entity, the (slot → predicate) pair is one vote. The
// annotation budget is the entity set — in production these are the
// entities crowd workers label.
func Induce(pages []Page, annotated map[dict.ID]bool) *Wrapper {
	votes := make(map[int]map[dict.ID]int)
	for _, page := range pages {
		for _, f := range page.Fields {
			if !annotated[f.Subject] {
				continue
			}
			m, ok := votes[f.Slot]
			if !ok {
				m = make(map[dict.ID]int)
				votes[f.Slot] = m
			}
			m[f.Pred]++
		}
	}
	w := &Wrapper{SlotPred: make(map[int]dict.ID), Support: make(map[int]int)}
	for slot, m := range votes {
		var best dict.ID = -1
		bestVotes, total := 0, 0
		// Deterministic majority: ties break toward the lower ID.
		preds := make([]dict.ID, 0, len(m))
		for p := range m {
			preds = append(preds, p)
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		for _, p := range preds {
			total += m[p]
			if m[p] > bestVotes {
				best, bestVotes = p, m[p]
			}
		}
		w.SlotPred[slot] = best
		w.Support[slot] = total
		if bestVotes < total {
			w.Conflicts++
		}
	}
	return w
}

// Apply extracts facts from pages with the induced wrapper: every field
// in a known slot yields (subject, learnedPred, object).
func (w *Wrapper) Apply(pages []Page) []kb.Triple {
	var out []kb.Triple
	for _, page := range pages {
		for _, f := range page.Fields {
			pred, ok := w.SlotPred[f.Slot]
			if !ok {
				continue
			}
			out = append(out, kb.Triple{S: f.Subject, P: pred, O: f.Object})
		}
	}
	return out
}

// Quality compares wrapper extractions against the pages' ground truth.
type Quality struct {
	Extracted int
	Correct   int
	Truth     int
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluate applies the wrapper and scores it against the true facts on
// the pages (restricted to subjects in scope; nil scope = all).
func (w *Wrapper) Evaluate(pages []Page, scope map[dict.ID]bool) Quality {
	truth := make(map[kb.Triple]bool)
	for _, page := range pages {
		for _, f := range page.Fields {
			if scope != nil && !scope[f.Subject] {
				continue
			}
			truth[kb.Triple{S: f.Subject, P: f.Pred, O: f.Object}] = true
		}
	}
	q := Quality{Truth: len(truth)}
	seen := make(map[kb.Triple]bool)
	for _, tr := range w.Apply(pages) {
		if scope != nil && !scope[tr.S] {
			continue
		}
		if seen[tr] {
			continue
		}
		seen[tr] = true
		q.Extracted++
		if truth[tr] {
			q.Correct++
		}
	}
	if q.Extracted > 0 {
		q.Precision = float64(q.Correct) / float64(q.Extracted)
	}
	if q.Truth > 0 {
		q.Recall = float64(q.Correct) / float64(q.Truth)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}
