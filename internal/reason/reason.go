// Package reason implements a lightweight RDFS-style type reasoner:
// a subclass ontology over type values and corpus expansion that adds
// inferred broader-type facts.
//
// ClosedIE extractions (NELL-style) come with an ontology — the paper's
// example fact is ("concept/athlete/MichaelPhelps", "generalizations",
// "concept/athlete"). Expanding type facts along subClassOf edges lets
// slice discovery find slices at broader types: "golf courses" and
// "ski resorts" can surface together as a "sports facilities" slice on
// a source that mixes them, even though no extracted fact says so
// directly.
package reason

import (
	"sort"

	"midas/internal/dict"
	"midas/internal/fact"
	"midas/internal/kb"
)

// Ontology is a subclass hierarchy over object values. It is a DAG in
// spirit; cycles in the input are tolerated (closure just stops).
type Ontology struct {
	space   *kb.Space
	parents map[dict.ID][]dict.ID
}

// NewOntology returns an empty ontology interning into space.
func NewOntology(space *kb.Space) *Ontology {
	return &Ontology{space: space, parents: make(map[dict.ID][]dict.ID)}
}

// AddSubclass records child ⊑ parent. Duplicates are ignored.
func (o *Ontology) AddSubclass(child, parent string) {
	c := o.space.Objects.Put(child)
	p := o.space.Objects.Put(parent)
	for _, existing := range o.parents[c] {
		if existing == p {
			return
		}
	}
	o.parents[c] = append(o.parents[c], p)
}

// Len returns the number of subclass edges.
func (o *Ontology) Len() int {
	n := 0
	for _, ps := range o.parents {
		n += len(ps)
	}
	return n
}

// Closure returns every strict ancestor of v (transitive, cycle-safe),
// sorted by ID. v itself is not included.
func (o *Ontology) Closure(v dict.ID) []dict.ID {
	seen := map[dict.ID]bool{v: true}
	var out []dict.ID
	stack := append([]dict.ID{}, o.parents[v]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		out = append(out, cur)
		stack = append(stack, o.parents[cur]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExpandTypes returns a corpus (sharing the space and URL dictionary)
// with, for every fact whose predicate is in typePreds, additional
// inferred facts carrying each ancestor of the object value — at the
// same source URL and confidence. It reports the number of inferred
// facts added. Duplicate inferences within one (subject, predicate,
// url) are emitted once.
func ExpandTypes(c *fact.Corpus, o *Ontology, typePreds []string) (*fact.Corpus, int) {
	preds := make(map[dict.ID]bool, len(typePreds))
	for _, p := range typePreds {
		if id := c.Space.Predicates.Lookup(p); id != dict.None {
			preds[id] = true
		}
	}
	out := &fact.Corpus{Space: c.Space, URLs: c.URLs, Facts: make([]fact.Extracted, 0, len(c.Facts))}
	type emitted struct {
		t   kb.Triple
		url dict.ID
	}
	seen := make(map[emitted]bool)
	added := 0
	for _, e := range c.Facts {
		out.Facts = append(out.Facts, e)
		if !preds[e.Triple.P] {
			continue
		}
		for _, anc := range o.Closure(e.Triple.O) {
			inf := fact.Extracted{
				Triple: kb.Triple{S: e.Triple.S, P: e.Triple.P, O: anc},
				URL:    e.URL,
				Conf:   e.Conf,
			}
			key := emitted{inf.Triple, inf.URL}
			if seen[key] {
				continue
			}
			seen[key] = true
			out.Facts = append(out.Facts, inf)
			added++
		}
	}
	return out, added
}

// FromCorpus harvests subclass edges already present in a corpus as
// facts with the given predicate (e.g. NELL's "generalizations" between
// concept values): every (s, pred, o) fact where the subject string
// also occurs as an object value becomes the edge subject ⊑ object.
func FromCorpus(c *fact.Corpus, pred string) *Ontology {
	o := NewOntology(c.Space)
	pid := c.Space.Predicates.Lookup(pred)
	if pid == dict.None {
		return o
	}
	for _, e := range c.Facts {
		if e.Triple.P != pid {
			continue
		}
		child := c.Space.Subjects.String(e.Triple.S)
		parent := c.Space.Objects.String(e.Triple.O)
		if c.Space.Objects.Lookup(child) != dict.None {
			o.AddSubclass(child, parent)
		}
	}
	return o
}
