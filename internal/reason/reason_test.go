package reason_test

import (
	"fmt"
	"testing"

	"midas/internal/core"
	"midas/internal/fact"
	"midas/internal/kb"
	"midas/internal/reason"
	"midas/internal/slice"
)

func TestClosure(t *testing.T) {
	sp := kb.NewSpace()
	o := reason.NewOntology(sp)
	o.AddSubclass("golf_course", "sports_facility")
	o.AddSubclass("sports_facility", "facility")
	o.AddSubclass("golf_course", "outdoor_venue")
	o.AddSubclass("golf_course", "sports_facility") // duplicate ignored

	if o.Len() != 3 {
		t.Errorf("edges = %d, want 3", o.Len())
	}
	anc := o.Closure(sp.Objects.Lookup("golf_course"))
	if len(anc) != 3 {
		t.Fatalf("ancestors = %d, want 3", len(anc))
	}
	names := make(map[string]bool)
	for _, a := range anc {
		names[sp.Objects.String(a)] = true
	}
	for _, want := range []string{"sports_facility", "facility", "outdoor_venue"} {
		if !names[want] {
			t.Errorf("missing ancestor %q", want)
		}
	}
}

func TestClosureCycleSafe(t *testing.T) {
	sp := kb.NewSpace()
	o := reason.NewOntology(sp)
	o.AddSubclass("a", "b")
	o.AddSubclass("b", "c")
	o.AddSubclass("c", "a") // cycle
	anc := o.Closure(sp.Objects.Lookup("a"))
	if len(anc) != 2 {
		t.Errorf("cycle closure = %d ancestors, want 2 (b, c)", len(anc))
	}
}

func TestExpandTypes(t *testing.T) {
	c := fact.NewCorpus(nil)
	c.Add(fact.Fact{Subject: "pebble beach", Predicate: "be a", Object: "golf_course", Confidence: 0.9, URL: "http://x.com/1"})
	c.Add(fact.Fact{Subject: "pebble beach", Predicate: "located in", Object: "california", Confidence: 0.9, URL: "http://x.com/1"})
	o := reason.NewOntology(c.Space)
	o.AddSubclass("golf_course", "sports_facility")

	out, added := reason.ExpandTypes(c, o, []string{"be a"})
	if added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	if len(out.Facts) != 3 {
		t.Fatalf("facts = %d, want 3", len(out.Facts))
	}
	// The non-type predicate must not be expanded even if its object
	// had ancestors.
	o.AddSubclass("california", "usa")
	out2, added2 := reason.ExpandTypes(c, o, []string{"be a"})
	if added2 != 1 || len(out2.Facts) != 3 {
		t.Errorf("non-type predicate expanded: added=%d facts=%d", added2, len(out2.Facts))
	}
}

// TestExpansionEnablesBroaderSlices: two small verticals, each too
// small to pay the training cost alone, become one profitable slice at
// the broader type after expansion.
func TestExpansionEnablesBroaderSlices(t *testing.T) {
	c := fact.NewCorpus(nil)
	add := func(kind string, i int) {
		subj := fmt.Sprintf("%s-%d", kind, i)
		c.Add(fact.Fact{Subject: subj, Predicate: "be a", Object: kind, Confidence: 0.9,
			URL: fmt.Sprintf("http://resorts.example.com/x/%s%d.htm", kind, i)})
	}
	for i := 0; i < 7; i++ {
		add("golf_course", i)
		add("ski_resort", i)
	}
	cost := slice.CostModel{Fp: 10, Fc: 0.001, Fd: 0.01, Fv: 0.1}
	triples := func(cc *fact.Corpus) []kb.Triple {
		out := make([]kb.Triple, len(cc.Facts))
		for i, e := range cc.Facts {
			out[i] = e.Triple
		}
		return out
	}

	// Without expansion: each vertical has 7 new facts < f_p → nothing.
	res := core.Discover("resorts.example.com", c.Space, triples(c), nil, core.Options{Cost: cost})
	if len(res.Slices) != 0 {
		t.Fatalf("expected no profitable slices before expansion, got %d", len(res.Slices))
	}

	o := reason.NewOntology(c.Space)
	o.AddSubclass("golf_course", "sports_facility")
	o.AddSubclass("ski_resort", "sports_facility")
	expanded, added := reason.ExpandTypes(c, o, []string{"be a"})
	if added != 14 {
		t.Fatalf("added = %d, want 14", added)
	}
	// The broad slice now exists as a valid canonical lattice node with
	// all 14 entities…
	res = core.Discover("resorts.example.com", c.Space, triples(expanded), nil, core.Options{Cost: cost})
	foundNode := false
	for _, n := range res.Hierarchy.Nodes() {
		if n.Entities.Len() == 14 && n.Canonical && n.Valid {
			foundNode = true
		}
	}
	if !foundNode {
		t.Error("broader-type node missing from the lattice after expansion")
	}
	// …and discovery reports profitable slices covering every entity
	// (under profit-order traversal it is the broad slice itself; under
	// the default key order the two narrow slices tile the same
	// entities — either way the expansion made the content reachable).
	covered := make(map[string]bool)
	for _, s := range res.Slices {
		for _, e := range s.Entities.Values() {
			covered[c.Space.Subjects.String(e)] = true
		}
	}
	if len(covered) != 14 {
		t.Errorf("reported slices cover %d entities, want 14", len(covered))
	}
	profitRes := core.Discover("resorts.example.com", c.Space, triples(expanded), nil,
		core.Options{Cost: cost, ProfitOrderTraversal: true})
	if len(profitRes.Slices) != 1 || profitRes.Slices[0].Entities.Len() != 14 {
		t.Errorf("profit-order traversal should report the single broad slice; got %d slices", len(profitRes.Slices))
	} else if got := profitRes.Slices[0].Description(c.Space); got != "be a = sports_facility" {
		t.Errorf("broad slice description = %q", got)
	}
}

func TestFromCorpus(t *testing.T) {
	c := fact.NewCorpus(nil)
	// NELL-style generalizations: the concept values appear as both
	// subjects and objects.
	c.Add(fact.Fact{Subject: "concept/golf_course", Predicate: "generalizations", Object: "concept/facility", Confidence: 0.9, URL: "u"})
	c.Add(fact.Fact{Subject: "pebble beach", Predicate: "generalizations", Object: "concept/golf_course", Confidence: 0.9, URL: "u"})
	// "pebble beach" is an instance, not a class (never an object) —
	// it must not become an edge... unless it also occurs as an object.
	o := reason.FromCorpus(c, "generalizations")
	if o.Len() != 1 {
		t.Fatalf("edges = %d, want 1 (only class-to-class)", o.Len())
	}
	anc := o.Closure(c.Space.Objects.Lookup("concept/golf_course"))
	if len(anc) != 1 || c.Space.Objects.String(anc[0]) != "concept/facility" {
		t.Errorf("closure = %v", anc)
	}
}
