package idset

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refOps computes intersection, union, difference, subset, and
// membership through a map[int32]struct{} reference — the
// implementation the kernels replace — for differential testing.
type refOps struct {
	a, b map[int32]struct{}
}

func newRef(a, b []int32) refOps {
	r := refOps{a: make(map[int32]struct{}), b: make(map[int32]struct{})}
	for _, x := range a {
		r.a[x] = struct{}{}
	}
	for _, x := range b {
		r.b[x] = struct{}{}
	}
	return r
}

func (r refOps) intersect() []int32 {
	var out []int32
	for x := range r.a {
		if _, ok := r.b[x]; ok {
			out = append(out, x)
		}
	}
	return sorted(out)
}

func (r refOps) union() []int32 {
	seen := make(map[int32]struct{})
	var out []int32
	for x := range r.a {
		seen[x] = struct{}{}
		out = append(out, x)
	}
	for x := range r.b {
		if _, dup := seen[x]; !dup {
			out = append(out, x)
		}
	}
	return sorted(out)
}

func (r refOps) diff() []int32 {
	var out []int32
	for x := range r.a {
		if _, ok := r.b[x]; !ok {
			out = append(out, x)
		}
	}
	return sorted(out)
}

func (r refOps) subset() bool {
	for x := range r.a {
		if _, ok := r.b[x]; !ok {
			return false
		}
	}
	return true
}

func sorted(s []int32) []int32 {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if len(s) == 0 {
		return []int32{}
	}
	return s
}

// sortedSet turns arbitrary values into a strictly-ascending set.
func sortedSet(vals []int32) []int32 {
	m := make(map[int32]struct{})
	for _, v := range vals {
		m[v] = struct{}{}
	}
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	return sorted(out)
}

func eqSlices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKernelsMatchMapReference is the differential property test: on
// random sorted inputs every kernel must agree with the map-based
// reference implementation.
func TestKernelsMatchMapReference(t *testing.T) {
	check := func(rawA, rawB []int32) bool {
		a, b := sortedSet(rawA), sortedSet(rawB)
		ref := newRef(a, b)
		if got := AppendIntersect(nil, a, b); !eqSlices(sorted(got), ref.intersect()) {
			t.Logf("intersect(%v, %v) = %v, want %v", a, b, got, ref.intersect())
			return false
		}
		if got := AppendUnion(nil, a, b); !eqSlices(sorted(got), ref.union()) {
			t.Logf("union(%v, %v) = %v, want %v", a, b, got, ref.union())
			return false
		}
		if got := AppendDiff(nil, a, b); !eqSlices(sorted(got), ref.diff()) {
			t.Logf("diff(%v, %v) = %v, want %v", a, b, got, ref.diff())
			return false
		}
		if got, want := IsSubset(a, b), ref.subset(); got != want {
			t.Logf("subset(%v, %v) = %v, want %v", a, b, got, want)
			return false
		}
		if got, want := IntersectCount(a, b), len(ref.intersect()); got != want {
			t.Logf("intersectCount(%v, %v) = %d, want %d", a, b, got, want)
			return false
		}
		for _, x := range append(append([]int32{}, a...), rawB...) {
			_, want := ref.a[x]
			if got := ContainsSorted(a, x); got != want {
				t.Logf("contains(%v, %d) = %v, want %v", a, x, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelsGenericOverProperties exercises the kernels at a second
// Elem instantiation (uint64, the packed-property flavor).
func TestKernelsGenericOverProperties(t *testing.T) {
	a := []uint64{1 << 32, 2<<32 | 1, 3 << 40}
	b := []uint64{2<<32 | 1, 3 << 40, 9 << 50}
	if got := AppendIntersect(nil, a, b); len(got) != 2 || got[0] != 2<<32|1 {
		t.Errorf("intersect = %v", got)
	}
	if got := AppendUnion(nil, a, b); len(got) != 4 {
		t.Errorf("union = %v", got)
	}
	if !IsSubset([]uint64{3 << 40}, a) || IsSubset(a, b) {
		t.Error("subset misclassified")
	}
}

func TestSetOps(t *testing.T) {
	a := FromUnsorted([]int32{5, 1, 3, 1, 5})
	if got := a.String(); got != "[1 3 5]" {
		t.Errorf("String() = %q, want [1 3 5]", got)
	}
	if a.Len() != 3 || a.At(1) != 3 || a.Empty() {
		t.Errorf("unexpected set shape: %v", a)
	}
	b := FromSorted([]int32{1, 3})
	if !b.IsSubsetOf(a) || a.IsSubsetOf(b) {
		t.Error("IsSubsetOf misclassified")
	}
	if got := Intersect(a, b); !got.Equal(b) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Union(a, b); !got.Equal(a) {
		t.Errorf("Union = %v", got)
	}
	if got := Difference(a, b); got.Len() != 1 || got.At(0) != 5 {
		t.Errorf("Difference = %v", got)
	}
	if j := Jaccard(a, b); j != 2.0/3.0 {
		t.Errorf("Jaccard = %v", j)
	}
	if j := Jaccard(Set{}, Set{}); j != 1 {
		t.Errorf("empty Jaccard = %v, want 1", j)
	}
	if !a.Contains(5) || a.Contains(4) {
		t.Error("Contains misclassified")
	}
}

// TestSetSharing pins the sharing contract: results equal to an input
// return that input's backing slice rather than allocating.
func TestSetSharing(t *testing.T) {
	a := FromSorted([]int32{1, 2, 3})
	b := FromSorted([]int32{2, 3})
	if got := Union(a, b); &got.Values()[0] != &a.Values()[0] {
		t.Error("Union(a, b⊆a) should share a")
	}
	if got := Intersect(a, b); &got.Values()[0] != &b.Values()[0] {
		t.Error("Intersect(a, b⊆a) should share b")
	}
	if got := Difference(a, FromSorted([]int32{9})); &got.Values()[0] != &a.Values()[0] {
		t.Error("Difference(a, disjoint) should share a")
	}
}

func TestFingerprintDistinguishesSets(t *testing.T) {
	// Equal sets → equal fingerprints.
	if Fingerprint64([]int32{1, 2, 3}) != FromUnsorted([]int32{3, 2, 1}).Fingerprint() {
		t.Error("equal sets must share a fingerprint")
	}
	// Small exhaustive neighborhood: no collisions among distinct sets.
	seen := make(map[uint64][]int32)
	var sets [][]int32
	for i := int32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			sets = append(sets, []int32{i}, []int32{i, j})
		}
	}
	sets = append(sets, []int32{})
	for _, s := range sets {
		fp := Fingerprint64(s)
		if prev, ok := seen[fp]; ok && !eqSlices(prev, s) {
			t.Fatalf("collision: %v and %v → %#x", prev, s, fp)
		}
		seen[fp] = s
	}
}

// TestAppendFingerprintIncremental: chunked hashing equals whole-slice
// hashing for every split point, so append-only callers can keep a
// running state instead of rehashing from scratch.
func TestAppendFingerprintIncremental(t *testing.T) {
	s := []uint64{7, 0, 1<<64 - 1, 42, 42, 9000}
	whole := Fingerprint64(s)
	for cut := 0; cut <= len(s); cut++ {
		h := AppendFingerprint64(FingerprintSeed, s[:cut])
		if got := AppendFingerprint64(h, s[cut:]); got != whole {
			t.Fatalf("split at %d: %#x != %#x", cut, got, whole)
		}
	}
	if AppendFingerprint64(whole, []uint64{1}) == whole {
		t.Error("appending must change the state")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner[uint64]()
	a := in.Intern([]uint64{1, 5, 9})
	b := in.Intern([]uint64{1, 5})
	if a == b {
		t.Fatal("distinct sets interned to the same ID")
	}
	if got := in.Intern([]uint64{1, 5, 9}); got != a {
		t.Errorf("re-intern = %d, want %d", got, a)
	}
	if got := in.Get(a); len(got) != 3 || got[2] != 9 {
		t.Errorf("Get(a) = %v", got)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if got := in.Lookup([]uint64{1, 5}); got != b {
		t.Errorf("Lookup = %d, want %d", got, b)
	}
	if got := in.Lookup([]uint64{7}); got != -1 {
		t.Errorf("Lookup(missing) = %d, want -1", got)
	}
	// The empty set interns like any other.
	e := in.Intern(nil)
	if in.Intern([]uint64{}) != e || len(in.Get(e)) != 0 {
		t.Error("empty-set interning not canonical")
	}
}

// TestInternerViewsSurviveGrowth pins the arena-growth contract: views
// handed out before the arena reallocates still read the right data.
func TestInternerViewsSurviveGrowth(t *testing.T) {
	in := NewInterner[uint64]()
	id := in.Intern([]uint64{42, 43})
	early := in.Get(id)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		in.Intern([]uint64{rng.Uint64() | 1<<63, rng.Uint64() | 1<<62, uint64(i)<<8 | 7})
	}
	if early[0] != 42 || early[1] != 43 {
		t.Fatalf("early view corrupted: %v", early)
	}
	if late := in.Get(id); len(late) != 2 || late[0] != 42 {
		t.Fatalf("late view wrong: %v", late)
	}
}

// TestInternIDEquality is the interning half of the differential
// property: for random sorted sets, ID equality must coincide with
// set equality.
func TestInternIDEquality(t *testing.T) {
	in := NewInterner[int32]()
	type entry struct {
		set []int32
		id  SetID
	}
	var entries []entry
	check := func(raw []int32) bool {
		set := sortedSet(raw)
		id := in.Intern(set)
		for _, e := range entries {
			if (e.id == id) != eqSlices(e.set, set) {
				t.Logf("id equality diverged: %v (id %d) vs %v (id %d)", e.set, e.id, set, id)
				return false
			}
		}
		entries = append(entries, entry{set: set, id: id})
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func ExampleSet_String() {
	fmt.Println(FromUnsorted([]int32{3, 1, 2}))
	// Output: [1 2 3]
}
