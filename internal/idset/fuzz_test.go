package idset

import (
	"encoding/binary"
	"testing"
)

// FuzzKernels decodes the fuzz input into two sorted int32 sets and
// cross-checks every kernel against the map-based reference, plus the
// algebraic identities that must hold for any pair of sets.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2}, []byte{0, 0, 0, 2})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, []byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := sortedSet(decodeInt32s(rawA))
		b := sortedSet(decodeInt32s(rawB))
		ref := newRef(a, b)

		inter := AppendIntersect(nil, a, b)
		union := AppendUnion(nil, a, b)
		diff := AppendDiff(nil, a, b)
		if !eqSlices(sorted(inter), ref.intersect()) {
			t.Fatalf("intersect(%v, %v) = %v, want %v", a, b, inter, ref.intersect())
		}
		if !eqSlices(sorted(union), ref.union()) {
			t.Fatalf("union(%v, %v) = %v, want %v", a, b, union, ref.union())
		}
		if !eqSlices(sorted(diff), ref.diff()) {
			t.Fatalf("diff(%v, %v) = %v, want %v", a, b, diff, ref.diff())
		}
		if got, want := IsSubset(a, b), ref.subset(); got != want {
			t.Fatalf("subset(%v, %v) = %v, want %v", a, b, got, want)
		}

		// Identities: |a| + |b| = |a∪b| + |a∩b|; a\b ∪ a∩b = a;
		// intersection ⊆ both inputs; union ⊇ both inputs.
		if len(a)+len(b) != len(union)+len(inter) {
			t.Fatalf("inclusion-exclusion violated: |a|=%d |b|=%d |∪|=%d |∩|=%d", len(a), len(b), len(union), len(inter))
		}
		if !eqSlices(AppendUnion(nil, diff, inter), a) {
			t.Fatalf("(a\\b) ∪ (a∩b) != a for a=%v b=%v", a, b)
		}
		if !IsSubset(inter, a) || !IsSubset(inter, b) || !IsSubset(a, union) || !IsSubset(b, union) {
			t.Fatalf("containment identities violated for a=%v b=%v", a, b)
		}
		if ContainsSorted(union, 7) != (ContainsSorted(a, 7) || ContainsSorted(b, 7)) {
			t.Fatalf("contains disagrees with union membership")
		}
	})
}

func decodeInt32s(raw []byte) []int32 {
	out := make([]int32, 0, len(raw)/4)
	for len(raw) >= 4 {
		out = append(out, int32(binary.BigEndian.Uint32(raw)))
		raw = raw[4:]
	}
	return out
}
