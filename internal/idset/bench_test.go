package idset

import (
	"math/rand"
	"testing"
)

// benchSets builds two overlapping sorted sets of n elements each.
func benchSets(n int) (a, b []int32) {
	rng := rand.New(rand.NewSource(11))
	seen := make(map[int32]struct{}, 3*n)
	draw := func(k int) []int32 {
		out := make([]int32, 0, k)
		for len(out) < k {
			v := int32(rng.Intn(8 * n))
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	shared := draw(n / 2)
	a = FromUnsorted(append(draw(n-n/2), shared...)).Values()
	b = FromUnsorted(append(draw(n-n/2), shared...)).Values()
	return a, b
}

// BenchmarkIdsetOps measures the merge kernels and membership probes on
// 1k-element sets with ~50% overlap; the Append* variants reuse one
// destination buffer, so steady state is allocation-free.
func BenchmarkIdsetOps(bm *testing.B) {
	a, b := benchSets(1000)
	dst := make([]int32, 0, len(a)+len(b))
	bm.Run("intersect", func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			dst = AppendIntersect(dst[:0], a, b)
		}
	})
	bm.Run("union", func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			dst = AppendUnion(dst[:0], a, b)
		}
	})
	bm.Run("diff", func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			dst = AppendDiff(dst[:0], a, b)
		}
	})
	bm.Run("subset", func(bm *testing.B) {
		bm.ReportAllocs()
		sub := a[:len(a)/4]
		for i := 0; i < bm.N; i++ {
			IsSubset(sub, a)
		}
	})
	bm.Run("contains", func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			ContainsSorted(a, b[i%len(b)])
		}
	})
	bm.Run("fingerprint", func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			Fingerprint64(a)
		}
	})
}

// BenchmarkIntern measures interning a hot (already-interned) set — the
// hierarchy's getNode path after the first sight of a property set.
func BenchmarkIntern(bm *testing.B) {
	in := NewInterner[uint64]()
	set := []uint64{1 << 32, 2 << 32, 3<<32 | 7, 9 << 40}
	in.Intern(set)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		in.Intern(set)
	}
}
