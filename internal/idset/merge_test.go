package idset

import (
	"fmt"
	"math/rand"
	"testing"
)

// refInterner is a map-based reference for the interner: set-key →
// dense ID in first-intern order.
type refInterner struct {
	ids  map[string]SetID
	sets [][]int32
}

func newRefInterner() *refInterner {
	return &refInterner{ids: make(map[string]SetID)}
}

func (r *refInterner) intern(set []int32) SetID {
	key := fmt.Sprint(set)
	if id, ok := r.ids[key]; ok {
		return id
	}
	id := SetID(len(r.sets))
	r.ids[key] = id
	r.sets = append(r.sets, append([]int32(nil), set...))
	return id
}

// checkMergeAgainstRef merges src into dst twice and verifies against
// the reference semantics: the remap table maps every src ID to a dst
// ID holding the same set, dst's ID assignment matches a reference that
// interned dst's sets then src's in ID order, and a second merge is a
// no-op (idempotence).
func checkMergeAgainstRef(t *testing.T, dst, src *Interner[int32]) {
	t.Helper()

	ref := newRefInterner()
	for id := 0; id < dst.Len(); id++ {
		ref.intern(dst.Get(SetID(id)))
	}
	for id := 0; id < src.Len(); id++ {
		ref.intern(src.Get(SetID(id)))
	}

	remap := dst.Merge(src)
	if len(remap) != src.Len() {
		t.Fatalf("remap has %d entries, want %d", len(remap), src.Len())
	}
	if dst.Len() != len(ref.sets) {
		t.Fatalf("after merge dst has %d sets, want %d", dst.Len(), len(ref.sets))
	}
	for id := 0; id < src.Len(); id++ {
		got := dst.Get(remap[id])
		want := src.Get(SetID(id))
		if !eqSlices(got, want) {
			t.Fatalf("remap[%d]=%d resolves to %v, want %v", id, remap[id], got, want)
		}
		if wantID := ref.ids[fmt.Sprint(want)]; remap[id] != wantID {
			t.Fatalf("remap[%d] = %d, reference assigns %d", id, remap[id], wantID)
		}
	}
	for id := 0; id < dst.Len(); id++ {
		if !eqSlices(dst.Get(SetID(id)), ref.sets[id]) {
			t.Fatalf("dst id %d holds %v, reference holds %v", id, dst.Get(SetID(id)), ref.sets[id])
		}
	}

	again := dst.Merge(src)
	if dst.Len() != len(ref.sets) {
		t.Fatalf("second merge grew dst to %d sets, want %d (not idempotent)", dst.Len(), len(ref.sets))
	}
	for id := range again {
		if again[id] != remap[id] {
			t.Fatalf("second merge remap[%d] = %d, want %d", id, again[id], remap[id])
		}
	}
}

// TestInternerMerge exercises Merge on randomized interner pairs with
// deliberate overlap: sets present in both sides must keep dst's ID,
// sets only in src must be appended in src's ID order.
func TestInternerMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	randSet := func(universe int) []int32 {
		return sortedSet(func() []int32 {
			n := rng.Intn(6)
			vals := make([]int32, n)
			for i := range vals {
				vals[i] = int32(rng.Intn(universe))
			}
			return vals
		}())
	}
	for trial := 0; trial < 200; trial++ {
		dst := NewInterner[int32]()
		src := NewInterner[int32]()
		universe := 4 + rng.Intn(12) // small universe forces overlap
		for i, n := 0, rng.Intn(20); i < n; i++ {
			dst.Intern(randSet(universe))
		}
		for i, n := 0, rng.Intn(20); i < n; i++ {
			src.Intern(randSet(universe))
		}
		checkMergeAgainstRef(t, dst, src)
	}
}

// TestInternerMergeEmpty pins the edge cases: empty src, empty dst, and
// the empty set as a member.
func TestInternerMergeEmpty(t *testing.T) {
	dst, src := NewInterner[int32](), NewInterner[int32]()
	if remap := dst.Merge(src); len(remap) != 0 {
		t.Fatalf("empty merge returned %v", remap)
	}
	src.Intern(nil)
	src.Intern([]int32{3})
	checkMergeAgainstRef(t, dst, src)
}

// FuzzInternerMerge decodes the input into two interning sequences
// (element stream chopped into sets by a width stream) and checks Merge
// against the map-based reference.
func FuzzInternerMerge(f *testing.F) {
	f.Add([]byte{}, []byte{}, []byte{})
	f.Add([]byte{2, 2}, []byte{0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 2, 0, 0, 0, 3}, []byte{1, 3})
	f.Add([]byte{1, 1, 1}, []byte{0, 0, 0, 7, 0, 0, 0, 7, 0, 0, 0, 9}, []byte{0, 2, 1})
	f.Fuzz(func(t *testing.T, widthsA, raw, widthsB []byte) {
		elems := decodeInt32s(raw)
		chop := func(widths []byte) [][]int32 {
			var sets [][]int32
			rest := elems
			for _, w := range widths {
				n := int(w % 8)
				if n > len(rest) {
					n = len(rest)
				}
				sets = append(sets, sortedSet(rest[:n]))
				rest = rest[n:]
			}
			return sets
		}
		dst, src := NewInterner[int32](), NewInterner[int32]()
		for _, s := range chop(widthsA) {
			dst.Intern(s)
		}
		for _, s := range chop(widthsB) {
			src.Intern(s)
		}
		checkMergeAgainstRef(t, dst, src)
	})
}
