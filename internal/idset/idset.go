// Package idset is the columnar ID-set substrate shared by the fact,
// hierarchy, kb, and slice layers: an immutable sorted-int32 entity-set
// type, allocation-free merge kernels over sorted integer slices of any
// ID flavor, 64-bit FNV-1a set fingerprints, and an interning table
// that assigns dense IDs to property sets (replacing the byte-string
// node keys the hierarchy used to build per lattice node).
//
// Representation invariants:
//
//   - a Set's backing slice is sorted strictly ascending and is never
//     mutated after construction — set operations return new (or
//     shared) Sets, so Sets may be copied and compared freely;
//   - kernel inputs (Append*, IsSubset, ContainsSorted, the counting
//     helpers) must be sorted strictly ascending; outputs preserve the
//     invariant;
//   - an Interner's arena is append-only, so property-set views
//     returned by Get stay valid (and must not be mutated) for the
//     interner's lifetime, and equal sets always map to the same ID —
//     ID equality is set equality.
package idset

import (
	"fmt"
	"sort"
	"strings"
)

// Elem is any integer ID type the kernels operate on: entity rows and
// subject IDs ([]int32 / []dict.ID) and packed properties (~uint64).
type Elem interface {
	~int32 | ~uint32 | ~int64 | ~uint64
}

// AppendIntersect appends a ∩ b to dst and returns it. dst must not
// alias a or b. With pre-sized dst the kernel does not allocate.
func AppendIntersect[E Elem](dst, a, b []E) []E {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst
}

// AppendUnion appends a ∪ b to dst and returns it. dst must not alias
// a or b. With pre-sized dst the kernel does not allocate.
func AppendUnion[E Elem](dst, a, b []E) []E {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// AppendDiff appends a \ b to dst and returns it. dst must not alias
// a or b. With pre-sized dst the kernel does not allocate.
func AppendDiff[E Elem](dst, a, b []E) []E {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			j++
		}
	}
	return append(dst, a[i:]...)
}

// IntersectCount returns |a ∩ b| without materializing it.
func IntersectCount[E Elem](a, b []E) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// IsSubset reports whether a ⊆ b (merge walk, no allocation).
func IsSubset[E Elem](a, b []E) bool {
	if len(a) > len(b) {
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			return false
		default:
			j++
		}
	}
	return i == len(a)
}

// smallLinear is the set size at or below which membership probes scan
// linearly: for a handful of elements the scan beats binary search on
// branch misses alone.
const smallLinear = 8

// ContainsSorted reports whether x ∈ s.
func ContainsSorted[E Elem](s []E, x E) bool {
	if len(s) <= smallLinear {
		for _, e := range s {
			if e >= x {
				return e == x
			}
		}
		return false
	}
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// Equal reports element-wise equality of two sorted slices.
func Equal[E Elem](a, b []E) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// FingerprintSeed is the initial FNV-1a state for AppendFingerprint64
// chains; Fingerprint64(s) == AppendFingerprint64(FingerprintSeed, s).
const FingerprintSeed = uint64(fnvOffset64)

// Fingerprint64 hashes a sorted slice with FNV-1a over each element's
// eight little-endian bytes. Equal sets produce equal fingerprints;
// distinct sets collide with probability ~2^-64 per pair.
func Fingerprint64[E Elem](s []E) uint64 {
	return AppendFingerprint64(FingerprintSeed, s)
}

// AppendFingerprint64 extends an FNV-1a fingerprint state with the
// elements of s, enabling incremental fingerprints over append-only
// data: hashing a slice in chunks produces the same value as hashing it
// whole. Start chains from FingerprintSeed.
func AppendFingerprint64[E Elem](h uint64, s []E) uint64 {
	for _, e := range s {
		w := uint64(e)
		for b := 0; b < 8; b++ {
			h ^= w & 0xff
			h *= fnvPrime64
			w >>= 8
		}
	}
	return h
}

// Set is an immutable sorted set of int32 IDs (entity rows or interned
// subject IDs). The zero value is the empty set. Sets are small values
// (one slice header) and are passed by value.
type Set struct {
	elems []int32
}

// FromSorted wraps a strictly-ascending slice as a Set without copying;
// the caller transfers ownership and must not mutate the slice again.
func FromSorted(sorted []int32) Set { return Set{elems: sorted} }

// FromUnsorted copies, sorts, and deduplicates elems into a Set. The
// input slice is not retained or modified.
func FromUnsorted(elems []int32) Set {
	if len(elems) == 0 {
		return Set{}
	}
	own := make([]int32, len(elems))
	copy(own, elems)
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	out := own[:1]
	for _, e := range own[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return Set{elems: out}
}

// Len returns the number of elements.
func (s Set) Len() int { return len(s.elems) }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return len(s.elems) == 0 }

// At returns the i-th smallest element.
func (s Set) At(i int) int32 { return s.elems[i] }

// Values returns the backing slice, sorted ascending. It is a view:
// callers must not mutate it.
func (s Set) Values() []int32 { return s.elems }

// Contains reports whether x is in the set.
func (s Set) Contains(x int32) bool { return ContainsSorted(s.elems, x) }

// IsSubsetOf reports whether s ⊆ t.
func (s Set) IsSubsetOf(t Set) bool { return IsSubset(s.elems, t.elems) }

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool { return Equal(s.elems, t.elems) }

// Fingerprint returns the set's 64-bit FNV-1a fingerprint.
func (s Set) Fingerprint() uint64 { return Fingerprint64(s.elems) }

// String renders the set like a printed int32 slice ("[1 2 3]").
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range s.elems {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	b.WriteByte(']')
	return b.String()
}

// Intersect returns a ∩ b. When the result equals one of the inputs it
// is returned as-is (Sets are immutable, so sharing is safe); otherwise
// the result is allocated exactly.
func Intersect(a, b Set) Set {
	n := IntersectCount(a.elems, b.elems)
	switch {
	case n == len(a.elems):
		return a
	case n == len(b.elems):
		return b
	case n == 0:
		return Set{}
	}
	return Set{elems: AppendIntersect(make([]int32, 0, n), a.elems, b.elems)}
}

// Union returns a ∪ b, sharing an input when it already is the union.
func Union(a, b Set) Set {
	n := len(a.elems) + len(b.elems) - IntersectCount(a.elems, b.elems)
	switch {
	case n == len(a.elems):
		return a
	case n == len(b.elems):
		return b
	}
	return Set{elems: AppendUnion(make([]int32, 0, n), a.elems, b.elems)}
}

// Difference returns a \ b, sharing a when b removes nothing.
func Difference(a, b Set) Set {
	n := len(a.elems) - IntersectCount(a.elems, b.elems)
	switch {
	case n == len(a.elems):
		return a
	case n == 0:
		return Set{}
	}
	return Set{elems: AppendDiff(make([]int32, 0, n), a.elems, b.elems)}
}

// Jaccard returns |a∩b| / |a∪b|, defining empty/empty as 1.
func Jaccard(a, b Set) float64 {
	if len(a.elems) == 0 && len(b.elems) == 0 {
		return 1
	}
	inter := IntersectCount(a.elems, b.elems)
	return float64(inter) / float64(len(a.elems)+len(b.elems)-inter)
}
