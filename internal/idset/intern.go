package idset

// SetID is a dense identifier for an interned set: IDs are assigned
// 0, 1, 2, … in first-intern order, so they index external arrays
// directly and compare in O(1) — ID equality is set equality.
type SetID int32

// Interner deduplicates sorted sets into a shared append-only arena and
// assigns each distinct set a dense SetID. Lookups are fingerprint-
// bucketed with exact verification, so fingerprint collisions cost a
// comparison, never a wrong ID. Not safe for concurrent use.
type Interner[E Elem] struct {
	byFP map[uint64][]SetID
	// offs[id] .. offs[id+1] delimit set id in the arena.
	offs  []uint32
	arena []E
}

// NewInterner returns an empty interner.
func NewInterner[E Elem]() *Interner[E] {
	return &Interner[E]{
		byFP: make(map[uint64][]SetID),
		offs: []uint32{0},
	}
}

// Intern returns the ID of set, interning a copy on first sight. set
// must be sorted strictly ascending; it is not retained, so callers may
// pass scratch buffers.
func (in *Interner[E]) Intern(set []E) SetID {
	fp := Fingerprint64(set)
	for _, id := range in.byFP[fp] {
		if Equal(in.get(id), set) {
			return id
		}
	}
	id := SetID(len(in.offs) - 1)
	in.arena = append(in.arena, set...)
	in.offs = append(in.offs, uint32(len(in.arena)))
	in.byFP[fp] = append(in.byFP[fp], id)
	return id
}

// Lookup returns the ID of set without interning it, or -1 when the set
// has not been interned.
func (in *Interner[E]) Lookup(set []E) SetID {
	for _, id := range in.byFP[Fingerprint64(set)] {
		if Equal(in.get(id), set) {
			return id
		}
	}
	return -1
}

// Get returns the interned set as a view into the arena, sorted
// ascending. Callers must not mutate it. Views stay valid across later
// Intern calls (arena growth copies, it never moves live data under a
// returned view's backing array).
func (in *Interner[E]) Get(id SetID) []E { return in.get(id) }

func (in *Interner[E]) get(id SetID) []E {
	return in.arena[in.offs[id]:in.offs[id+1]:in.offs[id+1]]
}

// Len returns the number of distinct sets interned.
func (in *Interner[E]) Len() int { return len(in.offs) - 1 }

// Merge interns every set of src into in, in src's ID order, and
// returns the rebase table: remap[i] is in's SetID for src's SetID i.
// Sets in already holds keep their existing ID, so merging is
// idempotent and order-stable. src is not modified.
//
// This is the bridge for deterministic parallel construction: workers
// intern into private Interners without synchronization, and a
// single-threaded merge rebases each worker's dense local IDs onto the
// shared interner. Because local IDs are assigned in first-intern
// order, replaying a worker's operations through remap reproduces the
// exact sequential interning order.
func (in *Interner[E]) Merge(src *Interner[E]) []SetID {
	remap := make([]SetID, src.Len())
	for id := range remap {
		remap[id] = in.Intern(src.get(SetID(id)))
	}
	return remap
}
