// Package fuse implements the knowledge-fusion preprocessing the paper
// notes it relies on ("we leverage existing techniques [15, 25] to
// identify correct facts in T_W and reduce the noises in web sources"):
// confidence-weighted truth finding over conflicting extractions.
//
// The extractor emits the same (subject, predicate) with different
// objects — a correct value and corrupted ones, across one or many
// pages. For predicates that are functional (one true value per
// subject), fusion keeps the object with the highest accumulated
// confidence and drops the rest. Functionality is itself estimated from
// the data: a predicate is treated as functional when most subjects
// have a single dominant value.
package fuse

import (
	"sort"

	"midas/internal/dict"
	"midas/internal/fact"
)

// Params tunes fusion.
type Params struct {
	// FunctionalShare is the fraction of a predicate's subjects that
	// must be single-valued for the predicate to be treated as
	// functional (default 0.8).
	FunctionalShare float64
	// MinSupport is the minimum number of subjects required to judge a
	// predicate's functionality; rarer predicates are left untouched
	// (default 5).
	MinSupport int
}

// DefaultParams returns the defaults.
func DefaultParams() Params { return Params{FunctionalShare: 0.8, MinSupport: 5} }

// Stats reports what fusion did.
type Stats struct {
	// FunctionalPredicates judged functional.
	FunctionalPredicates int
	// Conflicts is the number of (subject, predicate) groups that had
	// more than one object on a functional predicate.
	Conflicts int
	// Dropped is the number of facts removed as losing conflict values.
	Dropped int
}

// Fuse resolves conflicts in a corpus and returns the cleaned corpus
// (sharing the space and URL dictionary) plus statistics. Order is
// preserved for surviving facts.
func Fuse(c *fact.Corpus, p Params) (*fact.Corpus, Stats) {
	if p.FunctionalShare == 0 {
		p.FunctionalShare = 0.8
	}
	if p.MinSupport == 0 {
		p.MinSupport = 5
	}

	type sp struct{ s, p dict.ID }
	// Accumulate per-(subject, predicate) object confidence mass.
	objMass := make(map[sp]map[dict.ID]float64)
	for _, e := range c.Facts {
		key := sp{e.Triple.S, e.Triple.P}
		m, ok := objMass[key]
		if !ok {
			m = make(map[dict.ID]float64, 2)
			objMass[key] = m
		}
		m[e.Triple.O] += float64(e.Conf)
	}

	// Judge predicate functionality: share of subjects with one value.
	type fn struct{ single, total int }
	perPred := make(map[dict.ID]*fn)
	for key, m := range objMass {
		f, ok := perPred[key.p]
		if !ok {
			f = &fn{}
			perPred[key.p] = f
		}
		f.total++
		if len(m) == 1 {
			f.single++
		}
	}
	functional := make(map[dict.ID]bool)
	st := Stats{}
	for pred, f := range perPred {
		if f.total >= p.MinSupport && float64(f.single) >= p.FunctionalShare*float64(f.total) {
			functional[pred] = true
			st.FunctionalPredicates++
		}
	}

	// Pick winners for conflicted functional cells.
	winner := make(map[sp]dict.ID)
	for key, m := range objMass {
		if !functional[key.p] || len(m) == 1 {
			continue
		}
		st.Conflicts++
		// Deterministic argmax: highest mass, ties to the lower ID.
		objs := make([]dict.ID, 0, len(m))
		for o := range m {
			objs = append(objs, o)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		best := objs[0]
		for _, o := range objs[1:] {
			if m[o] > m[best] {
				best = o
			}
		}
		winner[key] = best
	}

	out := &fact.Corpus{Space: c.Space, URLs: c.URLs, Facts: make([]fact.Extracted, 0, len(c.Facts))}
	for _, e := range c.Facts {
		if w, conflicted := winner[sp{e.Triple.S, e.Triple.P}]; conflicted && e.Triple.O != w {
			st.Dropped++
			continue
		}
		out.Facts = append(out.Facts, e)
	}
	return out, st
}
