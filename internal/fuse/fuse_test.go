package fuse_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"midas/internal/extract"
	"midas/internal/fact"
	"midas/internal/fuse"
	"midas/internal/kb"
)

func addFact(c *fact.Corpus, s, p, o string, conf float64) {
	c.Add(fact.Fact{Subject: s, Predicate: p, Object: o, Confidence: conf, URL: "http://x.com/p"})
}

// TestFuseResolvesConflicts: on a functional predicate, the
// high-confidence value wins and the corrupted one is dropped.
func TestFuseResolvesConflicts(t *testing.T) {
	c := fact.NewCorpus(nil)
	// Ten clean subjects establish "capital" as functional.
	for i := 0; i < 10; i++ {
		addFact(c, fmt.Sprintf("country%d", i), "capital", fmt.Sprintf("city%d", i), 0.9)
	}
	// One conflicted subject: the true value seen twice at high
	// confidence, a corrupted value once at low confidence.
	addFact(c, "atlantis", "capital", "poseidonia", 0.9)
	addFact(c, "atlantis", "capital", "poseidonia", 0.8)
	addFact(c, "atlantis", "capital", "spurious-123", 0.5)

	out, st := fuse.Fuse(c, fuse.DefaultParams())
	if st.FunctionalPredicates != 1 {
		t.Errorf("functional predicates = %d, want 1", st.FunctionalPredicates)
	}
	if st.Conflicts != 1 || st.Dropped != 1 {
		t.Errorf("conflicts/dropped = %d/%d, want 1/1", st.Conflicts, st.Dropped)
	}
	if len(out.Facts) != len(c.Facts)-1 {
		t.Errorf("surviving facts = %d, want %d", len(out.Facts), len(c.Facts)-1)
	}
	for _, e := range out.Facts {
		if out.Space.Objects.String(e.Triple.O) == "spurious-123" {
			t.Error("corrupted value survived fusion")
		}
	}
}

// TestFuseKeepsMultiValuedPredicates: predicates that are genuinely
// multi-valued (most subjects have several values) are untouched.
func TestFuseKeepsMultiValuedPredicates(t *testing.T) {
	c := fact.NewCorpus(nil)
	for i := 0; i < 10; i++ {
		addFact(c, fmt.Sprintf("film%d", i), "starring", fmt.Sprintf("actorA%d", i), 0.9)
		addFact(c, fmt.Sprintf("film%d", i), "starring", fmt.Sprintf("actorB%d", i), 0.6)
	}
	out, st := fuse.Fuse(c, fuse.DefaultParams())
	if st.FunctionalPredicates != 0 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want nothing dropped", st)
	}
	if len(out.Facts) != len(c.Facts) {
		t.Errorf("facts = %d, want all %d", len(out.Facts), len(c.Facts))
	}
}

// TestFuseMinSupport: rare predicates are never judged.
func TestFuseMinSupport(t *testing.T) {
	c := fact.NewCorpus(nil)
	addFact(c, "a", "rarepred", "x", 0.9)
	addFact(c, "a", "rarepred", "y", 0.2)
	out, st := fuse.Fuse(c, fuse.DefaultParams())
	if st.FunctionalPredicates != 0 || len(out.Facts) != 2 {
		t.Errorf("rare predicate was fused: %+v, %d facts", st, len(out.Facts))
	}
}

// TestFuseAgainstExtractor: fusing the extractor's output recovers most
// corrupted functional cells — the end-to-end cleanup loop the paper
// assumes.
func TestFuseAgainstExtractor(t *testing.T) {
	sp := kb.NewSpace()
	rng := rand.New(rand.NewSource(4))
	params := extract.Params{
		Recall:      1,
		WrongRate:   0.15,
		ConfCorrect: [2]float64{0.8, 1},
		ConfWrong:   [2]float64{0.3, 0.7},
	}
	corpus := fact.NewCorpus(sp)
	truth := make(map[kb.Triple]bool)
	for e := 0; e < 200; e++ {
		facts := []kb.Triple{sp.Intern(fmt.Sprintf("e%d", e), "status", fmt.Sprintf("v%d", e%3))}
		truth[facts[0]] = true
		for _, em := range extract.Apply(rng, facts, -1, sp, params) {
			corpus.AddTriple(em.Triple, corpus.URLs.Put("http://x.com/p"), float32(em.Conf))
		}
	}
	wrongBefore := countWrong(corpus, truth)
	fused, st := fuse.Fuse(corpus, fuse.DefaultParams())
	wrongAfter := countWrong(fused, truth)
	if st.Dropped == 0 {
		t.Fatal("fusion dropped nothing on a noisy corpus")
	}
	if wrongAfter*2 > wrongBefore {
		t.Errorf("wrong facts only fell %d → %d; want at least halved", wrongBefore, wrongAfter)
	}
	// Correct facts must survive.
	correct := 0
	for _, e := range fused.Facts {
		if truth[e.Triple] {
			correct++
		}
	}
	if correct < 195 {
		t.Errorf("only %d correct facts survive, want ≥ 195", correct)
	}
}

func countWrong(c *fact.Corpus, truth map[kb.Triple]bool) int {
	n := 0
	for _, e := range c.Facts {
		if !truth[e.Triple] {
			n++
		}
	}
	return n
}

// TestFuseDeterministic property: fusion output is stable and never
// grows the corpus.
func TestFuseDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := fact.NewCorpus(nil)
		for i := 0; i < 150; i++ {
			addFact(c,
				fmt.Sprintf("s%d", rng.Intn(20)),
				fmt.Sprintf("p%d", rng.Intn(3)),
				fmt.Sprintf("o%d", rng.Intn(6)),
				0.3+0.7*rng.Float64())
		}
		a, sa := fuse.Fuse(c, fuse.DefaultParams())
		b, sb := fuse.Fuse(c, fuse.DefaultParams())
		if len(a.Facts) != len(b.Facts) || sa != sb {
			return false
		}
		if len(a.Facts) > len(c.Facts) {
			return false
		}
		for i := range a.Facts {
			if a.Facts[i].Triple != b.Facts[i].Triple {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
