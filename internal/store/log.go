package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"midas"
	"midas/internal/binio"
)

const (
	walMagic   = "MWL1"
	snapMagic  = "MSNP"
	cacheMagic = "MCAC"
	cacheName  = "cache.bin"
)

var (
	// ErrClosed reports an append to a closed (deleted or shut-down) log.
	ErrClosed = errors.New("store: log closed")
	// ErrKilled reports an append after Kill froze the store (the soak
	// harness's in-process SIGKILL).
	ErrKilled = errors.New("store: store killed")
)

func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// parseSeq extracts the sequence number from a segment or snapshot file
// name matching prefix...suffix.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var seq uint64
	if _, err := fmt.Sscanf(mid, "%d", &seq); err != nil || mid == "" {
		return 0, false
	}
	return seq, true
}

// Log is the durable state of one session: a write-ahead log of its
// confirmed mutation stream in checksummed frames, segment-rotated by
// compacting snapshots, plus the persisted result cache. Appends are
// expected to be externally serialized against each other and against
// Snapshot (the serving layer holds a per-session mutation mutex);
// SaveCache may run concurrently with anything.
type Log struct {
	st      *Store
	name    string
	dir     string
	options []byte // create-time options JSON, stamped into snapshots

	mu       sync.Mutex
	f        *os.File
	seq      uint64 // active segment
	walBytes int64  // bytes in segments not yet covered by a snapshot
	written  int64  // monotonic append offset, across segments
	closed   bool
	frozen   bool

	// Group commit: batched appenders wait on cond until the syncer's
	// fsync covers their record (synced >= their end offset) or the log
	// dies. One fsync acknowledges every record written before it.
	cond    *sync.Cond
	synced  int64
	syncErr error
	syncReq chan struct{}
	stop    chan struct{}
	syncWG  sync.WaitGroup

	cmu sync.Mutex // serializes cache.bin writes
}

// header writes the segment header for seq.
func writeSegmentHeader(f *os.File, seq uint64) error {
	bw := binio.NewWriter(f)
	bw.Magic(walMagic)
	bw.Uvarint(seq)
	return bw.Flush()
}

// newLog opens a fresh log for a session being created: first segment,
// create record appended and (policy permitting) synced before return.
func (st *Store) newLog(name string, optionsJSON []byte) (*Log, error) {
	dir := filepath.Join(st.sessionsDir(), name)
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{st: st, name: name, dir: dir, options: append([]byte(nil), optionsJSON...), seq: 1}
	l.cond = sync.NewCond(&l.mu)
	f, err := os.OpenFile(filepath.Join(dir, segmentName(1)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	if err := writeSegmentHeader(f, 1); err != nil {
		f.Close()
		return nil, err
	}
	l.startSyncer()
	if err := l.append(encodeCreate(name, optionsJSON)); err != nil {
		l.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// startSyncer launches the group-commit goroutine (batch policy only).
func (l *Log) startSyncer() {
	if l.st.opts.Fsync != PolicyBatch {
		return
	}
	l.syncReq = make(chan struct{}, 1)
	l.stop = make(chan struct{})
	l.syncWG.Add(1)
	go func() {
		defer l.syncWG.Done()
		for {
			select {
			case <-l.stop:
				return
			case <-l.syncReq:
			}
			// The batching window: let concurrent appenders pile onto
			// this fsync instead of each paying their own.
			time.Sleep(l.st.opts.BatchInterval)
			l.doSync()
		}
	}()
}

// doSync fsyncs the active segment and releases every appender whose
// record it covers.
func (l *Log) doSync() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.doSyncLocked()
}

func (l *Log) doSyncLocked() {
	if l.closed || l.frozen || l.f == nil {
		return
	}
	target := l.written
	err := l.f.Sync()
	if err != nil {
		if l.syncErr == nil {
			l.syncErr = err
		}
	} else if target > l.synced {
		l.synced = target
		l.st.noteFsync()
	}
	l.cond.Broadcast()
}

// append frames, writes, and — per the store's fsync policy — makes
// payload durable before returning. Callers serialize appends.
func (l *Log) append(payload []byte) error {
	frame := frameRecord(payload)
	l.mu.Lock()
	if err := l.deadLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		l.mu.Unlock()
		return err
	}
	l.written += int64(len(frame))
	l.walBytes += int64(len(frame))
	myEnd := l.written
	l.st.walTotal.Add(int64(len(frame)))
	l.st.records.Inc()

	switch l.st.opts.Fsync {
	case PolicyNone:
		l.mu.Unlock()
		return nil
	case PolicyAlways:
		l.doSyncLocked()
		err := l.syncErr
		l.mu.Unlock()
		return err
	}
	// PolicyBatch: wake the syncer and wait for the fsync covering us.
	select {
	case l.syncReq <- struct{}{}:
	default:
	}
	for l.synced < myEnd && l.syncErr == nil {
		if err := l.deadLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
		l.cond.Wait()
	}
	err := l.syncErr
	l.mu.Unlock()
	return err
}

func (l *Log) deadLocked() error {
	switch {
	case l.frozen:
		return ErrKilled
	case l.closed:
		return ErrClosed
	}
	return nil
}

// AppendFacts logs an AddFacts batch.
func (l *Log) AppendFacts(facts []midas.Fact) error { return l.append(encodeFacts(facts)) }

// AppendKB logs a KB bulk load by content: the format tag and the exact
// body bytes the live load consumed.
func (l *Log) AppendKB(format string, body []byte) error { return l.append(encodeKB(format, body)) }

// AppendAbsorb logs a batch of absorbed slices.
func (l *Log) AppendAbsorb(slices []AbsorbSlice) error { return l.append(encodeAbsorb(slices)) }

// NeedsSnapshot reports whether the un-snapshotted WAL has crossed the
// store's snapshot threshold.
func (l *Log) NeedsSnapshot() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.closed && !l.frozen && l.walBytes >= l.st.opts.SnapshotBytes
}

// Snapshot compacts the log: serialize sess (which must be quiescent
// with respect to mutations and appends — the caller holds the
// session's mutation mutex), stamp its fingerprint and KB epoch, write
// the snapshot with temp-file + rename atomicity, rotate to a fresh
// segment, and delete the files the snapshot supersedes. Every crash
// window recovers: before the rename the old snapshot + segments are
// intact; after it the stale files are ignored and re-deleted.
func (l *Log) Snapshot(sess *midas.Session) error {
	l.mu.Lock()
	if err := l.deadLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	newSeq := l.seq + 1
	l.mu.Unlock()

	fp := sess.Fingerprint()
	epoch := sess.KBEpoch()
	var state bytes.Buffer
	if err := sess.WriteState(&state); err != nil {
		return err
	}
	var payload bytes.Buffer
	bw := binio.NewWriter(&payload)
	bw.String(l.name)
	bw.Bytes(l.options)
	bw.Uvarint(fp)
	bw.Uvarint(epoch)
	bw.Bytes(state.Bytes())
	if err := bw.Flush(); err != nil {
		return err
	}

	tmp := filepath.Join(l.dir, snapshotName(newSeq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	sw := binio.NewWriter(f)
	sw.Magic(snapMagic)
	if err := sw.Flush(); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(frameRecord(payload.Bytes())); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// The new segment exists before the snapshot is named: a recovery
	// that sees snap-S can always replay from wal-S.
	nf, err := os.OpenFile(filepath.Join(l.dir, segmentName(newSeq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeSegmentHeader(nf, newSeq); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName(newSeq))); err != nil {
		nf.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		nf.Close()
		return err
	}

	l.mu.Lock()
	if err := l.deadLocked(); err != nil {
		// The log died (freeze or delete) while the snapshot was being
		// written; leave its state files alone and keep the new segment
		// out of play.
		l.mu.Unlock()
		nf.Close()
		return err
	}
	old := l.f
	l.f = nf
	l.seq = newSeq
	l.st.walTotal.Add(-l.walBytes)
	l.walBytes = 0
	// Everything appended so far is durable through the snapshot.
	if l.written > l.synced {
		l.synced = l.written
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	if old != nil {
		old.Close()
	}

	l.removeSuperseded(newSeq)
	l.st.noteSnapshot()
	return nil
}

// removeSuperseded deletes segments and snapshots older than keepSeq,
// and stray snapshot temp files. Failures are ignored: recovery skips
// stale files by sequence, and re-deletes.
func (l *Log) removeSuperseded(keepSeq uint64) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(l.dir, name))
			continue
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok && seq < keepSeq {
			os.Remove(filepath.Join(l.dir, name))
		}
		if seq, ok := parseSeq(name, "snap-", ".snap"); ok && seq < keepSeq {
			os.Remove(filepath.Join(l.dir, name))
		}
	}
}

// cachePayload is the persisted result cache: the session fingerprint
// the result was computed at, plus the result as JSON (float64 values
// round-trip exactly through Go's JSON encoding).
type cachePayload struct {
	Fingerprint uint64        `json:"fingerprint"`
	Result      *midas.Result `json:"result"`
}

// SaveCache persists the session's single-entry result cache with
// write + rename and no fsync: the page cache survives a process kill,
// and after an OS crash a missing or torn cache is merely a cache miss.
func (l *Log) SaveCache(fp uint64, res *midas.Result) {
	l.mu.Lock()
	dead := l.closed || l.frozen
	l.mu.Unlock()
	if dead {
		return
	}
	body, err := json.Marshal(cachePayload{Fingerprint: fp, Result: res})
	if err != nil {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(cacheMagic)
	buf.Write(frameRecord(body))

	l.cmu.Lock()
	defer l.cmu.Unlock()
	tmp := filepath.Join(l.dir, cacheName+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return
	}
	os.Rename(tmp, filepath.Join(l.dir, cacheName))
}

// loadCache reads a persisted result cache; any damage is a miss.
func loadCache(dir string) (uint64, *midas.Result) {
	b, err := os.ReadFile(filepath.Join(dir, cacheName))
	if err != nil || len(b) < 4 || string(b[:4]) != cacheMagic {
		return 0, nil
	}
	var body []byte
	n, clean, _ := scanRecords(bytes.NewReader(b[4:]), func(p []byte) error {
		body = p
		return nil
	})
	if n != 1 || !clean || body == nil {
		return 0, nil
	}
	var cp cachePayload
	if json.Unmarshal(body, &cp) != nil || cp.Result == nil {
		return 0, nil
	}
	return cp.Fingerprint, cp.Result
}

// Close stops the syncer and closes the active segment after a final
// fsync. Appends already in flight are released.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed || l.frozen {
		l.mu.Unlock()
		return nil
	}
	if l.f != nil && l.st.opts.Fsync != PolicyNone {
		l.doSyncLocked()
	}
	l.closed = true
	f := l.f
	l.f = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	l.stopSyncer()
	if f != nil {
		return f.Close()
	}
	return nil
}

// freeze is the in-process hard-stop: no final fsync, the syncer dies,
// blocked appenders fail with ErrKilled, files close without flushing
// beyond what the OS already holds — the closest a live process gets to
// SIGKILL semantics.
func (l *Log) freeze() {
	l.mu.Lock()
	if l.closed || l.frozen {
		l.mu.Unlock()
		return
	}
	l.frozen = true
	f := l.f
	l.f = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	l.stopSyncer()
	if f != nil {
		f.Close()
	}
}

func (l *Log) stopSyncer() {
	if l.stop != nil {
		close(l.stop)
		l.syncWG.Wait()
		l.stop = nil
	}
}

// Delete closes the log and removes the session's files: the directory
// is atomically renamed into the store's trash (the tombstone — a
// half-deleted session can never be half-recovered) and then removed;
// recovery empties any trash a crash left behind.
func (l *Log) Delete() error {
	l.mu.Lock()
	if l.frozen {
		l.mu.Unlock()
		return ErrKilled
	}
	alreadyClosed := l.closed
	l.closed = true
	f := l.f
	l.f = nil
	l.st.walTotal.Add(-l.walBytes)
	l.walBytes = 0
	l.cond.Broadcast()
	l.mu.Unlock()
	l.stopSyncer()
	if f != nil {
		f.Close()
	}
	if alreadyClosed {
		return nil
	}
	l.st.dropLog(l.name)
	trashed, err := l.st.trash(l.dir)
	if err != nil {
		return err
	}
	os.RemoveAll(trashed)
	return nil
}

// segmentSeqs lists the WAL segment sequence numbers in dir, ascending.
func segmentSeqs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// snapshotSeqs lists snapshot sequence numbers in dir, ascending.
func snapshotSeqs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
