package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"midas"
	"midas/internal/binio"
)

// DecodeOptions turns a session's stored options JSON back into
// midas.Options. The serving layer supplies it (the JSON shape is the
// API's, which this package treats as opaque) and may decorate the
// result — the soak harness re-plants its fault-injecting detector
// through it.
type DecodeOptions func(optionsJSON []byte) (*midas.Options, error)

// Recovered is one session restored and verified by Recover.
type Recovered struct {
	Name    string
	Session *midas.Session
	// Fingerprint is the restored session's fingerprint (equal to the
	// snapshot stamp when one was loaded, recomputed after replay).
	Fingerprint uint64
	// Log continues the session's durable stream.
	Log *Log
	// CacheFingerprint and CacheResult restore the session's result
	// cache when a valid cache file survived; CacheResult is nil
	// otherwise.
	CacheFingerprint uint64
	CacheResult      *midas.Result
	// Replayed counts WAL records applied on top of the snapshot;
	// TornTail reports that the final segment ended mid-record.
	Replayed int
	TornTail bool
}

// Quarantined is a session Recover refused to serve: its directory was
// moved to quarantine/ for inspection.
type Quarantined struct {
	Name string
	Dir  string
	Err  error
}

// Recovery is the outcome of a Recover pass.
type Recovery struct {
	Sessions    []Recovered
	Quarantined []Quarantined
	// Dropped lists session directories removed because they held no
	// durable create record — the creation was never acknowledged.
	Dropped []string
}

// Recover restores every session under the data directory: empty the
// tombstone trash, load each session's newest valid snapshot, verify
// the restored Fingerprint() against the stamp, replay the WAL
// segments the snapshot does not cover (tolerating a torn final
// record), and compact the result into a fresh snapshot so the next
// crash recovers from here. Sessions that fail verification or replay
// are quarantined, not served and not deleted. Call once, before
// Create.
func (st *Store) Recover(ctx context.Context, decode DecodeOptions) (*Recovery, error) {
	start := time.Now()
	os.RemoveAll(st.trashDir())
	entries, err := os.ReadDir(st.sessionsDir())
	if err != nil {
		return nil, err
	}
	rec := &Recovery{}
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return rec, err
		}
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		dir := filepath.Join(st.sessionsDir(), name)
		r, err := st.recoverSession(name, dir, decode)
		switch {
		case err != nil:
			qdir, qerr := st.quarantine(dir)
			if qerr != nil {
				return rec, fmt.Errorf("quarantining session %q after %v: %w", name, err, qerr)
			}
			st.logger().Warn(ctx, "session quarantined", "session", name, "dir", qdir, "err", err)
			rec.Quarantined = append(rec.Quarantined, Quarantined{Name: name, Dir: qdir, Err: err})
		case r == nil:
			// No durable create record: the creation was never acked.
			os.RemoveAll(dir)
			rec.Dropped = append(rec.Dropped, name)
		default:
			st.mu.Lock()
			st.logs[name] = r.Log
			st.mu.Unlock()
			st.logger().Info(ctx, "session recovered", "session", name,
				"fingerprint", fmt.Sprintf("%016x", r.Fingerprint),
				"replayed", r.Replayed, "torn_tail", r.TornTail)
			rec.Sessions = append(rec.Sessions, *r)
		}
	}
	st.logger().Info(ctx, "recovery finished",
		"sessions", len(rec.Sessions), "quarantined", len(rec.Quarantined),
		"dropped", len(rec.Dropped), "dur", time.Since(start))
	return rec, nil
}

// quarantine moves dir aside under quarantine/, uniquified by time.
func (st *Store) quarantine(dir string) (string, error) {
	if err := os.MkdirAll(st.quarantineDir(), 0o755); err != nil {
		return "", err
	}
	dst := filepath.Join(st.quarantineDir(), fmt.Sprintf("%s-%d", filepath.Base(dir), time.Now().UnixNano()))
	if err := os.Rename(dir, dst); err != nil {
		return "", err
	}
	return dst, nil
}

// recoverSession restores one session directory. Returns (nil, nil)
// when the directory holds no acked creation and should be dropped.
func (st *Store) recoverSession(name, dir string, decode DecodeOptions) (*Recovered, error) {
	snapSeqs, err := snapshotSeqs(dir)
	if err != nil {
		return nil, err
	}
	segSeqs, err := segmentSeqs(dir)
	if err != nil {
		return nil, err
	}

	var (
		sess       *midas.Session
		options    []byte
		startSeq   uint64 = 1
		snapErr    error
		haveCreate bool
	)
	// Newest parseable snapshot wins. A snapshot is fsynced before its
	// rename, so damage here is disk corruption, not a crash artifact —
	// but an older snapshot cannot substitute (its covering segments
	// were deleted), so a bad newest snapshot quarantines below.
	if len(snapSeqs) > 0 {
		seq := snapSeqs[len(snapSeqs)-1]
		sess, options, snapErr = st.readSnapshot(name, filepath.Join(dir, snapshotName(seq)), decode)
		if snapErr != nil {
			return nil, fmt.Errorf("snapshot %d: %w", seq, snapErr)
		}
		startSeq = seq
		haveCreate = true
	}

	// Replay segments ≥ startSeq in order. They must be contiguous from
	// startSeq — a gap means the history is incomplete.
	var replay []uint64
	for _, seq := range segSeqs {
		if seq >= startSeq {
			replay = append(replay, seq)
		}
	}
	if sess != nil {
		if len(replay) == 0 || replay[0] != startSeq {
			return nil, fmt.Errorf("snapshot %d has no covering segment", startSeq)
		}
	} else if len(replay) == 0 {
		return nil, nil // empty directory: nothing acked
	}
	for i := 1; i < len(replay); i++ {
		if replay[i] != replay[i-1]+1 {
			return nil, fmt.Errorf("WAL gap: segment %d follows %d", replay[i], replay[i-1])
		}
	}

	replayed := 0
	torn := false
	for i, seq := range replay {
		final := i == len(replay)-1
		n, clean, err := st.replaySegment(dir, seq, &sess, &options, &haveCreate, decode)
		replayed += n
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", seq, err)
		}
		if !clean {
			if !final {
				// Tears are only legal at the tail of the final segment:
				// earlier segments were fully synced before rotation.
				return nil, fmt.Errorf("segment %d: torn record in non-final segment", seq)
			}
			torn = true
		}
	}
	if sess == nil {
		// Segments existed but held no create record (torn before the
		// creation was acked): never acknowledged, drop.
		return nil, nil
	}

	// Build the live log on the final segment, then compact: recovery
	// always leaves a fresh snapshot + empty segment behind, clearing
	// torn tails and bounding the next recovery's replay.
	activeSeq := replay[len(replay)-1]
	f, err := os.OpenFile(filepath.Join(dir, segmentName(activeSeq)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{st: st, name: name, dir: dir, options: options, seq: activeSeq, f: f, walBytes: size, written: size}
	l.cond = sync.NewCond(&l.mu)
	st.walTotal.Add(size)
	if err := l.Snapshot(sess); err != nil {
		l.f.Close()
		return nil, fmt.Errorf("post-recovery snapshot: %w", err)
	}
	l.startSyncer()

	r := &Recovered{
		Name: name, Session: sess, Fingerprint: sess.Fingerprint(),
		Log: l, Replayed: replayed, TornTail: torn,
	}
	r.CacheFingerprint, r.CacheResult = loadCache(dir)
	return r, nil
}

// replaySegment scans one segment, applying each record to the session
// (creating it at the opCreate record). haveCreate guards against
// duplicate or missing creates.
func (st *Store) replaySegment(dir string, seq uint64, sess **midas.Session, options *[]byte, haveCreate *bool, decode DecodeOptions) (int, bool, error) {
	// Segments are bounded by the snapshot threshold plus one batch, so
	// whole-file reads are fine and avoid mixing buffered readers.
	b, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
	if err != nil {
		return 0, false, err
	}
	if len(b) < len(walMagic) || string(b[:len(walMagic)]) != walMagic {
		// A torn header can only happen on the segment being created
		// when the crash hit; treat as an empty torn segment.
		return 0, false, nil
	}
	hdrSeq, n := binary.Uvarint(b[len(walMagic):])
	if n <= 0 {
		return 0, false, nil
	}
	if hdrSeq != seq {
		return 0, false, fmt.Errorf("segment header says %d", hdrSeq)
	}
	return scanRecords(bytes.NewReader(b[len(walMagic)+n:]), func(payload []byte) error {
		m, err := decodeMutation(payload)
		if err != nil {
			return err
		}
		if m.op == opCreate {
			if *haveCreate {
				return fmt.Errorf("duplicate create record")
			}
			opts, err := decode(m.options)
			if err != nil {
				return fmt.Errorf("decoding session options: %w", err)
			}
			*sess = midas.NewSession(nil, opts)
			*options = m.options
			*haveCreate = true
			return nil
		}
		if *sess == nil {
			return fmt.Errorf("mutation before create record")
		}
		return m.apply(*sess)
	})
}

// readSnapshot loads and verifies one snapshot file: parse the single
// framed record, decode the metadata, rebuild the session from the
// state block, and require the rebuilt Fingerprint() and KB epoch to
// equal the stamps — the recovery invariant that catches any divergence
// between serialization and the live session.
func (st *Store) readSnapshot(name, path string, decode DecodeOptions) (*midas.Session, []byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return nil, nil, fmt.Errorf("%w: bad snapshot magic", binio.ErrCorrupt)
	}
	var payload []byte
	n, clean, err := scanRecords(bytes.NewReader(b[len(snapMagic):]), func(p []byte) error {
		payload = p
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if n != 1 || !clean {
		return nil, nil, fmt.Errorf("%w: snapshot is not one clean record", binio.ErrCorrupt)
	}
	br := binio.NewReader(bytes.NewReader(payload))
	br.MaxBytes = maxRecordBytes
	snapName := br.String()
	options := br.Bytes()
	fp := br.Uvarint()
	epoch := br.Uvarint()
	state := br.Bytes()
	if err := br.Err(); err != nil {
		return nil, nil, err
	}
	if snapName != name {
		return nil, nil, fmt.Errorf("%w: snapshot names session %q", binio.ErrCorrupt, snapName)
	}
	opts, err := decode(options)
	if err != nil {
		return nil, nil, fmt.Errorf("decoding session options: %w", err)
	}
	sess, err := midas.ReadState(bytes.NewReader(state), opts)
	if err != nil {
		return nil, nil, err
	}
	if got := sess.Fingerprint(); got != fp {
		return nil, nil, fmt.Errorf("fingerprint mismatch: restored %016x, stamped %016x", got, fp)
	}
	if got := sess.KBEpoch(); got != epoch {
		return nil, nil, fmt.Errorf("KB epoch mismatch: restored %d, stamped %d", got, epoch)
	}
	return sess, options, nil
}
