// Differential proof of the durability subsystem: a session recovered
// from any crash point — every WAL record boundary, torn mid-record
// tails, mid-snapshot and mid-compaction windows — must be
// fingerprint-identical to the live session at the last acknowledged
// mutation, and discovery on the recovered session must return the same
// slices, profit for profit.
package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"midas"
	"midas/internal/datagen"
	"midas/internal/testutil"
)

// op is one scripted mutation, applied identically to the live session
// and to the WAL.
type op struct {
	facts  []midas.Fact
	format string // KB load when non-empty
	body   []byte
	slices []AbsorbSlice
}

func (o op) apply(sess *midas.Session) {
	switch {
	case o.format != "":
		if _, err := sess.KB().LoadTSV(bytes.NewReader(o.body)); err != nil {
			panic(err)
		}
	case o.slices != nil:
		for _, sl := range o.slices {
			sess.Absorb(midas.Slice{Source: sl.Source, Entities: sl.Entities})
		}
	default:
		sess.AddFacts(o.facts...)
	}
}

func (o op) log(t *testing.T, l *Log) {
	t.Helper()
	var err error
	switch {
	case o.format != "":
		err = l.AppendKB(o.format, o.body)
	case o.slices != nil:
		err = l.AppendAbsorb(o.slices)
	default:
		err = l.AppendFacts(o.facts)
	}
	if err != nil {
		t.Fatalf("append: %v", err)
	}
}

// buildScript generates a deterministic mutation stream covering every
// op type: fact batches from a synthetic world, a KB bulk load, and an
// absorb of a genuinely discovered slice.
func buildScript(t *testing.T) []op {
	t.Helper()
	world := datagen.ReVerbSlim(datagen.SlimParams{Domains: 6, GoodDomains: 3, Seed: 7})
	var facts []midas.Fact
	for _, e := range world.Corpus.Facts {
		s, p, o := world.Corpus.Space.StringTriple(e.Triple)
		facts = append(facts, midas.Fact{
			Subject: s, Predicate: p, Object: o,
			Confidence: float64(e.Conf),
			URL:        world.Corpus.URLs.String(e.URL),
		})
	}
	if len(facts) < 40 {
		t.Fatalf("world too small: %d facts", len(facts))
	}
	half := len(facts) / 2
	chunk := half/3 + 1
	var ops []op
	for i := 0; i < half; i += chunk {
		end := i + chunk
		if end > half {
			end = half
		}
		ops = append(ops, op{facts: facts[i:end]})
	}
	// A KB bulk load by content, mid-stream.
	var tsv bytes.Buffer
	for _, f := range facts[:8] {
		fmt.Fprintf(&tsv, "%s\t%s\t%s\n", f.Subject, f.Predicate, f.Object)
	}
	ops = append(ops, op{format: "tsv", body: tsv.Bytes()})
	// An absorb of a real discovered slice at this point in the stream.
	probe := midas.NewSession(nil, nil)
	for _, o := range ops {
		o.apply(probe)
	}
	res, err := probe.DiscoverContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) == 0 {
		t.Fatal("probe discovery found no slices")
	}
	sl := res.Slices[0]
	ops = append(ops, op{slices: []AbsorbSlice{{Source: sl.Source, Entities: sl.Entities}}})
	for i := half; i < len(facts); i += chunk {
		end := i + chunk
		if end > len(facts) {
			end = len(facts)
		}
		ops = append(ops, op{facts: facts[i:end]})
	}
	return ops
}

// oracle builds a fresh session that applied ops[:n] — the
// never-crashed reference.
func oracle(ops []op, n int) *midas.Session {
	sess := midas.NewSession(nil, nil)
	for _, o := range ops[:n] {
		o.apply(sess)
	}
	return sess
}

func decodeNil([]byte) (*midas.Options, error) { return nil, nil }

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func recoverDir(t *testing.T, dir string) (*Store, *Recovery) {
	t.Helper()
	st, err := Open(Options{Dir: dir, Fsync: PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	rec, err := st.Recover(context.Background(), decodeNil)
	if err != nil {
		t.Fatal(err)
	}
	return st, rec
}

// sameDiscovery asserts two sessions produce identical discovery
// results, slice for slice, profits included.
func sameDiscovery(t *testing.T, label string, a, b *midas.Session) {
	t.Helper()
	ra, err := a.DiscoverContext(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	rb, err := b.DiscoverContext(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !reflect.DeepEqual(ra.Slices, rb.Slices) {
		t.Fatalf("%s: discovery diverged\noracle:    %+v\nrecovered: %+v", label, ra.Slices, rb.Slices)
	}
}

// driveStore opens a store at dir, creates session "s1", applies+logs
// every op, and returns the live session, the log, and the byte offset
// of every record boundary in segment 1 (boundary b = state after the
// create record and ops[:b-1]; boundary 0 is the segment header alone).
func driveStore(t *testing.T, dir string) (*Store, *midas.Session, *Log, []op, []int64, []uint64) {
	t.Helper()
	st, err := Open(Options{Dir: dir, Fsync: PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	live := midas.NewSession(nil, nil)
	l, err := st.Create("s1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "sessions", "s1", segmentName(1))
	headerSize := int64(len(walMagic) + 1) // 4-byte magic + uvarint(1)
	ops := buildScript(t)
	boundaries := []int64{headerSize, fileSize(t, seg)}
	fps := []uint64{live.Fingerprint()}
	for _, o := range ops {
		o.apply(live)
		o.log(t, l)
		boundaries = append(boundaries, fileSize(t, seg))
		fps = append(fps, live.Fingerprint())
	}
	return st, live, l, ops, boundaries, fps
}

// TestRecoverAtEveryRecordBoundary is the core differential proof:
// truncate the WAL at every record boundary and at torn mid-record
// offsets, recover, and require the recovered session to equal the
// oracle that applied exactly the surviving prefix.
func TestRecoverAtEveryRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	st, live, _, ops, boundaries, fps := driveStore(t, dir)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_ = live

	nB := len(boundaries)
	for b := 0; b < nB; b++ {
		// Torn offsets probe inside the next record's frame.
		cuts := []int64{boundaries[b]}
		if b+1 < nB {
			next := boundaries[b+1]
			cuts = append(cuts, boundaries[b]+1, (boundaries[b]+next)/2, next-1)
		}
		for ci, cut := range cuts {
			if ci > 0 && cut <= boundaries[b] {
				continue
			}
			label := fmt.Sprintf("boundary %d cut %d", b, cut)
			cp := copyDir(t, dir)
			seg := filepath.Join(cp, "sessions", "s1", segmentName(1))
			if err := os.Truncate(seg, cut); err != nil {
				t.Fatal(err)
			}
			_, rec := recoverDir(t, cp)
			if b == 0 {
				// The create record itself is gone or torn: the creation
				// was never acknowledged, so the session must be dropped.
				if len(rec.Sessions) != 0 || len(rec.Quarantined) != 0 || len(rec.Dropped) != 1 {
					t.Fatalf("%s: want 1 dropped, got %+v", label, rec)
				}
				continue
			}
			if len(rec.Sessions) != 1 || len(rec.Quarantined) != 0 {
				t.Fatalf("%s: want 1 session, got %d (quarantined %d)",
					label, len(rec.Sessions), len(rec.Quarantined))
			}
			r := rec.Sessions[0]
			if r.Fingerprint != fps[b-1] {
				t.Fatalf("%s: fingerprint %016x, want %016x", label, r.Fingerprint, fps[b-1])
			}
			if ci > 0 && !r.TornTail {
				t.Errorf("%s: mid-record cut not reported as torn tail", label)
			}
		}
	}

	// Full-depth slice comparison at a mid boundary and the final one.
	for _, b := range []int{nB / 2, nB - 1} {
		if b < 1 {
			continue
		}
		cp := copyDir(t, dir)
		seg := filepath.Join(cp, "sessions", "s1", segmentName(1))
		if err := os.Truncate(seg, boundaries[b]); err != nil {
			t.Fatal(err)
		}
		_, rec := recoverDir(t, cp)
		if len(rec.Sessions) != 1 {
			t.Fatalf("boundary %d: want 1 session", b)
		}
		sameDiscovery(t, fmt.Sprintf("boundary %d", b), oracle(ops, b-1), rec.Sessions[0].Session)
	}
}

// TestRecoverThenContinue proves the recovered log is live: recover at
// a mid boundary, replay the remaining script against the recovered
// session and log, then recover again and compare with the
// never-crashed oracle.
func TestRecoverThenContinue(t *testing.T) {
	dir := t.TempDir()
	st, _, _, ops, boundaries, _ := driveStore(t, dir)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	b := len(boundaries) / 2 // ops[:b-1] survived
	cp := copyDir(t, dir)
	if err := os.Truncate(filepath.Join(cp, "sessions", "s1", segmentName(1)), boundaries[b]); err != nil {
		t.Fatal(err)
	}
	st2, rec := recoverDir(t, cp)
	if len(rec.Sessions) != 1 {
		t.Fatalf("want 1 session, got %+v", rec)
	}
	r := rec.Sessions[0]
	for _, o := range ops[b-1:] {
		o.apply(r.Session)
		o.log(t, r.Log)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2 := recoverDir(t, cp)
	if len(rec2.Sessions) != 1 {
		t.Fatalf("second recovery: want 1 session, got %+v", rec2)
	}
	full := oracle(ops, len(ops))
	if got, want := rec2.Sessions[0].Fingerprint, full.Fingerprint(); got != want {
		t.Fatalf("fingerprint after continue %016x, want %016x", got, want)
	}
	sameDiscovery(t, "continue", full, rec2.Sessions[0].Session)
}

// TestSnapshotCompaction: a snapshot mid-stream compacts the log, and
// recovery from snapshot + replay equals the oracle; crash windows
// inside the snapshot protocol (stray tmp, new segment without the
// rename, stale superseded files) all recover.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Fsync: PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	live := midas.NewSession(nil, nil)
	l, err := st.Create("s1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	ops := buildScript(t)
	half := len(ops) / 2
	for _, o := range ops[:half] {
		o.apply(live)
		o.log(t, l)
	}
	preSnap := copyDir(t, dir)
	if err := l.Snapshot(live); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(dir, "sessions", "s1")
	if _, err := os.Stat(filepath.Join(sdir, segmentName(1))); !os.IsNotExist(err) {
		t.Error("superseded segment 1 not deleted")
	}
	if _, err := os.Stat(filepath.Join(sdir, snapshotName(2))); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	for _, o := range ops[half:] {
		o.apply(live)
		o.log(t, l)
	}
	wantFP := live.Fingerprint()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, dir string, wantReplayed int) *Recovery {
		t.Helper()
		_, rec := recoverDir(t, dir)
		if len(rec.Sessions) != 1 || len(rec.Quarantined) != 0 {
			t.Fatalf("recovery: %+v", rec)
		}
		if got := rec.Sessions[0].Fingerprint; got != wantFP {
			t.Fatalf("fingerprint %016x, want %016x", got, wantFP)
		}
		if wantReplayed >= 0 && rec.Sessions[0].Replayed != wantReplayed {
			t.Fatalf("replayed %d, want %d", rec.Sessions[0].Replayed, wantReplayed)
		}
		return rec
	}

	t.Run("clean", func(t *testing.T) {
		cp := copyDir(t, dir)
		rec := check(t, cp, len(ops)-half)
		sameDiscovery(t, "snapshot", oracle(ops, len(ops)), rec.Sessions[0].Session)
	})

	t.Run("stray-tmp", func(t *testing.T) {
		// Crash before the snapshot rename: a garbage .tmp lies around.
		cp := copyDir(t, dir)
		tmp := filepath.Join(cp, "sessions", "s1", snapshotName(3)+".tmp")
		if err := os.WriteFile(tmp, []byte("partial snapshot junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, cp, len(ops)-half)
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Error("stray snapshot tmp survived recovery compaction")
		}
	})

	t.Run("segment-without-snapshot", func(t *testing.T) {
		// Crash after creating the next segment but before the snapshot
		// rename: the extra empty segment replays as nothing.
		cp := copyDir(t, dir)
		f, err := os.Create(filepath.Join(cp, "sessions", "s1", segmentName(3)))
		if err != nil {
			t.Fatal(err)
		}
		if err := writeSegmentHeader(f, 3); err != nil {
			t.Fatal(err)
		}
		f.Close()
		check(t, cp, len(ops)-half)
	})

	t.Run("stale-superseded-files", func(t *testing.T) {
		// Crash after the rename but before the superseded files are
		// deleted: old snapshot-less segment 1 coexists with snap-2.
		cp := copyDir(t, preSnap)
		for _, name := range []string{snapshotName(2), segmentName(2)} {
			b, err := os.ReadFile(filepath.Join(dir, "sessions", "s1", name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(cp, "sessions", "s1", name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		rec := check(t, cp, -1)
		if _, err := os.Stat(filepath.Join(cp, "sessions", "s1", segmentName(1))); !os.IsNotExist(err) {
			t.Error("stale segment 1 survived recovery compaction")
		}
		_ = rec
	})
}

// TestQuarantine: a snapshot whose stamp does not match the restored
// session must quarantine the session, not serve or delete it.
func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Fsync: PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	live := midas.NewSession(nil, nil)
	l, err := st.Create("s1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	ops := buildScript(t)
	for _, o := range ops[:2] {
		o.apply(live)
		o.log(t, l)
	}
	if err := l.Snapshot(live); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tamper with the fingerprint stamp but keep the frame valid: the
	// file parses, the state decodes, and only the recovery invariant
	// (restored Fingerprint() == stamp) can catch it.
	snap := filepath.Join(dir, "sessions", "s1", snapshotName(2))
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	if n, clean, _ := scanRecords(bytes.NewReader(b[len(snapMagic):]), func(p []byte) error {
		payload = append([]byte(nil), p...)
		return nil
	}); n != 1 || !clean {
		t.Fatal("snapshot not one clean record")
	}
	// Payload layout: name, options, fp uvarint, epoch, state. Decode
	// far enough to find the fp bytes and rewrite them.
	tampered := tamperFingerprint(t, payload)
	var out bytes.Buffer
	out.WriteString(snapMagic)
	out.Write(frameRecord(tampered))
	if err := os.WriteFile(snap, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	stDir := dir
	_, rec := recoverDir(t, stDir)
	if len(rec.Sessions) != 0 || len(rec.Quarantined) != 1 {
		t.Fatalf("want 1 quarantined, got %+v", rec)
	}
	q := rec.Quarantined[0]
	if q.Name != "s1" || !strings.Contains(q.Err.Error(), "fingerprint mismatch") {
		t.Fatalf("quarantine record: %+v", q)
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", "s1")); !os.IsNotExist(err) {
		t.Error("quarantined session still under sessions/")
	}
	if _, err := os.Stat(q.Dir); err != nil {
		t.Errorf("quarantined files not preserved: %v", err)
	}
}

// tamperFingerprint rewrites the fp stamp inside a snapshot payload,
// leaving everything else intact.
func tamperFingerprint(t *testing.T, payload []byte) []byte {
	t.Helper()
	r := bytes.NewReader(payload)
	skipBytes := func() { // length-prefixed field
		n, err := readUvarint(r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Seek(int64(n), io.SeekCurrent); err != nil {
			t.Fatal(err)
		}
	}
	skipBytes() // name
	skipBytes() // options
	fpStart := len(payload) - r.Len()
	fp, err := readUvarint(r)
	if err != nil {
		t.Fatal(err)
	}
	fpEnd := len(payload) - r.Len()
	var out bytes.Buffer
	out.Write(payload[:fpStart])
	writeUvarint(&out, fp^0xdeadbeef)
	out.Write(payload[fpEnd:])
	return out.Bytes()
}

// TestDeleteTombstone: delete removes the session's files; a crash that
// leaves the directory in trash/ must not resurrect the session.
func TestDeleteTombstone(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Fsync: PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := st.Create("dead", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("alive", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := l1.AppendFacts([]midas.Fact{{Subject: "a", Predicate: "b", Object: "c", URL: "http://x/", Confidence: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l1.Delete(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", "dead")); !os.IsNotExist(err) {
		t.Fatal("deleted session dir still present")
	}
	if err := l1.AppendFacts(nil); err != ErrClosed {
		t.Fatalf("append after delete: %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-delete: the rename into trash happened, the RemoveAll
	// did not. Recovery must empty the trash, not resurrect.
	src := filepath.Join(dir, "sessions", "alive")
	if err := os.MkdirAll(filepath.Join(dir, "trash"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, filepath.Join(dir, "trash", "alive-12345")); err != nil {
		t.Fatal(err)
	}
	_, rec := recoverDir(t, dir)
	if len(rec.Sessions) != 0 || len(rec.Dropped) != 0 || len(rec.Quarantined) != 0 {
		t.Fatalf("tombstoned session resurrected: %+v", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "trash")); !os.IsNotExist(err) {
		t.Error("trash not emptied by recovery")
	}
}

// TestKill: the in-process SIGKILL freezes the store — appends fail
// with ErrKilled, nothing flushes — and everything acked before the
// kill recovers.
func TestKill(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Fsync: PolicyBatch, BatchInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	live := midas.NewSession(nil, nil)
	l, err := st.Create("s1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	ops := buildScript(t)
	for _, o := range ops[:3] {
		o.apply(live)
		o.log(t, l)
	}
	st.Kill()
	if err := l.AppendFacts(ops[3].facts); err != ErrKilled {
		t.Fatalf("append after kill: %v, want ErrKilled", err)
	}
	if _, err := st.Create("s2", nil); err != ErrClosed {
		t.Fatalf("create after kill: %v, want ErrClosed", err)
	}
	st.Kill() // idempotent

	_, rec := recoverDir(t, dir)
	if len(rec.Sessions) != 1 {
		t.Fatalf("recovery after kill: %+v", rec)
	}
	if got, want := rec.Sessions[0].Fingerprint, live.Fingerprint(); got != want {
		t.Fatalf("fingerprint %016x, want %016x", got, want)
	}
}

// TestCreateKillRace: a Create in flight when Kill lands must not leak
// a live log — either the create loses (ErrClosed) or its log is taken
// down with the rest. The leaked-syncer regression this pins surfaced
// as a goroutine leak in the soak harness's restart mode.
func TestCreateKillRace(t *testing.T) {
	before := testutil.Goroutines()
	for round := 0; round < 50; round++ {
		st, err := Open(Options{Dir: t.TempDir(), Fsync: PolicyBatch, BatchInterval: 1})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan *Log, 8)
		for i := 0; i < 4; i++ {
			go func(i int) {
				l, err := st.Create(fmt.Sprintf("s%d", i), nil)
				if err != nil {
					l = nil
				}
				done <- l
			}(i)
		}
		st.Kill()
		for i := 0; i < 4; i++ {
			if l := <-done; l != nil {
				// A create that won the race: its log must still die
				// with the store, not accept post-kill appends.
				if err := l.AppendAbsorb(nil); err == nil {
					t.Fatal("append succeeded on a killed store's log")
				}
			}
		}
	}
	if leaks := testutil.Leaked(before, 5*time.Second); len(leaks) > 0 {
		t.Fatalf("goroutines leaked: %v", leaks)
	}
}

// TestCacheRoundTrip: the persisted result cache survives recovery at
// the stamped fingerprint, and a damaged cache is a miss, never an
// error.
func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Fsync: PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	live := midas.NewSession(nil, nil)
	l, err := st.Create("s1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	ops := buildScript(t)
	for _, o := range ops {
		o.apply(live)
		o.log(t, l)
	}
	res, err := live.DiscoverContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	l.SaveCache(res.Fingerprint, res)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	cp := copyDir(t, dir)
	_, rec := recoverDir(t, cp)
	if len(rec.Sessions) != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
	r := rec.Sessions[0]
	if r.CacheFingerprint != res.Fingerprint || r.CacheResult == nil {
		t.Fatalf("cache not restored: fp %016x, want %016x", r.CacheFingerprint, res.Fingerprint)
	}
	if !reflect.DeepEqual(r.CacheResult.Slices, res.Slices) {
		t.Fatalf("cached slices diverged\nwant %+v\ngot  %+v", res.Slices, r.CacheResult.Slices)
	}
	// The restored cache must be live: the recovered session's
	// fingerprint equals the stamp, so a discovery at this state would
	// hit.
	if r.Fingerprint != r.CacheFingerprint {
		t.Fatalf("recovered fp %016x != cache fp %016x", r.Fingerprint, r.CacheFingerprint)
	}

	// Damaged cache: truncate → miss.
	cp2 := copyDir(t, dir)
	cpath := filepath.Join(cp2, "sessions", "s1", cacheName)
	if err := os.Truncate(cpath, fileSize(t, cpath)/2); err != nil {
		t.Fatal(err)
	}
	_, rec2 := recoverDir(t, cp2)
	if len(rec2.Sessions) != 1 {
		t.Fatalf("recovery: %+v", rec2)
	}
	if rec2.Sessions[0].CacheResult != nil {
		t.Error("damaged cache should read as a miss")
	}
}

func readUvarint(r *bytes.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

func writeUvarint(w *bytes.Buffer, v uint64) {
	for v >= 0x80 {
		w.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	w.WriteByte(byte(v))
}
