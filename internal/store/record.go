package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"midas"
	"midas/internal/binio"
)

// WAL record framing: uvarint payload length, payload, 8-byte
// little-endian FNV-1a checksum of the payload. A record is valid only
// if the full frame is present and the checksum matches; anything less
// is a torn tail. Appends are sequential and the frame is written with
// a single Write, so a tear can only occur at the end of a file — the
// scanner stops at the first invalid frame and reports whether the file
// ended cleanly.

// maxRecordBytes caps a single WAL record (and the snapshot record) at
// read time so a corrupt length cannot exhaust memory. KB bulk-load
// bodies are stored verbatim, so the cap is generous.
const maxRecordBytes = 1 << 30

// Op types, the first uvarint of every WAL record payload.
const (
	opCreate = 1 // session created: name, options JSON
	opFacts  = 2 // AddFacts batch, dictionary-encoded
	opKB     = 3 // KB bulk load: format tag, body bytes verbatim
	opAbsorb = 4 // Absorb batch: per slice, source + entities
)

func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// frameRecord wraps payload in the WAL frame.
func frameRecord(payload []byte) []byte {
	var lb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lb[:], uint64(len(payload)))
	buf := make([]byte, 0, n+len(payload)+8)
	buf = append(buf, lb[:n]...)
	buf = append(buf, payload...)
	var cb [8]byte
	binary.LittleEndian.PutUint64(cb[:], checksum(payload))
	return append(buf, cb[:]...)
}

// scanRecords reads framed records from r, calling fn for each valid
// payload. It returns the number of valid records, whether the stream
// ended cleanly (false = torn tail: a truncated or checksum-failing
// final frame, the expected crash artifact), and the first error from
// fn — which aborts the scan and is distinct from tearing.
func scanRecords(r io.Reader, fn func(payload []byte) error) (n int, clean bool, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		length, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return n, true, nil
		}
		if err != nil {
			return n, false, nil
		}
		if length > maxRecordBytes {
			return n, false, nil
		}
		payload, ok := readFullCapped(br, length)
		if !ok {
			return n, false, nil
		}
		var sum [8]byte
		if _, err := io.ReadFull(br, sum[:]); err != nil {
			return n, false, nil
		}
		if binary.LittleEndian.Uint64(sum[:]) != checksum(payload) {
			return n, false, nil
		}
		if err := fn(payload); err != nil {
			return n, true, err
		}
		n++
	}
}

// readFullCapped reads exactly n bytes from r, growing the buffer in
// bounded chunks as data actually arrives — a corrupt declared length
// can never force a huge allocation the stream cannot back.
func readFullCapped(r io.Reader, n uint64) ([]byte, bool) {
	const chunk = 1 << 16
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		k := min(n-uint64(len(buf)), chunk)
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, false
		}
	}
	return buf, true
}

// mutation is one decoded WAL operation.
type mutation struct {
	op      int
	name    string // opCreate
	options []byte // opCreate: options JSON, verbatim
	facts   []midas.Fact
	format  string // opKB: "tsv" | "binary" | "ntriples"
	body    []byte // opKB
	slices  []AbsorbSlice
}

// AbsorbSlice is the replayable projection of an absorbed slice:
// Session.Absorb reads only the source and the entity set.
type AbsorbSlice struct {
	Source   string
	Entities []string
}

func encodeCreate(name string, optionsJSON []byte) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.Uvarint(opCreate)
	bw.String(name)
	bw.Bytes(optionsJSON)
	bw.Flush()
	return buf.Bytes()
}

// encodeFacts dictionary-encodes a batch: repeated subjects, predicates,
// objects, and URLs are stored once in a string table, rows reference
// table indexes. Confidence is stored as raw Float64bits — replay must
// feed AddFacts the exact float64 the live handler did, or the interned
// float32 (and with it the session fingerprint) could drift.
func encodeFacts(facts []midas.Fact) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.Uvarint(opFacts)
	idx := make(map[string]uint64)
	var table []string
	intern := func(s string) uint64 {
		if i, ok := idx[s]; ok {
			return i
		}
		i := uint64(len(table))
		idx[s] = i
		table = append(table, s)
		return i
	}
	type row struct{ s, p, o, u, conf uint64 }
	rows := make([]row, len(facts))
	for i, f := range facts {
		rows[i] = row{
			s: intern(f.Subject), p: intern(f.Predicate), o: intern(f.Object),
			u: intern(f.URL), conf: math.Float64bits(f.Confidence),
		}
	}
	bw.Int(len(table))
	for _, s := range table {
		bw.String(s)
	}
	bw.Int(len(rows))
	for _, r := range rows {
		bw.Uvarint(r.s)
		bw.Uvarint(r.p)
		bw.Uvarint(r.o)
		bw.Uvarint(r.u)
		bw.Uvarint(r.conf)
	}
	bw.Flush()
	return buf.Bytes()
}

func encodeKB(format string, body []byte) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.Uvarint(opKB)
	bw.String(format)
	bw.Bytes(body)
	bw.Flush()
	return buf.Bytes()
}

func encodeAbsorb(slices []AbsorbSlice) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.Uvarint(opAbsorb)
	bw.Int(len(slices))
	for _, sl := range slices {
		bw.String(sl.Source)
		bw.Int(len(sl.Entities))
		for _, e := range sl.Entities {
			bw.String(e)
		}
	}
	bw.Flush()
	return buf.Bytes()
}

// decodeMutation decodes one WAL record payload.
func decodeMutation(payload []byte) (*mutation, error) {
	br := binio.NewReader(bytes.NewReader(payload))
	br.MaxBytes = maxRecordBytes
	m := &mutation{op: int(br.Uvarint())}
	if err := br.Err(); err != nil {
		return nil, err
	}
	switch m.op {
	case opCreate:
		m.name = br.String()
		m.options = br.Bytes()
	case opFacts:
		nTable := br.Int()
		if err := br.Err(); err != nil {
			return nil, err
		}
		if nTable > len(payload) {
			return nil, fmt.Errorf("%w: facts table count %d exceeds payload", binio.ErrCorrupt, nTable)
		}
		table := make([]string, nTable)
		for i := range table {
			table[i] = br.String()
		}
		nRows := br.Int()
		if err := br.Err(); err != nil {
			return nil, err
		}
		if nRows > len(payload) {
			return nil, fmt.Errorf("%w: facts row count %d exceeds payload", binio.ErrCorrupt, nRows)
		}
		m.facts = make([]midas.Fact, 0, nRows)
		for i := 0; i < nRows; i++ {
			s, p, o, u := br.Uvarint(), br.Uvarint(), br.Uvarint(), br.Uvarint()
			conf := br.Uvarint()
			if err := br.Err(); err != nil {
				return nil, err
			}
			if s >= uint64(nTable) || p >= uint64(nTable) || o >= uint64(nTable) || u >= uint64(nTable) {
				return nil, fmt.Errorf("%w: facts row %d references out-of-range string", binio.ErrCorrupt, i)
			}
			m.facts = append(m.facts, midas.Fact{
				Subject: table[s], Predicate: table[p], Object: table[o],
				URL: table[u], Confidence: math.Float64frombits(conf),
			})
		}
	case opKB:
		m.format = br.String()
		m.body = br.Bytes()
	case opAbsorb:
		nSlices := br.Int()
		if err := br.Err(); err != nil {
			return nil, err
		}
		if nSlices > len(payload) {
			return nil, fmt.Errorf("%w: absorb slice count %d exceeds payload", binio.ErrCorrupt, nSlices)
		}
		m.slices = make([]AbsorbSlice, 0, nSlices)
		for i := 0; i < nSlices; i++ {
			sl := AbsorbSlice{Source: br.String()}
			nEnts := br.Int()
			if err := br.Err(); err != nil {
				return nil, err
			}
			if nEnts > len(payload) {
				return nil, fmt.Errorf("%w: absorb slice %d entity count %d exceeds payload", binio.ErrCorrupt, i, nEnts)
			}
			sl.Entities = make([]string, nEnts)
			for k := range sl.Entities {
				sl.Entities[k] = br.String()
			}
			m.slices = append(m.slices, sl)
		}
	default:
		return nil, fmt.Errorf("%w: unknown op %d", binio.ErrCorrupt, m.op)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// apply replays a decoded mutation onto sess. Every logged mutation
// succeeded on the live session before it was acked, so a replay
// failure means divergence — the caller quarantines.
func (m *mutation) apply(sess *midas.Session) error {
	switch m.op {
	case opFacts:
		sess.AddFacts(m.facts...)
	case opKB:
		var err error
		switch m.format {
		case "", "tsv":
			_, err = sess.KB().LoadTSV(bytes.NewReader(m.body))
		case "binary":
			_, err = sess.KB().LoadBinary(bytes.NewReader(m.body))
		case "ntriples":
			_, err = sess.KB().LoadNTriples(bytes.NewReader(m.body))
		default:
			err = fmt.Errorf("unknown KB format %q", m.format)
		}
		if err != nil {
			return fmt.Errorf("replaying KB load: %w", err)
		}
	case opAbsorb:
		for _, sl := range m.slices {
			sess.Absorb(midas.Slice{Source: sl.Source, Entities: sl.Entities})
		}
	case opCreate:
		return fmt.Errorf("%w: create record past the head of the log", binio.ErrCorrupt)
	}
	return nil
}
