package store

import (
	"bytes"
	"testing"

	"midas"
)

// FuzzWALRecords drives the WAL frame scanner and mutation decoder with
// arbitrary bytes — the exact code path recovery trusts a crash-torn
// segment to. Properties: no panic and no runaway allocation on any
// input, scanning is deterministic, the valid-prefix count matches the
// decoder callback count, and every decoded mutation re-encodes into a
// frame the scanner accepts.
func FuzzWALRecords(f *testing.F) {
	facts := []midas.Fact{
		{Subject: "alpha entity", Predicate: "kind", Object: "alpha", Confidence: 0.9, URL: "http://a.example.com/p1"},
		{Subject: "alpha entity", Predicate: "id", Object: "a-1", Confidence: 0.5, URL: "http://a.example.com/p1"},
	}
	var seg bytes.Buffer
	seg.Write(frameRecord(encodeCreate("s1", []byte(`{"workers":2}`))))
	seg.Write(frameRecord(encodeFacts(facts)))
	seg.Write(frameRecord(encodeKB("tsv", []byte("a\tp\tb\n"))))
	seg.Write(frameRecord(encodeAbsorb([]AbsorbSlice{{Source: "a.example.com", Entities: []string{"alpha entity"}}})))
	f.Add(seg.Bytes())
	f.Add(seg.Bytes()[:seg.Len()-3]) // torn tail
	f.Add(frameRecord([]byte{opFacts}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge declared length

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // length cap: frames past 1 MiB add nothing
		}
		decoded := 0
		n, clean, err := scanRecords(bytes.NewReader(data), func(payload []byte) error {
			m, derr := decodeMutation(payload)
			if derr != nil {
				return nil // checksummed garbage payload: rejected, never panics
			}
			decoded++
			// A decoded mutation must survive re-encoding: its frame is
			// exactly what a live server would have written.
			var re []byte
			switch m.op {
			case opCreate:
				re = encodeCreate(m.name, m.options)
			case opFacts:
				re = encodeFacts(m.facts)
			case opKB:
				re = encodeKB(m.format, m.body)
			case opAbsorb:
				re = encodeAbsorb(m.slices)
			}
			rn, rclean, rerr := scanRecords(bytes.NewReader(frameRecord(re)), func(p []byte) error {
				_, derr := decodeMutation(p)
				return derr
			})
			if rn != 1 || !rclean || rerr != nil {
				t.Fatalf("re-encoded op %d does not re-scan: n=%d clean=%v err=%v", m.op, rn, rclean, rerr)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("callback error escaped: %v", err)
		}
		if decoded > n {
			t.Fatalf("decoded %d mutations from %d valid frames", decoded, n)
		}
		// Determinism: a second scan of the same bytes agrees exactly.
		n2, clean2, _ := scanRecords(bytes.NewReader(data), func([]byte) error { return nil })
		if n2 != n || clean2 != clean {
			t.Fatalf("rescan diverged: (%d,%v) then (%d,%v)", n, clean, n2, clean2)
		}
	})
}
