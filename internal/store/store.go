// Package store is the durability subsystem of the serving path: a
// per-session write-ahead log of the confirmed mutation stream —
// session creation with options, KB bulk loads by content, AddFacts
// batches, Absorbs — plus periodic compacting snapshots, so recovery
// after a crash is snapshot-load + short log replay instead of
// full-history replay.
//
// Layout under the data directory:
//
//	sessions/<name>/wal-<seq>.log    WAL segments (checksummed frames)
//	sessions/<name>/snap-<seq>.snap  snapshots (fingerprint-stamped)
//	sessions/<name>/cache.bin        persisted result cache
//	trash/                           tombstoned deletes, emptied on open
//	quarantine/                      sessions recovery refused to serve
//
// A snapshot with sequence S captures the session state through the end
// of segment S−1; recovery loads the newest valid snapshot, verifies
// the restored session's Fingerprint() against the stamp, and replays
// segments ≥ S in order, tolerating a torn tail in the final segment
// (the only place a tear can legally occur). Because the snapshot
// serializes interning dictionaries verbatim and replayed mutations
// re-intern identically, the recovered session is fingerprint- and
// slice-identical to the crashed one. Sessions that fail verification
// or replay are quarantined — moved aside, never served, never lost.
//
// Appends are group-committed: with the default batch policy, an
// append waits for the fsync that covers its record, and one fsync
// acknowledges every record written before it — hot ingest across
// sessions is not serialized on the disk.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"midas/internal/obs"
)

// Policy selects when WAL appends reach the disk.
type Policy int

const (
	// PolicyBatch (default) group-commits: an append returns once an
	// fsync covering its record completes; concurrent appends share
	// fsyncs. Bounded ack latency, bounded data loss (none on process
	// kill, one batch interval on OS crash).
	PolicyBatch Policy = iota
	// PolicyAlways fsyncs before every ack. Maximum durability, one
	// fsync per mutation.
	PolicyAlways
	// PolicyNone never fsyncs on the append path. Process-kill safe
	// (page cache), not OS-crash safe; snapshots still sync.
	PolicyNone
)

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyNone:
		return "none"
	default:
		return "batch"
	}
}

// ParsePolicy parses the -fsync flag values always|batch|none.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "batch", "":
		return PolicyBatch, nil
	case "none":
		return PolicyNone, nil
	}
	return PolicyBatch, fmt.Errorf("unknown fsync policy %q (want always|batch|none)", s)
}

// Options configures a Store.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// Fsync is the append durability policy. Default: PolicyBatch.
	Fsync Policy
	// BatchInterval is the group-commit window under PolicyBatch: how
	// long the syncer collects appends before one fsync acknowledges
	// them all. Default: 2ms.
	BatchInterval time.Duration
	// SnapshotBytes is the per-session WAL size that triggers a
	// compacting snapshot. Default: 4 MiB.
	SnapshotBytes int64
	// Registry receives the store/* health series. Default: the
	// process-wide obs registry.
	Registry *obs.Registry
	// Logger receives recovery and snapshot records. Default: the
	// process-wide obs logger.
	Logger *obs.Logger
}

// Store owns a data directory of per-session logs. Open it once per
// process; Create and Recover hand out per-session Logs.
type Store struct {
	opts Options
	reg  *obs.Registry
	log  *obs.Logger

	mu     sync.Mutex
	logs   map[string]*Log
	closed bool
	frozen bool

	walTotal  atomic.Int64
	lastFsync atomic.Int64 // unix nanos
	lastSnap  atomic.Int64
	records   *obs.Counter
	fsyncs    *obs.Counter
	snaps     *obs.Counter

	stopGauges chan struct{}
	gaugeWG    sync.WaitGroup
}

// Open prepares the data directory and starts the health-gauge ticker.
// Call Recover before Create to restore prior sessions.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: empty data directory")
	}
	if opts.BatchInterval <= 0 {
		opts.BatchInterval = 2 * time.Millisecond
	}
	if opts.SnapshotBytes <= 0 {
		opts.SnapshotBytes = 4 << 20
	}
	st := &Store{
		opts: opts,
		reg:  opts.Registry.OrDefault(),
		log:  opts.Logger,
		logs: make(map[string]*Log),
	}
	st.records = st.reg.Counter("store/records")
	st.fsyncs = st.reg.Counter("store/fsyncs")
	st.snaps = st.reg.Counter("store/snapshots")
	if err := os.MkdirAll(st.sessionsDir(), 0o755); err != nil {
		return nil, err
	}
	now := time.Now().UnixNano()
	st.lastFsync.Store(now)
	st.lastSnap.Store(now)
	st.stopGauges = make(chan struct{})
	st.gaugeWG.Add(1)
	go st.gaugeLoop()
	return st, nil
}

func (st *Store) sessionsDir() string   { return filepath.Join(st.opts.Dir, "sessions") }
func (st *Store) trashDir() string      { return filepath.Join(st.opts.Dir, "trash") }
func (st *Store) quarantineDir() string { return filepath.Join(st.opts.Dir, "quarantine") }

func (st *Store) logger() *obs.Logger { return st.log.OrDefault() }

// gaugeLoop publishes the store health gauges once a second: WAL bytes
// not yet compacted away, age of the last fsync, age of the last
// snapshot.
func (st *Store) gaugeLoop() {
	defer st.gaugeWG.Done()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		st.publishGauges()
		select {
		case <-st.stopGauges:
			return
		case <-tick.C:
		}
	}
}

func (st *Store) publishGauges() {
	now := time.Now().UnixNano()
	st.reg.Gauge("store/wal_bytes").Set(float64(st.walTotal.Load()))
	st.reg.Gauge("store/last_fsync_age_seconds").Set(float64(now-st.lastFsync.Load()) / 1e9)
	st.reg.Gauge("store/snapshot_age_seconds").Set(float64(now-st.lastSnap.Load()) / 1e9)
}

func (st *Store) noteFsync() {
	st.lastFsync.Store(time.Now().UnixNano())
	st.fsyncs.Inc()
}

func (st *Store) noteSnapshot() {
	st.lastSnap.Store(time.Now().UnixNano())
	st.snaps.Inc()
}

// Create opens the durable log for a newly created session, appending
// (and per policy syncing) its create record before returning — the
// serving layer acks the creation only after this succeeds. The options
// JSON is stored verbatim and handed back to the decode hook at
// recovery.
func (st *Store) Create(name string, optionsJSON []byte) (*Log, error) {
	st.mu.Lock()
	if st.closed || st.frozen {
		st.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := st.logs[name]; ok {
		st.mu.Unlock()
		return nil, fmt.Errorf("store: session %q already open", name)
	}
	st.mu.Unlock()
	l, err := st.newLog(name, optionsJSON)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	// The store may have died while the log was being built; a log
	// registered now would miss the Close/Kill sweep and leak its
	// syncer, so take it down the same way the sweep would have.
	if st.closed || st.frozen {
		frozen := st.frozen
		st.mu.Unlock()
		if frozen {
			l.freeze()
		} else {
			l.Close()
		}
		return nil, ErrClosed
	}
	st.logs[name] = l
	st.mu.Unlock()
	return l, nil
}

func (st *Store) dropLog(name string) {
	st.mu.Lock()
	delete(st.logs, name)
	st.mu.Unlock()
}

// trash atomically moves dir into the trash directory (the tombstone),
// returning the new path.
func (st *Store) trash(dir string) (string, error) {
	if err := os.MkdirAll(st.trashDir(), 0o755); err != nil {
		return "", err
	}
	dst := filepath.Join(st.trashDir(), fmt.Sprintf("%s-%d", filepath.Base(dir), time.Now().UnixNano()))
	if err := os.Rename(dir, dst); err != nil {
		return "", err
	}
	// Make the disappearance durable before reporting the delete done.
	if err := syncDir(st.sessionsDir()); err != nil {
		return "", err
	}
	return dst, nil
}

// Close flushes and closes every open log and stops the gauge ticker.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	logs := make([]*Log, 0, len(st.logs))
	for _, l := range st.logs {
		logs = append(logs, l)
	}
	st.mu.Unlock()
	var first error
	for _, l := range logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	st.stopTicker()
	return first
}

// Kill hard-stops the store without flushing: syncers die, blocked and
// future appends fail with ErrKilled, nothing is fsynced. It is the
// in-process stand-in for SIGKILL the soak harness's -restart mode
// uses; data already in the OS page cache survives, exactly as it
// would a real process kill.
func (st *Store) Kill() {
	st.mu.Lock()
	if st.closed || st.frozen {
		st.mu.Unlock()
		return
	}
	st.frozen = true
	logs := make([]*Log, 0, len(st.logs))
	for _, l := range st.logs {
		logs = append(logs, l)
	}
	st.mu.Unlock()
	for _, l := range logs {
		l.freeze()
	}
	st.stopTicker()
}

func (st *Store) stopTicker() {
	if st.stopGauges != nil {
		close(st.stopGauges)
		st.gaugeWG.Wait()
		st.stopGauges = nil
	}
}
