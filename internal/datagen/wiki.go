package datagen

import (
	"fmt"
	"math/rand"
)

// WikiParams configures the encyclopedia-style generator: one huge
// domain (the paper cites Wikipedia's 45M entries as the scale
// challenge for a single web domain) with a deep URL hierarchy —
// domain/portal/category/article — hosting many verticals of very
// different sizes, mixed known and new.
type WikiParams struct {
	Host      string
	Portals   int // top-level sections (e.g. /science, /sports)
	Verticals int // categories spread across portals
	Seed      int64
	// MeanEntities sizes categories (drawn 0.25×..4× around the mean).
	MeanEntities int
}

// DefaultWikiParams returns a laptop-scale encyclopedia.
func DefaultWikiParams(seed int64) WikiParams {
	return WikiParams{
		Host:         "encyclopedia.example.org",
		Portals:      6,
		Verticals:    40,
		Seed:         seed,
		MeanEntities: 40,
	}
}

// WikiLike generates the single-domain deep-hierarchy corpus. Unlike
// the multi-domain corpora, every source shares one domain root, so the
// framework's consolidation runs through four hierarchy levels and the
// domain-level table aggregates everything — the worst case for
// redundancy between granularities.
func WikiLike(p WikiParams) *World {
	rng := rand.New(rand.NewSource(p.Seed))
	d := DomainSpec{Host: p.Host}
	for v := 0; v < p.Verticals; v++ {
		portal := fmt.Sprintf("portal-%d", v%p.Portals)
		name, path, typ := themeName(rng, v)
		n := p.MeanEntities/4 + rng.Intn(p.MeanEntities*4)
		known := 0.1 + 0.3*rng.Float64()
		if v%3 == 0 {
			known = 0.97 // a third of the encyclopedia is old news
		}
		d.Verticals = append(d.Verticals, VerticalSpec{
			Name:        name,
			PathSeg:     path,
			TypeValue:   typ,
			Entities:    n,
			Attrs:       3 + rng.Intn(4),
			SharedAttrs: 1,
			KnownRatio:  known,
			// Nest under the portal: host/portal-X/<path>/article.htm.
			SharedPath: portal + "/" + path,
		})
	}
	d.NoiseEntities = 150 + rng.Intn(100) // talk pages, lists
	d.NoiseFactsPerEntity = 1 + rng.Intn(2)
	return Generate([]DomainSpec{d}, WorldParams{Style: OpenIE, Seed: p.Seed + 1})
}
