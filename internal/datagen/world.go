package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"midas/internal/dict"
	"midas/internal/extract"
	"midas/internal/fact"
	"midas/internal/kb"
	"midas/internal/slice"
	"midas/internal/wrapper"
)

// Style selects the extraction flavor the corpus imitates.
type Style int

const (
	// OpenIE produces unlexicalized, per-vertical predicate phrases (the
	// ReVerb shape: hundreds of thousands of distinct predicates).
	OpenIE Style = iota
	// ClosedIE produces a small fixed ontology of predicates with typed
	// object values (the NELL shape: a few hundred predicates).
	ClosedIE
)

// VerticalSpec plants one coherent group of entities (one prospective
// slice) under a domain path.
type VerticalSpec struct {
	// Name labels the vertical for silver-standard descriptions and the
	// labeling oracle ("US golf courses").
	Name string
	// PathSeg is the sub-domain path segment hosting the vertical.
	PathSeg string
	// TypeValue is the anchor property value ("golf_course").
	TypeValue string
	// Entities is the number of entities (one page each unless
	// SinglePage is set).
	Entities int
	// Attrs is the number of attribute predicates besides the anchor.
	Attrs int
	// SharedAttrs of the Attrs draw values from small pools, creating
	// secondary common properties; the rest get unique values.
	SharedAttrs int
	// KnownRatio is the fraction of entities whose true facts are
	// already in the KB.
	KnownRatio float64
	// SinglePage hosts every entity on one page (NELL's
	// disproportionately large source).
	SinglePage bool
	// MultiValued gives each entity 1–2 values for the first shared
	// attribute (multi-valued fact-table cells, Definition 3's set
	// semantics), exercising the one-value-per-predicate combination
	// logic of initial-slice generation.
	MultiValued bool
	// SharedPath, when non-empty, hosts the vertical's pages under this
	// path segment instead of PathSeg. Several verticals of a domain
	// sharing one path model real sites whose URL structure does not
	// pre-partition their content — separating them requires slice
	// discovery, not URL hierarchy.
	SharedPath string
}

// hostPath returns the path segment the vertical's pages live under.
func (v *VerticalSpec) hostPath() string {
	if v.SharedPath != "" {
		return v.SharedPath
	}
	return v.PathSeg
}

// DomainSpec plants one web domain.
type DomainSpec struct {
	Host      string
	Verticals []VerticalSpec
	// NoiseEntities adds loosely-related pages (forum/news style): many
	// new facts with no common properties — the bait that fools NAIVE.
	NoiseEntities int
	// NoiseFactsPerEntity is the fact count per noise entity (≥1).
	NoiseFactsPerEntity int
}

// WorldParams configures corpus generation.
type WorldParams struct {
	Style Style
	// ExtractRecall is the probability an attribute fact survives the
	// simulated automated extraction (the paper's pipelines miss most
	// facts; defaults to 0.6).
	ExtractRecall float64
	// AnchorRecall is the survival probability of the anchor fact
	// (defaults to 0.96: type facts are the easiest to extract).
	AnchorRecall float64
	// WrongRate is the expected number of wrong (corrupted-object)
	// emissions per true fact considered; wrong emissions carry lower
	// confidence (defaults to 0.12; set negative for none).
	WrongRate float64
	// TrustThreshold is the confidence bar facts must exceed to enter
	// the trusted corpus, matching the paper's 0.75 for ReVerb/NELL
	// (0.7 for KnowledgeVault). Defaults to 0.75.
	TrustThreshold float64
	// Cost scores prospective slices for silver-standard inclusion;
	// zero means the paper's defaults.
	Cost slice.CostModel
	Seed int64
}

func (p WorldParams) withDefaults() WorldParams {
	if p.ExtractRecall == 0 {
		p.ExtractRecall = 0.6
	}
	if p.AnchorRecall == 0 {
		p.AnchorRecall = 0.96
	}
	if p.WrongRate == 0 {
		p.WrongRate = 0.12
	}
	if p.WrongRate < 0 {
		p.WrongRate = 0
	}
	if p.TrustThreshold == 0 {
		p.TrustThreshold = 0.75
	}
	if p.Cost == (slice.CostModel{}) {
		p.Cost = slice.DefaultCostModel()
	}
	return p
}

// extractParams assembles the extraction-simulator configuration.
func (p WorldParams) extractParams() extract.Params {
	return extract.Params{
		Recall:       p.ExtractRecall,
		AnchorRecall: p.AnchorRecall,
		WrongRate:    p.WrongRate,
		ConfCorrect:  [2]float64{p.TrustThreshold, 1.0},
		ConfWrong:    [2]float64{0.40, p.TrustThreshold + 0.03},
	}
}

// World is a generated corpus with its ground truth.
type World struct {
	Params WorldParams
	// Corpus holds the trusted extractions: emissions whose confidence
	// exceeds TrustThreshold (the input MIDAS consumes). Mostly correct
	// facts, plus the few high-confidence wrong ones that slip through.
	Corpus *fact.Corpus
	// RawCorpus additionally holds the low-confidence emissions the
	// threshold rejected.
	RawCorpus *fact.Corpus
	KB        *kb.KB
	// Silver lists the planted slices whose extraction would be
	// profitable against the generated KB — the expected output.
	Silver []GroundSlice
	// AllPlanted lists every planted vertical slice, profitable or not.
	AllPlanted []GroundSlice
	// VerticalOf maps subjects to their vertical name; noise subjects
	// are absent. The labeling oracle uses it to score homogeneity.
	VerticalOf map[dict.ID]string
	// GoodSources marks domain hosts that contain at least one silver
	// slice.
	GoodSources map[string]bool
	// Pages are the templated ground-truth pages behind the corpus
	// (every true fact in its template slot), consumed by the
	// wrapper-induction experiments. Entities of one vertical share a
	// template; noise pages scatter facts over random slots.
	Pages   []wrapper.Page
	Domains []DomainSpec
}

// Generate builds the corpus for the given domains.
func Generate(domains []DomainSpec, params WorldParams) *World {
	params = params.withDefaults()
	rng := rand.New(rand.NewSource(params.Seed))
	w := &World{
		Params:      params,
		Corpus:      fact.NewCorpus(nil),
		VerticalOf:  make(map[dict.ID]string),
		GoodSources: make(map[string]bool),
		Domains:     domains,
	}
	w.RawCorpus = &fact.Corpus{Space: w.Corpus.Space, URLs: w.Corpus.URLs}
	w.KB = kb.New(w.Corpus.Space)

	// Ontology predicate pools.
	closedPreds := make([]string, 24)
	for i := range closedPreds {
		closedPreds[i] = fmt.Sprintf("concept:relation%d", i)
	}

	for di, d := range domains {
		domainFacts := 0
		var domainSlices []*GroundSlice
		for vi := range d.Verticals {
			v := &d.Verticals[vi]
			gs, extracted := w.generateVertical(rng, di, d.Host, v, closedPreds)
			domainFacts += extracted
			domainSlices = append(domainSlices, gs)
		}
		w.generateNoise(rng, di, d.Host, d.NoiseEntities, d.NoiseFactsPerEntity)

		// Score each planted slice for silver inclusion against the
		// *extracted* corpus: new facts are those of unknown entities.
		for _, gs := range domainSlices {
			newCount := 0
			for _, t := range gs.Facts {
				if !w.KB.Contains(t) {
					newCount++
				}
			}
			profit := params.Cost.SliceProfit(newCount, len(gs.Facts), domainFacts)
			w.AllPlanted = append(w.AllPlanted, *gs)
			if profit > 0 && newCount > 0 {
				w.Silver = append(w.Silver, *gs)
				w.GoodSources[d.Host] = true
			}
		}
	}
	return w
}

// generateVertical plants one vertical: true facts go to the KB for
// known entities; extracted facts (with recall loss) go to the corpus
// and the ground slice.
func (w *World) generateVertical(rng *rand.Rand, di int, host string, v *VerticalSpec, closedPreds []string) (*GroundSlice, int) {
	space := w.Corpus.Space
	params := w.Params

	anchorPred := "be a"
	anchorVal := v.TypeValue
	if params.Style == ClosedIE {
		anchorPred = "generalizations"
		anchorVal = "concept/" + v.TypeValue
	}

	// Attribute predicates.
	preds := make([]string, v.Attrs)
	for i := range preds {
		if params.Style == ClosedIE {
			preds[i] = closedPreds[(di+i)%len(closedPreds)]
		} else {
			preds[i] = fmt.Sprintf("%s attr%d of", v.PathSeg, i)
		}
	}
	// Shared value pools (3 values each).
	pools := make([][]string, v.SharedAttrs)
	for i := range pools {
		pools[i] = []string{
			fmt.Sprintf("%s_pool%d_a", v.TypeValue, i),
			fmt.Sprintf("%s_pool%d_b", v.TypeValue, i),
			fmt.Sprintf("%s_pool%d_c", v.TypeValue, i),
		}
	}

	gs := &GroundSlice{
		Source:      host + "/" + v.hostPath(),
		Description: v.Name,
		Props: []fact.Property{fact.Prop(
			space.Predicates.Put(anchorPred),
			space.Objects.Put(anchorVal),
		)},
	}

	extracted := 0
	for e := 0; e < v.Entities; e++ {
		subject := fmt.Sprintf("%s %d-%d", v.Name, di, e)
		url := fmt.Sprintf("http://%s/%s/%s-e%d.htm", host, v.hostPath(), v.PathSeg, e)
		if v.SinglePage {
			url = fmt.Sprintf("http://%s/%s/all.htm", host, v.hostPath())
		}
		known := rng.Float64() < v.KnownRatio

		// trueFacts and slots are parallel: the slot is the predicate's
		// template position (multi-valued cells share their predicate's
		// slot, like repeated list items in one DOM location).
		var trueFacts []kb.Triple
		var slots []int
		trueFacts = append(trueFacts, space.Intern(subject, anchorPred, anchorVal))
		slots = append(slots, 0)
		for i, p := range preds {
			values := 1
			if v.MultiValued && i == 0 && i < len(pools) && rng.Float64() < 0.5 {
				values = 2
			}
			taken := make(map[string]bool, values)
			for k := 0; k < values; k++ {
				var val string
				if i < len(pools) {
					val = pools[i][rng.Intn(len(pools[i]))]
					if taken[val] {
						continue
					}
					taken[val] = true
				} else {
					val = fmt.Sprintf("%s uniq%d", subject, i)
				}
				if params.Style == ClosedIE {
					val = "concept/" + val
				}
				trueFacts = append(trueFacts, space.Intern(subject, p, val))
				slots = append(slots, i+1)
			}
		}
		if known {
			for _, t := range trueFacts {
				w.KB.Add(t)
			}
		}
		// Simulated extraction: recall loss plus low-confidence wrong
		// emissions (internal/extract). The silver slice is Π* over the
		// *trusted extracted* fact table (Definition 5): an entity
		// belongs to the slice only if its anchor fact survived
		// extraction — an entity whose type fact was missed is
		// unreachable by any property-based selection.
		subjID := trueFacts[0].S
		urlID := w.Corpus.URLs.Put(url)
		// Render the page: the vertical's template puts the anchor in
		// slot 0 and attribute i in slot i+1. Different verticals reuse
		// the same slot numbers — that collision is what makes wrappers
		// induced across verticals wrong.
		page := wrapper.Page{URL: url}
		for i, t := range trueFacts {
			page.Fields = append(page.Fields, wrapper.Field{Slot: slots[i], Subject: t.S, Pred: t.P, Object: t.O})
		}
		w.Pages = append(w.Pages, page)
		anchored := false
		var entityFacts []kb.Triple
		for _, em := range extract.Apply(rng, trueFacts, 0, space, params.extractParams()) {
			w.RawCorpus.AddTriple(em.Triple, urlID, float32(em.Conf))
			if em.Conf <= params.TrustThreshold {
				continue
			}
			w.Corpus.AddTriple(em.Triple, urlID, float32(em.Conf))
			extracted++
			if !em.Wrong {
				entityFacts = append(entityFacts, em.Triple)
				if em.FactIdx == 0 {
					anchored = true
				}
			}
		}
		if anchored {
			gs.Facts = append(gs.Facts, entityFacts...)
			gs.Subjects = append(gs.Subjects, subjID)
			w.VerticalOf[subjID] = v.Name
		}
	}
	sortTriples(gs.Facts)
	sort.Slice(gs.Subjects, func(i, j int) bool { return gs.Subjects[i] < gs.Subjects[j] })
	return gs, extracted
}

// generateNoise plants forum/news-style pages: every fact is new and no
// two entities share a property, so no profitable slice exists even
// though the new-fact count is high.
func (w *World) generateNoise(rng *rand.Rand, di int, host string, entities, factsPer int) {
	if factsPer < 1 {
		factsPer = 1
	}
	space := w.Corpus.Space
	var page wrapper.Page
	for e := 0; e < entities; e++ {
		subject := fmt.Sprintf("post %d-%d", di, e)
		// Forum threads: ~8 loosely-related entities per page.
		url := fmt.Sprintf("http://%s/posts/p%d.htm", host, e/8)
		if page.URL != url {
			if page.URL != "" {
				w.Pages = append(w.Pages, page)
			}
			page = wrapper.Page{URL: url}
		}
		for f := 0; f < factsPer; f++ {
			pred := fmt.Sprintf("mention%d", rng.Intn(40))
			if w.Params.Style == ClosedIE {
				pred = fmt.Sprintf("concept:relation%d", rng.Intn(24))
			}
			val := fmt.Sprintf("topic %d-%d-%d-%d", di, e, f, rng.Intn(1<<30))
			t := space.Intern(subject, pred, val)
			conf := w.Params.TrustThreshold + (1-w.Params.TrustThreshold)*rng.Float64()
			urlID := w.Corpus.URLs.Put(url)
			w.Corpus.AddTriple(t, urlID, float32(conf))
			w.RawCorpus.AddTriple(t, urlID, float32(conf))
			// Unstructured pages: facts land in arbitrary slots.
			page.Fields = append(page.Fields, wrapper.Field{
				Slot: rng.Intn(10), Subject: t.S, Pred: t.P, Object: t.O,
			})
		}
	}
	if page.URL != "" {
		w.Pages = append(w.Pages, page)
	}
}

// WithCoverage derives an existing KB of the requested silver coverage
// (Section IV-B): a deterministic ratio-sized subset of the silver
// slices has its facts added to a clone of the base KB; the remaining
// silver slices form the expected output against that KB.
func (w *World) WithCoverage(ratio float64, seed int64) (*kb.KB, []GroundSlice) {
	adjusted := w.KB.Clone()
	if ratio <= 0 {
		out := make([]GroundSlice, len(w.Silver))
		copy(out, w.Silver)
		return adjusted, out
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(w.Silver))
	nCovered := int(float64(len(w.Silver))*ratio + 0.5)
	covered := make(map[int]bool, nCovered)
	for _, i := range idx[:nCovered] {
		covered[i] = true
	}
	var remaining []GroundSlice
	for i, gs := range w.Silver {
		if covered[i] {
			for _, t := range gs.Facts {
				adjusted.Add(t)
			}
		} else {
			remaining = append(remaining, gs)
		}
	}
	return adjusted, remaining
}

// Stats summarizes the corpus for the Figure 7-style dataset table.
type Stats struct {
	Facts      int
	Predicates int
	URLs       int
	Subjects   int
	KBFacts    int
}

// Stats computes corpus statistics.
func (w *World) Stats() Stats {
	preds := make(map[dict.ID]struct{})
	subs := make(map[dict.ID]struct{})
	for _, e := range w.Corpus.Facts {
		preds[e.Triple.P] = struct{}{}
		subs[e.Triple.S] = struct{}{}
	}
	return Stats{
		Facts:      len(w.Corpus.Facts),
		Predicates: len(preds),
		URLs:       w.Corpus.NumURLs(),
		Subjects:   len(subs),
		KBFacts:    w.KB.Size(),
	}
}
