package datagen

import (
	"fmt"
	"math/rand"
)

// Theme names used to label verticals; combined with qualifiers they
// provide enough distinct verticals for the largest corpora.
var themes = []string{
	"golf courses", "board games", "marine species", "skyscrapers",
	"politicians", "schools", "cocktails", "rocket families",
	"hiking trails", "museums", "radio stations", "orchids",
	"vintage cars", "castles", "lighthouses", "roller coasters",
	"breweries", "comic artists", "chess openings", "typefaces",
	"waterfalls", "space missions", "operas", "minerals", "sailboats",
	"video games", "bridges", "observatories", "folk dances", "cheeses",
}

var qualifiers = []string{
	"US", "European", "Japanese", "historic", "modern", "rare",
	"coastal", "alpine", "urban", "famous", "regional", "antique",
}

func themeName(rng *rand.Rand, i int) (name, path, typ string) {
	q := qualifiers[rng.Intn(len(qualifiers))]
	t := themes[i%len(themes)]
	name = q + " " + t
	path = fmt.Sprintf("%s-%d", sanitize(t), i)
	typ = sanitize(q + "_" + t)
	return
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

// SlimParams configures the Slim corpus generators. The paper's Slim
// datasets have 100 web sources of which 50 contain at least one
// high-profit slice; sizes here are scaled to laptop runtimes while
// preserving the shape (many predicates for ReVerb, few for NELL).
type SlimParams struct {
	Domains     int // total web domains (paper: 100)
	GoodDomains int // domains with ≥1 profitable slice (paper: 50)
	Seed        int64
}

// DefaultSlimParams mirrors the paper's 100/50 split.
func DefaultSlimParams(seed int64) SlimParams {
	return SlimParams{Domains: 100, GoodDomains: 50, Seed: seed}
}

// ReVerbSlim generates the ReVerb-Slim analog: OpenIE-style facts,
// per-vertical predicates (high predicate diversity), 100 domains with a
// labeled silver standard.
func ReVerbSlim(p SlimParams) *World {
	rng := rand.New(rand.NewSource(p.Seed))
	domains := slimDomains(rng, p, OpenIE)
	return Generate(domains, WorldParams{Style: OpenIE, Seed: p.Seed + 1})
}

// NELLSlim generates the NELL-Slim analog: ClosedIE facts over a small
// ontology, 100 domains with a labeled silver standard.
func NELLSlim(p SlimParams) *World {
	rng := rand.New(rand.NewSource(p.Seed))
	domains := slimDomains(rng, p, ClosedIE)
	return Generate(domains, WorldParams{Style: ClosedIE, Seed: p.Seed + 1})
}

func slimDomains(rng *rand.Rand, p SlimParams, style Style) []DomainSpec {
	attrs := func() int { return 4 + rng.Intn(4) } // OpenIE: wide rows
	if style == ClosedIE {
		attrs = func() int { return 2 + rng.Intn(3) }
	}
	var domains []DomainSpec
	for i := 0; i < p.Domains; i++ {
		host := fmt.Sprintf("www.site%03d.example.org", i)
		d := DomainSpec{Host: host}
		if i < p.GoodDomains {
			if i%4 == 3 {
				// Pure domain: a single fresh vertical and nothing else
				// (golfadvisor.com-style). The only shape NAIVE's
				// whole-source selection can get right.
				name, path, typ := themeName(rng, i*3)
				d.Verticals = append(d.Verticals, VerticalSpec{
					Name:        name,
					PathSeg:     path,
					TypeValue:   typ,
					Entities:    30 + rng.Intn(50),
					Attrs:       attrs(),
					SharedAttrs: 1,
					KnownRatio:  0.05 + 0.2*rng.Float64(),
				})
				domains = append(domains, d)
				continue
			}
			// 2–4 fresh verticals hosted under one shared path (the URL
			// structure does not separate them), plus occasional known
			// content.
			nv := 2 + rng.Intn(3)
			for v := 0; v < nv; v++ {
				name, path, typ := themeName(rng, i*3+v)
				d.Verticals = append(d.Verticals, VerticalSpec{
					Name:        name,
					PathSeg:     path,
					TypeValue:   typ,
					Entities:    25 + rng.Intn(60),
					Attrs:       attrs(),
					SharedAttrs: 1 + rng.Intn(2),
					KnownRatio:  0.05 + 0.25*rng.Float64(),
					SharedPath:  "wiki",
					MultiValued: v%2 == 0,
				})
			}
			if rng.Float64() < 0.5 {
				name, path, typ := themeName(rng, i*3+7)
				d.Verticals = append(d.Verticals, VerticalSpec{
					Name:        name + " (known)",
					PathSeg:     path,
					TypeValue:   typ,
					Entities:    20 + rng.Intn(30),
					Attrs:       attrs(),
					SharedAttrs: 1,
					KnownRatio:  0.985,
				})
			}
			d.NoiseEntities = rng.Intn(15)
			d.NoiseFactsPerEntity = 1 + rng.Intn(2)
		} else if i%2 == 0 {
			// Bad domain flavor A: content the KB already has.
			name, path, typ := themeName(rng, i*3)
			d.Verticals = append(d.Verticals, VerticalSpec{
				Name:        name + " (known)",
				PathSeg:     path,
				TypeValue:   typ,
				Entities:    30 + rng.Intn(40),
				Attrs:       attrs(),
				SharedAttrs: 1,
				KnownRatio:  0.985,
			})
			d.NoiseEntities = rng.Intn(10)
			d.NoiseFactsPerEntity = 1
		} else {
			// Bad domain flavor B: forum/news noise — many new facts,
			// no coherent slice. NAIVE's trap.
			d.NoiseEntities = 120 + rng.Intn(120)
			d.NoiseFactsPerEntity = 2 + rng.Intn(2)
		}
		domains = append(domains, d)
	}
	return domains
}

// FullParams configures the full-scale corpus generators used for the
// Figure 10 experiments. Scale 1.0 keeps the run minutes-long on a
// laptop; the paper's absolute sizes (15M/2.9M facts) are ~100× larger
// but the statistical shape — predicate diversity, source size
// distribution, the single huge NELL source — is preserved.
type FullParams struct {
	Scale float64
	Seed  int64
}

// ReVerbLike generates the full ReVerb analog: many domains, most
// small, high predicate diversity, forum noise.
func ReVerbLike(p FullParams) *World {
	if p.Scale == 0 {
		p.Scale = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := int(400 * p.Scale)
	var domains []DomainSpec
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("www.rv%04d.example.com", i)
		d := DomainSpec{Host: host}
		switch {
		case i%4 == 0: // good source with fresh verticals
			nv := 1 + rng.Intn(3)
			shared := ""
			if i%8 == 0 {
				shared = "wiki"
			}
			for v := 0; v < nv; v++ {
				name, path, typ := themeName(rng, i*3+v)
				d.Verticals = append(d.Verticals, VerticalSpec{
					Name:        name,
					PathSeg:     path,
					TypeValue:   typ,
					Entities:    20 + rng.Intn(80),
					Attrs:       4 + rng.Intn(5),
					SharedAttrs: 1 + rng.Intn(2),
					KnownRatio:  0.05 + 0.3*rng.Float64(),
					SharedPath:  shared,
				})
			}
			d.NoiseEntities = rng.Intn(20)
			d.NoiseFactsPerEntity = 1
		case i%4 == 1: // known content
			name, path, typ := themeName(rng, i*3)
			d.Verticals = append(d.Verticals, VerticalSpec{
				Name:        name + " (known)",
				PathSeg:     path,
				TypeValue:   typ,
				Entities:    20 + rng.Intn(60),
				Attrs:       3 + rng.Intn(4),
				SharedAttrs: 1,
				KnownRatio:  0.96,
			})
		default: // forum noise — most ReVerb sources are loose text
			d.NoiseEntities = 40 + rng.Intn(160)
			d.NoiseFactsPerEntity = 1 + rng.Intn(3)
		}
		domains = append(domains, d)
	}
	return Generate(domains, WorldParams{Style: OpenIE, Seed: p.Seed + 1})
}

// NELLLike generates the full NELL analog: fewer domains over a small
// ontology, including one disproportionately large single-page source
// that dominates AGGCLUSTER's runtime (Figure 10d).
func NELLLike(p FullParams) *World {
	if p.Scale == 0 {
		p.Scale = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := int(150 * p.Scale)
	var domains []DomainSpec
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("www.nell%04d.example.net", i)
		d := DomainSpec{Host: host}
		switch {
		case i == 0:
			// The huge source: one page listing over a thousand
			// entities of one category.
			name, path, typ := themeName(rng, i)
			d.Verticals = append(d.Verticals, VerticalSpec{
				Name:        name + " (bulk)",
				PathSeg:     path,
				TypeValue:   typ,
				Entities:    int(3000 * p.Scale),
				Attrs:       3,
				SharedAttrs: 1,
				KnownRatio:  0.3,
				SinglePage:  true,
			})
		case i%3 == 0:
			nv := 1 + rng.Intn(2)
			for v := 0; v < nv; v++ {
				name, path, typ := themeName(rng, i*3+v)
				d.Verticals = append(d.Verticals, VerticalSpec{
					Name:        name,
					PathSeg:     path,
					TypeValue:   typ,
					Entities:    20 + rng.Intn(60),
					Attrs:       2 + rng.Intn(3),
					SharedAttrs: 1,
					KnownRatio:  0.1 + 0.3*rng.Float64(),
				})
			}
		case i%3 == 1:
			name, path, typ := themeName(rng, i*3)
			d.Verticals = append(d.Verticals, VerticalSpec{
				Name:        name + " (known)",
				PathSeg:     path,
				TypeValue:   typ,
				Entities:    20 + rng.Intn(40),
				Attrs:       2 + rng.Intn(2),
				SharedAttrs: 1,
				KnownRatio:  0.96,
			})
		default:
			// Forum-style noise sources carry more raw new facts than
			// the vertical domains — the sources NAIVE falls for.
			d.NoiseEntities = 120 + rng.Intn(240)
			d.NoiseFactsPerEntity = 2 + rng.Intn(2)
		}
		domains = append(domains, d)
	}
	return Generate(domains, WorldParams{Style: ClosedIE, Seed: p.Seed + 1})
}
