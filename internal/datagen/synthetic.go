// Package datagen generates the datasets of the paper's evaluation:
// the synthetic single-source workloads of Section IV-D, web corpora
// with ReVerb-like and NELL-like statistics, the Slim corpora with their
// silver standards and adjustable KB coverage, and the themed
// KnowledgeVault-style corpus behind the Figure 3 qualitative results.
//
// All generators are deterministic given their seed.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"midas/internal/dict"
	"midas/internal/fact"
	"midas/internal/kb"
)

// SyntheticParams configures the Section IV-D generator. The paper's
// two sweeps use {Slices: 20, Optimal: 10, Facts: 1000..10000} and
// {Slices: 20, Optimal: 1..10, Facts: 5000}.
type SyntheticParams struct {
	// Slices is k: the number of slices planted in the web source.
	Slices int
	// Optimal is m ≤ k: how many planted slices remain profitable (the
	// facts of the others are 95% covered by the generated KB).
	Optimal int
	// Facts is n: the approximate number of facts in the source. Each
	// slice gets n·1% entities with ~5 facts each, so k=20 slices fill
	// the budget.
	Facts int
	// CondsPerRule is the number of conditions in each slice's
	// selection rule (paper: 5).
	CondsPerRule int
	// PCond is the probability that an entity carries each condition of
	// its slice's rule (paper: above 0.95; default 0.99).
	PCond float64
	// PNoise is the probability that an entity carries one condition
	// drawn uniformly from the other slices' rules (paper: below 0.05).
	PNoise float64
	// KnownRatio is the fraction of non-optimal slices' facts placed in
	// the existing KB (paper: 0.95).
	KnownRatio float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// DefaultSyntheticParams returns the paper's configuration.
func DefaultSyntheticParams() SyntheticParams {
	return SyntheticParams{
		Slices:       20,
		Optimal:      10,
		Facts:        5000,
		CondsPerRule: 5,
		PCond:        0.99,
		PNoise:       0.05,
		KnownRatio:   0.95,
		Seed:         1,
	}
}

// GroundSlice is a planted slice: the expected output of a discovery
// method, identified by its fact set.
type GroundSlice struct {
	// Source is the web source the slice lives in.
	Source string
	// Props is the selection rule.
	Props []fact.Property
	// Subjects are the entities generated for the slice.
	Subjects []dict.ID
	// Facts is the slice's full fact set (all facts of its entities,
	// including noise conditions), sorted.
	Facts []kb.Triple
	// Description is a human-readable rule summary.
	Description string
}

// Synthetic is a generated single-source workload.
type Synthetic struct {
	Params  SyntheticParams
	Corpus  *fact.Corpus
	KB      *kb.KB
	Source  string
	Optimal []GroundSlice // the expected output (the m optimal slices)
	Planted []GroundSlice // all k planted slices
}

// NewSynthetic generates a Section IV-D workload.
func NewSynthetic(p SyntheticParams) *Synthetic {
	if p.CondsPerRule == 0 {
		p.CondsPerRule = 5
	}
	if p.PCond == 0 {
		p.PCond = 0.99
	}
	if p.KnownRatio == 0 {
		p.KnownRatio = 0.95
	}
	rng := rand.New(rand.NewSource(p.Seed))
	corpus := fact.NewCorpus(nil)
	existing := kb.New(corpus.Space)
	const src = "http://synthetic.example.com/data"

	// Selection rules: rule i uses predicates pred0..pred4 with values
	// unique to the rule, so rules are disjoint property sets on shared
	// predicates (entities across slices still collide on predicates,
	// which is what makes pruning matter).
	type rule struct {
		preds  []string
		values []string
	}
	rules := make([]rule, p.Slices)
	for i := range rules {
		r := rule{}
		for c := 0; c < p.CondsPerRule; c++ {
			r.preds = append(r.preds, fmt.Sprintf("pred%d", c))
			r.values = append(r.values, fmt.Sprintf("slice%d_val%d", i, c))
		}
		rules[i] = r
	}

	entitiesPerSlice := p.Facts / 100
	if entitiesPerSlice < 2 {
		entitiesPerSlice = 2
	}

	out := &Synthetic{Params: p, Corpus: corpus, KB: existing, Source: src}
	for i, r := range rules {
		optimal := i < p.Optimal
		gs := GroundSlice{Source: src, Description: fmt.Sprintf("slice %d", i)}
		for c := range r.preds {
			gs.Props = append(gs.Props, fact.Prop(
				corpus.Space.Predicates.Put(r.preds[c]),
				corpus.Space.Objects.Put(r.values[c]),
			))
		}
		sortProps(gs.Props)

		for e := 0; e < entitiesPerSlice; e++ {
			subject := fmt.Sprintf("entity_%d_%d", i, e)
			var entityFacts []kb.Triple
			for c := range r.preds {
				if rng.Float64() < p.PCond {
					t := corpus.Space.Intern(subject, r.preds[c], r.values[c])
					entityFacts = append(entityFacts, t)
				}
			}
			// Noise: with probability PNoise the entity carries one
			// condition absent from its selection rule, drawn from a
			// diffuse pool (so the noise itself never forms a slice:
			// each noise property's support stays ≈ 0.5 entities).
			if rng.Float64() < p.PNoise {
				t := corpus.Space.Intern(subject,
					fmt.Sprintf("npred%d", rng.Intn(10)),
					fmt.Sprintf("nval%d", rng.Intn(200)))
				entityFacts = append(entityFacts, t)
			}
			if len(entityFacts) == 0 {
				// Guarantee the entity exists: keep its first condition.
				t := corpus.Space.Intern(subject, r.preds[0], r.values[0])
				entityFacts = append(entityFacts, t)
			}
			subj := entityFacts[0].S
			gs.Subjects = append(gs.Subjects, subj)
			for _, t := range entityFacts {
				corpus.AddTriple(t, corpus.URLs.Put(src), 0.9)
				gs.Facts = append(gs.Facts, t)
				if !optimal && rng.Float64() < p.KnownRatio {
					existing.Add(t)
				}
			}
		}
		sortTriples(gs.Facts)
		out.Planted = append(out.Planted, gs)
		if optimal {
			out.Optimal = append(out.Optimal, gs)
		}
	}
	return out
}

// Triples returns the corpus facts as a flat slice (one web source).
func (s *Synthetic) Triples() []kb.Triple {
	out := make([]kb.Triple, len(s.Corpus.Facts))
	for i, e := range s.Corpus.Facts {
		out[i] = e.Triple
	}
	return out
}

func sortProps(ps []fact.Property) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func sortTriples(ts []kb.Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}
