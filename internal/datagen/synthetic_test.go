package datagen_test

import (
	"testing"

	"midas/internal/baselines"
	"midas/internal/core"
	"midas/internal/datagen"
	"midas/internal/eval"
	"midas/internal/fact"
	"midas/internal/kb"
	"midas/internal/slice"
)

func syntheticTable(s *datagen.Synthetic) *fact.Table {
	return fact.Build(s.Source, s.Corpus.Space, s.Triples(), s.KB)
}

func silverSets(gs []datagen.GroundSlice) [][]kb.Triple {
	out := make([][]kb.Triple, len(gs))
	for i := range gs {
		out[i] = gs[i].Facts
	}
	return out
}

// TestSyntheticShape checks the generator's basic accounting: ~n facts,
// k planted slices, m optimal, non-optimal facts mostly in the KB.
func TestSyntheticShape(t *testing.T) {
	p := datagen.DefaultSyntheticParams()
	s := datagen.NewSynthetic(p)
	if len(s.Planted) != p.Slices || len(s.Optimal) != p.Optimal {
		t.Fatalf("planted/optimal = %d/%d, want %d/%d", len(s.Planted), len(s.Optimal), p.Slices, p.Optimal)
	}
	n := len(s.Corpus.Facts)
	if n < p.Facts*8/10 || n > p.Facts*13/10 {
		t.Errorf("facts = %d, want ≈ %d", n, p.Facts)
	}
	if s.KB.Size() == 0 {
		t.Error("KB empty; non-optimal slices should be covered")
	}
	// Optimal slices must be ≥5% of input facts each (paper guarantee).
	for i, gs := range s.Optimal {
		if len(gs.Facts)*22 < n { // ≈5% with slack for PCond drops
			t.Errorf("optimal slice %d covers %d facts < 5%% of %d", i, len(gs.Facts), n)
		}
	}
}

// TestMIDASRecoversSyntheticSlices is Figure 11's headline: MIDAS
// achieves (near-)perfect F-measure recovering the planted optimal
// slices, while GREEDY recovers only one.
func TestMIDASRecoversSyntheticSlices(t *testing.T) {
	p := datagen.DefaultSyntheticParams()
	p.KnownRatio = 0.98
	s := datagen.NewSynthetic(p)
	table := syntheticTable(s)

	res := core.DiscoverTable(table, core.Options{})
	pred := make([][]kb.Triple, len(res.Slices))
	for i, sl := range res.Slices {
		pred[i] = sl.FactSet(table)
	}
	score := eval.Score(pred, silverSets(s.Optimal))
	if score.F1 < 0.9 {
		for i, sl := range res.Slices {
			t.Logf("pred %d: %s facts=%d new=%d profit=%.1f", i, sl.Description(s.Corpus.Space), sl.Facts, sl.NewFacts, sl.Profit)
		}
		t.Errorf("MIDAS F1 = %.3f (P=%.3f R=%.3f), want ≥ 0.9", score.F1, score.Precision, score.Recall)
	}

	g := baselines.Greedy(table, slice.DefaultCostModel())
	if g == nil {
		t.Fatal("greedy found nothing")
	}
	gScore := eval.Score([][]kb.Triple{g.FactSet(table)}, silverSets(s.Optimal))
	if gScore.TruePos > 1 {
		t.Errorf("greedy matched %d slices, can match at most 1", gScore.TruePos)
	}
	if gScore.Recall >= score.Recall {
		t.Errorf("greedy recall %.3f should be below MIDAS %.3f", gScore.Recall, score.Recall)
	}
}

// TestAggClusterOnSynthetic: AGGCLUSTER should find some planted slices
// but not beat MIDAS.
func TestAggClusterOnSynthetic(t *testing.T) {
	p := datagen.DefaultSyntheticParams()
	p.Facts = 2000
	p.KnownRatio = 0.98
	s := datagen.NewSynthetic(p)
	table := syntheticTable(s)

	agg := baselines.AggCluster(table, slice.DefaultCostModel())
	pred := make([][]kb.Triple, len(agg))
	for i, sl := range agg {
		pred[i] = sl.FactSet(table)
	}
	score := eval.Score(pred, silverSets(s.Optimal))
	if score.Recall == 0 {
		t.Errorf("aggcluster recovered nothing (returned %d slices)", len(agg))
	}

	res := core.DiscoverTable(table, core.Options{})
	mpred := make([][]kb.Triple, len(res.Slices))
	for i, sl := range res.Slices {
		mpred[i] = sl.FactSet(table)
	}
	mscore := eval.Score(mpred, silverSets(s.Optimal))
	if mscore.F1 < score.F1 {
		t.Errorf("MIDAS F1 %.3f below AGGCLUSTER %.3f", mscore.F1, score.F1)
	}
}

// TestSyntheticDeterminism: same seed, same corpus.
func TestSyntheticDeterminism(t *testing.T) {
	a := datagen.NewSynthetic(datagen.DefaultSyntheticParams())
	b := datagen.NewSynthetic(datagen.DefaultSyntheticParams())
	if len(a.Corpus.Facts) != len(b.Corpus.Facts) {
		t.Fatalf("fact counts differ: %d vs %d", len(a.Corpus.Facts), len(b.Corpus.Facts))
	}
	for i := range a.Corpus.Facts {
		if a.Corpus.Facts[i].Triple != b.Corpus.Facts[i].Triple {
			t.Fatalf("fact %d differs", i)
		}
	}
	if a.KB.Size() != b.KB.Size() {
		t.Errorf("KB sizes differ: %d vs %d", a.KB.Size(), b.KB.Size())
	}
}
