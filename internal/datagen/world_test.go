package datagen_test

import (
	"strings"
	"testing"

	"midas/internal/datagen"
	"midas/internal/eval"
	"midas/internal/framework"
	"midas/internal/kb"
	"midas/internal/source"
)

// TestReVerbSlimShape: 100 domains, ~50 good, OpenIE predicate
// diversity, a non-empty silver standard.
func TestReVerbSlimShape(t *testing.T) {
	w := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	st := w.Stats()
	if st.Facts == 0 || st.URLs == 0 {
		t.Fatalf("empty corpus: %+v", st)
	}
	if len(w.GoodSources) < 40 || len(w.GoodSources) > 60 {
		t.Errorf("good sources = %d, want ≈ 50", len(w.GoodSources))
	}
	if len(w.Silver) < 50 {
		t.Errorf("silver slices = %d, want ≥ 50 (good domains carry 1-3 each)", len(w.Silver))
	}
	// OpenIE: per-vertical predicates explode the vocabulary.
	if st.Predicates < 300 {
		t.Errorf("predicates = %d, want ≥ 300 for the ReVerb shape", st.Predicates)
	}
}

// TestNELLSlimShape: ClosedIE keeps the predicate vocabulary small.
func TestNELLSlimShape(t *testing.T) {
	w := datagen.NELLSlim(datagen.DefaultSlimParams(7))
	st := w.Stats()
	if st.Predicates > 60 {
		t.Errorf("predicates = %d, want ≤ 60 for the NELL shape", st.Predicates)
	}
	if len(w.Silver) == 0 {
		t.Fatal("no silver slices")
	}
}

// TestNELLLikeHasHugeSource: the full NELL corpus must contain one
// disproportionately large leaf source (Figure 10d's runtime step).
func TestNELLLikeHasHugeSource(t *testing.T) {
	w := datagen.NELLLike(datagen.FullParams{Scale: 0.3, Seed: 3})
	counts := make(map[string]int)
	for _, e := range w.Corpus.Facts {
		counts[source.Normalize(w.Corpus.URLs.String(e.URL))]++
	}
	maxCount, total := 0, 0
	for _, c := range counts {
		total += c
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount*10 < total {
		t.Errorf("largest source holds %d of %d facts; want ≥ 10%%", maxCount, total)
	}
}

// TestMIDASOnSlimCorpus runs the full pipeline on ReVerb-Slim at zero
// coverage and checks MIDAS lands in the high-quality regime the paper
// reports (precision and recall well above the baselines' range).
func TestMIDASOnSlimCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("slim corpus run")
	}
	w := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	existing, silver := w.WithCoverage(0, 1)
	out := framework.Run(w.Corpus, existing, framework.Options{})

	silverSets := make([][]kb.Triple, len(silver))
	for i := range silver {
		silverSets[i] = silver[i].Facts
	}
	score := eval.Score(out.FactSets, silverSets)
	t.Logf("MIDAS on ReVerb-Slim: P=%.3f R=%.3f F=%.3f (%d predicted, %d silver)",
		score.Precision, score.Recall, score.F1, score.Predicted, score.Expected)
	if score.F1 < 0.6 {
		for i, s := range out.Slices {
			if i > 20 {
				break
			}
			t.Logf("pred: %s @ %s facts=%d new=%d profit=%.1f", s.Description(w.Corpus.Space), s.Source, s.Facts, s.NewFacts, s.Profit)
		}
		t.Errorf("MIDAS F1 = %.3f, want ≥ 0.6", score.F1)
	}
}

// TestCoverageAdjustment: raising coverage shrinks the expected output
// and grows the KB.
func TestCoverageAdjustment(t *testing.T) {
	w := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	kb0, s0 := w.WithCoverage(0, 1)
	kb40, s40 := w.WithCoverage(0.4, 1)
	kb80, s80 := w.WithCoverage(0.8, 1)
	if len(s0) != len(w.Silver) {
		t.Errorf("coverage 0 expected output = %d, want all %d", len(s0), len(w.Silver))
	}
	if !(len(s80) < len(s40) && len(s40) < len(s0)) {
		t.Errorf("expected output should shrink: %d, %d, %d", len(s0), len(s40), len(s80))
	}
	if !(kb80.Size() > kb40.Size() && kb40.Size() > kb0.Size()) {
		t.Errorf("KB should grow: %d, %d, %d", kb0.Size(), kb40.Size(), kb80.Size())
	}
	// The base world's KB must be untouched.
	if kb0.Size() != w.KB.Size() {
		t.Errorf("coverage 0 must clone the base KB unchanged")
	}
}

// TestVerticalOracleGroundTruth: subjects of planted verticals are
// labeled; noise subjects are not.
func TestVerticalOracleGroundTruth(t *testing.T) {
	w := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	labeled := 0
	for _, gs := range w.Silver {
		for _, s := range gs.Subjects {
			if v, ok := w.VerticalOf[s]; !ok || v == "" {
				t.Fatalf("silver subject %d unlabeled", s)
			}
			labeled++
		}
	}
	if labeled == 0 {
		t.Fatal("no labeled subjects")
	}
	for s := range w.VerticalOf {
		if strings.HasPrefix(w.Corpus.Space.Subjects.String(s), "post ") {
			t.Errorf("noise subject labeled as vertical")
		}
	}
}
