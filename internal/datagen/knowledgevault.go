package datagen

import (
	"fmt"
	"math/rand"
)

// KVTarget describes one of the Figure 3 rows: a vertical with a target
// new-fact ratio inside the slice and inside the whole source.
type KVTarget struct {
	Description string
	Host        string
	PathSeg     string
	TypeValue   string
	SliceNew    float64 // target ratio of new facts in the slice
	SourceNew   float64 // target ratio of new facts in the web source
	Entities    int
}

// KVTargets returns the six verticals of Figure 3 with the paper's
// reported ratios.
func KVTargets() []KVTarget {
	return []KVTarget{
		{"Education organizations", "www.schoolmap.org", "school", "education_organization", 0.67, 0.15, 90},
		{"US golf courses", "www.golfadvisor.com", "course-directory", "golf_course", 0.77, 0.13, 110},
		{"Biology facts", "www.marinespecies.org", "species", "marine_species", 0.75, 0.27, 100},
		{"Board games", "boardgaming.com", "games", "board_game", 0.83, 0.20, 80},
		{"Skyscraper architectures", "skyscrapercenter.com", "building", "skyscraper", 0.80, 0.10, 95},
		{"Indian politicians", "www.archive.india.gov.in", "politician", "indian_politician", 0.71, 0.18, 85},
	}
}

// KnowledgeVaultSim builds the corpus behind the Figure 3 qualitative
// experiment: the six target verticals, each hosted on a domain padded
// with already-known filler content sized so the whole-source new-fact
// ratio lands near the paper's number, plus a tail of mediocre domains
// so "top slices" is a meaningful ranking.
func KnowledgeVaultSim(seed int64) *World {
	rng := rand.New(rand.NewSource(seed))
	var domains []DomainSpec

	for i, t := range KVTargets() {
		attrs := 4 + rng.Intn(3)
		d := DomainSpec{Host: t.Host}
		d.Verticals = append(d.Verticals, VerticalSpec{
			Name:        t.Description,
			PathSeg:     t.PathSeg,
			TypeValue:   t.TypeValue,
			Entities:    t.Entities,
			Attrs:       attrs,
			SharedAttrs: 1,
			KnownRatio:  1 - t.SliceNew,
		})
		// Filler: known content sized so that
		// (sliceNew·T + fillerNew·F) / (T + F) ≈ sourceNew,
		// with fillerNew ≈ 0.03 (a known vertical still leaks a few
		// new facts through unknown entities).
		const fillerNew = 0.03
		sliceFacts := float64(t.Entities * (attrs + 1))
		fillerFacts := sliceFacts * (t.SliceNew - t.SourceNew) / (t.SourceNew - fillerNew)
		fillerEntities := int(fillerFacts / float64(attrs+1))
		nFillers := 2 + rng.Intn(2)
		for f := 0; f < nFillers; f++ {
			name, path, typ := themeName(rng, i*7+f)
			d.Verticals = append(d.Verticals, VerticalSpec{
				Name:        fmt.Sprintf("%s (archive %d)", name, f),
				PathSeg:     "archive-" + path,
				TypeValue:   typ,
				Entities:    fillerEntities/nFillers + 1,
				Attrs:       attrs,
				SharedAttrs: 1,
				KnownRatio:  1 - fillerNew,
			})
		}
		domains = append(domains, d)
	}

	// Mediocre tail: marginal verticals and noise domains.
	for i := 0; i < 12; i++ {
		host := fmt.Sprintf("www.tail%02d.example.com", i)
		d := DomainSpec{Host: host}
		if i%2 == 0 {
			name, path, typ := themeName(rng, 50+i)
			d.Verticals = append(d.Verticals, VerticalSpec{
				Name:        name,
				PathSeg:     path,
				TypeValue:   typ,
				Entities:    15 + rng.Intn(20),
				Attrs:       3,
				SharedAttrs: 1,
				KnownRatio:  0.5 + 0.3*rng.Float64(),
			})
		} else {
			d.NoiseEntities = 60 + rng.Intn(80)
			d.NoiseFactsPerEntity = 2
		}
		domains = append(domains, d)
	}

	// KnowledgeVault's extraction of these sources was sparse — "only a
	// few attributes for marine species" — so use a lower recall.
	return Generate(domains, WorldParams{Style: ClosedIE, ExtractRecall: 0.5, AnchorRecall: 0.85, Seed: seed + 1})
}
