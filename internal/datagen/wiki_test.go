package datagen_test

import (
	"testing"

	"midas/internal/datagen"
	"midas/internal/eval"
	"midas/internal/framework"
	"midas/internal/kb"
	"midas/internal/source"
)

// TestWikiLikeDeepHierarchy: the encyclopedia corpus is one domain with
// a 4-level URL hierarchy; the framework must walk all levels and
// recover the silver slices without reporting redundant granularities.
func TestWikiLikeDeepHierarchy(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run")
	}
	w := datagen.WikiLike(datagen.DefaultWikiParams(11))

	// Single domain, deep URLs.
	domains := make(map[string]bool)
	maxDepth := 0
	for _, e := range w.Corpus.Facts {
		src := source.Normalize(w.Corpus.URLs.String(e.URL))
		domains[source.Domain(src)] = true
		if d := source.Depth(src); d > maxDepth {
			maxDepth = d
		}
	}
	if len(domains) != 1 {
		t.Fatalf("domains = %d, want 1", len(domains))
	}
	if maxDepth < 4 {
		t.Fatalf("max URL depth = %d, want ≥ 4 (portal/category/article)", maxDepth)
	}
	if len(w.Silver) < 15 {
		t.Fatalf("silver slices = %d, want a substantial catalogue", len(w.Silver))
	}

	out := framework.Run(w.Corpus, w.KB, framework.Options{})
	if out.Rounds < 4 {
		t.Errorf("rounds = %d, want ≥ 4 (deep hierarchy)", out.Rounds)
	}
	if len(out.Levels) != out.Rounds {
		t.Errorf("level stats = %d, want %d", len(out.Levels), out.Rounds)
	}
	for i := 1; i < len(out.Levels); i++ {
		if out.Levels[i].Depth >= out.Levels[i-1].Depth {
			t.Error("level stats must be deepest-first")
		}
	}

	silverSets := make([][]kb.Triple, len(w.Silver))
	for i := range w.Silver {
		silverSets[i] = w.Silver[i].Facts
	}
	score := eval.Score(out.FactSets, silverSets)
	t.Logf("wiki: P=%.3f R=%.3f F=%.3f (%d predicted, %d silver, %d rounds)",
		score.Precision, score.Recall, score.F1, score.Predicted, score.Expected, out.Rounds)
	if score.Recall < 0.9 {
		t.Errorf("recall = %.3f, want ≥ 0.9", score.Recall)
	}
	if score.F1 < 0.75 {
		t.Errorf("F1 = %.3f, want ≥ 0.75", score.F1)
	}

	// No redundant ancestor/descendant pairs in the output: a slice's
	// facts must not be contained in another reported slice's facts at
	// a coarser granularity of the same path.
	for i := range out.Slices {
		for j := range out.Slices {
			if i == j {
				continue
			}
			a, b := out.Slices[i], out.Slices[j]
			if a.Source != b.Source && sourceUnder(b.Source, a.Source) &&
				a.Description(w.Corpus.Space) == b.Description(w.Corpus.Space) {
				t.Errorf("redundant slice pair: %q at %s and %s",
					a.Description(w.Corpus.Space), a.Source, b.Source)
			}
		}
	}
}

func sourceUnder(child, parent string) bool {
	return len(child) > len(parent) && child[:len(parent)] == parent && child[len(parent)] == '/'
}
