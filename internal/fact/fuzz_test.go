package fact

import (
	"bytes"
	"testing"
)

// FuzzFactReadBinary throws arbitrary bytes at the binary corpus
// decoder: any input must either be rejected with an error or produce a
// corpus whose reported count matches what was stored and which
// round-trips through its own serialization.
func FuzzFactReadBinary(f *testing.F) {
	seed := NewCorpus(nil)
	seed.Add(Fact{Subject: "alpha entity", Predicate: "kind", Object: "alpha", Confidence: 0.9, URL: "http://a.example.com/p1"})
	seed.Add(Fact{Subject: "beta entity", Predicate: "id", Object: "b-1", Confidence: 0.5, URL: "http://b.example.com/p2"})
	var buf bytes.Buffer
	if err := seed.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(corpusMagic))
	f.Add([]byte(corpusMagic + "\x02\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // length cap: the interesting structure is small
		}
		c := NewCorpus(nil)
		n, err := c.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected; no panic, no runaway allocation is the property
		}
		if n != len(c.Facts) {
			t.Fatalf("ReadBinary reported %d, corpus holds %d", n, len(c.Facts))
		}
		var out bytes.Buffer
		if err := c.WriteBinary(&out); err != nil {
			t.Fatalf("re-serializing an accepted corpus: %v", err)
		}
		again := NewCorpus(nil)
		m, err := again.ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own serialization: %v", err)
		}
		if m != len(c.Facts) {
			t.Fatalf("round trip changed count: %d -> %d", len(c.Facts), m)
		}
		for i, e := range c.Facts {
			a, b := again.Facts[i], e
			s1, p1, o1 := c.Space.StringTriple(e.Triple)
			s2, p2, o2 := again.Space.StringTriple(a.Triple)
			if s1 != s2 || p1 != p2 || o1 != o2 || a.Conf != b.Conf ||
				c.URLs.String(e.URL) != again.URLs.String(a.URL) {
				t.Fatalf("round trip changed fact %d", i)
			}
		}
	})
}
