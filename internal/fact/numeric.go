package fact

import (
	"fmt"
	"strconv"

	"midas/internal/dict"
)

// BucketNumeric implements the generalized-property extension the paper
// sketches in the Definition 4 discussion ("our method can be easily
// extended to more general properties, e.g. year > 2000"): object
// values of predominantly-numeric predicates are rewritten into range
// labels, so entities with nearby values ("started = 1957" and
// "started = 1959") share a property ("started = [1950,1960)") and can
// form one slice.
//
// A predicate qualifies when at least minCount of its facts and at
// least 80% of them have numeric objects. Non-numeric objects of a
// qualifying predicate are left untouched. The returned corpus shares
// the space and URL dictionary; the original is not modified.
func BucketNumeric(c *Corpus, width float64, minCount int) *Corpus {
	if width <= 0 {
		return c
	}
	if minCount < 1 {
		minCount = 1
	}

	// First pass: per-predicate numeric statistics.
	type stat struct{ numeric, total int }
	stats := make(map[dict.ID]*stat)
	numVal := make(map[dict.ID]float64) // object ID → parsed value
	for _, e := range c.Facts {
		st, ok := stats[e.Triple.P]
		if !ok {
			st = &stat{}
			stats[e.Triple.P] = st
		}
		st.total++
		if _, isNum := numVal[e.Triple.O]; !isNum {
			v, err := strconv.ParseFloat(c.Space.Objects.String(e.Triple.O), 64)
			if err != nil {
				continue
			}
			numVal[e.Triple.O] = v
		}
		st.numeric++
	}
	qualifies := make(map[dict.ID]bool)
	for p, st := range stats {
		if st.numeric >= minCount && st.numeric*5 >= st.total*4 {
			qualifies[p] = true
		}
	}
	if len(qualifies) == 0 {
		return c
	}

	// Second pass: rewrite qualifying numeric objects into bucket
	// labels.
	out := &Corpus{Space: c.Space, URLs: c.URLs, Facts: make([]Extracted, 0, len(c.Facts))}
	bucketID := make(map[float64]dict.ID)
	for _, e := range c.Facts {
		if qualifies[e.Triple.P] {
			if v, ok := numVal[e.Triple.O]; ok {
				lo := bucketFloor(v, width)
				id, cached := bucketID[lo]
				if !cached {
					id = c.Space.Objects.Put(bucketLabel(lo, width))
					bucketID[lo] = id
				}
				e.Triple.O = id
			}
		}
		out.Facts = append(out.Facts, e)
	}
	return out
}

func bucketFloor(v, width float64) float64 {
	b := v / width
	f := float64(int64(b))
	if b < 0 && f != b {
		f--
	}
	return f * width
}

func bucketLabel(lo, width float64) string {
	return fmt.Sprintf("[%s,%s)", formatNum(lo), formatNum(lo+width))
}

// formatNum renders a float without trailing zero noise.
func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
