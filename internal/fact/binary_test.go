package fact_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"midas/internal/fact"
)

func TestCorpusBinaryRoundTrip(t *testing.T) {
	c := fact.NewCorpus(nil)
	c.Add(fact.Fact{Subject: "Atlas", Predicate: "sponsor", Object: "NASA", Confidence: 0.92, URL: "http://a.com/x"})
	c.Add(fact.Fact{Subject: "Castor", Predicate: "sponsor", Object: "NASA", Confidence: 0.755, URL: "http://a.com/y"})

	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := fact.NewCorpus(nil)
	n, err := c2.ReadBinary(&buf)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if len(c2.Facts) != 2 {
		t.Fatalf("facts = %d", len(c2.Facts))
	}
	s, p, o := c2.Space.StringTriple(c2.Facts[0].Triple)
	if s != "Atlas" || p != "sponsor" || o != "NASA" {
		t.Errorf("fact 0 = %q %q %q", s, p, o)
	}
	if got := c2.URLs.String(c2.Facts[1].URL); got != "http://a.com/y" {
		t.Errorf("url = %q", got)
	}
	if math.Abs(float64(c2.Facts[0].Conf)-0.92) > 0.0005 {
		t.Errorf("conf = %f", c2.Facts[0].Conf)
	}
}

func TestCorpusBinaryAppends(t *testing.T) {
	src := fact.NewCorpus(nil)
	src.Add(fact.Fact{Subject: "x", Predicate: "p", Object: "1", Confidence: 0.8, URL: "u"})
	var buf bytes.Buffer
	if err := src.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	dst := fact.NewCorpus(nil)
	dst.Add(fact.Fact{Subject: "pre", Predicate: "q", Object: "0", Confidence: 0.9, URL: "v"})
	if _, err := dst.ReadBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if len(dst.Facts) != 2 {
		t.Errorf("facts = %d, want 2 (append semantics)", len(dst.Facts))
	}
}

func TestCorpusBinaryCorrupt(t *testing.T) {
	c := fact.NewCorpus(nil)
	if _, err := c.ReadBinary(bytes.NewReader([]byte("BAD!stream"))); err == nil {
		t.Error("want magic error")
	}
}

func TestCorpusBinaryQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := fact.NewCorpus(nil)
		for i := 0; i < rng.Intn(150); i++ {
			c.Add(fact.Fact{
				Subject:    fmt.Sprintf("s%d", rng.Intn(20)),
				Predicate:  fmt.Sprintf("p%d", rng.Intn(5)),
				Object:     fmt.Sprintf("o%d", rng.Intn(25)),
				Confidence: float64(rng.Intn(1001)) / 1000,
				URL:        fmt.Sprintf("http://h%d.com/p%d", rng.Intn(4), rng.Intn(10)),
			})
		}
		var buf bytes.Buffer
		if err := c.WriteBinary(&buf); err != nil {
			return false
		}
		c2 := fact.NewCorpus(nil)
		if _, err := c2.ReadBinary(&buf); err != nil {
			return false
		}
		if len(c2.Facts) != len(c.Facts) {
			return false
		}
		for i := range c.Facts {
			s1, p1, o1 := c.Space.StringTriple(c.Facts[i].Triple)
			s2, p2, o2 := c2.Space.StringTriple(c2.Facts[i].Triple)
			if s1 != s2 || p1 != p2 || o1 != o2 {
				return false
			}
			if c.URLs.String(c.Facts[i].URL) != c2.URLs.String(c2.Facts[i].URL) {
				return false
			}
			if math.Abs(float64(c.Facts[i].Conf-c2.Facts[i].Conf)) > 0.0005 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
