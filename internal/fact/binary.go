package fact

import (
	"fmt"
	"io"

	"midas/internal/binio"
)

// Binary corpus format: "MCO1", the four dictionaries actually used
// (subjects, predicates, objects, URLs), then the fact count and the
// facts as varint local indexes plus a 3-digit fixed-point confidence.
// Self-contained: IDs are remapped on load into the destination corpus.

const corpusMagic = "MCO1"

// WriteBinary serializes the corpus.
func (c *Corpus) WriteBinary(w io.Writer) error {
	subjIdx := make(map[int32]uint64)
	predIdx := make(map[int32]uint64)
	objIdx := make(map[int32]uint64)
	urlIdx := make(map[int32]uint64)
	var subjs, preds, objs, urls []string
	index := func(m map[int32]uint64, list *[]string, id int32, s string) uint64 {
		if i, ok := m[id]; ok {
			return i
		}
		i := uint64(len(*list))
		m[id] = i
		*list = append(*list, s)
		return i
	}

	bw := binio.NewWriter(w)
	bw.Magic(corpusMagic)
	type enc struct{ s, p, o, u, conf uint64 }
	encoded := make([]enc, len(c.Facts))
	for i, e := range c.Facts {
		encoded[i] = enc{
			s:    index(subjIdx, &subjs, e.Triple.S, c.Space.Subjects.String(e.Triple.S)),
			p:    index(predIdx, &preds, e.Triple.P, c.Space.Predicates.String(e.Triple.P)),
			o:    index(objIdx, &objs, e.Triple.O, c.Space.Objects.String(e.Triple.O)),
			u:    index(urlIdx, &urls, e.URL, c.URLs.String(e.URL)),
			conf: uint64(e.Conf*1000 + 0.5),
		}
	}
	for _, sec := range [][]string{subjs, preds, objs, urls} {
		bw.Int(len(sec))
		for _, s := range sec {
			bw.String(s)
		}
	}
	bw.Int(len(encoded))
	for _, e := range encoded {
		bw.Uvarint(e.s)
		bw.Uvarint(e.p)
		bw.Uvarint(e.o)
		bw.Uvarint(e.u)
		bw.Uvarint(e.conf)
	}
	return bw.Flush()
}

// ReadBinary appends a binary corpus stream to the receiver, interning
// into its space and URL dictionary. It returns the number of facts
// read.
func (c *Corpus) ReadBinary(r io.Reader) (int, error) {
	br := binio.NewReader(r)
	br.Magic(corpusMagic)
	readSection := func() []string {
		n := br.Int()
		if br.Err() != nil {
			return nil
		}
		// Preallocation is capped: every entry costs at least one stream
		// byte, so a corrupt count fails at read time instead of forcing
		// a huge allocation up front.
		out := make([]string, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			out = append(out, br.String())
		}
		return out
	}
	subjs := readSection()
	preds := readSection()
	objs := readSection()
	urls := readSection()
	count := br.Int()
	if err := br.Err(); err != nil {
		return 0, err
	}

	subjIDs := make([]int32, len(subjs))
	for i, s := range subjs {
		subjIDs[i] = c.Space.Subjects.Put(s)
	}
	predIDs := make([]int32, len(preds))
	for i, s := range preds {
		predIDs[i] = c.Space.Predicates.Put(s)
	}
	objIDs := make([]int32, len(objs))
	for i, s := range objs {
		objIDs[i] = c.Space.Objects.Put(s)
	}
	urlIDs := make([]int32, len(urls))
	for i, s := range urls {
		urlIDs[i] = c.URLs.Put(s)
	}

	for i := 0; i < count; i++ {
		s, p, o, u := br.Uvarint(), br.Uvarint(), br.Uvarint(), br.Uvarint()
		conf := br.Uvarint()
		if err := br.Err(); err != nil {
			return i, err
		}
		if s >= uint64(len(subjIDs)) || p >= uint64(len(predIDs)) ||
			o >= uint64(len(objIDs)) || u >= uint64(len(urlIDs)) || conf > 1000 {
			return i, fmt.Errorf("%w: fact %d references out-of-range value", binio.ErrCorrupt, i)
		}
		c.AddTriple(
			// Reconstruct through the remap tables.
			tripleOf(subjIDs[s], predIDs[p], objIDs[o]),
			urlIDs[u],
			float32(conf)/1000,
		)
	}
	return count, nil
}
