package fact_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"midas/internal/fact"
	"midas/internal/kb"
)

func TestPropertyPacking(t *testing.T) {
	p := fact.Prop(7, 42)
	if p.Pred() != 7 || p.Value() != 42 {
		t.Errorf("unpack = (%d, %d)", p.Pred(), p.Value())
	}
	// Ordering: predicate major, value minor.
	if !(fact.Prop(1, 99) < fact.Prop(2, 0)) {
		t.Error("predicate should dominate ordering")
	}
	if !(fact.Prop(1, 1) < fact.Prop(1, 2)) {
		t.Error("value should break ties")
	}
}

func TestPropertyPackingQuick(t *testing.T) {
	f := func(pred, val int32) bool {
		if pred < 0 || val < 0 {
			return true // IDs are non-negative by construction
		}
		p := fact.Prop(pred, val)
		return p.Pred() == pred && p.Value() == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFormat(t *testing.T) {
	sp := kb.NewSpace()
	tr := sp.Intern("s", "sponsor", "NASA")
	p := fact.Prop(tr.P, tr.O)
	if got := p.Format(sp); got != "sponsor = NASA" {
		t.Errorf("Format = %q", got)
	}
}

func buildTable(t *testing.T) (*fact.Table, *kb.Space) {
	t.Helper()
	sp := kb.NewSpace()
	existing := kb.New(sp)
	existing.AddStrings("e1", "p1", "v1")
	triples := []kb.Triple{
		sp.Intern("e1", "p1", "v1"), // known
		sp.Intern("e1", "p2", "v2"), // new
		sp.Intern("e1", "p2", "v3"), // new, multi-valued cell
		sp.Intern("e2", "p1", "v1"), // new
		sp.Intern("e1", "p1", "v1"), // duplicate extraction
	}
	return fact.Build("src", sp, triples, existing), sp
}

func TestBuildTable(t *testing.T) {
	table, sp := buildTable(t)
	if table.NumEntities() != 2 {
		t.Fatalf("entities = %d, want 2", table.NumEntities())
	}
	if table.TotalFacts != 4 {
		t.Errorf("total facts = %d, want 4 (duplicate collapsed)", table.TotalFacts)
	}
	if table.TotalNew != 3 {
		t.Errorf("new facts = %d, want 3", table.TotalNew)
	}
	if table.NumPredicates() != 2 {
		t.Errorf("predicates = %d, want 2", table.NumPredicates())
	}
	if got := len(table.Properties()); got != 3 {
		t.Errorf("distinct properties = %d, want 3", got)
	}
	// Row e1: 3 facts, 2 new; props sorted.
	e1 := table.Entities[0]
	if sp.Subjects.String(e1.Subject) != "e1" {
		t.Fatalf("first row = %q (rows must be subject-sorted)", sp.Subjects.String(e1.Subject))
	}
	if e1.Facts() != 3 || e1.NewCount != 2 {
		t.Errorf("e1 facts/new = %d/%d, want 3/2", e1.Facts(), e1.NewCount)
	}
	for i := 1; i < len(e1.Props); i++ {
		if e1.Props[i] <= e1.Props[i-1] {
			t.Error("props unsorted or duplicated")
		}
	}
	if !e1.HasProp(fact.Prop(sp.Predicates.Lookup("p2"), sp.Objects.Lookup("v3"))) {
		t.Error("HasProp missed an existing property")
	}
	if e1.HasProp(fact.Prop(sp.Predicates.Lookup("p2"), sp.Objects.Lookup("v1"))) {
		t.Error("HasProp invented a property")
	}
}

func TestBuildNilKB(t *testing.T) {
	sp := kb.NewSpace()
	triples := []kb.Triple{sp.Intern("e", "p", "v")}
	table := fact.Build("src", sp, triples, nil)
	if table.TotalNew != 1 {
		t.Errorf("with nil KB everything is new; got %d", table.TotalNew)
	}
}

func TestMerge(t *testing.T) {
	sp := kb.NewSpace()
	existing := kb.New(sp)
	existing.AddStrings("shared", "p", "v")

	t1 := fact.Build("src/a", sp, []kb.Triple{
		sp.Intern("shared", "p", "v"),
		sp.Intern("shared", "q", "w"),
		sp.Intern("only-a", "p", "v"),
	}, existing)
	t2 := fact.Build("src/b", sp, []kb.Triple{
		sp.Intern("shared", "p", "v"), // same fact appears in both children
		sp.Intern("only-b", "r", "x"),
	}, existing)

	m := fact.Merge("src", sp, []*fact.Table{t1, t2})
	if m.NumEntities() != 3 {
		t.Fatalf("entities = %d, want 3", m.NumEntities())
	}
	if m.TotalFacts != 4 {
		t.Errorf("facts = %d, want 4 (shared fact deduplicated)", m.TotalFacts)
	}
	if m.TotalNew != 3 {
		t.Errorf("new = %d, want 3", m.TotalNew)
	}
	if m.Source != "src" {
		t.Errorf("source = %q", m.Source)
	}
}

// TestMergeEquivalentToFlatBuild property: merging child tables equals
// building one table from the concatenated triples.
func TestMergeEquivalentToFlatBuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := kb.NewSpace()
		existing := kb.New(sp)
		var all []kb.Triple
		var tables []*fact.Table
		for c := 0; c < 3; c++ {
			var ts []kb.Triple
			for i := 0; i < 30; i++ {
				tr := sp.Intern(
					fmt.Sprintf("s%d", rng.Intn(12)),
					fmt.Sprintf("p%d", rng.Intn(4)),
					fmt.Sprintf("o%d", rng.Intn(10)))
				if rng.Float64() < 0.3 {
					existing.Add(tr)
				}
				ts = append(ts, tr)
				all = append(all, tr)
			}
			tables = append(tables, fact.Build(fmt.Sprintf("src/c%d", c), sp, ts, existing))
		}
		// Rebuild the children against the final KB so newness masks
		// agree, then merge.
		for c := range tables {
			tables[c] = fact.Build(tables[c].Source, sp, trianglesOf(tables[c]), existing)
		}
		merged := fact.Merge("src", sp, tables)
		flat := fact.Build("src", sp, all, existing)
		if merged.TotalFacts != flat.TotalFacts || merged.TotalNew != flat.TotalNew ||
			merged.NumEntities() != flat.NumEntities() {
			return false
		}
		for i := range flat.Entities {
			a, b := merged.Entities[i], flat.Entities[i]
			if a.Subject != b.Subject || a.Facts() != b.Facts() || a.NewCount != b.NewCount {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// trianglesOf reconstructs a table's triples.
func trianglesOf(t *fact.Table) []kb.Triple {
	var out []kb.Triple
	for i := range t.Entities {
		e := &t.Entities[i]
		for _, p := range e.Props {
			out = append(out, kb.Triple{S: e.Subject, P: p.Pred(), O: p.Value()})
		}
	}
	return out
}

func TestCorpusConfidenceFilter(t *testing.T) {
	c := fact.NewCorpus(nil)
	c.Add(fact.Fact{Subject: "a", Predicate: "p", Object: "x", Confidence: 0.9, URL: "u1"})
	c.Add(fact.Fact{Subject: "b", Predicate: "p", Object: "y", Confidence: 0.7, URL: "u1"})
	c.Add(fact.Fact{Subject: "c", Predicate: "p", Object: "z", Confidence: 0.71, URL: "u2"})
	kept := c.FilterConfidence(0.7)
	if len(kept.Facts) != 2 {
		t.Errorf("kept %d facts, want 2 (strictly above threshold)", len(kept.Facts))
	}
	if c.NumURLs() != 2 {
		t.Errorf("URLs = %d, want 2", c.NumURLs())
	}
}

func TestGroupBySource(t *testing.T) {
	c := fact.NewCorpus(nil)
	c.Add(fact.Fact{Subject: "a", Predicate: "p", Object: "x", Confidence: 1, URL: "u1"})
	c.Add(fact.Fact{Subject: "b", Predicate: "p", Object: "y", Confidence: 1, URL: "u1"})
	c.Add(fact.Fact{Subject: "c", Predicate: "p", Object: "z", Confidence: 1, URL: "u2"})
	groups := fact.GroupBySource(c)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	u1 := c.URLs.Lookup("u1")
	if len(groups[u1]) != 2 {
		t.Errorf("u1 group = %d, want 2", len(groups[u1]))
	}
}
