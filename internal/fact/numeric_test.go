package fact_test

import (
	"fmt"
	"strings"
	"testing"

	"midas/internal/fact"
)

func TestBucketNumericRewrites(t *testing.T) {
	c := fact.NewCorpus(nil)
	for i, year := range []string{"1957", "1959", "1971", "1974"} {
		c.Add(fact.Fact{Subject: fmt.Sprintf("e%d", i), Predicate: "started", Object: year, Confidence: 1, URL: "u"})
	}
	c.Add(fact.Fact{Subject: "e0", Predicate: "name", Object: "Atlas", Confidence: 1, URL: "u"})

	out := fact.BucketNumeric(c, 10, 3)
	if len(out.Facts) != len(c.Facts) {
		t.Fatalf("fact count changed: %d vs %d", len(out.Facts), len(c.Facts))
	}
	labels := make(map[string]int)
	for _, e := range out.Facts {
		p := out.Space.Predicates.String(e.Triple.P)
		o := out.Space.Objects.String(e.Triple.O)
		if p == "started" {
			labels[o]++
		}
		if p == "name" && o != "Atlas" {
			t.Errorf("non-numeric predicate rewritten: %q", o)
		}
	}
	if labels["[1950,1960)"] != 2 || labels["[1970,1980)"] != 2 {
		t.Errorf("bucket labels = %v, want two facts each in [1950,1960) and [1970,1980)", labels)
	}
}

func TestBucketNumericMinCount(t *testing.T) {
	c := fact.NewCorpus(nil)
	c.Add(fact.Fact{Subject: "a", Predicate: "rare", Object: "7", Confidence: 1, URL: "u"})
	out := fact.BucketNumeric(c, 10, 5)
	if got := out.Space.Objects.String(out.Facts[0].Triple.O); got != "7" {
		t.Errorf("below-threshold predicate rewritten to %q", got)
	}
}

func TestBucketNumericMixedPredicate(t *testing.T) {
	// A predicate with < 80% numeric objects stays untouched.
	c := fact.NewCorpus(nil)
	for i := 0; i < 5; i++ {
		c.Add(fact.Fact{Subject: fmt.Sprintf("n%d", i), Predicate: "mixed", Object: fmt.Sprintf("%d", i), Confidence: 1, URL: "u"})
	}
	for i := 0; i < 5; i++ {
		c.Add(fact.Fact{Subject: fmt.Sprintf("t%d", i), Predicate: "mixed", Object: fmt.Sprintf("text%d", i), Confidence: 1, URL: "u"})
	}
	out := fact.BucketNumeric(c, 10, 3)
	for _, e := range out.Facts {
		if strings.HasPrefix(out.Space.Objects.String(e.Triple.O), "[") {
			t.Fatal("50%-numeric predicate should not be bucketed")
		}
	}
	// At 100% numeric it qualifies.
	c2 := fact.NewCorpus(nil)
	for i := 0; i < 5; i++ {
		c2.Add(fact.Fact{Subject: fmt.Sprintf("n%d", i), Predicate: "num", Object: fmt.Sprintf("%d", i*3), Confidence: 1, URL: "u"})
	}
	out2 := fact.BucketNumeric(c2, 10, 3)
	bucketed := 0
	for _, e := range out2.Facts {
		if strings.HasPrefix(out2.Space.Objects.String(e.Triple.O), "[") {
			bucketed++
		}
	}
	if bucketed != 5 {
		t.Errorf("bucketed = %d, want 5", bucketed)
	}
}

func TestBucketNumericNegativeValues(t *testing.T) {
	c := fact.NewCorpus(nil)
	for i, v := range []string{"-5", "-14", "-15", "4"} {
		c.Add(fact.Fact{Subject: fmt.Sprintf("e%d", i), Predicate: "temp", Object: v, Confidence: 1, URL: "u"})
	}
	out := fact.BucketNumeric(c, 10, 3)
	want := map[string]string{"-5": "[-10,0)", "-14": "[-20,-10)", "-15": "[-20,-10)", "4": "[0,10)"}
	for i, e := range out.Facts {
		orig := c.Space.Objects.String(c.Facts[i].Triple.O)
		if got := out.Space.Objects.String(e.Triple.O); got != want[orig] {
			t.Errorf("bucket(%s) = %q, want %q", orig, got, want[orig])
		}
	}
}

func TestBucketNumericDisabled(t *testing.T) {
	c := fact.NewCorpus(nil)
	c.Add(fact.Fact{Subject: "a", Predicate: "p", Object: "1", Confidence: 1, URL: "u"})
	if out := fact.BucketNumeric(c, 0, 1); out != c {
		t.Error("width 0 must return the corpus unchanged")
	}
}
