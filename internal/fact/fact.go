// Package fact models extracted facts and per-source fact tables.
//
// An extracted fact is an RDF triple (subject, predicate, object) with an
// extraction confidence and the URL of the web source it came from. The
// paper (Definition 3) organizes the facts of one web source W into a
// fact table F_W with one row per entity (subject) and one column per
// distinct predicate; cells hold value sets. Because each fact maps to
// exactly one (predicate, value) cell entry, a row is equivalently the
// set of the entity's properties (Definition 4), which is the
// representation used here: Entity.Props lists the (pred, value) pairs,
// one per fact, deduplicated, sorted; a parallel newness mask records
// which of those facts are absent from the existing KB.
package fact

import (
	"fmt"
	"sort"
	"time"

	"midas/internal/dict"
	"midas/internal/kb"
	"midas/internal/obs"
)

// Property is a (predicate, value) pair from Definition 4, packed into a
// single comparable word: the predicate ID in the high 32 bits and the
// object (value) ID in the low 32 bits. Packed properties sort by
// predicate first, then value, which the hierarchy code relies on.
type Property uint64

// Prop packs a predicate and value ID into a Property.
func Prop(pred, value dict.ID) Property {
	return Property(uint64(uint32(pred))<<32 | uint64(uint32(value)))
}

// Pred returns the predicate ID of the property.
func (p Property) Pred() dict.ID { return dict.ID(p >> 32) }

// Value returns the value (object) ID of the property.
func (p Property) Value() dict.ID { return dict.ID(uint32(p)) }

// Format renders the property as "pred = value" using the space's
// dictionaries.
func (p Property) Format(space *kb.Space) string {
	return fmt.Sprintf("%s = %s", space.Predicates.String(p.Pred()), space.Objects.String(p.Value()))
}

// Fact is a single extracted fact in string form, as emitted by an
// extraction pipeline.
type Fact struct {
	Subject    string
	Predicate  string
	Object     string
	Confidence float64
	URL        string // web page the fact was extracted from
}

// Extracted is the interned form of a Fact. Confidence is kept at float32
// precision: extraction systems report 2-3 significant digits.
type Extracted struct {
	Triple kb.Triple
	URL    dict.ID
	Conf   float32
}

// Corpus is an interned collection of extracted facts from many web
// sources — the output of an automated extraction pipeline that MIDAS
// consumes (e.g., the KnowledgeVault, ReVerb, or NELL datasets).
type Corpus struct {
	Space *kb.Space
	URLs  *dict.Dict
	Facts []Extracted
}

// NewCorpus returns an empty corpus over the given space (a fresh one if
// nil).
func NewCorpus(space *kb.Space) *Corpus {
	if space == nil {
		space = kb.NewSpace()
	}
	return &Corpus{Space: space, URLs: dict.New(1 << 10)}
}

// Add interns and appends a fact.
func (c *Corpus) Add(f Fact) {
	c.Facts = append(c.Facts, Extracted{
		Triple: c.Space.Intern(f.Subject, f.Predicate, f.Object),
		URL:    c.URLs.Put(f.URL),
		Conf:   float32(f.Confidence),
	})
}

// AddTriple appends an already interned fact.
func (c *Corpus) AddTriple(t kb.Triple, url dict.ID, conf float32) {
	c.Facts = append(c.Facts, Extracted{Triple: t, URL: url, Conf: conf})
}

// FilterConfidence returns a corpus view containing only facts with
// confidence strictly above min — the paper keeps facts labeled with
// confidence above 0.7 (KnowledgeVault) or 0.75 (ReVerb, NELL). The
// returned corpus shares the space and URL dictionary.
func (c *Corpus) FilterConfidence(min float64) *Corpus {
	out := &Corpus{Space: c.Space, URLs: c.URLs}
	for _, e := range c.Facts {
		if float64(e.Conf) > min {
			out.Facts = append(out.Facts, e)
		}
	}
	return out
}

// NumURLs returns the number of distinct page URLs in the corpus
// dictionary.
func (c *Corpus) NumURLs() int { return c.URLs.Len() }

// Entity is one row of a fact table: a subject together with its
// deduplicated properties. Props and New are parallel; New[i] reports
// whether the fact (Subject, Props[i].Pred, Props[i].Value) is absent
// from the existing KB. len(Props) is the entity's fact count.
type Entity struct {
	Subject  dict.ID
	Props    []Property
	New      []bool
	NewCount int
}

// Facts returns the entity's fact count |{(s,p,o)}|.
func (e *Entity) Facts() int { return len(e.Props) }

// HasProp reports whether the entity has property p (binary search).
func (e *Entity) HasProp(p Property) bool {
	i := sort.Search(len(e.Props), func(i int) bool { return e.Props[i] >= p })
	return i < len(e.Props) && e.Props[i] == p
}

// Table is the fact table F_W of a single web source W (Definition 3),
// annotated with newness against an existing KB.
type Table struct {
	// Source is the web source URL this table describes. It may be a
	// page, sub-domain, or domain depending on the granularity the
	// framework is processing.
	Source string
	Space  *kb.Space
	// Entities holds one row per distinct subject, sorted by subject ID.
	Entities []Entity
	// TotalFacts is |T_W|: the number of deduplicated facts.
	TotalFacts int
	// TotalNew is the number of facts absent from the KB.
	TotalNew int
}

// NumEntities returns the number of rows.
func (t *Table) NumEntities() int { return len(t.Entities) }

// NumPredicates returns the number of distinct predicates |P| in the
// table.
func (t *Table) NumPredicates() int {
	seen := make(map[dict.ID]struct{})
	for i := range t.Entities {
		for _, p := range t.Entities[i].Props {
			seen[p.Pred()] = struct{}{}
		}
	}
	return len(seen)
}

// Properties returns the distinct property set C_W of the table, sorted.
func (t *Table) Properties() []Property {
	seen := make(map[Property]struct{})
	for i := range t.Entities {
		for _, p := range t.Entities[i].Props {
			seen[p] = struct{}{}
		}
	}
	out := make([]Property, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Build constructs the fact table for one web source from interned
// triples, testing each fact against the existing KB. Duplicate (s,p,o)
// triples collapse to one fact. existing may be nil for an empty KB.
func Build(source string, space *kb.Space, triples []kb.Triple, existing *kb.KB) *Table {
	var m kb.Membership
	if existing != nil {
		m = existing
	}
	return BuildWith(source, space, triples, m)
}

// BuildWith is Build with any Membership view; the framework passes a
// lock-free kb.Frozen so concurrent workers do not contend on the KB's
// read lock. existing must be a nil interface for an empty KB.
func BuildWith(source string, space *kb.Space, triples []kb.Triple, existing kb.Membership) *Table {
	return BuildObs(source, space, triples, existing, nil)
}

// BuildObs is BuildWith reporting table-construction metrics to reg
// (nil falls back to the process-wide obs.Default()).
func BuildObs(source string, space *kb.Space, triples []kb.Triple, existing kb.Membership, reg *obs.Registry) *Table {
	start := time.Now()
	t := buildWith(source, space, triples, existing)
	recordTable(reg, t, time.Since(start))
	return t
}

func buildWith(source string, space *kb.Space, triples []kb.Triple, existing kb.Membership) *Table {
	bySubject := make(map[dict.ID]map[Property]struct{})
	for _, tr := range triples {
		set, ok := bySubject[tr.S]
		if !ok {
			set = make(map[Property]struct{}, 4)
			bySubject[tr.S] = set
		}
		set[Prop(tr.P, tr.O)] = struct{}{}
	}
	t := &Table{Source: source, Space: space, Entities: make([]Entity, 0, len(bySubject))}
	subjects := make([]dict.ID, 0, len(bySubject))
	for s := range bySubject {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })
	for _, s := range subjects {
		set := bySubject[s]
		props := make([]Property, 0, len(set))
		for p := range set {
			props = append(props, p)
		}
		sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
		e := Entity{Subject: s, Props: props, New: make([]bool, len(props))}
		for i, p := range props {
			isNew := existing == nil || !existing.Contains(kb.Triple{S: s, P: p.Pred(), O: p.Value()})
			e.New[i] = isNew
			if isNew {
				e.NewCount++
			}
		}
		t.TotalFacts += len(props)
		t.TotalNew += e.NewCount
		t.Entities = append(t.Entities, e)
	}
	return t
}

// Merge combines child fact tables into the table of their common parent
// web source. Entities appearing in several children are unioned
// (properties deduplicated, newness recomputed from the child masks:
// a fact is new iff every child that carries it marks it new — they all
// consult the same KB, so masks agree; the union keeps the first seen).
func Merge(source string, space *kb.Space, children []*Table) *Table {
	return MergeObs(source, space, children, nil)
}

// MergeObs is Merge reporting table-construction metrics to reg (nil
// falls back to the process-wide obs.Default()).
func MergeObs(source string, space *kb.Space, children []*Table, reg *obs.Registry) *Table {
	start := time.Now()
	t := merge(source, space, children)
	recordTable(reg, t, time.Since(start))
	reg.OrDefault().Counter("fact/tables_merged").Inc()
	return t
}

// recordTable publishes one table construction to the registry.
func recordTable(reg *obs.Registry, t *Table, d time.Duration) {
	reg = reg.OrDefault()
	reg.Timer("fact/build_table").Observe(d)
	reg.Counter("fact/tables_built").Inc()
	reg.Counter("fact/table_entities").Add(int64(len(t.Entities)))
	reg.Counter("fact/table_facts").Add(int64(t.TotalFacts))
	reg.Counter("fact/table_new_facts").Add(int64(t.TotalNew))
}

func merge(source string, space *kb.Space, children []*Table) *Table {
	type acc struct {
		props map[Property]bool // property -> isNew
	}
	bySubject := make(map[dict.ID]*acc)
	for _, c := range children {
		for i := range c.Entities {
			e := &c.Entities[i]
			a, ok := bySubject[e.Subject]
			if !ok {
				a = &acc{props: make(map[Property]bool, len(e.Props))}
				bySubject[e.Subject] = a
			}
			for j, p := range e.Props {
				if _, seen := a.props[p]; !seen {
					a.props[p] = e.New[j]
				}
			}
		}
	}
	t := &Table{Source: source, Space: space, Entities: make([]Entity, 0, len(bySubject))}
	subjects := make([]dict.ID, 0, len(bySubject))
	for s := range bySubject {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })
	for _, s := range subjects {
		a := bySubject[s]
		props := make([]Property, 0, len(a.props))
		for p := range a.props {
			props = append(props, p)
		}
		sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
		e := Entity{Subject: s, Props: props, New: make([]bool, len(props))}
		for i, p := range props {
			e.New[i] = a.props[p]
			if e.New[i] {
				e.NewCount++
			}
		}
		t.TotalFacts += len(props)
		t.TotalNew += e.NewCount
		t.Entities = append(t.Entities, e)
	}
	return t
}

// GroupBySource partitions a corpus into per-URL triple lists. The keys
// are URL dictionary IDs; callers resolve them via corpus.URLs.
func GroupBySource(c *Corpus) map[dict.ID][]kb.Triple {
	out := make(map[dict.ID][]kb.Triple)
	for _, e := range c.Facts {
		out[e.URL] = append(out[e.URL], e.Triple)
	}
	return out
}

// tripleOf builds a kb.Triple from position IDs (helper for the binary
// decoder).
func tripleOf(s, p, o dict.ID) kb.Triple { return kb.Triple{S: s, P: p, O: o} }
