// Package fact models extracted facts and per-source fact tables.
//
// An extracted fact is an RDF triple (subject, predicate, object) with an
// extraction confidence and the URL of the web source it came from. The
// paper (Definition 3) organizes the facts of one web source W into a
// fact table F_W with one row per entity (subject) and one column per
// distinct predicate; cells hold value sets. Because each fact maps to
// exactly one (predicate, value) cell entry, a row is equivalently the
// set of the entity's properties (Definition 4), which is the
// representation used here: Entity.Props lists the (pred, value) pairs,
// one per fact, deduplicated, sorted; a parallel newness mask records
// which of those facts are absent from the existing KB.
package fact

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"time"

	"midas/internal/dict"
	"midas/internal/idset"
	"midas/internal/kb"
	"midas/internal/obs"
	"midas/internal/source"
)

// Property is a (predicate, value) pair from Definition 4, packed into a
// single comparable word: the predicate ID in the high 32 bits and the
// object (value) ID in the low 32 bits. Packed properties sort by
// predicate first, then value, which the hierarchy code relies on.
type Property uint64

// Prop packs a predicate and value ID into a Property.
func Prop(pred, value dict.ID) Property {
	return Property(uint64(uint32(pred))<<32 | uint64(uint32(value)))
}

// Pred returns the predicate ID of the property.
func (p Property) Pred() dict.ID { return dict.ID(p >> 32) }

// Value returns the value (object) ID of the property.
func (p Property) Value() dict.ID { return dict.ID(uint32(p)) }

// Format renders the property as "pred = value" using the space's
// dictionaries.
func (p Property) Format(space *kb.Space) string {
	return fmt.Sprintf("%s = %s", space.Predicates.String(p.Pred()), space.Objects.String(p.Value()))
}

// Fact is a single extracted fact in string form, as emitted by an
// extraction pipeline.
type Fact struct {
	Subject    string
	Predicate  string
	Object     string
	Confidence float64
	URL        string // web page the fact was extracted from
}

// Extracted is the interned form of a Fact. Confidence is kept at float32
// precision: extraction systems report 2-3 significant digits.
type Extracted struct {
	Triple kb.Triple
	URL    dict.ID
	Conf   float32
}

// Corpus is an interned collection of extracted facts from many web
// sources — the output of an automated extraction pipeline that MIDAS
// consumes (e.g., the KnowledgeVault, ReVerb, or NELL datasets).
type Corpus struct {
	Space *kb.Space
	URLs  *dict.Dict
	Facts []Extracted
}

// NewCorpus returns an empty corpus over the given space (a fresh one if
// nil).
func NewCorpus(space *kb.Space) *Corpus {
	if space == nil {
		space = kb.NewSpace()
	}
	return &Corpus{Space: space, URLs: dict.New(1 << 10)}
}

// Add interns and appends a fact.
func (c *Corpus) Add(f Fact) {
	c.Facts = append(c.Facts, Extracted{
		Triple: c.Space.Intern(f.Subject, f.Predicate, f.Object),
		URL:    c.URLs.Put(f.URL),
		Conf:   float32(f.Confidence),
	})
}

// AddTriple appends an already interned fact.
func (c *Corpus) AddTriple(t kb.Triple, url dict.ID, conf float32) {
	c.Facts = append(c.Facts, Extracted{Triple: t, URL: url, Conf: conf})
}

// FilterConfidence returns a corpus view containing only facts with
// confidence strictly above min — the paper keeps facts labeled with
// confidence above 0.7 (KnowledgeVault) or 0.75 (ReVerb, NELL). The
// returned corpus shares the space and URL dictionary.
func (c *Corpus) FilterConfidence(min float64) *Corpus {
	out := &Corpus{Space: c.Space, URLs: c.URLs}
	for _, e := range c.Facts {
		if float64(e.Conf) > min {
			out.Facts = append(out.Facts, e)
		}
	}
	return out
}

// NumURLs returns the number of distinct page URLs in the corpus
// dictionary.
func (c *Corpus) NumURLs() int { return c.URLs.Len() }

// PropSetID identifies an interned property set within one Table's
// PropSets interner: two rows (of the same table) have equal property
// sets iff their PropSet IDs are equal.
type PropSetID = idset.SetID

// PropInterner deduplicates sorted property sets into a shared arena,
// assigning dense PropSetIDs. Hierarchy builders keep their own
// interner (node property sets include subsets no row carries); a
// Table's interner covers exactly its rows.
type PropInterner = idset.Interner[Property]

// NewPropInterner returns an empty property-set interner.
func NewPropInterner() *PropInterner { return idset.NewInterner[Property]() }

// Entity is one row of a fact table: a subject together with its
// deduplicated properties. Props and New are parallel; New[i] reports
// whether the fact (Subject, Props[i].Pred, Props[i].Value) is absent
// from the existing KB. len(Props) is the entity's fact count.
//
// Props is a view into the table's interned property-set arena
// (identical rows share storage) and PropSet is its dense ID; New is a
// sub-slice of a per-table newness arena. Neither may be mutated.
type Entity struct {
	Subject  dict.ID
	PropSet  PropSetID
	Props    []Property
	New      []bool
	NewCount int
}

// Facts returns the entity's fact count |{(s,p,o)}|.
func (e *Entity) Facts() int { return len(e.Props) }

// HasProp reports whether the entity has property p (binary search).
func (e *Entity) HasProp(p Property) bool {
	i := sort.Search(len(e.Props), func(i int) bool { return e.Props[i] >= p })
	return i < len(e.Props) && e.Props[i] == p
}

// Table is the fact table F_W of a single web source W (Definition 3),
// annotated with newness against an existing KB.
type Table struct {
	// Source is the web source URL this table describes. It may be a
	// page, sub-domain, or domain depending on the granularity the
	// framework is processing.
	Source string
	Space  *kb.Space
	// Entities holds one row per distinct subject, sorted by subject ID.
	Entities []Entity
	// PropSets interns the distinct per-row property sets; row Props
	// slices are views into its arena.
	PropSets *PropInterner
	// TotalFacts is |T_W|: the number of deduplicated facts.
	TotalFacts int
	// TotalNew is the number of facts absent from the KB.
	TotalNew int
	// Fingerprint is a 64-bit FNV-1a hash over the table's full content
	// — every (subject, property) row cell together with its newness bit
	// — so two tables with equal fingerprints are interchangeable for
	// detection and consolidation. Incremental runs key cached
	// per-source results by it.
	Fingerprint uint64
}

// NumEntities returns the number of rows.
func (t *Table) NumEntities() int { return len(t.Entities) }

// NumPredicates returns the number of distinct predicates |P| in the
// table.
func (t *Table) NumPredicates() int {
	seen := make(map[dict.ID]struct{})
	for i := range t.Entities {
		for _, p := range t.Entities[i].Props {
			seen[p.Pred()] = struct{}{}
		}
	}
	return len(seen)
}

// Properties returns the distinct property set C_W of the table, sorted.
func (t *Table) Properties() []Property {
	seen := make(map[Property]struct{})
	for i := range t.Entities {
		for _, p := range t.Entities[i].Props {
			seen[p] = struct{}{}
		}
	}
	out := make([]Property, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// Build constructs the fact table for one web source from interned
// triples, testing each fact against the existing KB. Duplicate (s,p,o)
// triples collapse to one fact. existing may be nil for an empty KB.
func Build(source string, space *kb.Space, triples []kb.Triple, existing *kb.KB) *Table {
	var m kb.Membership
	if existing != nil {
		m = existing
	}
	return BuildWith(source, space, triples, m)
}

// BuildWith is Build with any Membership view; the framework passes a
// lock-free kb.Frozen so concurrent workers do not contend on the KB's
// read lock. existing must be a nil interface for an empty KB.
func BuildWith(source string, space *kb.Space, triples []kb.Triple, existing kb.Membership) *Table {
	return BuildObs(source, space, triples, existing, nil)
}

// BuildObs is BuildWith reporting table-construction metrics to reg
// (nil falls back to the process-wide obs.Default()).
func BuildObs(source string, space *kb.Space, triples []kb.Triple, existing kb.Membership, reg *obs.Registry) *Table {
	start := time.Now()
	t := buildWith(source, space, triples, existing)
	recordTable(reg, t, time.Since(start))
	return t
}

func buildWith(source string, space *kb.Space, triples []kb.Triple, existing kb.Membership) *Table {
	// Columnar build: flatten to (subject, property) pairs, sort, dedup,
	// then walk per-subject runs. No per-subject maps are allocated; each
	// run's property set is interned so identical rows share one arena
	// view.
	type sp struct {
		s dict.ID
		p Property
	}
	pairs := make([]sp, len(triples))
	for i, tr := range triples {
		pairs[i] = sp{s: tr.S, p: Prop(tr.P, tr.O)}
	}
	slices.SortFunc(pairs, func(a, b sp) int {
		if a.s != b.s {
			return cmp.Compare(a.s, b.s)
		}
		return cmp.Compare(a.p, b.p)
	})
	kept := pairs[:0]
	for _, pr := range pairs {
		if len(kept) == 0 || kept[len(kept)-1] != pr {
			kept = append(kept, pr)
		}
	}
	pairs = kept

	t := &Table{Source: source, Space: space, PropSets: NewPropInterner()}
	// Exact capacity: appends never reallocate, so earlier New views
	// stay valid.
	newArena := make([]bool, 0, len(pairs))
	var scratch []Property
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].s == pairs[i].s {
			j++
		}
		s := pairs[i].s
		scratch = scratch[:0]
		for k := i; k < j; k++ {
			scratch = append(scratch, pairs[k].p)
		}
		id := t.PropSets.Intern(scratch)
		props := t.PropSets.Get(id)
		start := len(newArena)
		e := Entity{Subject: s, PropSet: id, Props: props}
		for _, p := range props {
			isNew := existing == nil || !existing.Contains(kb.Triple{S: s, P: p.Pred(), O: p.Value()})
			newArena = append(newArena, isNew)
			if isNew {
				e.NewCount++
			}
		}
		e.New = newArena[start:len(newArena):len(newArena)]
		t.TotalFacts += len(props)
		t.TotalNew += e.NewCount
		t.Entities = append(t.Entities, e)
		i = j
	}
	t.computeFingerprint()
	return t
}

// computeFingerprint seals the table's content hash. Call once
// Entities and the newness arena are final; any change to either must
// recompute it.
func (t *Table) computeFingerprint() {
	h := idset.FingerprintSeed
	var w [2]uint64
	for i := range t.Entities {
		e := &t.Entities[i]
		for j, p := range e.Props {
			w[0] = uint64(uint32(e.Subject)) << 1
			if e.New[j] {
				w[0] |= 1
			}
			w[1] = uint64(p)
			h = idset.AppendFingerprint64(h, w[:])
		}
	}
	t.Fingerprint = h
}

// ContainsFact reports whether the triple appears as a cell of the
// table (binary search on the subject-sorted rows, then on the row's
// sorted properties). Incremental runs use it to decide whether a batch
// of newly absorbed KB triples can flip any of the table's newness
// bits.
func (t *Table) ContainsFact(tr kb.Triple) bool {
	i := sort.Search(len(t.Entities), func(i int) bool { return t.Entities[i].Subject >= tr.S })
	if i >= len(t.Entities) || t.Entities[i].Subject != tr.S {
		return false
	}
	return t.Entities[i].HasProp(Prop(tr.P, tr.O))
}

// Reannotate rebuilds the table's newness annotation against a grown
// KB, sharing the immutable row structure (entities, interned property
// sets) with t and allocating only a fresh newness arena. The returned
// table carries recomputed TotalNew and Fingerprint; t is not mutated.
func Reannotate(t *Table, existing kb.Membership) *Table {
	nt := &Table{
		Source:     t.Source,
		Space:      t.Space,
		Entities:   append([]Entity(nil), t.Entities...),
		PropSets:   t.PropSets,
		TotalFacts: t.TotalFacts,
	}
	newArena := make([]bool, 0, t.TotalFacts)
	for i := range nt.Entities {
		e := &nt.Entities[i]
		start := len(newArena)
		e.NewCount = 0
		for _, p := range e.Props {
			isNew := existing == nil || !existing.Contains(kb.Triple{S: e.Subject, P: p.Pred(), O: p.Value()})
			newArena = append(newArena, isNew)
			if isNew {
				e.NewCount++
			}
		}
		e.New = newArena[start:len(newArena):len(newArena)]
		nt.TotalNew += e.NewCount
	}
	nt.computeFingerprint()
	return nt
}

// LeafSource is one normalized web source's share of a corpus: its
// triples in corpus order and an FNV-1a fingerprint chained over them.
// The corpus is append-only, so a source whose facts did not change
// keeps its fingerprint across corpus growth — the cheap dirtiness
// signal incremental runs key on.
type LeafSource struct {
	Triples []kb.Triple
	FP      uint64
}

// LeafSources partitions a corpus by normalized source URL
// (source.Normalize), fingerprinting each source's triple sequence.
// Facts whose URL normalizes to "" are dropped, mirroring the
// framework's sharding.
func LeafSources(c *Corpus) map[string]*LeafSource {
	out := make(map[string]*LeafSource)
	srcOf := make(map[dict.ID]string)
	var w [2]uint64
	for _, e := range c.Facts {
		src, ok := srcOf[e.URL]
		if !ok {
			src = source.Normalize(c.URLs.String(e.URL))
			srcOf[e.URL] = src
		}
		if src == "" {
			continue
		}
		ls := out[src]
		if ls == nil {
			ls = &LeafSource{FP: idset.FingerprintSeed}
			out[src] = ls
		}
		ls.Triples = append(ls.Triples, e.Triple)
		w[0] = uint64(uint32(e.Triple.S))<<32 | uint64(uint32(e.Triple.P))
		w[1] = uint64(uint32(e.Triple.O))
		ls.FP = idset.AppendFingerprint64(ls.FP, w[:])
	}
	return out
}

// Merge combines child fact tables into the table of their common parent
// web source. Entities appearing in several children are unioned
// (properties deduplicated, newness recomputed from the child masks:
// a fact is new iff every child that carries it marks it new — they all
// consult the same KB, so masks agree; the union keeps the first seen).
func Merge(source string, space *kb.Space, children []*Table) *Table {
	return MergeObs(source, space, children, nil)
}

// MergeObs is Merge reporting table-construction metrics to reg (nil
// falls back to the process-wide obs.Default()).
func MergeObs(source string, space *kb.Space, children []*Table, reg *obs.Registry) *Table {
	start := time.Now()
	t := merge(source, space, children)
	recordTable(reg, t, time.Since(start))
	reg.OrDefault().Counter("fact/tables_merged").Inc()
	return t
}

// recordTable publishes one table construction to the registry.
func recordTable(reg *obs.Registry, t *Table, d time.Duration) {
	reg = reg.OrDefault()
	reg.Timer("fact/build_table").Observe(d)
	reg.Counter("fact/tables_built").Inc()
	reg.Counter("fact/table_entities").Add(int64(len(t.Entities)))
	reg.Counter("fact/table_facts").Add(int64(t.TotalFacts))
	reg.Counter("fact/table_new_facts").Add(int64(t.TotalNew))
}

func merge(source string, space *kb.Space, children []*Table) *Table {
	// Columnar merge, mirroring buildWith: flatten every child row to
	// (subject, property, isNew) tuples, stable-sort by (subject,
	// property), keep the first tuple of each (s, p) run (the "first
	// seen" of the doc comment), then assemble per-subject runs.
	type spn struct {
		s dict.ID
		p Property
		n bool
	}
	total := 0
	for _, c := range children {
		total += c.TotalFacts
	}
	tuples := make([]spn, 0, total)
	for _, c := range children {
		for i := range c.Entities {
			e := &c.Entities[i]
			for j, p := range e.Props {
				tuples = append(tuples, spn{s: e.Subject, p: p, n: e.New[j]})
			}
		}
	}
	slices.SortStableFunc(tuples, func(a, b spn) int {
		if a.s != b.s {
			return cmp.Compare(a.s, b.s)
		}
		return cmp.Compare(a.p, b.p)
	})
	kept := tuples[:0]
	for _, tu := range tuples {
		if len(kept) == 0 || kept[len(kept)-1].s != tu.s || kept[len(kept)-1].p != tu.p {
			kept = append(kept, tu)
		}
	}
	tuples = kept

	t := &Table{Source: source, Space: space, PropSets: NewPropInterner()}
	newArena := make([]bool, 0, len(tuples))
	var scratch []Property
	for i := 0; i < len(tuples); {
		j := i
		for j < len(tuples) && tuples[j].s == tuples[i].s {
			j++
		}
		scratch = scratch[:0]
		for k := i; k < j; k++ {
			scratch = append(scratch, tuples[k].p)
		}
		id := t.PropSets.Intern(scratch)
		props := t.PropSets.Get(id)
		start := len(newArena)
		e := Entity{Subject: tuples[i].s, PropSet: id, Props: props}
		for k := i; k < j; k++ {
			newArena = append(newArena, tuples[k].n)
			if tuples[k].n {
				e.NewCount++
			}
		}
		e.New = newArena[start:len(newArena):len(newArena)]
		t.TotalFacts += len(props)
		t.TotalNew += e.NewCount
		t.Entities = append(t.Entities, e)
		i = j
	}
	t.computeFingerprint()
	return t
}

// GroupBySource partitions a corpus into per-URL triple lists. The keys
// are URL dictionary IDs; callers resolve them via corpus.URLs.
func GroupBySource(c *Corpus) map[dict.ID][]kb.Triple {
	out := make(map[dict.ID][]kb.Triple)
	for _, e := range c.Facts {
		out[e.URL] = append(out[e.URL], e.Triple)
	}
	return out
}

// tripleOf builds a kb.Triple from position IDs (helper for the binary
// decoder).
func tripleOf(s, p, o dict.ID) kb.Triple { return kb.Triple{S: s, P: p, O: o} }
