// Package slice defines web source slices and the profit function that
// scores them.
//
// A web source slice (Definition 5) is a triplet (C, Π, Π*): a set of
// properties C, the entities Π of the source that carry every property in
// C, and the facts Π* associated with those entities. MIDAS reports only
// canonical slices (Definition 7): among slices selecting the same
// entities, the one with the maximal property set.
//
// The profit of a set of slices S against an existing KB E
// (Definition 9) is
//
//	f(S) = G(S) − C(S)
//	G(S) = |∪S \ E|
//	C(S) = C_crawl + C_de-dup + C_validate
//	C_crawl    = |S|·f_p + Σ_W f_c·|T_W|
//	C_de-dup   = f_d·|∪S|
//	C_validate = f_v·|∪S \ E|
//
// with the paper's default coefficients f_p=10, f_c=0.001, f_d=0.01,
// f_v=0.1 (the worked examples in the paper use f_p=1, available as
// ExampleCostModel). The f_c·|T_W| term is charged once per web source
// touched by the set; single-slice profits include their source's term,
// matching the numbers in the paper's Figure 5.
package slice

import (
	"sort"
	"strings"

	"midas/internal/dict"
	"midas/internal/fact"
	"midas/internal/idset"
	"midas/internal/kb"
)

// CostModel holds the coefficients of the profit function.
type CostModel struct {
	Fp float64 // per-slice training (wrapper induction) cost
	Fc float64 // per-fact crawling cost, charged on |T_W| once per source
	Fd float64 // per-fact de-duplication cost over the slice's facts
	Fv float64 // per-new-fact validation cost
}

// DefaultCostModel returns the paper's experimental coefficients.
func DefaultCostModel() CostModel { return CostModel{Fp: 10, Fc: 0.001, Fd: 0.01, Fv: 0.1} }

// ExampleCostModel returns the coefficients used in the paper's running
// examples (f_p = 1).
func ExampleCostModel() CostModel { return CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1} }

// SliceProfit computes f({S}) for a single slice with the given new and
// total fact counts, drawn from a source with sourceFacts = |T_W|.
func (m CostModel) SliceProfit(newFacts, totalFacts, sourceFacts int) float64 {
	return float64(newFacts)*(1-m.Fv) - m.Fp - m.Fd*float64(totalFacts) - m.Fc*float64(sourceFacts)
}

// SetProfit computes f(S) for a set of numSlices slices whose fact union
// has unionFacts facts of which unionNew are absent from the KB, drawn
// from sources whose fact-table sizes are perSourceTotals (one entry per
// distinct source touched).
func (m CostModel) SetProfit(numSlices, unionFacts, unionNew int, perSourceTotals []int) float64 {
	crawl := float64(numSlices) * m.Fp
	for _, t := range perSourceTotals {
		crawl += m.Fc * float64(t)
	}
	return float64(unionNew)*(1-m.Fv) - crawl - m.Fd*float64(unionFacts)
}

// Slice is a reported web source slice.
type Slice struct {
	// Source is the web source URL the slice selects from.
	Source string
	// Props is the canonical property set C, sorted.
	Props []fact.Property
	// Entities is Π as a sorted set of subject IDs.
	Entities idset.Set
	// Facts is |Π*|, NewFacts is |Π* \ E|.
	Facts    int
	NewFacts int
	// Profit is f({S}) under the cost model used during discovery,
	// including the slice's source crawl term.
	Profit float64
}

// Level returns the number of properties defining the slice.
func (s *Slice) Level() int { return len(s.Props) }

// Description renders the property set as a human-readable conjunction,
// e.g. "category = rocket_family AND sponsor = NASA". Slices with no
// properties describe the entire source.
func (s *Slice) Description(space *kb.Space) string {
	if len(s.Props) == 0 {
		return "entire source"
	}
	parts := make([]string, len(s.Props))
	for i, p := range s.Props {
		parts[i] = p.Format(space)
	}
	return strings.Join(parts, " AND ")
}

// HasEntity reports whether subject is in Π.
func (s *Slice) HasEntity(subject dict.ID) bool {
	return s.Entities.Contains(subject)
}

// EntityJaccard computes the Jaccard similarity of two slices' entity
// sets with allocation-free kernels — a cheap upper-level screen before
// the fact-level Jaccard of the evaluation rule.
func EntityJaccard(a, b *Slice) float64 {
	return idset.Jaccard(a.Entities, b.Entities)
}

// FactSet materializes Π* from the slice's entities and the fact table it
// was derived from, sorted by triple. Entities absent from the table are
// skipped (they contribute no facts at this granularity).
func (s *Slice) FactSet(t *fact.Table) []kb.Triple {
	var out []kb.Triple
	for i := range t.Entities {
		e := &t.Entities[i]
		if !s.HasEntity(e.Subject) {
			continue
		}
		for _, p := range e.Props {
			out = append(out, kb.Triple{S: e.Subject, P: p.Pred(), O: p.Value()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ByProfitDesc sorts slices by decreasing profit, breaking ties by
// source then property set for determinism.
func ByProfitDesc(slices []*Slice) {
	sort.SliceStable(slices, func(i, j int) bool {
		if slices[i].Profit != slices[j].Profit {
			return slices[i].Profit > slices[j].Profit
		}
		if slices[i].Source != slices[j].Source {
			return slices[i].Source < slices[j].Source
		}
		return lessProps(slices[i].Props, slices[j].Props)
	})
}

func lessProps(a, b []fact.Property) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Jaccard computes the Jaccard similarity of two sorted triple sets.
// Empty∪empty is defined as similarity 1.
func Jaccard(a, b []kb.Triple) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i].Less(b[j]):
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Equivalent reports whether two fact sets are the same slice under the
// paper's evaluation rule: Jaccard similarity above 0.95.
func Equivalent(a, b []kb.Triple) bool { return Jaccard(a, b) > 0.95 }

// UnionStats returns the union size and new-fact count of a set of fact
// sets, where newness is judged against the KB (nil means everything is
// new). Fact identity is global (s,p,o), so overlaps across sources
// collapse.
func UnionStats(sets [][]kb.Triple, existing kb.Membership) (unionFacts, unionNew int) {
	seen := make(map[kb.Triple]struct{})
	for _, set := range sets {
		for _, t := range set {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			unionFacts++
			if existing == nil || !existing.Contains(t) {
				unionNew++
			}
		}
	}
	return unionFacts, unionNew
}
