package slice_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"midas/internal/fact"
	"midas/internal/idset"
	"midas/internal/kb"
	"midas/internal/slice"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestSliceProfitPaperNumbers pins the profit function to the Figure 5
// walkthrough values (f_p = 1 cost model).
func TestSliceProfitPaperNumbers(t *testing.T) {
	m := slice.ExampleCostModel()
	// S2: 3 new of 3 facts, |T_W| = 13 → 1.657.
	if got := m.SliceProfit(3, 3, 13); !approx(got, 1.657) {
		t.Errorf("S2 profit = %v, want 1.657", got)
	}
	// S4: 0 new of 7 facts → −1.083.
	if got := m.SliceProfit(0, 7, 13); !approx(got, -1.083) {
		t.Errorf("S4 profit = %v, want -1.083", got)
	}
	// S5: 6 new of 6 facts → 4.327.
	if got := m.SliceProfit(6, 6, 13); !approx(got, 4.327) {
		t.Errorf("S5 profit = %v, want 4.327", got)
	}
	// S6: 6 new of 13 facts → 4.257.
	if got := m.SliceProfit(6, 13, 13); !approx(got, 4.257) {
		t.Errorf("S6 profit = %v, want 4.257", got)
	}
}

// TestSetProfitExample10 pins the set comparison of Example 10:
// {S5} beats {S2, S3} (one training cost instead of two) and {S6}
// (lower de-duplication cost).
func TestSetProfitExample10(t *testing.T) {
	m := slice.ExampleCostModel()
	s5 := m.SetProfit(1, 6, 6, []int{13})
	s2s3 := m.SetProfit(2, 6, 6, []int{13})
	s6 := m.SetProfit(1, 13, 6, []int{13})
	if !(s5 > s2s3 && s5 > s6) {
		t.Errorf("f({S5})=%v must beat f({S2,S3})=%v and f({S6})=%v", s5, s2s3, s6)
	}
	if !approx(s5-s2s3, 1) { // one saved f_p
		t.Errorf("training-cost delta = %v, want 1", s5-s2s3)
	}
}

// TestProfitClosedFormQuick property: SliceProfit matches the formula
// for arbitrary inputs, and adding facts never increases profit unless
// they are new.
func TestProfitClosedFormQuick(t *testing.T) {
	m := slice.DefaultCostModel()
	f := func(newFacts, extraFacts, sourceFacts uint16) bool {
		n, e, s := int(newFacts%1000), int(extraFacts%1000), int(sourceFacts%5000)
		total := n + e
		got := m.SliceProfit(n, total, s)
		want := float64(n)*0.9 - 10 - 0.01*float64(total) - 0.001*float64(s)
		if !approx(got, want) {
			return false
		}
		// Known facts only cost: more of them, lower profit.
		return m.SliceProfit(n, total+1, s) < got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mkTriples(spec ...[3]string) ([]kb.Triple, *kb.Space) {
	sp := kb.NewSpace()
	var out []kb.Triple
	for _, s := range spec {
		out = append(out, sp.Intern(s[0], s[1], s[2]))
	}
	return out, sp
}

func TestJaccard(t *testing.T) {
	a, sp := mkTriples([3]string{"a", "p", "1"}, [3]string{"b", "p", "2"}, [3]string{"c", "p", "3"})
	b := []kb.Triple{a[0], a[1], sp.Intern("d", "p", "4")}
	sortTriples(a)
	sortTriples(b)
	if got := slice.Jaccard(a, b); !approx(got, 0.5) {
		t.Errorf("Jaccard = %v, want 0.5 (2 shared of 4)", got)
	}
	if got := slice.Jaccard(a, a); got != 1 {
		t.Errorf("self Jaccard = %v", got)
	}
	if got := slice.Jaccard(nil, nil); got != 1 {
		t.Errorf("empty Jaccard = %v", got)
	}
	if got := slice.Jaccard(a, nil); got != 0 {
		t.Errorf("disjoint Jaccard = %v", got)
	}
	if !slice.Equivalent(a, a) || slice.Equivalent(a, b) {
		t.Error("Equivalent threshold wrong")
	}
}

func sortTriples(ts []kb.Triple) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Less(ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// TestJaccardProperties: symmetry and bounds on random sorted sets.
func TestJaccardProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := kb.NewSpace()
		mk := func() []kb.Triple {
			seen := make(map[kb.Triple]bool)
			var out []kb.Triple
			for i := 0; i < rng.Intn(30); i++ {
				tr := sp.Intern(fmt.Sprintf("s%d", rng.Intn(10)), "p", fmt.Sprintf("o%d", rng.Intn(10)))
				if !seen[tr] {
					seen[tr] = true
					out = append(out, tr)
				}
			}
			sortTriples(out)
			return out
		}
		a, b := mk(), mk()
		ab, ba := slice.Jaccard(a, b), slice.Jaccard(b, a)
		return ab == ba && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSliceDescriptionAndFactSet(t *testing.T) {
	sp := kb.NewSpace()
	existing := kb.New(sp)
	triples := []kb.Triple{
		sp.Intern("Atlas", "category", "rocket_family"),
		sp.Intern("Atlas", "sponsor", "NASA"),
		sp.Intern("Castor-4", "category", "rocket_family"),
		sp.Intern("Castor-4", "sponsor", "NASA"),
		sp.Intern("Mercury", "category", "space_program"),
	}
	table := fact.Build("src", sp, triples, existing)
	s := &slice.Slice{
		Source: "src",
		Props: []fact.Property{
			fact.Prop(sp.Predicates.Lookup("category"), sp.Objects.Lookup("rocket_family")),
		},
		Entities: idset.FromUnsorted([]int32{sp.Subjects.Lookup("Atlas"), sp.Subjects.Lookup("Castor-4")}),
	}
	if got := s.Description(sp); got != "category = rocket_family" {
		t.Errorf("description = %q", got)
	}
	fs := s.FactSet(table)
	if len(fs) != 4 {
		t.Errorf("fact set = %d, want 4", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Less(fs[i-1]) {
			t.Error("fact set unsorted")
		}
	}
	if !s.HasEntity(sp.Subjects.Lookup("Atlas")) || s.HasEntity(sp.Subjects.Lookup("Mercury")) {
		t.Error("HasEntity wrong")
	}
	empty := &slice.Slice{}
	if empty.Description(sp) != "entire source" {
		t.Errorf("empty description = %q", empty.Description(sp))
	}
}

func TestByProfitDesc(t *testing.T) {
	slices := []*slice.Slice{
		{Source: "b", Profit: 1},
		{Source: "a", Profit: 5},
		{Source: "a", Profit: 1},
	}
	slice.ByProfitDesc(slices)
	if slices[0].Profit != 5 {
		t.Error("not sorted by profit")
	}
	if slices[1].Source != "a" || slices[2].Source != "b" {
		t.Error("ties not broken by source")
	}
}

func TestUnionStats(t *testing.T) {
	ts, sp := mkTriples(
		[3]string{"a", "p", "1"},
		[3]string{"b", "p", "2"},
		[3]string{"c", "p", "3"},
	)
	existing := kb.New(sp)
	existing.Add(ts[0])
	sets := [][]kb.Triple{{ts[0], ts[1]}, {ts[1], ts[2]}}
	facts, fresh := slice.UnionStats(sets, existing)
	if facts != 3 || fresh != 2 {
		t.Errorf("union = %d/%d, want 3/2", facts, fresh)
	}
	facts, fresh = slice.UnionStats(sets, nil)
	if facts != 3 || fresh != 3 {
		t.Errorf("union vs nil KB = %d/%d, want 3/3", facts, fresh)
	}
}
