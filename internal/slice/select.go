package slice

import (
	"midas/internal/kb"
)

// SelectGreedy picks up to max slices (0 = no cap) from a candidate
// list, greedily maximizing the marginal set profit: at each step the
// slice whose addition most increases
//
//	f(S) = (1−f_v)·|∪S \ E| − |S|·f_p − f_d·|∪S|
//
// is added, until no candidate improves the total. Fact overlap between
// slices is accounted exactly through the union. The per-source crawl
// term is excluded: it depends on |T_W| totals the candidates alone do
// not carry, and it is constant for any fixed source set, so rankings
// within a source set are unaffected.
//
// It returns the selected indexes in selection order. Used to impose an
// extraction budget ("we can only afford to wrapper-induct k slices
// this quarter") on a discovery result.
func SelectGreedy(factSets [][]kb.Triple, existing *kb.KB, cost CostModel, max int) []int {
	if max <= 0 || max > len(factSets) {
		max = len(factSets)
	}
	type cand struct {
		idx   int
		facts []kb.Triple
	}
	cands := make([]cand, len(factSets))
	for i, fs := range factSets {
		cands[i] = cand{idx: i, facts: fs}
	}

	covered := make(map[kb.Triple]bool)
	var selected []int
	for len(selected) < max && len(cands) > 0 {
		bestGain := 0.0
		bestAt := -1
		for ci, c := range cands {
			dFacts, dNew := 0, 0
			for _, t := range c.facts {
				if covered[t] {
					continue
				}
				dFacts++
				if existing == nil || !existing.Contains(t) {
					dNew++
				}
			}
			gain := float64(dNew)*(1-cost.Fv) - cost.Fp - cost.Fd*float64(dFacts)
			if gain > bestGain {
				bestGain, bestAt = gain, ci
			}
		}
		if bestAt < 0 {
			break
		}
		chosen := cands[bestAt]
		selected = append(selected, chosen.idx)
		for _, t := range chosen.facts {
			covered[t] = true
		}
		cands = append(cands[:bestAt], cands[bestAt+1:]...)
	}
	return selected
}
