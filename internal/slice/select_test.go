package slice_test

import (
	"fmt"
	"testing"

	"midas/internal/kb"
	"midas/internal/slice"
)

func factSet(sp *kb.Space, prefix string, n int) []kb.Triple {
	out := make([]kb.Triple, n)
	for i := range out {
		out[i] = sp.Intern(fmt.Sprintf("%s-s%d", prefix, i), "p", fmt.Sprintf("%s-o%d", prefix, i))
	}
	return out
}

func TestSelectGreedyBudget(t *testing.T) {
	sp := kb.NewSpace()
	cost := slice.DefaultCostModel()
	sets := [][]kb.Triple{
		factSet(sp, "small", 20),
		factSet(sp, "big", 100),
		factSet(sp, "mid", 50),
	}
	got := slice.SelectGreedy(sets, nil, cost, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("selection = %v, want [1 2] (biggest first)", got)
	}
	all := slice.SelectGreedy(sets, nil, cost, 0)
	if len(all) != 3 {
		t.Errorf("uncapped selection = %v, want all 3", all)
	}
}

func TestSelectGreedyOverlapDiscount(t *testing.T) {
	sp := kb.NewSpace()
	cost := slice.DefaultCostModel()
	big := factSet(sp, "x", 100)
	subset := big[:90] // 90% contained in big
	other := factSet(sp, "y", 60)
	got := slice.SelectGreedy([][]kb.Triple{big, subset, other}, nil, cost, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("selection = %v, want [0 2]: the subset adds almost nothing", got)
	}
}

func TestSelectGreedyStopsWhenUnprofitable(t *testing.T) {
	sp := kb.NewSpace()
	cost := slice.DefaultCostModel()
	sets := [][]kb.Triple{
		factSet(sp, "good", 50),
		factSet(sp, "tiny", 3), // 3·0.9 < f_p = 10 → never worth it
	}
	got := slice.SelectGreedy(sets, nil, cost, 5)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("selection = %v, want only the profitable slice", got)
	}
}

func TestSelectGreedyRespectsKB(t *testing.T) {
	sp := kb.NewSpace()
	existing := kb.New(sp)
	cost := slice.DefaultCostModel()
	known := factSet(sp, "known", 80)
	for _, tr := range known {
		existing.Add(tr)
	}
	fresh := factSet(sp, "fresh", 40)
	got := slice.SelectGreedy([][]kb.Triple{known, fresh}, existing, cost, 2)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("selection = %v, want only the fresh slice", got)
	}
}

func TestSelectGreedyEmpty(t *testing.T) {
	if got := slice.SelectGreedy(nil, nil, slice.DefaultCostModel(), 3); len(got) != 0 {
		t.Errorf("selection on empty input = %v", got)
	}
}
