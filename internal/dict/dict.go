// Package dict provides string interning dictionaries.
//
// MIDAS processes millions of (subject, predicate, object) strings; every
// hot path in the system (knowledge-base membership, fact tables, slice
// lattices) works on dense int32 identifiers produced by a Dict. A Dict is
// append-only: once a string is assigned an ID the mapping never changes,
// so IDs may be stored freely in derived structures.
package dict

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ID is a dense identifier for an interned string. Valid IDs are
// non-negative; None marks "no value".
type ID = int32

// None is the zero-value "absent" ID. Dict never assigns it.
const None ID = -1

// Dict interns strings to dense int32 IDs, starting at 0.
// The zero value is ready to use. Dict is safe for concurrent use.
type Dict struct {
	mu   sync.RWMutex
	ids  map[string]ID
	strs []string
}

// New returns an empty dictionary with capacity for n strings.
func New(n int) *Dict {
	return &Dict{
		ids:  make(map[string]ID, n),
		strs: make([]string, 0, n),
	}
}

// Put interns s and returns its ID, assigning a fresh ID if s is new.
func (d *Dict) Put(s string) ID {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok {
		return id
	}
	if d.ids == nil {
		d.ids = make(map[string]ID)
	}
	id = ID(len(d.strs))
	d.ids[s] = id
	d.strs = append(d.strs, s)
	return id
}

// Lookup returns the ID for s, or None if s was never interned.
func (d *Dict) Lookup(s string) ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id, ok := d.ids[s]; ok {
		return id
	}
	return None
}

// String returns the string for id. It panics if id was never assigned,
// mirroring slice indexing semantics: holding an invalid ID is a bug.
func (d *Dict) String(id ID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.strs[id]
}

// Len reports the number of interned strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strs)
}

// Strings returns a copy of all interned strings in ID order.
func (d *Dict) Strings() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.strs))
	copy(out, d.strs)
	return out
}

// WriteTo serializes the dictionary as a line-oriented stream: one string
// per line in ID order, with backslash escaping for newlines and
// backslashes. It implements io.WriterTo.
func (d *Dict) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	for _, s := range d.strs {
		m, err := bw.WriteString(escape(s))
		n += int64(m)
		if err != nil {
			return n, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadFrom replaces the dictionary contents with a stream previously
// produced by WriteTo. It implements io.ReaderFrom.
func (d *Dict) ReadFrom(r io.Reader) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	d.strs = d.strs[:0]
	d.ids = make(map[string]ID)
	var n int64
	for sc.Scan() {
		line := sc.Text()
		n += int64(len(line)) + 1
		s, err := unescape(line)
		if err != nil {
			return n, fmt.Errorf("dict: line %d: %w", len(d.strs)+1, err)
		}
		if _, dup := d.ids[s]; dup {
			return n, fmt.Errorf("dict: duplicate string %q at line %d", s, len(d.strs)+1)
		}
		d.ids[s] = ID(len(d.strs))
		d.strs = append(d.strs, s)
	}
	return n, sc.Err()
}

var errBadEscape = errors.New("invalid escape sequence")

func escape(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' || s[i] == '\\' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s)+8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\n':
			out = append(out, '\\', 'n')
		case '\\':
			out = append(out, '\\', '\\')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func unescape(s string) (string, error) {
	i := 0
	for ; i < len(s); i++ {
		if s[i] == '\\' {
			break
		}
	}
	if i == len(s) {
		return s, nil
	}
	out := make([]byte, 0, len(s))
	out = append(out, s[:i]...)
	for ; i < len(s); i++ {
		if s[i] != '\\' {
			out = append(out, s[i])
			continue
		}
		i++
		if i == len(s) {
			return "", errBadEscape
		}
		switch s[i] {
		case 'n':
			out = append(out, '\n')
		case '\\':
			out = append(out, '\\')
		default:
			return "", errBadEscape
		}
	}
	return string(out), nil
}

// SortedIDs returns the IDs of the dictionary ordered by their string
// values; useful for deterministic reporting.
func (d *Dict) SortedIDs() []ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]ID, len(d.strs))
	for i := range ids {
		ids[i] = ID(i)
	}
	sort.Slice(ids, func(a, b int) bool { return d.strs[ids[a]] < d.strs[ids[b]] })
	return ids
}
