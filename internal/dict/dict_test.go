package dict_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"midas/internal/dict"
)

func TestPutLookupString(t *testing.T) {
	d := dict.New(4)
	a := d.Put("alpha")
	b := d.Put("beta")
	if a == b {
		t.Fatal("distinct strings share an ID")
	}
	if got := d.Put("alpha"); got != a {
		t.Errorf("re-Put = %d, want %d", got, a)
	}
	if got := d.Lookup("alpha"); got != a {
		t.Errorf("Lookup = %d, want %d", got, a)
	}
	if got := d.Lookup("missing"); got != dict.None {
		t.Errorf("Lookup(missing) = %d, want None", got)
	}
	if got := d.String(b); got != "beta" {
		t.Errorf("String(%d) = %q", b, got)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var d dict.Dict
	if id := d.Put("x"); id != 0 {
		t.Errorf("first ID = %d, want 0", id)
	}
}

func TestIDsAreDense(t *testing.T) {
	d := dict.New(0)
	for i := 0; i < 100; i++ {
		if id := d.Put(fmt.Sprintf("s%d", i)); id != dict.ID(i) {
			t.Fatalf("Put #%d = %d", i, id)
		}
	}
}

func TestStringsOrder(t *testing.T) {
	d := dict.New(0)
	in := []string{"c", "a", "b"}
	for _, s := range in {
		d.Put(s)
	}
	got := d.Strings()
	for i, s := range in {
		if got[i] != s {
			t.Errorf("Strings()[%d] = %q, want %q", i, got[i], s)
		}
	}
}

func TestSortedIDs(t *testing.T) {
	d := dict.New(0)
	d.Put("zebra")
	d.Put("ant")
	d.Put("mule")
	ids := d.SortedIDs()
	want := []string{"ant", "mule", "zebra"}
	for i, id := range ids {
		if d.String(id) != want[i] {
			t.Errorf("sorted[%d] = %q, want %q", i, d.String(id), want[i])
		}
	}
}

// TestRoundTrip checks WriteTo/ReadFrom over strings containing the
// escape-sensitive characters.
func TestRoundTrip(t *testing.T) {
	d := dict.New(0)
	inputs := []string{"plain", "with\nnewline", `back\slash`, "", "tab\tok", `\n`, "trailing\\"}
	for _, s := range inputs {
		d.Put(s)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := dict.New(0)
	if _, err := d2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("len = %d, want %d", d2.Len(), d.Len())
	}
	for i, s := range inputs {
		if got := d2.String(dict.ID(i)); got != s {
			t.Errorf("string %d = %q, want %q", i, got, s)
		}
	}
}

// TestRoundTripQuick property: any string set survives serialization.
func TestRoundTripQuick(t *testing.T) {
	f := func(raw []string) bool {
		d := dict.New(0)
		seen := make(map[string]bool)
		var uniq []string
		for _, s := range raw {
			if !seen[s] {
				seen[s] = true
				uniq = append(uniq, s)
				d.Put(s)
			}
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			return false
		}
		d2 := dict.New(0)
		if _, err := d2.ReadFrom(&buf); err != nil {
			return false
		}
		if d2.Len() != len(uniq) {
			return false
		}
		for i, s := range uniq {
			if d2.String(dict.ID(i)) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadFromRejectsDuplicates(t *testing.T) {
	d := dict.New(0)
	if _, err := d.ReadFrom(strings.NewReader("a\nb\na\n")); err == nil {
		t.Error("want duplicate error")
	}
}

func TestReadFromRejectsBadEscape(t *testing.T) {
	d := dict.New(0)
	if _, err := d.ReadFrom(strings.NewReader(`bad\qescape`)); err == nil {
		t.Error("want escape error")
	}
	if _, err := d.ReadFrom(strings.NewReader(`trailing\`)); err == nil {
		t.Error("want truncated-escape error")
	}
}

// TestConcurrentPut hammers Put from many goroutines; the dictionary
// must stay consistent (run with -race).
func TestConcurrentPut(t *testing.T) {
	d := dict.New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				s := fmt.Sprintf("key%d", rng.Intn(500))
				id := d.Put(s)
				if d.String(id) != s {
					t.Errorf("inconsistent mapping for %q", s)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if d.Len() > 500 {
		t.Errorf("len = %d, want ≤ 500", d.Len())
	}
}
