package faultinject

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"midas"
)

// TestReaderDeterministic: two injectors with the same seed make the
// same per-reader fault decisions, byte for byte.
func TestReaderDeterministic(t *testing.T) {
	plan := DefaultPlan()
	plan.MaxReadLatency = 0 // keep the test instant
	plan.ReadLatencyProb = 0
	run := func(seed int64) []string {
		in := New(seed, plan)
		var outcomes []string
		for i := 0; i < 64; i++ {
			src := strings.Repeat("x", 20<<10)
			data, err := io.ReadAll(in.Reader(strings.NewReader(src)))
			switch {
			case errors.Is(err, ErrInjected):
				outcomes = append(outcomes, "err@"+itoa(len(data)))
			case err != nil:
				t.Fatalf("reader %d: unexpected error %v", i, err)
			default:
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different outcomes:\n%v\n%v", a, b)
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical 64-reader outcome sequences")
	}
	injected := 0
	for _, o := range a {
		if o != "ok" {
			injected++
		}
	}
	if injected == 0 {
		t.Error("ReadErrProb 0.15 over 64 readers injected nothing")
	}
}

func itoa(n int) string {
	return string(rune('0'+n/10000%10)) + string(rune('0'+n/1000%10)) +
		string(rune('0'+n/100%10)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
}

// TestReaderFailOffset: an injected failure surfaces exactly at its
// seeded offset — the bytes before it are delivered intact.
func TestReaderFailOffset(t *testing.T) {
	plan := Plan{ReadErrProb: 1}
	in := New(7, plan)
	src := bytes.Repeat([]byte("abc"), 8<<10)
	data, err := io.ReadAll(in.Reader(bytes.NewReader(src)))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !bytes.Equal(data, src[:len(data)]) {
		t.Error("bytes before the injected failure were corrupted")
	}
	if len(data) >= len(src) {
		t.Error("failure injected after the full stream was served")
	}
}

// TestDiscoverCancelFault: with CancelProb 1 the wrapped body always
// sees a canceled context, which DiscoverContext turns into a partial
// result.
func TestDiscoverCancelFault(t *testing.T) {
	in := New(1, Plan{CancelProb: 1})
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(midas.Fact{
		Subject: "e", Predicate: "kind", Object: "t",
		Confidence: 0.9, URL: "http://a.example.com/p.htm",
	})
	wrapped := in.Discover(func(ctx context.Context, s *midas.Session) (*midas.Result, error) {
		return s.DiscoverContext(ctx)
	})
	res, err := wrapped(context.Background(), sess)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Slices) != 0 {
		t.Errorf("canceled discovery returned %+v, want empty partial", res)
	}
	if in.Counts()["cancel"] != 1 {
		t.Errorf("counts = %v, want cancel=1", in.Counts())
	}
}

// TestDiscoverStallHonorsContext: a long stall under a short deadline
// returns at the deadline, not after the stall.
func TestDiscoverStallHonorsContext(t *testing.T) {
	in := New(1, Plan{StallProb: 1, MaxStall: 10 * time.Second})
	wrapped := in.Discover(func(ctx context.Context, s *midas.Session) (*midas.Result, error) {
		return &midas.Result{}, ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := wrapped(ctx, nil)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stall ignored the context: took %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

// TestDetectorMatchesDefault: the stalling detector only moves time —
// a session wired with it discovers exactly what the default pipeline
// does.
func TestDetectorMatchesDefault(t *testing.T) {
	facts := func() []midas.Fact {
		var fs []midas.Fact
		for i := 0; i < 12; i++ {
			fs = append(fs, midas.Fact{
				Subject: "e" + itoa(i), Predicate: "kind", Object: "widget",
				Confidence: 0.9, URL: "http://a.example.com/w/p" + itoa(i) + ".htm",
			})
		}
		return fs
	}
	in := New(3, Plan{DetectStallProb: 1, MaxDetectStall: time.Millisecond})
	withFault := midas.NewSession(nil, &midas.Options{Detect: in.Detector()})
	withFault.AddFacts(facts()...)
	plain := midas.NewSession(nil, nil)
	plain.AddFacts(facts()...)

	got, want := withFault.Discover(), plain.Discover()
	if !reflect.DeepEqual(got.Slices, want.Slices) {
		t.Error("stalling detector changed discovery output")
	}
	if in.Counts()["detect_stall"] == 0 {
		t.Error("detector never stalled at probability 1")
	}
}

// TestClockMonotonic: heavy skew never drives the clock backwards, and
// the same seed yields the same skew decisions (counted jumps).
func TestClockMonotonic(t *testing.T) {
	in := New(9, Plan{SkewProb: 0.8, MaxSkew: time.Hour})
	clock := in.Clock()
	prev := clock()
	for i := 0; i < 500; i++ {
		now := clock()
		if now.Before(prev) {
			t.Fatalf("clock went backwards: %v then %v", prev, now)
		}
		prev = now
	}
	if in.Counts()["skew"] == 0 {
		t.Error("no skew jumps at probability 0.8 over 500 readings")
	}
}

// TestCorruptResultsDropsSlices: the deliberate invariant breaker
// shortens some results and leaves the underlying result untouched.
func TestCorruptResultsDropsSlices(t *testing.T) {
	in := New(5, Plan{})
	base := &midas.Result{Slices: []midas.Slice{{Source: "a"}, {Source: "b"}}}
	wrapped := in.CorruptResults(func(ctx context.Context, s *midas.Session) (*midas.Result, error) {
		return base, nil
	})
	dropped := 0
	for i := 0; i < 50; i++ {
		res, err := wrapped(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Slices) < len(base.Slices) {
			dropped++
		}
		if len(base.Slices) != 2 {
			t.Fatal("CorruptResults mutated the shared result")
		}
	}
	if dropped == 0 {
		t.Error("CorruptResults never dropped a slice over 50 calls")
	}
}
