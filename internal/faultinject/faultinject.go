// Package faultinject is the deterministic fault-injection layer behind
// cmd/midas-soak: seeded, probabilistic faults planted into the seams
// the serving path already exposes (serve.Options.WrapDiscover /
// NewSession / Now, midas.Options.Detect, and any io.Reader feeding a
// KB load). Production code never imports this package — the seams
// default to nil and cost nothing — and this package never imports
// internal/serve, so the dependency arrow points strictly from the
// harness into the library.
//
// Determinism: every decision is drawn from one seeded PRNG, so a fixed
// seed yields a fixed decision sequence. Under concurrency the
// *assignment* of decisions to callers follows the goroutine
// interleaving, but the soak harness derives its op streams from
// per-worker PRNGs and checks interleaving-independent invariants, so
// replaying a seed reproduces the same workload against the same fault
// distribution — which in practice re-triggers the failures a seed
// exposed.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"midas"
	"midas/internal/core"
	"midas/internal/fact"
	"midas/internal/hierarchy"
	"midas/internal/slice"
)

// ErrInjected marks a fault-injected I/O failure, so harness code can
// distinguish planted errors from real ones.
var ErrInjected = errors.New("faultinject: injected read error")

// Plan sets the fault mix: each probability is rolled independently at
// the matching seam. The zero value injects nothing.
type Plan struct {
	// ReadErrProb is the chance a Reader-wrapped stream fails with
	// ErrInjected partway through, at a seeded byte offset.
	ReadErrProb float64 `json:"read_err_prob"`
	// ReadLatencyProb is the chance a Reader-wrapped stream sleeps up to
	// MaxReadLatency before its first byte (a slow upstream).
	ReadLatencyProb float64       `json:"read_latency_prob"`
	MaxReadLatency  time.Duration `json:"max_read_latency"`
	// StallProb is the chance a Discover-wrapped run stalls up to
	// MaxStall before starting; the stall honors the context, so a
	// deadline shorter than the stall yields a partial result.
	StallProb float64       `json:"stall_prob"`
	MaxStall  time.Duration `json:"max_stall"`
	// CancelProb is the chance a Discover-wrapped run executes under an
	// already-canceled child context — the guaranteed-partial path.
	CancelProb float64 `json:"cancel_prob"`
	// DetectStallProb is the chance one per-source detector invocation
	// sleeps up to MaxDetectStall (an oversized shard).
	DetectStallProb float64       `json:"detect_stall_prob"`
	MaxDetectStall  time.Duration `json:"max_detect_stall"`
	// SkewProb is the chance one Clock reading jumps by up to ±MaxSkew.
	// Readings are clamped monotonic, so skew stretches and compresses
	// elapsed times without ever making a job finish before it started.
	SkewProb float64       `json:"skew_prob"`
	MaxSkew  time.Duration `json:"max_skew"`
}

// DefaultPlan returns the soak harness's standard fault mix: every seam
// fires often enough to matter in a few hundred ops, with latencies
// small enough to keep a -race run fast.
func DefaultPlan() Plan {
	return Plan{
		ReadErrProb:     0.15,
		ReadLatencyProb: 0.2,
		MaxReadLatency:  5 * time.Millisecond,
		StallProb:       0.2,
		MaxStall:        10 * time.Millisecond,
		CancelProb:      0.1,
		DetectStallProb: 0.05,
		MaxDetectStall:  2 * time.Millisecond,
		SkewProb:        0.3,
		MaxSkew:         30 * time.Second,
	}
}

// Injector draws faults from a seeded PRNG according to a Plan and
// counts what it injected (Counts), for the failure artifact.
type Injector struct {
	plan Plan

	mu     sync.Mutex
	rng    *rand.Rand
	offset time.Duration // current clock skew
	last   time.Time     // monotonic clamp for Clock
	counts map[string]int64
}

// New returns an Injector drawing from seed under plan.
func New(seed int64, plan Plan) *Injector {
	return &Injector{
		plan:   plan,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]int64),
	}
}

// Plan returns the injector's fault plan (for failure artifacts).
func (in *Injector) Plan() Plan { return in.plan }

// Counts returns a snapshot of injected-fault counters, keyed
// read_err, read_latency, stall, cancel, detect_stall, skew.
func (in *Injector) Counts() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// roll draws one decision; dur draws a duration in [0, max).
func (in *Injector) roll(p float64, counter string) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= p {
		return false
	}
	in.counts[counter]++
	return true
}

func (in *Injector) dur(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return time.Duration(in.rng.Int63n(int64(max)))
}

// Reader wraps r with the plan's stream faults: with ReadLatencyProb a
// sleep before the first byte, with ReadErrProb an ErrInjected failure
// at a seeded offset within the first 16 KiB. The fault decisions are
// drawn at wrap time, so a wrapped reader's behavior is fixed the
// moment it is handed out.
func (in *Injector) Reader(r io.Reader) io.Reader {
	fr := &faultReader{r: r, failAt: -1}
	if in.roll(in.plan.ReadLatencyProb, "read_latency") {
		fr.delay = in.dur(in.plan.MaxReadLatency)
	}
	if in.roll(in.plan.ReadErrProb, "read_err") {
		in.mu.Lock()
		fr.failAt = in.rng.Int63n(16 << 10)
		in.mu.Unlock()
	}
	return fr
}

type faultReader struct {
	r      io.Reader
	delay  time.Duration // sleep before the first read
	failAt int64         // fail once this many bytes have been served; -1 = never
	read   int64
	first  bool
}

func (f *faultReader) Read(p []byte) (int, error) {
	if !f.first {
		f.first = true
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
	}
	if f.failAt >= 0 && f.read >= f.failAt {
		return 0, fmt.Errorf("after %d bytes: %w", f.read, ErrInjected)
	}
	if f.failAt >= 0 && int64(len(p)) > f.failAt-f.read {
		p = p[:f.failAt-f.read]
		if len(p) == 0 {
			return 0, fmt.Errorf("after %d bytes: %w", f.read, ErrInjected)
		}
	}
	n, err := f.r.Read(p)
	f.read += int64(n)
	return n, err
}

// DiscoverFunc mirrors serve.Discover without importing serve (named
// function types convert explicitly in both directions).
type DiscoverFunc func(ctx context.Context, sess *midas.Session) (*midas.Result, error)

// Discover wraps a discovery body with the plan's run-level faults:
// a context-honoring stall before the run (StallProb) and, with
// CancelProb, execution under an already-canceled child context — the
// deterministic way to force the partial-result path.
func (in *Injector) Discover(next DiscoverFunc) DiscoverFunc {
	return func(ctx context.Context, sess *midas.Session) (*midas.Result, error) {
		if in.roll(in.plan.StallProb, "stall") {
			t := time.NewTimer(in.dur(in.plan.MaxStall))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		if in.roll(in.plan.CancelProb, "cancel") {
			cctx, cancel := context.WithCancel(ctx)
			cancel()
			ctx = cctx
		}
		return next(ctx, sess)
	}
}

// CorruptResults wraps a discovery body with a deliberate invariant
// break — roughly a third of completed results lose their last slice —
// so the soak harness can prove its oracle catches a lying server
// (the -break acceptance check). Never wired outside that check.
func (in *Injector) CorruptResults(next DiscoverFunc) DiscoverFunc {
	return func(ctx context.Context, sess *midas.Session) (*midas.Result, error) {
		res, err := next(ctx, sess)
		if err == nil && res != nil && len(res.Slices) > 0 && in.roll(1.0/3, "corrupt") {
			broken := *res
			broken.Slices = broken.Slices[:len(broken.Slices)-1]
			return &broken, err
		}
		return res, err
	}
}

// Detector returns the default detection phase (MIDASalg, bit-identical
// to the framework's built-in wiring for any worker count) with the
// plan's per-source stall in front: with DetectStallProb one source's
// detection sleeps up to MaxDetectStall. Detection output is never
// perturbed — faults here only move time around.
func (in *Injector) Detector() midas.Detector {
	return func(table *fact.Table, seeds []hierarchy.Seed) []*slice.Slice {
		if in.roll(in.plan.DetectStallProb, "detect_stall") {
			time.Sleep(in.dur(in.plan.MaxDetectStall))
		}
		return core.DiscoverSeeded(table, seeds, core.Options{Cost: slice.DefaultCostModel()}).Slices
	}
}

// Clock returns a skewed wall clock for serve.Options.Now: with
// SkewProb a reading jumps by up to ±MaxSkew, and every reading is
// clamped to never run backwards (so elapsed = finished − started
// stays non-negative however the skew lands).
func (in *Injector) Clock() func() time.Time {
	return func() time.Time {
		in.mu.Lock()
		defer in.mu.Unlock()
		if in.plan.SkewProb > 0 && in.rng.Float64() < in.plan.SkewProb {
			in.counts["skew"]++
			max := int64(in.plan.MaxSkew)
			if max > 0 {
				in.offset += time.Duration(in.rng.Int63n(2*max) - max)
			}
		}
		now := time.Now().Add(in.offset)
		if now.Before(in.last) {
			now = in.last
		}
		in.last = now
		return now
	}
}
