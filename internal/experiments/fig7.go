package experiments

import (
	"midas/internal/datagen"
)

// Fig7Row is one row of the dataset-statistics table (Figure 7).
type Fig7Row struct {
	Dataset    string
	Facts      int
	Predicates int
	URLs       int
	KBFacts    int
	ExistingKB string
}

// Fig7 generates the four datasets and reports their statistics. The
// absolute numbers are scaled down from the paper's (see DESIGN.md §2);
// the shape relations the experiments rely on hold: ReVerb-like corpora
// have orders of magnitude more predicates than NELL-like ones, and the
// Slim datasets are ~100-source subsets with adjustable KBs.
func Fig7(scale float64, seed int64) []Fig7Row {
	rows := make([]Fig7Row, 0, 4)
	add := func(name string, w *datagen.World, existing string) {
		st := w.Stats()
		rows = append(rows, Fig7Row{
			Dataset:    name,
			Facts:      st.Facts,
			Predicates: st.Predicates,
			URLs:       st.URLs,
			KBFacts:    st.KBFacts,
			ExistingKB: existing,
		})
	}
	add("ReVerb-like", datagen.ReVerbLike(datagen.FullParams{Scale: scale, Seed: seed}), "Empty")
	add("NELL-like", datagen.NELLLike(datagen.FullParams{Scale: scale, Seed: seed}), "Empty")
	add("ReVerb-Slim", datagen.ReVerbSlim(datagen.DefaultSlimParams(seed)), "Adjustable")
	add("NELL-Slim", datagen.NELLSlim(datagen.DefaultSlimParams(seed)), "Adjustable")
	return rows
}

// Fig8Row is one row of the silver-standard snapshot (Figure 8): a web
// source and the description of its desired slices, or "no desired
// slice" for sources whose content the KB already covers (or that are
// incoherent noise).
type Fig8Row struct {
	URL          string
	Descriptions []string
}

// Fig8 reports a snapshot of the Slim silver standard: n sources with
// desired slices and n without.
func Fig8(dataset string, n int, seed int64) []Fig8Row {
	world := slimWorld(dataset, seed)
	byHost := make(map[string][]string)
	for _, gs := range world.Silver {
		h := gs.Source
		for i := range h {
			if h[i] == '/' {
				h = h[:i]
				break
			}
		}
		byHost[h] = append(byHost[h], gs.Description)
	}
	var rows []Fig8Row
	good, bad := 0, 0
	for _, d := range world.Domains {
		if descs, ok := byHost[d.Host]; ok && good < n {
			rows = append(rows, Fig8Row{URL: "http://" + d.Host, Descriptions: descs})
			good++
		} else if !ok && bad < n {
			rows = append(rows, Fig8Row{URL: "http://" + d.Host, Descriptions: nil})
			bad++
		}
		if good >= n && bad >= n {
			break
		}
	}
	return rows
}
