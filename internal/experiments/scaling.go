package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"midas/internal/datagen"
)

// ScalingRow is one point of the corpus-scale sweep.
type ScalingRow struct {
	Scale   float64
	Facts   int
	Sources int
	Slices  int
	Seconds float64
	// FactsPerSec is the end-to-end throughput.
	FactsPerSec float64
}

// Scaling measures end-to-end framework runtime as the corpus grows —
// the scalability claim behind Section III-B (and the near-linear
// complexity of Proposition 15). Each scale generates a fresh
// ReVerb-like corpus and times one full MIDAS run (generation excluded).
func Scaling(scales []float64, seed int64, workers int) []ScalingRow {
	rows := make([]ScalingRow, 0, len(scales))
	for _, sc := range scales {
		world := datagen.ReVerbLike(datagen.FullParams{Scale: sc, Seed: seed})
		st := world.Stats()
		start := time.Now()
		out := MIDAS.Run(world.Corpus, world.KB, DefaultCost(), workers)
		secs := time.Since(start).Seconds()
		rows = append(rows, ScalingRow{
			Scale:       sc,
			Facts:       st.Facts,
			Sources:     st.URLs,
			Slices:      len(out.Slices),
			Seconds:     secs,
			FactsPerSec: float64(st.Facts) / secs,
		})
	}
	return rows
}

// RenderScaling prints the sweep.
func RenderScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Framework runtime vs. corpus scale (MIDAS detector):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scale\tfacts\tpage URLs\tslices\tseconds\tfacts/sec")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%d\t%d\t%d\t%.3f\t%.0f\n",
			r.Scale, r.Facts, r.Sources, r.Slices, r.Seconds, r.FactsPerSec)
	}
	tw.Flush()
}
