package experiments_test

import (
	"bytes"
	"testing"

	"midas/internal/experiments"
)

// TestFig11Shapes runs a reduced synthetic sweep and checks the
// qualitative claims of Figure 11: MIDAS's F-measure dominates and stays
// near 1; GREEDY's F collapses as the number of optimal slices grows;
// AGGCLUSTER is the slowest of the three on the largest input.
func TestFig11Shapes(t *testing.T) {
	cfg := experiments.DefaultFig11Config()
	cfg.FactCounts = []int{1000, 4000}
	cfg.OptimalCounts = []int{1, 5, 10}
	cfg.Trials = 2
	res := experiments.Fig11(cfg)

	get := func(rows []experiments.Fig11Row, x int, m experiments.Method) experiments.Fig11Row {
		for _, r := range rows {
			if r.X == x && r.Method == m {
				return r
			}
		}
		t.Fatalf("missing row x=%d method=%s", x, m)
		return experiments.Fig11Row{}
	}

	for _, n := range cfg.FactCounts {
		midas := get(res.VsFacts, n, experiments.MIDAS)
		if midas.F1 < 0.85 {
			t.Errorf("MIDAS F1 at n=%d is %.3f, want ≥ 0.85", n, midas.F1)
		}
		greedy := get(res.VsFacts, n, experiments.Greedy)
		if greedy.F1 >= midas.F1 {
			t.Errorf("Greedy F1 %.3f should be below MIDAS %.3f at n=%d", greedy.F1, midas.F1, n)
		}
	}

	// GREEDY finds exactly one slice: F ≈ 2/(m+1), so it must fall as m
	// grows; at m=1 it should match MIDAS.
	g1 := get(res.VsOptimal, 1, experiments.Greedy)
	g10 := get(res.VsOptimal, 10, experiments.Greedy)
	if g1.F1 < 0.9 {
		t.Errorf("Greedy F1 at m=1 is %.3f, want ≈ 1 (it finds the single optimal slice)", g1.F1)
	}
	if g10.F1 > 0.4 {
		t.Errorf("Greedy F1 at m=10 is %.3f, want ≲ 2/11", g10.F1)
	}
	m10 := get(res.VsOptimal, 10, experiments.MIDAS)
	if m10.F1 < 0.85 {
		t.Errorf("MIDAS F1 at m=10 is %.3f, want ≥ 0.85", m10.F1)
	}

	// AGGCLUSTER slowest on the larger input.
	am := get(res.VsFacts, 4000, experiments.AggCluster)
	mm := get(res.VsFacts, 4000, experiments.MIDAS)
	gm := get(res.VsFacts, 4000, experiments.Greedy)
	if am.Seconds < mm.Seconds || am.Seconds < gm.Seconds {
		t.Errorf("AggCluster (%.3fs) should be slowest (MIDAS %.3fs, Greedy %.3fs)",
			am.Seconds, mm.Seconds, gm.Seconds)
	}

	var buf bytes.Buffer
	experiments.RenderFig11(&buf, res)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
	t.Logf("\n%s", buf.String())
}

// TestFig9Shapes runs a reduced coverage sweep and checks the
// qualitative claims of Figure 9: MIDAS dominates every baseline on
// F-measure at each coverage; NAIVE precision stays low.
func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	cfg := experiments.DefaultFig9Config()
	cfg.Coverages = []float64{0, 0.4, 0.8}
	res := experiments.Fig9(cfg)

	byKey := make(map[string]experiments.Fig9Row)
	for _, r := range res.Rows {
		byKey[string(r.Method)+"@"+itoa(int(r.Coverage*100))] = r
	}
	for _, cov := range []int{0, 40, 80} {
		midas := byKey["MIDAS@"+itoa(cov)]
		for _, m := range []experiments.Method{experiments.Greedy, experiments.Naive, experiments.AggCluster} {
			other := byKey[string(m)+"@"+itoa(cov)]
			if other.Score.F1 > midas.Score.F1 {
				t.Errorf("coverage %d%%: %s F1 %.3f beats MIDAS %.3f", cov, m, other.Score.F1, midas.Score.F1)
			}
		}
		naive := byKey["Naive@"+itoa(cov)]
		if naive.Score.Precision > 0.5 {
			t.Errorf("coverage %d%%: NAIVE precision %.3f, want low (≤ 0.5)", cov, naive.Score.Precision)
		}
	}

	var buf bytes.Buffer
	experiments.RenderFig9(&buf, res)
	experiments.RenderFig9Curves(&buf, res, 0)
	t.Logf("\n%s", buf.String())
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestFig3Qualitative checks that the six planted Figure 3 verticals
// dominate the top returns and that the reported ratios land near the
// paper's numbers.
func TestFig3Qualitative(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run")
	}
	rows := experiments.Fig3(3, 6, 0)
	if len(rows) < 6 {
		t.Fatalf("got %d rows, want ≥ 6", len(rows))
	}
	seen := make(map[string]experiments.Fig3Row)
	for _, r := range rows {
		seen[r.Description] = r
	}
	for _, want := range []string{
		"Education organizations", "US golf courses", "Biology facts",
		"Board games", "Skyscraper architectures", "Indian politicians",
	} {
		r, ok := seen[want]
		if !ok {
			for _, row := range rows {
				t.Logf("row: %+v", row)
			}
			t.Fatalf("vertical %q missing from top returns", want)
		}
		if r.SliceNewRatio < 0.5 || r.SliceNewRatio > 0.95 {
			t.Errorf("%s: slice new ratio %.2f out of the paper's 0.67-0.83 neighborhood", want, r.SliceNewRatio)
		}
		if r.SourceNewRatio >= r.SliceNewRatio {
			t.Errorf("%s: source ratio %.2f should be well below slice ratio %.2f", want, r.SourceNewRatio, r.SliceNewRatio)
		}
	}
}

// TestFig7And8Render smoke-tests the table generators.
func TestFig7And8Render(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation")
	}
	rows := experiments.Fig7(0.2, 7)
	if len(rows) != 4 {
		t.Fatalf("fig7 rows = %d, want 4", len(rows))
	}
	if rows[0].Predicates <= rows[1].Predicates {
		t.Errorf("ReVerb-like predicates (%d) must exceed NELL-like (%d)", rows[0].Predicates, rows[1].Predicates)
	}
	var buf bytes.Buffer
	experiments.RenderFig7(&buf, rows)

	f8 := experiments.Fig8("reverb-slim", 3, 7)
	withSlices, without := 0, 0
	for _, r := range f8 {
		if len(r.Descriptions) > 0 {
			withSlices++
		} else {
			without++
		}
	}
	if withSlices != 3 || without != 3 {
		t.Errorf("fig8 split = %d/%d, want 3/3", withSlices, without)
	}
	experiments.RenderFig8(&buf, f8)
	t.Logf("\n%s", buf.String())
}
