package experiments_test

import (
	"bytes"
	"testing"

	"midas/internal/experiments"
)

// TestAblationPruning: pruning is exact — all variants return the same
// slices and profit — and the prune counters behave as designed.
func TestAblationPruning(t *testing.T) {
	rows := experiments.AblationPruning(120, 3)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	full := rows[0]
	for _, r := range rows[1:] {
		if r.Slices != full.Slices || r.TotalProfit != full.TotalProfit {
			t.Errorf("%s: output differs from full pruning (%d/%f vs %d/%f)",
				r.Variant, r.Slices, r.TotalProfit, full.Slices, full.TotalProfit)
		}
		if r.NodesCreated != full.NodesCreated {
			t.Errorf("%s: construction size should not depend on pruning", r.Variant)
		}
	}
	if full.NodesRemoved == 0 || full.NodesInvalid == 0 {
		t.Errorf("full pruning removed %d / invalidated %d; want both > 0",
			full.NodesRemoved, full.NodesInvalid)
	}
	noCanon := rows[1]
	if noCanon.NodesRemoved != 0 {
		t.Errorf("no-canonical variant removed %d nodes", noCanon.NodesRemoved)
	}
	if noCanon.NodesInvalid <= full.NodesInvalid {
		t.Error("without canonical pruning, more nodes must be profit-invalidated")
	}
	noProfit := rows[2]
	if noProfit.NodesInvalid != 0 {
		t.Errorf("no-profit variant invalidated %d nodes", noProfit.NodesInvalid)
	}
}

// TestAblationFlatVsHierarchical: consolidation must reduce slice count
// without reducing total profit.
func TestAblationFlatVsHierarchical(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run")
	}
	rows := experiments.AblationFlatVsHierarchical(7, 0)
	flat, hier := rows[0], rows[1]
	if hier.Slices >= flat.Slices {
		t.Errorf("hierarchical %d slices should be fewer than flat %d", hier.Slices, flat.Slices)
	}
	if hier.TotalProfit < flat.TotalProfit {
		t.Errorf("hierarchical profit %.1f below flat %.1f", hier.TotalProfit, flat.TotalProfit)
	}
}

// TestAblationComboCap: larger caps never lose profit and saturate.
func TestAblationComboCap(t *testing.T) {
	rows := experiments.AblationComboCap(7, []int{1, 16, 256})
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalProfit+1e-9 < rows[i-1].TotalProfit {
			t.Errorf("cap %s profit %.1f below smaller cap %.1f",
				rows[i].Variant, rows[i].TotalProfit, rows[i-1].TotalProfit)
		}
		if rows[i].NodesCreated < rows[i-1].NodesCreated {
			t.Errorf("node count should not shrink with a larger cap")
		}
	}
}

// TestScalingLinearity: throughput at 2× scale stays within 3× of the
// 0.5× throughput (loose bound; the claim is near-linear growth, and a
// quadratic component would blow far past this).
func TestScalingLinearity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-corpus run")
	}
	rows := experiments.Scaling([]float64{0.5, 2.0}, 7, 0)
	if len(rows) != 2 {
		t.Fatal("rows missing")
	}
	small, big := rows[0], rows[1]
	if big.Facts < 3*small.Facts {
		t.Fatalf("scale did not grow the corpus: %d vs %d", big.Facts, small.Facts)
	}
	if big.FactsPerSec*3 < small.FactsPerSec {
		t.Errorf("throughput collapsed: %.0f → %.0f facts/sec", small.FactsPerSec, big.FactsPerSec)
	}
	var buf bytes.Buffer
	experiments.RenderScaling(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

// TestAblationParallelism smoke-tests the sweep (this host may have a
// single CPU, so only output validity is asserted, not speedup).
func TestAblationParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run")
	}
	rows := experiments.AblationParallelism(7, []int{1, 4})
	if len(rows) != 2 || rows[0].Slices != rows[1].Slices {
		t.Errorf("worker count changed the output: %+v", rows)
	}
}

// TestCostSensitivityKnobs: higher training cost must yield fewer (or
// equal) slices; cheap training must yield at least as many as the
// default; every variant still finds something.
func TestCostSensitivityKnobs(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run")
	}
	rows := experiments.CostSensitivity(7, 0)
	byLabel := make(map[string]experiments.CostRow)
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.Slices == 0 {
			t.Errorf("%s: no slices", r.Label)
		}
	}
	def := byLabel["defaults (fp=10)"]
	cheap := byLabel["cheap training (fp=1)"]
	costly := byLabel["costly training (fp=50)"]
	if !(cheap.Slices >= def.Slices && def.Slices >= costly.Slices) {
		t.Errorf("slice counts should fall with fp: cheap=%d default=%d costly=%d",
			cheap.Slices, def.Slices, costly.Slices)
	}
	if costly.MeanSize < def.MeanSize {
		t.Errorf("costly training should favor coarser slices: %.1f vs %.1f",
			costly.MeanSize, def.MeanSize)
	}
}

// TestAblationTraversalOrder: on dense tables the paper's key order
// tiles at least as profitably as the profit-order variant, with fewer
// slices — the reason it remains the default.
func TestAblationTraversalOrder(t *testing.T) {
	rows := experiments.AblationTraversalOrder(40, 5)
	paper, profit := rows[0], rows[1]
	if paper.TotalProfit < profit.TotalProfit-1e-9 {
		t.Errorf("paper order profit %.2f below profit order %.2f",
			paper.TotalProfit, profit.TotalProfit)
	}
	if paper.Slices > profit.Slices {
		t.Errorf("paper order reported more slices (%d) than profit order (%d)",
			paper.Slices, profit.Slices)
	}
}
