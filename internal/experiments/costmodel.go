package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"midas/internal/datagen"
	"midas/internal/slice"
)

// CostRow reports discovery behavior under one cost model.
type CostRow struct {
	Label string
	Cost  slice.CostModel
	// Slices reported, their mean entity count, and total new facts.
	Slices      int
	MeanSize    float64
	NewFacts    int
	MeanPreds   float64 // mean distinct predicates per slice (annotation effort)
	TotalProfit float64
}

// CostSensitivity sweeps the profit coefficients on the slim corpus and
// reports how the output changes — the knob behavior the paper
// describes qualitatively ("one can adjust the gain and cost
// functions"): a higher training cost f_p favors fewer, coarser slices;
// a higher validation cost f_v suppresses marginal slices; a higher
// de-duplication cost f_d penalizes slices that drag along known facts.
func CostSensitivity(seed int64, workers int) []CostRow {
	world := datagen.ReVerbSlim(datagen.DefaultSlimParams(seed))
	base := slice.DefaultCostModel()
	variants := []struct {
		label string
		cost  slice.CostModel
	}{
		{"defaults (fp=10)", base},
		{"cheap training (fp=1)", slice.CostModel{Fp: 1, Fc: base.Fc, Fd: base.Fd, Fv: base.Fv}},
		{"costly training (fp=50)", slice.CostModel{Fp: 50, Fc: base.Fc, Fd: base.Fd, Fv: base.Fv}},
		{"costly validation (fv=0.5)", slice.CostModel{Fp: base.Fp, Fc: base.Fc, Fd: base.Fd, Fv: 0.5}},
		{"costly de-dup (fd=0.2)", slice.CostModel{Fp: base.Fp, Fc: base.Fc, Fd: 0.2, Fv: base.Fv}},
	}

	rows := make([]CostRow, 0, len(variants))
	for _, v := range variants {
		out := MIDAS.Run(world.Corpus, world.KB, v.cost, workers)
		row := CostRow{Label: v.label, Cost: v.cost, Slices: len(out.Slices)}
		preds := 0
		for _, s := range out.Slices {
			row.MeanSize += float64(s.Entities.Len())
			row.NewFacts += s.NewFacts
			row.TotalProfit += s.Profit
			seen := make(map[int32]struct{})
			for _, p := range s.Props {
				seen[p.Pred()] = struct{}{}
			}
			preds += len(seen)
		}
		if len(out.Slices) > 0 {
			row.MeanSize /= float64(len(out.Slices))
			row.MeanPreds = float64(preds) / float64(len(out.Slices))
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderCostSensitivity prints the sweep.
func RenderCostSensitivity(w io.Writer, rows []CostRow) {
	fmt.Fprintln(w, "Cost-model sensitivity (MIDAS on ReVerb-Slim):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Variant\tSlices\tMean entities\tNew facts\tMean preds\tΣ profit")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%.2f\t%.0f\n",
			r.Label, r.Slices, r.MeanSize, r.NewFacts, r.MeanPreds, r.TotalProfit)
	}
	tw.Flush()
}
