// Package experiments implements one driver per table and figure of the
// paper's evaluation (Section IV). Each driver returns structured rows;
// cmd/midas-bench renders them as the paper-style tables recorded in
// EXPERIMENTS.md, and bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"

	"midas/internal/baselines"
	"midas/internal/core"
	"midas/internal/datagen"
	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/kb"
	"midas/internal/slice"
)

// Method names one of the four compared algorithms.
type Method string

// The four methods of Section IV-B.
const (
	MIDAS      Method = "MIDAS"
	Greedy     Method = "Greedy"
	Naive      Method = "Naive"
	AggCluster Method = "AggCluster"
)

// AllMethods lists the methods in the paper's presentation order.
func AllMethods() []Method { return []Method{MIDAS, Greedy, Naive, AggCluster} }

// Detector returns the framework detector for a method.
func (m Method) Detector(cost slice.CostModel) framework.Detector {
	switch m {
	case Greedy:
		return baselines.GreedyDetector(cost)
	case Naive:
		return baselines.NaiveDetector()
	case AggCluster:
		return baselines.AggClusterDetector(cost)
	default:
		return nil // framework default = MIDASalg
	}
}

// Run executes a method over a corpus under the multi-source framework.
func (m Method) Run(corpus *fact.Corpus, existing *kb.KB, cost slice.CostModel, workers int) *framework.Output {
	return framework.Run(corpus, existing, framework.Options{
		Cost:    cost,
		Workers: workers,
		Detect:  m.Detector(cost),
		Core:    core.Options{Cost: cost},
	})
}

// RunTable executes a method on a single prepared fact table (the
// single-source setting of the Figure 11 experiments).
func (m Method) RunTable(table *fact.Table, cost slice.CostModel) []*slice.Slice {
	switch m {
	case MIDAS:
		return core.DiscoverTable(table, core.Options{Cost: cost}).Slices
	case Greedy:
		if s := baselines.Greedy(table, cost); s != nil {
			return []*slice.Slice{s}
		}
		return nil
	case Naive:
		if s := baselines.Naive(table); s != nil {
			return []*slice.Slice{s}
		}
		return nil
	case AggCluster:
		return baselines.AggCluster(table, cost)
	}
	panic(fmt.Sprintf("unknown method %q", m))
}

// silverSets extracts the fact sets of a silver standard.
func silverSets(gs []datagen.GroundSlice) [][]kb.Triple {
	out := make([][]kb.Triple, len(gs))
	for i := range gs {
		out[i] = gs[i].Facts
	}
	return out
}

// DefaultCost returns the paper's cost model (convenience for examples
// and benches).
func DefaultCost() slice.CostModel { return slice.DefaultCostModel() }
