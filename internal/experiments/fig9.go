package experiments

import (
	"midas/internal/datagen"
	"midas/internal/eval"
	"midas/internal/slice"
)

// Fig9Config selects the Slim dataset and sweep for the Figure 9
// experiments (slice quality vs. knowledge-base coverage).
type Fig9Config struct {
	// Dataset is "reverb-slim" or "nell-slim".
	Dataset string
	// Coverages lists the KB coverage ratios (paper: 0, 0.2, ..., 0.8).
	Coverages []float64
	// Methods to compare (default: all four).
	Methods []Method
	Seed    int64
	Workers int
}

// DefaultFig9Config mirrors the paper's sweep on ReVerb-Slim.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Dataset:   "reverb-slim",
		Coverages: []float64{0, 0.2, 0.4, 0.6, 0.8},
		Methods:   AllMethods(),
		Seed:      7,
	}
}

// Fig9Row is one (coverage, method) cell of Figures 9b/9d/9f.
type Fig9Row struct {
	Coverage float64
	Method   Method
	Score    eval.PRF
}

// Fig9Result bundles the coverage sweep and the PR curves at the three
// coverage ratios shown in Figures 9a/9c/9e.
type Fig9Result struct {
	Dataset string
	Rows    []Fig9Row
	// Curves maps coverage → method → PR points (prefixes of the
	// profit-ranked output).
	Curves map[float64]map[Method][]eval.PRPoint
}

// Fig9 runs the coverage sweep.
func Fig9(cfg Fig9Config) *Fig9Result {
	if len(cfg.Methods) == 0 {
		cfg.Methods = AllMethods()
	}
	world := slimWorld(cfg.Dataset, cfg.Seed)
	cost := slice.DefaultCostModel()
	res := &Fig9Result{Dataset: cfg.Dataset, Curves: make(map[float64]map[Method][]eval.PRPoint)}

	for _, cov := range cfg.Coverages {
		existing, remaining := world.WithCoverage(cov, cfg.Seed+int64(cov*100))
		silver := silverSets(remaining)
		curves := make(map[Method][]eval.PRPoint)
		for _, m := range cfg.Methods {
			out := m.Run(world.Corpus, existing, cost, cfg.Workers)
			res.Rows = append(res.Rows, Fig9Row{
				Coverage: cov,
				Method:   m,
				Score:    eval.Score(out.FactSets, silver),
			})
			curves[m] = eval.PRCurve(out.FactSets, silver)
		}
		res.Curves[cov] = curves
	}
	return res
}

func slimWorld(dataset string, seed int64) *datagen.World {
	switch dataset {
	case "nell-slim":
		return datagen.NELLSlim(datagen.DefaultSlimParams(seed))
	default:
		return datagen.ReVerbSlim(datagen.DefaultSlimParams(seed))
	}
}
