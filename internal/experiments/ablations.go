package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"midas/internal/core"
	"midas/internal/datagen"
	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/kb"
	"midas/internal/slice"
	"midas/internal/source"
)

// AblationRow reports one variant of an ablation study.
type AblationRow struct {
	Variant      string
	NodesCreated int
	NodesRemoved int
	NodesInvalid int
	Slices       int
	TotalProfit  float64
	Seconds      float64
}

// AblationPruning measures the two pruning strategies of MIDASalg
// (DESIGN.md §4): lattice size, output size, and runtime with each
// pruning disabled. The workload is a dense table — entities drawing
// every predicate's value from a 3-value pool — where property overlap
// makes the lattice deep, unlike the synthetic corpus whose disjoint
// rules prune trivially.
func AblationPruning(entities int, seed int64) []AblationRow {
	table := denseTable(entities, seed)

	variants := []struct {
		name string
		opts core.Options
	}{
		{"full pruning", core.Options{}},
		{"no canonical pruning", core.Options{DisableCanonicalPrune: true}},
		{"no profit pruning", core.Options{DisableProfitPrune: true}},
		{"no pruning", core.Options{DisableCanonicalPrune: true, DisableProfitPrune: true}},
	}
	rows := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		start := time.Now()
		res := core.DiscoverTable(table, v.opts)
		rows = append(rows, AblationRow{
			Variant:      v.name,
			NodesCreated: res.Stats.NodesCreated,
			NodesRemoved: res.Stats.NodesRemoved,
			NodesInvalid: res.Stats.NodesInvalid,
			Slices:       len(res.Slices),
			TotalProfit:  res.TotalProfit,
			Seconds:      time.Since(start).Seconds(),
		})
	}
	return rows
}

// denseTable builds a single-source table with heavy property overlap:
// every entity carries all of 8 predicates with values from 3-value
// pools, and roughly half of the facts are already in the KB.
func denseTable(entities int, seed int64) *fact.Table {
	rng := rand.New(rand.NewSource(seed))
	sp := kb.NewSpace()
	existing := kb.New(sp)
	var triples []kb.Triple
	for e := 0; e < entities; e++ {
		for p := 0; p < 8; p++ {
			tr := sp.Intern(
				fmt.Sprintf("e%d", e),
				fmt.Sprintf("p%d", p),
				fmt.Sprintf("v%d-%d", p, rng.Intn(3)))
			triples = append(triples, tr)
			if rng.Float64() < 0.5 {
				existing.Add(tr)
			}
		}
	}
	return fact.Build("dense.example.com/data", sp, triples, existing)
}

// AblationFlatVsHierarchical compares the naïve strategy of running
// MIDASalg independently at every URL granularity (the approach
// Section III-B's opening dismisses) against the consolidating
// framework: slice counts, redundancy, and total set profit.
func AblationFlatVsHierarchical(seed int64, workers int) []AblationRow {
	world := datagen.ReVerbSlim(datagen.DefaultSlimParams(seed))
	cost := slice.DefaultCostModel()
	existing := world.KB

	// Flat sweep: every granularity level of every source, independently.
	start := time.Now()
	byLeaf := make(map[string][]kb.Triple)
	for _, e := range world.Corpus.Facts {
		src := source.Normalize(world.Corpus.URLs.String(e.URL))
		byLeaf[src] = append(byLeaf[src], e.Triple)
	}
	byLevel := make(map[string][]kb.Triple)
	for src, ts := range byLeaf {
		for _, lvl := range source.Levels(src) {
			byLevel[lvl] = append(byLevel[lvl], ts...)
		}
	}
	var flatSlices []*slice.Slice
	var flatSets [][]kb.Triple
	for lvl, ts := range byLevel {
		table := fact.Build(lvl, world.Corpus.Space, ts, existing)
		res := core.DiscoverTable(table, core.Options{Cost: cost})
		for _, s := range res.Slices {
			flatSlices = append(flatSlices, s)
			flatSets = append(flatSets, s.FactSet(table))
		}
	}
	flatSecs := time.Since(start).Seconds()

	// Hierarchical framework run.
	start = time.Now()
	out := framework.Run(world.Corpus, existing, framework.Options{Cost: cost, Workers: workers})
	frameSecs := time.Since(start).Seconds()

	return []AblationRow{
		{
			Variant:     "flat per-granularity sweep",
			Slices:      len(flatSlices),
			TotalProfit: setProfitOf(flatSlices, flatSets, existing, cost, byLevelTotals(byLevel)),
			Seconds:     flatSecs,
		},
		{
			Variant:     "hierarchical framework",
			Slices:      len(out.Slices),
			TotalProfit: setProfitOf(out.Slices, out.FactSets, existing, cost, outputTotals(out, byLeaf)),
			Seconds:     frameSecs,
		},
	}
}

func byLevelTotals(byLevel map[string][]kb.Triple) map[string]int {
	out := make(map[string]int, len(byLevel))
	for lvl, ts := range byLevel {
		seen := make(map[kb.Triple]struct{}, len(ts))
		for _, t := range ts {
			seen[t] = struct{}{}
		}
		out[lvl] = len(seen)
	}
	return out
}

func outputTotals(out *framework.Output, byLeaf map[string][]kb.Triple) map[string]int {
	// Recompute per-source dedup'd totals for the sources that appear in
	// the output, aggregating leaf facts under each source prefix.
	totals := make(map[string]int)
	for _, s := range out.Slices {
		if _, done := totals[s.Source]; done {
			continue
		}
		seen := make(map[kb.Triple]struct{})
		for leaf, ts := range byLeaf {
			if leaf == s.Source || hasPrefixSlash(leaf, s.Source) {
				for _, t := range ts {
					seen[t] = struct{}{}
				}
			}
		}
		totals[s.Source] = len(seen)
	}
	return totals
}

func hasPrefixSlash(s, prefix string) bool {
	return len(s) > len(prefix) && s[:len(prefix)] == prefix && s[len(prefix)] == '/'
}

// setProfitOf computes the paper's set profit f(S) over a final slice
// list: union gain and dedup over global fact identity, one training
// cost per slice, one crawl term per distinct source.
func setProfitOf(slices []*slice.Slice, sets [][]kb.Triple, existing *kb.KB, cost slice.CostModel, totals map[string]int) float64 {
	unionFacts, unionNew := slice.UnionStats(sets, existing)
	perSource := make(map[string]int)
	for _, s := range slices {
		perSource[s.Source] = totals[s.Source]
	}
	list := make([]int, 0, len(perSource))
	for _, t := range perSource {
		list = append(list, t)
	}
	return cost.SetProfit(len(slices), unionFacts, unionNew, list)
}

// AblationParallelism sweeps the framework worker count on a slim
// corpus.
func AblationParallelism(seed int64, workerCounts []int) []AblationRow {
	world := datagen.ReVerbSlim(datagen.DefaultSlimParams(seed))
	rows := make([]AblationRow, 0, len(workerCounts))
	for _, w := range workerCounts {
		start := time.Now()
		out := framework.Run(world.Corpus, world.KB, framework.Options{Workers: w})
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("workers=%d", w),
			Slices:  len(out.Slices),
			Seconds: time.Since(start).Seconds(),
		})
	}
	return rows
}

// AblationComboCap sweeps the initial-slice combination cap on a source
// whose entities have multi-valued predicates (the cap bounds the cross
// product of one-value-per-predicate combinations; the synthetic corpus
// is single-valued, so this uses its own workload).
func AblationComboCap(seed int64, caps []int) []AblationRow {
	rng := rand.New(rand.NewSource(seed))
	sp := kb.NewSpace()
	var triples []kb.Triple
	for e := 0; e < 150; e++ {
		for p := 0; p < 5; p++ {
			// 1-3 values per (entity, predicate) from a 4-value pool.
			nv := 1 + rng.Intn(3)
			for v := 0; v < nv; v++ {
				triples = append(triples, sp.Intern(
					fmt.Sprintf("e%d", e),
					fmt.Sprintf("p%d", p),
					fmt.Sprintf("v%d-%d", p, rng.Intn(4))))
			}
		}
	}
	table := fact.Build("multi.example.com/data", sp, triples, nil)
	rows := make([]AblationRow, 0, len(caps))
	for _, c := range caps {
		start := time.Now()
		res := core.DiscoverTable(table, core.Options{MaxInitCombos: c})
		rows = append(rows, AblationRow{
			Variant:      fmt.Sprintf("combo cap=%d", c),
			NodesCreated: res.Stats.NodesCreated,
			Slices:       len(res.Slices),
			TotalProfit:  res.TotalProfit,
			Seconds:      time.Since(start).Seconds(),
		})
	}
	return rows
}

// AblationTraversalOrder compares the paper's within-level traversal
// order (deterministic by property key, the default) against a
// decreasing-profit variant, over many random dense sources. On the
// evaluation corpora the two produce identical output; on dense tables
// with heavily overlapping same-level slices, key order tends to tile
// the entities into fewer larger slices (picking the biggest slice
// first fragments what remains), which is why the paper's order stays
// the default.
func AblationTraversalOrder(trials int, seed int64) []AblationRow {
	rng := rand.New(rand.NewSource(seed))
	var rows [2]AblationRow
	rows[0].Variant = "paper order (by property key)"
	rows[1].Variant = "profit order (variant)"
	start := time.Now()
	for i := 0; i < trials; i++ {
		table := denseTable(60+rng.Intn(120), rng.Int63())
		paper := core.DiscoverTable(table, core.Options{})
		refined := core.DiscoverTable(table, core.Options{ProfitOrderTraversal: true})
		rows[0].Slices += len(paper.Slices)
		rows[1].Slices += len(refined.Slices)
		rows[0].TotalProfit += paper.TotalProfit
		rows[1].TotalProfit += refined.TotalProfit
	}
	elapsed := time.Since(start).Seconds() / 2
	rows[0].Seconds, rows[1].Seconds = elapsed, elapsed
	return rows[:]
}
