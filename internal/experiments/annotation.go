package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"midas/internal/datagen"
	"midas/internal/dict"
	"midas/internal/slice"
	"midas/internal/source"
	"midas/internal/wrapper"
)

// AnnotationRow reports the quality of wrappers induced from one
// method's recommendations.
type AnnotationRow struct {
	Method    Method
	Wrappers  int     // recommendations evaluated
	Budget    int     // annotated entities per recommendation
	Precision float64 // mean wrapper precision
	Recall    float64 // mean wrapper recall
	F1        float64
	Conflicts float64 // mean conflicting slots per wrapper
}

// Annotation quantifies the paper's "slices allow for easy annotation"
// argument: for each method's top recommendations, K entities are
// annotated, a wrapper is induced (internal/wrapper), and its
// extraction quality over the recommendation's scope is measured.
// MIDAS slices are template-homogeneous, so their wrappers are nearly
// perfect; NAIVE's whole-source recommendations mix templates and the
// induced wrappers misfire.
func Annotation(seed int64, budget, top int, workers int) []AnnotationRow {
	world := datagen.ReVerbSlim(datagen.DefaultSlimParams(seed))
	cost := slice.DefaultCostModel()

	// Index pages by normalized source for prefix lookups.
	pagesBySource := make(map[string][]wrapper.Page)
	for _, p := range world.Pages {
		src := source.Normalize(p.URL)
		pagesBySource[src] = append(pagesBySource[src], p)
	}
	sources := make([]string, 0, len(pagesBySource))
	for s := range pagesBySource {
		sources = append(sources, s)
	}
	sort.Strings(sources)
	pagesUnder := func(src string) []wrapper.Page {
		var out []wrapper.Page
		for _, s := range sources {
			if s == src || strings.HasPrefix(s, src+"/") {
				out = append(out, pagesBySource[s]...)
			}
		}
		return out
	}

	var rows []AnnotationRow
	for _, m := range []Method{MIDAS, Naive} {
		out := m.Run(world.Corpus, world.KB, cost, workers)
		recs := out.Slices
		if len(recs) > top {
			recs = recs[:top]
		}
		row := AnnotationRow{Method: m, Budget: budget}
		for _, rec := range recs {
			pages := pagesUnder(rec.Source)
			if len(pages) == 0 {
				continue
			}
			annotated := make(map[dict.ID]bool, budget)
			for _, e := range rec.Entities.Values() {
				if len(annotated) >= budget {
					break
				}
				annotated[e] = true
			}
			scope := make(map[dict.ID]bool, rec.Entities.Len())
			for _, e := range rec.Entities.Values() {
				scope[e] = true
			}
			w := wrapper.Induce(pages, annotated)
			q := w.Evaluate(pages, scope)
			row.Wrappers++
			row.Precision += q.Precision
			row.Recall += q.Recall
			row.F1 += q.F1
			row.Conflicts += float64(w.Conflicts)
		}
		if row.Wrappers > 0 {
			n := float64(row.Wrappers)
			row.Precision /= n
			row.Recall /= n
			row.F1 /= n
			row.Conflicts /= n
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderAnnotation prints the comparison.
func RenderAnnotation(w io.Writer, rows []AnnotationRow) {
	fmt.Fprintln(w, "Wrapper induction from top recommendations (annotation budget per recommendation):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Method\tWrappers\tBudget\tPrecision\tRecall\tF1\tSlot conflicts")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.1f\n",
			r.Method, r.Wrappers, r.Budget, r.Precision, r.Recall, r.F1, r.Conflicts)
	}
	tw.Flush()
}
