package experiments

import (
	"time"

	"midas/internal/datagen"
	"midas/internal/eval"
	"midas/internal/fact"
	"midas/internal/kb"
	"midas/internal/slice"
)

// Fig11Config drives the synthetic single-source experiments
// (Section IV-D): accuracy and runtime vs. the number of facts
// (Figures 11a/11b) and vs. the number of optimal slices
// (Figures 11c/11d).
type Fig11Config struct {
	// FactCounts sweeps n with b=20, m=10 (paper: 1000..10000).
	FactCounts []int
	// OptimalCounts sweeps m with n=5000, b=20 (paper: 1..10).
	OptimalCounts []int
	Methods       []Method
	// Trials averages each cell over several seeds (paper plots single
	// runs; averaging smooths the synthetic noise).
	Trials int
	Seed   int64
	// KnownRatio overrides the KB coverage of non-optimal slices.
	// Defaults to 0.98: at the paper's 0.95 the residue of large
	// non-optimal slices becomes genuinely profitable under the profit
	// function (25+ new facts at n=10000), which would make reporting
	// them *correct* yet counted as errors; 0.98 keeps "non-optimal"
	// semantically non-optimal across the sweep (see EXPERIMENTS.md).
	KnownRatio float64
}

// DefaultFig11Config mirrors the paper's two sweeps.
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		FactCounts:    []int{1000, 2500, 5000, 7500, 10000},
		OptimalCounts: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Methods:       []Method{MIDAS, Greedy, AggCluster},
		Trials:        3,
		Seed:          5,
		KnownRatio:    0.98,
	}
}

// Fig11Row is one (x, method) cell of a Figure 11 panel.
type Fig11Row struct {
	X       int // facts (11a/b) or optimal slices (11c/d)
	Method  Method
	F1      float64
	Seconds float64
}

// Fig11Result holds both sweeps.
type Fig11Result struct {
	VsFacts   []Fig11Row // Figures 11a (F1) and 11b (seconds)
	VsOptimal []Fig11Row // Figures 11c and 11d
}

// Fig11 runs the synthetic sweeps.
func Fig11(cfg Fig11Config) *Fig11Result {
	if len(cfg.Methods) == 0 {
		cfg.Methods = []Method{MIDAS, Greedy, AggCluster}
	}
	if cfg.Trials == 0 {
		cfg.Trials = 1
	}
	if cfg.KnownRatio == 0 {
		cfg.KnownRatio = 0.98
	}
	res := &Fig11Result{}
	for _, n := range cfg.FactCounts {
		p := datagen.DefaultSyntheticParams()
		p.Facts = n
		p.KnownRatio = cfg.KnownRatio
		res.VsFacts = append(res.VsFacts, fig11Cell(cfg, p, n)...)
	}
	for _, m := range cfg.OptimalCounts {
		p := datagen.DefaultSyntheticParams()
		p.Optimal = m
		p.KnownRatio = cfg.KnownRatio
		res.VsOptimal = append(res.VsOptimal, fig11Cell(cfg, p, m)...)
	}
	return res
}

func fig11Cell(cfg Fig11Config, p datagen.SyntheticParams, x int) []Fig11Row {
	sums := make(map[Method]*Fig11Row)
	for _, m := range cfg.Methods {
		sums[m] = &Fig11Row{X: x, Method: m}
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		p.Seed = cfg.Seed + int64(trial)
		syn := datagen.NewSynthetic(p)
		table := fact.Build(syn.Source, syn.Corpus.Space, syn.Triples(), syn.KB)
		silver := silverSets(syn.Optimal)
		for _, m := range cfg.Methods {
			start := time.Now()
			slices := m.RunTable(table, slice.DefaultCostModel())
			elapsed := time.Since(start).Seconds()
			pred := make([][]kb.Triple, len(slices))
			for i, s := range slices {
				pred[i] = s.FactSet(table)
			}
			score := eval.Score(pred, silver)
			sums[m].F1 += score.F1
			sums[m].Seconds += elapsed
		}
	}
	out := make([]Fig11Row, 0, len(cfg.Methods))
	for _, m := range cfg.Methods {
		r := sums[m]
		r.F1 /= float64(cfg.Trials)
		r.Seconds /= float64(cfg.Trials)
		out = append(out, *r)
	}
	return out
}
