package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// RenderFig3 prints the Figure 3-style qualitative table.
func RenderFig3(w io.Writer, rows []Fig3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Slice description\tWeb source\tRatio of new facts in the slice\tRatio of new facts in the web source\tProfit")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\thttp://%s\t%.0f%%\t%.0f%%\t%.1f\n",
			r.Description, r.Source, 100*r.SliceNewRatio, 100*r.SourceNewRatio, r.Profit)
	}
	tw.Flush()
}

// RenderFig7 prints the dataset-statistics table.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\t# of facts\t# of pred.\t# of URLs\tExisting KB")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\n", r.Dataset, r.Facts, r.Predicates, r.URLs, r.ExistingKB)
	}
	tw.Flush()
}

// RenderFig8 prints the silver-standard snapshot.
func RenderFig8(w io.Writer, rows []Fig8Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "URL\tDesired slices description")
	for _, r := range rows {
		desc := "No desired slice"
		if len(r.Descriptions) > 0 {
			desc = strings.Join(r.Descriptions, "; ")
		}
		fmt.Fprintf(tw, "%s\t%s\n", r.URL, desc)
	}
	tw.Flush()
}

// RenderFig9 prints the coverage sweep as three blocks (recall,
// precision, F-measure), one column per method — Figures 9b/9d/9f.
func RenderFig9(w io.Writer, res *Fig9Result) {
	methods := methodsOf(res.Rows)
	covs := coveragesOf(res.Rows)
	cell := make(map[string]Fig9Row)
	for _, r := range res.Rows {
		cell[fmt.Sprintf("%v|%s", r.Coverage, r.Method)] = r
	}
	for _, metric := range []string{"Recall", "Precision", "F-measure"} {
		fmt.Fprintf(w, "%s on %s by KB coverage:\n", metric, res.Dataset)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "Coverage")
		for _, m := range methods {
			fmt.Fprintf(tw, "\t%s", m)
		}
		fmt.Fprintln(tw)
		for _, cov := range covs {
			fmt.Fprintf(tw, "%.1f", cov)
			for _, m := range methods {
				r := cell[fmt.Sprintf("%v|%s", cov, m)]
				v := r.Score.Recall
				switch metric {
				case "Precision":
					v = r.Score.Precision
				case "F-measure":
					v = r.Score.F1
				}
				fmt.Fprintf(tw, "\t%.3f", v)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
}

// RenderFig9Curves prints the PR curves at one coverage (Figures
// 9a/9c/9e), sub-sampled to at most 12 points per method.
func RenderFig9Curves(w io.Writer, res *Fig9Result, coverage float64) {
	curves, ok := res.Curves[coverage]
	if !ok {
		fmt.Fprintf(w, "no curves at coverage %v\n", coverage)
		return
	}
	fmt.Fprintf(w, "Precision-recall on %s at coverage %.1f:\n", res.Dataset, coverage)
	var methods []Method
	for m := range curves {
		methods = append(methods, m)
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i] < methods[j] })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Method\tk\tRecall\tPrecision")
	for _, m := range methods {
		pts := curves[m]
		step := 1
		if len(pts) > 12 {
			step = (len(pts) + 11) / 12
		}
		for i := 0; i < len(pts); i += step {
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\n", m, pts[i].K, pts[i].Recall, pts[i].Precision)
		}
		if len(pts) > 0 && (len(pts)-1)%step != 0 {
			p := pts[len(pts)-1]
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\n", m, p.K, p.Recall, p.Precision)
		}
	}
	tw.Flush()
}

// RenderFig10 prints both panels of the Figure 10 experiment.
func RenderFig10(w io.Writer, res *Fig10Result) {
	fmt.Fprintf(w, "Top-k precision on %s (empty KB):\n", res.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "k")
	for _, p := range res.Precision {
		fmt.Fprintf(tw, "\t%s", p.Method)
	}
	fmt.Fprintln(tw)
	if len(res.Precision) > 0 {
		for i, k := range res.Precision[0].Ks {
			fmt.Fprintf(tw, "%d", k)
			for _, p := range res.Precision {
				fmt.Fprintf(tw, "\t%.3f", p.Precision[i])
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)

	fmt.Fprintf(w, "Execution time on %s by input ratio (seconds):\n", res.Dataset)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "ratio")
	for _, t := range res.Timing {
		fmt.Fprintf(tw, "\t%s", t.Method)
	}
	fmt.Fprintln(tw)
	if len(res.Timing) > 0 {
		for i, r := range res.Timing[0].Ratios {
			fmt.Fprintf(tw, "%.2f", r)
			for _, t := range res.Timing {
				fmt.Fprintf(tw, "\t%.3f", t.Seconds[i])
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// RenderFig11 prints the synthetic sweeps (accuracy + runtime).
func RenderFig11(w io.Writer, res *Fig11Result) {
	render := func(title, xlabel string, rows []Fig11Row) {
		fmt.Fprintln(w, title)
		methods := fig11MethodsOf(rows)
		xs := fig11XsOf(rows)
		cell := make(map[string]Fig11Row)
		for _, r := range rows {
			cell[fmt.Sprintf("%d|%s", r.X, r.Method)] = r
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, xlabel)
		for _, m := range methods {
			fmt.Fprintf(tw, "\t%s F1\t%s sec", m, m)
		}
		fmt.Fprintln(tw)
		for _, x := range xs {
			fmt.Fprintf(tw, "%d", x)
			for _, m := range methods {
				r := cell[fmt.Sprintf("%d|%s", x, m)]
				fmt.Fprintf(tw, "\t%.3f\t%.3f", r.F1, r.Seconds)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	render("Synthetic sweep vs. number of facts (Figures 11a/11b):", "# facts", res.VsFacts)
	render("Synthetic sweep vs. number of optimal slices (Figures 11c/11d):", "# optimal", res.VsOptimal)
}

// RenderAblation prints an ablation table.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Variant\tNodes\tRemoved\tInvalid\tSlices\tProfit\tSeconds")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f\t%.3f\n",
			r.Variant, r.NodesCreated, r.NodesRemoved, r.NodesInvalid, r.Slices, r.TotalProfit, r.Seconds)
	}
	tw.Flush()
}

func methodsOf(rows []Fig9Row) []Method {
	seen := make(map[Method]bool)
	var out []Method
	for _, r := range rows {
		if !seen[r.Method] {
			seen[r.Method] = true
			out = append(out, r.Method)
		}
	}
	return out
}

func coveragesOf(rows []Fig9Row) []float64 {
	seen := make(map[float64]bool)
	var out []float64
	for _, r := range rows {
		if !seen[r.Coverage] {
			seen[r.Coverage] = true
			out = append(out, r.Coverage)
		}
	}
	sort.Float64s(out)
	return out
}

func fig11MethodsOf(rows []Fig11Row) []Method {
	seen := make(map[Method]bool)
	var out []Method
	for _, r := range rows {
		if !seen[r.Method] {
			seen[r.Method] = true
			out = append(out, r.Method)
		}
	}
	return out
}

func fig11XsOf(rows []Fig11Row) []int {
	seen := make(map[int]bool)
	var out []int
	for _, r := range rows {
		if !seen[r.X] {
			seen[r.X] = true
			out = append(out, r.X)
		}
	}
	sort.Ints(out)
	return out
}
