package experiments_test

import (
	"bytes"
	"testing"

	"midas/internal/experiments"
)

// TestAnnotation: wrappers induced from MIDAS slices must be
// substantially better than wrappers induced from NAIVE's whole-source
// recommendations — the quantified form of the paper's "easy
// annotation" argument.
func TestAnnotation(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run")
	}
	rows := experiments.Annotation(7, 20, 20, 0)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	midas, naive := rows[0], rows[1]
	if midas.Method != experiments.MIDAS || naive.Method != experiments.Naive {
		t.Fatalf("unexpected order: %+v", rows)
	}
	if midas.F1 < 0.9 {
		t.Errorf("MIDAS wrapper F1 = %.3f, want ≥ 0.9 (homogeneous templates)", midas.F1)
	}
	if naive.F1 > midas.F1-0.1 {
		t.Errorf("NAIVE wrapper F1 = %.3f should trail MIDAS %.3f by ≥ 0.1", naive.F1, midas.F1)
	}
	if naive.Conflicts <= midas.Conflicts {
		t.Errorf("NAIVE slot conflicts %.1f should exceed MIDAS %.1f", naive.Conflicts, midas.Conflicts)
	}
	var buf bytes.Buffer
	experiments.RenderAnnotation(&buf, rows)
	t.Logf("\n%s", buf.String())
}
