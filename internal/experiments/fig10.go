package experiments

import (
	"sort"
	"time"

	"midas/internal/datagen"
	"midas/internal/eval"
	"midas/internal/fact"
	"midas/internal/slice"
	"midas/internal/source"
)

// Fig10Config drives the full-dataset experiments: top-k precision with
// oracle labeling (Figures 10a/10c) and execution time vs. input ratio
// (Figures 10b/10d). The KB is empty, as in the paper.
type Fig10Config struct {
	// Dataset is "reverb" or "nell".
	Dataset string
	// Scale shrinks/grows the generated corpus (1.0 ≈ minutes).
	Scale float64
	// Ks are the top-k cut points (paper: 10..100 for ReVerb, 10..80
	// for NELL).
	Ks []int
	// Ratios are the input ratios for the timing sweep.
	Ratios  []float64
	Methods []Method
	Seed    int64
	Workers int
}

// DefaultFig10Config mirrors the paper's ReVerb sweep at laptop scale.
func DefaultFig10Config(dataset string) Fig10Config {
	cfg := Fig10Config{
		Dataset: dataset,
		Scale:   0.5,
		Ks:      []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Ratios:  []float64{0.25, 0.5, 0.75, 1.0},
		Methods: AllMethods(),
		Seed:    11,
	}
	if dataset == "nell" {
		cfg.Ks = []int{10, 20, 30, 40, 50, 60, 70, 80}
	}
	return cfg
}

// Fig10Precision is one method's top-k precision series.
type Fig10Precision struct {
	Method    Method
	Ks        []int
	Precision []float64
	Returned  int
}

// Fig10Timing is one method's execution time series over input ratios.
type Fig10Timing struct {
	Method  Method
	Ratios  []float64
	Seconds []float64
}

// Fig10Result bundles both panels for one dataset.
type Fig10Result struct {
	Dataset   string
	Precision []Fig10Precision
	Timing    []Fig10Timing
}

// Fig10 runs the full-dataset evaluation.
func Fig10(cfg Fig10Config) *Fig10Result {
	if len(cfg.Methods) == 0 {
		cfg.Methods = AllMethods()
	}
	world := fullWorld(cfg.Dataset, cfg.Scale, cfg.Seed)
	cost := slice.DefaultCostModel()
	res := &Fig10Result{Dataset: cfg.Dataset}

	// Top-k precision with the labeling oracle on the full corpus,
	// empty KB (R_new is binary, as in the paper).
	oracle := &eval.Oracle{VerticalOf: world.VerticalOf, KB: nil, Seed: cfg.Seed}
	for _, m := range cfg.Methods {
		out := m.Run(world.Corpus, nil, cost, cfg.Workers)
		res.Precision = append(res.Precision, Fig10Precision{
			Method:    m,
			Ks:        cfg.Ks,
			Precision: eval.TopKPrecision(out.Slices, out.FactSets, oracle, cfg.Ks),
			Returned:  len(out.Slices),
		})
	}

	// Timing sweep: each ratio keeps the first ratio·N domains
	// (deterministic by sorted host), matching "the ratio of sources
	// considered by each algorithm".
	for _, m := range cfg.Methods {
		t := Fig10Timing{Method: m, Ratios: cfg.Ratios}
		for _, r := range cfg.Ratios {
			sub := subsetCorpus(world.Corpus, r)
			start := time.Now()
			m.Run(sub, nil, cost, cfg.Workers)
			t.Seconds = append(t.Seconds, time.Since(start).Seconds())
		}
		res.Timing = append(res.Timing, t)
	}
	return res
}

func fullWorld(dataset string, scale float64, seed int64) *datagen.World {
	p := datagen.FullParams{Scale: scale, Seed: seed}
	if dataset == "nell" {
		return datagen.NELLLike(p)
	}
	return datagen.ReVerbLike(p)
}

// subsetCorpus keeps the facts of the first ratio·N domains (sorted).
func subsetCorpus(c *fact.Corpus, ratio float64) *fact.Corpus {
	if ratio >= 1 {
		return c
	}
	domains := make(map[string]struct{})
	for _, e := range c.Facts {
		domains[source.Domain(source.Normalize(c.URLs.String(e.URL)))] = struct{}{}
	}
	sorted := make([]string, 0, len(domains))
	for d := range domains {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	keep := make(map[string]struct{})
	n := int(float64(len(sorted))*ratio + 0.5)
	for _, d := range sorted[:n] {
		keep[d] = struct{}{}
	}
	out := &fact.Corpus{Space: c.Space, URLs: c.URLs}
	for _, e := range c.Facts {
		d := source.Domain(source.Normalize(c.URLs.String(e.URL)))
		if _, ok := keep[d]; ok {
			out.Facts = append(out.Facts, e)
		}
	}
	return out
}
