package experiments

import (
	"midas/internal/datagen"
	"midas/internal/slice"
	"midas/internal/source"
)

// Fig3Row is one row of the Figure 3 qualitative table: a top slice
// suggested for augmenting the (simulated) Freebase, with the ratio of
// new facts inside the slice and inside its whole web source.
type Fig3Row struct {
	Description    string // vertical name from ground truth
	SliceProps     string // the slice's property description
	Source         string
	SliceNewRatio  float64
	SourceNewRatio float64
	Profit         float64
}

// Fig3 runs MIDAS over the KnowledgeVault-style corpus and reports the
// top slices (paper: the 5-6 highest-profit returns).
func Fig3(seed int64, top int, workers int) []Fig3Row {
	world := datagen.KnowledgeVaultSim(seed)
	cost := slice.DefaultCostModel()
	out := MIDAS.Run(world.Corpus, world.KB, cost, workers)

	// Per-domain new/total fact ratios.
	type counts struct{ total, fresh int }
	byDomain := make(map[string]*counts)
	for _, e := range world.Corpus.Facts {
		d := source.Domain(source.Normalize(world.Corpus.URLs.String(e.URL)))
		c := byDomain[d]
		if c == nil {
			c = &counts{}
			byDomain[d] = c
		}
		c.total++
		if !world.KB.Contains(e.Triple) {
			c.fresh++
		}
	}

	var rows []Fig3Row
	for i, s := range out.Slices {
		if i >= top {
			break
		}
		// Majority vertical of the slice's entities names the content.
		votes := make(map[string]int)
		for _, e := range s.Entities.Values() {
			votes[world.VerticalOf[e]]++
		}
		desc, best := "(mixed)", 0
		for v, n := range votes {
			if v != "" && n > best {
				desc, best = v, n
			}
		}
		row := Fig3Row{
			Description:   desc,
			SliceProps:    s.Description(world.Corpus.Space),
			Source:        s.Source,
			SliceNewRatio: float64(s.NewFacts) / float64(max(1, s.Facts)),
			Profit:        s.Profit,
		}
		if c := byDomain[source.Domain(s.Source)]; c != nil && c.total > 0 {
			row.SourceNewRatio = float64(c.fresh) / float64(c.total)
		}
		rows = append(rows, row)
	}
	return rows
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
