package binio_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"midas/internal/binio"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.Magic("TST1")
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Int(42)
	w.String("hello")
	w.String("")
	w.Bytes([]byte{0, 1, 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := binio.NewReader(&buf)
	r.Magic("TST1")
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("int = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("string = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty string = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{0, 1, 2}) {
		t.Errorf("bytes = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	r := binio.NewReader(strings.NewReader("XXXXrest"))
	r.Magic("TST1")
	if !errors.Is(r.Err(), binio.ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", r.Err())
	}
}

func TestTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.String("some payload")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := binio.NewReader(bytes.NewReader(data[:len(data)-3]))
	_ = r.String()
	if r.Err() == nil {
		t.Error("want error on truncated input")
	}
}

func TestLengthCap(t *testing.T) {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.Uvarint(1 << 50) // absurd length prefix
	w.Flush()
	r := binio.NewReader(&buf)
	r.Bytes()
	if !errors.Is(r.Err(), binio.ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for oversized length", r.Err())
	}
}

func TestNegativeInt(t *testing.T) {
	w := binio.NewWriter(&bytes.Buffer{})
	w.Int(-1)
	if w.Err() == nil {
		t.Error("want error for negative int")
	}
}

func TestErrorSticky(t *testing.T) {
	r := binio.NewReader(strings.NewReader(""))
	r.Uvarint() // EOF
	first := r.Err()
	if first == nil {
		t.Fatal("want error")
	}
	r.Uvarint()
	if r.Err() != first {
		t.Error("error not sticky")
	}
}

func TestQuickStrings(t *testing.T) {
	f := func(ss []string) bool {
		var buf bytes.Buffer
		w := binio.NewWriter(&buf)
		w.Int(len(ss))
		for _, s := range ss {
			w.String(s)
		}
		if w.Flush() != nil {
			return false
		}
		r := binio.NewReader(&buf)
		n := r.Int()
		if n != len(ss) {
			return false
		}
		for _, s := range ss {
			if r.String() != s {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
