// Package binio provides small helpers for length-prefixed,
// varint-encoded binary formats: a Writer and Reader that capture the
// first error and keep subsequent calls cheap, in the style of
// bufio + encoding/binary.
package binio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt reports structurally invalid input.
var ErrCorrupt = errors.New("binio: corrupt input")

// Writer accumulates varint-encoded values, capturing the first error.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

// Int writes a non-negative int as an unsigned varint.
func (w *Writer) Int(v int) {
	if v < 0 {
		w.fail(fmt.Errorf("binio: negative value %d", v))
		return
	}
	w.Uvarint(uint64(v))
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// Magic writes a fixed 4-byte tag.
func (w *Writer) Magic(tag string) {
	if w.err != nil {
		return
	}
	if len(tag) != 4 {
		w.fail(fmt.Errorf("binio: magic %q must be 4 bytes", tag))
		return
	}
	_, w.err = w.w.WriteString(tag)
}

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Err returns the first error.
func (w *Writer) Err() error { return w.err }

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Reader decodes values written by Writer, capturing the first error.
type Reader struct {
	r   *bufio.Reader
	err error
	// MaxBytes bounds a single length-prefixed string (default 64 MiB)
	// to keep corrupt lengths from exhausting memory.
	MaxBytes uint64
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), MaxBytes: 64 << 20}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail(err)
		return 0
	}
	return v
}

// Int reads a non-negative int.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if r.err == nil && v > uint64(int(^uint(0)>>1)) {
		r.fail(ErrCorrupt)
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte string.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > r.MaxBytes {
		r.fail(fmt.Errorf("%w: string length %d exceeds cap", ErrCorrupt, n))
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.fail(err)
		return nil
	}
	return buf
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Magic consumes and verifies a 4-byte tag.
func (r *Reader) Magic(tag string) {
	if r.err != nil {
		return
	}
	var buf [4]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		r.fail(err)
		return
	}
	if string(buf[:]) != tag {
		r.fail(fmt.Errorf("%w: bad magic %q, want %q", ErrCorrupt, buf, tag))
	}
}

// Err returns the first error.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}
