// Package rdf implements the subset of the W3C N-Triples and N-Quads
// line formats that knowledge-base dumps use. Knowledge bases are
// "massive collections of facts (RDF triples)" (the paper's opening
// line); this package lets the KB and extraction corpora round-trip
// through the standard interchange format instead of ad-hoc TSV.
//
// Supported terms: IRIs (<http://…>), blank nodes (_:label), and
// literals ("…", with \" \\ \n \r \t \uXXXX \UXXXXXXXX escapes,
// optional @lang tag or ^^<datatype> suffix). In N-Quads the fourth
// term names the graph; MIDAS uses it to carry the source page URL.
package rdf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Kind discriminates RDF term kinds.
type Kind int

// Term kinds.
const (
	IRI Kind = iota
	Blank
	Literal
)

// Term is one RDF term.
type Term struct {
	Kind Kind
	// Value is the IRI (without angle brackets), the blank-node label
	// (without "_:"), or the literal's lexical form (unescaped).
	Value string
	// Lang and Datatype annotate literals (at most one is set).
	Lang     string
	Datatype string
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
}

// Statement is one parsed line: a triple, plus Graph for N-Quads
// (zero Term when absent).
type Statement struct {
	S, P, O Term
	Graph   Term
	// HasGraph reports whether the line carried a fourth term.
	HasGraph bool
}

// SyntaxError reports a malformed line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("rdf: line %d: %s", e.Line, e.Msg) }

// Reader parses N-Triples / N-Quads streams line by line.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Next returns the next statement, io.EOF at end of stream, or a
// *SyntaxError. Blank lines and comment lines (#…) are skipped.
func (r *Reader) Next() (Statement, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		st, err := r.parseLine(line)
		if err != nil {
			return Statement{}, err
		}
		return st, nil
	}
	if err := r.sc.Err(); err != nil {
		return Statement{}, err
	}
	return Statement{}, io.EOF
}

func (r *Reader) fail(msg string, args ...interface{}) error {
	return &SyntaxError{Line: r.line, Msg: fmt.Sprintf(msg, args...)}
}

func (r *Reader) parseLine(line string) (Statement, error) {
	p := &parser{in: line}
	var st Statement
	var err error
	if st.S, err = p.term(); err != nil {
		return st, r.fail("subject: %v", err)
	}
	if st.S.Kind == Literal {
		return st, r.fail("subject must not be a literal")
	}
	p.ws()
	if st.P, err = p.term(); err != nil {
		return st, r.fail("predicate: %v", err)
	}
	if st.P.Kind != IRI {
		return st, r.fail("predicate must be an IRI")
	}
	p.ws()
	if st.O, err = p.term(); err != nil {
		return st, r.fail("object: %v", err)
	}
	p.ws()
	if !p.eof() && p.peek() != '.' {
		if st.Graph, err = p.term(); err != nil {
			return st, r.fail("graph: %v", err)
		}
		if st.Graph.Kind == Literal {
			return st, r.fail("graph must not be a literal")
		}
		st.HasGraph = true
		p.ws()
	}
	if p.eof() || p.peek() != '.' {
		return st, r.fail("missing terminating '.'")
	}
	p.pos++
	p.ws()
	if !p.eof() {
		return st, r.fail("trailing content after '.'")
	}
	return st, nil
}

// parser is a cursor over one line.
type parser struct {
	in  string
	pos int
}

func (p *parser) eof() bool  { return p.pos >= len(p.in) }
func (p *parser) peek() byte { return p.in[p.pos] }

func (p *parser) ws() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
		p.pos++
	}
}

func (p *parser) term() (Term, error) {
	if p.eof() {
		return Term{}, errors.New("unexpected end of line")
	}
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.peek())
	}
}

func (p *parser) iri() (Term, error) {
	end := strings.IndexByte(p.in[p.pos:], '>')
	if end < 0 {
		return Term{}, errors.New("unterminated IRI")
	}
	v := p.in[p.pos+1 : p.pos+end]
	if strings.ContainsAny(v, " \t\"<") {
		return Term{}, fmt.Errorf("invalid IRI %q", v)
	}
	p.pos += end + 1
	return Term{Kind: IRI, Value: v}, nil
}

func (p *parser) blank() (Term, error) {
	if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
		return Term{}, errors.New("malformed blank node")
	}
	start := p.pos + 2
	end := start
	for end < len(p.in) && p.in[end] != ' ' && p.in[end] != '\t' && p.in[end] != '.' {
		end++
	}
	if end == start {
		return Term{}, errors.New("empty blank-node label")
	}
	p.pos = end
	return Term{Kind: Blank, Value: p.in[start:end]}, nil
}

func (p *parser) literal() (Term, error) {
	p.pos++ // consume opening quote
	var sb strings.Builder
	for {
		if p.eof() {
			return Term{}, errors.New("unterminated literal")
		}
		c := p.peek()
		p.pos++
		switch c {
		case '"':
			return p.literalSuffix(sb.String())
		case '\\':
			if p.eof() {
				return Term{}, errors.New("truncated escape")
			}
			e := p.peek()
			p.pos++
			switch e {
			case 't':
				sb.WriteByte('\t')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			case 'u', 'U':
				n := 4
				if e == 'U' {
					n = 8
				}
				if p.pos+n > len(p.in) {
					return Term{}, errors.New("truncated unicode escape")
				}
				var code rune
				for i := 0; i < n; i++ {
					d := hexVal(p.in[p.pos+i])
					if d < 0 {
						return Term{}, errors.New("invalid unicode escape")
					}
					code = code<<4 | rune(d)
				}
				if !utf8.ValidRune(code) {
					return Term{}, errors.New("invalid code point in escape")
				}
				sb.WriteRune(code)
				p.pos += n
			default:
				return Term{}, fmt.Errorf("invalid escape \\%c", e)
			}
		default:
			sb.WriteByte(c)
		}
	}
}

func (p *parser) literalSuffix(value string) (Term, error) {
	t := Term{Kind: Literal, Value: value}
	if p.eof() {
		return t, nil
	}
	switch p.peek() {
	case '@':
		start := p.pos + 1
		end := start
		for end < len(p.in) && p.in[end] != ' ' && p.in[end] != '\t' {
			end++
		}
		if end == start {
			return t, errors.New("empty language tag")
		}
		t.Lang = p.in[start:end]
		p.pos = end
	case '^':
		if !strings.HasPrefix(p.in[p.pos:], "^^<") {
			return t, errors.New("malformed datatype suffix")
		}
		p.pos += 2
		dt, err := p.iri()
		if err != nil {
			return t, err
		}
		t.Datatype = dt.Value
	}
	return t, nil
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// Writer serializes statements.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one statement (as a quad when HasGraph is set).
func (w *Writer) Write(st Statement) error {
	if w.err != nil {
		return w.err
	}
	parts := []string{st.S.String(), st.P.String(), st.O.String()}
	if st.HasGraph {
		parts = append(parts, st.Graph.String())
	}
	_, w.err = fmt.Fprintf(w.w, "%s .\n", strings.Join(parts, " "))
	return w.err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func escapeLiteral(s string) string {
	var sb strings.Builder
	// Byte-wise: escaping runs per byte so literals that are not valid
	// UTF-8 (which a lenient parse can produce) round-trip unchanged
	// instead of being replaced with U+FFFD.
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}
