package rdf_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"midas/internal/fact"
	"midas/internal/kb"
	"midas/internal/rdf"
)

func parseAll(t *testing.T, in string) []rdf.Statement {
	t.Helper()
	r := rdf.NewReader(strings.NewReader(in))
	var out []rdf.Statement
	for {
		st, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		out = append(out, st)
	}
}

func TestParseTriples(t *testing.T) {
	in := `
# a comment
<http://ex.org/atlas> <http://ex.org/sponsor> "NASA" .
<http://ex.org/atlas> <http://ex.org/started> "1957"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://ex.org/label> "ein \"Zitat\"\nzweite Zeile"@de .
<http://ex.org/a> <http://ex.org/sameAs> <http://ex.org/b> .
`
	sts := parseAll(t, in)
	if len(sts) != 4 {
		t.Fatalf("statements = %d, want 4", len(sts))
	}
	if sts[0].S.Value != "http://ex.org/atlas" || sts[0].O.Value != "NASA" || sts[0].O.Kind != rdf.Literal {
		t.Errorf("st0 = %+v", sts[0])
	}
	if sts[1].O.Datatype != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Errorf("datatype = %q", sts[1].O.Datatype)
	}
	if sts[2].S.Kind != rdf.Blank || sts[2].S.Value != "b1" {
		t.Errorf("blank subject = %+v", sts[2].S)
	}
	if sts[2].O.Value != "ein \"Zitat\"\nzweite Zeile" || sts[2].O.Lang != "de" {
		t.Errorf("literal = %+v", sts[2].O)
	}
	if sts[3].O.Kind != rdf.IRI {
		t.Errorf("object kind = %v", sts[3].O.Kind)
	}
}

func TestParseQuads(t *testing.T) {
	in := `<http://ex.org/s> <http://ex.org/p> "o" <http://page.example/1.htm> .`
	sts := parseAll(t, in)
	if len(sts) != 1 || !sts[0].HasGraph || sts[0].Graph.Value != "http://page.example/1.htm" {
		t.Fatalf("quad = %+v", sts[0])
	}
}

func TestParseUnicodeEscapes(t *testing.T) {
	in := `<http://e/s> <http://e/p> "café \U0001F680" .`
	sts := parseAll(t, in)
	if got := sts[0].O.Value; got != "café 🚀" {
		t.Errorf("unescaped = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<http://e/s> <http://e/p> "unterminated .`,
		`<http://e/s> <http://e/p> "o"`,                    // missing dot
		`"literal" <http://e/p> "o" .`,                     // literal subject
		`<http://e/s> _:b "o" .`,                           // blank predicate
		`<http://e/s> <http://e/p> "bad \q escape" .`,      // invalid escape
		`<http://e/s> <http://e/p> "o" . trailing`,         // trailing junk
		`<http://e/s <http://e/p> "o" .`,                   // unterminated IRI
		`<http://e/s> <http://e/p> "o" "graph-literal" .`,  // literal graph
		`<http://e/s> <http://e/p> "bad \u12ZZ unicode" .`, // bad hex
	}
	for _, in := range cases {
		r := rdf.NewReader(strings.NewReader(in))
		_, err := r.Next()
		var syn *rdf.SyntaxError
		if !errors.As(err, &syn) {
			t.Errorf("input %q: err = %v, want SyntaxError", in, err)
		}
	}
}

// TestStatementRoundTrip property: write → parse is the identity for
// random terms, including escape-heavy literals.
func TestStatementRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mkLit := func() rdf.Term {
			chars := []rune{'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', 'é', '🚀'}
			var sb strings.Builder
			for i := 0; i < rng.Intn(12); i++ {
				sb.WriteRune(chars[rng.Intn(len(chars))])
			}
			term := rdf.Term{Kind: rdf.Literal, Value: sb.String()}
			switch rng.Intn(3) {
			case 1:
				term.Lang = "en"
			case 2:
				term.Datatype = "http://www.w3.org/2001/XMLSchema#string"
			}
			return term
		}
		st := rdf.Statement{
			S: rdf.Term{Kind: rdf.IRI, Value: fmt.Sprintf("http://ex.org/s%d", rng.Intn(100))},
			P: rdf.Term{Kind: rdf.IRI, Value: fmt.Sprintf("http://ex.org/p%d", rng.Intn(10))},
			O: mkLit(),
		}
		if rng.Intn(2) == 0 {
			st.Graph = rdf.Term{Kind: rdf.IRI, Value: "http://g.example/x"}
			st.HasGraph = true
		}
		var buf bytes.Buffer
		w := rdf.NewWriter(&buf)
		if w.Write(st) != nil || w.Flush() != nil {
			return false
		}
		r := rdf.NewReader(&buf)
		got, err := r.Next()
		if err != nil {
			return false
		}
		return got.S == st.S && got.P == st.P && got.O == st.O &&
			got.HasGraph == st.HasGraph && got.Graph == st.Graph
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestKBRoundTrip: arbitrary KB strings (spaces, quotes) survive
// KB → N-Triples → KB via the urn:midas: wrapping.
func TestKBRoundTrip(t *testing.T) {
	k := kb.New(nil)
	k.AddStrings("Project Mercury", "category", "space_program")
	k.AddStrings("weird \"subject\"\twith tabs", "pred with space", "value with \\backslash")
	k.AddStrings("http://already.iri/x", "http://pred.iri/p", "plain")

	var buf bytes.Buffer
	if err := rdf.SaveKB(&buf, k); err != nil {
		t.Fatal(err)
	}
	k2 := kb.New(nil)
	n, err := rdf.LoadKB(&buf, k2)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for _, tr := range [][3]string{
		{"Project Mercury", "category", "space_program"},
		{"weird \"subject\"\twith tabs", "pred with space", "value with \\backslash"},
		{"http://already.iri/x", "http://pred.iri/p", "plain"},
	} {
		if !k2.ContainsStrings(tr[0], tr[1], tr[2]) {
			t.Errorf("lost %q", tr)
		}
	}
}

// TestCorpusRoundTrip: corpus → N-Quads → corpus preserves facts and
// source URLs (confidence is reset to the loader default).
func TestCorpusRoundTrip(t *testing.T) {
	c := fact.NewCorpus(nil)
	c.Add(fact.Fact{Subject: "Atlas", Predicate: "sponsor", Object: "NASA", Confidence: 0.9, URL: "http://space.skyrocket.de/doc_lau_fam/atlas.htm"})
	c.Add(fact.Fact{Subject: "a b", Predicate: "p q", Object: "x y", Confidence: 0.8, URL: "http://e.com/p 1.htm"})

	var buf bytes.Buffer
	if err := rdf.SaveCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2 := fact.NewCorpus(nil)
	n, err := rdf.LoadCorpus(&buf, c2, 0.85)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	s, p, o := c2.Space.StringTriple(c2.Facts[1].Triple)
	if s != "a b" || p != "p q" || o != "x y" {
		t.Errorf("fact 1 = %q %q %q", s, p, o)
	}
	if got := c2.URLs.String(c2.Facts[1].URL); got != "http://e.com/p 1.htm" {
		t.Errorf("url = %q", got)
	}
	if c2.Facts[0].Conf != 0.85 {
		t.Errorf("conf = %f, want loader default", c2.Facts[0].Conf)
	}
}

func TestStats(t *testing.T) {
	in := `<http://e/s> <http://e/p> "1" <http://g1> .
<http://e/s> <http://e/p> "2" <http://g1> .
<http://e/s> <http://e/p> "3" <http://g2> .
<http://e/s> <http://e/p> "4" .
`
	n, graphs, err := rdf.Stats(strings.NewReader(in))
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if graphs["http://g1"] != 2 || graphs["http://g2"] != 1 {
		t.Errorf("graphs = %v", graphs)
	}
}
