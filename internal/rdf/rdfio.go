package rdf

import (
	"io"
	"strings"

	"midas/internal/fact"
	"midas/internal/kb"
)

// The KB stores plain strings; RDF requires subjects and predicates to
// be IRIs. Strings that are not IRI-safe are wrapped as
// "urn:midas:<percent-escaped>" on save and unwrapped on load, so
// KB → N-Triples → KB is the identity. Objects are written as plain
// literals (their lexical form is the stored string either way).

const urnPrefix = "urn:midas:"

func iriSafe(s string) bool {
	if s == "" {
		return false
	}
	return !strings.ContainsAny(s, " \t\n\"<>\\")
}

func encodeIRI(s string) Term {
	if iriSafe(s) {
		return Term{Kind: IRI, Value: s}
	}
	return Term{Kind: IRI, Value: urnPrefix + escapePct(s)}
}

func decodeTerm(t Term) string {
	if t.Kind == IRI && strings.HasPrefix(t.Value, urnPrefix) {
		return unescapePct(strings.TrimPrefix(t.Value, urnPrefix))
	}
	if t.Kind == Blank {
		return "_:" + t.Value
	}
	return t.Value
}

const hexDigits = "0123456789ABCDEF"

func escapePct(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '%' || c == '"' || c == '<' || c == '>' || c == '\\' || c == 0x7f {
			sb.WriteByte('%')
			sb.WriteByte(hexDigits[c>>4])
			sb.WriteByte(hexDigits[c&0xf])
		} else {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

func unescapePct(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			hi, lo := hexVal(s[i+1]), hexVal(s[i+2])
			if hi >= 0 && lo >= 0 {
				sb.WriteByte(byte(hi<<4 | lo))
				i += 2
				continue
			}
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// SaveKB writes the KB as N-Triples.
func SaveKB(w io.Writer, src *kb.KB) error {
	nw := NewWriter(w)
	for _, t := range src.Triples() {
		s, p, o := src.Space().StringTriple(t)
		st := Statement{
			S: encodeIRI(s),
			P: encodeIRI(p),
			O: Term{Kind: Literal, Value: o},
		}
		if err := nw.Write(st); err != nil {
			return err
		}
	}
	return nw.Flush()
}

// LoadKB reads N-Triples (graph terms, if present, are ignored) into
// dst, returning the number of new facts.
func LoadKB(r io.Reader, dst *kb.KB) (int, error) {
	rd := NewReader(r)
	added := 0
	for {
		st, err := rd.Next()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, err
		}
		if dst.AddStrings(decodeTerm(st.S), decodeTerm(st.P), decodeTerm(st.O)) {
			added++
		}
	}
}

// SaveCorpus writes the corpus as N-Quads, with each fact's source page
// URL as the graph term. Confidence is not representable in N-Quads and
// is dropped; LoadCorpus assigns the default it is given.
func SaveCorpus(w io.Writer, src *fact.Corpus) error {
	nw := NewWriter(w)
	for _, e := range src.Facts {
		s, p, o := src.Space.StringTriple(e.Triple)
		st := Statement{
			S:        encodeIRI(s),
			P:        encodeIRI(p),
			O:        Term{Kind: Literal, Value: o},
			Graph:    encodeIRI(src.URLs.String(e.URL)),
			HasGraph: true,
		}
		if err := nw.Write(st); err != nil {
			return err
		}
	}
	return nw.Flush()
}

// LoadCorpus reads N-Triples or N-Quads into dst. Graph terms become
// source URLs (statements without one get an empty URL and are skipped
// by the framework); every fact receives defaultConf.
func LoadCorpus(r io.Reader, dst *fact.Corpus, defaultConf float64) (int, error) {
	rd := NewReader(r)
	n := 0
	for {
		st, err := rd.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		url := ""
		if st.HasGraph {
			url = decodeTerm(st.Graph)
		}
		dst.Add(fact.Fact{
			Subject:    decodeTerm(st.S),
			Predicate:  decodeTerm(st.P),
			Object:     decodeTerm(st.O),
			Confidence: defaultConf,
			URL:        url,
		})
		n++
	}
}

// Stats summarizes a stream without materializing it (used by CLIs for
// quick inspection).
func Stats(r io.Reader) (statements int, graphs map[string]int, err error) {
	rd := NewReader(r)
	graphs = make(map[string]int)
	for {
		st, e := rd.Next()
		if e == io.EOF {
			return statements, graphs, nil
		}
		if e != nil {
			return statements, graphs, e
		}
		statements++
		if st.HasGraph {
			graphs[decodeTerm(st.Graph)]++
		}
	}
}
