package rdf_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"midas/internal/rdf"
)

// FuzzParser: the reader must never panic, and anything it accepts must
// survive a write → re-parse round trip.
func FuzzParser(f *testing.F) {
	seeds := []string{
		`<http://e/s> <http://e/p> "o" .`,
		`<http://e/s> <http://e/p> <http://e/o> .`,
		`_:b1 <http://e/p> "x"@en .`,
		`<http://e/s> <http://e/p> "1"^^<http://w3/int> <http://g> .`,
		`# comment`,
		``,
		`<s> <p> "esc \" \\ \n \t A \U0001F680" .`,
		`<s> <p> "unterminated`,
		`<s> <p> .`,
		`malformed`,
		"<s>\t<p>\t\"tabs\" .",
		`<s> <p> "trail" . junk`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		r := rdf.NewReader(strings.NewReader(input))
		var parsed []rdf.Statement
		for {
			st, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // rejection is fine; panics are not
			}
			parsed = append(parsed, st)
			if len(parsed) > 1000 {
				break
			}
		}
		// Round trip whatever was accepted.
		var buf bytes.Buffer
		w := rdf.NewWriter(&buf)
		for _, st := range parsed {
			if err := w.Write(st); err != nil {
				t.Fatalf("write accepted statement: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2 := rdf.NewReader(&buf)
		for i := range parsed {
			got, err := r2.Next()
			if err != nil {
				t.Fatalf("re-parse statement %d: %v", i, err)
			}
			if got.S != parsed[i].S || got.P != parsed[i].P || got.O != parsed[i].O ||
				got.HasGraph != parsed[i].HasGraph || got.Graph != parsed[i].Graph {
				t.Fatalf("round trip changed statement %d:\n%+v\n%+v", i, parsed[i], got)
			}
		}
	})
}
