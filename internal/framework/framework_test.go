package framework_test

import (
	"fmt"
	"math"
	"testing"

	"midas/internal/baselines"
	"midas/internal/core"
	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/kb"
	"midas/internal/slice"
)

// exampleCorpus rebuilds the paper's running example (Figure 2) and the
// Freebase-like KB holding t1–t5, t9, t10.
func exampleCorpus() (*fact.Corpus, *kb.KB) {
	type row struct {
		s, p, o, url string
		inKB         bool
	}
	rows := []row{
		{"Project Mercury", "category", "space_program", "http://space.skyrocket.de/doc_sat/mercury-history.htm", true},
		{"Project Mercury", "started", "1959", "http://space.skyrocket.de/doc_sat/mercury-history.htm", true},
		{"Project Mercury", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/mercury-history.htm", true},
		{"Project Gemini", "category", "space_program", "http://space.skyrocket.de/doc_sat/gemini-history.htm", true},
		{"Project Gemini", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/gemini-history.htm", true},
		{"Atlas", "category", "rocket_family", "http://space.skyrocket.de/doc_lau_fam/atlas.htm", false},
		{"Atlas", "sponsor", "NASA", "http://space.skyrocket.de/doc_lau_fam/atlas.htm", false},
		{"Atlas", "started", "1957", "http://space.skyrocket.de/doc_lau_fam/atlas.htm", false},
		{"Apollo program", "category", "space_program", "http://space.skyrocket.de/doc_sat/apollo-history.htm", true},
		{"Apollo program", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/apollo-history.htm", true},
		{"Castor-4", "category", "rocket_family", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm", false},
		{"Castor-4", "started", "1971", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm", false},
		{"Castor-4", "sponsor", "NASA", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm", false},
	}
	corpus := fact.NewCorpus(nil)
	existing := kb.New(corpus.Space)
	for _, r := range rows {
		corpus.Add(fact.Fact{Subject: r.s, Predicate: r.p, Object: r.o, Confidence: 0.9, URL: r.url})
		if r.inKB {
			existing.AddStrings(r.s, r.p, r.o)
		}
	}
	return corpus, existing
}

func exampleFrameworkOpts() framework.Options {
	return framework.Options{
		Cost: slice.ExampleCostModel(),
		Core: core.Options{Cost: slice.ExampleCostModel()},
	}
}

// TestExample16 replays the two-round walkthrough of Example 16: the
// framework must report exactly one slice, "rocket families sponsored by
// NASA", attached to the sub-domain space.skyrocket.de/doc_lau_fam (not
// to the individual pages, and not to the whole domain whose larger
// crawl cost makes it slightly less profitable).
func TestExample16(t *testing.T) {
	corpus, existing := exampleCorpus()
	out := framework.Run(corpus, existing, exampleFrameworkOpts())

	if len(out.Slices) != 1 {
		for _, s := range out.Slices {
			t.Logf("slice %q at %s profit %.3f", s.Description(corpus.Space), s.Source, s.Profit)
		}
		t.Fatalf("want 1 slice, got %d", len(out.Slices))
	}
	s := out.Slices[0]
	if got, want := s.Source, "space.skyrocket.de/doc_lau_fam"; got != want {
		t.Errorf("source = %q, want %q", got, want)
	}
	if got, want := s.Description(corpus.Space), "category = rocket_family AND sponsor = NASA"; got != want {
		t.Errorf("description = %q, want %q", got, want)
	}
	if s.NewFacts != 6 || s.Facts != 6 {
		t.Errorf("facts/new = %d/%d, want 6/6", s.Facts, s.NewFacts)
	}
	// At the doc_lau_fam granularity |T_W| = 6, so f = 5.4−1−0.06−0.006.
	if want := 4.334; math.Abs(s.Profit-want) > 5e-4 {
		t.Errorf("profit = %.4f, want %.4f", s.Profit, want)
	}
	// Rounds: pages (depth 3), sub-domains (depth 2), domain (depth 1).
	if out.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", out.Rounds)
	}
	// 5 pages + 2 sub-domains + 1 domain.
	if out.SourcesProcessed != 8 {
		t.Errorf("sources processed = %d, want 8", out.SourcesProcessed)
	}
}

// TestFrameworkBeatsFlatSweep: the naive strategy of Section III-B's
// opening (run MIDASalg on every granularity independently) reports
// redundant overlapping slices; the framework must consolidate them so
// that no reported slice's facts are contained in another's.
func TestFrameworkConsolidatesRedundancy(t *testing.T) {
	corpus, existing := exampleCorpus()
	out := framework.Run(corpus, existing, exampleFrameworkOpts())

	for i, a := range out.Slices {
		for j, b := range out.Slices {
			if i == j {
				continue
			}
			if contains(a.Entities.Values(), b.Entities.Values()) && a.Source == b.Source {
				t.Errorf("slice %d is contained in slice %d at the same source", j, i)
			}
		}
	}
}

func contains(sup, sub []int32) bool {
	set := make(map[int32]struct{}, len(sup))
	for _, e := range sup {
		set[e] = struct{}{}
	}
	for _, e := range sub {
		if _, ok := set[e]; !ok {
			return false
		}
	}
	return true
}

// TestFrameworkEmptyCorpus degenerate input.
func TestFrameworkEmptyCorpus(t *testing.T) {
	corpus := fact.NewCorpus(nil)
	out := framework.Run(corpus, nil, exampleFrameworkOpts())
	if len(out.Slices) != 0 || out.Rounds != 0 {
		t.Errorf("want empty output, got %d slices %d rounds", len(out.Slices), out.Rounds)
	}
}

// TestFrameworkWithBaselineDetectors: the framework must accept the
// alternative detection algorithms (Section III-B closing remark).
func TestFrameworkWithBaselineDetectors(t *testing.T) {
	corpus, existing := exampleCorpus()
	cost := slice.ExampleCostModel()

	greedyOut := framework.Run(corpus, existing, framework.Options{
		Cost:   cost,
		Detect: baselines.GreedyDetector(cost),
	})
	if len(greedyOut.Slices) == 0 {
		t.Error("greedy under framework found no slices")
	}

	naiveOut := framework.Run(corpus, existing, framework.Options{
		Cost:   cost,
		Detect: baselines.NaiveDetector(),
	})
	if len(naiveOut.Slices) == 0 {
		t.Error("naive under framework found no slices")
	}

	aggOut := framework.Run(corpus, existing, framework.Options{
		Cost:   cost,
		Detect: baselines.AggClusterDetector(cost),
	})
	if len(aggOut.Slices) == 0 {
		t.Error("aggcluster under framework found no slices")
	}
	// AGGCLUSTER on this tiny example should also find the rocket
	// families slice somewhere in the hierarchy.
	found := false
	for _, s := range aggOut.Slices {
		if s.Description(corpus.Space) == "category = rocket_family AND sponsor = NASA" ||
			s.NewFacts == 6 {
			found = true
		}
	}
	if !found {
		t.Error("aggcluster did not recover the rocket-family content")
	}
}

// TestFrameworkDeterminism: repeated runs must produce identical output
// despite the worker pool.
func TestFrameworkDeterminism(t *testing.T) {
	corpus, existing := exampleCorpus()
	a := framework.Run(corpus, existing, exampleFrameworkOpts())
	for i := 0; i < 5; i++ {
		b := framework.Run(corpus, existing, exampleFrameworkOpts())
		if len(a.Slices) != len(b.Slices) {
			t.Fatalf("run %d: slice count changed: %d vs %d", i, len(a.Slices), len(b.Slices))
		}
		for j := range a.Slices {
			if a.Slices[j].Source != b.Slices[j].Source || a.Slices[j].Profit != b.Slices[j].Profit {
				t.Fatalf("run %d: slice %d differs", i, j)
			}
		}
	}
}

// TestConsolidationChildrenWin constructs the opposite case from
// Example 16: the parent-granularity slice drags along a huge block of
// already-known entities (de-duplication cost), so the children's
// slices must survive consolidation and the parent must be pruned.
func TestConsolidationChildrenWin(t *testing.T) {
	corpus := fact.NewCorpus(nil)
	existing := kb.New(corpus.Space)

	addEntity := func(sub, url string, known bool) {
		for f := 0; f < 2; f++ {
			tr := corpus.Space.Intern(sub, fmt.Sprintf("p%d", f), "widget-v")
			corpus.AddTriple(tr, corpus.URLs.Put(url), 0.9)
			if known {
				existing.Add(tr)
			}
		}
	}
	// Two fresh sub-domains, 15 entities each.
	for i := 0; i < 15; i++ {
		addEntity(fmt.Sprintf("fresh-a-%d", i), fmt.Sprintf("http://big.example.com/sub1/e%d.htm", i), false)
		addEntity(fmt.Sprintf("fresh-b-%d", i), fmt.Sprintf("http://big.example.com/sub2/e%d.htm", i), false)
	}
	// One huge known sub-domain: 1000 entities sharing the same
	// properties, already in the KB.
	for i := 0; i < 1000; i++ {
		addEntity(fmt.Sprintf("known-%d", i), fmt.Sprintf("http://big.example.com/sub3/e%d.htm", i), true)
	}

	out := framework.Run(corpus, existing, framework.Options{})
	if len(out.Slices) != 2 {
		for _, s := range out.Slices {
			t.Logf("slice @ %s new=%d facts=%d profit=%.2f", s.Source, s.NewFacts, s.Facts, s.Profit)
		}
		t.Fatalf("want the 2 sub-domain slices, got %d", len(out.Slices))
	}
	for _, s := range out.Slices {
		if s.Source != "big.example.com/sub1" && s.Source != "big.example.com/sub2" {
			t.Errorf("slice at %q; the domain-level slice should have been pruned", s.Source)
		}
		if s.NewFacts != 30 {
			t.Errorf("slice new facts = %d, want 30", s.NewFacts)
		}
	}
}
