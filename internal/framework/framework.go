// Package framework implements the highly-parallelizable multi-source
// pipeline of Section III-B: shard → detect → consolidate, iterated up
// the URL hierarchy.
//
// Each round processes the deepest unprocessed web sources. The facts of
// a source and the slices already detected in its children are sharded
// by the one-level-coarser parent URL; the detector (MIDASalg by
// default, but the phase is pluggable and the baselines run under the
// same framework) re-runs at the parent granularity seeded with the
// child slices; consolidation then compares parent slices against the
// child slices they cover and keeps whichever side yields higher profit.
// Surviving slices propagate upward; slices surviving at the domain
// level are the framework's output.
//
// The paper runs this topology on MapReduce; here each round's shards
// are dispatched to a local worker pool, which preserves the
// communication structure (keyed sharding, independent detection per
// key) at laptop scale.
package framework

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"midas/internal/core"
	"midas/internal/dict"
	"midas/internal/fact"
	"midas/internal/hierarchy"
	"midas/internal/kb"
	"midas/internal/obs"
	"midas/internal/slice"
	"midas/internal/source"
)

// Detector runs slice detection over one web source's fact table, seeded
// with the slices detected in its children (seeds hold row indexes into
// the table). Implementations must be safe for concurrent use.
type Detector func(table *fact.Table, seeds []hierarchy.Seed) []*slice.Slice

// Options configures a framework run.
type Options struct {
	// Cost is the profit model used for consolidation; zero means the
	// paper's defaults. It should match the detector's model.
	Cost slice.CostModel
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Detect is the detection phase; nil means MIDASalg with Core.
	Detect Detector
	// Core configures the default MIDASalg detector.
	Core core.Options
	// Obs receives run metrics: per-round shard counts and timings,
	// worker utilization, consolidation keep/drop tallies, and the
	// per-source metrics of the packages underneath. nil falls back to
	// the process-wide obs.Default().
	Obs *obs.Registry
	// Trace receives run spans (the whole run, each hierarchy round,
	// each source's shard with its detect/consolidate phases), exported
	// as Chrome trace-event JSON via the binaries' -trace flag. nil
	// falls back to obs.DefaultTracer(), which is itself nil (tracing
	// disabled, zero overhead) unless a binary enabled it.
	Trace *obs.Tracer
	// Prior is the reusable state of the previous run over the same
	// (append-only) corpus lineage, as returned in Output.NextPrior.
	// Sources whose leaf facts, children, and newness are unchanged skip
	// table building and detection and feed their cached slices straight
	// into consolidation. nil runs from scratch. Prior is only valid
	// when the run's options (cost model, detector, core settings) match
	// the run that produced it.
	Prior *Prior
	// Delta lists the triples added to the KB since Prior was captured
	// (i.e. since the KB was at Prior.Epoch). It must be complete — a
	// caller that cannot enumerate every triple added in between must
	// pass Prior == nil instead. An empty Delta with a non-nil Prior
	// asserts the KB's answer set is unchanged since Prior.Epoch.
	Delta []kb.Triple
}

// Prior carries the per-source state of a completed framework run:
// each processed source's fact table and consolidated surviving slices,
// keyed by the source's leaf-fact fingerprint, with newness annotations
// valid for the KB at Epoch. It is produced by RunContext
// (Output.NextPrior) and consumed opaquely via Options.Prior.
type Prior struct {
	// Epoch is the KB epoch (kb.KB.Epoch) the run's newness
	// annotations were computed against.
	Epoch   uint64
	sources map[string]*sourceState
}

// NumSources returns the number of per-source entries retained.
func (p *Prior) NumSources() int { return len(p.sources) }

// sourceState is one source's cached results. leafFP fingerprints the
// source's own (leaf) triples in corpus order — 0 for a source that had
// none and exists only as a parent of deeper sources.
type sourceState struct {
	leafFP    uint64
	table     *fact.Table
	surviving []scored
}

// reusePlan describes how much of the prior run one source may reuse
// this round. The zero value means none: rebuild the table, re-detect,
// re-consolidate.
type reusePlan struct {
	// state, when non-nil, proves the source's table structure is
	// unchanged: its leaf fingerprint matches and every child's table
	// was itself reused — build/merge can be skipped.
	state *sourceState
	// reannotate is set when a Delta triple appears in the table: the
	// structure stands but the newness bits must be recomputed against
	// the grown KB.
	reannotate bool
	// full short-circuits the source entirely: table clean, newness
	// untouched by Delta, and every child's surviving slices identical
	// to the prior run — so detection and consolidation would reproduce
	// the cached surviving slices exactly.
	full bool
}

// planReuse evaluates the reuse ladder for one source. Children can
// only be appended to (the corpus is append-only), so "every current
// child reused its table" implies the child set is exactly the prior
// run's.
func planReuse(prior *Prior, src string, pe *pendingEntry, leafFP uint64, delta []kb.Triple) reusePlan {
	if prior == nil {
		return reusePlan{}
	}
	st := prior.sources[src]
	if st == nil || st.leafFP != leafFP {
		return reusePlan{}
	}
	childrenSame := true
	for _, c := range pe.children {
		if !c.tableReused {
			return reusePlan{}
		}
		if !c.survivingSame {
			childrenSame = false
		}
	}
	annValid := true
	for _, t := range delta {
		if st.table.ContainsFact(t) {
			annValid = false
			break
		}
	}
	return reusePlan{state: st, reannotate: !annValid, full: annValid && childrenSame}
}

func (o Options) cost() slice.CostModel {
	if o.Cost == (slice.CostModel{}) {
		return slice.DefaultCostModel()
	}
	return o.Cost
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// detectFunc is the internal detection entry point: a Detector plus the
// context that carries the current span, so the default MIDASalg path
// can parent its hierarchy-build and traversal spans to the source's
// shard span. Custom Detectors keep the public two-argument signature.
type detectFunc func(ctx context.Context, table *fact.Table, seeds []hierarchy.Seed) []*slice.Slice

// detector builds the detection entry point. pool is the run's shared
// worker budget: the default MIDASalg detector hands it to the lattice
// builder (core.Options.WorkerPool), so within-source parallelism only
// fans out over tokens the source-level dispatch isn't using.
func (o Options) detector(pool *hierarchy.Pool) detectFunc {
	if o.Detect != nil {
		return func(_ context.Context, table *fact.Table, seeds []hierarchy.Seed) []*slice.Slice {
			return o.Detect(table, seeds)
		}
	}
	copts := o.Core
	if copts.Cost == (slice.CostModel{}) {
		copts.Cost = o.cost()
	}
	if copts.Obs == nil {
		copts.Obs = o.Obs
	}
	if copts.WorkerPool == nil {
		copts.WorkerPool = pool
		if copts.Workers == 0 {
			copts.Workers = o.workers()
		}
	}
	return func(ctx context.Context, table *fact.Table, seeds []hierarchy.Seed) []*slice.Slice {
		return core.DiscoverSeededContext(ctx, table, seeds, copts).Slices
	}
}

// Output is the result of a framework run.
type Output struct {
	// Slices are the surviving slices across all sources, sorted by
	// decreasing profit.
	Slices []*slice.Slice
	// FactSets holds each slice's materialized fact set (sorted),
	// index-aligned with Slices; the evaluation harness matches slices
	// by fact-set Jaccard similarity.
	FactSets [][]kb.Triple
	// Rounds is the number of hierarchy levels processed.
	Rounds int
	// SourcesProcessed counts detector invocations (one per web source
	// at every granularity that had facts or child slices). Sources
	// answered from Prior do not count; see SourcesReused.
	SourcesProcessed int
	// SourcesReused counts sources whose detection was skipped entirely
	// because the prior run's surviving slices were proven still valid.
	SourcesReused int
	// NextPrior is the reusable state of this run, to feed into the next
	// run's Options.Prior. It is nil when the run ended early (context
	// cancellation leaves the hierarchy partially processed).
	NextPrior *Prior
	// Levels reports per-round effort, deepest level first.
	Levels []LevelStat
}

// LevelStat is the per-hierarchy-level effort breakdown of a run.
type LevelStat struct {
	// Depth is the URL-hierarchy depth processed this round (1 = domain).
	Depth int
	// Sources is the number of shards (web sources) detected.
	Sources int
	// Slices is the number of slices surviving this round's
	// consolidation.
	Slices int
	// Reused is how many of Sources were answered from the prior run
	// without invoking the detector.
	Reused int
	// Seconds is the wall time of the round (shard + detect +
	// consolidate).
	Seconds float64
}

// scored couples a slice with its materialized fact set and the fact
// count of its origin source, both needed for consolidation.
type scored struct {
	sl          *slice.Slice
	facts       []kb.Triple
	sourceTotal int
}

// item is a processed web source moving up the hierarchy. The two
// reuse flags carry provenance to the parent's planReuse: tableReused
// asserts the table (rows and newness bits alike) is byte-identical to
// the prior run's, survivingSame that the surviving slices are too.
type item struct {
	src           string
	table         *fact.Table
	surviving     []scored
	tableReused   bool
	survivingSame bool
}

// pendingEntry accumulates the leaf facts and processed children of a
// source until its own depth is reached.
type pendingEntry struct {
	triples  []kb.Triple
	children []*item
}

// Run executes the framework over an extraction corpus against an
// existing KB (nil = empty).
func Run(corpus *fact.Corpus, existing *kb.KB, opts Options) *Output {
	out, _ := RunContext(context.Background(), corpus, existing, opts)
	return out
}

// RunContext is Run with cancellation: between hierarchy levels the
// context is checked, and on cancellation the partial output (slices
// finalized so far — i.e. those whose domains completed) is returned
// together with the context's error. A level in flight runs to
// completion; per-source detection is not interrupted mid-lattice.
func RunContext(ctx context.Context, corpus *fact.Corpus, existing *kb.KB, opts Options) (*Output, error) {
	reg := opts.Obs.OrDefault()
	runStart := time.Now()
	// With an explicit tracer, root the run on it (the batch -trace
	// path). Otherwise parent to whatever span the context carries —
	// midas-serve's per-request span, making the request the ancestor of
	// every round — falling back to a root on the default tracer.
	var runSpan *obs.Span
	if opts.Trace != nil {
		ctx, runSpan = opts.Trace.StartSpan(ctx, "framework/run")
	} else {
		ctx, runSpan = obs.StartSpanOrRoot(ctx, "framework/run")
	}
	// One token budget for the whole run: each in-flight source shard
	// holds one token, and the default detector's lattice build grabs
	// spare tokens for within-source parallelism (hierarchy.Options.Pool)
	// — total concurrency never exceeds opts.Workers.
	pool := hierarchy.NewPool(opts.workers())
	detect := opts.detector(pool)
	cost := opts.cost()
	// Discovery never mutates the KB: freeze it once so the worker pool
	// probes membership lock-free instead of contending on its RWMutex.
	var member kb.Membership
	if existing != nil {
		member = existing.Frozen()
	}

	// Group facts by normalized leaf source, fingerprinting each
	// source's triple sequence: the corpus is append-only, so an
	// unchanged source reproduces its prior fingerprint and is a reuse
	// candidate.
	bySource := fact.LeafSources(corpus)

	pending := make(map[string]*pendingEntry)
	maxDepth := 0
	for src, ls := range bySource {
		pending[src] = &pendingEntry{triples: ls.Triples}
		if d := source.Depth(src); d > maxDepth {
			maxDepth = d
		}
	}
	// leafFP is 0 for sources that exist only as parents of deeper
	// sources (LeafSource fingerprints start at the non-zero FNV seed).
	leafFP := func(src string) uint64 {
		if ls := bySource[src]; ls != nil {
			return ls.FP
		}
		return 0
	}
	var epochNow uint64
	if existing != nil {
		epochNow = existing.Epoch()
	}
	next := &Prior{Epoch: epochNow, sources: make(map[string]*sourceState)}

	out := &Output{}
	var final []scored

	reg.Counter("framework/runs").Inc()
	reg.Counter("framework/corpus_facts").Add(int64(len(corpus.Facts)))
	reg.Counter("framework/leaf_sources").Add(int64(len(bySource)))

	finish := func(err error) (*Output, error) {
		sort.SliceStable(final, func(i, j int) bool {
			a, b := final[i].sl, final[j].sl
			if a.Profit != b.Profit {
				return a.Profit > b.Profit
			}
			return a.Source < b.Source
		})
		out.Slices = make([]*slice.Slice, len(final))
		out.FactSets = make([][]kb.Triple, len(final))
		for i, s := range final {
			out.Slices[i] = s.sl
			out.FactSets[i] = s.facts
		}
		reg.Timer("framework/run").Observe(time.Since(runStart))
		reg.Counter("framework/final_slices").Add(int64(len(out.Slices)))
		runSpan.Arg("rounds", strconv.Itoa(out.Rounds)).
			Arg("sources_processed", strconv.Itoa(out.SourcesProcessed)).
			Arg("sources_reused", strconv.Itoa(out.SourcesReused)).
			Arg("final_slices", strconv.Itoa(len(out.Slices))).
			End()
		return out, err
	}

	for d := maxDepth; d >= 1; d-- {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		// Shard: collect the sources whose depth is d; every deeper
		// descendant has already been folded into them.
		batch := make([]string, 0)
		for src := range pending {
			if source.Depth(src) == d {
				batch = append(batch, src)
			}
		}
		if len(batch) == 0 {
			continue
		}
		sort.Strings(batch)
		out.Rounds++
		roundStart := time.Now()
		roundCtx, roundSpan := obs.StartSpan(ctx, fmt.Sprintf("framework/depth%02d", d))
		roundSpan.Arg("depth", strconv.Itoa(d)).Arg("sources", strconv.Itoa(len(batch)))

		// Detect + consolidate each dirty shard on the worker pool;
		// fully-reusable shards are answered inline from the prior run
		// (their cached surviving slices are proven still valid, so no
		// detector invocation is needed). busyNs accumulates in-shard
		// wall time across workers; against the round's wall clock it
		// yields the pool's utilization (1.0 = every worker busy the
		// whole round; low values flag skew from one oversized shard).
		results := make([]*item, len(batch))
		reused := 0
		var wg sync.WaitGroup
		var busyNs atomic.Int64
		shardTimer := reg.Timer("framework/shard")
		for i, src := range batch {
			plan := planReuse(opts.Prior, src, pending[src], leafFP(src), opts.Delta)
			if plan.full {
				results[i] = &item{
					src:           src,
					table:         plan.state.table,
					surviving:     plan.state.surviving,
					tableReused:   true,
					survivingSame: true,
				}
				reused++
				continue
			}
			wg.Add(1)
			go func(i int, src string, plan reusePlan) {
				defer wg.Done()
				pool.Acquire()
				defer pool.Release()
				shardStart := time.Now()
				srcCtx, srcSpan := obs.StartSpan(roundCtx, src)
				results[i] = processSource(srcCtx, src, d, pending[src], plan, corpus.Space, member, detect, cost, reg)
				srcSpan.Arg("surviving", strconv.Itoa(len(results[i].surviving))).End()
				elapsed := time.Since(shardStart)
				shardTimer.Observe(elapsed)
				busyNs.Add(int64(elapsed))
			}(i, src, plan)
		}
		wg.Wait()
		roundSpan.Arg("reused", strconv.Itoa(reused)).End()
		processed := len(batch) - reused
		out.SourcesProcessed += processed
		out.SourcesReused += reused

		surviving := 0
		for _, it := range results {
			surviving += len(it.surviving)
		}
		roundWall := time.Since(roundStart)
		out.Levels = append(out.Levels, LevelStat{
			Depth:   d,
			Sources: len(batch),
			Slices:  surviving,
			Reused:  reused,
			Seconds: roundWall.Seconds(),
		})
		reg.Counter("framework/rounds").Inc()
		reg.Counter("framework/sources_processed").Add(int64(processed))
		reg.Counter("framework/sources_reused").Add(int64(reused))
		reg.Timer("framework/round").Observe(roundWall)
		reg.TimerVec("framework/depth", "depth").With(depthLabel(d)).Observe(roundWall)
		reg.CounterVec("framework/depth_sources", "depth").With(depthLabel(d)).Add(int64(len(batch)))
		reg.Histogram("framework/round_sources").Observe(float64(len(batch)))
		reg.Histogram("framework/round_slices").Observe(float64(surviving))
		if wall := roundWall.Seconds(); wall > 0 && processed > 0 {
			workers := opts.workers()
			if processed < workers {
				workers = processed
			}
			util := busyNs.Load() / int64(workers)
			reg.Gauge("framework/worker_utilization").Set(float64(util) / 1e9 / wall)
		}

		// Route surviving slices: to the parent's pending entry, or to
		// the final output for domain-level sources. Every completed
		// source — reused or rebuilt — is recorded for the next run.
		for _, it := range results {
			delete(pending, it.src)
			next.sources[it.src] = &sourceState{
				leafFP:    leafFP(it.src),
				table:     it.table,
				surviving: it.surviving,
			}
			if parent, ok := source.Parent(it.src); ok {
				pe := pending[parent]
				if pe == nil {
					pe = &pendingEntry{}
					pending[parent] = pe
				}
				pe.children = append(pe.children, it)
			} else {
				final = append(final, it.surviving...)
			}
		}
	}

	out.NextPrior = next
	return finish(nil)
}

// processSource builds the source's fact table (merging leaf facts with
// the children's tables), detects slices seeded with the children's
// surviving slices, and consolidates parent against child slices. A
// reuse plan with a clean table skips the build/merge (re-annotating
// the newness bits first if absorbed triples touched the table); the
// detector still runs, because a child's surviving slices changed.
func processSource(ctx context.Context, src string, depth int, pe *pendingEntry, plan reusePlan, space *kb.Space, existing kb.Membership, detect detectFunc, cost slice.CostModel, reg *obs.Registry) *item {
	// Assemble the fact table at this granularity.
	_, tableSpan := obs.StartSpan(ctx, "table/build")
	var table *fact.Table
	tableReused := false
	switch {
	case plan.state != nil && !plan.reannotate:
		table = plan.state.table
		tableReused = true
		reg.Counter("fact/tables_reused").Inc()
	case plan.state != nil:
		table = fact.Reannotate(plan.state.table, existing)
		reg.Counter("fact/tables_reannotated").Inc()
	default:
		var leaf *fact.Table
		if len(pe.triples) > 0 {
			leaf = fact.BuildObs(src, space, pe.triples, existing, reg)
		}
		if len(pe.children) == 0 && leaf != nil {
			table = leaf
		} else {
			tables := make([]*fact.Table, 0, len(pe.children)+1)
			if leaf != nil {
				tables = append(tables, leaf)
			}
			for _, c := range pe.children {
				tables = append(tables, c.table)
			}
			table = fact.MergeObs(src, space, tables, reg)
		}
	}
	tableSpan.Arg("entities", strconv.Itoa(len(table.Entities))).End()

	// Map subjects to rows for seeding.
	rowOf := make(map[dict.ID]int32, len(table.Entities))
	for i := range table.Entities {
		rowOf[table.Entities[i].Subject] = int32(i)
	}

	var children []scored
	var seeds []hierarchy.Seed
	for _, c := range pe.children {
		for _, s := range c.surviving {
			children = append(children, s)
			rows := make([]int32, 0, s.sl.Entities.Len())
			for _, subj := range s.sl.Entities.Values() {
				if r, ok := rowOf[subj]; ok {
					rows = append(rows, r)
				}
			}
			seeds = append(seeds, hierarchy.Seed{Props: s.sl.Props, Entities: rows})
		}
	}

	detectCtx, detectSpan := obs.StartSpan(ctx, "detect")
	detected := detect(detectCtx, table, seeds)
	detectSpan.Arg("slices", strconv.Itoa(len(detected))).End()
	parents := make([]scored, len(detected))
	for i, sl := range detected {
		parents[i] = scored{sl: sl, facts: sl.FactSet(table), sourceTotal: table.TotalFacts}
	}

	_, consSpan := obs.StartSpan(ctx, "consolidate")
	surviving := consolidate(parents, children, depth, cost, existing, reg)
	consSpan.Arg("surviving", strconv.Itoa(len(surviving))).End()
	return &item{src: src, table: table, surviving: surviving, tableReused: tableReused}
}

// consolidate compares each parent slice against the child slices whose
// entities it covers: if the child set's combined profit beats the
// parent slice, the parent is pruned and the children survive;
// otherwise the parent survives and those children are discarded
// (Example 16). Children not covered by any parent slice survive too —
// a coarser ancestor may still consolidate them later.
//
// Keep/drop tallies are reported to the "framework/consolidate" counter
// vector labeled by decision and hierarchy depth, so a scraper can read
// where in the URL hierarchy consolidation is deciding each way.
func consolidate(parents, children []scored, depth int, cost slice.CostModel, existing kb.Membership, reg *obs.Registry) []scored {
	tally := reg.CounterVec("framework/consolidate", "decision", "depth")
	dl := depthLabel(depth)
	if len(children) == 0 {
		tally.With("parents_kept", dl).Add(int64(len(parents)))
		return parents
	}
	var parentsKept, parentsPruned, childrenKept, childrenDropped int64
	consumed := make([]bool, len(children))
	surviving := make([]scored, 0, len(parents))
	for _, p := range parents {
		var cs []int
		for i := range children {
			if !consumed[i] && children[i].sl.Entities.IsSubsetOf(p.sl.Entities) {
				cs = append(cs, i)
			}
		}
		if len(cs) == 0 {
			surviving = append(surviving, p)
			parentsKept++
			continue
		}
		// Ties go to the children: same profit at a finer granularity
		// means a narrower crawl for the same value.
		if childSetProfit(children, cs, cost, existing) >= p.sl.Profit {
			// The children win: they survive, the parent slice is pruned.
			for _, i := range cs {
				consumed[i] = true
				surviving = append(surviving, children[i])
			}
			parentsPruned++
			childrenKept += int64(len(cs))
		} else {
			// The parent wins: keep it, discard the covered children.
			for _, i := range cs {
				consumed[i] = true
			}
			surviving = append(surviving, p)
			parentsKept++
			childrenDropped += int64(len(cs))
		}
	}
	for i := range children {
		if !consumed[i] {
			surviving = append(surviving, children[i])
			childrenKept++
		}
	}
	tally.With("parents_kept", dl).Add(parentsKept)
	tally.With("parents_pruned", dl).Add(parentsPruned)
	tally.With("children_kept", dl).Add(childrenKept)
	tally.With("children_dropped", dl).Add(childrenDropped)
	return surviving
}

// depthLabel renders a hierarchy depth as a fixed-width label value so
// lexical series order matches numeric depth order.
func depthLabel(d int) string { return fmt.Sprintf("%02d", d) }

// childSetProfit computes f over the indexed child slices, with exact
// fact-union statistics and the crawl term charged once per distinct
// origin source.
func childSetProfit(children []scored, idx []int, cost slice.CostModel, existing kb.Membership) float64 {
	sets := make([][]kb.Triple, len(idx))
	totals := make(map[string]int)
	for i, j := range idx {
		sets[i] = children[j].facts
		totals[children[j].sl.Source] = children[j].sourceTotal
	}
	unionFacts, unionNew := slice.UnionStats(sets, existing)
	// Sum the crawl terms in sorted-source order: SetProfit accumulates
	// them in floating point, so map-iteration order would make the
	// profit — and with it consolidation decisions — nondeterministic
	// at the ulp level.
	srcs := make([]string, 0, len(totals))
	for s := range totals {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	perSource := make([]int, 0, len(totals))
	for _, s := range srcs {
		perSource = append(perSource, totals[s])
	}
	return cost.SetProfit(len(idx), unionFacts, unionNew, perSource)
}
