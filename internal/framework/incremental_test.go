package framework_test

import (
	"context"
	"reflect"
	"testing"

	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/kb"
)

// contextCanceled returns an already-canceled context.
func contextCanceled() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx, cancel
}

// outputsEqual compares two runs slice-for-slice, including profits and
// materialized fact sets — the equivalence the incremental path must
// preserve bit-exactly.
func outputsEqual(t *testing.T, want, got *framework.Output) {
	t.Helper()
	if len(want.Slices) != len(got.Slices) {
		t.Fatalf("slice count: want %d, got %d", len(want.Slices), len(got.Slices))
	}
	for i := range want.Slices {
		if !reflect.DeepEqual(*want.Slices[i], *got.Slices[i]) {
			t.Errorf("slice %d differs:\nwant %+v\ngot  %+v", i, *want.Slices[i], *got.Slices[i])
		}
	}
	if !reflect.DeepEqual(want.FactSets, got.FactSets) {
		t.Error("fact sets differ")
	}
	if want.Rounds != got.Rounds {
		t.Errorf("rounds: want %d, got %d", want.Rounds, got.Rounds)
	}
}

// TestPriorFullReuse: an unchanged corpus and KB must answer every
// source from the prior run without a single detector invocation.
func TestPriorFullReuse(t *testing.T) {
	corpus, existing := exampleCorpus()
	opts := exampleFrameworkOpts()

	first := framework.Run(corpus, existing, opts)
	if first.NextPrior == nil {
		t.Fatal("completed run must return NextPrior")
	}
	if first.SourcesReused != 0 {
		t.Fatalf("first run reused %d sources, want 0", first.SourcesReused)
	}
	if first.NextPrior.NumSources() != first.SourcesProcessed {
		t.Fatalf("NextPrior holds %d sources, processed %d", first.NextPrior.NumSources(), first.SourcesProcessed)
	}

	opts.Prior = first.NextPrior
	second := framework.Run(corpus, existing, opts)
	if second.SourcesProcessed != 0 {
		t.Fatalf("unchanged rerun processed %d sources, want 0", second.SourcesProcessed)
	}
	if second.SourcesReused != first.SourcesProcessed {
		t.Fatalf("unchanged rerun reused %d sources, want %d", second.SourcesReused, first.SourcesProcessed)
	}
	outputsEqual(t, first, second)
	for _, lv := range second.Levels {
		if lv.Reused != lv.Sources {
			t.Errorf("depth %d: reused %d of %d sources", lv.Depth, lv.Reused, lv.Sources)
		}
	}
}

// TestPriorCorpusDelta: appending facts to one page must rebuild only
// that page's branch of the URL hierarchy; every untouched source is
// reused, and the output matches a from-scratch run bit-for-bit.
func TestPriorCorpusDelta(t *testing.T) {
	corpus, existing := exampleCorpus()
	opts := exampleFrameworkOpts()
	first := framework.Run(corpus, existing, opts)

	corpus.Add(fact.Fact{
		Subject: "Delta", Predicate: "category", Object: "rocket_family",
		Confidence: 0.9, URL: "http://space.skyrocket.de/doc_lau_fam/atlas.htm",
	})

	incOpts := opts
	incOpts.Prior = first.NextPrior
	inc := framework.Run(corpus, existing, incOpts)
	fresh := framework.Run(corpus, existing, opts)
	outputsEqual(t, fresh, inc)

	if inc.SourcesReused == 0 {
		t.Fatal("one-page delta must reuse the untouched sources")
	}
	// The touched page and its two ancestors (sub-domain, domain) are
	// dirty; everything else must be served from the prior run.
	if dirty := inc.SourcesProcessed; dirty != 3 {
		t.Errorf("processed %d sources, want 3 (page + 2 ancestors)", dirty)
	}
	if inc.SourcesReused+inc.SourcesProcessed != fresh.SourcesProcessed {
		t.Errorf("reused(%d)+processed(%d) != total sources %d",
			inc.SourcesReused, inc.SourcesProcessed, fresh.SourcesProcessed)
	}
}

// TestPriorKBDelta: absorbing triples into the KB invalidates exactly
// the sources whose tables contain them. Sources sharing none of the
// absorbed facts keep their cached detection results even though the
// KB epoch moved.
func TestPriorKBDelta(t *testing.T) {
	corpus, existing := exampleCorpus()
	opts := exampleFrameworkOpts()
	first := framework.Run(corpus, existing, opts)

	// Absorb the Atlas facts (present only under doc_lau_fam pages and
	// their ancestors).
	delta := []kb.Triple{
		corpus.Space.Intern("Atlas", "category", "rocket_family"),
		corpus.Space.Intern("Atlas", "sponsor", "NASA"),
		corpus.Space.Intern("Atlas", "started", "1957"),
	}
	for _, tr := range delta {
		if !existing.Add(tr) {
			t.Fatalf("delta triple %v was already in the KB", tr)
		}
	}

	incOpts := opts
	incOpts.Prior = first.NextPrior
	incOpts.Delta = delta
	inc := framework.Run(corpus, existing, incOpts)
	fresh := framework.Run(corpus, existing, opts)
	outputsEqual(t, fresh, inc)

	if inc.SourcesReused == 0 {
		t.Fatal("sources without the absorbed facts must be reused")
	}
	if inc.SourcesProcessed == 0 {
		t.Fatal("sources carrying the absorbed facts must be re-detected")
	}
}

// TestPriorPartialRunNoNextPrior: a canceled run must not hand out
// reusable state — its hierarchy is only partially consolidated.
func TestPriorPartialRunNoNextPrior(t *testing.T) {
	corpus, existing := exampleCorpus()
	ctx, cancel := contextCanceled()
	defer cancel()
	out, err := framework.RunContext(ctx, corpus, existing, exampleFrameworkOpts())
	if err == nil {
		t.Fatal("canceled run must report the context error")
	}
	if out.NextPrior != nil {
		t.Fatal("canceled run must not return NextPrior")
	}
}
