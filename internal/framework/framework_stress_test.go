package framework_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/kb"
	"midas/internal/obs"
)

// stressCorpus synthesizes a corpus spread over many sources at several
// URL depths: domains → sections → pages, with entity property sets
// drawn from a small pool so multi-entity slices form at every level.
// The generator is deterministic for a given seed.
func stressCorpus(seed int64, domains, sectionsPerDomain, pagesPerSection, entitiesPerPage int) (*fact.Corpus, *kb.KB) {
	rng := rand.New(rand.NewSource(seed))
	corpus := fact.NewCorpus(nil)
	existing := kb.New(corpus.Space)
	categories := []string{"rocket_family", "space_program", "launch_site", "satellite"}
	sponsors := []string{"NASA", "ESA", "JAXA", "CNSA"}
	ent := 0
	for d := 0; d < domains; d++ {
		for s := 0; s < sectionsPerDomain; s++ {
			for p := 0; p < pagesPerSection; p++ {
				url := fmt.Sprintf("http://d%d.example.org/sec%d/page%d.htm", d, s, p)
				for e := 0; e < entitiesPerPage; e++ {
					subj := fmt.Sprintf("entity-%d", ent)
					ent++
					cat := categories[rng.Intn(len(categories))]
					spo := sponsors[rng.Intn(len(sponsors))]
					corpus.Add(fact.Fact{Subject: subj, Predicate: "category", Object: cat, Confidence: 0.9, URL: url})
					corpus.Add(fact.Fact{Subject: subj, Predicate: "sponsor", Object: spo, Confidence: 0.9, URL: url})
					if rng.Intn(3) == 0 {
						corpus.Add(fact.Fact{Subject: subj, Predicate: "started", Object: fmt.Sprintf("%d", 1950+rng.Intn(8)), Confidence: 0.9, URL: url})
					}
					// A third of the facts are already known, so newness
					// masks vary across entities.
					if rng.Intn(3) == 0 {
						existing.AddStrings(subj, "category", cat)
					}
				}
			}
		}
	}
	return corpus, existing
}

// TestStressManySourcesOversubscribed drives the worker pool with far
// more workers than GOMAXPROCS over hundreds of sources. Under -race
// this exercises the sharding, the lock-free KB membership view, and
// the registry's atomics from many goroutines at once; the assertions
// pin the run's metrics to the framework's own accounting and check
// that concurrency does not change the result.
func TestStressManySourcesOversubscribed(t *testing.T) {
	corpus, existing := stressCorpus(1, 6, 5, 4, 6) // 120 leaf sources
	workers := 4*runtime.GOMAXPROCS(0) + 3

	reg := obs.New()
	out := framework.Run(corpus, existing, framework.Options{Workers: workers, Obs: reg})

	if out.SourcesProcessed == 0 || len(out.Slices) == 0 {
		t.Fatalf("stress run found nothing: %d sources, %d slices", out.SourcesProcessed, len(out.Slices))
	}
	// 120 pages + 30 sections + 6 domains = 156 detector invocations.
	if want := 156; out.SourcesProcessed != want {
		t.Errorf("SourcesProcessed = %d, want %d", out.SourcesProcessed, want)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["framework/sources_processed"]; got != int64(out.SourcesProcessed) {
		t.Errorf("obs sources_processed = %d, framework reported %d", got, out.SourcesProcessed)
	}
	if got := snap.Counters["framework/rounds"]; got != int64(out.Rounds) {
		t.Errorf("obs rounds = %d, framework reported %d", got, out.Rounds)
	}
	if got := snap.Counters["framework/final_slices"]; got != int64(len(out.Slices)) {
		t.Errorf("obs final_slices = %d, framework reported %d", got, len(out.Slices))
	}
	if got := snap.Timers["framework/shard"].Count; got != int64(out.SourcesProcessed) {
		t.Errorf("obs shard timer count = %d, want %d", got, out.SourcesProcessed)
	}
	if snap.Counters["hierarchy/nodes_generated"] == 0 {
		t.Error("obs hierarchy/nodes_generated = 0, want > 0")
	}
	// Consolidation tallies are a counter vector labeled by decision and
	// hierarchy depth; every kept decision at any depth counts.
	var kept int64
	for _, series := range snap.CounterVecs["framework/consolidate"].Series {
		switch series.Labels["decision"] {
		case "parents_kept", "children_kept":
			kept += series.Value
		}
	}
	if kept == 0 {
		t.Error("obs consolidation kept tallies = 0, want > 0")
	}
	if len(snap.TimerVecs["framework/depth"].Series) == 0 {
		t.Error("obs framework/depth timer vector is empty, want one series per depth")
	}
	if len(snap.CounterVecs["hierarchy/level/nodes_generated"].Series) == 0 {
		t.Error("obs hierarchy/level/nodes_generated vector is empty, want per-level series")
	}

	// The oversubscribed run must agree with a serial run: the pool
	// changes scheduling, never results.
	serialCorpus, serialKB := stressCorpus(1, 6, 5, 4, 6)
	serial := framework.Run(serialCorpus, serialKB, framework.Options{Workers: 1, Obs: obs.New()})
	if len(serial.Slices) != len(out.Slices) {
		t.Fatalf("parallel run found %d slices, serial run %d", len(out.Slices), len(serial.Slices))
	}
	for i := range serial.Slices {
		a, b := out.Slices[i], serial.Slices[i]
		if a.Source != b.Source || a.Profit != b.Profit || a.Facts != b.Facts || a.NewFacts != b.NewFacts {
			t.Errorf("slice %d differs: parallel %s %.4f (%d/%d) vs serial %s %.4f (%d/%d)",
				i, a.Source, a.Profit, a.Facts, a.NewFacts, b.Source, b.Profit, b.Facts, b.NewFacts)
		}
	}
}
