package framework_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"midas/internal/core"
	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/hierarchy"
	"midas/internal/kb"
	"midas/internal/slice"
)

// TestMixedDepthSources: facts extracted at a sub-domain URL and at
// page URLs below it must fold into the same hierarchy node — the
// sub-domain is both a leaf source and a parent.
func TestMixedDepthSources(t *testing.T) {
	corpus := fact.NewCorpus(nil)
	// 15 entities on individual pages under a.com/wiki.
	for i := 0; i < 15; i++ {
		corpus.Add(fact.Fact{
			Subject: fmt.Sprintf("deep%d", i), Predicate: "kind", Object: "widget",
			Confidence: 0.9, URL: fmt.Sprintf("http://a.com/wiki/e%d.htm", i),
		})
	}
	// 15 more extracted from the sub-domain listing page itself.
	for i := 0; i < 15; i++ {
		corpus.Add(fact.Fact{
			Subject: fmt.Sprintf("flat%d", i), Predicate: "kind", Object: "widget",
			Confidence: 0.9, URL: "http://a.com/wiki",
		})
	}
	out := framework.Run(corpus, nil, framework.Options{
		Cost: slice.ExampleCostModel(),
	})
	if len(out.Slices) != 1 {
		for _, s := range out.Slices {
			t.Logf("%s @ %s (%d)", s.Description(corpus.Space), s.Source, s.NewFacts)
		}
		t.Fatalf("want 1 consolidated slice, got %d", len(out.Slices))
	}
	s := out.Slices[0]
	if s.NewFacts != 30 {
		t.Errorf("new facts = %d, want all 30 (both depths folded)", s.NewFacts)
	}
	if s.Source != "a.com/wiki" {
		t.Errorf("source = %q, want a.com/wiki", s.Source)
	}
}

// TestDomainsAreIndependent: slices from unrelated domains never
// consolidate, and both survive.
func TestDomainsAreIndependent(t *testing.T) {
	corpus := fact.NewCorpus(nil)
	for d := 0; d < 3; d++ {
		for i := 0; i < 20; i++ {
			corpus.Add(fact.Fact{
				Subject: fmt.Sprintf("d%d-e%d", d, i), Predicate: "kind", Object: fmt.Sprintf("type%d", d),
				Confidence: 0.9, URL: fmt.Sprintf("http://host%d.com/x/e%d.htm", d, i),
			})
		}
	}
	out := framework.Run(corpus, nil, framework.Options{Cost: slice.ExampleCostModel()})
	if len(out.Slices) != 3 {
		t.Fatalf("want 3 slices, got %d", len(out.Slices))
	}
	hosts := make(map[string]bool)
	for _, s := range out.Slices {
		hosts[s.Source] = true
	}
	if len(hosts) != 3 {
		t.Errorf("slices collapsed across domains: %v", hosts)
	}
}

// TestMalformedURLs: facts with empty or bizarre URLs must not crash
// the pipeline; empty sources are dropped.
func TestMalformedURLs(t *testing.T) {
	corpus := fact.NewCorpus(nil)
	for i, url := range []string{"", "http://", "///", "http://ok.com/a", "not a url but fine"} {
		corpus.Add(fact.Fact{
			Subject: fmt.Sprintf("e%d", i), Predicate: "p", Object: fmt.Sprintf("v%d", i),
			Confidence: 0.9, URL: url,
		})
	}
	out := framework.Run(corpus, nil, framework.Options{Cost: slice.ExampleCostModel()})
	_ = out // reaching here without panic is the assertion
}

// TestCustomDetectorContract: the framework must tolerate detectors
// returning nil, empty slices, or duplicate slices.
func TestCustomDetectorContract(t *testing.T) {
	corpus, existing := exampleCorpus()

	calls := 0
	nilDetector := func(table *fact.Table, seeds []hierarchy.Seed) []*slice.Slice {
		calls++
		return nil
	}
	out := framework.Run(corpus, existing, framework.Options{Detect: nilDetector})
	if len(out.Slices) != 0 {
		t.Errorf("nil detector produced %d slices", len(out.Slices))
	}
	if calls != out.SourcesProcessed || calls == 0 {
		t.Errorf("detector calls = %d, sources = %d", calls, out.SourcesProcessed)
	}

	// A detector that duplicates its answer: consolidation still runs
	// and the output stays finite and deterministic.
	dupDetector := func(table *fact.Table, seeds []hierarchy.Seed) []*slice.Slice {
		res := core.DiscoverSeeded(table, seeds, core.Options{Cost: slice.ExampleCostModel()}).Slices
		return append(res, res...)
	}
	dupOut := framework.Run(corpus, existing, framework.Options{
		Cost:   slice.ExampleCostModel(),
		Detect: dupDetector,
	})
	if len(dupOut.Slices) == 0 || len(dupOut.Slices) > 4 {
		t.Errorf("duplicate detector produced %d slices", len(dupOut.Slices))
	}
}

// TestWorkerCountsEquivalent: any worker count produces the same output.
func TestWorkerCountsEquivalent(t *testing.T) {
	corpus := fact.NewCorpus(nil)
	rng := rand.New(rand.NewSource(5))
	for d := 0; d < 10; d++ {
		for i := 0; i < 30; i++ {
			corpus.Add(fact.Fact{
				Subject:    fmt.Sprintf("d%d-e%d", d, i),
				Predicate:  "kind",
				Object:     fmt.Sprintf("type%d-%d", d, rng.Intn(2)),
				Confidence: 0.9,
				URL:        fmt.Sprintf("http://h%d.com/s%d/e%d.htm", d, i%3, i),
			})
		}
	}
	existing := kb.New(corpus.Space)
	ref := framework.Run(corpus, existing, framework.Options{Workers: 1})
	for _, w := range []int{2, 4, 16} {
		got := framework.Run(corpus, existing, framework.Options{Workers: w})
		if len(got.Slices) != len(ref.Slices) {
			t.Fatalf("workers=%d: %d slices vs %d", w, len(got.Slices), len(ref.Slices))
		}
		for i := range ref.Slices {
			if got.Slices[i].Source != ref.Slices[i].Source || got.Slices[i].Profit != ref.Slices[i].Profit {
				t.Fatalf("workers=%d: slice %d differs", w, i)
			}
		}
	}
}

// TestRunContextCancellation: a pre-cancelled context returns
// immediately with the context error and no slices; a live context
// matches Run.
func TestRunContextCancellation(t *testing.T) {
	corpus, existing := exampleCorpus()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := framework.RunContext(cancelled, corpus, existing, exampleFrameworkOpts())
	if err == nil {
		t.Fatal("want context error")
	}
	if len(out.Slices) != 0 {
		t.Errorf("pre-cancelled run produced %d slices", len(out.Slices))
	}

	live, err := framework.RunContext(context.Background(), corpus, existing, exampleFrameworkOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref := framework.Run(corpus, existing, exampleFrameworkOpts())
	if len(live.Slices) != len(ref.Slices) {
		t.Errorf("RunContext and Run disagree: %d vs %d", len(live.Slices), len(ref.Slices))
	}
}
