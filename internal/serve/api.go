package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"midas"
	"midas/internal/obs"
	"midas/internal/store"
)

// routes mounts the JSON API. Every handler runs behind withMetrics,
// which applies the server's request deadline to the request context
// (client disconnects already propagate through it) and records the
// per-endpoint counter and timer.
func (s *Server) routes(mux *http.ServeMux) {
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.withMetrics(pattern, h))
	}
	handle("GET /healthz", s.handleHealth)
	handle("GET /readyz", s.handleReady)
	handle("POST /api/sessions", s.handleCreateSession)
	handle("GET /api/sessions", s.handleListSessions)
	handle("GET /api/sessions/{name}", s.handleGetSession)
	handle("DELETE /api/sessions/{name}", s.handleDeleteSession)
	handle("POST /api/sessions/{name}/kb", s.handleLoadKB)
	handle("POST /api/sessions/{name}/facts", s.handleAddFacts)
	handle("POST /api/sessions/{name}/discover", s.handleDiscover)
	handle("POST /api/sessions/{name}/absorb", s.handleAbsorb)
	handle("GET /api/sessions/{name}/progress", s.handleProgress)
	handle("GET /api/jobs", s.handleListJobs)
	handle("GET /api/jobs/{id}", s.handleGetJob)
	handle("GET /api/jobs/{id}/result", s.handleJobResult)
	handle("GET /api/sessions/{name}/jobs/{id}/profile", s.handleJobProfile)
}

type statusWriter struct {
	http.ResponseWriter
	code int
	// fields are extra key/value pairs a handler attaches to the
	// request's access-log record (addLogFields) — how the discover
	// handler puts the job ID on the line that carries the request ID.
	fields []any
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// addLogFields attaches key/value pairs to the access-log record of the
// request being served on w. No-op when w is not the middleware's
// writer (plain httptest writers in handler unit tests).
func addLogFields(w http.ResponseWriter, kv ...any) {
	if sw, ok := w.(*statusWriter); ok {
		sw.fields = append(sw.fields, kv...)
	}
}

// reqIDKey carries the request ID through the context, alongside (not
// instead of) the log fields — handlers need the raw value to stamp it
// onto the jobs they spawn.
type reqIDKey struct{}

func requestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// withMetrics wraps every API handler with the request-scoped
// observability: the request deadline, a request ID, a root span (the
// trace every discovery span of this request hangs off), the
// per-endpoint counter/timer/latency-histogram, and one structured
// access-log record on completion.
func (s *Server) withMetrics(pattern string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.reg.CounterVec("serve/requests", "endpoint", "code")
	timer := s.reg.TimerVec("serve/request", "endpoint")
	latency := s.reg.HistogramVec("serve/request_seconds", obs.DefaultLatencyBuckets, "endpoint")
	// Probes and scrapes are polled continuously; give them spans and
	// access logs only at debug verbosity so the interesting traffic
	// stands out (and the tracer holds discovery traces, not probes).
	probe := !strings.Contains(pattern, "/api/")
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if s.opts.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = withTimeout(ctx, s.opts.RequestTimeout)
			defer cancel()
		}
		reqID := s.ids.RequestID()
		ctx = context.WithValue(ctx, reqIDKey{}, reqID)
		ctx = obs.ContextWithLogFields(ctx, "request", reqID)
		var span *obs.Span
		if !probe {
			ctx, span = s.tracer.StartSpan(ctx, "serve/request")
			span.Arg("endpoint", pattern).Arg("request", reqID)
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)

		span.Arg("code", strconv.Itoa(sw.code)).End()
		timer.With(pattern).Observe(elapsed)
		latency.With(pattern).Observe(elapsed.Seconds())
		requests.With(pattern, strconv.Itoa(sw.code)).Inc()
		level := obs.LevelInfo
		if probe {
			level = obs.LevelDebug
		}
		kv := append([]any{
			"method", r.Method, "path", r.URL.Path, "endpoint", pattern,
			"code", sw.code, "dur", elapsed,
		}, sw.fields...)
		s.logger().Log(ctx, level, "request", kv...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// sessionOrErr resolves {name}, writing the 404 itself when absent.
func (s *Server) sessionOrErr(w http.ResponseWriter, r *http.Request) *session {
	name := r.PathValue("name")
	sn := s.session(name)
	if sn == nil {
		writeErr(w, http.StatusNotFound, "no session %q", name)
	}
	return sn
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": draining})
}

// handleReady is the routing probe: 200 only while the server wants
// traffic. It flips to 503 the moment Drain begins — while /healthz
// stays 200, so orchestrators stop routing without killing the process
// mid-drain — and stays 503 until the binary calls SetReady(true).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	ready := s.ready.Load() && !draining
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"ready": ready, "draining": draining})
}

// apiOptions is the JSON shape of midas.Options accepted at session
// creation (the subset that is serializable; metrics and tracing stay
// process-wide).
type apiOptions struct {
	Workers            int      `json:"workers"`
	MinConfidence      float64  `json:"min_confidence"`
	Fuse               bool     `json:"fuse"`
	MaxSlices          int      `json:"max_slices"`
	NumericBucketWidth float64  `json:"numeric_bucket_width"`
	MaxPropsPerEntity  int      `json:"max_props_per_entity"`
	MaxInitCombos      int      `json:"max_init_combos"`
	Cost               *apiCost `json:"cost"`
}

type apiCost struct {
	Fp float64 `json:"fp"`
	Fc float64 `json:"fc"`
	Fd float64 `json:"fd"`
	Fv float64 `json:"fv"`
}

func (o *apiOptions) toOptions() *midas.Options {
	if o == nil {
		return nil
	}
	opts := &midas.Options{
		Workers:            o.Workers,
		MinConfidence:      o.MinConfidence,
		Fuse:               o.Fuse,
		MaxSlices:          o.MaxSlices,
		NumericBucketWidth: o.NumericBucketWidth,
		MaxPropsPerEntity:  o.MaxPropsPerEntity,
		MaxInitCombos:      o.MaxInitCombos,
	}
	if o.Cost != nil {
		opts.Cost = midas.CostModel{Fp: o.Cost.Fp, Fc: o.Cost.Fc, Fd: o.Cost.Fd, Fv: o.Cost.Fv}
	}
	return opts
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name    string      `json:"name"`
		Options *apiOptions `json:"options"`
	}
	if err := decodeJSONBody(r, &req, true); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// The options JSON persisted with the create record is the
	// re-marshaled request shape, so recovery decodes exactly what this
	// session was built from.
	optionsJSON, err := json.Marshal(req.Options)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad options: %v", err)
		return
	}
	sn, err := s.createSession(req.Name, req.Options.toOptions(), optionsJSON)
	switch {
	case errors.Is(err, errExists):
		writeErr(w, http.StatusConflict, "session %q already exists", req.Name)
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
	default:
		addLogFields(w, "session", sn.name)
		s.logger().Info(r.Context(), "session created", "session", sn.name)
		writeJSON(w, http.StatusCreated, map[string]string{"session": sn.name})
	}
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	list := make([]map[string]any, 0, len(names))
	for _, name := range names {
		if sn := s.session(name); sn != nil {
			list = append(list, sessionInfo(sn))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": list})
}

func sessionInfo(sn *session) map[string]any {
	return map[string]any{
		"session":      sn.name,
		"corpus_facts": sn.sess.CorpusSize(),
		"kb_facts":     sn.sess.KB().Size(),
		"fingerprint":  fmt.Sprintf("%016x", sn.sess.Fingerprint()),
		"kb_epoch":     sn.sess.KBEpoch(),
		"recovered":    sn.recovered,
	}
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sn := s.sessionOrErr(w, r); sn != nil {
		writeJSON(w, http.StatusOK, sessionInfo(sn))
	}
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	found, err := s.deleteSession(r.Context(), name)
	switch {
	case !found:
		writeErr(w, http.StatusNotFound, "no session %q", name)
	case err != nil:
		// The session is gone from the registry either way; the error
		// reports jobs that outlived the request deadline or durable
		// files that could not be removed.
		writeErr(w, http.StatusInternalServerError, "deleting session %q: %v", name, err)
	default:
		s.logger().Info(r.Context(), "session deleted", "session", name)
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *Server) handleLoadKB(w http.ResponseWriter, r *http.Request) {
	sn := s.sessionOrErr(w, r)
	if sn == nil {
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "tsv", "binary", "ntriples":
	default:
		writeErr(w, http.StatusBadRequest, "unknown KB format %q", format)
		return
	}
	var body io.Reader = ctxReader(r.Context(), r.Body)
	var raw []byte
	if sn.slog != nil {
		// Durable sessions log the load by content, so the body must be
		// buffered; memory-only sessions keep the streaming path.
		var err error
		raw, err = io.ReadAll(body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "reading KB body: %v", err)
			return
		}
		body = bytes.NewReader(raw)
	}
	sn.wmu.Lock()
	added, err := loadKB(sn.sess, format, body)
	if err != nil {
		if sn.slog != nil {
			// The loaders apply while parsing, so a mid-body error leaves
			// a partial prefix live that no WAL record describes. Snapshot
			// immediately: the snapshot serializes the session as it now
			// is, re-baselining the log onto the observed state.
			if serr := sn.slog.Snapshot(sn.sess); serr != nil {
				s.logger().Warn(r.Context(), "re-baseline snapshot failed", "session", sn.name, "err", serr)
			}
		}
		sn.wmu.Unlock()
		writeErr(w, http.StatusBadRequest, "loading KB: %v", err)
		return
	}
	if sn.slog != nil {
		if aerr := sn.slog.AppendKB(format, raw); aerr != nil {
			sn.wmu.Unlock()
			writeErr(w, http.StatusInternalServerError, "persisting KB load: %v", aerr)
			return
		}
	}
	sn.wmu.Unlock()
	s.maybeSnapshot(sn)
	writeJSON(w, http.StatusOK, map[string]int{"added": added})
}

// loadKB dispatches one KB bulk load; format has been validated.
func loadKB(sess *midas.Session, format string, body io.Reader) (int, error) {
	switch format {
	case "", "tsv":
		return sess.KB().LoadTSV(body)
	case "binary":
		return sess.KB().LoadBinary(body)
	default:
		return sess.KB().LoadNTriples(body)
	}
}

type apiFact struct {
	Subject    string  `json:"subject"`
	Predicate  string  `json:"predicate"`
	Object     string  `json:"object"`
	Confidence float64 `json:"confidence"`
	URL        string  `json:"url"`
}

// parseFactsJSON decodes a JSON array of facts. A zero confidence
// defaults to 1 (extraction output often omits it); anything else
// outside (0,1] — negative, NaN via raw floats, over 1 — rejects the
// batch.
func parseFactsJSON(r io.Reader) ([]midas.Fact, error) {
	var in []apiFact
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	facts := make([]midas.Fact, 0, len(in))
	for i, f := range in {
		if f.Confidence == 0 {
			f.Confidence = 1
		}
		if !validConfidence(f.Confidence) {
			return nil, fmt.Errorf("fact %d: confidence %v outside (0,1]", i, f.Confidence)
		}
		facts = append(facts, midas.Fact{
			Subject: f.Subject, Predicate: f.Predicate, Object: f.Object,
			Confidence: f.Confidence, URL: f.URL,
		})
	}
	return facts, nil
}

// validConfidence bounds an extraction confidence to (0,1]; the
// comparison chain is false for NaN.
func validConfidence(c float64) bool { return c > 0 && c <= 1 }

// parseFactsTSV decodes TSV lines in the midas-datagen facts.tsv
// layout: subject, predicate, object [, confidence [, url]]. Blank
// lines are skipped; anything else malformed fails the whole batch
// (ingestion is atomic — parse everything, then add).
func parseFactsTSV(r io.Reader) ([]midas.Fact, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var facts []midas.Fact
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		cols := strings.Split(text, "\t")
		if len(cols) < 3 {
			return nil, fmt.Errorf("facts line %d: %d columns, want ≥ 3", line, len(cols))
		}
		if cols[0] == "" || cols[1] == "" || cols[2] == "" {
			return nil, fmt.Errorf("facts line %d: empty subject, predicate, or object", line)
		}
		f := midas.Fact{Subject: cols[0], Predicate: cols[1], Object: cols[2], Confidence: 1}
		if len(cols) > 3 && cols[3] != "" {
			conf, err := strconv.ParseFloat(cols[3], 64)
			if err != nil || !validConfidence(conf) {
				return nil, fmt.Errorf("facts line %d: bad confidence %q", line, cols[3])
			}
			f.Confidence = conf
		}
		if len(cols) > 4 {
			f.URL = cols[4]
		}
		facts = append(facts, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading facts: %w", err)
	}
	return facts, nil
}

// handleAddFacts accepts extraction output either as a JSON array of
// facts or, for any non-JSON content type, as TSV lines in the
// midas-datagen facts.tsv layout: subject, predicate, object
// [, confidence [, url]].
func (s *Server) handleAddFacts(w http.ResponseWriter, r *http.Request) {
	sn := s.sessionOrErr(w, r)
	if sn == nil {
		return
	}
	body := ctxReader(r.Context(), r.Body)
	var (
		facts []midas.Fact
		err   error
	)
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		facts, err = parseFactsJSON(body)
	} else {
		facts, err = parseFactsTSV(body)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad facts body: %v", err)
		return
	}
	sn.wmu.Lock()
	if sn.slog != nil {
		// Durable before applied: if the append fails, the session memory
		// is untouched and the 500 is honest — nothing to forget.
		if aerr := sn.slog.AppendFacts(facts); aerr != nil {
			sn.wmu.Unlock()
			writeErr(w, http.StatusInternalServerError, "persisting facts: %v", aerr)
			return
		}
	}
	sn.sess.AddFacts(facts...)
	sn.wmu.Unlock()
	s.maybeSnapshot(sn)
	writeJSON(w, http.StatusOK, map[string]int{"added": len(facts)})
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	sn := s.sessionOrErr(w, r)
	if sn == nil {
		return
	}
	q := r.URL.Query()
	wait := q.Get("wait") == "true" || q.Get("wait") == "1"
	var timeout time.Duration
	if t := q.Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad timeout %q", t)
			return
		}
		timeout = d
	}
	j, err := s.startDiscover(r.Context(), sn, wait, timeout)
	switch {
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	case errors.Is(err, errSaturated):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "discovery capacity saturated, retry later")
		return
	}
	addLogFields(w, "job", j.id, "session", sn.name)
	j.mu.Lock()
	status := j.status
	j.mu.Unlock()
	code := http.StatusAccepted
	if status != StateRunning {
		code = http.StatusOK
	}
	writeJSON(w, code, s.jobInfo(j))
}

func (s *Server) jobInfo(j *job) map[string]any {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := map[string]any{
		"job":     j.id,
		"session": j.session,
		"status":  j.status,
		"cached":  j.cached,
	}
	if j.err != nil {
		info["error"] = j.err.Error()
	}
	if j.result != nil {
		info["slices"] = len(j.result.Slices)
	}
	end := j.finished
	if j.status == StateRunning {
		end = s.now()
	}
	info["elapsed_seconds"] = end.Sub(j.started).Seconds()
	return info
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.RUnlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].started.Before(jobs[k].started) })
	list := make([]map[string]any, len(jobs))
	for i, j := range jobs {
		list[i] = s.jobInfo(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

func (s *Server) jobOrErr(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	j := s.job(id)
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", id)
	}
	return j
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if j := s.jobOrErr(w, r); j != nil {
		writeJSON(w, http.StatusOK, s.jobInfo(j))
	}
}

type apiProperty struct {
	Predicate string `json:"predicate"`
	Value     string `json:"value"`
}

type apiSlice struct {
	Source      string        `json:"source"`
	Description string        `json:"description"`
	Properties  []apiProperty `json:"properties"`
	Entities    []string      `json:"entities"`
	Facts       int           `json:"facts"`
	NewFacts    int           `json:"new_facts"`
	Profit      float64       `json:"profit"`
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobOrErr(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	status, cached, res, jerr := j.status, j.cached, j.result, j.err
	j.mu.Unlock()
	switch {
	case status == StateRunning:
		writeErr(w, http.StatusConflict, "job %s is still running", j.id)
		return
	case res == nil:
		writeErr(w, http.StatusInternalServerError, "job %s failed: %v", j.id, jerr)
		return
	}
	slices := make([]apiSlice, len(res.Slices))
	for i, sl := range res.Slices {
		props := make([]apiProperty, len(sl.Properties))
		for k, p := range sl.Properties {
			props[k] = apiProperty{Predicate: p.Predicate, Value: p.Value}
		}
		slices[i] = apiSlice{
			Source: sl.Source, Description: sl.Description, Properties: props,
			Entities: sl.Entities, Facts: sl.Facts, NewFacts: sl.NewFacts, Profit: sl.Profit,
		}
	}
	out := map[string]any{
		"job":               j.id,
		"session":           j.session,
		"status":            status,
		"cached":            cached,
		"rounds":            res.Rounds,
		"sources_processed": res.SourcesProcessed,
		"fingerprint":       fmt.Sprintf("%016x", res.Fingerprint),
		"slices":            slices,
	}
	if jerr != nil {
		out["error"] = jerr.Error()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAbsorb absorbs slices of a finished job's result into the
// session KB: the listed indexes, or every slice when none are given.
func (s *Server) handleAbsorb(w http.ResponseWriter, r *http.Request) {
	sn := s.sessionOrErr(w, r)
	if sn == nil {
		return
	}
	var req struct {
		Job    string `json:"job"`
		Slices []int  `json:"slices"`
	}
	if err := decodeJSONBody(r, &req, false); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j := s.job(req.Job)
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", req.Job)
		return
	}
	j.mu.Lock()
	res, status, jobSession := j.result, j.status, j.session
	j.mu.Unlock()
	if jobSession != sn.name {
		writeErr(w, http.StatusBadRequest, "job %s belongs to session %q", req.Job, jobSession)
		return
	}
	if status == StateRunning || res == nil {
		writeErr(w, http.StatusConflict, "job %s has no result to absorb (status %s)", req.Job, status)
		return
	}
	idx := req.Slices
	if len(idx) == 0 {
		idx = make([]int, len(res.Slices))
		for i := range idx {
			idx[i] = i
		}
	}
	// Validate every index before absorbing anything: the batch must be
	// all-or-nothing so the logged record matches what was applied.
	for _, i := range idx {
		if i < 0 || i >= len(res.Slices) {
			writeErr(w, http.StatusBadRequest, "slice index %d out of range [0,%d)", i, len(res.Slices))
			return
		}
	}
	sn.wmu.Lock()
	if sn.slog != nil {
		slices := make([]store.AbsorbSlice, len(idx))
		for k, i := range idx {
			slices[k] = store.AbsorbSlice{Source: res.Slices[i].Source, Entities: res.Slices[i].Entities}
		}
		if aerr := sn.slog.AppendAbsorb(slices); aerr != nil {
			sn.wmu.Unlock()
			writeErr(w, http.StatusInternalServerError, "persisting absorb: %v", aerr)
			return
		}
	}
	added, absorbed := 0, 0
	for _, i := range idx {
		added += sn.sess.Absorb(res.Slices[i])
		absorbed++
	}
	sn.wmu.Unlock()
	s.maybeSnapshot(sn)
	writeJSON(w, http.StatusOK, map[string]int{"absorbed": absorbed, "added": added})
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	sn := s.sessionOrErr(w, r)
	if sn == nil {
		return
	}
	kbFacts, covered := sn.sess.Progress()
	writeJSON(w, http.StatusOK, map[string]any{"kb_facts": kbFacts, "coverage": covered})
}

// ctxReader bounds reads from r by ctx: once the request deadline hits
// or the client disconnects, the next Read returns ctx.Err() instead of
// blocking on a stalled body. (net/http cancels the connection on
// disconnect, but a deadline set by withMetrics otherwise leaves body
// reads running past it.)
func ctxReader(ctx context.Context, r io.Reader) io.Reader {
	return ctxReadFunc(func(p []byte) (int, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return r.Read(p)
	})
}

type ctxReadFunc func(p []byte) (int, error)

func (f ctxReadFunc) Read(p []byte) (int, error) { return f(p) }

// decodeJSONBody decodes a JSON request body into v. An empty body is
// allowed when optional is true (e.g. POST /api/sessions with defaults).
func decodeJSONBody(r *http.Request, v any, optional bool) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		if optional && errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	return nil
}
