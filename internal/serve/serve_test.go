package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"midas"
	"midas/internal/obs"
	"midas/internal/testutil"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	// Registered before the server's own cleanup, so the leak diff runs
	// after Close has torn everything down: every suite built on this
	// helper asserts its server leaves no goroutines behind — including
	// the drain tests, whose jobs straddle shutdown.
	testutil.CheckGoroutines(t)
	if opts.Registry == nil {
		opts.Registry = obs.New()
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// do issues a request and decodes the JSON response into out (skipped
// when out is nil), returning the status code.
func do(t *testing.T, method, url string, body io.Reader, contentType string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func corpusFacts(vertical string, n int) []apiFact {
	var facts []apiFact
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://%s.example.com/wiki/e%d.htm", vertical, i)
		subj := fmt.Sprintf("%s entity %d", vertical, i)
		facts = append(facts,
			apiFact{Subject: subj, Predicate: "kind", Object: vertical, Confidence: 0.9, URL: url},
			apiFact{Subject: subj, Predicate: "id", Object: fmt.Sprintf("id-%s-%d", vertical, i), Confidence: 0.9, URL: url},
		)
	}
	return facts
}

func postFacts(t *testing.T, base, session string, facts []apiFact) {
	t.Helper()
	b, _ := json.Marshal(facts)
	var out struct {
		Added int `json:"added"`
	}
	if code := do(t, "POST", base+"/api/sessions/"+session+"/facts", bytes.NewReader(b), "application/json", &out); code != 200 {
		t.Fatalf("add facts: HTTP %d", code)
	}
	if out.Added != len(facts) {
		t.Fatalf("added %d facts, want %d", out.Added, len(facts))
	}
}

type jobResp struct {
	Job    string `json:"job"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Slices int    `json:"slices"`
	Error  string `json:"error"`
}

// discoverWait runs a discovery job and polls it to completion.
func discoverWait(t *testing.T, base, session string) jobResp {
	t.Helper()
	var j jobResp
	code := do(t, "POST", base+"/api/sessions/"+session+"/discover", nil, "", &j)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("discover: HTTP %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.Status == StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", j.Job)
		}
		time.Sleep(10 * time.Millisecond)
		if code := do(t, "GET", base+"/api/jobs/"+j.Job, nil, "", &j); code != 200 {
			t.Fatalf("poll: HTTP %d", code)
		}
	}
	return j
}

// TestAPIRoundTrip drives the full curl flow of the CI smoke job:
// create session → add facts → discovery job → poll → result → absorb →
// progress, and checks the serve/* metric trail.
func TestAPIRoundTrip(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, Options{Registry: reg})

	var created struct {
		Session string `json:"session"`
	}
	if code := do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"loop"}`), "application/json", &created); code != 201 {
		t.Fatalf("create: HTTP %d", code)
	}
	if created.Session != "loop" {
		t.Fatalf("created %q", created.Session)
	}
	// Duplicate name → 409.
	if code := do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"loop"}`), "application/json", nil); code != 409 {
		t.Fatalf("duplicate create: HTTP %d, want 409", code)
	}

	// Seed the KB over TSV, like a production bootstrap.
	if code := do(t, "POST", ts.URL+"/api/sessions/loop/kb",
		strings.NewReader("alpha entity 0\tkind\talpha\n"), "text/tab-separated-values", nil); code != 200 {
		t.Fatalf("kb load: HTTP %d", code)
	}
	postFacts(t, ts.URL, "loop", corpusFacts("alpha", 25))
	postFacts(t, ts.URL, "loop", corpusFacts("beta", 25))

	j := discoverWait(t, ts.URL, "loop")
	if j.Status != StateDone || j.Slices == 0 {
		t.Fatalf("job = %+v, want done with slices", j)
	}

	var res struct {
		Slices []apiSlice `json:"slices"`
	}
	if code := do(t, "GET", ts.URL+"/api/jobs/"+j.Job+"/result", nil, "", &res); code != 200 {
		t.Fatalf("result: HTTP %d", code)
	}
	if len(res.Slices) != j.Slices || res.Slices[0].Description == "" || len(res.Slices[0].Entities) == 0 {
		t.Fatalf("result slices malformed: %+v", res.Slices)
	}

	var absorbed struct{ Absorbed, Added int }
	body := fmt.Sprintf(`{"job":%q,"slices":[0]}`, j.Job)
	if code := do(t, "POST", ts.URL+"/api/sessions/loop/absorb", strings.NewReader(body), "application/json", &absorbed); code != 200 {
		t.Fatalf("absorb: HTTP %d", code)
	}
	if absorbed.Added == 0 {
		t.Fatal("absorb added nothing")
	}

	var prog struct {
		KBFacts  int     `json:"kb_facts"`
		Coverage float64 `json:"coverage"`
	}
	if code := do(t, "GET", ts.URL+"/api/sessions/loop/progress", nil, "", &prog); code != 200 {
		t.Fatalf("progress: HTTP %d", code)
	}
	if prog.KBFacts <= 1 || prog.Coverage <= 0 {
		t.Fatalf("progress = %+v", prog)
	}

	snap := s.Metrics().Snapshot()
	if snap.Gauges["serve/sessions"] != 1 {
		t.Errorf("serve/sessions = %v", snap.Gauges["serve/sessions"])
	}
	if got := reg.Counter("serve/jobs/finished").Value(); got != 1 {
		t.Errorf("serve/jobs/finished = %d", got)
	}
	found := false
	for _, series := range snap.CounterVecs["serve/requests"].Series {
		if series.Labels["endpoint"] == "POST /api/sessions/{name}/discover" && series.Labels["code"] == "202" {
			found = true
		}
	}
	if !found {
		t.Errorf("no request counter for the discover endpoint: %+v", snap.CounterVecs["serve/requests"])
	}
}

// TestDiscoverCache: a second identical discover is served from the
// fingerprint cache without a pipeline run; AddFacts and Absorb each
// invalidate it.
func TestDiscoverCache(t *testing.T) {
	reg := obs.New()
	_, ts := newTestServer(t, Options{Registry: reg})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"c"}`), "application/json", nil)
	postFacts(t, ts.URL, "c", corpusFacts("alpha", 25))

	j1 := discoverWait(t, ts.URL, "c")
	if j1.Cached {
		t.Fatal("first discover must miss")
	}
	j2 := discoverWait(t, ts.URL, "c")
	if !j2.Cached {
		t.Fatal("second identical discover must hit the cache")
	}
	if j2.Job == j1.Job {
		t.Fatal("cache hit must still mint a job")
	}
	if hits := reg.Counter("serve/cache/hit").Value(); hits != 1 {
		t.Fatalf("serve/cache/hit = %d, want 1", hits)
	}

	// AddFacts moves the fingerprint → miss.
	postFacts(t, ts.URL, "c", corpusFacts("beta", 25))
	j3 := discoverWait(t, ts.URL, "c")
	if j3.Cached {
		t.Fatal("discover after AddFacts must miss")
	}
	// Absorb grows the KB → miss again.
	body := fmt.Sprintf(`{"job":%q}`, j3.Job)
	var ab struct{ Added int }
	if code := do(t, "POST", ts.URL+"/api/sessions/c/absorb", strings.NewReader(body), "application/json", &ab); code != 200 || ab.Added == 0 {
		t.Fatalf("absorb all: HTTP %d, added %d", code, ab.Added)
	}
	j4 := discoverWait(t, ts.URL, "c")
	if j4.Cached {
		t.Fatal("discover after Absorb must miss")
	}
	if misses := reg.Counter("serve/cache/miss").Value(); misses != 3 {
		t.Fatalf("serve/cache/miss = %d, want 3", misses)
	}
}

// TestPartialCacheHit: a delta confined to one source misses the
// exact-fingerprint result cache but answers most sources from the
// session's incremental state, surfaced as a serve/cache/partial hit.
func TestPartialCacheHit(t *testing.T) {
	reg := obs.New()
	_, ts := newTestServer(t, Options{Registry: reg})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"p"}`), "application/json", nil)
	postFacts(t, ts.URL, "p", corpusFacts("alpha", 10))
	postFacts(t, ts.URL, "p", corpusFacts("beta", 10))
	if j := discoverWait(t, ts.URL, "p"); j.Status != StateDone {
		t.Fatalf("prime discover: %+v", j)
	}
	if v := reg.Counter("serve/cache/partial").Value(); v != 0 {
		t.Fatalf("serve/cache/partial = %d before any delta, want 0", v)
	}

	// One fact on one existing page: the exact cache misses, but only
	// that page's branch is re-detected.
	postFacts(t, ts.URL, "p", []apiFact{{
		Subject: "alpha entity 0", Predicate: "kind", Object: "alpha prime",
		Confidence: 0.9, URL: "http://alpha.example.com/wiki/e0.htm",
	}})
	j := discoverWait(t, ts.URL, "p")
	if j.Status != StateDone || j.Cached {
		t.Fatalf("delta discover: %+v", j)
	}
	if v := reg.Counter("serve/cache/partial").Value(); v != 1 {
		t.Fatalf("serve/cache/partial = %d after single-source delta, want 1", v)
	}

	// An unchanged re-discover is an exact hit, not another partial one.
	if j := discoverWait(t, ts.URL, "p"); !j.Cached {
		t.Fatalf("unchanged re-discover not cached: %+v", j)
	}
	if v := reg.Counter("serve/cache/partial").Value(); v != 1 {
		t.Fatalf("serve/cache/partial = %d after exact hit, want 1", v)
	}
}

// blockingDiscover substitutes the job body: it parks until release is
// closed (or the context ends), so tests control job lifetime exactly.
func blockingDiscover(release <-chan struct{}) func(context.Context, *midas.Session) (*midas.Result, error) {
	return func(ctx context.Context, sess *midas.Session) (*midas.Result, error) {
		select {
		case <-release:
			return &midas.Result{}, nil
		case <-ctx.Done():
			return &midas.Result{}, ctx.Err()
		}
	}
}

// TestShedUnderSaturation: with MaxInFlight=1 and a discovery parked in
// flight, the next discover request is shed with 429 and the shed
// counter moves; after release, capacity returns.
func TestShedUnderSaturation(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, Options{MaxInFlight: 1, Registry: reg})
	release := make(chan struct{})
	s.discover = blockingDiscover(release)
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"b"}`), "application/json", nil)
	postFacts(t, ts.URL, "b", corpusFacts("alpha", 2))

	var j jobResp
	if code := do(t, "POST", ts.URL+"/api/sessions/b/discover", nil, "", &j); code != 202 {
		t.Fatalf("first discover: HTTP %d", code)
	}
	var errResp struct {
		Error string `json:"error"`
	}
	if code := do(t, "POST", ts.URL+"/api/sessions/b/discover", nil, "", &errResp); code != http.StatusTooManyRequests {
		t.Fatalf("saturated discover: HTTP %d, want 429", code)
	}
	if errResp.Error == "" {
		t.Error("429 response carries no error message")
	}
	if shed := reg.Counter("serve/shed").Value(); shed != 1 {
		t.Errorf("serve/shed = %d, want 1", shed)
	}
	close(release)
	for i := 0; ; i++ {
		if code := do(t, "POST", ts.URL+"/api/sessions/b/discover", nil, "", &j); code != http.StatusTooManyRequests {
			if code != 200 && code != 202 {
				t.Fatalf("post-release discover: HTTP %d", code)
			}
			break
		}
		if i > 100 {
			t.Fatal("slot never came back after release")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSyncDiscoverDeadlinePartial: a synchronous discover whose
// deadline expires returns immediately with partial status instead of
// hanging — and the partial result is not cached.
func TestSyncDiscoverDeadlinePartial(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, Options{Registry: reg})
	s.discover = blockingDiscover(nil) // only the context can end it
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"d"}`), "application/json", nil)
	postFacts(t, ts.URL, "d", corpusFacts("alpha", 2))

	start := time.Now()
	var j jobResp
	if code := do(t, "POST", ts.URL+"/api/sessions/d/discover?wait=true&timeout=50ms", nil, "", &j); code != 200 {
		t.Fatalf("sync discover: HTTP %d", code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline-bounded discover took %v", elapsed)
	}
	if j.Status != StatePartial {
		t.Fatalf("status = %q, want %q", j.Status, StatePartial)
	}
	if code := do(t, "GET", ts.URL+"/api/jobs/"+j.Job+"/result", nil, "", nil); code != 200 {
		t.Fatalf("partial result fetch: HTTP %d", code)
	}
	if hits := reg.Counter("serve/cache/hit").Value(); hits != 0 {
		t.Fatalf("partial results must not be cached (hits=%d)", hits)
	}
}

// TestDrainWithInFlightJob: draining refuses new discoveries with 503,
// waits for the running job, and cancels it when the drain context
// expires — the job ends partial, never lost.
func TestDrainWithInFlightJob(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, Options{Registry: reg})
	s.discover = blockingDiscover(nil)
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"g"}`), "application/json", nil)
	postFacts(t, ts.URL, "g", corpusFacts("alpha", 2))

	var j jobResp
	if code := do(t, "POST", ts.URL+"/api/sessions/g/discover", nil, "", &j); code != 202 {
		t.Fatalf("discover: HTTP %d", code)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	drained := make(chan int)
	go func() { drained <- s.Drain(drainCtx) }()

	// Draining servers refuse new work.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code := do(t, "POST", ts.URL+"/api/sessions/g/discover", nil, "", nil)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining discover: HTTP %d, want 503", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	select {
	case inFlight := <-drained:
		if inFlight != 1 {
			t.Errorf("Drain reported %d in-flight jobs, want 1", inFlight)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain hung on a canceled in-flight job")
	}
	if code := do(t, "GET", ts.URL+"/api/jobs/"+j.Job, nil, "", &j); code != 200 {
		t.Fatalf("poll after drain: HTTP %d", code)
	}
	if j.Status != StatePartial {
		t.Errorf("drained job status = %q, want %q", j.Status, StatePartial)
	}
	if reg.Gauge("serve/draining").Value() != 1 {
		t.Error("serve/draining gauge not set")
	}
}

// TestConcurrentClients: ≥8 httptest clients hammer one session with
// the full API mix; under -race this proves the serving path and the
// RWMutex-guarded Session end to end. Weak assertions by design — the
// interleaving is the test.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Options{Registry: obs.New()})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"conc"}`), "application/json", nil)
	postFacts(t, ts.URL, "conc", corpusFacts("alpha", 20))

	const clients = 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				switch c % 5 {
				case 0:
					var j jobResp
					code := do(t, "POST", ts.URL+"/api/sessions/conc/discover", nil, "", &j)
					if code == http.StatusTooManyRequests {
						continue
					}
					do(t, "GET", ts.URL+"/api/jobs/"+j.Job, nil, "", &j)
					if j.Status == StateDone && j.Slices > 0 {
						body := fmt.Sprintf(`{"job":%q}`, j.Job)
						do(t, "POST", ts.URL+"/api/sessions/conc/absorb", strings.NewReader(body), "application/json", nil)
					}
				case 1:
					b, _ := json.Marshal(corpusFacts(fmt.Sprintf("v%d-%d", c, i), 3))
					do(t, "POST", ts.URL+"/api/sessions/conc/facts", bytes.NewReader(b), "application/json", nil)
				case 2:
					do(t, "POST", ts.URL+"/api/sessions/conc/discover?wait=true&timeout=2s", nil, "", nil)
				case 3:
					do(t, "GET", ts.URL+"/api/sessions/conc/progress", nil, "", nil)
					do(t, "GET", ts.URL+"/api/sessions/conc", nil, "", nil)
				default:
					do(t, "GET", ts.URL+"/api/jobs", nil, "", nil)
					do(t, "GET", ts.URL+"/metrics", nil, "", nil)
				}
			}
		}(c)
	}
	wg.Wait()
	var health struct {
		Status string `json:"status"`
	}
	if code := do(t, "GET", ts.URL+"/healthz", nil, "", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz after stress: HTTP %d %+v", code, health)
	}
}

// TestFactsTSVAndKBFormats: the TSV ingestion paths used by the CI
// smoke job (midas-datagen's facts.tsv layout, KB TSV), plus format
// errors.
func TestFactsTSVAndKBFormats(t *testing.T) {
	_, ts := newTestServer(t, Options{Registry: obs.New()})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"tsv"}`), "application/json", nil)

	tsv := "a1\tkind\talpha\t0.9\thttp://x.example.com/a/1.htm\n" +
		"a2\tkind\talpha\t0.9\thttp://x.example.com/a/2.htm\n" +
		"a3\tkind\talpha\n" // 3-column form: confidence and URL optional
	var added struct{ Added int }
	if code := do(t, "POST", ts.URL+"/api/sessions/tsv/facts", strings.NewReader(tsv), "text/tab-separated-values", &added); code != 200 {
		t.Fatalf("facts tsv: HTTP %d", code)
	}
	if added.Added != 3 {
		t.Fatalf("added = %d, want 3", added.Added)
	}
	if code := do(t, "POST", ts.URL+"/api/sessions/tsv/facts", strings.NewReader("one-column\n"), "", nil); code != 400 {
		t.Fatalf("malformed tsv: HTTP %d, want 400", code)
	}
	if code := do(t, "POST", ts.URL+"/api/sessions/tsv/kb?format=nope", strings.NewReader(""), "", nil); code != 400 {
		t.Fatalf("bad kb format: HTTP %d, want 400", code)
	}
	var kb struct{ Added int }
	if code := do(t, "POST", ts.URL+"/api/sessions/tsv/kb", strings.NewReader("a1\tkind\talpha\n"), "", &kb); code != 200 || kb.Added != 1 {
		t.Fatalf("kb tsv: HTTP %d added %d", code, kb.Added)
	}

	// Unknown session and job → 404.
	if code := do(t, "GET", ts.URL+"/api/sessions/ghost", nil, "", nil); code != 404 {
		t.Fatalf("ghost session: HTTP %d", code)
	}
	if code := do(t, "GET", ts.URL+"/api/jobs/j999", nil, "", nil); code != 404 {
		t.Fatalf("ghost job: HTTP %d", code)
	}
}
