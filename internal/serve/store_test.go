// Serve-level durability tests: the HTTP surface drives mutations into
// a stored session, the process "dies" (graceful drain or hard kill),
// and a second server recovering from the same data directory must
// answer with the identical session — fingerprint, epoch, cache hits
// and all. Plus the delete-during-discover regression: deleting a
// session cancels its running jobs before the tombstone.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"midas"
	"midas/internal/obs"
	"midas/internal/store"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Fsync: store.PolicyNone, Registry: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// newDurableServer wires a store into a test server and registers the
// store's cleanup AFTER newTestServer's, so it closes before the
// goroutine-leak check runs (cleanups are LIFO).
func newDurableServer(t *testing.T, st *store.Store, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.Store = st
	s, ts := newTestServer(t, opts)
	t.Cleanup(func() { st.Close() })
	return s, ts
}

type sessInfo struct {
	Session     string `json:"session"`
	CorpusFacts int    `json:"corpus_facts"`
	KBFacts     int    `json:"kb_facts"`
	Fingerprint string `json:"fingerprint"`
	KBEpoch     uint64 `json:"kb_epoch"`
	Recovered   bool   `json:"recovered"`
}

func getSession(t *testing.T, base, name string) sessInfo {
	t.Helper()
	var info sessInfo
	if code := do(t, "GET", base+"/api/sessions/"+name, nil, "", &info); code != 200 {
		t.Fatalf("get session %s: HTTP %d", name, code)
	}
	return info
}

// driveDurableSession pushes the full mutation mix through the API:
// create with non-default options, KB seed, fact batches, a discovery,
// and an absorb of its top slice.
func driveDurableSession(t *testing.T, base, name string) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"options":{"workers":2,"max_slices":16}}`, name)
	if code := do(t, "POST", base+"/api/sessions", strings.NewReader(body), "application/json", nil); code != 201 {
		t.Fatalf("create: HTTP %d", code)
	}
	if code := do(t, "POST", base+"/api/sessions/"+name+"/kb",
		strings.NewReader("alpha entity 0\tkind\talpha\n"), "text/tab-separated-values", nil); code != 200 {
		t.Fatalf("kb load: HTTP %d", code)
	}
	postFacts(t, base, name, corpusFacts("alpha", 25))
	postFacts(t, base, name, corpusFacts("beta", 25))
	j := discoverWait(t, base, name)
	if j.Status != StateDone || j.Slices == 0 {
		t.Fatalf("job = %+v, want done with slices", j)
	}
	var absorbed struct{ Absorbed, Added int }
	ab := fmt.Sprintf(`{"job":%q,"slices":[0]}`, j.Job)
	if code := do(t, "POST", base+"/api/sessions/"+name+"/absorb", strings.NewReader(ab), "application/json", &absorbed); code != 200 {
		t.Fatalf("absorb: HTTP %d", code)
	}
	if absorbed.Added == 0 {
		t.Fatal("absorb added nothing")
	}
}

// TestServeRecoveryRoundTrip: graceful shutdown path. Drain snapshots
// every session; a second server on the same directory restores them
// with identical fingerprints, marks them recovered, and answers an
// unchanged discovery from the persisted result cache.
func TestServeRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, ts := newDurableServer(t, st, Options{Registry: obs.New()})

	driveDurableSession(t, ts.URL, "dur")
	// A discovery at the post-absorb state, so the result cache holds an
	// entry at the final fingerprint.
	if j := discoverWait(t, ts.URL, "dur"); j.Status != StateDone {
		t.Fatalf("second discover: %+v", j)
	}
	before := getSession(t, ts.URL, "dur")
	if before.Recovered {
		t.Error("fresh session reports recovered")
	}
	s.Drain(context.Background())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Second process lifetime.
	st2 := openTestStore(t, dir)
	reg2 := obs.New()
	s2, ts2 := newDurableServer(t, st2, Options{Registry: reg2})
	rec, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sessions) != 1 || len(rec.Quarantined) != 0 || len(rec.Dropped) != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
	after := getSession(t, ts2.URL, "dur")
	if !after.Recovered {
		t.Error("restored session not marked recovered")
	}
	if after.Fingerprint != before.Fingerprint || after.KBEpoch != before.KBEpoch ||
		after.CorpusFacts != before.CorpusFacts || after.KBFacts != before.KBFacts {
		t.Fatalf("session diverged across restart:\nbefore %+v\nafter  %+v", before, after)
	}

	// The untouched session's discovery must be a result-cache hit: no
	// pipeline run, answered from the persisted cache.
	j := discoverWait(t, ts2.URL, "dur")
	if j.Status != StateDone || !j.Cached {
		t.Fatalf("post-restart discover = %+v, want cached done", j)
	}
	if hits := reg2.Counter("serve/cache/hit").Value(); hits != 1 {
		t.Errorf("serve/cache/hit = %d, want 1", hits)
	}

	// The recovered session is live: mutate, then survive one more
	// restart with the mutation intact.
	postFacts(t, ts2.URL, "dur", corpusFacts("gamma", 5))
	moved := getSession(t, ts2.URL, "dur")
	if moved.Fingerprint == after.Fingerprint {
		t.Fatal("mutation did not move the fingerprint")
	}
	s2.Drain(context.Background())
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	ts2.Close()

	st3 := openTestStore(t, dir)
	s3, ts3 := newDurableServer(t, st3, Options{Registry: obs.New()})
	if _, err := s3.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	final := getSession(t, ts3.URL, "dur")
	if final.Fingerprint != moved.Fingerprint {
		t.Fatalf("second restart fingerprint %s, want %s", final.Fingerprint, moved.Fingerprint)
	}
}

// TestServeRecoveryAfterKill: hard-kill path. No drain, no final
// snapshot, no graceful anything — the store freezes mid-flight and the
// next server must still recover every acknowledged mutation.
func TestServeRecoveryAfterKill(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	_, ts := newDurableServer(t, st, Options{Registry: obs.New()})

	driveDurableSession(t, ts.URL, "k")
	before := getSession(t, ts.URL, "k")
	st.Kill()
	// Acks after the kill must fail — nothing may claim durability the
	// frozen store cannot provide.
	code := do(t, "POST", ts.URL+"/api/sessions/k/facts",
		strings.NewReader(`[{"subject":"x","predicate":"y","object":"z","url":"http://a/"}]`),
		"application/json", nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("facts after kill: HTTP %d, want 500", code)
	}
	ts.Close()

	st2 := openTestStore(t, dir)
	s2, ts2 := newDurableServer(t, st2, Options{Registry: obs.New()})
	rec, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sessions) != 1 || len(rec.Quarantined) != 0 {
		t.Fatalf("recovery after kill: %+v", rec)
	}
	after := getSession(t, ts2.URL, "k")
	if !after.Recovered || after.Fingerprint != before.Fingerprint || after.KBEpoch != before.KBEpoch {
		t.Fatalf("killed session diverged:\nbefore %+v\nafter  %+v", before, after)
	}
}

// TestRecoveredOptionsRestored: session options persist with the create
// record, and the RestoreOptions seam post-processes them at recovery.
func TestRecoveredOptionsRestored(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	_, ts := newDurableServer(t, st, Options{Registry: obs.New()})
	body := `{"name":"opt","options":{"workers":3,"max_slices":7}}`
	if code := do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(body), "application/json", nil); code != 201 {
		t.Fatalf("create: HTTP %d", code)
	}
	st.Kill()
	ts.Close()

	st2 := openTestStore(t, dir)
	var seen *midas.Options
	s2, _ := newDurableServer(t, st2, Options{
		Registry: obs.New(),
		RestoreOptions: func(opts *midas.Options) *midas.Options {
			seen = opts
			return opts
		},
	})
	if _, err := s2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if seen == nil || seen.Workers != 3 || seen.MaxSlices != 7 {
		t.Fatalf("restored options = %+v, want workers=3 max_slices=7", seen)
	}
}

// TestDeleteDuringDiscover is the regression for session deletion with
// running jobs: the in-flight discovery is canceled and waited out, the
// delete returns 204, and the session's durable files are gone —
// recovery on the same directory finds nothing.
func TestDeleteDuringDiscover(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, ts := newDurableServer(t, st, Options{Registry: obs.New()})
	entered := make(chan struct{}, 1)
	s.discover = func(ctx context.Context, sess *midas.Session) (*midas.Result, error) {
		entered <- struct{}{}
		<-ctx.Done() // only cancellation ends this discovery
		return &midas.Result{}, ctx.Err()
	}

	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"del"}`), "application/json", nil)
	postFacts(t, ts.URL, "del", corpusFacts("alpha", 3))

	var j jobResp
	if code := do(t, "POST", ts.URL+"/api/sessions/del/discover", nil, "", &j); code != 202 {
		t.Fatalf("discover: HTTP %d", code)
	}
	<-entered // the job is inside the discovery body now

	start := time.Now()
	if code := do(t, "DELETE", ts.URL+"/api/sessions/del", nil, "", nil); code != 204 {
		t.Fatalf("delete: HTTP %d, want 204", code)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("delete blocked %v on a cancelable job", elapsed)
	}
	// The job was canceled, not lost: it finished partial and remains
	// pollable after its session is gone.
	if code := do(t, "GET", ts.URL+"/api/jobs/"+j.Job, nil, "", &j); code != 200 {
		t.Fatalf("poll after delete: HTTP %d", code)
	}
	if j.Status != StatePartial {
		t.Errorf("deleted session's job status = %q, want %q", j.Status, StatePartial)
	}
	if code := do(t, "GET", ts.URL+"/api/sessions/del", nil, "", nil); code != 404 {
		t.Fatalf("get after delete: HTTP %d, want 404", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", "del")); !os.IsNotExist(err) {
		t.Error("deleted session's durable files still on disk")
	}

	// Recovery must not resurrect it.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	st2 := openTestStore(t, dir)
	s2, _ := newDurableServer(t, st2, Options{Registry: obs.New()})
	rec, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sessions) != 0 || len(rec.Dropped) != 0 || len(rec.Quarantined) != 0 {
		t.Fatalf("deleted session resurrected: %+v", rec)
	}
}

// TestSessionInfoFields pins the sessionInfo JSON contract the soak
// harness and CI recovery smoke depend on.
func TestSessionInfoFields(t *testing.T) {
	_, ts := newTestServer(t, Options{Registry: obs.New()})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"f"}`), "application/json", nil)
	var raw map[string]json.RawMessage
	if code := do(t, "GET", ts.URL+"/api/sessions/f", nil, "", &raw); code != 200 {
		t.Fatalf("get: HTTP %d", code)
	}
	for _, field := range []string{"session", "corpus_facts", "kb_facts", "fingerprint", "kb_epoch", "recovered"} {
		if _, ok := raw[field]; !ok {
			t.Errorf("sessionInfo missing %q: %v", field, raw)
		}
	}
	var fp string
	json.Unmarshal(raw["fingerprint"], &fp)
	if len(fp) != 16 {
		t.Errorf("fingerprint %q is not 16 hex digits", fp)
	}
}
