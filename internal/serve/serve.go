// Package serve implements the midas-serve HTTP service: long-lived,
// named discovery sessions over the public midas API, exposed as a JSON
// surface hardened for real traffic. Discoveries run as asynchronous
// jobs behind a bounded in-flight semaphore (saturation sheds with 429),
// request deadlines and client disconnects propagate into the pipeline
// via context, repeated discoveries on an unchanged corpus are answered
// from a result cache keyed by the session's FNV-1a fingerprint, cache
// misses run the session's delta-aware discovery (only sources the
// mutation touched are re-detected; reuse is surfaced as
// serve/cache/partial hits), and shutdown drains running jobs before
// the final metrics snapshot is flushed. Telemetry (/metrics, /debug/vars, /debug/pprof) is mounted on
// the same listener via obs.Mount.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"midas"
	"midas/internal/obs"
	"midas/internal/store"
)

// Options configures a Server. The zero value serves with the defaults
// noted per field.
type Options struct {
	// MaxInFlight bounds concurrently running discovery jobs (sync and
	// async alike); requests beyond it are shed with 429. Default:
	// GOMAXPROCS.
	MaxInFlight int
	// RequestTimeout is the per-request deadline applied to every API
	// handler (synchronous discoveries inherit it through the request
	// context). Default: 30s; negative disables.
	RequestTimeout time.Duration
	// JobTimeout bounds each asynchronous discovery job. Default:
	// unlimited.
	JobTimeout time.Duration
	// Registry receives the service metrics (serve/* series) and is the
	// registry whose telemetry endpoints are mounted on the API mux.
	// Default: the process-wide obs registry.
	Registry *obs.Registry
	// Logger receives access and job-lifecycle records. Default: the
	// process-wide obs logger (nil there too = logging disabled).
	Logger *obs.Logger
	// Trace receives the per-request root spans and, through them, the
	// discovery pipeline's spans — one trace per request. Default: a
	// private tracer owned by the server (request tracing is what feeds
	// /profile, so unlike batch binaries it is always on).
	Trace *obs.Tracer
	// Store, when set, makes sessions durable: every confirmed mutation
	// is written to the session's write-ahead log before the 2xx ack,
	// compacting snapshots bound recovery time, and Recover restores
	// prior sessions at startup. nil serves from memory only.
	Store *store.Store
	// RestoreOptions, when set, post-processes the midas.Options decoded
	// from a recovered session's stored options JSON — the seam through
	// which the soak harness re-plants its fault-injecting detector
	// after a restart (Options.Detect is a function and cannot be
	// persisted). nil uses the decoded options as-is.
	RestoreOptions func(opts *midas.Options) *midas.Options
	// TraceRetention bounds completed spans kept by the tracer while
	// they wait to be folded into job profiles; oldest age out first,
	// and a job whose trace ages out before its first /profile GET
	// answers 404 there. A discovery over S sources emits ≈4·S spans
	// per round, so the default of 1<<17 holds the last few
	// Slim-corpus-sized jobs (folding a profile frees its trace
	// early). Negative retains everything.
	TraceRetention int

	// The four fields below are injection seams for the fault-injection
	// and soak harness (internal/faultinject, cmd/midas-soak). All
	// default to nil, and a nil seam costs production nothing beyond the
	// one resolution at New.

	// WrapDiscover, when set, wraps the discovery job body — the soak
	// harness injects seeded stalls and cancellations here. The wrapper
	// must honor ctx and must not mutate the session.
	WrapDiscover func(Discover) Discover
	// NewSession, when set, constructs the midas.Session behind each
	// created session — the seam through which the soak harness plants
	// a fault-injecting detector. nil means midas.NewSession(nil, opts).
	NewSession func(opts *midas.Options) *midas.Session
	// Now, when set, supplies the wall-clock timestamps the server
	// stamps on jobs and requests (started/finished times, elapsed
	// seconds) — the clock-skew seam. Context deadlines still run on
	// the real clock. nil means time.Now.
	Now func() time.Time
	// IDs, when set, mints request and job IDs (see IDSource). nil
	// means NewIDSource(0): plain deterministic counters.
	IDs *IDSource
}

// Discover is the discovery job body: the function a Server runs for
// each non-cached discovery. The default calls sess.DiscoverContext;
// Options.WrapDiscover interposes on it.
type Discover func(ctx context.Context, sess *midas.Session) (*midas.Result, error)

// Server is the discovery service: a registry of named sessions and
// their discovery jobs. Create with New, mount Handler on an
// http.Server, and call Drain then Close on shutdown.
type Server struct {
	opts   Options
	reg    *obs.Registry
	log    *obs.Logger // nil = fall back to obs.DefaultLogger at call sites
	tracer *obs.Tracer
	sem    chan struct{}

	// ready gates /readyz: false until the binary reports the listener
	// up (SetReady), false again the moment Drain begins — the
	// load-balancer signal to stop routing here while /healthz still
	// answers 200 for liveness.
	ready atomic.Bool

	// now and ids are the resolved clock and ID seams (Options.Now,
	// Options.IDs), never nil after New.
	now func() time.Time
	ids *IDSource

	mu       sync.RWMutex
	sessions map[string]*session
	jobs     map[string]*job
	nextSess int
	draining bool

	jobsWG  sync.WaitGroup
	snapWG  sync.WaitGroup // async threshold snapshots in flight
	running int64          // guarded by mu

	baseCtx    context.Context // canceled to hard-stop all jobs
	cancelJobs context.CancelFunc

	// discover is the job body; tests substitute it to model slow or
	// blocking discoveries without large corpora, and Options.
	// WrapDiscover interposes fault injection on it.
	discover Discover
	// newSession is the resolved Options.NewSession seam.
	newSession func(opts *midas.Options) *midas.Session
}

// session is one named midas.Session plus its single-entry result
// cache. The corpus is append-only and the KB only grows, so an old
// fingerprint never recurs and one entry is all a cache needs. The
// cache is only the exact-hit fast path: a fingerprint miss runs the
// session's incremental discovery, which itself reuses the per-source
// detection results of the previous run for every source the mutation
// did not touch (reported as serve/cache/partial hits).
type session struct {
	name string
	sess *midas.Session

	// wmu serializes mutations (facts, KB loads, absorbs) against each
	// other, against WAL appends, and against snapshots, so every logged
	// record reflects the order the session actually applied.
	wmu sync.Mutex
	// slog is the session's durable log; nil when the server runs
	// without a store.
	slog *store.Log
	// recovered marks sessions restored from the store at startup.
	recovered bool
	// snapping guards the at-most-one async threshold snapshot.
	snapping atomic.Bool

	cmu      sync.Mutex
	cacheFP  uint64
	cacheRes *midas.Result
}

func (sn *session) cached(fp uint64) *midas.Result {
	sn.cmu.Lock()
	defer sn.cmu.Unlock()
	if sn.cacheRes != nil && sn.cacheFP == fp {
		return sn.cacheRes
	}
	return nil
}

func (sn *session) storeCache(fp uint64, res *midas.Result) {
	sn.cmu.Lock()
	sn.cacheFP, sn.cacheRes = fp, res
	sn.cmu.Unlock()
}

// New returns a Server ready to serve Handler().
func New(opts Options) *Server {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	tracer := opts.Trace
	if tracer == nil {
		tracer = obs.NewTracer()
	}
	retention := opts.TraceRetention
	if retention == 0 {
		retention = 1 << 17
	}
	if retention > 0 {
		tracer.SetRetention(retention)
	}
	s := &Server{
		opts:       opts,
		reg:        opts.Registry.OrDefault(),
		log:        opts.Logger,
		tracer:     tracer,
		now:        opts.Now,
		ids:        opts.IDs,
		sem:        make(chan struct{}, opts.MaxInFlight),
		sessions:   make(map[string]*session),
		jobs:       make(map[string]*job),
		baseCtx:    ctx,
		cancelJobs: cancel,
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.ids == nil {
		s.ids = NewIDSource(0)
	}
	s.newSession = opts.NewSession
	if s.newSession == nil {
		s.newSession = func(o *midas.Options) *midas.Session {
			return midas.NewSession(nil, o)
		}
	}
	s.discover = func(ctx context.Context, sess *midas.Session) (*midas.Result, error) {
		return sess.DiscoverContext(ctx)
	}
	if opts.WrapDiscover != nil {
		s.discover = opts.WrapDiscover(s.discover)
	}
	return s
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// createSession registers a new session and, when a store is
// configured, opens its durable log — the create record (with
// optionsJSON, replayed at recovery) is on disk before the caller acks.
// The store call runs under s.mu: creation is rare, and holding the
// lock closes the window where a session would be visible with no
// durable existence.
func (s *Server) createSession(name string, opts *midas.Options, optionsJSON []byte) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		for {
			s.nextSess++
			name = fmt.Sprintf("s%d", s.nextSess)
			if _, ok := s.sessions[name]; !ok {
				break
			}
		}
	} else if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("invalid session name %q", name)
	}
	if _, ok := s.sessions[name]; ok {
		return nil, errExists
	}
	sn := &session{name: name, sess: s.newSession(opts)}
	if s.opts.Store != nil {
		l, err := s.opts.Store.Create(name, optionsJSON)
		if err != nil {
			return nil, fmt.Errorf("persisting session: %w", err)
		}
		sn.slog = l
	}
	s.sessions[name] = sn
	s.reg.Gauge("serve/sessions").Set(float64(len(s.sessions)))
	return sn, nil
}

func (s *Server) session(name string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[name]
}

// deleteSession removes a session: deregister it (new requests 404
// immediately), cancel its in-flight discovery jobs and wait for them
// to wind down to their partial results, then tombstone and remove the
// session's durable files. ctx bounds the wait; on expiry the files are
// still removed — the jobs hold their own references and die with their
// canceled contexts.
func (s *Server) deleteSession(ctx context.Context, name string) (bool, error) {
	s.mu.Lock()
	sn, ok := s.sessions[name]
	if !ok {
		s.mu.Unlock()
		return false, nil
	}
	delete(s.sessions, name)
	s.reg.Gauge("serve/sessions").Set(float64(len(s.sessions)))
	var running []*job
	for _, j := range s.jobs {
		if j.session == name && j.statusNow() == StateRunning {
			running = append(running, j)
		}
	}
	s.mu.Unlock()

	var waitErr error
	for _, j := range running {
		j.mu.Lock()
		cancel, done := j.cancel, j.done
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		if done == nil {
			continue
		}
		select {
		case <-done:
		case <-ctx.Done():
			waitErr = ctx.Err()
		}
	}
	if len(running) > 0 {
		s.logger().Info(ctx, "session jobs canceled for delete",
			"session", name, "jobs", len(running))
	}
	if sn.slog != nil {
		if err := sn.slog.Delete(); err != nil {
			return true, err
		}
	}
	return true, waitErr
}

// Drain puts the server in draining mode — discovery requests are
// refused with 503 — and waits for in-flight jobs to finish. If ctx
// expires first, the jobs' contexts are canceled (the pipeline returns
// partial results at the next hierarchy-level boundary) and Drain waits
// for them to wind down. It returns the number of jobs that were still
// running when draining began.
func (s *Server) Drain(ctx context.Context) int {
	s.ready.Store(false)
	s.mu.Lock()
	s.draining = true
	inFlight := int(s.running)
	s.mu.Unlock()
	s.reg.Gauge("serve/draining").Set(1)
	s.logger().Info(ctx, "drain started", "in_flight", inFlight)

	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	canceled := false
	select {
	case <-done:
	case <-ctx.Done():
		canceled = true
		s.cancelJobs()
		<-done
	}
	s.snapshotAll(ctx)
	s.logger().Info(ctx, "drain finished", "in_flight", inFlight, "canceled", canceled)
	return inFlight
}

// snapshotAll compacts every durable session: threshold snapshots still
// in flight are awaited, then each session gets a final snapshot so the
// next startup recovers without replay. Best-effort — a session whose
// snapshot fails still has its synced WAL.
func (s *Server) snapshotAll(ctx context.Context) {
	if s.opts.Store == nil {
		return
	}
	s.snapWG.Wait()
	s.mu.RLock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sn := range s.sessions {
		sessions = append(sessions, sn)
	}
	s.mu.RUnlock()
	for _, sn := range sessions {
		if sn.slog == nil {
			continue
		}
		sn.wmu.Lock()
		err := sn.slog.Snapshot(sn.sess)
		sn.wmu.Unlock()
		if err != nil {
			s.logger().Warn(ctx, "drain snapshot failed", "session", sn.name, "err", err)
		}
	}
}

// maybeSnapshot starts an async compacting snapshot when the session's
// WAL has outgrown the store's threshold — at most one per session at a
// time, taken under wmu so the snapshot sees a quiescent session.
// Mutations keep flowing while the marshaled state is written; only the
// segment swap holds the log lock.
func (s *Server) maybeSnapshot(sn *session) {
	if sn.slog == nil || !sn.slog.NeedsSnapshot() || !sn.snapping.CompareAndSwap(false, true) {
		return
	}
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		defer sn.snapping.Store(false)
		sn.wmu.Lock()
		err := sn.slog.Snapshot(sn.sess)
		sn.wmu.Unlock()
		if err != nil {
			s.logger().Warn(context.Background(), "snapshot failed", "session", sn.name, "err", err)
		}
	}()
}

// decodeStoredOptions rebuilds midas.Options from the options JSON a
// create record stored (the apiOptions request shape, kept verbatim),
// then lets the RestoreOptions seam re-attach what JSON cannot carry.
func (s *Server) decodeStoredOptions(optionsJSON []byte) (*midas.Options, error) {
	var opts *midas.Options
	if len(optionsJSON) > 0 && string(optionsJSON) != "null" {
		var api apiOptions
		if err := json.Unmarshal(optionsJSON, &api); err != nil {
			return nil, err
		}
		opts = api.toOptions()
	}
	if s.opts.RestoreOptions != nil {
		opts = s.opts.RestoreOptions(opts)
	}
	return opts, nil
}

// Recover restores every session the store holds from before the last
// shutdown or crash: verified sessions are registered (marked
// recovered, result caches reattached), sessions that fail
// verification are quarantined by the store and surface only in the
// returned Recovery. Call once, after New and before serving traffic.
func (s *Server) Recover(ctx context.Context) (*store.Recovery, error) {
	if s.opts.Store == nil {
		return &store.Recovery{}, nil
	}
	rec, err := s.opts.Store.Recover(ctx, s.decodeStoredOptions)
	if err != nil {
		return rec, err
	}
	s.mu.Lock()
	for _, r := range rec.Sessions {
		sn := &session{name: r.Name, sess: r.Session, slog: r.Log, recovered: true}
		if r.CacheResult != nil {
			sn.cacheFP, sn.cacheRes = r.CacheFingerprint, r.CacheResult
		}
		s.sessions[r.Name] = sn
	}
	s.reg.Gauge("serve/sessions").Set(float64(len(s.sessions)))
	s.reg.Gauge("serve/sessions/recovered").Set(float64(len(rec.Sessions)))
	s.reg.Gauge("serve/sessions/quarantined").Set(float64(len(rec.Quarantined)))
	s.mu.Unlock()
	return rec, nil
}

// SetReady flips the /readyz verdict. Binaries call SetReady(true) once
// the listener is bound; Drain flips it back off.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Tracer returns the tracer collecting the server's request spans.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// logger resolves the server's logger at call time, so a default
// installed after New (the -log-level flag path) is still picked up.
func (s *Server) logger() *obs.Logger { return s.log.OrDefault() }

// Close releases the server's job contexts. Safe after Drain.
func (s *Server) Close() { s.cancelJobs() }

// Metrics returns the registry the server reports into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the service mux: the JSON API under /api, a health
// probe at /healthz, and the shared telemetry endpoints (obs.Mount) on
// the same listener.
func (s *Server) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	s.routes(mux)
	obs.Mount(mux, s.reg)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "midas-serve\n\n/api/sessions\n/api/jobs\n/healthz\n/readyz\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}
