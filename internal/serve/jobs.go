package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"midas"
	"midas/internal/obs"
)

// Job states. A deadline or disconnect mid-discovery yields
// StatePartial — the pipeline hands back the slices finalized so far —
// so a bounded request degrades instead of hanging or vanishing.
const (
	StateRunning = "running"
	StateDone    = "done"
	StatePartial = "partial"
	StateError   = "error"
)

var (
	errExists    = errors.New("session already exists")
	errSaturated = errors.New("discovery capacity saturated")
	errDraining  = errors.New("server is draining")
)

// job is one discovery run, sync or async. Poll via GET /api/jobs/{id};
// the result stays fetchable after completion.
type job struct {
	id      string
	session string
	request string // ID of the request that started it
	trace   int64  // trace holding the job's spans; 0 = none (cache hit)

	// cancel aborts the job's context and done closes when the job body
	// has returned — how session deletion stops in-flight discoveries
	// and waits them out. Both nil for cache-hit jobs, which never run.
	// Guarded by mu: the job is in the registry before they are set.
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	status   string
	result   *midas.Result
	err      error
	cached   bool
	started  time.Time
	finished time.Time
	profile  *jobProfile // folded from the trace on first /profile GET
}

// finish finalizes the job at now (the server's clock seam, so skewed
// soak clocks stamp consistently with started).
func (j *job) finish(now time.Time, res *midas.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = res
	j.err = err
	j.finished = now
	switch {
	case err == nil:
		j.status = StateDone
	case res != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)):
		j.status = StatePartial
	default:
		j.status = StateError
	}
}

// newJob registers a job for the session. Callers hold no server locks.
func (s *Server) newJob(sessionName string) *job {
	j := &job{
		id:      s.ids.JobID(),
		session: sessionName,
		status:  StateRunning,
		started: s.now(),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	return j
}

func (s *Server) job(id string) *job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jobs[id]
}

// acquire claims one discovery slot, or reports saturation/draining.
func (s *Server) acquire() error {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		return errDraining
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
		s.reg.Counter("serve/shed").Inc()
		return errSaturated
	}
}

func (s *Server) release() { <-s.sem }

func (s *Server) trackRunning() (untrack func()) {
	adjust := func(d int64) {
		s.mu.Lock()
		s.running += d
		s.reg.Gauge("serve/jobs/running").Set(float64(s.running))
		s.mu.Unlock()
	}
	adjust(1)
	return func() { adjust(-1) }
}

// execute runs one discovery under ctx, stores a completed result in
// the session cache if the corpus is still at fp, and finalizes the
// job. Only complete results are cacheable, and only if no facts
// arrived and no absorption happened between the request's fingerprint
// read and the discovery taking the session lock — the discovery
// stamps the fingerprint it actually ran at into Result.Fingerprint,
// so the recheck costs nothing instead of a second fingerprint
// computation. A completed discovery that reused cached per-source
// detection results from the previous run counts as a partial cache
// hit (serve/cache/partial): the request missed the result cache but
// most of the detection work was served from the session's
// incremental state.
func (s *Server) execute(ctx context.Context, sn *session, j *job, fp uint64) {
	defer s.trackRunning()()
	s.logger().Info(ctx, "job started")
	res, err := s.discover(ctx, sn.sess)
	if err == nil && res != nil {
		if res.Fingerprint == fp {
			sn.storeCache(fp, res)
			if sn.slog != nil {
				sn.slog.SaveCache(fp, res)
			}
		}
		if res.SourcesReused > 0 {
			s.reg.Counter("serve/cache/partial").Inc()
		}
	}
	j.finish(s.now(), res, err)
	s.reg.Counter("serve/jobs/finished").Inc()
	j.mu.Lock()
	status, elapsed := j.status, j.finished.Sub(j.started)
	j.mu.Unlock()
	kv := []any{"status", status, "dur", elapsed}
	if res != nil {
		kv = append(kv, "slices", len(res.Slices))
	}
	if err != nil {
		kv = append(kv, "err", err)
		s.logger().Warn(ctx, "job finished", kv...)
		return
	}
	s.logger().Info(ctx, "job finished", kv...)
}

// startDiscover answers a discover request: cache hit → an immediately
// completed job; otherwise claim a slot and run, either synchronously
// under the request context (wait=true) or as a background job bounded
// by JobTimeout. timeout, when positive, tightens the discovery
// deadline in both modes.
func (s *Server) startDiscover(ctx context.Context, sn *session, wait bool, timeout time.Duration) (*job, error) {
	fp := sn.sess.Fingerprint()
	if res := sn.cached(fp); res != nil {
		s.reg.Counter("serve/cache/hit").Inc()
		j := s.newJob(sn.name)
		j.request = requestID(ctx)
		j.cached = true
		j.finish(s.now(), res, nil)
		s.logger().Info(ctx, "job finished", "job", j.id, "session", sn.name, "cached", true)
		return j, nil
	}
	s.reg.Counter("serve/cache/miss").Inc()
	if err := s.acquire(); err != nil {
		return nil, err
	}
	j := s.newJob(sn.name)
	j.request = requestID(ctx)

	// The job's span starts under the request span, so the request is
	// the root of one trace holding the job and every framework span
	// beneath it — including for async jobs, whose context below derives
	// from baseCtx (it must outlive the request) but explicitly carries
	// the job span across that detach.
	_, jspan := s.tracer.StartSpan(ctx, "serve/job")
	jspan.Arg("job", j.id).Arg("session", sn.name).Arg("request", j.request)
	j.trace = jspan.TraceID()

	if wait {
		// Synchronous discoveries are jobs too: they join jobsWG so
		// Drain waits for them, and — since they run under the request
		// context, out of reach of the baseCtx cancellation that stops
		// async jobs at the drain deadline — baseCtx is bridged into
		// their cancel func, so an expiring drain ends them with
		// partial results instead of returning while they still run.
		s.jobsWG.Add(1)
		defer s.jobsWG.Done()
		defer s.release()
		runCtx, cancel := withTimeout(ctx, timeout)
		defer cancel()
		stop := context.AfterFunc(s.baseCtx, cancel)
		defer stop()
		done := make(chan struct{})
		defer close(done)
		j.mu.Lock()
		j.cancel, j.done = cancel, done
		j.mu.Unlock()
		runCtx = obs.ContextWithSpan(runCtx, jspan)
		runCtx = obs.ContextWithLogFields(runCtx, "job", j.id, "session", sn.name)
		s.execute(runCtx, sn, j, fp)
		jspan.Arg("status", j.statusNow()).End()
		return j, nil
	}
	if timeout <= 0 {
		timeout = s.opts.JobTimeout
	}
	jobCtx, cancel := withTimeout(s.baseCtx, timeout)
	jobCtx = obs.ContextWithSpan(jobCtx, jspan)
	jobCtx = obs.ContextWithLogFields(jobCtx,
		"request", j.request, "job", j.id, "session", sn.name)
	done := make(chan struct{})
	j.mu.Lock()
	j.cancel, j.done = cancel, done
	j.mu.Unlock()
	s.jobsWG.Add(1)
	go func() {
		defer s.jobsWG.Done()
		defer close(done)
		defer cancel()
		defer s.release()
		s.execute(jobCtx, sn, j, fp)
		jspan.Arg("status", j.statusNow()).End()
	}()
	return j, nil
}

func (j *job) statusNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}
