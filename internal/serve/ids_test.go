package serve

import (
	"context"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestIDDeterminism: two IDSources with the same seed yield identical
// ID streams — the property that makes a replayed soak run's transcript
// byte-identical — and different seeds diverge. Seed 0 keeps the
// production counter format.
func TestIDDeterminism(t *testing.T) {
	stream := func(seed int64) []string {
		src := NewIDSource(seed)
		var ids []string
		for i := 0; i < 50; i++ {
			ids = append(ids, src.RequestID(), src.JobID())
		}
		return ids
	}
	a, b := stream(99), stream(99)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different ID streams:\n%v\n%v", a[:4], b[:4])
	}
	if reflect.DeepEqual(a, stream(100)) {
		t.Error("different seeds produced identical ID streams")
	}
	for _, id := range a {
		if !strings.Contains(id, "-") {
			t.Fatalf("seeded ID %q carries no discriminator", id)
		}
	}

	zero := NewIDSource(0)
	if got := zero.RequestID(); got != "r000001" {
		t.Errorf("production request ID = %q, want r000001", got)
	}
	if got := zero.JobID(); got != "j1" {
		t.Errorf("production job ID = %q, want j1", got)
	}
}

// TestIDSourceConcurrent: concurrent minting never duplicates an ID
// (the counter part is unique regardless of interleaving).
func TestIDSourceConcurrent(t *testing.T) {
	src := NewIDSource(7)
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[string]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := src.JobID()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate job ID %q", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// TestSeededServerTranscript: a server wired with a seeded IDSource
// mints the IDs of that seed's stream in request order — the serve-side
// half of replayable transcripts.
func TestSeededServerTranscript(t *testing.T) {
	want := NewIDSource(1234)
	_, ts := newTestServer(t, Options{IDs: NewIDSource(1234)})
	var created struct {
		Session string `json:"session"`
	}
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"tr"}`), "application/json", &created)
	postFacts(t, ts.URL, "tr", corpusFacts("alpha", 2))
	var j jobResp
	do(t, "POST", ts.URL+"/api/sessions/tr/discover", nil, "", &j)

	// Three requests before the discover's own ID draw.
	want.RequestID()
	want.RequestID()
	want.RequestID()
	if got := want.JobID(); j.Job != got {
		t.Errorf("job ID = %q, want %q (the seeded stream's next job ID)", j.Job, got)
	}
}

// TestDrainWaitsForSyncDiscover: a synchronous (wait=true) discovery is
// drain-accountable like any job: Drain does not return while it runs,
// and an expiring drain context cancels it into a partial result
// instead of abandoning it.
func TestDrainWaitsForSyncDiscover(t *testing.T) {
	s, ts := newTestServer(t, Options{RequestTimeout: 30 * time.Second})
	s.discover = blockingDiscover(nil) // only context cancellation ends it
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"sy"}`), "application/json", nil)
	postFacts(t, ts.URL, "sy", corpusFacts("alpha", 2))

	respCh := make(chan jobResp, 1)
	go func() {
		var j jobResp
		do(t, "POST", ts.URL+"/api/sessions/sy/discover?wait=true", nil, "", &j)
		respCh <- j
	}()

	// Wait until the sync job is actually running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var jobs struct {
			Jobs []jobResp `json:"jobs"`
		}
		do(t, "GET", ts.URL+"/api/jobs", nil, "", &jobs)
		if len(jobs.Jobs) == 1 && jobs.Jobs[0].Status == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sync discovery never showed up as running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	inFlight := s.Drain(drainCtx)
	if inFlight != 1 {
		t.Errorf("Drain saw %d in-flight jobs, want the sync discovery", inFlight)
	}
	// Drain must have waited out its context (the job only ends when the
	// drain deadline cancels it), not returned immediately.
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Errorf("Drain returned after %v with a sync discovery still running", waited)
	}

	select {
	case j := <-respCh:
		if j.Status != StatePartial {
			t.Errorf("drained sync discovery status = %q, want %q", j.Status, StatePartial)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sync discovery response never arrived after drain")
	}
}

// TestRequestIDsOnJobs: every job records the request that started it,
// in the ID format the server was configured with.
func TestRequestIDsOnJobs(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"rq"}`), "application/json", nil)
	postFacts(t, ts.URL, "rq", corpusFacts("alpha", 2))
	j := discoverWait(t, ts.URL, "rq")
	jb := s.job(j.Job)
	if jb == nil || !strings.HasPrefix(jb.request, "r") {
		t.Fatalf("job %s request ID = %q", j.Job, jb.request)
	}
	if code := do(t, "GET", ts.URL+"/api/jobs/"+fmt.Sprint(j.Job), nil, "", nil); code != http.StatusOK {
		t.Fatalf("job fetch: HTTP %d", code)
	}
}
