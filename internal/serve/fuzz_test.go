package serve

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzFactsIngestJSON throws arbitrary bytes at the JSON facts parser.
// Properties: no panic, and on success every fact has a positive
// confidence (the zero-defaults-to-1 rule) — the parser either rejects
// a body or yields facts the Session can take as-is.
func FuzzFactsIngestJSON(f *testing.F) {
	f.Add([]byte(`[{"subject":"a","predicate":"kind","object":"x","confidence":0.9,"url":"http://s.example.com/p.htm"}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"subject":"a"}]`))
	f.Add([]byte(`{"subject":"not-an-array"}`))
	f.Add([]byte(`[{"confidence":1e308},{"confidence":-1}]`))
	f.Add([]byte("[{\"subject\":\"\xff\xfe invalid utf8\"}]"))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, body []byte) {
		facts, err := parseFactsJSON(bytes.NewReader(body))
		if err != nil {
			return
		}
		for i, fc := range facts {
			if !validConfidence(fc.Confidence) {
				t.Errorf("fact %d: confidence %v outside (0,1] survived parsing", i, fc.Confidence)
			}
		}
	})
}

// FuzzFactsIngestTSV throws arbitrary bytes at the TSV facts parser.
// Properties: no panic; on success every fact has ≥3 populated columns'
// worth of fields, confidences parse to the declared or default value,
// and the fact count never exceeds the line count (ingestion is atomic,
// so a parse error must yield no facts at all).
func FuzzFactsIngestTSV(f *testing.F) {
	f.Add([]byte("a\tkind\tx\t0.9\thttp://s.example.com/p.htm\n"))
	f.Add([]byte("a\tkind\tx\n\na2\tkind\ty\n"))
	f.Add([]byte("too\tfew\n"))
	f.Add([]byte("a\tkind\tx\tnot-a-number\n"))
	f.Add([]byte("a\tkind\tx\t\textra\tcolumns\tignored\n"))
	f.Add([]byte("\xff\xfe\tbad\tutf8\n"))
	f.Add([]byte(strings.Repeat("x", 1<<20) + "\ty\tz\n")) // one huge line
	f.Add([]byte(strings.Repeat("x", 2<<20)))              // over the scanner cap
	f.Fuzz(func(t *testing.T, body []byte) {
		facts, err := parseFactsTSV(bytes.NewReader(body))
		if err != nil {
			if facts != nil {
				t.Error("parse error must yield no facts (atomic ingestion)")
			}
			return
		}
		lines := bytes.Count(body, []byte("\n")) + 1
		if len(facts) > lines {
			t.Errorf("%d facts from %d lines", len(facts), lines)
		}
		for i, fc := range facts {
			if fc.Subject == "" && fc.Predicate == "" && fc.Object == "" {
				t.Errorf("fact %d: all key fields empty", i)
			}
			if !validConfidence(fc.Confidence) {
				t.Errorf("fact %d: confidence %v outside (0,1] survived parsing", i, fc.Confidence)
			}
			// The scanner splits on \n; a fact field containing one would
			// mean the parser resynthesized line structure.
			for _, s := range []string{fc.Subject, fc.Predicate, fc.Object, fc.URL} {
				if strings.ContainsRune(s, '\n') {
					t.Errorf("fact %d: field crosses a line boundary: %q", i, s)
				}
				_ = utf8.ValidString(s) // must not panic on arbitrary bytes
			}
		}
	})
}
