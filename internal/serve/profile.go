package serve

import (
	"net/http"
	"sort"
	"strconv"

	"midas/internal/obs"
)

// jobProfile is the per-phase time breakdown of one discovery job,
// folded from its span tree: the serving-path analogue of the paper's
// per-slice cost accounting. Phases are the framework's hierarchy
// rounds — sequential within the run, so their durations sum to at most
// the job's wall time — and each phase carries the parallel busy time
// spent beneath it (source shards, table builds, detection including
// lattice build and traversal, consolidation), which may exceed the
// phase's own duration when workers overlap.
type jobProfile struct {
	Job              string         `json:"job"`
	Session          string         `json:"session"`
	Request          string         `json:"request,omitempty"`
	Trace            string         `json:"trace"`
	Status           string         `json:"status"`
	WallSeconds      float64        `json:"wall_seconds"`
	AccountedSeconds float64        `json:"accounted_seconds"`
	Spans            int            `json:"spans"`
	Phases           []profilePhase `json:"phases"`
}

type profilePhase struct {
	Name          string             `json:"name"`
	OffsetSeconds float64            `json:"offset_seconds"`
	Seconds       float64            `json:"seconds"`
	Sources       int                `json:"sources,omitempty"`
	BusySeconds   map[string]float64 `json:"busy_seconds,omitempty"`
}

// handleJobProfile serves GET /api/sessions/{name}/jobs/{id}/profile.
// The profile is folded from the job's trace on first request — which
// removes the trace from the tracer (bounding its memory) — and cached
// on the job for every request after.
func (s *Server) handleJobProfile(w http.ResponseWriter, r *http.Request) {
	sn := s.sessionOrErr(w, r)
	if sn == nil {
		return
	}
	j := s.jobOrErr(w, r)
	if j == nil {
		return
	}
	if j.session != sn.name {
		writeErr(w, http.StatusBadRequest, "job %s belongs to session %q", j.id, j.session)
		return
	}
	j.mu.Lock()
	status, profile, trace := j.status, j.profile, j.trace
	j.mu.Unlock()
	switch {
	case profile != nil:
		writeJSON(w, http.StatusOK, profile)
		return
	case status == StateRunning:
		writeErr(w, http.StatusConflict, "job %s is still running", j.id)
		return
	case trace == 0:
		writeErr(w, http.StatusNotFound, "job %s has no trace (cached result)", j.id)
		return
	}
	p := foldProfile(j, s.tracer.TakeTrace(trace))
	if p == nil {
		writeErr(w, http.StatusNotFound, "job %s trace no longer retained", j.id)
		return
	}
	j.mu.Lock()
	// Another request may have folded concurrently; first one wins so
	// repeated GETs return identical bytes.
	if j.profile == nil {
		j.profile = p
	}
	p = j.profile
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, p)
}

// foldProfile builds the per-phase breakdown from the job's trace. recs
// is the full trace — the request root span, the job span, and the
// framework spans beneath it. Returns nil when the job span is gone
// (trace aged out of retention before it was taken).
func foldProfile(j *job, recs []obs.SpanRecord) *jobProfile {
	var jobSpan *obs.SpanRecord
	for i := range recs {
		if recs[i].Name == "serve/job" && recs[i].Args["job"] == j.id {
			jobSpan = &recs[i]
			break
		}
	}
	if jobSpan == nil {
		return nil
	}

	// parent→children index over the whole trace.
	children := make(map[int64][]*obs.SpanRecord, len(recs))
	for i := range recs {
		children[recs[i].Parent] = append(children[recs[i].Parent], &recs[i])
	}

	p := &jobProfile{
		Job:         j.id,
		Session:     j.session,
		Request:     j.request,
		Trace:       obs.FormatTraceID(jobSpan.Trace),
		Status:      j.statusNow(),
		WallSeconds: jobSpan.Duration.Seconds(),
		Spans:       countTree(children, jobSpan.ID),
	}

	// The run span sits directly under the job span; its children are
	// the sequential hierarchy rounds — the profile's phases.
	var run *obs.SpanRecord
	for _, c := range children[jobSpan.ID] {
		if c.Name == "framework/run" {
			run = c
			break
		}
	}
	if run == nil {
		return p // no framework spans (e.g. empty corpus): wall time only
	}
	for _, round := range children[run.ID] {
		phase := profilePhase{
			Name:          round.Name,
			OffsetSeconds: (round.Start - jobSpan.Start).Seconds(),
			Seconds:       round.Duration.Seconds(),
		}
		if n, err := strconv.Atoi(round.Args["sources"]); err == nil {
			phase.Sources = n
		}
		busy := make(map[string]float64)
		var walk func(parent int64, depth int)
		walk = func(parent int64, depth int) {
			for _, c := range children[parent] {
				name := c.Name
				if depth == 0 {
					// Direct children of a round are the per-source
					// shards, named by source; aggregate them so the
					// busy map stays small and source-count-independent.
					name = "source"
				}
				busy[name] += c.Duration.Seconds()
				walk(c.ID, depth+1)
			}
		}
		walk(round.ID, 0)
		if len(busy) > 0 {
			phase.BusySeconds = busy
		}
		p.AccountedSeconds += phase.Seconds
		p.Phases = append(p.Phases, phase)
	}
	sort.Slice(p.Phases, func(i, k int) bool {
		return p.Phases[i].OffsetSeconds < p.Phases[k].OffsetSeconds
	})
	return p
}

func countTree(children map[int64][]*obs.SpanRecord, id int64) int {
	n := 1
	for _, c := range children[id] {
		n += countTree(children, c.ID)
	}
	return n
}
