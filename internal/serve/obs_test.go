package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"midas/internal/obs"
)

// syncBuffer lets the test read log output that job goroutines are
// still allowed to append to.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSuffix(b.buf.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// records decodes every JSON log line in the buffer.
func (b *syncBuffer) records(t *testing.T) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for _, line := range b.lines() {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not valid JSON: %v\n%s", err, line)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestRequestTraceCorrelation runs a real discovery through the async
// job path and checks the acceptance bar: the request span is the root
// of one trace that contains the job span, the framework run span, and
// the hierarchy-round spans, each parented to the previous.
func TestRequestTraceCorrelation(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"tr"}`), "application/json", nil)
	postFacts(t, ts.URL, "tr", corpusFacts("alpha", 25))
	j := discoverWait(t, ts.URL, "tr")
	if j.Status != StateDone {
		t.Fatalf("job = %+v", j)
	}

	jb := s.job(j.Job)
	if jb == nil || jb.trace == 0 {
		t.Fatalf("job %s recorded no trace", j.Job)
	}
	recs := s.Tracer().TakeTrace(jb.trace)
	byID := make(map[int64]obs.SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	var request, jobSpan, run obs.SpanRecord
	rounds := 0
	for _, r := range recs {
		switch {
		case r.Name == "serve/request":
			request = r
		case r.Name == "serve/job":
			jobSpan = r
		case r.Name == "framework/run":
			run = r
		case strings.HasPrefix(r.Name, "framework/depth"):
			rounds++
			// Every round must chain depth → run → job → request → root.
			if byID[r.Parent].Name != "framework/run" {
				t.Errorf("round %s parented to %q, want framework/run", r.Name, byID[r.Parent].Name)
			}
		}
	}
	if request.ID == 0 || jobSpan.ID == 0 || run.ID == 0 || rounds == 0 {
		t.Fatalf("trace missing layers: request=%d job=%d run=%d rounds=%d (%d spans)",
			request.ID, jobSpan.ID, run.ID, rounds, len(recs))
	}
	if request.Parent != 0 || request.Trace != jb.trace {
		t.Errorf("request span should be the trace root: %+v", request)
	}
	if jobSpan.Parent != request.ID || run.Parent != jobSpan.ID {
		t.Errorf("span ancestry broken: job.parent=%d (want %d), run.parent=%d (want %d)",
			jobSpan.Parent, request.ID, run.Parent, jobSpan.ID)
	}
	if jobSpan.Args["job"] != j.Job || jobSpan.Args["request"] == "" {
		t.Errorf("job span args = %v", jobSpan.Args)
	}
}

// TestAccessAndJobLogs: the middleware writes one structured access-log
// record per request, the discover record carries both the request and
// job IDs, and the job's lifecycle records carry the same pair — the
// grep chain an operator follows from access log to job log.
func TestAccessAndJobLogs(t *testing.T) {
	var buf syncBuffer
	log := obs.NewLogger(&buf, obs.LevelDebug, obs.FormatJSON)
	_, ts := newTestServer(t, Options{Logger: log})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"lg"}`), "application/json", nil)
	postFacts(t, ts.URL, "lg", corpusFacts("alpha", 10))
	j := discoverWait(t, ts.URL, "lg")
	if j.Status != StateDone {
		t.Fatalf("job = %+v", j)
	}

	var access, started, finished map[string]any
	for _, rec := range buf.records(t) {
		switch {
		case rec["msg"] == "request" && rec["endpoint"] == "POST /api/sessions/{name}/discover":
			access = rec
		case rec["msg"] == "job started" && rec["job"] == j.Job:
			started = rec
		case rec["msg"] == "job finished" && rec["job"] == j.Job:
			finished = rec
		}
	}
	if access == nil || started == nil || finished == nil {
		t.Fatalf("missing records: access=%v started=%v finished=%v\nlog:\n%s",
			access != nil, started != nil, finished != nil, strings.Join(buf.lines(), "\n"))
	}
	reqID, _ := access["request"].(string)
	if reqID == "" || access["job"] != j.Job || access["code"] != float64(202) {
		t.Errorf("access record = %v", access)
	}
	for what, rec := range map[string]map[string]any{"started": started, "finished": finished} {
		if rec["request"] != reqID || rec["session"] != "lg" {
			t.Errorf("job %s record does not share the request's IDs: %v", what, rec)
		}
		if rec["trace"] == "" || rec["span"] == "" {
			t.Errorf("job %s record missing trace/span correlation: %v", what, rec)
		}
	}
	if finished["status"] != StateDone {
		t.Errorf("finished record = %v", finished)
	}
}

// TestJobProfileEndpoint: the capstone. A finished job's /profile folds
// its span tree into per-phase durations whose sum is bounded by the
// job's wall time, repeated GETs are stable, and the error paths (wrong
// session, cached job, running job) answer precisely.
func TestJobProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"pf"}`), "application/json", nil)
	postFacts(t, ts.URL, "pf", corpusFacts("alpha", 25))
	postFacts(t, ts.URL, "pf", corpusFacts("beta", 25))
	j := discoverWait(t, ts.URL, "pf")
	if j.Status != StateDone {
		t.Fatalf("job = %+v", j)
	}

	var p jobProfile
	if code := do(t, "GET", ts.URL+"/api/sessions/pf/jobs/"+j.Job+"/profile", nil, "", &p); code != 200 {
		t.Fatalf("profile: HTTP %d", code)
	}
	if p.Job != j.Job || p.Session != "pf" || p.Trace == "" || p.Status != StateDone {
		t.Fatalf("profile header = %+v", p)
	}
	if p.WallSeconds <= 0 || len(p.Phases) == 0 || p.Spans < 3 {
		t.Fatalf("profile shape = %+v", p)
	}
	var sum float64
	for i, ph := range p.Phases {
		if !strings.HasPrefix(ph.Name, "framework/depth") || ph.Seconds < 0 || ph.OffsetSeconds < 0 {
			t.Errorf("phase %d = %+v", i, ph)
		}
		if ph.Sources <= 0 {
			t.Errorf("phase %d has no source count: %+v", i, ph)
		}
		if ph.BusySeconds["source"] <= 0 || ph.BusySeconds["detect"] <= 0 {
			t.Errorf("phase %d busy breakdown = %v", i, ph.BusySeconds)
		}
		sum += ph.Seconds
	}
	if sum > p.WallSeconds {
		t.Errorf("phase durations sum %v exceeds wall time %v", sum, p.WallSeconds)
	}
	if p.AccountedSeconds > p.WallSeconds || p.AccountedSeconds != sum {
		t.Errorf("accounted = %v, phases sum = %v, wall = %v", p.AccountedSeconds, sum, p.WallSeconds)
	}

	// Repeated GETs serve the cached fold, byte-stable.
	var p2 jobProfile
	if code := do(t, "GET", ts.URL+"/api/sessions/pf/jobs/"+j.Job+"/profile", nil, "", &p2); code != 200 {
		t.Fatalf("second profile: HTTP %d", code)
	}
	if p2.Spans != p.Spans || p2.AccountedSeconds != p.AccountedSeconds {
		t.Errorf("profile changed between GETs: %+v vs %+v", p, p2)
	}

	// Cache-hit jobs have no trace to fold.
	jc := discoverWait(t, ts.URL, "pf")
	if !jc.Cached {
		t.Fatalf("expected cache hit, got %+v", jc)
	}
	if code := do(t, "GET", ts.URL+"/api/sessions/pf/jobs/"+jc.Job+"/profile", nil, "", nil); code != 404 {
		t.Errorf("cached-job profile: HTTP %d, want 404", code)
	}

	// Wrong session → 400; unknown ids → 404.
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"other"}`), "application/json", nil)
	if code := do(t, "GET", ts.URL+"/api/sessions/other/jobs/"+j.Job+"/profile", nil, "", nil); code != 400 {
		t.Errorf("cross-session profile: HTTP %d, want 400", code)
	}
	if code := do(t, "GET", ts.URL+"/api/sessions/pf/jobs/j999/profile", nil, "", nil); code != 404 {
		t.Errorf("unknown job profile: HTTP %d, want 404", code)
	}
}

// TestProfileOfRunningJob: 409 while the job runs, 200 after.
func TestProfileOfRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	release := make(chan struct{})
	s.discover = blockingDiscover(release)
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"run"}`), "application/json", nil)
	postFacts(t, ts.URL, "run", corpusFacts("alpha", 2))

	var j jobResp
	if code := do(t, "POST", ts.URL+"/api/sessions/run/discover", nil, "", &j); code != 202 {
		t.Fatalf("discover: HTTP %d", code)
	}
	if code := do(t, "GET", ts.URL+"/api/sessions/run/jobs/"+j.Job+"/profile", nil, "", nil); code != 409 {
		t.Errorf("running-job profile: HTTP %d, want 409", code)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := do(t, "GET", ts.URL+"/api/sessions/run/jobs/"+j.Job+"/profile", nil, "", nil); code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("profile never became available after release")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReadyzLifecycle: /readyz is 503 until the binary flips SetReady,
// 200 while serving, and 503 again the moment Drain begins — while
// /healthz stays 200 throughout (the liveness/readiness split).
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	var ready struct {
		Ready    bool `json:"ready"`
		Draining bool `json:"draining"`
	}
	if code := do(t, "GET", ts.URL+"/readyz", nil, "", &ready); code != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("pre-SetReady readyz: HTTP %d %+v, want 503 not-ready", code, ready)
	}
	s.SetReady(true)
	if code := do(t, "GET", ts.URL+"/readyz", nil, "", &ready); code != 200 || !ready.Ready {
		t.Fatalf("readyz after SetReady: HTTP %d %+v", code, ready)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s.Drain(drainCtx)
	if code := do(t, "GET", ts.URL+"/readyz", nil, "", &ready); code != http.StatusServiceUnavailable || ready.Ready || !ready.Draining {
		t.Fatalf("draining readyz: HTTP %d %+v, want 503 draining", code, ready)
	}
	var health struct {
		Status string `json:"status"`
	}
	if code := do(t, "GET", ts.URL+"/healthz", nil, "", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("draining healthz: HTTP %d %+v, want 200 ok", code, health)
	}
}

// TestDrainKeepsObservability: an in-flight job that outlives the start
// of Drain still emits its lifecycle log records and completes its
// spans, /readyz flips 503 while /healthz stays 200 mid-drain, and the
// post-drain snapshot carries the runtime gauges a final -stats dump
// includes — the drain-interplay acceptance bundle.
func TestDrainKeepsObservability(t *testing.T) {
	reg := obs.New()
	var buf syncBuffer
	log := obs.NewLogger(&buf, obs.LevelDebug, obs.FormatJSON)
	s, ts := newTestServer(t, Options{Registry: reg, Logger: log})
	s.SetReady(true)
	rc := obs.NewRuntimeCollector(reg, time.Hour)
	release := make(chan struct{})
	s.discover = blockingDiscover(release)
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"dr"}`), "application/json", nil)
	postFacts(t, ts.URL, "dr", corpusFacts("alpha", 2))

	var j jobResp
	if code := do(t, "POST", ts.URL+"/api/sessions/dr/discover", nil, "", &j); code != 202 {
		t.Fatalf("discover: HTTP %d", code)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drained := make(chan int)
	go func() { drained <- s.Drain(drainCtx) }()

	// Mid-drain: readiness down, liveness up, job still running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := do(t, "GET", ts.URL+"/readyz", nil, "", nil); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := do(t, "GET", ts.URL+"/healthz", nil, "", nil); code != 200 {
		t.Fatalf("mid-drain healthz: HTTP %d", code)
	}

	// Release the job; it must finish cleanly inside the drain window.
	close(release)
	if inFlight := <-drained; inFlight != 1 {
		t.Errorf("Drain reported %d in-flight, want 1", inFlight)
	}

	// The job that straddled the drain still logged its lifecycle...
	var finished map[string]any
	for _, rec := range buf.records(t) {
		if rec["msg"] == "job finished" && rec["job"] == j.Job {
			finished = rec
		}
	}
	if finished == nil || finished["status"] != StateDone {
		t.Fatalf("no clean job-finished record for the drained job:\n%s", strings.Join(buf.lines(), "\n"))
	}
	// ...and completed its span tree (job span ended after drain began).
	jb := s.job(j.Job)
	if recs := s.Tracer().TakeTrace(jb.trace); len(recs) < 2 {
		t.Errorf("drained job trace has %d spans, want request+job at least", len(recs))
	}

	// The final snapshot (what midas-serve -stats writes after drain)
	// includes the runtime gauges.
	rc.Stop()
	snap := reg.Snapshot()
	for _, g := range []string{"runtime/heap_bytes", "runtime/goroutines"} {
		if snap.Gauges[g] <= 0 {
			t.Errorf("final snapshot gauge %q = %v, want > 0", g, snap.Gauges[g])
		}
	}
	if snap.Gauges["serve/draining"] != 1 {
		t.Errorf("serve/draining = %v", snap.Gauges["serve/draining"])
	}
}

// TestRequestLatencyHistogram: every wrapped endpoint feeds the
// serve/request_seconds HistogramVec, and the /metrics exposition
// carries nonzero midas_serve_request_seconds buckets.
func TestRequestLatencyHistogram(t *testing.T) {
	reg := obs.New()
	_, ts := newTestServer(t, Options{Registry: reg})
	do(t, "POST", ts.URL+"/api/sessions", strings.NewReader(`{"name":"h"}`), "application/json", nil)
	do(t, "GET", ts.URL+"/api/sessions", nil, "", nil)

	snap := reg.Snapshot()
	hv, ok := snap.HistogramVecs["serve/request_seconds"]
	if !ok {
		t.Fatal("snapshot missing serve/request_seconds histogram vec")
	}
	var total int64
	for _, series := range hv.Series {
		total += series.Count
	}
	if total < 2 {
		t.Fatalf("request_seconds observations = %d, want ≥ 2", total)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if !strings.Contains(body, `midas_serve_request_seconds_bucket{endpoint="POST /api/sessions"`) {
		t.Errorf("/metrics missing labeled latency buckets:\n%.2000s", body)
	}
	if !strings.Contains(body, `midas_serve_request_seconds_count{endpoint="POST /api/sessions"} 1`) {
		t.Errorf("/metrics missing latency count sample:\n%.2000s", body)
	}
}
