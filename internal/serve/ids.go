package serve

import (
	"fmt"
	"math/rand"
	"sync"
)

// IDSource mints the server's request and job IDs. Generation is fully
// deterministic: a source built with NewIDSource(seed) yields the same
// ID sequence for the same sequence of calls, so a soak run that
// replays its op script against a server seeded identically produces a
// byte-identical transcript — job IDs, request IDs, log fields and all.
//
// The zero seed is what production servers use (Options.IDs nil): IDs
// are then the bare monotonic counters (r000001, j1, ...) the API has
// always exposed. A nonzero seed appends a seeded discriminator to each
// ID (j3-84c1), so transcripts from different seeds never collide when
// collected side by side and a transcript visibly names the seed stream
// it came from.
type IDSource struct {
	mu  sync.Mutex
	rng *rand.Rand // nil for the counter-only zero seed
	req int64
	job int64
}

// NewIDSource returns a deterministic ID source for seed. Seed 0 is the
// production default: plain counters, no discriminator.
func NewIDSource(seed int64) *IDSource {
	s := &IDSource{}
	if seed != 0 {
		s.rng = rand.New(rand.NewSource(seed))
	}
	return s
}

// RequestID mints the next request ID.
func (s *IDSource) RequestID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.req++
	if s.rng == nil {
		return fmt.Sprintf("r%06d", s.req)
	}
	return fmt.Sprintf("r%06d-%04x", s.req, s.rng.Intn(1<<16))
}

// JobID mints the next job ID.
func (s *IDSource) JobID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.job++
	if s.rng == nil {
		return fmt.Sprintf("j%d", s.job)
	}
	return fmt.Sprintf("j%d-%04x", s.job, s.rng.Intn(1<<16))
}
