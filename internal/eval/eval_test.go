package eval_test

import (
	"fmt"
	"math"
	"testing"

	"midas/internal/dict"
	"midas/internal/eval"
	"midas/internal/idset"
	"midas/internal/kb"
	"midas/internal/slice"
)

func triples(sp *kb.Space, n int, prefix string) []kb.Triple {
	out := make([]kb.Triple, n)
	for i := range out {
		out[i] = sp.Intern(fmt.Sprintf("%s-s%d", prefix, i), "p", fmt.Sprintf("%s-o%d", prefix, i))
	}
	return out
}

func TestMatchSilverExactAndNear(t *testing.T) {
	sp := kb.NewSpace()
	a := triples(sp, 40, "a")
	b := triples(sp, 40, "b")

	// Near-duplicate of a: 39 of 40 facts shared → Jaccard 39/41 ≈ 0.95
	// (below threshold); 40 of 41 → ≈ 0.976 (above).
	aPlus := append(append([]kb.Triple{}, a...), sp.Intern("extra", "p", "x"))

	matches := eval.MatchSilver([][]kb.Triple{a, b}, [][]kb.Triple{b, a})
	if matches[0] != 1 || matches[1] != 0 {
		t.Errorf("matches = %v, want [1 0]", matches)
	}
	matches = eval.MatchSilver([][]kb.Triple{aPlus}, [][]kb.Triple{a})
	if matches[0] != 0 {
		t.Errorf("near-duplicate (J≈0.976) should match; got %v", matches)
	}
	short := a[:30] // J = 30/40 = 0.75
	matches = eval.MatchSilver([][]kb.Triple{short}, [][]kb.Triple{a})
	if matches[0] != -1 {
		t.Errorf("J=0.75 should not match; got %v", matches)
	}
}

func TestMatchSilverOneToOne(t *testing.T) {
	sp := kb.NewSpace()
	a := triples(sp, 30, "a")
	// Two identical predictions can consume only one silver slice.
	matches := eval.MatchSilver([][]kb.Triple{a, a}, [][]kb.Triple{a})
	if matches[0] != 0 || matches[1] != -1 {
		t.Errorf("matches = %v, want [0 -1]", matches)
	}
}

func TestScoreAndPRCurve(t *testing.T) {
	sp := kb.NewSpace()
	a := triples(sp, 30, "a")
	b := triples(sp, 30, "b")
	c := triples(sp, 30, "c")
	junk := triples(sp, 30, "junk")

	score := eval.Score([][]kb.Triple{a, junk, b}, [][]kb.Triple{a, b, c})
	if score.TruePos != 2 || math.Abs(score.Precision-2.0/3) > 1e-9 || math.Abs(score.Recall-2.0/3) > 1e-9 {
		t.Errorf("score = %+v", score)
	}
	if math.Abs(score.F1-2.0/3) > 1e-9 {
		t.Errorf("F1 = %v, want 2/3", score.F1)
	}

	curve := eval.PRCurve([][]kb.Triple{a, junk, b}, [][]kb.Triple{a, b, c})
	if len(curve) != 3 {
		t.Fatalf("curve points = %d", len(curve))
	}
	if curve[0].Precision != 1 || math.Abs(curve[0].Recall-1.0/3) > 1e-9 {
		t.Errorf("point 1 = %+v", curve[0])
	}
	if math.Abs(curve[1].Precision-0.5) > 1e-9 {
		t.Errorf("point 2 = %+v", curve[1])
	}
	if math.Abs(curve[2].Precision-2.0/3) > 1e-9 || math.Abs(curve[2].Recall-2.0/3) > 1e-9 {
		t.Errorf("point 3 = %+v", curve[2])
	}
}

func TestScoreEmpty(t *testing.T) {
	s := eval.Score(nil, nil)
	if s.Precision != 0 || s.Recall != 0 || s.F1 != 0 {
		t.Errorf("empty score = %+v", s)
	}
}

// oracleSlice builds a slice + fact set over labeled entities.
func oracleSlice(sp *kb.Space, verticalOf map[dict.ID]string, n int, vertical string, known *kb.KB, knownCount int) (*slice.Slice, []kb.Triple) {
	s := &slice.Slice{Source: "src"}
	var ents []dict.ID
	var facts []kb.Triple
	for i := 0; i < n; i++ {
		tr := sp.Intern(fmt.Sprintf("%s-e%d", vertical, i), "p", fmt.Sprintf("%s-v%d", vertical, i))
		ents = append(ents, tr.S)
		facts = append(facts, tr)
		if vertical != "" {
			verticalOf[tr.S] = vertical
		}
		if known != nil && i < knownCount {
			known.Add(tr)
		}
	}
	s.Entities = idset.FromUnsorted(ents)
	return s, facts
}

func TestOracleHomogeneousNewSlice(t *testing.T) {
	sp := kb.NewSpace()
	verticalOf := make(map[dict.ID]string)
	o := &eval.Oracle{VerticalOf: verticalOf, Seed: 1}
	s, facts := oracleSlice(sp, verticalOf, 30, "golf", nil, 0)
	rNew, rAnno := o.Ratios(s, facts)
	if rNew != 1 || rAnno != 1 {
		t.Errorf("ratios = %v/%v, want 1/1", rNew, rAnno)
	}
	if !o.Correct(s, facts) {
		t.Error("homogeneous new slice should be correct")
	}
}

func TestOracleKnownContent(t *testing.T) {
	sp := kb.NewSpace()
	verticalOf := make(map[dict.ID]string)
	known := kb.New(sp)
	o := &eval.Oracle{VerticalOf: verticalOf, KB: known, Seed: 1}
	// All 30 entities' facts already in the KB → R_new = 0.
	s, facts := oracleSlice(sp, verticalOf, 30, "golf", known, 30)
	rNew, rAnno := o.Ratios(s, facts)
	if rNew != 0 || rAnno != 1 {
		t.Errorf("ratios = %v/%v, want 0/1", rNew, rAnno)
	}
	if o.Correct(s, facts) {
		t.Error("fully-known slice must be incorrect")
	}
}

func TestOracleHeterogeneousSlice(t *testing.T) {
	sp := kb.NewSpace()
	verticalOf := make(map[dict.ID]string)
	o := &eval.Oracle{VerticalOf: verticalOf, Seed: 1}
	// Mix four verticals evenly: majority ratio 0.25 < 0.5.
	s := &slice.Slice{Source: "src"}
	var ents []dict.ID
	var facts []kb.Triple
	for v := 0; v < 4; v++ {
		part, pf := oracleSlice(sp, verticalOf, 10, fmt.Sprintf("v%d", v), nil, 0)
		ents = append(ents, part.Entities.Values()...)
		facts = append(facts, pf...)
	}
	s.Entities = idset.FromUnsorted(ents)
	if o.Correct(s, facts) {
		t.Error("heterogeneous slice must be incorrect")
	}
	_, rAnno := o.Ratios(s, facts)
	if rAnno > 0.5 {
		t.Errorf("rAnno = %v, want ≤ 0.5", rAnno)
	}
}

func TestOracleNoiseEntities(t *testing.T) {
	sp := kb.NewSpace()
	o := &eval.Oracle{VerticalOf: map[dict.ID]string{}, Seed: 1}
	s, facts := oracleSlice(sp, map[dict.ID]string{}, 25, "", nil, 0)
	if o.Correct(s, facts) {
		t.Error("unlabeled (noise) entities can never be homogeneous")
	}
}

func TestOracleSamplingDeterminism(t *testing.T) {
	sp := kb.NewSpace()
	verticalOf := make(map[dict.ID]string)
	o := &eval.Oracle{VerticalOf: verticalOf, Seed: 9}
	s, facts := oracleSlice(sp, verticalOf, 100, "golf", nil, 0)
	r1a, r1b := o.Ratios(s, facts)
	r2a, r2b := o.Ratios(s, facts)
	if r1a != r2a || r1b != r2b {
		t.Error("oracle sampling not deterministic")
	}
}

func TestTopKPrecision(t *testing.T) {
	sp := kb.NewSpace()
	verticalOf := make(map[dict.ID]string)
	o := &eval.Oracle{VerticalOf: verticalOf, Seed: 1}

	var slices []*slice.Slice
	var sets [][]kb.Triple
	for i := 0; i < 4; i++ {
		vert := fmt.Sprintf("v%d", i)
		if i == 1 {
			vert = "" // one incorrect (noise) slice at rank 2
		}
		s, facts := oracleSlice(sp, verticalOf, 25, vert, nil, 0)
		slices = append(slices, s)
		sets = append(sets, facts)
	}
	got := eval.TopKPrecision(slices, sets, o, []int{1, 2, 4, 10})
	want := []float64{1, 0.5, 0.75, 0.75}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("top-%d = %v, want %v", i, got[i], want[i])
		}
	}
}
