// Package eval implements the paper's evaluation methodology
// (Section IV-B): precision/recall/F-measure against a silver standard
// with Jaccard-similarity slice matching, top-k precision, and the
// human-labeling procedure simulated as a deterministic oracle over
// generator ground truth (R_new and R_anno over K sampled entities).
package eval

import (
	"context"
	"math/rand"
	"sort"
	"strconv"

	"midas/internal/dict"
	"midas/internal/kb"
	"midas/internal/obs"
	"midas/internal/slice"
)

// JaccardThreshold is the slice-equivalence threshold of Section IV-B.
const JaccardThreshold = 0.95

// PRF bundles precision, recall and F-measure.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	TruePos   int
	Predicted int
	Expected  int
}

func prf(tp, predicted, expected int) PRF {
	out := PRF{TruePos: tp, Predicted: predicted, Expected: expected}
	if predicted > 0 {
		out.Precision = float64(tp) / float64(predicted)
	}
	if expected > 0 {
		out.Recall = float64(tp) / float64(expected)
	}
	if out.Precision+out.Recall > 0 {
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// MatchSilver greedily matches each predicted fact set (in rank order)
// to its best still-unmatched silver fact set with Jaccard similarity
// above the threshold. It returns, per predicted slice, the index of the
// matched silver slice or -1.
func MatchSilver(predicted, silver [][]kb.Triple) []int {
	matched := 0
	_, span := obs.StartSpanOrRoot(context.Background(), "eval/match_silver")
	defer func() {
		span.Arg("predicted", strconv.Itoa(len(predicted))).
			Arg("silver", strconv.Itoa(len(silver))).
			Arg("matched", strconv.Itoa(matched)).
			End()
	}()
	out := make([]int, len(predicted))
	used := make([]bool, len(silver))
	for i, p := range predicted {
		out[i] = -1
		best, bestSim := -1, JaccardThreshold
		for j, s := range silver {
			if used[j] {
				continue
			}
			if sim := slice.Jaccard(p, s); sim > bestSim {
				best, bestSim = j, sim
			}
		}
		if best >= 0 {
			out[i] = best
			used[best] = true
			matched++
		}
	}
	return out
}

// Score computes precision/recall/F of predicted fact sets against the
// silver standard.
func Score(predicted, silver [][]kb.Triple) PRF {
	tp := 0
	for _, m := range MatchSilver(predicted, silver) {
		if m >= 0 {
			tp++
		}
	}
	return prf(tp, len(predicted), len(silver))
}

// PRPoint is one point of a precision-recall curve.
type PRPoint struct {
	K         int
	Precision float64
	Recall    float64
}

// PRCurve computes precision/recall at every prefix of the (profit-
// ranked) predicted list, producing the curves of Figure 9a/c/e.
func PRCurve(predicted, silver [][]kb.Triple) []PRPoint {
	matches := MatchSilver(predicted, silver)
	out := make([]PRPoint, 0, len(predicted))
	tp := 0
	for i := range predicted {
		if matches[i] >= 0 {
			tp++
		}
		out = append(out, PRPoint{
			K:         i + 1,
			Precision: float64(tp) / float64(i+1),
			Recall:    float64(tp) / float64(max(1, len(silver))),
		})
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Oracle simulates the human labeling of Section IV-B: a returned slice
// is correct when, over K (or fewer) sampled entities, (a) the ratio of
// entities contributing facts absent from the KB and (b) the ratio of
// entities providing homogeneous information both exceed the threshold.
// Homogeneity is judged from generator ground truth: the fraction of
// sampled entities belonging to the sample's majority vertical (noise
// entities belong to no vertical and never agree).
type Oracle struct {
	// VerticalOf maps subjects to vertical names (generator ground
	// truth); unmapped subjects are noise.
	VerticalOf map[dict.ID]string
	// KB is the existing knowledge base of the evaluated run (nil =
	// empty, making R_new binary as in the paper).
	KB *kb.KB
	// K is the entity sample size (paper: 20; 0 means 20).
	K int
	// Threshold is the correctness bar for both ratios (paper: 0.5;
	// 0 means 0.5).
	Threshold float64
	// Seed drives deterministic sampling.
	Seed int64
}

func (o *Oracle) k() int {
	if o.K == 0 {
		return 20
	}
	return o.K
}

func (o *Oracle) threshold() float64 {
	if o.Threshold == 0 {
		return 0.5
	}
	return o.Threshold
}

// Correct labels one predicted slice given its fact set.
func (o *Oracle) Correct(s *slice.Slice, facts []kb.Triple) bool {
	rNew, rAnno := o.Ratios(s, facts)
	return rNew > o.threshold() && rAnno > o.threshold()
}

// Ratios returns (R_new, R_anno) for a predicted slice.
func (o *Oracle) Ratios(s *slice.Slice, facts []kb.Triple) (rNew, rAnno float64) {
	if s.Entities.Empty() {
		return 0, 0
	}
	sample := o.sample(s.Entities.Values())

	// R_new: fraction of sampled entities contributing ≥1 new fact.
	bySubject := make(map[dict.ID]bool, len(sample))
	for _, e := range sample {
		bySubject[e] = false
	}
	for _, t := range facts {
		if seen, ok := bySubject[t.S]; ok && !seen {
			if o.KB == nil || !o.KB.Contains(t) {
				bySubject[t.S] = true
			}
		}
	}
	newCount := 0
	for _, hasNew := range bySubject {
		if hasNew {
			newCount++
		}
	}
	rNew = float64(newCount) / float64(len(sample))

	// R_anno: homogeneity via majority vertical.
	counts := make(map[string]int)
	for _, e := range sample {
		if v, ok := o.VerticalOf[e]; ok {
			counts[v]++
		}
	}
	majority := 0
	for _, c := range counts {
		if c > majority {
			majority = c
		}
	}
	rAnno = float64(majority) / float64(len(sample))
	return rNew, rAnno
}

// sample draws K deterministic entities from the slice (all of them if
// fewer than K).
func (o *Oracle) sample(entities []dict.ID) []dict.ID {
	k := o.k()
	if len(entities) <= k {
		return entities
	}
	// Derive a per-slice seed from the entity set for stability across
	// runs regardless of evaluation order.
	h := o.Seed
	for _, e := range entities {
		h = h*1099511628211 + int64(e)
	}
	rng := rand.New(rand.NewSource(h))
	idx := rng.Perm(len(entities))[:k]
	sort.Ints(idx)
	out := make([]dict.ID, k)
	for i, j := range idx {
		out[i] = entities[j]
	}
	return out
}

// TopKPrecision labels the top-k predicted slices with the oracle and
// returns the precision at each requested k (ks must be ascending).
// Fewer predictions than k yield the precision over all predictions.
func TopKPrecision(slices []*slice.Slice, factSets [][]kb.Triple, o *Oracle, ks []int) []float64 {
	_, span := obs.StartSpanOrRoot(context.Background(), "eval/topk_precision")
	defer span.Arg("slices", strconv.Itoa(len(slices))).End()
	out := make([]float64, len(ks))
	correct := 0
	next := 0
	for i := range slices {
		if o.Correct(slices[i], factSets[i]) {
			correct++
		}
		for next < len(ks) && ks[next] == i+1 {
			out[next] = float64(correct) / float64(i+1)
			next++
		}
	}
	for ; next < len(ks); next++ {
		if len(slices) > 0 {
			out[next] = float64(correct) / float64(len(slices))
		}
	}
	return out
}
