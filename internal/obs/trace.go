package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans — named, timed, parented intervals — from a
// pipeline run and exports them as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Like the rest of this package it is dependency-free, goroutine-safe,
// and nil-tolerant: a nil *Tracer records nothing and costs nothing, so
// instrumented code starts spans unconditionally. Spans propagate
// through context (ContextWithSpan / StartSpan), which is how the
// framework's worker goroutines parent their per-source spans to the
// round that dispatched them.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Int64
	// sampleN keeps 1 of every sampleN root spans (≤1 keeps all);
	// rootSeen counts root-span starts for the modulus.
	sampleN  atomic.Int64
	rootSeen atomic.Int64
	// retain bounds len(events); ≤0 keeps everything (batch runs that
	// export one trace at exit). Long-lived servers set it so untaken
	// traces age out instead of growing without bound.
	retain atomic.Int64
	mu     sync.Mutex
	events []spanEvent
}

// spanEvent is one completed span. Times are offsets from the tracer's
// epoch, so exports are stable regardless of wall-clock adjustments
// mid-run.
type spanEvent struct {
	id     int64
	parent int64 // 0 = root
	trace  int64 // id of the root span of this span's tree
	name   string
	start  time.Duration
	dur    time.Duration
	args   map[string]string
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// defaultTracer is the process-wide tracer, nil (disabled) unless a
// binary enables it for a -trace run.
var defaultTracer atomic.Pointer[Tracer]

// DefaultTracer returns the process-wide tracer, or nil when tracing is
// disabled (the default). Instrumented packages fall back to it the way
// they fall back to the Default registry.
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// SetDefaultTracer installs t as the process-wide tracer (nil disables).
func SetDefaultTracer(t *Tracer) { defaultTracer.Store(t) }

// OrDefault returns t, or the process-wide default tracer when t is nil
// (which may itself be nil, i.e. tracing disabled).
func (t *Tracer) OrDefault() *Tracer {
	if t == nil {
		return DefaultTracer()
	}
	return t
}

// Span is one in-flight interval. A Span is owned by the goroutine that
// started it: Arg and End are not for concurrent use on the same span,
// but any number of goroutines may start child spans concurrently.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	trace  int64
	name   string
	start  time.Duration
	args   map[string]string
}

// ID returns the span's identifier, unique within its tracer (0 on a
// nil span).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID identifies the span tree: every descendant of one root span
// shares the root's ID here (0 on a nil span). The serving path logs it
// on every line and keys TakeTrace with it.
func (s *Span) TraceID() int64 {
	if s == nil {
		return 0
	}
	return s.trace
}

type spanKey struct{}

// ContextWithSpan returns a context carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span, or nil if none.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a span on t, parented to the current span of ctx (a
// root span when ctx has none), and returns the derived context carrying
// the new span. On a nil tracer it returns ctx unchanged and a nil span
// whose methods no-op.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent, trace int64
	if p := SpanFromContext(ctx); p != nil && p.t == t {
		parent, trace = p.id, p.trace
	}
	if parent == 0 {
		if n := t.sampleN.Load(); n > 1 && (t.rootSeen.Add(1)-1)%n != 0 {
			// Sampled out: no span enters the context, so the root's
			// would-be children (which parent through ctx) are dropped
			// with it and the trace stays internally consistent.
			return ctx, nil
		}
	}
	s := &Span{
		t:      t,
		id:     t.nextID.Add(1),
		parent: parent,
		trace:  trace,
		name:   name,
		start:  time.Since(t.epoch),
	}
	if s.trace == 0 {
		s.trace = s.id
	}
	return ContextWithSpan(ctx, s), s
}

// StartSpan starts a child of the current span of ctx, on that span's
// tracer. Without a span in ctx it is a no-op — this is what lets
// instrumented packages trace unconditionally while tracing stays free
// when no binary enabled it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	p := SpanFromContext(ctx)
	if p == nil {
		return ctx, nil
	}
	return p.t.StartSpan(ctx, name)
}

// StartSpanOrRoot starts a child of the current span of ctx, or — when
// ctx carries none — a root span on the default tracer. Bulk operations
// outside the pipeline (KB loads, evaluation scoring) use it so a
// -trace run records them whether or not a pipeline span is active; it
// stays free when tracing is disabled.
func StartSpanOrRoot(ctx context.Context, name string) (context.Context, *Span) {
	if p := SpanFromContext(ctx); p != nil {
		return p.t.StartSpan(ctx, name)
	}
	return DefaultTracer().StartSpan(ctx, name)
}

// SetRootSampling keeps 1 of every n root spans (and, transitively,
// only their descendants), bounding trace size on long runs such as
// `midas-bench -exp all`; n ≤ 1 keeps every span. Safe to call
// concurrently with tracing.
func (t *Tracer) SetRootSampling(n int) {
	if t == nil {
		return
	}
	t.sampleN.Store(int64(n))
}

// Arg attaches a key/value annotation, shown in the Perfetto span
// details pane. Returns s for chaining; no-op on a nil span.
func (s *Span) Arg(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]string, 4)
	}
	s.args[key] = value
	return s
}

// End completes the span and records it on the tracer. No-op on a nil
// span; calling End twice records the span twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := spanEvent{
		id:     s.id,
		parent: s.parent,
		trace:  s.trace,
		name:   s.name,
		start:  s.start,
		dur:    time.Since(s.t.epoch) - s.start,
		args:   s.args,
	}
	max := int(s.t.retain.Load())
	s.t.mu.Lock()
	s.t.events = append(s.t.events, ev)
	if max > 0 && len(s.t.events) > max {
		// Age out the oldest completed spans; their traces become
		// partial, which profile consumers tolerate.
		drop := len(s.t.events) - max
		s.t.events = append(s.t.events[:0], s.t.events[drop:]...)
	}
	s.t.mu.Unlock()
}

// SetRetention bounds the number of completed spans the tracer retains;
// once exceeded, the oldest are discarded. Long-lived servers (which
// trace every request but only fold discovery traces into profiles) set
// it so abandoned traces age out. n ≤ 0 retains everything — the batch
// default, where the whole trace is exported at exit. Safe to call
// concurrently with tracing.
func (t *Tracer) SetRetention(n int) {
	if t == nil {
		return
	}
	t.retain.Store(int64(n))
}

// SpanRecord is one completed span as handed to trace consumers:
// identifiers, interval (offsets from the tracer's epoch), and
// annotations.
type SpanRecord struct {
	ID       int64
	Parent   int64 // 0 = root
	Trace    int64
	Name     string
	Start    time.Duration
	Duration time.Duration
	Args     map[string]string
}

// TakeTrace removes and returns every completed span of the given trace
// (the ID shared by a root span and all its descendants), in completion
// order. Taking a trace is how the serving path folds a finished job's
// spans into its profile while keeping the tracer's memory bounded:
// once taken, the spans no longer appear in Chrome-trace exports. An
// unknown or already-taken trace returns nil. Spans still in flight are
// not included — callers take a trace only after its root has ended.
func (t *Tracer) TakeTrace(traceID int64) []SpanRecord {
	if t == nil || traceID == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	kept := t.events[:0]
	for _, ev := range t.events {
		if ev.trace != traceID {
			kept = append(kept, ev)
			continue
		}
		out = append(out, SpanRecord{
			ID: ev.id, Parent: ev.parent, Trace: ev.trace, Name: ev.name,
			Start: ev.start, Duration: ev.dur, Args: ev.args,
		})
	}
	t.events = kept
	return out
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is one trace event in the Chrome trace-event format
// ("X" = complete event with duration; timestamps in microseconds).
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes every completed span as Chrome trace-event
// JSON ({"traceEvents": [...]}). Spans are laid out onto display lanes
// (trace "threads") so that two spans share a lane only when their
// intervals nest or are disjoint — Perfetto renders containment as
// nesting, so parent/child spans stack while concurrent workers spread
// across lanes. No-op (empty trace) on a nil tracer.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var events []spanEvent
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		t.mu.Unlock()
	}

	// Deterministic layout order: by start time, longer spans first on
	// ties so parents are placed before the children they contain.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].start != events[j].start {
			return events[i].start < events[j].start
		}
		if events[i].dur != events[j].dur {
			return events[i].dur > events[j].dur
		}
		return events[i].id < events[j].id
	})

	laneOf := make(map[int64]int, len(events))
	type interval struct{ start, end time.Duration }
	var lanes [][]interval
	fits := func(lane []interval, start, end time.Duration) bool {
		for _, iv := range lane {
			disjoint := end <= iv.start || iv.end <= start
			contains := (iv.start <= start && end <= iv.end) || (start <= iv.start && iv.end <= end)
			if !disjoint && !contains {
				return false
			}
		}
		return true
	}
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		start, end := ev.start, ev.start+ev.dur
		lane := -1
		// Prefer the parent's lane (nests under it), then any lane the
		// span fits, then a fresh lane.
		if pl, ok := laneOf[ev.parent]; ok && fits(lanes[pl], start, end) {
			lane = pl
		} else {
			for i := range lanes {
				if fits(lanes[i], start, end) {
					lane = i
					break
				}
			}
		}
		if lane < 0 {
			lanes = append(lanes, nil)
			lane = len(lanes) - 1
		}
		lanes[lane] = append(lanes[lane], interval{start, end})
		laneOf[ev.id] = lane
		out = append(out, chromeEvent{
			Name:  ev.name,
			Cat:   "midas",
			Phase: "X",
			TS:    float64(ev.start.Microseconds()),
			Dur:   float64(ev.dur) / float64(time.Microsecond),
			PID:   1,
			TID:   lane + 1,
			Args:  ev.args,
		})
	}

	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	for i, ev := range out {
		if i > 0 {
			fmt.Fprint(bw, ",\n")
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		bw.Write(b)
	}
	fmt.Fprint(bw, "]}\n")
	return bw.Flush()
}

// WriteFile writes the Chrome trace to path, creating or truncating it.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = t.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
