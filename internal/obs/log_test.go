package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock pins a logger's timestamps so encoded records are exact.
func fixedClock(l *Logger) *Logger {
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	l.now = func() time.Time { return at }
	return l
}

func TestLoggerLogfmtEncoding(t *testing.T) {
	var buf bytes.Buffer
	l := fixedClock(NewLogger(&buf, LevelDebug, FormatLogfmt))
	l.Info(nil, "session created", "session", "alpha", "facts", 42, "coverage", 0.625,
		"dur", 150*time.Millisecond, "quoted", "two words", "empty", "", "ok", true)
	got := buf.String()
	want := `ts=2026-08-08T12:00:00Z level=info msg="session created" session=alpha facts=42 coverage=0.625 dur=150ms quoted="two words" empty="" ok=true` + "\n"
	if got != want {
		t.Errorf("logfmt record:\ngot  %q\nwant %q", got, want)
	}
}

func TestLoggerJSONEncoding(t *testing.T) {
	var buf bytes.Buffer
	l := fixedClock(NewLogger(&buf, LevelDebug, FormatJSON))
	l.Error(nil, `escape "this"`, "err", errors.New("boom\nline2"), "n", int64(7))
	line := buf.String()
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, line)
	}
	if rec["level"] != "error" || rec["msg"] != `escape "this"` || rec["err"] != "boom\nline2" || rec["n"] != float64(7) {
		t.Errorf("decoded record = %v", rec)
	}
	// Deterministic field order: ts first, then level, msg.
	if !strings.HasPrefix(line, `{"ts":"2026-08-08T12:00:00Z","level":"error","msg":`) {
		t.Errorf("field order: %s", line)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn, FormatLogfmt)
	l.Debug(nil, "nope")
	l.Info(nil, "nope")
	l.Warn(nil, "yes")
	l.Error(nil, "yes")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("records written = %d, want 2:\n%s", got, buf.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with level filtering")
	}
	buf.Reset()
	off := NewLogger(&buf, LevelOff, FormatLogfmt)
	off.Error(nil, "nope")
	if buf.Len() != 0 {
		t.Errorf("LevelOff still wrote: %s", buf.String())
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var l *Logger
	l.Info(context.Background(), "into the void", "k", "v")
	l.With("k", "v").Error(nil, "still nothing")
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	if l.OrDefault() != nil {
		t.Error("OrDefault with no default installed should stay nil")
	}
}

func TestLoggerDefaultInstall(t *testing.T) {
	var buf bytes.Buffer
	SetDefaultLogger(NewLogger(&buf, LevelInfo, FormatLogfmt))
	defer SetDefaultLogger(nil)
	var l *Logger
	l.OrDefault().Info(nil, "via default")
	if !strings.Contains(buf.String(), "msg="+`"via default"`) {
		t.Errorf("default logger did not receive the record: %q", buf.String())
	}
}

func TestLoggerWithAndContextFields(t *testing.T) {
	var buf bytes.Buffer
	l := fixedClock(NewLogger(&buf, LevelDebug, FormatLogfmt)).With("component", "serve")
	ctx := ContextWithLogFields(context.Background(), "request", "000007", "session", "alpha")
	ctx = ContextWithLogFields(ctx, "job", 3)
	l.Info(ctx, "job started", "cached", false)
	want := `ts=2026-08-08T12:00:00Z level=info msg="job started" request=000007 session=alpha job=3 component=serve cached=false` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("record:\ngot  %q\nwant %q", got, want)
	}
}

func TestLoggerSpanCorrelation(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, FormatJSON)
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), "request")
	ctx, child := tr.StartSpan(ctx, "framework/run")
	l.Info(ctx, "round done")
	child.End()
	root.End()
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace"] != formatSpanID(root.ID()) {
		t.Errorf("trace field = %v, want root id %s", rec["trace"], formatSpanID(root.ID()))
	}
	if rec["span"] != formatSpanID(child.ID()) {
		t.Errorf("span field = %v, want current span id %s", rec["span"], formatSpanID(child.ID()))
	}
}

func TestLoggerBadKeyPairs(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, FormatLogfmt)
	l.Info(nil, "odd", "key-without-value")
	if !strings.Contains(buf.String(), "!BADKEY=key-without-value") {
		t.Errorf("trailing odd value not surfaced: %q", buf.String())
	}
	buf.Reset()
	l.Info(nil, "nonstring", 42, "v")
	if !strings.Contains(buf.String(), "!BADKEY(42)=v") {
		t.Errorf("non-string key not surfaced: %q", buf.String())
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff, "none": LevelOff,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(json) = %v, %v", f, err)
	}
	if f, err := ParseFormat(""); err != nil || f != FormatLogfmt {
		t.Errorf("ParseFormat(empty) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat should reject unknown formats")
	}
	if _, err := NewLoggerFromFlags(&bytes.Buffer{}, "info", "json"); err != nil {
		t.Errorf("NewLoggerFromFlags: %v", err)
	}
	if _, err := NewLoggerFromFlags(&bytes.Buffer{}, "nope", "json"); err == nil {
		t.Error("NewLoggerFromFlags should propagate level errors")
	}
}

// TestLoggerConcurrent hammers one logger from many goroutines; under
// -race this proves writes are serialized, and every line must stay
// intact (no interleaving) and valid JSON.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, FormatJSON)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info(nil, "tick", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("line count = %d, want %d", len(lines), 8*50)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved or corrupt record: %q", line)
		}
	}
}
