package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
)

// NewServeMux returns the live-telemetry mux over a registry:
//
//	/metrics      OpenMetrics/Prometheus text exposition
//	/debug/vars   expvar JSON (stdlib vars plus the registry snapshot
//	              under the "midas" key)
//	/debug/pprof  the standard net/http/pprof handlers
//	/             a plain-text index of the above
//
// A scraper polling /metrics sees the registry as it fills during a
// run, instead of waiting for the end-of-run -stats snapshot.
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	Mount(mux, r)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "midas live telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Mount registers the telemetry endpoints (/metrics, /debug/vars,
// /debug/pprof) on an existing mux, so a binary serving its own API —
// midas-serve — exposes telemetry on the same listener instead of
// wiring a second copy of the handlers. The root path is left to the
// caller; NewServeMux adds a plain-text index for the standalone case.
func Mount(mux *http.ServeMux, r *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", OpenMetricsContentType)
		if err := r.WriteOpenMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprint(w, "{")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if kv.Key == "midas" {
				return // ours below; skip any globally published duplicate
			}
			if !first {
				fmt.Fprint(w, ",")
			}
			first = false
			fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value)
		})
		if !first {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, "\n\"midas\": ")
		r.WriteJSON(w)
		fmt.Fprint(w, "}\n")
	})
	// Register the index under both the bare path and the trailing-slash
	// subtree. With only "/debug/pprof/" registered, a bare
	// "/debug/pprof" request falls through to the mux's "/" handler (or
	// 404s behind midas-serve's API mux, which has no "/"), and the
	// index's relative profile links ("goroutine?debug=1") resolve
	// against /debug/ instead of /debug/pprof/. Redirecting bare → slash
	// keeps those links working.
	mux.HandleFunc("/debug/pprof", func(w http.ResponseWriter, req *http.Request) {
		http.Redirect(w, req, "/debug/pprof/", http.StatusMovedPermanently)
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// ListenAndServe starts serving the registry's telemetry mux on addr in
// a background goroutine, returning the bound address (useful with
// ":0"). The server runs for the remaining lifetime of the process —
// these binaries exit when their run ends, which closes the listener.
func ListenAndServe(addr string, r *Registry) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewServeMux(r)}
	go srv.Serve(ln)
	return ln.Addr(), nil
}
