package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterVecBasics(t *testing.T) {
	r := New()
	v := r.CounterVec("hierarchy/level/pruned", "level")
	v.With("02").Add(5)
	v.With("02").Add(3)
	v.With("10").Inc()
	if got := v.With("02").Value(); got != 8 {
		t.Errorf(`series level=02 = %d, want 8`, got)
	}
	s := v.snapshot()
	if !reflect.DeepEqual(s.LabelNames, []string{"level"}) {
		t.Errorf("label names = %v", s.LabelNames)
	}
	if len(s.Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(s.Series))
	}
	// Sorted by label values: "02" before "10".
	if s.Series[0].Labels["level"] != "02" || s.Series[0].Value != 8 {
		t.Errorf("series[0] = %+v", s.Series[0])
	}
	if s.Series[1].Labels["level"] != "10" || s.Series[1].Value != 1 {
		t.Errorf("series[1] = %+v", s.Series[1])
	}
	// Lookup by name returns the same vector.
	if r.CounterVec("hierarchy/level/pruned", "level") != v {
		t.Error("second CounterVec lookup returned a different vector")
	}
}

func TestTimerVecBasics(t *testing.T) {
	r := New()
	v := r.TimerVec("framework/depth", "depth")
	v.With("03").Observe(20 * time.Millisecond)
	v.With("03").Observe(40 * time.Millisecond)
	v.With("01").Observe(10 * time.Millisecond)
	s := v.snapshot()
	if len(s.Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(s.Series))
	}
	if s.Series[0].Labels["depth"] != "01" || s.Series[0].Count != 1 {
		t.Errorf("series[0] = %+v", s.Series[0])
	}
	d3 := s.Series[1]
	if d3.Count != 2 || d3.MinSeconds != 0.02 || d3.MaxSeconds != 0.04 {
		t.Errorf("depth=03 = %+v, want count 2 min 0.02 max 0.04", d3)
	}
}

func TestGaugeVecBasics(t *testing.T) {
	r := New()
	v := r.GaugeVec("serve/inflight", "route")
	v.With("/api/discover").Set(3)
	v.With("/api/discover").Set(2)
	v.With("/healthz").Set(1)
	if got := v.With("/api/discover").Value(); got != 2 {
		t.Errorf(`series route=/api/discover = %v, want 2`, got)
	}
	s := v.snapshot()
	if !reflect.DeepEqual(s.LabelNames, []string{"route"}) {
		t.Errorf("label names = %v", s.LabelNames)
	}
	if len(s.Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(s.Series))
	}
	if s.Series[0].Labels["route"] != "/api/discover" || s.Series[0].Value != 2 {
		t.Errorf("series[0] = %+v", s.Series[0])
	}
	if r.GaugeVec("serve/inflight", "route") != v {
		t.Error("second GaugeVec lookup returned a different vector")
	}
}

func TestHistogramVecBasics(t *testing.T) {
	r := New()
	v := r.HistogramVec("serve/request_seconds", []float64{0.01, 0.1, 1}, "route")
	v.With("/api/discover").Observe(0.05)
	v.With("/api/discover").Observe(0.5)
	v.With("/api/discover").Observe(5)
	v.With("/healthz").Observe(0.001)
	s := v.snapshot()
	if len(s.Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(s.Series))
	}
	d := s.Series[0]
	if d.Labels["route"] != "/api/discover" || d.Count != 3 {
		t.Fatalf("series[0] = %+v", d)
	}
	if d.Sum != 5.55 || d.Min != 0.05 || d.Max != 5 {
		t.Errorf("sum/min/max = %v/%v/%v, want 5.55/0.05/5", d.Sum, d.Min, d.Max)
	}
	// Buckets are per-bound (non-cumulative) in snapshots, with the
	// overflow under +Inf — same shape as plain Histogram snapshots.
	counts := map[string]int64{}
	for _, b := range d.Buckets {
		counts[formatFloat(float64(b.UpperBound))] = b.Count
	}
	if counts["0.1"] != 1 || counts["1"] != 1 || counts["+Inf"] != 1 {
		t.Errorf("bucket counts = %v", counts)
	}
	// Default bounds kick in when none are given.
	dv := r.HistogramVec("other", nil, "l")
	dv.With("x").Observe(3)
	ds := dv.With("x").snapshot()
	if len(ds.Buckets) != 1 || float64(ds.Buckets[0].UpperBound) != 5 {
		t.Errorf("default-bounds snapshot buckets = %+v, want one bucket at le=5", ds.Buckets)
	}
	if r.HistogramVec("serve/request_seconds", nil, "route") != v {
		t.Error("second HistogramVec lookup returned a different vector")
	}
}

func TestVecLabelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("With with wrong label count should panic")
		}
	}()
	New().CounterVec("x", "a", "b").With("only-one")
}

func TestVecNilSafety(t *testing.T) {
	var r *Registry
	r.CounterVec("x", "l").With("v").Add(1)
	r.TimerVec("x", "l").With("v").Observe(time.Second)
	r.GaugeVec("x", "l").With("v").Set(1)
	r.HistogramVec("x", nil, "l").With("v").Observe(1)
	var cv *CounterVec
	cv.With("v").Inc()
	var tv *TimerVec
	tv.With("v").Observe(time.Second)
	var gv *GaugeVec
	gv.With("v").Set(1)
	var hv *HistogramVec
	hv.With("v").Observe(1)
}

// populateVecs mirrors obs_test.populate for the labeled kinds.
func populateVecs(r *Registry) {
	cv := r.CounterVec("framework/consolidate", "decision", "depth")
	cv.With("parents_kept", "02").Add(7)
	cv.With("children_kept", "02").Add(3)
	cv.With("parents_kept", "01").Add(1)
	tv := r.TimerVec("framework/depth", "depth")
	tv.With("02").Observe(250 * time.Millisecond)
	tv.With("01").Observe(750 * time.Millisecond)
}

// TestVecWriteJSONDeterministic: on a quiesced registry, repeated
// WriteJSON calls must be byte-identical, and an equivalent registry
// built from the same history must serialize to the same bytes —
// including the labeled vectors.
func TestVecWriteJSONDeterministic(t *testing.T) {
	r := New()
	populate(r)
	populateVecs(r)
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("consecutive JSON serializations differ:\n%s\n%s", b1.String(), b2.String())
	}
	r2 := New()
	populate(r2)
	populateVecs(r2)
	var b3 bytes.Buffer
	if err := r2.WriteJSON(&b3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Errorf("equivalent registries serialize differently:\n%s\n%s", b1.String(), b3.String())
	}
}

func TestVecSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	populateVecs(r)
	want := r.Snapshot()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("round trip changed the snapshot:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestSnapshotDuringConcurrentWrites hammers counters, timers, and both
// vector kinds from many goroutines while the main goroutine snapshots
// and serializes; under -race this proves Snapshot is safe against
// in-flight writers (the CI race job runs this package).
func TestSnapshotDuringConcurrentWrites(t *testing.T) {
	r := New()
	const goroutines, perG = 16, 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			depth := []string{"01", "02", "03"}[g%3]
			for i := 0; i < perG; i++ {
				r.Counter("plain").Inc()
				r.CounterVec("vec", "depth").With(depth).Inc()
				r.TimerVec("tvec", "depth").With(depth).Observe(time.Microsecond)
				r.Timer("plain_timer").Observe(time.Microsecond)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				s := r.Snapshot()
				var buf bytes.Buffer
				if err := r.WriteJSON(&buf); err != nil {
					t.Error(err)
					return
				}
				_ = s
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done

	// Quiesced: totals must be exact.
	s := r.Snapshot()
	if got := s.Counters["plain"]; got != goroutines*perG {
		t.Errorf("plain counter = %d, want %d", got, goroutines*perG)
	}
	var vecTotal int64
	for _, series := range s.CounterVecs["vec"].Series {
		vecTotal += series.Value
	}
	if vecTotal != goroutines*perG {
		t.Errorf("vec series total = %d, want %d", vecTotal, goroutines*perG)
	}
	var timerCount int64
	for _, series := range s.TimerVecs["tvec"].Series {
		timerCount += series.Count
	}
	if timerCount != goroutines*perG {
		t.Errorf("tvec observation total = %d, want %d", timerCount, goroutines*perG)
	}
}
