// Package obs is the pipeline's lightweight, dependency-free
// observability layer: named atomic counters, gauges, phase timers, and
// histograms collected in a Registry whose Snapshot serializes to
// deterministic JSON.
//
// Design constraints, in order:
//
//   - zero allocation and lock-free on the hot update paths (counters,
//     gauges, and timers are atomics; histograms take a short mutex);
//   - safe for concurrent use from the framework's worker pool;
//   - nil-tolerant: every method is a no-op on a nil receiver, so
//     instrumented code never branches on "is observability enabled";
//   - no third-party dependencies (the snapshot is plain encoding/json).
//
// Instrumented packages accept an optional *Registry and fall back to
// the process-wide Default() registry via OrDefault, so binaries get a
// full picture without threading a registry through every call site,
// while tests and libraries can isolate themselves with New().
package obs

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value (utilization, rate, queue depth).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates wall-clock durations of one phase: count, total,
// min, and max, all updated atomically.
type Timer struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
	min   atomic.Int64 // nanoseconds; math.MaxInt64 until first observation
	max   atomic.Int64 // nanoseconds
}

// Observe records one phase execution of duration d.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := int64(d)
	t.count.Add(1)
	t.total.Add(ns)
	for {
		cur := t.min.Load()
		if ns >= cur || t.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := t.max.Load()
		if ns <= cur || t.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

func newTimer() *Timer {
	t := &Timer{}
	t.min.Store(math.MaxInt64)
	return t
}

// Start begins timing a phase; the returned function stops the clock and
// records the elapsed duration. Usable as defer reg.Timer("x").Start()().
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// TimerSnapshot is the serialized state of a Timer. Durations are
// reported in seconds for direct plotting against the paper's figures.
type TimerSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

func (t *Timer) snapshot() TimerSnapshot {
	n := t.count.Load()
	total := t.total.Load()
	s := TimerSnapshot{Count: n, TotalSeconds: seconds(total)}
	if n > 0 {
		s.MinSeconds = seconds(t.min.Load())
		s.MaxSeconds = seconds(t.max.Load())
		s.MeanSeconds = seconds(total / n)
	}
	return s
}

func seconds(ns int64) float64 { return float64(ns) / 1e9 }

// DefaultBuckets are the histogram upper bounds used when none are
// given: a coarse exponential ladder wide enough for slice counts,
// entity counts, and profits alike.
var DefaultBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 100000, 1000000}

// DefaultLatencyBuckets are upper bounds in seconds for request-latency
// histograms: sub-millisecond cache hits through multi-second discovery
// jobs.
var DefaultLatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// Histogram counts observations into fixed upper-bound buckets and
// tracks count/sum/min/max. Observations above the last bound land in an
// implicit +Inf overflow bucket.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	buckets []int64 // len(bounds)+1; last is overflow
	count   int64
	sum     float64
	min     float64
	max     float64
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations in one update (used when a
// caller aggregates before reporting, e.g. per-level prune tallies).
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.mu.Lock()
	h.buckets[i] += n
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * float64(n)
	h.mu.Unlock()
}

// Bucket is one histogram bucket: the count of observations ≤ the upper
// bound. The overflow bucket has UpperBound = +Inf, serialized as "inf".
type Bucket struct {
	UpperBound JSONFloat `json:"le"`
	Count      int64     `json:"count"`
}

// HistogramSnapshot is the serialized state of a Histogram. Empty
// buckets are omitted to keep snapshots small.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
		s.Mean = h.sum / float64(h.count)
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: JSONFloat(ub), Count: n})
	}
	return s
}

// JSONFloat is a float64 whose JSON form supports ±Inf (as "inf" /
// "-inf" strings), needed for the overflow bucket bound.
type JSONFloat float64

func (f JSONFloat) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(f), 1) {
		return []byte(`"inf"`), nil
	}
	if math.IsInf(float64(f), -1) {
		return []byte(`"-inf"`), nil
	}
	return json.Marshal(float64(f))
}

func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"inf"`:
		*f = JSONFloat(math.Inf(1))
		return nil
	case `"-inf"`:
		*f = JSONFloat(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// Registry is a named collection of metrics, safe for concurrent use.
// The zero value is not usable; call New. All lookup methods get-or-
// create and are cheap enough to call on warm paths (one RLock + map
// probe); store the returned handle when a path is truly hot.
type Registry struct {
	mu            sync.RWMutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	timers        map[string]*Timer
	histograms    map[string]*Histogram
	counterVecs   map[string]*CounterVec
	timerVecs     map[string]*TimerVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		timers:        make(map[string]*Timer),
		histograms:    make(map[string]*Histogram),
		counterVecs:   make(map[string]*CounterVec),
		timerVecs:     make(map[string]*TimerVec),
		gaugeVecs:     make(map[string]*GaugeVec),
		histogramVecs: make(map[string]*HistogramVec),
	}
}

var defaultRegistry = New()

// Default returns the process-wide registry that instrumented packages
// fall back to when no explicit registry is threaded in. Binaries
// snapshot it for their -stats flag.
func Default() *Registry { return defaultRegistry }

// OrDefault returns r, or the process-wide Default() registry when r is
// nil. Instrumented packages call this once per operation.
func (r *Registry) OrDefault() *Registry {
	if r == nil {
		return Default()
	}
	return r
}

// Counter returns the named counter, creating it if needed. Returns nil
// (whose methods no-op) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named phase timer, creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.timers[name]; !ok {
		t = newTimer()
		r.timers[name] = t
	}
	return t
}

// CounterVec returns the named counter vector with the given label
// names, creating it if needed. Label names are fixed at first creation
// (like Histogram bounds); subsequent lookups by name return the
// original vector regardless of the labels argument.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v, ok := r.counterVecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.counterVecs[name]; !ok {
		v = &CounterVec{
			name:   name,
			labels: append([]string(nil), labels...),
			series: make(map[string]*Counter),
		}
		r.counterVecs[name] = v
	}
	return v
}

// TimerVec returns the named timer vector with the given label names,
// creating it if needed. Same contract as CounterVec.
func (r *Registry) TimerVec(name string, labels ...string) *TimerVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v, ok := r.timerVecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.timerVecs[name]; !ok {
		v = &TimerVec{
			name:   name,
			labels: append([]string(nil), labels...),
			series: make(map[string]*Timer),
		}
		r.timerVecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge vector with the given label names,
// creating it if needed. Same contract as CounterVec.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v, ok := r.gaugeVecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.gaugeVecs[name]; !ok {
		v = &GaugeVec{
			name:   name,
			labels: append([]string(nil), labels...),
			series: make(map[string]*Gauge),
		}
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram vector with the given bucket
// upper bounds (nil/empty = DefaultBuckets; must be sorted ascending)
// and label names. Bounds and labels are fixed at first creation, like
// Histogram bounds and CounterVec labels.
func (r *Registry) HistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v, ok := r.histogramVecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.histogramVecs[name]; !ok {
		v = &HistogramVec{
			name:   name,
			labels: append([]string(nil), labels...),
			bounds: append([]float64(nil), bounds...),
			series: make(map[string]*Histogram),
		}
		r.histogramVecs[name] = v
	}
	return v
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (DefaultBuckets when none; bounds must be sorted
// ascending). Bounds are fixed at first creation.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; !ok {
		h = &Histogram{bounds: bounds, buckets: make([]int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Reset clears every metric while keeping the registry usable. Handles
// obtained before Reset keep working but report into discarded state.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.timers = make(map[string]*Timer)
	r.histograms = make(map[string]*Histogram)
	r.counterVecs = make(map[string]*CounterVec)
	r.timerVecs = make(map[string]*TimerVec)
	r.gaugeVecs = make(map[string]*GaugeVec)
	r.histogramVecs = make(map[string]*HistogramVec)
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of a registry's metrics. Maps
// marshal with sorted keys, so the JSON form is deterministic for a
// given metric state.
type Snapshot struct {
	Counters      map[string]int64                `json:"counters,omitempty"`
	Gauges        map[string]float64              `json:"gauges,omitempty"`
	Timers        map[string]TimerSnapshot        `json:"timers,omitempty"`
	Histograms    map[string]HistogramSnapshot    `json:"histograms,omitempty"`
	CounterVecs   map[string]CounterVecSnapshot   `json:"counter_vecs,omitempty"`
	TimerVecs     map[string]TimerVecSnapshot     `json:"timer_vecs,omitempty"`
	GaugeVecs     map[string]GaugeVecSnapshot     `json:"gauge_vecs,omitempty"`
	HistogramVecs map[string]HistogramVecSnapshot `json:"histogram_vecs,omitempty"`
}

// Snapshot copies the current metric values. Individual metrics are read
// atomically; the snapshot as a whole is not a cross-metric atomic cut
// (concurrent writers may land between reads), which is fine for its
// purpose of end-of-run reporting.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerSnapshot, len(r.timers))
		for name, t := range r.timers {
			s.Timers[name] = t.snapshot()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(r.counterVecs) > 0 {
		s.CounterVecs = make(map[string]CounterVecSnapshot, len(r.counterVecs))
		for name, v := range r.counterVecs {
			s.CounterVecs[name] = v.snapshot()
		}
	}
	if len(r.timerVecs) > 0 {
		s.TimerVecs = make(map[string]TimerVecSnapshot, len(r.timerVecs))
		for name, v := range r.timerVecs {
			s.TimerVecs[name] = v.snapshot()
		}
	}
	if len(r.gaugeVecs) > 0 {
		s.GaugeVecs = make(map[string]GaugeVecSnapshot, len(r.gaugeVecs))
		for name, v := range r.gaugeVecs {
			s.GaugeVecs[name] = v.snapshot()
		}
	}
	if len(r.histogramVecs) > 0 {
		s.HistogramVecs = make(map[string]HistogramVecSnapshot, len(r.histogramVecs))
		for name, v := range r.histogramVecs {
			s.HistogramVecs[name] = v.snapshot()
		}
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFile writes a JSON snapshot to path, creating or truncating it.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
