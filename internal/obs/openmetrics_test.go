package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds one registry exercising every metric kind the
// encoder handles: plain counters, gauges, timers, histograms, and both
// vector kinds — including a label value that needs escaping.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("hierarchy/nodes_generated").Add(1234)
	r.Counter("framework/sources_processed").Add(17)
	r.Gauge("framework/final_slices").Set(42)
	r.Gauge("session/corpus_coverage").Set(0.625)
	r.Timer("framework/run").Observe(1500 * time.Millisecond)
	r.Timer("framework/run").Observe(500 * time.Millisecond)
	r.Timer("core/empty").Observe(0) // zero-duration observation still counts

	h := r.Histogram("slice/profit", 0.1, 1, 10)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	cv := r.CounterVec("hierarchy/level/pruned_canonicity", "level")
	cv.With("00").Add(11)
	cv.With("01").Add(7)
	esc := r.CounterVec("detect/source", "source")
	esc.With(`web.com/a"b\c` + "\n").Inc()

	tv := r.TimerVec("framework/depth", "depth")
	tv.With("00").Observe(40 * time.Millisecond)
	tv.With("00").Observe(60 * time.Millisecond)
	tv.With("01").Observe(10 * time.Millisecond)

	gv := r.GaugeVec("serve/sessions_facts", "session")
	gv.With("alpha").Set(321)
	gv.With("beta").Set(12.5)

	hv := r.HistogramVec("serve/request_seconds", []float64{0.01, 0.1, 1}, "route")
	hv.With("/api/discover").Observe(0.05)
	hv.With("/api/discover").Observe(0.7)
	hv.With("/api/discover").Observe(3)
	hv.With("/healthz").Observe(0.002)
	return r
}

func TestWriteOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/obs` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s (regenerate with -update):\ngot:\n%s", golden, buf.String())
	}
}

func TestWriteOpenMetricsStable(t *testing.T) {
	r := goldenRegistry()
	var b1, b2 bytes.Buffer
	if err := r.WriteOpenMetrics(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteOpenMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("consecutive expositions of a quiesced registry differ")
	}
}

func TestWriteOpenMetricsFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("exposition must end with # EOF")
	}
	for _, want := range []string{
		// counter: _total suffix, midas_ namespace, '/' → '_'
		"# TYPE midas_hierarchy_nodes_generated counter",
		"midas_hierarchy_nodes_generated_total 1234",
		// labeled counter series with unprefixed label name
		`midas_hierarchy_level_pruned_canonicity_total{level="00"} 11`,
		`midas_hierarchy_level_pruned_canonicity_total{level="01"} 7`,
		// label-value escaping: backslash, quote, newline
		`midas_detect_source_total{source="web.com/a\"b\\c\n"} 1`,
		// gauge
		"midas_session_corpus_coverage 0.625",
		// timer as summary + min/max gauges
		"# TYPE midas_framework_run_seconds summary",
		"midas_framework_run_seconds_count 2",
		"midas_framework_run_seconds_sum 2",
		"midas_framework_run_seconds_min 0.5",
		"midas_framework_run_seconds_max 1.5",
		// labeled timer series
		`midas_framework_depth_seconds_count{depth="00"} 2`,
		`midas_framework_depth_seconds_max{depth="00"} 0.06`,
		// histogram: cumulative buckets and mandatory +Inf
		`midas_slice_profit_bucket{le="0.1"} 1`,
		`midas_slice_profit_bucket{le="1"} 2`,
		`midas_slice_profit_bucket{le="10"} 3`,
		`midas_slice_profit_bucket{le="+Inf"} 4`,
		"midas_slice_profit_count 4",
		// labeled gauge series
		`midas_serve_sessions_facts{session="alpha"} 321`,
		`midas_serve_sessions_facts{session="beta"} 12.5`,
		// labeled histogram series: cumulative buckets with the le label
		// appended after the series labels, mandatory +Inf, count and sum
		`midas_serve_request_seconds_bucket{route="/api/discover",le="0.1"} 1`,
		`midas_serve_request_seconds_bucket{route="/api/discover",le="1"} 2`,
		`midas_serve_request_seconds_bucket{route="/api/discover",le="+Inf"} 3`,
		`midas_serve_request_seconds_count{route="/api/discover"} 3`,
		`midas_serve_request_seconds_sum{route="/api/discover"} 3.75`,
		`midas_serve_request_seconds_bucket{route="/healthz",le="0.01"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q\ngot:\n%s", want, out)
		}
	}

	// Families are emitted in sorted name order within each kind, and
	// vector series in sorted label-value order (the golden file locks
	// the full layout; spot-check the relative order here).
	for _, pair := range [][2]string{
		{"midas_framework_sources_processed_total", "midas_hierarchy_nodes_generated_total"},
		{"midas_detect_source_total", "midas_hierarchy_level_pruned_canonicity_total"},
		{`pruned_canonicity_total{level="00"}`, `pruned_canonicity_total{level="01"}`},
		{`midas_framework_depth_seconds_count{depth="00"}`, `midas_framework_depth_seconds_count{depth="01"}`},
	} {
		i, j := strings.Index(out, pair[0]), strings.Index(out, pair[1])
		if i < 0 || j < 0 || i > j {
			t.Errorf("want %q before %q (at %d, %d)", pair[0], pair[1], i, j)
		}
	}
}

func TestSanitizeNames(t *testing.T) {
	if got := sanitizeName("framework/run.wall-time"); got != "midas_framework_run_wall_time" {
		t.Errorf("sanitizeName = %q", got)
	}
	if got := sanitizeLabelName("my-label.1"); got != "my_label_1" {
		t.Errorf("sanitizeLabelName = %q", got)
	}
	if got := sanitizeLabelName("9lives"); got != "_lives" {
		t.Errorf("sanitizeLabelName leading digit = %q", got)
	}
}
