package obs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/hierarchy"
	"midas/internal/obs"
	"midas/internal/slice"
)

func smallCorpus() *fact.Corpus {
	corpus := fact.NewCorpus(nil)
	for _, f := range []fact.Fact{
		{Subject: "saturn-v", Predicate: "category", Object: "rocket_family", Confidence: 0.9, URL: "http://space.example.org/us/saturn.htm"},
		{Subject: "saturn-v", Predicate: "sponsor", Object: "NASA", Confidence: 0.9, URL: "http://space.example.org/us/saturn.htm"},
		{Subject: "atlas", Predicate: "category", Object: "rocket_family", Confidence: 0.9, URL: "http://space.example.org/us/atlas.htm"},
		{Subject: "atlas", Predicate: "sponsor", Object: "NASA", Confidence: 0.9, URL: "http://space.example.org/us/atlas.htm"},
		{Subject: "ariane", Predicate: "category", Object: "rocket_family", Confidence: 0.9, URL: "http://space.example.org/eu/ariane.htm"},
		{Subject: "ariane", Predicate: "sponsor", Object: "ESA", Confidence: 0.9, URL: "http://space.example.org/eu/ariane.htm"},
	} {
		corpus.Add(f)
	}
	return corpus
}

// TestServeDuringRun scrapes /metrics and /debug/vars from the registry
// mux while a framework.Run is blocked mid-detection, proving the export
// surface works against a live, mid-flight registry (the production
// scrape scenario: a collector polls midas-bench -listen mid-run).
func TestServeDuringRun(t *testing.T) {
	reg := obs.New()
	srv := httptest.NewServer(obs.NewServeMux(reg))
	defer srv.Close()

	inDetect := make(chan struct{})
	release := make(chan struct{})
	var once bool
	opts := framework.Options{
		Workers: 1,
		Obs:     reg,
		Detect: func(table *fact.Table, seeds []hierarchy.Seed) []*slice.Slice {
			if !once {
				once = true
				close(inDetect)
				<-release
			}
			return nil
		},
	}

	done := make(chan *framework.Output, 1)
	go func() { done <- framework.Run(smallCorpus(), nil, opts) }()
	<-inDetect // the run is now in-flight, holding a detect phase open

	body := get(t, srv.URL+"/metrics", obs.OpenMetricsContentType)
	if !strings.Contains(body, "midas_") || !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("/metrics mid-run is not an OpenMetrics exposition:\n%s", body)
	}

	varsBody := get(t, srv.URL+"/debug/vars", "application/json; charset=utf-8")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, varsBody)
	}
	if _, ok := vars["midas"]; !ok {
		t.Error("/debug/vars missing the midas registry snapshot key")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(vars["midas"], &snap); err != nil {
		t.Fatalf("midas key is not a registry snapshot: %v", err)
	}

	close(release)
	if out := <-done; out == nil {
		t.Fatal("framework.Run returned nil")
	}

	// After the run quiesces, the scrape must carry the labeled
	// per-depth framework series.
	body = get(t, srv.URL+"/metrics", obs.OpenMetricsContentType)
	if !strings.Contains(body, `midas_framework_depth_seconds_count{depth="`) {
		t.Errorf("post-run /metrics missing labeled depth timer series:\n%s", body)
	}
	if !strings.Contains(body, "midas_framework_run_seconds_count 1") {
		t.Errorf("post-run /metrics missing framework/run summary:\n%s", body)
	}
}

func TestServeIndexAndPprof(t *testing.T) {
	srv := httptest.NewServer(obs.NewServeMux(obs.New()))
	defer srv.Close()
	if body := get(t, srv.URL+"/", ""); !strings.Contains(body, "/metrics") {
		t.Errorf("index should list endpoints, got:\n%s", body)
	}
	if body := get(t, srv.URL+"/debug/pprof/cmdline", ""); body == "" {
		t.Error("pprof cmdline endpoint empty")
	}
}

func TestListenAndServe(t *testing.T) {
	reg := obs.New()
	reg.Counter("probe").Inc()
	addr, err := obs.ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	body := get(t, "http://"+addr.String()+"/metrics", obs.OpenMetricsContentType)
	if !strings.Contains(body, "midas_probe_total 1") {
		t.Errorf("scrape missing probe counter:\n%s", body)
	}
}

// TestTraceSpansPerPhase runs the pipeline with a tracer and checks the
// acceptance bar: at least one span per pipeline phase in the export.
func TestTraceSpansPerPhase(t *testing.T) {
	tr := obs.NewTracer()
	framework.Run(smallCorpus(), nil, framework.Options{Workers: 2, Obs: obs.New(), Trace: tr})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	seen := map[string]int{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name]++
	}
	for _, phase := range []string{"framework/run", "table/build", "detect", "consolidate", "hierarchy/build", "core/traverse"} {
		if seen[phase] == 0 {
			t.Errorf("no %q span in trace; got %v", phase, seen)
		}
	}
	depthSpans := 0
	for name, n := range seen {
		if strings.HasPrefix(name, "framework/depth") {
			depthSpans += n
		}
	}
	if depthSpans == 0 {
		t.Errorf("no per-round depth span in trace; got %v", seen)
	}
}

func get(t *testing.T, url, wantContentType string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if wantContentType != "" {
		if got := resp.Header.Get("Content-Type"); got != wantContentType {
			t.Errorf("GET %s Content-Type = %q, want %q", url, got, wantContentType)
		}
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMountOnExistingMux: a binary with its own API mux mounts the
// telemetry endpoints next to its handlers (the midas-serve wiring);
// the caller keeps ownership of the root path.
func TestMountOnExistingMux(t *testing.T) {
	reg := obs.New()
	reg.Counter("mounted/hits").Inc()
	mux := http.NewServeMux()
	mux.HandleFunc("/api/ping", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	})
	obs.Mount(mux, reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/api/ping"); code != 200 || body != "pong" {
		t.Fatalf("/api/ping = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "midas_mounted_hits_total 1") {
		t.Fatalf("/metrics = %d, missing mounted counter:\n%s", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "\"midas\"") {
		t.Fatalf("/debug/vars = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	// No index was mounted: the root stays the caller's (404 here).
	if code, _ := get("/"); code != 404 {
		t.Fatalf("/ = %d, want 404 from the caller's mux", code)
	}
}

// TestPprofBarePathRedirect: the bare /debug/pprof path (no trailing
// slash) must redirect into the slash-terminated subtree so the index's
// relative profile links resolve under /debug/pprof/ — including behind
// an API mux with no "/" fallback, like midas-serve's.
func TestPprofBarePathRedirect(t *testing.T) {
	apiMux := http.NewServeMux() // no "/" handler, like midas-serve
	obs.Mount(apiMux, obs.New())
	srv := httptest.NewServer(apiMux)
	defer srv.Close()

	noRedirect := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	resp, err := noRedirect.Get(srv.URL + "/debug/pprof")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("GET /debug/pprof = %d, want %d", resp.StatusCode, http.StatusMovedPermanently)
	}
	if loc := resp.Header.Get("Location"); loc != "/debug/pprof/" {
		t.Fatalf("redirect location = %q, want /debug/pprof/", loc)
	}

	// A default client lands on the index, and the index's relative
	// links ("goroutine?debug=1") resolve to working profiles.
	body := get(t, srv.URL+"/debug/pprof", "")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("index after redirect missing profile links:\n%s", body)
	}
	prof := get(t, srv.URL+"/debug/pprof/goroutine?debug=1", "")
	if !strings.Contains(prof, "goroutine profile:") {
		t.Errorf("goroutine profile link broken:\n%.200s", prof)
	}
}
