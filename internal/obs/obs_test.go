package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := New()
	const goroutines, perG = 32, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < perG; i++ {
				c.Inc()
				r.Counter("looked-up").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("shared = %d, want %d", got, goroutines*perG)
	}
	if got := r.Counter("looked-up").Value(); got != 2*goroutines*perG {
		t.Errorf("looked-up = %d, want %d", got, 2*goroutines*perG)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	const goroutines, perG = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := r.Histogram("h")
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 7))
			}
		}(g)
	}
	wg.Wait()
	s := r.Histogram("h").snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketed int64
	for _, b := range s.Buckets {
		bucketed += b.Count
	}
	if bucketed != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", bucketed, s.Count)
	}
	if s.Min != 0 || s.Max != 6 {
		t.Errorf("min/max = %v/%v, want 0/6", s.Min, s.Max)
	}
}

func TestTimerMinMaxMean(t *testing.T) {
	r := New()
	tm := r.Timer("phase")
	for _, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		tm.Observe(d)
	}
	s := tm.snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.MinSeconds != 0.01 || s.MaxSeconds != 0.03 {
		t.Errorf("min/max = %v/%v, want 0.01/0.03", s.MinSeconds, s.MaxSeconds)
	}
	if math.Abs(s.TotalSeconds-0.06) > 1e-9 || math.Abs(s.MeanSeconds-0.02) > 1e-9 {
		t.Errorf("total/mean = %v/%v, want 0.06/0.02", s.TotalSeconds, s.MeanSeconds)
	}
}

// populate fills a registry with one metric of each kind, with values
// chosen to exercise overflow buckets and min/max tracking.
func populate(r *Registry) {
	r.Counter("framework/sources_processed").Add(42)
	r.Gauge("framework/worker_utilization").Set(0.875)
	r.Timer("core/discover").Observe(1500 * time.Millisecond)
	r.Timer("core/discover").Observe(500 * time.Millisecond)
	h := r.Histogram("core/slice_profit")
	h.Observe(-3.5)
	h.Observe(12)
	h.Observe(2e6) // overflow bucket
}

func TestSnapshotDeterminism(t *testing.T) {
	r := New()
	populate(r)
	s1, s2 := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("consecutive snapshots differ:\n%+v\n%+v", s1, s2)
	}
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("consecutive JSON serializations differ:\n%s\n%s", b1.String(), b2.String())
	}
	// Same metric history in a fresh registry must serialize identically.
	r2 := New()
	populate(r2)
	var b3 bytes.Buffer
	if err := r2.WriteJSON(&b3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Errorf("equivalent registries serialize differently:\n%s\n%s", b1.String(), b3.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	populate(r)
	want := r.Snapshot()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("round trip changed the snapshot:\nwant %+v\ngot  %+v", want, got)
	}
	// The overflow bucket's "inf" bound must survive the round trip.
	hs := got.Histograms["core/slice_profit"]
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(float64(last.UpperBound), 1) || last.Count != 1 {
		t.Errorf("overflow bucket = %+v, want le=+Inf count=1", last)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Timer("x").Observe(time.Second)
	r.Timer("x").Start()()
	r.Histogram("x").Observe(1)
	if v := r.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value = %d, want 0", v)
	}
	if s := r.Snapshot(); !reflect.DeepEqual(s, Snapshot{}) {
		t.Errorf("nil snapshot = %+v, want zero", s)
	}
	if r.OrDefault() != Default() {
		t.Error("nil OrDefault() should return Default()")
	}
	reg := New()
	if reg.OrDefault() != reg {
		t.Error("non-nil OrDefault() should return the receiver")
	}
}

func TestReset(t *testing.T) {
	r := New()
	populate(r)
	r.Reset()
	if s := r.Snapshot(); !reflect.DeepEqual(s, Snapshot{}) {
		t.Errorf("snapshot after reset = %+v, want zero", s)
	}
}
