package obs

import (
	"strings"
	"sync"
)

// labelSep joins label values into a series key. 0xFF cannot appear in
// UTF-8 text, so joined keys are unambiguous.
const labelSep = "\xff"

// CounterVec is a family of counters partitioned by a small, fixed set
// of labels (round, depth, lattice level, decision). Each distinct
// label-value combination owns one Counter; With is get-or-create and
// cheap enough for warm paths (one RLock + map probe), matching the
// Registry's lookup cost.
type CounterVec struct {
	name   string
	labels []string
	mu     sync.RWMutex
	series map[string]*Counter
}

// With returns the counter for the given label values, creating it if
// needed. The number of values must match the vector's label names;
// mismatches panic (programmer error, like a malformed metric name).
// Returns nil (whose methods no-op) on a nil vector.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := v.key(values)
	v.mu.RLock()
	c, ok := v.series[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.series[key]; !ok {
		c = &Counter{}
		v.series[key] = c
	}
	return c
}

func (v *CounterVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic("obs: CounterVec " + v.name + ": label value count mismatch")
	}
	return strings.Join(values, labelSep)
}

// TimerVec is a family of phase timers partitioned by labels, e.g. the
// per-hierarchy-depth round timers of the framework.
type TimerVec struct {
	name   string
	labels []string
	mu     sync.RWMutex
	series map[string]*Timer
}

// With returns the timer for the given label values, creating it if
// needed. Same contract as CounterVec.With.
func (v *TimerVec) With(values ...string) *Timer {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic("obs: TimerVec " + v.name + ": label value count mismatch")
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	t, ok := v.series[key]
	v.mu.RUnlock()
	if ok {
		return t
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if t, ok = v.series[key]; !ok {
		t = newTimer()
		v.series[key] = t
	}
	return t
}

// GaugeVec is a family of gauges partitioned by labels, e.g. the
// per-endpoint in-flight request counts of the serving path.
type GaugeVec struct {
	name   string
	labels []string
	mu     sync.RWMutex
	series map[string]*Gauge
}

// With returns the gauge for the given label values, creating it if
// needed. Same contract as CounterVec.With.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic("obs: GaugeVec " + v.name + ": label value count mismatch")
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	g, ok := v.series[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.series[key]; !ok {
		g = &Gauge{}
		v.series[key] = g
	}
	return g
}

// HistogramVec is a family of histograms partitioned by labels, all
// sharing one set of bucket bounds — e.g. the per-endpoint request
// latency distributions of the serving path.
type HistogramVec struct {
	name   string
	labels []string
	bounds []float64
	mu     sync.RWMutex
	series map[string]*Histogram
}

// With returns the histogram for the given label values, creating it if
// needed. Same contract as CounterVec.With.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic("obs: HistogramVec " + v.name + ": label value count mismatch")
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	h, ok := v.series[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.series[key]; !ok {
		h = &Histogram{bounds: v.bounds, buckets: make([]int64, len(v.bounds)+1)}
		v.series[key] = h
	}
	return h
}

// LabeledCounter is one serialized series of a CounterVec.
type LabeledCounter struct {
	Labels map[string]string `json:"labels"`
	Value  int64             `json:"value"`
}

// CounterVecSnapshot is the serialized state of a CounterVec: its label
// names and every series, sorted by label values for determinism.
type CounterVecSnapshot struct {
	LabelNames []string         `json:"label_names"`
	Series     []LabeledCounter `json:"series"`
}

// LabeledTimer is one serialized series of a TimerVec.
type LabeledTimer struct {
	Labels map[string]string `json:"labels"`
	TimerSnapshot
}

// TimerVecSnapshot is the serialized state of a TimerVec.
type TimerVecSnapshot struct {
	LabelNames []string       `json:"label_names"`
	Series     []LabeledTimer `json:"series"`
}

// LabeledGauge is one serialized series of a GaugeVec.
type LabeledGauge struct {
	Labels map[string]string `json:"labels"`
	Value  float64           `json:"value"`
}

// GaugeVecSnapshot is the serialized state of a GaugeVec.
type GaugeVecSnapshot struct {
	LabelNames []string       `json:"label_names"`
	Series     []LabeledGauge `json:"series"`
}

// LabeledHistogram is one serialized series of a HistogramVec.
type LabeledHistogram struct {
	Labels map[string]string `json:"labels"`
	HistogramSnapshot
}

// HistogramVecSnapshot is the serialized state of a HistogramVec.
type HistogramVecSnapshot struct {
	LabelNames []string           `json:"label_names"`
	Series     []LabeledHistogram `json:"series"`
}

func labelMap(names []string, key string) map[string]string {
	values := strings.Split(key, labelSep)
	m := make(map[string]string, len(names))
	for i, n := range names {
		m[n] = values[i]
	}
	return m
}

func (v *CounterVec) snapshot() CounterVecSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	s := CounterVecSnapshot{LabelNames: append([]string(nil), v.labels...)}
	for _, key := range sortedKeys(v.series) {
		s.Series = append(s.Series, LabeledCounter{
			Labels: labelMap(v.labels, key),
			Value:  v.series[key].Value(),
		})
	}
	return s
}

func (v *TimerVec) snapshot() TimerVecSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	s := TimerVecSnapshot{LabelNames: append([]string(nil), v.labels...)}
	for _, key := range sortedKeys(v.series) {
		s.Series = append(s.Series, LabeledTimer{
			Labels:        labelMap(v.labels, key),
			TimerSnapshot: v.series[key].snapshot(),
		})
	}
	return s
}

func (v *GaugeVec) snapshot() GaugeVecSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	s := GaugeVecSnapshot{LabelNames: append([]string(nil), v.labels...)}
	for _, key := range sortedKeys(v.series) {
		s.Series = append(s.Series, LabeledGauge{
			Labels: labelMap(v.labels, key),
			Value:  v.series[key].Value(),
		})
	}
	return s
}

func (v *HistogramVec) snapshot() HistogramVecSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	s := HistogramVecSnapshot{LabelNames: append([]string(nil), v.labels...)}
	for _, key := range sortedKeys(v.series) {
		s.Series = append(s.Series, LabeledHistogram{
			Labels:            labelMap(v.labels, key),
			HistogramSnapshot: v.series[key].snapshot(),
		})
	}
	return s
}
