package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeCollector periodically samples Go runtime health — heap, GC,
// goroutine count — into gauges and counters on a Registry, so a
// long-running midas-serve exposes memory pressure next to its domain
// metrics on /metrics and in -stats snapshots.
//
// Exported series (registry names; /metrics names get the midas_ prefix
// and '_' separators):
//
//	runtime/heap_bytes             gauge   live heap (MemStats.HeapAlloc)
//	runtime/heap_objects           gauge   live objects
//	runtime/sys_bytes              gauge   total from the OS
//	runtime/goroutines             gauge   runtime.NumGoroutine
//	runtime/gc_runs                gauge   completed GC cycles
//	runtime/gc_pause_total_seconds gauge   cumulative stop-the-world pause
//	runtime/next_gc_bytes          gauge   heap goal for the next cycle
type RuntimeCollector struct {
	reg      *Registry
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	stopped bool
}

// NewRuntimeCollector starts a collector sampling into reg every
// interval (minimum 100ms; <=0 defaults to 10s). Returns nil on a nil
// registry; Stop on a nil collector no-ops.
func NewRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	c := &RuntimeCollector{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.Collect()
	go c.run()
	return c
}

func (c *RuntimeCollector) run() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Collect()
		case <-c.stop:
			return
		}
	}
}

// Collect samples the runtime once, immediately. Safe to call
// concurrently with the ticker; no-ops on a nil collector.
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.reg.Gauge("runtime/heap_bytes").Set(float64(ms.HeapAlloc))
	c.reg.Gauge("runtime/heap_objects").Set(float64(ms.HeapObjects))
	c.reg.Gauge("runtime/sys_bytes").Set(float64(ms.Sys))
	c.reg.Gauge("runtime/goroutines").Set(float64(runtime.NumGoroutine()))
	c.reg.Gauge("runtime/gc_runs").Set(float64(ms.NumGC))
	c.reg.Gauge("runtime/gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	c.reg.Gauge("runtime/next_gc_bytes").Set(float64(ms.NextGC))
}

// Stop halts the ticker after one final collection, so a snapshot taken
// right after Stop reflects the process's end state. Idempotent.
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if !c.stopped {
		c.stopped = true
		close(c.stop)
	}
	c.mu.Unlock()
	<-c.done
	c.Collect()
}
