package obs

import (
	"runtime"
	"testing"
	"time"
)

func runtimeGC() { runtime.GC() }

func TestRuntimeCollector(t *testing.T) {
	r := New()
	c := NewRuntimeCollector(r, time.Hour) // first sample is immediate
	s := r.Snapshot()
	for _, name := range []string{
		"runtime/heap_bytes", "runtime/heap_objects", "runtime/sys_bytes",
		"runtime/goroutines", "runtime/gc_pause_total_seconds", "runtime/next_gc_bytes",
	} {
		if _, ok := s.Gauges[name]; !ok {
			t.Errorf("snapshot missing gauge %q", name)
		}
	}
	if s.Gauges["runtime/heap_bytes"] <= 0 || s.Gauges["runtime/goroutines"] <= 0 {
		t.Errorf("heap=%v goroutines=%v, want > 0",
			s.Gauges["runtime/heap_bytes"], s.Gauges["runtime/goroutines"])
	}

	// Stop performs a final collection and is idempotent.
	r.Reset()
	c.Stop()
	c.Stop()
	if got := r.Snapshot().Gauges["runtime/goroutines"]; got <= 0 {
		t.Errorf("post-Stop snapshot missing final collection: goroutines=%v", got)
	}
}

func TestRuntimeCollectorNil(t *testing.T) {
	if c := NewRuntimeCollector(nil, time.Second); c != nil {
		t.Fatal("nil registry should yield a nil collector")
	}
	var c *RuntimeCollector
	c.Collect()
	c.Stop()
}

func TestRuntimeCollectorTicks(t *testing.T) {
	r := New()
	c := NewRuntimeCollector(r, 100*time.Millisecond)
	defer c.Stop()
	base := r.Snapshot().Gauges["runtime/gc_runs"]
	deadline := time.After(5 * time.Second)
	for {
		// Any tick rewrites the gauges; force GC so gc_runs must move.
		runtimeGC()
		select {
		case <-deadline:
			t.Fatal("ticker never re-collected (gc_runs gauge never advanced)")
		case <-time.After(120 * time.Millisecond):
		}
		if r.Snapshot().Gauges["runtime/gc_runs"] > base {
			return
		}
	}
}
