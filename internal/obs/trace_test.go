package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// decodeTrace parses WriteChromeTrace output through encoding/json,
// proving the export is well-formed Chrome trace-event JSON.
func decodeTrace(t *testing.T, tr *Tracer) []chromeEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestTracerSpansAndArgs(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), "framework/run")
	_, child := StartSpan(ctx, "detect")
	child.Arg("slices", "3").End()
	root.Arg("rounds", "1").End()

	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	events := decodeTrace(t, tr)
	byName := map[string]chromeEvent{}
	for _, ev := range events {
		if ev.Phase != "X" || ev.Cat != "midas" || ev.PID != 1 {
			t.Errorf("event %+v: want complete midas event on pid 1", ev)
		}
		byName[ev.Name] = ev
	}
	if byName["detect"].Args["slices"] != "3" {
		t.Errorf("detect args = %v", byName["detect"].Args)
	}
	if byName["framework/run"].Args["rounds"] != "1" {
		t.Errorf("run args = %v", byName["framework/run"].Args)
	}
	// The child nests inside the parent, so they share a display lane.
	if byName["detect"].TID != byName["framework/run"].TID {
		t.Errorf("child lane %d != parent lane %d, nested spans should share",
			byName["detect"].TID, byName["framework/run"].TID)
	}
}

func TestTracerConcurrentChildrenSpreadLanes(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), "round")
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, s := StartSpan(ctx, "worker")
			time.Sleep(5 * time.Millisecond) // force overlap
			s.End()
		}()
	}
	close(start)
	wg.Wait()
	root.End()

	events := decodeTrace(t, tr)
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	// Overlapping siblings must not share a lane with each other, and a
	// lane holding a worker may hold the root only by containment.
	lanes := map[int][]chromeEvent{}
	for _, ev := range events {
		for _, prev := range lanes[ev.TID] {
			disjoint := ev.TS >= prev.TS+prev.Dur || prev.TS >= ev.TS+ev.Dur
			contains := (prev.TS <= ev.TS && ev.TS+ev.Dur <= prev.TS+prev.Dur) ||
				(ev.TS <= prev.TS && prev.TS+prev.Dur <= ev.TS+ev.Dur)
			if !disjoint && !contains {
				t.Errorf("lane %d holds partially-overlapping spans %q and %q", ev.TID, prev.Name, ev.Name)
			}
		}
		lanes[ev.TID] = append(lanes[ev.TID], ev)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "x")
	s.Arg("k", "v").End()
	if s != nil {
		t.Error("nil tracer should return nil span")
	}
	if got := SpanFromContext(ctx); got != nil {
		t.Errorf("nil span should not enter the context, got %v", got)
	}
	// Package-level StartSpan without a span in ctx is a no-op.
	_, s2 := StartSpan(context.Background(), "y")
	s2.End()
	if tr.Len() != 0 {
		t.Errorf("nil tracer Len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Errorf("nil tracer should still write an empty trace document, got %s", buf.String())
	}
}

func TestTracerOrDefault(t *testing.T) {
	prev := DefaultTracer()
	defer SetDefaultTracer(prev)

	SetDefaultTracer(nil)
	var nilT *Tracer
	if nilT.OrDefault() != nil {
		t.Error("OrDefault with no default should stay nil")
	}
	d := NewTracer()
	SetDefaultTracer(d)
	if nilT.OrDefault() != d {
		t.Error("OrDefault should fall back to the default tracer")
	}
	if d.OrDefault() != d {
		t.Error("OrDefault on a non-nil tracer should return itself")
	}
}

func TestTracerWriteFile(t *testing.T) {
	tr := NewTracer()
	_, s := tr.StartSpan(context.Background(), "phase")
	s.End()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty trace output")
	}
}

// TestRootSampling: with SetRootSampling(n), only every nth root span
// is recorded, and the children of a sampled-out root are dropped with
// it (the context carries no span, so they never start).
func TestRootSampling(t *testing.T) {
	tr := NewTracer()
	tr.SetRootSampling(3)
	for i := 0; i < 9; i++ {
		ctx, root := tr.StartSpan(context.Background(), "root")
		_, child := StartSpan(ctx, "child")
		child.End()
		root.End()
	}
	// 3 sampled roots, each with its child.
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6 (3 roots + 3 children)", tr.Len())
	}
	// n <= 1 keeps everything; nil tracer is a no-op.
	tr2 := NewTracer()
	tr2.SetRootSampling(1)
	for i := 0; i < 4; i++ {
		_, s := tr2.StartSpan(context.Background(), "root")
		s.End()
	}
	if tr2.Len() != 4 {
		t.Fatalf("Len = %d, want 4 with sampling 1", tr2.Len())
	}
	var nilTr *Tracer
	nilTr.SetRootSampling(5)
}

// TestStartSpanOrRoot: child of the ctx span when one exists, root on
// the default tracer otherwise.
func TestStartSpanOrRoot(t *testing.T) {
	old := DefaultTracer()
	defer SetDefaultTracer(old)

	tr := NewTracer()
	SetDefaultTracer(tr)
	_, s := StartSpanOrRoot(context.Background(), "load")
	s.End()
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 root span on the default tracer", tr.Len())
	}

	ctxTr := NewTracer()
	ctx, root := ctxTr.StartSpan(context.Background(), "parent")
	_, child := StartSpanOrRoot(ctx, "load")
	child.End()
	root.End()
	if ctxTr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 on the ctx tracer", ctxTr.Len())
	}
	if tr.Len() != 1 {
		t.Fatalf("default tracer Len = %d, want 1 (untouched by child path)", tr.Len())
	}
}

// TestTraceIDs: every descendant of one root shares the root's ID as
// its trace ID, and separate roots get separate traces.
func TestTraceIDs(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), "request")
	cctx, child := tr.StartSpan(ctx, "framework/run")
	_, grand := tr.StartSpan(cctx, "detect")
	if root.TraceID() != root.ID() {
		t.Errorf("root trace = %d, want its own id %d", root.TraceID(), root.ID())
	}
	if child.TraceID() != root.ID() || grand.TraceID() != root.ID() {
		t.Errorf("descendants trace = %d/%d, want %d", child.TraceID(), grand.TraceID(), root.ID())
	}
	_, other := tr.StartSpan(context.Background(), "request")
	if other.TraceID() == root.TraceID() {
		t.Error("independent roots share a trace ID")
	}
	var nilSpan *Span
	if nilSpan.ID() != 0 || nilSpan.TraceID() != 0 {
		t.Error("nil span should have zero IDs")
	}
}

func TestTakeTrace(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), "request")
	_, child := tr.StartSpan(ctx, "framework/run")
	child.Arg("depth", "02").End()
	root.End()
	_, bystander := tr.StartSpan(context.Background(), "other")
	bystander.End()

	recs := tr.TakeTrace(root.TraceID())
	if len(recs) != 2 {
		t.Fatalf("TakeTrace returned %d spans, want 2", len(recs))
	}
	// Completion order: child ended first.
	if recs[0].Name != "framework/run" || recs[0].Parent != root.ID() || recs[0].Args["depth"] != "02" {
		t.Errorf("recs[0] = %+v", recs[0])
	}
	if recs[1].Name != "request" || recs[1].Parent != 0 || recs[1].Trace != root.ID() {
		t.Errorf("recs[1] = %+v", recs[1])
	}
	// Taken spans are removed; the bystander trace remains.
	if tr.Len() != 1 {
		t.Errorf("Len after take = %d, want 1", tr.Len())
	}
	if again := tr.TakeTrace(root.TraceID()); again != nil {
		t.Errorf("second take returned %d spans, want nil", len(again))
	}
	if tr.TakeTrace(0) != nil {
		t.Error("TakeTrace(0) should return nil")
	}
	var nilTr *Tracer
	if nilTr.TakeTrace(1) != nil {
		t.Error("nil tracer TakeTrace should return nil")
	}
}

// TestSpanRetention: with a cap set, the oldest completed spans age out.
func TestSpanRetention(t *testing.T) {
	tr := NewTracer()
	tr.SetRetention(3)
	for i := 0; i < 10; i++ {
		_, s := tr.StartSpan(context.Background(), "request")
		s.End()
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want retention cap 3", tr.Len())
	}
	// The survivors are the newest spans (highest IDs).
	evs := decodeTrace(t, tr)
	if len(evs) != 3 {
		t.Fatalf("export has %d events, want 3", len(evs))
	}
	var nilTr *Tracer
	nilTr.SetRetention(5) // no-op
}
