package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpenMetricsContentType is the Content-Type of the /metrics exposition,
// understood by Prometheus and every OpenMetrics-compatible scraper.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// metricPrefix namespaces every exported metric family, per Prometheus
// naming conventions.
const metricPrefix = "midas_"

// WriteOpenMetrics writes the registry's current state in the
// OpenMetrics text exposition format, ending with "# EOF".
//
// Mapping from the registry's metric kinds:
//
//   - counters (and counter-vector series) become counter families with
//     the _total sample suffix;
//   - gauges become gauge families;
//   - timers (and timer-vector series) become summary families in
//     seconds (_count and _sum samples) plus _min/_max gauge families;
//   - histograms become histogram families with cumulative buckets.
//
// Slashes in registry names map to underscores ("framework/run" →
// midas_framework_run); families are emitted in sorted name order and
// vector series in sorted label-value order, so repeated calls on a
// quiesced registry are byte-identical.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return writeOpenMetrics(w, r.Snapshot())
}

// WriteOpenMetrics writes the snapshot in the OpenMetrics text format;
// see Registry.WriteOpenMetrics.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	return writeOpenMetrics(w, s)
}

func writeOpenMetrics(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	for _, name := range sortedKeys(s.Counters) {
		fam := sanitizeName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", fam)
		fmt.Fprintf(bw, "%s_total %d\n", fam, s.Counters[name])
	}
	for _, name := range sortedKeys(s.CounterVecs) {
		vs := s.CounterVecs[name]
		fam := sanitizeName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", fam)
		for _, series := range vs.Series {
			fmt.Fprintf(bw, "%s_total%s %d\n", fam, renderLabels(vs.LabelNames, series.Labels), series.Value)
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		fam := sanitizeName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", fam)
		fmt.Fprintf(bw, "%s %s\n", fam, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.GaugeVecs) {
		vs := s.GaugeVecs[name]
		fam := sanitizeName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", fam)
		for _, series := range vs.Series {
			fmt.Fprintf(bw, "%s%s %s\n", fam, renderLabels(vs.LabelNames, series.Labels), formatFloat(series.Value))
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		writeTimer(bw, sanitizeName(name)+"_seconds", "", s.Timers[name])
	}
	for _, name := range sortedKeys(s.TimerVecs) {
		vs := s.TimerVecs[name]
		fam := sanitizeName(name) + "_seconds"
		// All series of one family share the TYPE declarations.
		fmt.Fprintf(bw, "# TYPE %s summary\n", fam)
		fmt.Fprintf(bw, "# TYPE %s_min gauge\n# TYPE %s_max gauge\n", fam, fam)
		for _, series := range vs.Series {
			writeTimerSamples(bw, fam, renderLabels(vs.LabelNames, series.Labels), series.TimerSnapshot)
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		fam := sanitizeName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
		cum := int64(0)
		for _, b := range hs.Buckets {
			cum += b.Count
			if math.IsInf(float64(b.UpperBound), 1) {
				continue // merged into the mandatory +Inf bucket below
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", fam, formatFloat(float64(b.UpperBound)), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", fam, hs.Count)
		fmt.Fprintf(bw, "%s_count %d\n", fam, hs.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", fam, formatFloat(hs.Sum))
	}
	for _, name := range sortedKeys(s.HistogramVecs) {
		vs := s.HistogramVecs[name]
		fam := sanitizeName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
		for _, series := range vs.Series {
			labels := renderLabels(vs.LabelNames, series.Labels)
			cum := int64(0)
			for _, b := range series.Buckets {
				cum += b.Count
				if math.IsInf(float64(b.UpperBound), 1) {
					continue
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", fam,
					mergeLE(labels, formatFloat(float64(b.UpperBound))), cum)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", fam, mergeLE(labels, "+Inf"), series.Count)
			fmt.Fprintf(bw, "%s_count%s %d\n", fam, labels, series.Count)
			fmt.Fprintf(bw, "%s_sum%s %s\n", fam, labels, formatFloat(series.Sum))
		}
	}

	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

// mergeLE appends the histogram bucket boundary label to an already
// rendered label set, e.g. {route="/x"} + 0.5 → {route="/x",le="0.5"}.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func writeTimer(w io.Writer, fam, labels string, ts TimerSnapshot) {
	fmt.Fprintf(w, "# TYPE %s summary\n", fam)
	fmt.Fprintf(w, "# TYPE %s_min gauge\n# TYPE %s_max gauge\n", fam, fam)
	writeTimerSamples(w, fam, labels, ts)
}

func writeTimerSamples(w io.Writer, fam, labels string, ts TimerSnapshot) {
	fmt.Fprintf(w, "%s_count%s %d\n", fam, labels, ts.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam, labels, formatFloat(ts.TotalSeconds))
	if ts.Count > 0 {
		fmt.Fprintf(w, "%s_min%s %s\n", fam, labels, formatFloat(ts.MinSeconds))
		fmt.Fprintf(w, "%s_max%s %s\n", fam, labels, formatFloat(ts.MaxSeconds))
	}
}

// renderLabels renders a label set as {k1="v1",k2="v2"}, keeping the
// vector's declared label order and escaping values per the OpenMetrics
// spec (backslash, double quote, and newline).
func renderLabels(names []string, values map[string]string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(n))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[n]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// sanitizeName maps a registry metric name onto the OpenMetrics name
// charset [a-zA-Z0-9_:], prefixed with the midas_ namespace. Registry
// names use '/' as the hierarchy separator; it and any other invalid
// byte become '_'.
func sanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(metricPrefix) + len(name))
	b.WriteString(metricPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps a label name onto [a-zA-Z0-9_] without the
// family namespace prefix (label names are scoped to their family).
func sanitizeLabelName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
