package obs

import (
	"context"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Logger is the pipeline's dependency-free structured logger. Like the
// metric types in this package it is nil-tolerant (every method no-ops
// on a nil receiver, so instrumented code logs unconditionally), safe
// for concurrent use, and falls back to a process-wide default via
// OrDefault — the exact contract of Registry and Tracer.
//
// Each line is one record encoded as logfmt or JSON with a fixed,
// deterministic field order:
//
//	ts, level, msg, [trace, span], context fields, bound fields, call fields
//
// trace and span attach automatically whenever the context carries an
// obs.Span, and request/job/session identifiers travel the same way via
// ContextWithLogFields — so every line written under one request is
// correlatable with its spans and with each other without threading
// IDs through call signatures.
type Logger struct {
	w     io.Writer
	mu    *sync.Mutex
	level Level
	json  bool
	bound []logField
	now   func() time.Time // test seam; nil = time.Now
}

// Level orders log severities. The numeric values match log/slog so a
// future bridge is mechanical.
type Level int8

const (
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
	// LevelOff disables every record; use it for quiet benchmark runs.
	LevelOff Level = 127
)

// String returns the lowercase level name used in encoded records.
func (l Level) String() string {
	switch {
	case l >= LevelOff:
		return "off"
	case l >= LevelError:
		return "error"
	case l >= LevelWarn:
		return "warn"
	case l >= LevelInfo:
		return "info"
	default:
		return "debug"
	}
}

// ParseLevel parses "debug", "info", "warn", "error", or "off".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug|info|warn|error|off)", s)
}

// Format selects the line encoding.
type Format int

const (
	// FormatLogfmt writes key=value pairs, quoting values that need it —
	// the human-first encoding.
	FormatLogfmt Format = iota
	// FormatJSON writes one JSON object per line with fields in record
	// order — the machine-first encoding (`jq`-able access logs).
	FormatJSON
)

// ParseFormat parses "logfmt" or "json".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "logfmt", "":
		return FormatLogfmt, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatLogfmt, fmt.Errorf("unknown log format %q (want logfmt|json)", s)
}

type logField struct {
	key   string
	value any
}

// NewLogger returns a logger writing records at or above level to w in
// the given format. Writes are serialized by an internal mutex, so one
// logger may be shared by any number of goroutines.
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	return &Logger{w: w, mu: &sync.Mutex{}, level: level, json: format == FormatJSON}
}

// NewLoggerFromFlags builds a logger from the string forms the binaries
// accept as -log-level / -log-format.
func NewLoggerFromFlags(w io.Writer, level, format string) (*Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	f, err := ParseFormat(format)
	if err != nil {
		return nil, err
	}
	return NewLogger(w, lv, f), nil
}

// InstallDefaultLogger parses the -log-level/-log-format flag values
// every binary accepts and installs the resulting logger process-wide,
// so instrumented packages (which log via OrDefault) light up.
func InstallDefaultLogger(w io.Writer, level, format string) error {
	l, err := NewLoggerFromFlags(w, level, format)
	if err != nil {
		return err
	}
	SetDefaultLogger(l)
	return nil
}

// defaultLogger is the process-wide logger, nil (logging disabled)
// until a binary installs one — the same lifecycle as the default
// tracer.
var defaultLogger atomic.Pointer[Logger]

// DefaultLogger returns the process-wide logger, or nil when logging is
// disabled (the default).
func DefaultLogger() *Logger { return defaultLogger.Load() }

// SetDefaultLogger installs l as the process-wide logger (nil disables).
func SetDefaultLogger(l *Logger) { defaultLogger.Store(l) }

// OrDefault returns l, or the process-wide default logger when l is nil
// (which may itself be nil, i.e. logging disabled).
func (l *Logger) OrDefault() *Logger {
	if l == nil {
		return DefaultLogger()
	}
	return l
}

// Enabled reports whether records at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// With returns a logger that attaches the given key/value pairs (after
// the context fields, before per-call fields) to every record. The
// receiver is unchanged; nil stays nil.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	c := *l
	c.bound = append(append([]logField(nil), l.bound...), pairFields(kv)...)
	return &c
}

// pairFields folds a kv list into fields; a trailing odd value is
// recorded under the "!BADKEY" key instead of being dropped, so a
// malformed call site is visible in the output rather than silent.
func pairFields(kv []any) []logField {
	fields := make([]logField, 0, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("!BADKEY(%v)", kv[i])
		}
		fields = append(fields, logField{key: key, value: kv[i+1]})
	}
	if len(kv)%2 == 1 {
		fields = append(fields, logField{key: "!BADKEY", value: kv[len(kv)-1]})
	}
	return fields
}

type logFieldsKey struct{}

// ContextWithLogFields returns a context carrying the key/value pairs;
// every record written under it attaches them automatically, after any
// fields already carried. This is how request, job, and session IDs
// reach each log line of the serving path.
func ContextWithLogFields(ctx context.Context, kv ...any) context.Context {
	if len(kv) == 0 {
		return ctx
	}
	prev, _ := ctx.Value(logFieldsKey{}).([]logField)
	merged := append(append([]logField(nil), prev...), pairFields(kv)...)
	return context.WithValue(ctx, logFieldsKey{}, merged)
}

// Debug writes a debug record. ctx may be nil.
func (l *Logger) Debug(ctx context.Context, msg string, kv ...any) {
	l.Log(ctx, LevelDebug, msg, kv...)
}

// Info writes an info record. ctx may be nil.
func (l *Logger) Info(ctx context.Context, msg string, kv ...any) {
	l.Log(ctx, LevelInfo, msg, kv...)
}

// Warn writes a warning record. ctx may be nil.
func (l *Logger) Warn(ctx context.Context, msg string, kv ...any) {
	l.Log(ctx, LevelWarn, msg, kv...)
}

// Error writes an error record. ctx may be nil.
func (l *Logger) Error(ctx context.Context, msg string, kv ...any) {
	l.Log(ctx, LevelError, msg, kv...)
}

// Log writes one record at lv. No-op on a nil logger or below the
// logger's level.
func (l *Logger) Log(ctx context.Context, lv Level, msg string, kv ...any) {
	if !l.Enabled(lv) {
		return
	}
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	buf := make([]byte, 0, 256)
	if l.json {
		buf = append(buf, '{')
	}
	buf = l.appendField(buf, "ts", now().UTC().Format(time.RFC3339Nano), true)
	buf = l.appendField(buf, "level", lv.String(), false)
	buf = l.appendField(buf, "msg", msg, false)
	if ctx != nil {
		if s := SpanFromContext(ctx); s != nil {
			buf = l.appendField(buf, "trace", formatSpanID(s.TraceID()), false)
			buf = l.appendField(buf, "span", formatSpanID(s.ID()), false)
		}
		if ctxFields, _ := ctx.Value(logFieldsKey{}).([]logField); len(ctxFields) > 0 {
			for _, f := range ctxFields {
				buf = l.appendField(buf, f.key, f.value, false)
			}
		}
	}
	for _, f := range l.bound {
		buf = l.appendField(buf, f.key, f.value, false)
	}
	for _, f := range pairFields(kv) {
		buf = l.appendField(buf, f.key, f.value, false)
	}
	if l.json {
		buf = append(buf, '}')
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

// formatSpanID renders a span/trace ID the way the serving path logs
// and reports them: fixed-width hex, grep-friendly.
func formatSpanID(id int64) string {
	return fmt.Sprintf("%08x", uint64(id))
}

// FormatTraceID renders a trace (or span) ID exactly as log records
// carry it, so API responses and log lines cross-reference verbatim.
func FormatTraceID(id int64) string { return formatSpanID(id) }

func (l *Logger) appendField(buf []byte, key string, value any, first bool) []byte {
	if !first {
		if l.json {
			buf = append(buf, ',')
		} else {
			buf = append(buf, ' ')
		}
	}
	if l.json {
		buf = appendJSONString(buf, key)
		buf = append(buf, ':')
		return appendJSONValue(buf, value)
	}
	buf = append(buf, key...)
	buf = append(buf, '=')
	return appendLogfmtValue(buf, value)
}

// appendJSONValue encodes value for the JSON encoder: numbers and bools
// natively, everything else as a string.
func appendJSONValue(buf []byte, value any) []byte {
	switch v := value.(type) {
	case bool:
		return strconv.AppendBool(buf, v)
	case int:
		return strconv.AppendInt(buf, int64(v), 10)
	case int32:
		return strconv.AppendInt(buf, int64(v), 10)
	case int64:
		return strconv.AppendInt(buf, v, 10)
	case uint64:
		return strconv.AppendUint(buf, v, 10)
	case float32:
		return appendJSONFloat(buf, float64(v))
	case float64:
		return appendJSONFloat(buf, v)
	default:
		return appendJSONString(buf, stringify(value))
	}
}

// appendJSONFloat keeps the record valid JSON for the values
// encoding/json rejects (NaN, ±Inf) by quoting them.
func appendJSONFloat(buf []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return appendJSONString(buf, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func appendLogfmtValue(buf []byte, value any) []byte {
	switch v := value.(type) {
	case bool:
		return strconv.AppendBool(buf, v)
	case int:
		return strconv.AppendInt(buf, int64(v), 10)
	case int32:
		return strconv.AppendInt(buf, int64(v), 10)
	case int64:
		return strconv.AppendInt(buf, v, 10)
	case uint64:
		return strconv.AppendUint(buf, v, 10)
	case float32:
		return strconv.AppendFloat(buf, float64(v), 'g', -1, 64)
	case float64:
		return strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	s := stringify(value)
	if logfmtNeedsQuotes(s) {
		return strconv.AppendQuote(buf, s)
	}
	return append(buf, s...)
}

// stringify renders the non-numeric value kinds: strings as-is, errors
// and Stringers via their own rendering, durations via String, and
// anything else through fmt.
func stringify(value any) string {
	switch v := value.(type) {
	case string:
		return v
	case error:
		return v.Error()
	case time.Duration:
		return v.String()
	case time.Time:
		return v.UTC().Format(time.RFC3339Nano)
	case fmt.Stringer:
		return v.String()
	case nil:
		return "<nil>"
	default:
		return fmt.Sprintf("%v", v)
	}
}

func logfmtNeedsQuotes(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '=' || c == '"' || c >= utf8.RuneSelf {
			return true
		}
	}
	return false
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters JSON requires (quote, backslash, control bytes).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for _, r := range s {
		switch r {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			if r < 0x20 {
				buf = append(buf, fmt.Sprintf(`\u%04x`, r)...)
			} else {
				buf = utf8.AppendRune(buf, r)
			}
		}
	}
	return append(buf, '"')
}
