package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"midas/internal/baselines"
	"midas/internal/core"
	"midas/internal/fact"
	"midas/internal/hierarchy"
	"midas/internal/kb"
	"midas/internal/slice"
)

// randomSourceTable builds a random single-source table with property
// overlap and partial KB coverage.
func randomSourceTable(rng *rand.Rand) (*fact.Table, *kb.KB) {
	sp := kb.NewSpace()
	existing := kb.New(sp)
	var triples []kb.Triple
	nEnt := 5 + rng.Intn(30)
	nPred := 2 + rng.Intn(5)
	for e := 0; e < nEnt; e++ {
		for p := 0; p < nPred; p++ {
			if rng.Float64() < 0.25 {
				continue
			}
			tr := sp.Intern(
				fmt.Sprintf("e%d", e),
				fmt.Sprintf("p%d", p),
				fmt.Sprintf("v%d", rng.Intn(3)))
			triples = append(triples, tr)
			if rng.Float64() < 0.4 {
				existing.Add(tr)
			}
		}
	}
	return fact.Build("src.example.com/data", sp, triples, existing), existing
}

// TestTraversalInvariants (DESIGN.md §6): every reported slice is a
// valid canonical node, reported slices are pairwise non-redundant
// (no slice's entity set contains another's within the lattice
// ancestry), their stats match direct recomputation, and the total
// profit is positive whenever anything is reported.
func TestTraversalInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		table, _ := randomSourceTable(rng)
		cost := slice.ExampleCostModel()
		res := core.DiscoverTable(table, core.Options{Cost: cost})

		rows := make(map[int32]int, len(table.Entities))
		for i := range table.Entities {
			rows[table.Entities[i].Subject] = i
		}
		for si, s := range res.Slices {
			node := res.Nodes[si]
			if !node.Valid || !node.Canonical {
				return false
			}
			// Stats match recomputation from the table.
			facts, fresh := 0, 0
			for _, subj := range s.Entities.Values() {
				e := &table.Entities[rows[subj]]
				facts += e.Facts()
				fresh += e.NewCount
				// Every entity carries every property.
				for _, p := range s.Props {
					if !e.HasProp(p) {
						return false
					}
				}
			}
			if facts != s.Facts || fresh != s.NewFacts {
				return false
			}
			// No reported slice is a lattice descendant of another
			// (descendants get covered when an ancestor is selected).
			for sj, other := range res.Slices {
				if si == sj {
					continue
				}
				if len(other.Props) < len(s.Props) && propsSubset(other.Props, s.Props) &&
					entitySubset(s.Entities.Values(), other.Entities.Values()) {
					return false
				}
			}
		}
		if len(res.Slices) > 0 && res.TotalProfit <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMIDASDominatesBaselinesOnSetProfit: the slice discovery problem
// is APX-complete, so no polynomial method dominates on every instance;
// the paper's claim is aggregate. Over many random sources, MIDASalg's
// set profit must (a) never lose to GREEDY (whose single slice MIDAS's
// lattice always contains as a candidate set), (b) beat AGGCLUSTER's
// best prefix on aggregate and lose only rarely and narrowly.
func TestMIDASDominatesBaselinesOnSetProfit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cost := slice.ExampleCostModel()
	trials, aggWins := 0, 0
	var midasSum, aggSum float64
	for trial := 0; trial < 80; trial++ {
		table, existing := randomSourceTable(rng)
		res := core.DiscoverTable(table, core.Options{Cost: cost})
		setProfit := func(slices []*slice.Slice) float64 {
			if len(slices) == 0 {
				return 0
			}
			sets := make([][]kb.Triple, len(slices))
			for i, s := range slices {
				sets[i] = s.FactSet(table)
			}
			facts, fresh := slice.UnionStats(sets, existing)
			return cost.SetProfit(len(slices), facts, fresh, []int{table.TotalFacts})
		}
		midasProfit := setProfit(res.Slices)

		if g := baselines.Greedy(table, cost); g != nil {
			// Rare narrow greedy wins are possible (APX-hardness); a win
			// wider than one training cost would indicate a bug.
			if gp := setProfit([]*slice.Slice{g}); midasProfit < gp-cost.Fp-1e-9 {
				t.Fatalf("trial %d: greedy %f beats midas %f by more than one f_p", trial, gp, midasProfit)
			}
		}
		// Compare against AGGCLUSTER's actual reported set. (An oracle
		// that picks its best prefix can beat MIDAS's greedy traversal
		// by one f_p on dense tables with multiple minimal tilings —
		// the expected greedy set-cover gap on an APX-hard problem.)
		aggProfit := setProfit(baselines.AggCluster(table, cost))
		trials++
		midasSum += midasProfit
		aggSum += aggProfit
		if aggProfit > midasProfit+1e-9 {
			aggWins++
			if aggProfit > midasProfit*1.25+1 {
				t.Errorf("trial %d: aggcluster %f beats midas %f by a wide margin", trial, aggProfit, midasProfit)
			}
		}
	}
	if midasSum < aggSum {
		t.Errorf("aggregate: midas %f below aggcluster %f", midasSum, aggSum)
	}
	if aggWins*4 > trials {
		t.Errorf("aggcluster won %d of %d trials; want < 25%%", aggWins, trials)
	}
}

// TestDiscoverSeededMergesSeeds: seeds supplied by the framework appear
// in the lattice and can win the traversal.
func TestDiscoverSeededMergesSeeds(t *testing.T) {
	sp := kb.NewSpace()
	var triples []kb.Triple
	for e := 0; e < 12; e++ {
		triples = append(triples,
			sp.Intern(fmt.Sprintf("e%d", e), "kind", "widget"),
			sp.Intern(fmt.Sprintf("e%d", e), "serial", fmt.Sprintf("sn%d", e)))
	}
	table := fact.Build("src", sp, triples, nil)
	seed := hierarchy.Seed{
		Props:    []fact.Property{fact.Prop(sp.Predicates.Lookup("kind"), sp.Objects.Lookup("widget"))},
		Entities: []int32{0, 1, 2, 3},
	}
	res := core.DiscoverSeeded(table, []hierarchy.Seed{seed}, core.Options{Cost: slice.ExampleCostModel()})
	if len(res.Slices) == 0 {
		t.Fatal("no slices")
	}
	// The kind=widget slice must cover all 12 entities (the seed's 4
	// plus the initial slices' contribution).
	found := false
	for _, s := range res.Slices {
		if len(s.Props) == 1 && s.Props[0] == seed.Props[0] {
			found = true
			if s.Entities.Len() != 12 {
				t.Errorf("seeded slice covers %d entities, want 12", s.Entities.Len())
			}
		}
	}
	if !found {
		t.Error("seeded property slice not reported")
	}
}

func propsSubset(a, b []fact.Property) bool {
	i := 0
	for _, p := range a {
		for i < len(b) && b[i] < p {
			i++
		}
		if i == len(b) || b[i] != p {
			return false
		}
	}
	return true
}

func entitySubset(sup, sub []int32) bool {
	set := make(map[int32]bool, len(sup))
	for _, e := range sup {
		set[e] = true
	}
	for _, e := range sub {
		if !set[e] {
			return false
		}
	}
	return true
}
