// Package core implements MIDASalg, the paper's single-source slice
// discovery algorithm (Section III-A).
//
// MIDASalg works in two steps. Step 1 (package hierarchy) constructs the
// slice lattice bottom-up with canonicity and profit-lower-bound pruning.
// Step 2 (this package, Algorithm 1) traverses the trimmed hierarchy
// top-down — coarsest slices first, since they cover more facts — adding
// every valid, uncovered slice that improves the total profit of the
// result set and marking its descendants covered.
package core

import (
	"context"
	"sort"
	"strconv"
	"time"

	"midas/internal/dict"
	"midas/internal/fact"
	"midas/internal/hierarchy"
	"midas/internal/idset"
	"midas/internal/kb"
	"midas/internal/obs"
	"midas/internal/slice"
)

// Options configures MIDASalg.
type Options struct {
	// Cost is the profit model; the zero value means the paper's
	// defaults (f_p=10, f_c=0.001, f_d=0.01, f_v=0.1).
	Cost slice.CostModel
	// MaxPropsPerEntity and MaxInitCombos bound initial-slice
	// generation; zero means the hierarchy package defaults.
	MaxPropsPerEntity int
	MaxInitCombos     int
	// Workers bounds within-source lattice parallelism (see
	// hierarchy.Options); 0 means the hierarchy package default. Any
	// value produces bit-identical results.
	Workers int
	// WorkerPool optionally shares a worker-token budget with other
	// concurrent discoveries; the framework passes its source-level pool
	// here so both levels of parallelism draw on one budget.
	WorkerPool *hierarchy.Pool
	// Ablation switches (see DESIGN.md §4).
	DisableCanonicalPrune bool
	DisableProfitPrune    bool
	// ProfitOrderTraversal visits each level's nodes in decreasing
	// profit order instead of the paper's deterministic property-key
	// order. On the evaluation corpora the two are indistinguishable;
	// on dense adversarial tables key order tiles overlapping slices
	// slightly better (see the ablation-traversal bench), so the
	// paper's order is the default.
	ProfitOrderTraversal bool
	// Obs receives per-source discovery metrics (phase timings, slice
	// profits); nil falls back to the process-wide obs.Default().
	Obs *obs.Registry
}

func (o Options) cost() slice.CostModel {
	if o.Cost == (slice.CostModel{}) {
		return slice.DefaultCostModel()
	}
	return o.Cost
}

// Result is the output of MIDASalg on one web source.
type Result struct {
	// Slices are the reported slices, in traversal order (coarsest
	// first). Their total profit is ≥ the profit of any individual
	// slice, and every slice improved the running total when added.
	Slices []*slice.Slice
	// Nodes are the hierarchy nodes backing Slices, index-aligned.
	Nodes []*hierarchy.Node
	// TotalProfit is f over the reported set.
	TotalProfit float64
	// Stats reports hierarchy-construction effort.
	Stats hierarchy.Stats
	// Hierarchy is the trimmed lattice (retained for diagnostics and for
	// the framework's consolidation step).
	Hierarchy *hierarchy.Hierarchy
}

// Discover runs MIDASalg over the extracted triples of a single web
// source, classifying newness against existing (nil = empty KB).
func Discover(source string, space *kb.Space, triples []kb.Triple, existing *kb.KB, opts Options) *Result {
	table := fact.Build(source, space, triples, existing)
	return DiscoverTable(table, opts)
}

// DiscoverTable runs MIDASalg over a prepared fact table.
func DiscoverTable(table *fact.Table, opts Options) *Result {
	return DiscoverSeeded(table, nil, opts)
}

// DiscoverSeeded runs MIDASalg with extra initial slices, used by the
// multi-source framework to start a parent source's hierarchy from the
// slices already detected in its children.
func DiscoverSeeded(table *fact.Table, seeds []hierarchy.Seed, opts Options) *Result {
	return DiscoverSeededContext(context.Background(), table, seeds, opts)
}

// DiscoverSeededContext is DiscoverSeeded with span tracing: when ctx
// carries a span (the framework's per-source shard span), hierarchy
// construction and the top-down traversal each record a child span.
func DiscoverSeededContext(ctx context.Context, table *fact.Table, seeds []hierarchy.Seed, opts Options) *Result {
	reg := opts.Obs.OrDefault()
	start := time.Now()
	_, buildSpan := obs.StartSpan(ctx, "hierarchy/build")
	b := &hierarchy.Builder{
		Table:                 table,
		Cost:                  opts.cost(),
		MaxPropsPerEntity:     opts.MaxPropsPerEntity,
		MaxInitCombos:         opts.MaxInitCombos,
		DisableCanonicalPrune: opts.DisableCanonicalPrune,
		DisableProfitPrune:    opts.DisableProfitPrune,
		Options:               hierarchy.Options{Workers: opts.Workers, Pool: opts.WorkerPool},
		Obs:                   opts.Obs,
	}
	h := b.Build(seeds)
	buildSpan.Arg("nodes", strconv.Itoa(h.Stats.NodesCreated)).
		Arg("pruned_canonicity", strconv.Itoa(h.Stats.NodesRemoved)).
		Arg("pruned_profit_bound", strconv.Itoa(h.Stats.NodesInvalid)).
		End()
	reg.Timer("core/build_hierarchy").Observe(time.Since(start))
	res := &Result{Stats: h.Stats, Hierarchy: h}
	_, traverseSpan := obs.StartSpan(ctx, "core/traverse")
	defer func() { traverseSpan.Arg("slices", strconv.Itoa(len(res.Slices))).End() }()
	defer func(traverseStart time.Time) {
		reg.Timer("core/traverse").Observe(time.Since(traverseStart))
		reg.Timer("core/discover").Observe(time.Since(start))
		reg.Counter("core/sources_discovered").Inc()
		reg.Counter("core/slices_selected").Add(int64(len(res.Slices)))
		reg.Histogram("core/slices_per_source").Observe(float64(len(res.Slices)))
		for _, sl := range res.Slices {
			reg.Histogram("core/slice_profit").Observe(sl.Profit)
			reg.Histogram("core/slice_entities").Observe(float64(sl.Entities.Len()))
		}
	}(time.Now())
	if h.MaxLevel == 0 {
		return res
	}

	entFacts, entNew := b.EntityStats()
	cost := opts.cost()
	// Entity indexes are dense table rows, so coverage is a flat bitmap
	// rather than a hash set.
	covered := make([]bool, len(table.Entities))
	first := true

	// Algorithm 1: top-down, level by level; within a level, the
	// paper's deterministic order (by property key) unless the
	// profit-order variant is requested.
	for l := 1; l <= h.MaxLevel; l++ {
		level := h.Levels[l]
		if opts.ProfitOrderTraversal {
			level = make([]*hierarchy.Node, len(h.Levels[l]))
			copy(level, h.Levels[l])
			sort.SliceStable(level, func(i, j int) bool { return level[i].Profit > level[j].Profit })
		}
		for _, n := range level {
			if n.Valid && !n.Covered {
				dFacts, dNew := 0, 0
				for _, e := range n.Entities.Values() {
					if !covered[e] {
						dFacts += int(entFacts[e])
						dNew += int(entNew[e])
					}
				}
				delta := float64(dNew)*(1-cost.Fv) - cost.Fp - cost.Fd*float64(dFacts)
				if first {
					delta -= cost.Fc * float64(table.TotalFacts)
				}
				if delta > 0 {
					first = false
					res.TotalProfit += delta
					for _, e := range n.Entities.Values() {
						covered[e] = true
					}
					res.Nodes = append(res.Nodes, n)
					res.Slices = append(res.Slices, nodeToSlice(table, n))
					n.Covered = true
				}
			}
			if n.Covered {
				for _, c := range n.Children {
					c.Covered = true
				}
			}
		}
	}
	return res
}

func nodeToSlice(table *fact.Table, n *hierarchy.Node) *slice.Slice {
	// Table rows are sorted by subject ID, so mapping ascending row
	// indexes to subjects yields an already-sorted set.
	rows := n.Entities.Values()
	ents := make([]dict.ID, len(rows))
	for i, e := range rows {
		ents[i] = table.Entities[e].Subject
	}
	props := make([]fact.Property, len(n.Props))
	copy(props, n.Props)
	return &slice.Slice{
		Source:   table.Source,
		Props:    props,
		Entities: idset.FromSorted(ents),
		Facts:    n.Facts,
		NewFacts: n.NewFacts,
		Profit:   n.Profit,
	}
}
