package core_test

import (
	"midas/internal/fact"
	"midas/internal/kb"
)

// The running example of the paper: the 13 facts of Figure 2, extracted
// from five pages of space.skyrocket.de, with Freebase (the existing KB)
// already containing t1–t5, t9, t10. Facts t6–t8 and t11–t13 are new.

type exampleFact struct {
	s, p, o string
	url     string
	inKB    bool
}

var exampleFacts = []exampleFact{
	{"Project Mercury", "category", "space_program", "http://space.skyrocket.de/doc_sat/mercury-history.htm", true}, // t1
	{"Project Mercury", "started", "1959", "http://space.skyrocket.de/doc_sat/mercury-history.htm", true},           // t2
	{"Project Mercury", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/mercury-history.htm", true},           // t3
	{"Project Gemini", "category", "space_program", "http://space.skyrocket.de/doc_sat/gemini-history.htm", true},   // t4
	{"Project Gemini", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/gemini-history.htm", true},             // t5
	{"Atlas", "category", "rocket_family", "http://space.skyrocket.de/doc_lau_fam/atlas.htm", false},                // t6
	{"Atlas", "sponsor", "NASA", "http://space.skyrocket.de/doc_lau_fam/atlas.htm", false},                          // t7
	{"Atlas", "started", "1957", "http://space.skyrocket.de/doc_lau_fam/atlas.htm", false},                          // t8
	{"Apollo program", "category", "space_program", "http://space.skyrocket.de/doc_sat/apollo-history.htm", true},   // t9
	{"Apollo program", "sponsor", "NASA", "http://space.skyrocket.de/doc_sat/apollo-history.htm", true},             // t10
	{"Castor-4", "category", "rocket_family", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm", false},          // t11
	{"Castor-4", "started", "1971", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm", false},                    // t12
	{"Castor-4", "sponsor", "NASA", "http://space.skyrocket.de/doc_lau_fam/castor-4.htm", false},                    // t13
}

// exampleSetup interns the running example into a corpus and the
// corresponding Freebase-like KB.
func exampleSetup() (*fact.Corpus, *kb.KB) {
	corpus := fact.NewCorpus(nil)
	existing := kb.New(corpus.Space)
	for _, f := range exampleFacts {
		corpus.Add(fact.Fact{Subject: f.s, Predicate: f.p, Object: f.o, Confidence: 0.9, URL: f.url})
		if f.inKB {
			existing.AddStrings(f.s, f.p, f.o)
		}
	}
	return corpus, existing
}
