package core_test

import (
	"math"
	"testing"

	"midas/internal/core"
	"midas/internal/fact"
	"midas/internal/kb"
	"midas/internal/slice"
)

// approx reports whether two floats agree to three decimals (the
// precision the paper's Figure 5 reports).
func approx(a, b float64) bool { return math.Abs(a-b) < 5e-4 }

func exampleOpts() core.Options {
	return core.Options{Cost: slice.ExampleCostModel()}
}

// allTriples flattens the corpus into one source (the web domain
// granularity used by the single-source walkthrough of Section III-A).
func allTriples(c *fact.Corpus) []kb.Triple {
	out := make([]kb.Triple, len(c.Facts))
	for i, e := range c.Facts {
		out[i] = e.Triple
	}
	return out
}

// TestRunningExampleSingleSource replays Examples 13 and 14: on the
// whole-domain fact table, MIDASalg must report exactly slice S5
// ("rocket families sponsored by NASA") with the profit shown in
// Figure 5c.
func TestRunningExampleSingleSource(t *testing.T) {
	corpus, existing := exampleSetup()
	res := core.Discover("space.skyrocket.de", corpus.Space, allTriples(corpus), existing, exampleOpts())

	if len(res.Slices) != 1 {
		for _, s := range res.Slices {
			t.Logf("got slice %s profit=%.3f", s.Description(corpus.Space), s.Profit)
		}
		t.Fatalf("want exactly 1 slice, got %d", len(res.Slices))
	}
	s := res.Slices[0]
	if got, want := s.Description(corpus.Space), "category = rocket_family AND sponsor = NASA"; got != want {
		t.Errorf("slice description = %q, want %q", got, want)
	}
	if s.Facts != 6 || s.NewFacts != 6 {
		t.Errorf("slice facts/new = %d/%d, want 6/6", s.Facts, s.NewFacts)
	}
	// Figure 5c: f(S5) = 6·0.9 − 1 − 0.06 − 0.013 = 4.327.
	if !approx(s.Profit, 4.327) {
		t.Errorf("profit = %.4f, want 4.327", s.Profit)
	}
	if s.Entities.Len() != 2 {
		t.Errorf("entities = %d, want 2 (Atlas, Castor-4)", s.Entities.Len())
	}
}

// TestRunningExampleHierarchyNumbers checks the per-slice profits of
// Figure 5 (S2, S3 at 1.657; S4 negative; S6 pruned as low-profit
// because its subtree bound 4.327 beats its own 4.257).
func TestRunningExampleHierarchyNumbers(t *testing.T) {
	corpus, existing := exampleSetup()
	table := fact.Build("space.skyrocket.de", corpus.Space, allTriples(corpus), existing)
	res := core.DiscoverTable(table, exampleOpts())
	h := res.Hierarchy

	find := func(desc string) profitInfo {
		for l := 1; l <= h.MaxLevel; l++ {
			for _, n := range h.Levels[l] {
				sl := slice.Slice{Props: n.Props}
				if sl.Description(corpus.Space) == desc {
					return profitInfo{found: true, profit: n.Profit, valid: n.Valid, flb: n.FLB}
				}
			}
		}
		return profitInfo{}
	}

	s2 := find("category = rocket_family AND started = 1957 AND sponsor = NASA")
	if !s2.found || !approx(s2.profit, 1.657) {
		t.Errorf("S2 = %+v, want profit 1.657", s2)
	}
	s3 := find("category = rocket_family AND started = 1971 AND sponsor = NASA")
	if !s3.found || !approx(s3.profit, 1.657) {
		t.Errorf("S3 = %+v, want profit 1.657", s3)
	}
	s4 := find("category = space_program AND sponsor = NASA")
	if !s4.found || !approx(s4.profit, -1.083) || s4.valid {
		t.Errorf("S4 = %+v, want profit -1.083 and invalid", s4)
	}
	s5 := find("category = rocket_family AND sponsor = NASA")
	if !s5.found || !approx(s5.profit, 4.327) || !s5.valid {
		t.Errorf("S5 = %+v, want profit 4.327 and valid", s5)
	}
	s6 := find("sponsor = NASA")
	if !s6.found || !approx(s6.profit, 4.257) || s6.valid || !approx(s6.flb, 4.327) {
		t.Errorf("S6 = %+v, want profit 4.257, FLB 4.327, invalid", s6)
	}
}

type profitInfo struct {
	found  bool
	profit float64
	valid  bool
	flb    float64
}

// TestCanonicalPruning checks Figure 5b: the eight candidate two-property
// slices collapse to the two canonical ones (S4, S5).
func TestCanonicalPruning(t *testing.T) {
	corpus, existing := exampleSetup()
	table := fact.Build("space.skyrocket.de", corpus.Space, allTriples(corpus), existing)
	res := core.DiscoverTable(table, exampleOpts())

	if got := len(res.Hierarchy.Levels[2]); got != 2 {
		t.Errorf("level-2 canonical slices = %d, want 2 (S4, S5)", got)
	}
	if got := len(res.Hierarchy.Levels[3]); got != 3 {
		t.Errorf("level-3 canonical slices = %d, want 3 (S1, S2, S3)", got)
	}
	if got := len(res.Hierarchy.Levels[1]); got != 1 {
		t.Errorf("level-1 canonical slices = %d, want 1 (S6)", got)
	}
	if res.Stats.NodesRemoved == 0 {
		t.Error("expected non-canonical nodes to be removed")
	}
}

// TestEmptyKBDiscovery: with an empty KB everything is new; the
// whole-source-dominating slice should still be canonical and selected
// slices must cover all six rocket-family facts plus the space programs.
func TestEmptyKBDiscovery(t *testing.T) {
	corpus, _ := exampleSetup()
	res := core.Discover("space.skyrocket.de", corpus.Space, allTriples(corpus), nil, exampleOpts())
	if len(res.Slices) == 0 {
		t.Fatal("want at least one slice on an empty KB")
	}
	totalNew := 0
	for _, s := range res.Slices {
		totalNew += s.NewFacts
	}
	if totalNew < 13 {
		t.Errorf("selected slices cover %d new facts, want all 13", totalNew)
	}
	if res.TotalProfit <= 0 {
		t.Errorf("total profit = %f, want > 0", res.TotalProfit)
	}
}

// TestNoSlicesWhenNothingNew: a source whose facts all exist in the KB
// must produce no slices.
func TestNoSlicesWhenNothingNew(t *testing.T) {
	corpus, _ := exampleSetup()
	full := kb.New(corpus.Space)
	for _, e := range corpus.Facts {
		full.Add(e.Triple)
	}
	res := core.Discover("space.skyrocket.de", corpus.Space, allTriples(corpus), full, exampleOpts())
	if len(res.Slices) != 0 {
		t.Errorf("want no slices, got %d", len(res.Slices))
	}
}

// TestDiscoverEmptyTable handles the degenerate empty input.
func TestDiscoverEmptyTable(t *testing.T) {
	corpus, _ := exampleSetup()
	res := core.Discover("empty.example.com", corpus.Space, nil, nil, exampleOpts())
	if len(res.Slices) != 0 || res.TotalProfit != 0 {
		t.Errorf("want empty result, got %d slices profit %f", len(res.Slices), res.TotalProfit)
	}
}

// TestTotalProfitMatchesSetFormula: the traversal's incremental total
// must equal the closed-form set profit of the reported slices.
func TestTotalProfitMatchesSetFormula(t *testing.T) {
	corpus, existing := exampleSetup()
	table := fact.Build("space.skyrocket.de", corpus.Space, allTriples(corpus), existing)
	res := core.DiscoverTable(table, exampleOpts())

	sets := make([][]kb.Triple, len(res.Slices))
	for i, s := range res.Slices {
		sets[i] = s.FactSet(table)
	}
	unionFacts, unionNew := slice.UnionStats(sets, existing)
	want := slice.ExampleCostModel().SetProfit(len(res.Slices), unionFacts, unionNew, []int{table.TotalFacts})
	if !approx(res.TotalProfit, want) {
		t.Errorf("TotalProfit = %f, want %f", res.TotalProfit, want)
	}
}

// TestAblationSwitchesStillCoverFacts: disabling either pruning must not
// change which facts the reported slices cover (only efficiency and
// possibly redundancy), and node counts must not shrink.
func TestAblationSwitchesStillCoverFacts(t *testing.T) {
	corpus, existing := exampleSetup()
	base := core.Discover("space.skyrocket.de", corpus.Space, allTriples(corpus), existing, exampleOpts())

	for _, opts := range []core.Options{
		{Cost: slice.ExampleCostModel(), DisableCanonicalPrune: true},
		{Cost: slice.ExampleCostModel(), DisableProfitPrune: true},
		{Cost: slice.ExampleCostModel(), DisableCanonicalPrune: true, DisableProfitPrune: true},
	} {
		res := core.Discover("space.skyrocket.de", corpus.Space, allTriples(corpus), existing, opts)
		if res.Stats.NodesRemoved > base.Stats.NodesRemoved {
			t.Errorf("ablation removed more nodes than baseline")
		}
		newCovered := func(r *core.Result) int {
			seen := make(map[int32]struct{})
			n := 0
			for _, node := range r.Nodes {
				for _, e := range node.Entities.Values() {
					if _, dup := seen[e]; !dup {
						seen[e] = struct{}{}
					}
				}
			}
			for _, s := range r.Slices {
				n += s.NewFacts
			}
			return n
		}
		if got, want := newCovered(res), newCovered(base); got < want {
			t.Errorf("ablation covers %d new facts, baseline covers %d", got, want)
		}
	}
}
