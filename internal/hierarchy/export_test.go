package hierarchy

import "midas/internal/idset"

// NewNodeForTest returns a bare node with the given interned-set ID, for
// link-structure tests that bypass a full build.
func NewNodeForTest(id int32) *Node { return &Node{set: idset.SetID(id), Valid: true} }

// LinkForTest links c under p through the builder's internal helper,
// keeping the child-ID mirror consistent.
func LinkForTest(p, c *Node) {
	if !p.HasChild(c) {
		addChild(p, c)
		c.Parents = append(c.Parents, p)
	}
}
