// Package hierarchy implements step 1 of MIDASalg: bottom-up
// construction and pruning of the slice hierarchy (Section III-A-1).
//
// Nodes are candidate slices keyed by their property set; the lattice
// edges connect a slice to the slices obtained by removing one property
// (its parents — coarser, more general) or adding properties (its
// children — finer). Construction starts from the initial slices implied
// by the entities of a fact table and proceeds level by level toward the
// root, Apriori-style, applying two prunings:
//
//   - canonicity (Proposition 12): a slice is canonical iff it is an
//     initial slice or has at least two canonical children; non-canonical
//     slices select the same entities as one of their children and are
//     removed, re-linking their children to their parents;
//   - profit lower bounds: for each slice S a set S_LB(S) of descendants
//     with total profit f_LB(S) ≥ 0 is maintained; S is marked invalid
//     (low-profit) when f({S}) is negative or below the profit achievable
//     by its subtree.
//
// Within one source the sweep is parallel: each level's parent
// generation, entity-set finalization, and profit scoring shard across
// the worker budget of Options (see parallel.go), with output
// guaranteed bit-identical to the sequential build. The traversal of
// the trimmed hierarchy (step 2) lives in package core.
package hierarchy

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"midas/internal/fact"
	"midas/internal/idset"
	"midas/internal/obs"
	"midas/internal/slice"
)

// Node is a candidate slice in the hierarchy.
type Node struct {
	// Props is the defining property set C, sorted ascending. It is a
	// view into the builder's property-set arena; nodes over the same
	// set share storage. Do not mutate.
	Props []fact.Property
	// Entities holds the local row indexes into the builder's fact table
	// whose rows carry every property in Props.
	Entities idset.Set
	// Facts and NewFacts are |Π*| and |Π* \ E| for this node.
	Facts    int
	NewFacts int
	// Profit is f({S}) including the source's crawl term.
	Profit float64
	// FLB is the profit lower bound achievable by the subtree, ≥ 0.
	FLB float64
	// SLB is the slice set realizing FLB (nil when FLB comes from the
	// empty set or from the node itself — see SLBSelf).
	SLB []*Node
	// SLBSelf records that S_LB(S) = {S}.
	SLBSelf bool

	// Initial marks slices formed directly from an entity's properties.
	Initial bool
	// Canonical marks slices that survive Proposition 12.
	Canonical bool
	// Valid is false for slices pruned as low-profit. Invalid slices stay
	// in the hierarchy for structure but are never selected.
	Valid bool
	// Covered is used by the top-down traversal (Algorithm 1).
	Covered bool

	Children []*Node
	Parents  []*Node

	removed bool
	// set is the interned ID of Props in the builder's interner; it keys
	// the node within its lattice level.
	set idset.SetID
	// childIDs mirrors Children as a sorted slice of the children's
	// interned property-set IDs. Node ↔ ID is one-to-one within a
	// build, so ID membership is child membership; the builder keeps
	// the mirror in sync through addChild/delChild.
	childIDs []idset.SetID
	// pending accumulates entity indexes before finalization.
	pending []int32
}

// Level returns the number of properties defining the node.
func (n *Node) Level() int { return len(n.Props) }

// HasChild reports whether c is a direct child of n. Property-set IDs
// identify nodes uniquely within a build, so the check is a binary
// search over the sorted child-ID mirror rather than an O(children)
// pointer scan — the canonicity sweep calls this on the huge fan-in
// nodes near the root (see TestHasChildSublinear).
func (n *Node) HasChild(c *Node) bool {
	_, ok := slices.BinarySearch(n.childIDs, c.set)
	return ok
}

// addChild links c under p, keeping the sorted child-ID mirror in sync.
// Callers guard with !p.HasChild(c), so the mirror never holds
// duplicates.
func addChild(p, c *Node) {
	p.Children = append(p.Children, c)
	i, _ := slices.BinarySearch(p.childIDs, c.set)
	p.childIDs = slices.Insert(p.childIDs, i, c.set)
}

// delChild unlinks c from p's children and the ID mirror.
func delChild(p, c *Node) {
	p.Children = deleteNode(p.Children, c)
	if i, ok := slices.BinarySearch(p.childIDs, c.set); ok {
		p.childIDs = slices.Delete(p.childIDs, i, i+1)
	}
}

// Hierarchy is the trimmed slice lattice of one web source.
type Hierarchy struct {
	// Levels[l] lists the surviving (canonical) nodes with l properties,
	// for l in [1, MaxLevel]. Levels[0] is unused.
	Levels   [][]*Node
	MaxLevel int
	Stats    Stats
}

// Stats reports construction effort, used by the ablation benches.
type Stats struct {
	NodesCreated   int // total lattice nodes materialized
	NodesRemoved   int // pruned as non-canonical
	NodesInvalid   int // marked low-profit
	InitialSlices  int
	EntitiesCapped int // entities whose property set was trimmed
	CombosCapped   int // entities whose value combinations were capped
}

// Nodes returns all surviving nodes, top level (fewest properties) first.
func (h *Hierarchy) Nodes() []*Node {
	var out []*Node
	for l := 1; l <= h.MaxLevel; l++ {
		out = append(out, h.Levels[l]...)
	}
	return out
}

// Builder constructs hierarchies over one fact table.
type Builder struct {
	Table *fact.Table
	Cost  slice.CostModel

	// MaxPropsPerEntity trims an entity's property set before forming its
	// initial slices, keeping the properties most frequent in the table
	// (frequent properties are the ones shared across entities and hence
	// able to form multi-entity slices; rare ones only produce
	// singletons). 0 means DefaultMaxPropsPerEntity.
	MaxPropsPerEntity int
	// MaxInitCombos caps the number of initial slices produced for one
	// entity with multi-valued predicates (the cross product of one
	// property per predicate). 0 means DefaultMaxInitCombos.
	MaxInitCombos int

	// DisableCanonicalPrune and DisableProfitPrune switch off the two
	// pruning strategies, for ablation studies.
	DisableCanonicalPrune bool
	DisableProfitPrune    bool

	// Options bounds Build's within-source parallelism (see parallel.go).
	// The zero value parallelizes up to GOMAXPROCS with a private
	// budget; output is identical for every setting.
	Options Options

	// Obs receives construction metrics (nodes generated and pruned per
	// lattice level, mirroring the paper's Proposition 12 effectiveness
	// tables); nil falls back to the process-wide obs.Default().
	Obs *obs.Registry

	entFacts []int32 // per-entity fact counts
	entNew   []int32 // per-entity new-fact counts
	propFreq map[fact.Property]int32
	// props interns node property sets; it is distinct from the table's
	// interner because lattice nodes carry subsets no row has.
	props *idset.Interner[fact.Property]
	// union scratch buffers for worker 0, reused across finalize and
	// setProfit calls; extra workers carry their own pair.
	unionA, unionB []int32
}

// Default caps. Entities in real extractions have a handful of
// predicates; the caps only engage on adversarial inputs and keep the
// lattice polynomial.
const (
	DefaultMaxPropsPerEntity = 12
	DefaultMaxInitCombos     = 64
)

// Build constructs and prunes the hierarchy for the builder's table.
// extra seeds additional initial slices (used by the multi-source
// framework to start from the slices detected in child sources); each
// seed is a property set with the entity rows that carry it. Seeds that
// duplicate an existing node merge into it.
func (b *Builder) Build(extra []Seed) *Hierarchy {
	if b.MaxPropsPerEntity == 0 {
		b.MaxPropsPerEntity = DefaultMaxPropsPerEntity
	}
	if b.MaxInitCombos == 0 {
		b.MaxInitCombos = DefaultMaxInitCombos
	}
	b.prepare()

	reg := b.Obs.OrDefault()
	h := &Hierarchy{}
	// levels[l] maps an interned property-set ID to its node.
	levels := make([]map[idset.SetID]*Node, 1, 8)
	// Per-level effort tallies, reported to Obs when the build finishes.
	var createdByLevel, removedByLevel, invalidByLevel []int64
	bump := func(tally *[]int64, l int, by int64) {
		for len(*tally) <= l {
			*tally = append(*tally, 0)
		}
		(*tally)[l] += by
	}

	getLevel := func(l int) map[idset.SetID]*Node {
		for len(levels) <= l {
			levels = append(levels, make(map[idset.SetID]*Node))
		}
		return levels[l]
	}
	nodeByID := func(id idset.SetID) *Node {
		// The node keeps the interned arena view of its property set,
		// not any caller's (possibly scratch) slice.
		props := b.props.Get(id)
		m := getLevel(len(props))
		n, ok := m[id]
		if !ok {
			h.Stats.NodesCreated++
			bump(&createdByLevel, len(props), 1)
			n = &Node{Props: props, set: id, Valid: true}
			m[id] = n
		}
		return n
	}
	getNode := func(props []fact.Property) *Node {
		return nodeByID(b.props.Intern(props))
	}
	defer func() { b.record(&h.Stats, createdByLevel, removedByLevel, invalidByLevel) }()

	b.seedInitial(getNode, &h.Stats)
	for _, s := range extra {
		if len(s.Props) == 0 {
			continue
		}
		n := getNode(s.Props)
		n.Initial = true
		n.pending = append(n.pending, s.Entities...)
	}

	maxLevel := len(levels) - 1
	for maxLevel > 0 && len(levels[maxLevel]) == 0 {
		maxLevel--
	}
	if maxLevel == 0 {
		h.Levels = make([][]*Node, 1)
		return h
	}

	levelTimer := reg.TimerVec("hierarchy/level/build", "level")
	workersGauge := reg.Gauge("hierarchy/level_workers")

	// Finalize the deepest level's entity sets.
	b.finalizeLevel(collectNodes(levels[maxLevel]))

	// Bottom-up sweep: levels from finest (most properties) to coarsest.
	for l := maxLevel; l >= 1; l-- {
		levelStart := time.Now()
		workers := 1
		cur := sortedNodes(levels[l])

		// (1) Construct parents from every node at level l, sharded
		// across the worker budget, then finalize the entity sets the
		// new pendings landed on.
		if l >= 2 {
			workers = max(workers, b.generateParents(cur, nodeByID))
			workers = max(workers, b.finalizeLevel(collectNodes(levels[l-1])))
		}

		// (2) Prune non-canonical slices at level l. Sequential: remove
		// re-links across levels, and its outcome depends on the
		// deterministic sorted order of cur.
		for _, n := range cur {
			n.Canonical = b.isCanonical(n)
			if !n.Canonical && !b.DisableCanonicalPrune {
				b.remove(n)
				h.Stats.NodesRemoved++
				bump(&removedByLevel, l, 1)
				delete(levels[l], n.set)
			}
		}

		// (3) Evaluate profit and the lower bound; mark low-profit
		// slices invalid. Children are deeper and immutable by now, so
		// scoring shards across workers.
		invalid, scoreWorkers := b.scoreLevel(sortedNodes(levels[l]))
		workers = max(workers, scoreWorkers)
		if invalid > 0 {
			h.Stats.NodesInvalid += int(invalid)
			bump(&invalidByLevel, l, invalid)
		}

		levelTimer.With(levelLabel(l)).Observe(time.Since(levelStart))
		workersGauge.Set(float64(workers))
	}

	h.MaxLevel = maxLevel
	h.Levels = make([][]*Node, maxLevel+1)
	for l := 1; l <= maxLevel; l++ {
		h.Levels[l] = sortedNodes(levels[l])
	}
	return h
}

// genOp records one parent link operation discovered by a worker: the
// worker-local interned ID of the parent property set and the child
// node. Replaying ops in recorded order during the merge reproduces the
// sequential build's exact link order (Children and Parents slices
// included), because chunks are contiguous and replayed in index order.
type genOp struct {
	id    idset.SetID
	child *Node
}

// genLocal is one worker's private parent-generation scratch: a private
// interner for the parent property sets it discovers, the link ops in
// discovery order, and the pending entity rows grouped per local set.
type genLocal struct {
	in      *idset.Interner[fact.Property]
	ops     []genOp
	pending [][]int32
}

// generateParents runs step (1) of the sweep for one level: every node
// contributes either the node over its shared-property core or its
// drop-one-property subsets as parents (see emitParents). With one
// worker it links directly into the shared maps; with several, workers
// record into private scratch and a single-threaded merge rebases each
// private interner onto the shared one (idset.Interner.Merge) and
// replays the ops in order. Returns the worker count used.
func (b *Builder) generateParents(cur []*Node, nodeByID func(idset.SetID) *Node) int {
	link := func(p, c *Node) {
		if !p.HasChild(c) {
			addChild(p, c)
			c.Parents = append(c.Parents, p)
		}
	}
	ws := b.acquireWorkers(len(cur), genMinChunk)
	if ws.n == 1 {
		var scratch []fact.Property
		ws.run(len(cur), func(_, lo, hi int) {
			b.emitParents(cur, lo, hi, &scratch, func(props []fact.Property, n *Node) {
				p := getNodeByProps(b, nodeByID, props)
				link(p, n)
				p.pending = append(p.pending, n.Entities.Values()...)
			})
		})
		return 1
	}

	locals := make([]genLocal, ws.n)
	ws.run(len(cur), func(w, lo, hi int) {
		g := &locals[w]
		g.in = idset.NewInterner[fact.Property]()
		var scratch []fact.Property
		b.emitParents(cur, lo, hi, &scratch, func(props []fact.Property, n *Node) {
			id := g.in.Intern(props)
			if int(id) == len(g.pending) {
				g.pending = append(g.pending, nil)
			}
			g.ops = append(g.ops, genOp{id: id, child: n})
			g.pending[id] = append(g.pending[id], n.Entities.Values()...)
		})
	})

	// Deterministic merge, single-threaded: worker order × op order is
	// the sequential order.
	for w := range locals {
		g := &locals[w]
		if g.in == nil || g.in.Len() == 0 {
			continue
		}
		remap := b.props.Merge(g.in)
		nodes := make([]*Node, g.in.Len())
		for _, op := range g.ops {
			p := nodes[op.id]
			if p == nil {
				p = nodeByID(remap[op.id])
				nodes[op.id] = p
			}
			link(p, op.child)
		}
		for id, pend := range g.pending {
			if len(pend) > 0 {
				nodes[id].pending = append(nodes[id].pending, pend...)
			}
		}
	}
	return ws.n
}

// getNodeByProps fetches/creates the node for props through the shared
// interner (sequential path of generateParents).
func getNodeByProps(b *Builder, nodeByID func(idset.SetID) *Node, props []fact.Property) *Node {
	return nodeByID(b.props.Intern(props))
}

// emitParents enumerates the parent candidates of cur[lo:hi] in
// deterministic order. scratch backs the drop-one property sets and is
// reused across nodes — interners copy sets on first sight, so it never
// escapes.
//
// A property held by a single entity can never occur in a multi-entity
// canonical slice, so every subset mixing unique and shared properties
// is doomed: it has exactly one child chain and would be built only to
// be removed as non-canonical, with its children re-linked to the
// shared-property ancestors. Nodes carrying unique properties therefore
// link directly to the node over their shared-property core (possibly
// several levels up), which is exactly the structure the construct-
// then-remove sequence converges to — without materializing the 2^k
// mixed subsets of isolated entities.
func (b *Builder) emitParents(cur []*Node, lo, hi int, scratch *[]fact.Property, emit func([]fact.Property, *Node)) {
	for _, n := range cur[lo:hi] {
		core := b.sharedCore(n.Props)
		if len(core) < len(n.Props) {
			if len(core) > 0 {
				emit(core, n)
			}
			continue
		}
		for i := range n.Props {
			s := append((*scratch)[:0], n.Props[:i]...)
			s = append(s, n.Props[i+1:]...)
			*scratch = s
			emit(s, n)
		}
	}
}

// finalizeLevel folds pending entities for every listed node, sharding
// across the worker budget when the level is large. Each node's result
// depends only on its own pending set, so the outcome is independent of
// the sharding. Returns the worker count used.
func (b *Builder) finalizeLevel(nodes []*Node) int {
	ws := b.acquireWorkers(len(nodes), finalizeMinChunk)
	ws.run(len(nodes), func(w, lo, hi int) {
		var scratch []int32
		if w == 0 {
			scratch = b.unionA
		}
		for _, n := range nodes[lo:hi] {
			scratch = b.finalizeInto(n, scratch)
		}
		if w == 0 {
			b.unionA = scratch
		}
	})
	return ws.n
}

// scoreLevel scores every node and applies the low-profit marking,
// sharded across the worker budget; per-node scoring reads only deeper
// (already immutable) nodes. Returns the number of nodes marked
// invalid and the worker count used.
func (b *Builder) scoreLevel(nodes []*Node) (invalid int64, workers int) {
	ws := b.acquireWorkers(len(nodes), scoreMinChunk)
	counts := make([]int64, ws.n)
	ws.run(len(nodes), func(w, lo, hi int) {
		var sc unionScratch
		if w == 0 {
			sc = unionScratch{a: b.unionA, b: b.unionB}
		}
		for _, n := range nodes[lo:hi] {
			b.score(n, &sc)
			if !b.DisableProfitPrune && (n.Profit < 0 || n.Profit < n.FLB) {
				n.Valid = false
				counts[w]++
			}
		}
		if w == 0 {
			b.unionA, b.unionB = sc.a, sc.b
		}
	})
	for _, c := range counts {
		invalid += c
	}
	return invalid, ws.n
}

// record publishes one build's effort tallies to the observability
// registry: aggregate totals plus per-lattice-level breakdowns of nodes
// generated, pruned by canonicity (Proposition 12), and pruned by the
// profit lower bound — the quantities behind the paper's Section V
// pruning-effectiveness tables. The breakdowns are counter vectors
// labeled by lattice level (bounded by MaxPropsPerEntity, so the series
// space stays small), replacing the name-mangled per-level counters of
// the first observability pass.
func (b *Builder) record(st *Stats, created, removed, invalid []int64) {
	reg := b.Obs.OrDefault()
	reg.Counter("hierarchy/builds").Inc()
	reg.Counter("hierarchy/nodes_generated").Add(int64(st.NodesCreated))
	reg.Counter("hierarchy/pruned_canonicity").Add(int64(st.NodesRemoved))
	reg.Counter("hierarchy/pruned_profit_bound").Add(int64(st.NodesInvalid))
	reg.Counter("hierarchy/initial_slices").Add(int64(st.InitialSlices))
	reg.Counter("hierarchy/entities_capped").Add(int64(st.EntitiesCapped))
	reg.Counter("hierarchy/combos_capped").Add(int64(st.CombosCapped))
	perLevel := func(name string, tally []int64) {
		vec := reg.CounterVec(name, "level")
		for l, n := range tally {
			if n > 0 {
				vec.With(levelLabel(l)).Add(n)
			}
		}
	}
	perLevel("hierarchy/level/nodes_generated", created)
	perLevel("hierarchy/level/pruned_canonicity", removed)
	perLevel("hierarchy/level/pruned_profit_bound", invalid)
}

// levelLabel renders a lattice level as a fixed-width label value so
// lexical series order matches numeric level order.
func levelLabel(l int) string { return fmt.Sprintf("%02d", l) }

// Seed is an externally supplied initial slice (from a child web source).
type Seed struct {
	Props    []fact.Property
	Entities []int32 // table row indexes
}

func (b *Builder) prepare() {
	t := b.Table
	b.props = idset.NewInterner[fact.Property]()
	b.entFacts = make([]int32, len(t.Entities))
	b.entNew = make([]int32, len(t.Entities))
	b.propFreq = make(map[fact.Property]int32)
	for i := range t.Entities {
		e := &t.Entities[i]
		b.entFacts[i] = int32(len(e.Props))
		b.entNew[i] = int32(e.NewCount)
		for _, p := range e.Props {
			b.propFreq[p]++
		}
	}
}

// seedInitial creates the initial slices for every entity: one slice per
// combination of properties taking one value per predicate.
func (b *Builder) seedInitial(getNode func([]fact.Property) *Node, st *Stats) {
	for ei := range b.Table.Entities {
		e := &b.Table.Entities[ei]
		props := e.Props
		if len(props) > b.MaxPropsPerEntity {
			props = b.trimProps(props)
			st.EntitiesCapped++
		}
		combos, capped := combosByPredicate(props, b.MaxInitCombos)
		if capped {
			st.CombosCapped++
		}
		for _, c := range combos {
			n := getNode(c)
			n.Initial = true
			n.pending = append(n.pending, int32(ei))
		}
		if len(combos) > 0 {
			st.InitialSlices += len(combos)
		}
	}
}

// trimProps keeps the MaxPropsPerEntity most frequent properties of the
// entity (ties broken by property order for determinism).
func (b *Builder) trimProps(props []fact.Property) []fact.Property {
	idx := make([]int, len(props))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		fx, fy := b.propFreq[props[idx[x]]], b.propFreq[props[idx[y]]]
		if fx != fy {
			return fx > fy
		}
		return props[idx[x]] < props[idx[y]]
	})
	idx = idx[:b.MaxPropsPerEntity]
	sort.Ints(idx)
	out := make([]fact.Property, len(idx))
	for i, j := range idx {
		out[i] = props[j]
	}
	return out
}

// combosByPredicate enumerates property combinations taking exactly one
// value per predicate, up to max combinations. props must be sorted,
// which groups values of the same predicate contiguously.
func combosByPredicate(props []fact.Property, max int) ([][]fact.Property, bool) {
	if len(props) == 0 {
		return nil, false
	}
	// Group by predicate.
	var groups [][]fact.Property
	start := 0
	for i := 1; i <= len(props); i++ {
		if i == len(props) || props[i].Pred() != props[start].Pred() {
			groups = append(groups, props[start:i])
			start = i
		}
	}
	combos := [][]fact.Property{{}}
	capped := false
	for _, g := range groups {
		next := make([][]fact.Property, 0, len(combos)*len(g))
	outer:
		for _, c := range combos {
			for _, p := range g {
				if len(next) >= max {
					capped = true
					break outer
				}
				nc := make([]fact.Property, len(c), len(c)+1)
				copy(nc, c)
				next = append(next, append(nc, p))
			}
		}
		combos = next
	}
	return combos, capped
}

// finalizeInto folds a node's pending entities into its entity set
// (sort, dedup, union with the existing set) and refreshes its fact
// counts. Safe to call repeatedly; callers on different nodes may run
// concurrently as long as each carries its own scratch. The union runs
// through the scratch buffer (returned, possibly grown, for reuse); the
// node's set is always backed by a fresh exact-size slice.
func (b *Builder) finalizeInto(n *Node, scratch []int32) []int32 {
	if len(n.pending) == 0 {
		return scratch
	}
	p := n.pending
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	dedup := p[:0]
	var last int32 = -1
	for _, e := range p {
		if e != last {
			dedup = append(dedup, e)
			last = e
		}
	}
	var merged []int32
	if n.Entities.Empty() {
		merged = dedup
	} else {
		scratch = idset.AppendUnion(scratch[:0], n.Entities.Values(), dedup)
		merged = scratch
	}
	ents := make([]int32, len(merged))
	copy(ents, merged)
	n.Entities = idset.FromSorted(ents)
	n.pending = n.pending[:0]
	n.Facts, n.NewFacts = 0, 0
	for _, e := range ents {
		n.Facts += int(b.entFacts[e])
		n.NewFacts += int(b.entNew[e])
	}
	return scratch
}

// sharedCore returns the subset of props held by at least two entities
// of the table; it returns props itself (not a copy) when every
// property qualifies.
func (b *Builder) sharedCore(props []fact.Property) []fact.Property {
	shared := 0
	for _, p := range props {
		if b.propFreq[p] >= 2 {
			shared++
		}
	}
	if shared == len(props) {
		return props
	}
	core := make([]fact.Property, 0, shared)
	for _, p := range props {
		if b.propFreq[p] >= 2 {
			core = append(core, p)
		}
	}
	return core
}

// isCanonical applies Proposition 12.
func (b *Builder) isCanonical(n *Node) bool {
	if n.Initial {
		return true
	}
	count := 0
	for _, c := range n.Children {
		if c.Canonical {
			count++
			if count >= 2 {
				return true
			}
		}
	}
	return false
}

// remove deletes a non-canonical node, re-linking each of its children to
// each of its parents unless the child is already a descendant of that
// parent through another node (a sibling child whose property set is a
// strict subset of the child's).
func (b *Builder) remove(n *Node) {
	n.removed = true
	for _, p := range n.Parents {
		delChild(p, n)
	}
	for _, c := range n.Children {
		c.Parents = deleteNode(c.Parents, n)
	}
	for _, p := range n.Parents {
		for _, c := range n.Children {
			if p.HasChild(c) || descendantViaOther(p, c) {
				continue
			}
			addChild(p, c)
			c.Parents = append(c.Parents, p)
		}
	}
}

// descendantViaOther reports whether c is a descendant of p through some
// current child x of p: props(p) ⊂ props(x) ⊂ props(c).
func descendantViaOther(p, c *Node) bool {
	for _, x := range p.Children {
		if x != c && len(x.Props) < len(c.Props) && idset.IsSubset(x.Props, c.Props) {
			return true
		}
	}
	return false
}

// unionScratch is one worker's ping-pong buffer pair for entity-set
// unions in setProfit.
type unionScratch struct {
	a, b []int32
}

// score computes Profit, FLB, and SLB for a canonical node.
func (b *Builder) score(n *Node, sc *unionScratch) {
	n.Profit = b.Cost.SliceProfit(n.NewFacts, n.Facts, b.Table.TotalFacts)

	// Collect the lower-bound sets of children with positive bounds.
	var lb []*Node
	seen := make(map[*Node]struct{})
	for _, c := range n.Children {
		if c.FLB <= 0 {
			continue
		}
		set := c.SLB
		if c.SLBSelf {
			set = []*Node{c}
		}
		for _, s := range set {
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				lb = append(lb, s)
			}
		}
	}
	fUnion := 0.0
	if len(lb) > 0 {
		fUnion = b.setProfit(lb, sc)
	}

	n.FLB = 0
	n.SLB, n.SLBSelf = nil, false
	if fUnion > n.FLB {
		n.FLB = fUnion
		n.SLB = lb
	}
	if n.Profit >= n.FLB && n.Profit > 0 {
		n.FLB = n.Profit
		n.SLB, n.SLBSelf = nil, true
	}
}

// setProfit computes f over a set of (possibly entity-overlapping) nodes
// of this source. The entity union is accumulated in the worker's two
// ping-pong scratch buffers instead of a per-call map.
func (b *Builder) setProfit(nodes []*Node, sc *unionScratch) float64 {
	if len(nodes) == 1 {
		return nodes[0].Profit
	}
	acc, spare := sc.a[:0], sc.b[:0]
	for _, n := range nodes {
		spare = idset.AppendUnion(spare[:0], acc, n.Entities.Values())
		acc, spare = spare, acc
	}
	facts, newFacts := 0, 0
	for _, e := range acc {
		facts += int(b.entFacts[e])
		newFacts += int(b.entNew[e])
	}
	sc.a, sc.b = acc, spare
	return b.Cost.SetProfit(len(nodes), facts, newFacts, []int{b.Table.TotalFacts})
}

// EntityStats exposes the per-entity fact counters for the traversal.
func (b *Builder) EntityStats() (facts, newFacts []int32) { return b.entFacts, b.entNew }

func deleteNode(list []*Node, n *Node) []*Node {
	out := list[:0]
	for _, x := range list {
		if x != n {
			out = append(out, x)
		}
	}
	return out
}

// collectNodes lists a level's nodes in map order — used where only the
// node set matters (finalization), not the order.
func collectNodes(m map[idset.SetID]*Node) []*Node {
	out := make([]*Node, 0, len(m))
	for _, n := range m {
		out = append(out, n)
	}
	return out
}

// sortedNodes orders a level's nodes by their property sets. All nodes
// of one level have equally many properties, so elementwise comparison
// of the packed uint64 properties reproduces the ordering of the
// big-endian byte keys the levels were once keyed by — node iteration
// order is unchanged and the build stays deterministic.
func sortedNodes(m map[idset.SetID]*Node) []*Node {
	out := collectNodes(m)
	sort.Slice(out, func(i, j int) bool { return lessProps(out[i].Props, out[j].Props) })
	return out
}

// lessProps compares property sets lexicographically, shorter first.
func lessProps(a, b []fact.Property) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
