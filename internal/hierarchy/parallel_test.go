package hierarchy_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"midas/internal/datagen"
	"midas/internal/fact"
	"midas/internal/hierarchy"
	"midas/internal/kb"
	"midas/internal/source"
)

// buildWith runs one full lattice build over table with the given
// parallelism options. A fresh Builder per call: Build resets and owns
// the builder's state.
func buildWith(table *fact.Table, seeds []hierarchy.Seed, o hierarchy.Options) *hierarchy.Hierarchy {
	b := &hierarchy.Builder{Table: table, Options: o}
	return b.Build(seeds)
}

func propsKey(ps []fact.Property) string { return fmt.Sprint(ps) }

// assertEqualHierarchies compares two builds node by node: property
// sets, entity sets, fact counts, exact profit and lower bound, every
// flag, the ordered child/parent link structure, and the construction
// stats. Exact float equality is intentional — the parallel build must
// execute the same arithmetic in the same order, not merely converge.
func assertEqualHierarchies(t *testing.T, label string, ref, got *hierarchy.Hierarchy) {
	t.Helper()
	if ref.MaxLevel != got.MaxLevel {
		t.Fatalf("%s: MaxLevel = %d, want %d", label, got.MaxLevel, ref.MaxLevel)
	}
	if ref.Stats != got.Stats {
		t.Fatalf("%s: Stats = %+v, want %+v", label, got.Stats, ref.Stats)
	}
	for l := 1; l <= ref.MaxLevel; l++ {
		rl, gl := ref.Levels[l], got.Levels[l]
		if len(rl) != len(gl) {
			t.Fatalf("%s: level %d has %d nodes, want %d", label, l, len(gl), len(rl))
		}
		for i := range rl {
			assertEqualNode(t, fmt.Sprintf("%s: level %d node %d", label, l, i), rl[i], gl[i])
		}
	}
}

func assertEqualNode(t *testing.T, label string, ref, got *hierarchy.Node) {
	t.Helper()
	if propsKey(ref.Props) != propsKey(got.Props) {
		t.Fatalf("%s: Props = %v, want %v", label, got.Props, ref.Props)
	}
	if rv, gv := fmt.Sprint(ref.Entities.Values()), fmt.Sprint(got.Entities.Values()); rv != gv {
		t.Fatalf("%s: Entities = %s, want %s", label, gv, rv)
	}
	if ref.Facts != got.Facts || ref.NewFacts != got.NewFacts {
		t.Fatalf("%s: Facts/NewFacts = %d/%d, want %d/%d", label, got.Facts, got.NewFacts, ref.Facts, ref.NewFacts)
	}
	if ref.Profit != got.Profit || ref.FLB != got.FLB {
		t.Fatalf("%s: Profit/FLB = %v/%v, want %v/%v", label, got.Profit, got.FLB, ref.Profit, ref.FLB)
	}
	if ref.Initial != got.Initial || ref.Canonical != got.Canonical ||
		ref.Valid != got.Valid || ref.Covered != got.Covered || ref.SLBSelf != got.SLBSelf {
		t.Fatalf("%s: flags (init/canon/valid/covered/slbself) = %v/%v/%v/%v/%v, want %v/%v/%v/%v/%v",
			label, got.Initial, got.Canonical, got.Valid, got.Covered, got.SLBSelf,
			ref.Initial, ref.Canonical, ref.Valid, ref.Covered, ref.SLBSelf)
	}
	assertEqualLinks(t, label+" SLB", ref.SLB, got.SLB)
	assertEqualLinks(t, label+" Children", ref.Children, got.Children)
	assertEqualLinks(t, label+" Parents", ref.Parents, got.Parents)
}

// assertEqualLinks compares two node lists elementwise by property set,
// in order: the determinism contract covers link order, not just link
// membership.
func assertEqualLinks(t *testing.T, label string, ref, got []*hierarchy.Node) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d nodes, want %d", label, len(got), len(ref))
	}
	for i := range ref {
		if propsKey(ref[i].Props) != propsKey(got[i].Props) {
			t.Fatalf("%s[%d]: %v, want %v", label, i, got[i].Props, ref[i].Props)
		}
	}
}

// worldTables builds per-domain fact tables from a datagen world,
// largest domains first, keeping the topK biggest (the long tail adds
// runtime without adding lattice shapes). Domain granularity matches
// what the framework's upward merge feeds the detector at the final
// round — the tables where one oversized source serializes a run and
// within-source parallelism pays off.
func worldTables(w *datagen.World, topK int) []*fact.Table {
	bySrc := make(map[string][]kb.Triple)
	for _, e := range w.Corpus.Facts {
		src := source.Normalize(w.Corpus.URLs.String(e.URL))
		if src == "" {
			continue
		}
		src = source.Domain(src)
		bySrc[src] = append(bySrc[src], e.Triple)
	}
	srcs := make([]string, 0, len(bySrc))
	for src := range bySrc {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool {
		if a, b := len(bySrc[srcs[i]]), len(bySrc[srcs[j]]); a != b {
			return a > b
		}
		return srcs[i] < srcs[j]
	})
	if len(srcs) > topK {
		srcs = srcs[:topK]
	}
	tables := make([]*fact.Table, len(srcs))
	for i, src := range srcs {
		tables[i] = fact.Build(src, w.Corpus.Space, bySrc[src], w.KB)
	}
	return tables
}

// TestParallelBuildEquivalence is the differential suite behind the
// determinism contract: for every datagen corpus and a spread of worker
// counts, the parallel build must be bit-identical to the sequential
// one — node by node, including link order and construction stats.
func TestParallelBuildEquivalence(t *testing.T) {
	worlds := []struct {
		name string
		gen  func() *datagen.World
	}{
		{"reverb-slim", func() *datagen.World { return datagen.ReVerbSlim(datagen.DefaultSlimParams(7)) }},
		{"nell-slim", func() *datagen.World { return datagen.NELLSlim(datagen.DefaultSlimParams(11)) }},
		{"knowledgevault-sim", func() *datagen.World { return datagen.KnowledgeVaultSim(13) }},
	}
	workerCounts := []int{2, 8, runtime.GOMAXPROCS(0)}
	for _, wc := range worlds {
		wc := wc
		t.Run(wc.name, func(t *testing.T) {
			t.Parallel()
			w := wc.gen()
			for ti, table := range worldTables(w, 6) {
				ref := buildWith(table, nil, hierarchy.Options{Workers: 1})
				for _, n := range workerCounts {
					got := buildWith(table, nil, hierarchy.Options{Workers: n})
					label := fmt.Sprintf("table %d (%s, %d entities) workers=%d", ti, table.Source, len(table.Entities), n)
					assertEqualHierarchies(t, label, ref, got)
				}
			}
		})
	}
}

// TestParallelBuildEquivalenceDense drives the sharded paths hard: a
// single dense random table large enough that every level clears the
// minimum-chunk gates, plus external seeds (the framework's child-slice
// path).
func TestParallelBuildEquivalenceDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	table := randomTable(rng, 2000, 10, 3, 0.55, 0.3)
	seeds := []hierarchy.Seed{
		{Props: table.Entities[0].Props[:1], Entities: []int32{0, 5, 9}},
		{Props: table.Entities[1].Props[:2], Entities: []int32{1, 2}},
	}
	ref := buildWith(table, seeds, hierarchy.Options{Workers: 1})
	for _, n := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
		got := buildWith(table, seeds, hierarchy.Options{Workers: n})
		assertEqualHierarchies(t, fmt.Sprintf("dense workers=%d", n), ref, got)
	}
}

// TestParallelBuildOversubscribed mirrors the framework's stress test:
// far more workers than GOMAXPROCS must neither race nor change the
// output. Most valuable under -race.
func TestParallelBuildOversubscribed(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	table := randomTable(rng, 2000, 9, 3, 0.6, 0.25)
	workers := 4*runtime.GOMAXPROCS(0) + 3
	ref := buildWith(table, nil, hierarchy.Options{Workers: 1})
	got := buildWith(table, nil, hierarchy.Options{Workers: workers})
	assertEqualHierarchies(t, fmt.Sprintf("oversubscribed workers=%d", workers), ref, got)
}

// TestSharedPoolConcurrentBuilds runs several builds concurrently over
// one shared Pool — the framework's shape, where source-level and
// lattice-level parallelism draw on one token budget. Each build must
// still match its own sequential reference, and the pool must never
// deadlock even though every builder also wants extra tokens.
func TestSharedPoolConcurrentBuilds(t *testing.T) {
	const builds = 6
	pool := hierarchy.NewPool(runtime.GOMAXPROCS(0))
	tables := make([]*fact.Table, builds)
	refs := make([]*hierarchy.Hierarchy, builds)
	for i := range tables {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		tables[i] = randomTable(rng, 800+200*i, 8, 3, 0.5, 0.3)
		refs[i] = buildWith(tables[i], nil, hierarchy.Options{Workers: 1})
	}
	var wg sync.WaitGroup
	results := make([]*hierarchy.Hierarchy, builds)
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Acquire mirrors the framework's shard token; extra lattice
			// workers come from the same pool via TryAcquire.
			pool.Acquire()
			defer pool.Release()
			results[i] = buildWith(tables[i], nil, hierarchy.Options{Workers: 8, Pool: pool})
		}(i)
	}
	wg.Wait()
	for i := range results {
		assertEqualHierarchies(t, fmt.Sprintf("shared-pool build %d", i), refs[i], results[i])
	}
}
