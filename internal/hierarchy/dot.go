package hierarchy

import (
	"fmt"
	"io"

	"midas/internal/kb"
)

// WriteDOT renders the trimmed hierarchy in Graphviz DOT format for
// debugging and documentation: one node per surviving slice, labeled
// with its property set and statistics; invalid (low-profit) nodes are
// drawn dashed and gray; initial slices get a double border. Edges
// follow the lattice's parent→child links.
//
//	dot -Tsvg hierarchy.dot -o hierarchy.svg
func (h *Hierarchy) WriteDOT(w io.Writer, space *kb.Space) error {
	bw := &errWriter{w: w}
	bw.printf("digraph slices {\n")
	bw.printf("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	id := make(map[*Node]int)
	next := 0
	nodeID := func(n *Node) int {
		if i, ok := id[n]; ok {
			return i
		}
		id[n] = next
		next++
		return id[n]
	}

	for l := 1; l <= h.MaxLevel; l++ {
		for _, n := range h.Levels[l] {
			label := ""
			for i, p := range n.Props {
				if i > 0 {
					label += `\n`
				}
				label += escapeDOT(p.Format(space))
			}
			label += fmt.Sprintf(`\n|Π|=%d new=%d f=%.2f`, n.Entities.Len(), n.NewFacts, n.Profit)
			attrs := fmt.Sprintf("label=\"%s\"", label)
			if !n.Valid {
				attrs += ", style=dashed, color=gray"
			}
			if n.Initial {
				attrs += ", peripheries=2"
			}
			bw.printf("  n%d [%s];\n", nodeID(n), attrs)
		}
	}
	for l := 1; l <= h.MaxLevel; l++ {
		for _, n := range h.Levels[l] {
			for _, c := range n.Children {
				bw.printf("  n%d -> n%d;\n", nodeID(n), nodeID(c))
			}
		}
	}
	bw.printf("}\n")
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func escapeDOT(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			out = append(out, '\\', '"')
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, ' ')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
