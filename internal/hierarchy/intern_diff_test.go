package hierarchy_test

import (
	"math/rand"
	"sort"
	"testing"

	"midas/internal/fact"
	"midas/internal/idset"
)

// legacyPropKey replicates the big-endian string key that used to key
// lattice nodes before property sets were interned, kept here as the
// reference the interner is differentially tested against.
func legacyPropKey(props []fact.Property) string {
	buf := make([]byte, 0, len(props)*8)
	for _, p := range props {
		buf = append(buf,
			byte(p>>56), byte(p>>48), byte(p>>40), byte(p>>32),
			byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
	}
	return string(buf)
}

func lessPropsRef(a, b []fact.Property) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// TestInternedIDMatchesPropKey checks the two properties the node-keying
// refactor rests on, against the legacy string keys on randomized
// property sets: interned IDs are equal exactly when the string keys
// are, and the elementwise property order used to sort a level's nodes
// agrees with the byte order of the string keys (so build determinism
// and node iteration order are preserved).
func TestInternedIDMatchesPropKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := idset.NewInterner[fact.Property]()
	type rec struct {
		id    idset.SetID
		key   string
		props []fact.Property
	}
	var seen []rec
	for trial := 0; trial < 400; trial++ {
		set := make(map[fact.Property]struct{})
		for i, n := 0, rng.Intn(6); i < n; i++ {
			set[fact.Prop(int32(rng.Intn(5)), int32(rng.Intn(5)))] = struct{}{}
		}
		props := make([]fact.Property, 0, len(set))
		for p := range set {
			props = append(props, p)
		}
		sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
		r := rec{id: in.Intern(props), key: legacyPropKey(props), props: props}
		for _, o := range seen {
			if (o.id == r.id) != (o.key == r.key) {
				t.Fatalf("ID equality diverges from propKey equality: %v vs %v (ids %d/%d)",
					o.props, r.props, o.id, r.id)
			}
			if (o.key < r.key) != lessPropsRef(o.props, r.props) {
				t.Fatalf("elementwise order diverges from propKey byte order: %v vs %v",
					o.props, r.props)
			}
		}
		seen = append(seen, r)
	}
}
