// Worker-budget machinery for the parallel lattice build.
//
// Build shards three phases of each level's bottom-up sweep — parent
// generation, entity-set finalization, and profit scoring — across a
// bounded set of workers. Determinism is the contract: every sharded
// phase either computes per-node results that are independent of the
// sharding, or records its operations in worker-private scratch
// (including a private idset.Interner for new parent property sets) and
// replays them through a single-threaded merge in exactly the
// sequential order. The differential suite in parallel_test.go proves
// parallel ≡ sequential node by node on every datagen corpus.
package hierarchy

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options bounds Build's within-source parallelism. It mirrors
// framework.Options.Workers semantics: 0 means the package default
// (GOMAXPROCS unless overridden via SetDefaultWorkers), 1 forces the
// sequential path, and any value produces bit-identical output.
type Options struct {
	// Workers caps the number of concurrent workers one Build may use.
	Workers int
	// Pool optionally shares a worker-token budget with other concurrent
	// builds. The framework passes its source-level pool here, so
	// source-level and lattice-level parallelism draw on one budget:
	// while many sources are in flight the lattices build sequentially,
	// and when one oversized source remains its lattice fans out over
	// the idle workers. nil means a private budget of Workers.
	Pool *Pool
}

// defaultWorkers overrides the GOMAXPROCS fallback for Options.Workers
// == 0; set by binaries (midas-bench -hier-workers) to pin lattice
// parallelism process-wide. Atomic because builds run concurrently
// under the framework.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the process-wide default used when
// Options.Workers is 0. n ≤ 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) { defaultWorkers.Store(int32(n)) }

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a shared worker-token budget. The framework sizes one Pool to
// its Options.Workers; each source shard holds one token while it runs
// (Acquire blocks), and the lattice build inside a shard adds extra
// workers only when spare tokens exist (TryAcquire), so a run never
// exceeds its budget no matter how the two levels of parallelism nest.
type Pool struct {
	tokens chan struct{}
}

// NewPool returns a pool of n tokens (at least one).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{tokens: make(chan struct{}, n)}
}

// Acquire blocks until a token is available.
func (p *Pool) Acquire() { p.tokens <- struct{}{} }

// TryAcquire takes a token without blocking, reporting success. A nil
// pool is an unbounded budget: TryAcquire always succeeds.
func (p *Pool) TryAcquire() bool {
	if p == nil {
		return true
	}
	select {
	case p.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a token. No-op on a nil pool.
func (p *Pool) Release() {
	if p == nil {
		return
	}
	<-p.tokens
}

// Per-worker minimum items before a phase shards: below these,
// goroutine and merge bookkeeping outweighs the work, so small sources
// keep the plain sequential path (the output is identical either way).
const (
	genMinChunk      = 96
	finalizeMinChunk = 96
	scoreMinChunk    = 48
)

// workSet is an acquired degree of parallelism for one phase: n
// workers, n−1 of them holding pool tokens until run returns. The
// calling goroutine is always worker 0 (its token, if any, is the one
// its own caller holds), so a build makes progress even when the pool
// is exhausted.
type workSet struct {
	pool *Pool
	n    int
}

// acquireWorkers sizes a phase's worker set: at most Options.Workers,
// at most one worker per minChunk items, and beyond the first worker
// only as many as the shared pool has spare tokens for.
func (b *Builder) acquireWorkers(items, minChunk int) workSet {
	want := b.Options.workers()
	if cap := items / minChunk; want > cap {
		want = cap
	}
	extra := 0
	for extra < want-1 && b.Options.Pool.TryAcquire() {
		extra++
	}
	return workSet{pool: b.Options.Pool, n: extra + 1}
}

// run executes fn over [0, items) split into n contiguous chunks, one
// per worker, and returns when all chunks finish. Chunks are contiguous
// and index-ordered so a worker-order replay of per-chunk records
// reproduces the sequential operation order. Must be called exactly
// once per acquireWorkers: it releases the held tokens.
func (ws workSet) run(items int, fn func(w, lo, hi int)) {
	if ws.n <= 1 {
		fn(0, 0, items)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < ws.n; w++ {
		lo, hi := chunkBounds(items, ws.n, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer ws.pool.Release()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	lo, hi := chunkBounds(items, ws.n, 0)
	fn(0, lo, hi)
	wg.Wait()
}

// chunkBounds splits [0, items) evenly into workers contiguous chunks.
func chunkBounds(items, workers, w int) (lo, hi int) {
	return items * w / workers, items * (w + 1) / workers
}
