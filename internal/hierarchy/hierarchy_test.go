package hierarchy_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"midas/internal/fact"
	"midas/internal/hierarchy"
	"midas/internal/kb"
	"midas/internal/slice"
)

// randomTable builds a small random fact table: nEnt entities over
// nPred predicates with nVal values each, each (entity, predicate)
// present with probability pPresent, plus a KB covering each fact with
// probability pKnown. Single-valued predicates keep the brute force
// simple.
func randomTable(rng *rand.Rand, nEnt, nPred, nVal int, pPresent, pKnown float64) *fact.Table {
	sp := kb.NewSpace()
	existing := kb.New(sp)
	var triples []kb.Triple
	for e := 0; e < nEnt; e++ {
		for p := 0; p < nPred; p++ {
			if rng.Float64() >= pPresent {
				continue
			}
			tr := sp.Intern(
				fmt.Sprintf("e%d", e),
				fmt.Sprintf("p%d", p),
				fmt.Sprintf("v%d", rng.Intn(nVal)))
			triples = append(triples, tr)
			if rng.Float64() < pKnown {
				existing.Add(tr)
			}
		}
	}
	return fact.Build("src", sp, triples, existing)
}

// bruteCanonical enumerates every property subset and returns, per
// non-empty selected entity set, the canonical (maximum-size) property
// set, keyed by the entity set.
func bruteCanonical(table *fact.Table) map[string][]fact.Property {
	props := table.Properties()
	if len(props) > 16 {
		panic("table too wide for brute force")
	}
	best := make(map[string][]fact.Property)
	for mask := 1; mask < 1<<len(props); mask++ {
		var C []fact.Property
		for i, p := range props {
			if mask&(1<<i) != 0 {
				C = append(C, p)
			}
		}
		var ents []int32
		for ei := range table.Entities {
			ok := true
			for _, p := range C {
				if !table.Entities[ei].HasProp(p) {
					ok = false
					break
				}
			}
			if ok {
				ents = append(ents, int32(ei))
			}
		}
		if len(ents) == 0 {
			continue
		}
		key := fmt.Sprint(ents)
		if cur, ok := best[key]; !ok || len(C) > len(cur) {
			best[key] = C
		}
	}
	return best
}

// TestCanonicalMatchesBruteForce property: the canonical nodes the
// builder keeps are exactly the brute-force canonical slices.
func TestCanonicalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		table := randomTable(rng, 2+rng.Intn(6), 2+rng.Intn(3), 2, 0.8, 0.3)
		b := &hierarchy.Builder{Table: table, Cost: slice.ExampleCostModel(), DisableProfitPrune: true}
		h := b.Build(nil)

		want := bruteCanonical(table)
		got := make(map[string][]fact.Property)
		for _, n := range h.Nodes() {
			if !n.Canonical {
				continue
			}
			key := fmt.Sprint(n.Entities)
			if prev, dup := got[key]; dup {
				t.Logf("seed %d: duplicate canonical for %s: %v and %v", seed, key, prev, n.Props)
				return false
			}
			got[key] = n.Props
		}
		if len(got) != len(want) {
			t.Logf("seed %d: canonical count %d, brute force %d", seed, len(got), len(want))
			return false
		}
		for key, C := range want {
			gc, ok := got[key]
			if !ok || len(gc) != len(C) {
				t.Logf("seed %d: mismatch at %s: got %v want %v", seed, key, gc, C)
				return false
			}
			for i := range C {
				if gc[i] != C[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestLatticeStructure property: parents have strictly fewer
// properties, property sets are subsets, and entity sets are supersets.
func TestLatticeStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		table := randomTable(rng, 2+rng.Intn(8), 2+rng.Intn(4), 3, 0.7, 0.2)
		b := &hierarchy.Builder{Table: table, Cost: slice.DefaultCostModel()}
		h := b.Build(nil)
		for _, n := range h.Nodes() {
			for _, c := range n.Children {
				if len(c.Props) <= len(n.Props) {
					return false
				}
				if !isSubset(n.Props, c.Props) {
					return false
				}
				if !entitySuperset(n.Entities.Values(), c.Entities.Values()) {
					return false
				}
			}
			// Node stats match its entity rows.
			facts, fresh := 0, 0
			for _, e := range n.Entities.Values() {
				facts += table.Entities[e].Facts()
				fresh += table.Entities[e].NewCount
			}
			if facts != n.Facts || fresh != n.NewFacts {
				return false
			}
			// Entities really carry every property of the node.
			for _, e := range n.Entities.Values() {
				for _, p := range n.Props {
					if !table.Entities[e].HasProp(p) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestProfitLowerBound property: every valid node's profit matches the
// closed form, FLB is non-negative and at least the node's own positive
// profit.
func TestProfitLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		table := randomTable(rng, 3+rng.Intn(8), 2+rng.Intn(4), 2, 0.8, 0.5)
		cost := slice.ExampleCostModel()
		b := &hierarchy.Builder{Table: table, Cost: cost}
		h := b.Build(nil)
		for _, n := range h.Nodes() {
			want := cost.SliceProfit(n.NewFacts, n.Facts, table.TotalFacts)
			if math.Abs(n.Profit-want) > 1e-9 {
				return false
			}
			if n.FLB < 0 {
				return false
			}
			if n.Profit > 0 && n.FLB < n.Profit-1e-9 {
				return false
			}
			if n.Valid && n.Profit < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSeeds: externally seeded slices join the lattice as initial
// nodes and can become canonical anchors.
func TestSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	table := randomTable(rng, 6, 3, 2, 0.9, 0)
	// Seed with the first entity's first two properties.
	e0 := &table.Entities[0]
	if len(e0.Props) < 2 {
		t.Skip("unlucky table")
	}
	seed := hierarchy.Seed{Props: e0.Props[:2], Entities: []int32{0}}
	b := &hierarchy.Builder{Table: table, Cost: slice.DefaultCostModel(), DisableProfitPrune: true}
	h := b.Build([]hierarchy.Seed{seed})
	found := false
	for _, n := range h.Nodes() {
		if len(n.Props) == 2 && n.Props[0] == seed.Props[0] && n.Props[1] == seed.Props[1] {
			found = n.Initial && n.Canonical
		}
	}
	if !found {
		t.Error("seeded slice not present as an initial canonical node")
	}
}

// TestStatsCounters: construction effort counters move as expected.
func TestStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	table := randomTable(rng, 10, 4, 2, 0.8, 0.3)
	full := (&hierarchy.Builder{Table: table, Cost: slice.DefaultCostModel()}).Build(nil)
	noCanon := (&hierarchy.Builder{Table: table, Cost: slice.DefaultCostModel(), DisableCanonicalPrune: true}).Build(nil)
	if full.Stats.NodesCreated == 0 || full.Stats.InitialSlices == 0 {
		t.Error("counters not populated")
	}
	if noCanon.Stats.NodesRemoved != 0 {
		t.Error("disabled canonical pruning still removed nodes")
	}
	if full.Stats.NodesRemoved == 0 {
		t.Error("canonical pruning removed nothing on a dense table")
	}
}

// TestComboCap: an entity with many multi-valued predicates respects
// MaxInitCombos.
func TestComboCap(t *testing.T) {
	sp := kb.NewSpace()
	var triples []kb.Triple
	// One entity, 4 predicates × 4 values each = 256 potential combos.
	for p := 0; p < 4; p++ {
		for v := 0; v < 4; v++ {
			triples = append(triples, sp.Intern("e", fmt.Sprintf("p%d", p), fmt.Sprintf("v%d-%d", p, v)))
		}
	}
	table := fact.Build("src", sp, triples, nil)
	b := &hierarchy.Builder{Table: table, Cost: slice.DefaultCostModel(), MaxInitCombos: 8}
	h := b.Build(nil)
	if h.Stats.InitialSlices > 8 {
		t.Errorf("initial slices = %d, want ≤ 8", h.Stats.InitialSlices)
	}
	if h.Stats.CombosCapped != 1 {
		t.Errorf("CombosCapped = %d, want 1", h.Stats.CombosCapped)
	}
}

// TestMaxPropsPerEntity: very wide entities get trimmed to the most
// frequent properties.
func TestMaxPropsPerEntity(t *testing.T) {
	sp := kb.NewSpace()
	var triples []kb.Triple
	for e := 0; e < 3; e++ {
		// Shared property on every entity plus 19 unique ones.
		triples = append(triples, sp.Intern(fmt.Sprintf("e%d", e), "shared", "v"))
		for p := 0; p < 19; p++ {
			triples = append(triples, sp.Intern(fmt.Sprintf("e%d", e), fmt.Sprintf("u%d-%d", e, p), "x"))
		}
	}
	table := fact.Build("src", sp, triples, nil)
	b := &hierarchy.Builder{Table: table, Cost: slice.ExampleCostModel(), MaxPropsPerEntity: 5, DisableProfitPrune: true}
	h := b.Build(nil)
	if h.Stats.EntitiesCapped != 3 {
		t.Errorf("EntitiesCapped = %d, want 3", h.Stats.EntitiesCapped)
	}
	// The shared property must survive the trim (it is the most
	// frequent) and form a canonical 3-entity node.
	shared := fact.Prop(sp.Predicates.Lookup("shared"), sp.Objects.Lookup("v"))
	found := false
	for _, n := range h.Nodes() {
		if len(n.Props) == 1 && n.Props[0] == shared && n.Entities.Len() == 3 {
			found = true
		}
	}
	if !found {
		t.Error("shared property node missing after trimming")
	}
}

func isSubset(a, b []fact.Property) bool {
	i := 0
	for _, p := range a {
		for i < len(b) && b[i] < p {
			i++
		}
		if i == len(b) || b[i] != p {
			return false
		}
	}
	return true
}

func entitySuperset(sup, sub []int32) bool {
	set := make(map[int32]bool, len(sup))
	for _, e := range sup {
		set[e] = true
	}
	for _, e := range sub {
		if !set[e] {
			return false
		}
	}
	return true
}

// TestDeterministicBuild: identical inputs produce identical lattices.
func TestDeterministicBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	table := randomTable(rng, 8, 4, 2, 0.8, 0.3)
	build := func() []string {
		b := &hierarchy.Builder{Table: table, Cost: slice.DefaultCostModel()}
		h := b.Build(nil)
		var keys []string
		for _, n := range h.Nodes() {
			keys = append(keys, fmt.Sprint(n.Props, n.Entities, n.Valid, n.Canonical))
		}
		return keys
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("node counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestWriteDOT: the DOT export is well-formed (balanced braces, one
// node line per surviving slice, edges only between existing nodes).
func TestWriteDOT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	table := randomTable(rng, 8, 3, 2, 0.9, 0.3)
	b := &hierarchy.Builder{Table: table, Cost: slice.ExampleCostModel()}
	h := b.Build(nil)

	var buf bytes.Buffer
	if err := h.WriteDOT(&buf, table.Space); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph slices {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("malformed DOT envelope")
	}
	nodes := strings.Count(out, "label=")
	if want := len(h.Nodes()); nodes != want {
		t.Errorf("DOT nodes = %d, want %d", nodes, want)
	}
	edges := strings.Count(out, "->")
	wantEdges := 0
	for _, n := range h.Nodes() {
		wantEdges += len(n.Children)
	}
	if edges != wantEdges {
		t.Errorf("DOT edges = %d, want %d", edges, wantEdges)
	}
}
