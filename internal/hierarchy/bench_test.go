package hierarchy_test

import (
	"fmt"
	"math/rand"
	"testing"

	"midas/internal/datagen"
	"midas/internal/hierarchy"
	"midas/internal/slice"
)

// BenchmarkHierarchyBuild measures a full lattice construction — step 1
// of MIDASalg. The small case is the historical single-threaded
// baseline (union/subset kernels and node keying dominate); the large
// case is the biggest source of the NELL-like datagen corpus — the
// oversized single page that motivates within-source parallelism — run
// across a worker sweep. Output is bit-identical across the sweep (see
// TestParallelBuildEquivalence); only wall time may differ.
func BenchmarkHierarchyBuild(b *testing.B) {
	cost := slice.DefaultCostModel()
	rng := rand.New(rand.NewSource(42))
	small := randomTable(rng, 400, 8, 3, 0.6, 0.3)
	b.Run("small", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bld := &hierarchy.Builder{Table: small, Cost: cost, Options: hierarchy.Options{Workers: 1}}
			bld.Build(nil)
		}
	})

	large := worldTables(datagen.KnowledgeVaultSim(13), 1)[0]
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("large/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bld := &hierarchy.Builder{Table: large, Cost: cost, Options: hierarchy.Options{Workers: w}}
				bld.Build(nil)
			}
		})
	}
}

// TestHasChildSublinear pins the HasChild replacement: the old
// O(children) pointer scan would slow down ~128× going from 64 to 8192
// children; the sorted-ID binary search must stay far below that. The
// 24× ceiling leaves room for cache effects and CI noise while still
// ruling out a linear scan.
func TestHasChildSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	build := func(children int) (*hierarchy.Node, *hierarchy.Node) {
		p := hierarchy.NewNodeForTest(1 << 20)
		for i := 0; i < children; i++ {
			hierarchy.LinkForTest(p, hierarchy.NewNodeForTest(int32(i)))
		}
		// A probe that is not a child forces the full search on every
		// call — the worst case for the linear scan.
		return p, hierarchy.NewNodeForTest(int32(children + 1))
	}
	var sink bool
	probeNs := func(children int) float64 {
		p, probe := build(children)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink = p.HasChild(probe)
			}
		})
		return float64(res.NsPerOp())
	}
	base := probeNs(64)
	wide := probeNs(8192)
	if base <= 0 {
		base = 1
	}
	if ratio := wide / base; ratio > 24 {
		t.Fatalf("HasChild slowed %.1fx from 64 to 8192 children (%.1fns -> %.1fns); want sublinear (<24x)",
			ratio, base, wide)
	}
	_ = sink
}
