package hierarchy_test

import (
	"math/rand"
	"testing"

	"midas/internal/hierarchy"
	"midas/internal/slice"
)

// BenchmarkHierarchyBuild measures a full lattice construction — step 1
// of MIDASalg — over a deterministic synthetic table large enough for
// the sweep's union/subset kernels and node keying to dominate.
func BenchmarkHierarchyBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	table := randomTable(rng, 400, 8, 3, 0.6, 0.3)
	cost := slice.DefaultCostModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := &hierarchy.Builder{Table: table, Cost: cost}
		bld.Build(nil)
	}
}
