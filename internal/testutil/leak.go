// Package testutil holds test-support code shared between the package
// test suites and the midas-soak harness. It is internal but not
// _test-only: the soak driver (cmd/midas-soak) uses the same
// goroutine-leak snapshot diff the httptest suites assert with, so the
// helpers live in a plain package.
package testutil

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"
)

// GoroutineSnapshot is the set of goroutines alive at one instant,
// keyed by a stable identity: the goroutine's creation site (the
// "created by" frame) plus its top function. Counting by identity
// instead of goroutine ID makes the diff robust to unrelated churn —
// a leaked worker shows up as a key whose count grew and stayed grown.
type GoroutineSnapshot map[string]int

// Goroutines captures the current goroutine population. The calling
// goroutine itself is excluded (its key would differ between the
// "before" capture in the test body and the "after" capture in a
// cleanup, producing spurious diffs in both directions).
func Goroutines() GoroutineSnapshot {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	snap := make(GoroutineSnapshot)
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the goroutine running runtime.Stack
		}
		if key := goroutineKey(g); key != "" {
			snap[key]++
		}
	}
	return snap
}

// goroutineKey condenses one goroutine's stack dump into its identity
// key, or "" for goroutines that never count as leaks: runtime
// internals, the testing machinery, and the std HTTP client/server
// plumbing whose lifetime is managed by keep-alive pools rather than
// the code under test.
func goroutineKey(stack string) string {
	lines := strings.Split(strings.TrimSpace(stack), "\n")
	if len(lines) < 2 {
		return ""
	}
	top := funcName(lines[1])
	created := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "created by ") {
			created = strings.TrimPrefix(l, "created by ")
			if j := strings.Index(created, " in goroutine"); j >= 0 {
				created = created[:j]
			}
			break
		}
	}
	for _, benign := range benignFrames {
		if strings.HasPrefix(top, benign) || strings.HasPrefix(created, benign) {
			return ""
		}
	}
	if created == "" {
		created = "main"
	}
	return created + " -> " + top
}

// benignFrames are goroutine origins that outlive individual tests by
// design and must not count as leaks of the code under test.
var benignFrames = []string{
	"runtime.",                  // GC, finalizers, scavenger
	"testing.",                  // test runner, t.Parallel parking
	"os/signal.",                // signal mask goroutine
	"net/http.(*persistConn)",   // client keep-alive pool
	"net/http.(*Transport)",     // idle-conn management
	"net/http.setRequestCancel", // per-request cancel watchers
	"net/http/httptest.",        // test server accept loop
	"net/http.(*Server).Serve",  // handler goroutines wind down async
	"net/http.(*conn).serve",    // ditto
}

// funcName strips the argument list off a stack frame's first line:
// "net/http.(*persistConn).readLoop(0xc0001)" → the dotted name. The
// argument list is the last parenthesized group on the line (method
// receivers parenthesize earlier).
func funcName(frame string) string {
	if i := strings.LastIndexByte(frame, '('); i > 0 {
		return frame[:i]
	}
	return frame
}

// Leaked diffs the current goroutine population against before,
// retrying for up to wait so goroutines that are mid-teardown (handler
// goroutines after a server close, timer-driven workers) get to exit.
// It returns a description per leaked identity, empty when clean.
func Leaked(before GoroutineSnapshot, wait time.Duration) []string {
	deadline := time.Now().Add(wait)
	for {
		// Keep-alive connections owned by the shared default transport
		// otherwise linger for their idle timeout and mask real leaks.
		http.DefaultClient.CloseIdleConnections()
		leaks := diff(before, Goroutines())
		if len(leaks) == 0 || time.Now().After(deadline) {
			return leaks
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func diff(before, after GoroutineSnapshot) []string {
	var leaks []string
	for key, n := range after {
		if extra := n - before[key]; extra > 0 {
			leaks = append(leaks, fmt.Sprintf("%d leaked: %s", extra, key))
		}
	}
	sort.Strings(leaks)
	return leaks
}

// TB is the subset of testing.TB the check helpers need, kept as a
// local interface so this package does not import testing into
// non-test binaries that link it (the soak harness).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// CheckGoroutines snapshots the goroutine population now and registers
// a cleanup that fails the test if goroutines created during the test
// are still alive at its end (after a grace window for teardown).
// Call it first in the test body, before starting servers.
func CheckGoroutines(t TB) {
	t.Helper()
	before := Goroutines()
	t.Cleanup(func() {
		if leaks := Leaked(before, 2*time.Second); len(leaks) > 0 {
			t.Errorf("goroutines leaked by the test:\n  %s", strings.Join(leaks, "\n  "))
		}
	})
}
