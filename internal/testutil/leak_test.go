package testutil

import (
	"strings"
	"testing"
	"time"
)

// TestLeakedDetectsAndClears: a goroutine parked on a channel shows up
// in the diff, disappears once released, and the retry window absorbs
// the wind-down delay.
func TestLeakedDetectsAndClears(t *testing.T) {
	before := Goroutines()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()

	leaks := Leaked(before, 100*time.Millisecond)
	if len(leaks) == 0 {
		t.Fatal("parked goroutine not reported as leaked")
	}
	found := false
	for _, l := range leaks {
		if strings.Contains(l, "TestLeakedDetectsAndClears") {
			found = true
		}
	}
	if !found {
		t.Errorf("leak report does not name the creation site: %v", leaks)
	}

	close(release)
	<-done
	if leaks := Leaked(before, 2*time.Second); len(leaks) != 0 {
		t.Errorf("leaks after release: %v", leaks)
	}
}

// TestGoroutineKeyFiltersBenign: runtime and testing goroutines never
// count; an app goroutine keys by creation site and top function.
func TestGoroutineKeyFiltersBenign(t *testing.T) {
	cases := []struct {
		stack string
		want  string
	}{
		{
			stack: "goroutine 18 [select]:\n" +
				"runtime.gopark(0x1, 0x2)\n" +
				"\t/usr/local/go/src/runtime/proc.go:402 +0xce\n" +
				"created by runtime.gcBgMarkStartWorkers in goroutine 1\n" +
				"\t/usr/local/go/src/runtime/mgc.go:1234 +0x1c",
			want: "",
		},
		{
			stack: "goroutine 35 [chan receive]:\n" +
				"testing.(*T).Parallel(0xc000184340)\n" +
				"\t/usr/local/go/src/testing/testing.go:1484 +0x225\n",
			want: "",
		},
		{
			stack: "goroutine 7 [chan receive]:\n" +
				"midas/internal/serve.(*Server).worker(0xc000100000)\n" +
				"\t/root/repo/internal/serve/serve.go:10 +0x11\n" +
				"created by midas/internal/serve.New in goroutine 5\n" +
				"\t/root/repo/internal/serve/serve.go:20 +0x22",
			want: "midas/internal/serve.New -> midas/internal/serve.(*Server).worker",
		},
	}
	for i, c := range cases {
		if got := goroutineKey(c.stack); got != c.want {
			t.Errorf("case %d: key = %q, want %q", i, got, c.want)
		}
	}
}

// TestCheckGoroutinesCleanPass: the cleanup-based checker passes on a
// test that starts and fully stops its goroutines.
func TestCheckGoroutinesCleanPass(t *testing.T) {
	CheckGoroutines(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
