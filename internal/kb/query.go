package kb

import (
	"sort"

	"midas/internal/dict"
)

// Pattern is a triple pattern: each position is a concrete ID or
// Wildcard. The zero value matches everything.
type Pattern struct {
	S, P, O dict.ID
	// WildS/WildP/WildO mark wildcard positions. (Separate flags rather
	// than a sentinel ID keep Pattern usable with ID 0, which is a
	// valid dictionary ID.)
	WildS, WildP, WildO bool
}

// Any returns the match-everything pattern.
func Any() Pattern { return Pattern{WildS: true, WildP: true, WildO: true} }

// BySubject returns a pattern matching all facts about s.
func BySubject(s dict.ID) Pattern { return Pattern{S: s, WildP: true, WildO: true} }

// ByPredicate returns a pattern matching all facts with predicate p.
func ByPredicate(p dict.ID) Pattern { return Pattern{WildS: true, P: p, WildO: true} }

// ByPredicateObject returns a pattern matching the property (p, o) on
// any subject — exactly a slice property in Definition 4 terms.
func ByPredicateObject(p, o dict.ID) Pattern { return Pattern{WildS: true, P: p, O: o} }

func (pat Pattern) matches(t Triple) bool {
	if !pat.WildS && pat.S != t.S {
		return false
	}
	if !pat.WildP && pat.P != t.P {
		return false
	}
	if !pat.WildO && pat.O != t.O {
		return false
	}
	return true
}

// Match returns all facts matching the pattern, sorted by (S, P, O).
// Subject-bound patterns use the subject index; everything else scans.
func (k *KB) Match(pat Pattern) []Triple {
	k.mu.RLock()
	defer k.mu.RUnlock()
	var out []Triple
	scan := func(s dict.ID, pairs []po) {
		for _, key := range pairs {
			t := Triple{S: s, P: key.p, O: key.o}
			if pat.matches(t) {
				out = append(out, t)
			}
		}
	}
	if !pat.WildS {
		scan(pat.S, k.bySubject[pat.S])
	} else {
		for s, pairs := range k.bySubject {
			scan(s, pairs)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Count returns the number of facts matching the pattern without
// materializing them.
func (k *KB) Count(pat Pattern) int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	// Fast paths.
	if !pat.WildS && pat.WildP && pat.WildO {
		return len(k.bySubject[pat.S])
	}
	if pat.WildS && !pat.WildP && pat.WildO {
		return k.byPredicate[pat.P]
	}
	n := 0
	count := func(s dict.ID, pairs []po) {
		for _, key := range pairs {
			if pat.matches(Triple{S: s, P: key.p, O: key.o}) {
				n++
			}
		}
	}
	if !pat.WildS {
		count(pat.S, k.bySubject[pat.S])
		return n
	}
	for s, pairs := range k.bySubject {
		count(s, pairs)
	}
	return n
}

// SubjectsWith returns the distinct subjects carrying the property
// (p, o) — the Π of the slice defined by that single property — sorted.
func (k *KB) SubjectsWith(p, o dict.ID) []dict.ID {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key := po{p, o}
	var out []dict.ID
	for s, pairs := range k.bySubject {
		for _, pair := range pairs {
			if pair == key {
				out = append(out, s)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ObjectsOf returns the distinct objects of (s, p) — the cell of the
// fact table at row s, column p — sorted.
func (k *KB) ObjectsOf(s, p dict.ID) []dict.ID {
	k.mu.RLock()
	defer k.mu.RUnlock()
	var out []dict.ID
	for _, key := range k.bySubject[s] {
		if key.p == p {
			out = append(out, key.o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Predicates returns the distinct predicates in use, sorted by ID.
func (k *KB) Predicates() []dict.ID {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]dict.ID, 0, len(k.byPredicate))
	for p := range k.byPredicate {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subjects returns the distinct subjects, sorted by ID.
func (k *KB) Subjects() []dict.ID {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]dict.ID, 0, len(k.bySubject))
	for s := range k.bySubject {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
