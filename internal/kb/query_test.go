package kb_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"midas/internal/kb"
)

func queryKB(t *testing.T) *kb.KB {
	t.Helper()
	k := kb.New(nil)
	k.AddStrings("atlas", "category", "rocket")
	k.AddStrings("atlas", "sponsor", "NASA")
	k.AddStrings("castor", "category", "rocket")
	k.AddStrings("castor", "sponsor", "NASA")
	k.AddStrings("mercury", "category", "program")
	k.AddStrings("mercury", "sponsor", "NASA")
	k.AddStrings("atlas", "sponsor", "USAF") // multi-valued cell
	return k
}

func ids(k *kb.KB, s, p, o string) (si, pi, oi int32) {
	return k.Space().Subjects.Lookup(s), k.Space().Predicates.Lookup(p), k.Space().Objects.Lookup(o)
}

func TestMatchPatterns(t *testing.T) {
	k := queryKB(t)
	si, pi, oi := ids(k, "atlas", "category", "rocket")

	if got := k.Match(kb.Any()); len(got) != 7 {
		t.Errorf("Any = %d, want 7", len(got))
	}
	if got := k.Match(kb.BySubject(si)); len(got) != 3 {
		t.Errorf("BySubject(atlas) = %d, want 3", len(got))
	}
	if got := k.Match(kb.ByPredicate(pi)); len(got) != 3 {
		t.Errorf("ByPredicate(category) = %d, want 3", len(got))
	}
	if got := k.Match(kb.ByPredicateObject(pi, oi)); len(got) != 2 {
		t.Errorf("ByPredicateObject(category,rocket) = %d, want 2", len(got))
	}
	exact := kb.Pattern{S: si, P: pi, O: oi}
	if got := k.Match(exact); len(got) != 1 {
		t.Errorf("exact = %d, want 1", len(got))
	}
	// Sorted output.
	all := k.Match(kb.Any())
	for i := 1; i < len(all); i++ {
		if all[i].Less(all[i-1]) {
			t.Fatal("Match output unsorted")
		}
	}
}

func TestCountFastPaths(t *testing.T) {
	k := queryKB(t)
	si, pi, _ := ids(k, "atlas", "sponsor", "NASA")
	if got := k.Count(kb.BySubject(si)); got != 3 {
		t.Errorf("count by subject = %d, want 3", got)
	}
	if got := k.Count(kb.ByPredicate(pi)); got != 4 {
		t.Errorf("count by predicate = %d, want 4", got)
	}
	if got := k.Count(kb.Any()); got != 7 {
		t.Errorf("count any = %d, want 7", got)
	}
}

func TestSubjectsWithObjectsOf(t *testing.T) {
	k := queryKB(t)
	_, pi, oi := ids(k, "atlas", "category", "rocket")
	subs := k.SubjectsWith(pi, oi)
	if len(subs) != 2 {
		t.Fatalf("SubjectsWith = %d, want 2", len(subs))
	}
	si, spi, _ := ids(k, "atlas", "sponsor", "NASA")
	objs := k.ObjectsOf(si, spi)
	if len(objs) != 2 {
		t.Errorf("ObjectsOf(atlas,sponsor) = %d, want 2 (NASA, USAF)", len(objs))
	}
	if got := k.ObjectsOf(9999, spi); got != nil {
		t.Errorf("unknown subject = %v", got)
	}
}

func TestPredicatesSubjectsEnumeration(t *testing.T) {
	k := queryKB(t)
	if got := len(k.Predicates()); got != 2 {
		t.Errorf("predicates = %d, want 2", got)
	}
	if got := len(k.Subjects()); got != 3 {
		t.Errorf("subjects = %d, want 3", got)
	}
}

// TestMatchAgainstReference property: Match agrees with a brute-force
// filter over Triples() for random patterns.
func TestMatchAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := kb.New(nil)
		for i := 0; i < 150; i++ {
			k.AddStrings(
				fmt.Sprintf("s%d", rng.Intn(10)),
				fmt.Sprintf("p%d", rng.Intn(4)),
				fmt.Sprintf("o%d", rng.Intn(8)))
		}
		all := k.Triples()
		for trial := 0; trial < 10; trial++ {
			pat := kb.Pattern{
				WildS: rng.Intn(2) == 0,
				WildP: rng.Intn(2) == 0,
				WildO: rng.Intn(2) == 0,
			}
			if len(all) > 0 {
				pick := all[rng.Intn(len(all))]
				pat.S, pat.P, pat.O = pick.S, pick.P, pick.O
			}
			got := k.Match(pat)
			want := 0
			for _, tr := range all {
				if (pat.WildS || tr.S == pat.S) &&
					(pat.WildP || tr.P == pat.P) &&
					(pat.WildO || tr.O == pat.O) {
					want++
				}
			}
			if len(got) != want || k.Count(pat) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
