// Package kb implements the existing knowledge base E: an in-memory,
// indexed RDF triple store.
//
// The store plays the role Freebase plays in the paper: the reference
// against which extracted facts are classified as new or known
// (Definition 9's gain counts facts in slices that are absent from E).
// It supports exact membership tests on (subject, predicate, object)
// triples, per-subject and per-predicate enumeration, set operations used
// by the evaluation harness, and a line-oriented TSV persistence format.
//
// Membership is a flat 64-bit-fingerprint index: each triple hashes to
// an FNV-1a fingerprint over its three ID words, and Contains is one
// map probe plus a struct compare — no nested per-subject map, no
// allocation on the hit path. Fingerprint collisions (two *different*
// triples hashing alike, ~2^-64 per pair) fall back to a rarely-
// populated overflow table, so answers stay exact. Per-subject
// enumeration is served by a separate subject → (predicate, object)
// posting index.
//
// Strings are interned through a shared *dict.Dict triple space so that
// the KB, extracted fact corpora, and silver standards can compare facts
// by ID without re-hashing strings.
package kb

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"midas/internal/dict"
	"midas/internal/obs"
)

// Triple is a fully interned (subject, predicate, object) fact.
type Triple struct {
	S, P, O dict.ID
}

// Less orders triples lexicographically by (S, P, O).
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}

// FNV-1a 64-bit parameters (shared with internal/idset's set
// fingerprints; restated here to keep kb's hot path free of generic
// instantiation).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fingerprint hashes the triple's three 32-bit ID words with a
// word-at-a-time FNV-1a variant: three xor-multiply rounds instead of
// twelve byte rounds. Membership never trusts the fingerprint alone —
// every probe verifies the full triple and falls back to the overflow
// list — so the hash only has to be cheap and well-spread, not
// byte-exact FNV.
func (t Triple) fingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(uint32(t.S))) * fnvPrime64
	h = (h ^ uint64(uint32(t.P))) * fnvPrime64
	h = (h ^ uint64(uint32(t.O))) * fnvPrime64
	return h
}

// Space is the shared interning space for the three RDF positions.
// Subjects, predicates, and objects are interned in separate
// dictionaries: predicates are few and hot, subjects dominate, and
// keeping them separate keeps IDs dense per position.
type Space struct {
	Subjects   *dict.Dict
	Predicates *dict.Dict
	Objects    *dict.Dict
}

// NewSpace returns an empty interning space.
func NewSpace() *Space {
	return &Space{
		Subjects:   dict.New(1 << 12),
		Predicates: dict.New(1 << 8),
		Objects:    dict.New(1 << 12),
	}
}

// Intern interns the three string positions of a fact.
func (sp *Space) Intern(s, p, o string) Triple {
	return Triple{
		S: sp.Subjects.Put(s),
		P: sp.Predicates.Put(p),
		O: sp.Objects.Put(o),
	}
}

// StringTriple resolves t back to strings.
func (sp *Space) StringTriple(t Triple) (s, p, o string) {
	return sp.Subjects.String(t.S), sp.Predicates.String(t.P), sp.Objects.String(t.O)
}

// po packs the (predicate, object) pair of a subject's posting entry.
type po struct {
	p, o dict.ID
}

// KB is the existing knowledge base. It is safe for concurrent readers;
// writers must not run concurrently with readers or other writers.
type KB struct {
	space *Space

	mu sync.RWMutex
	// facts is the membership index: triple fingerprint → the triple.
	// Storing the triple (12 bytes) keeps the probe exact: a hit is
	// confirmed by one struct compare instead of trusting the hash.
	facts map[uint64]Triple
	// over holds the additional triples of any colliding fingerprint;
	// it stays empty in practice and is only scanned after a
	// fingerprint hit with a mismatching triple.
	over map[uint64][]Triple
	// bySubject lists each subject's (predicate, object) pairs in
	// insertion order (deduplicated by the membership index above).
	bySubject map[dict.ID][]po
	// byPredicate counts facts per predicate (used for stats and the
	// Fig. 7-style dataset tables).
	byPredicate map[dict.ID]int
	size        int
	// epoch counts mutating calls, including inserts of already-present
	// triples (the KB's answer set is unchanged but a caller observed a
	// write). Incremental consumers compare epochs instead of sizes:
	// equal epochs guarantee no write happened in between, so cached
	// newness annotations are still valid.
	epoch uint64

	// obs receives bulk-load metrics; nil falls back to obs.Default().
	obs *obs.Registry
}

// New returns an empty KB over the given interning space.
func New(space *Space) *KB {
	if space == nil {
		space = NewSpace()
	}
	return &KB{
		space:       space,
		facts:       make(map[uint64]Triple),
		bySubject:   make(map[dict.ID][]po),
		byPredicate: make(map[dict.ID]int),
	}
}

// Space returns the interning space the KB shares with its callers.
func (k *KB) Space() *Space { return k.space }

// SetObs routes the KB's bulk-load metrics (triples loaded, load phase
// timings, triples/sec throughput) to reg; nil restores the process-wide
// obs.Default(). Call before loading; not safe concurrently with loads.
func (k *KB) SetObs(reg *obs.Registry) { k.obs = reg }

// recordLoad publishes one bulk load (format is "tsv" or "binary").
func (k *KB) recordLoad(format string, added int, d time.Duration) {
	reg := k.obs.OrDefault()
	reg.Timer("kb/load").Observe(d)
	reg.Counter("kb/load_triples").Add(int64(added))
	if secs := d.Seconds(); secs > 0 && added > 0 {
		reg.Gauge("kb/load_triples_per_sec/" + format).Set(float64(added) / secs)
	}
	reg.Gauge("kb/size").Set(float64(k.Size()))
}

// Add inserts an interned triple. It reports whether the triple was new.
func (k *KB) Add(t Triple) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.addLocked(t)
}

func (k *KB) addLocked(t Triple) bool {
	k.epoch++
	if !k.insertMembership(t.fingerprint(), t) {
		return false
	}
	k.bySubject[t.S] = append(k.bySubject[t.S], po{t.P, t.O})
	k.byPredicate[t.P]++
	k.size++
	return true
}

// insertMembership records t under fingerprint fp, reporting whether t
// was new. Colliding fingerprints (a different triple already under fp)
// go to the overflow table.
func (k *KB) insertMembership(fp uint64, t Triple) bool {
	first, ok := k.facts[fp]
	if !ok {
		k.facts[fp] = t
		return true
	}
	if first == t {
		return false
	}
	for _, u := range k.over[fp] {
		if u == t {
			return false
		}
	}
	if k.over == nil {
		k.over = make(map[uint64][]Triple)
	}
	k.over[fp] = append(k.over[fp], t)
	return true
}

// AddStrings interns and inserts a string fact. It reports whether the
// fact was new.
func (k *KB) AddStrings(s, p, o string) bool {
	return k.Add(k.space.Intern(s, p, o))
}

// AddAll inserts every triple in ts, returning the number newly added.
func (k *KB) AddAll(ts []Triple) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := 0
	for _, t := range ts {
		if k.addLocked(t) {
			n++
		}
	}
	return n
}

// containsIn is the shared fingerprint probe of *KB and Frozen.
func containsIn(facts map[uint64]Triple, over map[uint64][]Triple, t Triple) bool {
	return containsFP(facts, over, t.fingerprint(), t)
}

// containsFP probes for t under an explicit fingerprint (split out so
// tests can exercise the collision fallback, which real triples cannot
// reach on demand).
func containsFP(facts map[uint64]Triple, over map[uint64][]Triple, fp uint64, t Triple) bool {
	first, ok := facts[fp]
	if !ok {
		return false
	}
	if first == t {
		return true
	}
	for _, u := range over[fp] {
		if u == t {
			return true
		}
	}
	return false
}

// Contains reports whether the interned triple is present.
func (k *KB) Contains(t Triple) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return containsIn(k.facts, k.over, t)
}

// ContainsStrings reports whether the string fact is present. Unknown
// strings are definitionally absent.
func (k *KB) ContainsStrings(s, p, o string) bool {
	si := k.space.Subjects.Lookup(s)
	pi := k.space.Predicates.Lookup(p)
	oi := k.space.Objects.Lookup(o)
	if si == dict.None || pi == dict.None || oi == dict.None {
		return false
	}
	return k.Contains(Triple{si, pi, oi})
}

// HasSubject reports whether any fact about subject s exists.
func (k *KB) HasSubject(s dict.ID) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.bySubject[s]) > 0
}

// SubjectFacts returns the (predicate, object) pairs recorded for s,
// sorted for determinism.
func (k *KB) SubjectFacts(s dict.ID) []Triple {
	k.mu.RLock()
	defer k.mu.RUnlock()
	pairs := k.bySubject[s]
	if len(pairs) == 0 {
		return nil
	}
	out := make([]Triple, 0, len(pairs))
	for _, key := range pairs {
		out = append(out, Triple{s, key.p, key.o})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Size returns the number of stored facts.
func (k *KB) Size() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.size
}

// Epoch returns the KB's monotonic mutation counter. It advances on
// every insert attempt — including duplicates, which leave Size
// unchanged — so two equal Epoch readings prove the KB saw no writes in
// between.
func (k *KB) Epoch() uint64 {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.epoch
}

// RestoreEpoch forces the mutation counter to e. Crash recovery only:
// a KB rebuilt from a snapshot saw exactly one Add per stored triple,
// while the epoch of the KB that was snapshotted also counted duplicate
// insert attempts — and session fingerprints fold the epoch, so the
// rebuilt KB must resume from the stamped value, not its own count.
func (k *KB) RestoreEpoch(e uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.epoch = e
}

// NumSubjects returns the number of distinct subjects.
func (k *KB) NumSubjects() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.bySubject)
}

// NumPredicates returns the number of distinct predicates with at least
// one fact.
func (k *KB) NumPredicates() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.byPredicate)
}

// PredicateCount returns the number of facts using predicate p.
func (k *KB) PredicateCount(p dict.ID) int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.byPredicate[p]
}

// Triples returns all facts sorted by (S, P, O). Intended for tests,
// persistence, and small KBs; it materializes the full set.
func (k *KB) Triples() []Triple {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]Triple, 0, k.size)
	for s, pairs := range k.bySubject {
		for _, key := range pairs {
			out = append(out, Triple{s, key.p, key.o})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns a deep copy sharing the interning space.
func (k *KB) Clone() *KB {
	k.mu.RLock()
	defer k.mu.RUnlock()
	c := New(k.space)
	for fp, t := range k.facts {
		c.facts[fp] = t
	}
	if len(k.over) > 0 {
		c.over = make(map[uint64][]Triple, len(k.over))
		for fp, ts := range k.over {
			c.over[fp] = append([]Triple(nil), ts...)
		}
	}
	for s, pairs := range k.bySubject {
		c.bySubject[s] = append([]po(nil), pairs...)
	}
	for p, n := range k.byPredicate {
		c.byPredicate[p] = n
	}
	c.size = k.size
	c.epoch = k.epoch
	return c
}

// Membership is the read-only triple-membership view consumed by fact
// tables. *KB implements it with reader-writer locking; Frozen
// implements it lock-free.
type Membership interface {
	Contains(Triple) bool
}

// Frozen is a lock-free read-only view of a KB, sharing its fingerprint
// index. It is only valid while the underlying KB receives no writes;
// the multi-source framework freezes the KB once per run, since
// discovery never mutates it, and sheds the read-lock contention that
// otherwise serializes the worker pool.
type Frozen struct {
	facts map[uint64]Triple
	over  map[uint64][]Triple
}

// Frozen returns the lock-free view.
func (k *KB) Frozen() *Frozen {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return &Frozen{facts: k.facts, over: k.over}
}

// Contains reports whether the triple is present.
func (f *Frozen) Contains(t Triple) bool {
	return containsIn(f.facts, f.over, t)
}

// WriteTSV writes the KB as tab-separated (subject, predicate, object)
// lines sorted by triple, suitable for diffing and for ReadTSV.
func (k *KB) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range k.Triples() {
		s, p, o := k.space.StringTriple(t)
		if strings.ContainsAny(s+p+o, "\t\n") {
			return fmt.Errorf("kb: fact (%q,%q,%q) contains tab or newline", s, p, o)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", s, p, o); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV loads tab-separated facts into the KB, returning the number of
// facts added (duplicates are ignored).
func (k *KB) ReadTSV(r io.Reader) (int, error) {
	return k.ReadTSVContext(context.Background(), r)
}

// ReadTSVContext is ReadTSV with span tracing: the load records a
// "kb/load_tsv" span as a child of ctx's span, or as a root span on the
// default tracer when ctx carries none (so -trace runs see bulk loads
// even outside a pipeline span).
func (k *KB) ReadTSVContext(ctx context.Context, r io.Reader) (int, error) {
	start := time.Now()
	_, span := obs.StartSpanOrRoot(ctx, "kb/load_tsv")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	added, line := 0, 0
	defer func() {
		k.recordLoad("tsv", added, time.Since(start))
		span.Arg("added", strconv.Itoa(added)).End()
	}()
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 3 {
			return added, fmt.Errorf("kb: line %d: want 3 tab-separated fields, got %d", line, len(parts))
		}
		if k.AddStrings(parts[0], parts[1], parts[2]) {
			added++
		}
	}
	return added, sc.Err()
}
