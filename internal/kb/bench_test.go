package kb

import (
	"fmt"
	"testing"
)

// benchKB builds a KB with nSubjects subjects × factsPerSubject facts.
func benchKB(nSubjects, factsPerSubject int) (*KB, []Triple) {
	k := New(NewSpace())
	triples := make([]Triple, 0, nSubjects*factsPerSubject)
	for s := 0; s < nSubjects; s++ {
		subj := k.space.Subjects.Put(fmt.Sprintf("subject-%d", s))
		for f := 0; f < factsPerSubject; f++ {
			t := Triple{
				S: subj,
				P: k.space.Predicates.Put(fmt.Sprintf("pred-%d", f%7)),
				O: k.space.Objects.Put(fmt.Sprintf("value-%d-%d", s%97, f)),
			}
			triples = append(triples, t)
		}
	}
	k.AddAll(triples)
	return k, triples
}

// BenchmarkKBContains measures the membership hot path — the probe the
// fact-table build issues once per extracted fact — on a 100k-triple
// KB, alternating hits and misses. The hit path must not allocate.
func BenchmarkKBContains(b *testing.B) {
	k, triples := benchKB(10000, 10)
	misses := make([]Triple, len(triples))
	for i, t := range triples {
		misses[i] = Triple{S: t.S, P: t.P, O: t.O + 1_000_000}
	}
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !k.Contains(triples[i%len(triples)]) {
				b.Fatal("expected hit")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if k.Contains(misses[i%len(misses)]) {
				b.Fatal("expected miss")
			}
		}
	})
	b.Run("frozen-hit", func(b *testing.B) {
		f := k.Frozen()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !f.Contains(triples[i%len(triples)]) {
				b.Fatal("expected hit")
			}
		}
	})
}

// TestContainsNoAllocOnHit pins the acceptance criterion directly:
// the membership probe allocates nothing on the hit path.
func TestContainsNoAllocOnHit(t *testing.T) {
	k, triples := benchKB(100, 5)
	probe := triples[37]
	if allocs := testing.AllocsPerRun(100, func() {
		if !k.Contains(probe) {
			t.Fatal("expected hit")
		}
	}); allocs != 0 {
		t.Errorf("Contains hit path allocates %.1f objects/op, want 0", allocs)
	}
	f := k.Frozen()
	if allocs := testing.AllocsPerRun(100, func() {
		if !f.Contains(probe) {
			t.Fatal("expected hit")
		}
	}); allocs != 0 {
		t.Errorf("Frozen.Contains hit path allocates %.1f objects/op, want 0", allocs)
	}
}
