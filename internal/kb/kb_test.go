package kb_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"midas/internal/kb"
)

func TestAddContains(t *testing.T) {
	k := kb.New(nil)
	if !k.AddStrings("s", "p", "o") {
		t.Error("first add should be new")
	}
	if k.AddStrings("s", "p", "o") {
		t.Error("duplicate add should not be new")
	}
	if !k.ContainsStrings("s", "p", "o") {
		t.Error("membership lost")
	}
	if k.ContainsStrings("s", "p", "x") || k.ContainsStrings("x", "p", "o") {
		t.Error("phantom membership")
	}
	if k.Size() != 1 {
		t.Errorf("size = %d, want 1", k.Size())
	}
}

func TestSubjectFacts(t *testing.T) {
	k := kb.New(nil)
	k.AddStrings("e", "b", "2")
	k.AddStrings("e", "a", "1")
	k.AddStrings("f", "a", "1")
	s := k.Space().Subjects.Lookup("e")
	facts := k.SubjectFacts(s)
	if len(facts) != 2 {
		t.Fatalf("facts = %d, want 2", len(facts))
	}
	if !facts[0].Less(facts[1]) {
		t.Error("facts not sorted")
	}
	if !k.HasSubject(s) {
		t.Error("HasSubject false")
	}
}

func TestCountsAndIndexes(t *testing.T) {
	k := kb.New(nil)
	for i := 0; i < 10; i++ {
		k.AddStrings(fmt.Sprintf("s%d", i%3), "p1", fmt.Sprintf("o%d", i))
	}
	k.AddStrings("s0", "p2", "x")
	if got := k.NumSubjects(); got != 3 {
		t.Errorf("subjects = %d, want 3", got)
	}
	if got := k.NumPredicates(); got != 2 {
		t.Errorf("predicates = %d, want 2", got)
	}
	p1 := k.Space().Predicates.Lookup("p1")
	if got := k.PredicateCount(p1); got != 10 {
		t.Errorf("p1 count = %d, want 10", got)
	}
}

func TestClone(t *testing.T) {
	k := kb.New(nil)
	k.AddStrings("a", "b", "c")
	c := k.Clone()
	c.AddStrings("d", "e", "f")
	if k.Size() != 1 || c.Size() != 2 {
		t.Errorf("sizes = %d/%d, want 1/2", k.Size(), c.Size())
	}
	if !c.ContainsStrings("a", "b", "c") {
		t.Error("clone lost facts")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	k := kb.New(nil)
	k.AddStrings("subject with space", "pred", "object")
	k.AddStrings("a", "b", "c")
	var buf bytes.Buffer
	if err := k.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	k2 := kb.New(nil)
	n, err := k2.ReadTSV(&buf)
	if err != nil || n != 2 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !k2.ContainsStrings("subject with space", "pred", "object") {
		t.Error("round-trip lost fact")
	}
}

func TestWriteTSVRejectsTabs(t *testing.T) {
	k := kb.New(nil)
	k.AddStrings("bad\tsubject", "p", "o")
	if err := k.WriteTSV(&bytes.Buffer{}); err == nil {
		t.Error("want error for tab in fact")
	}
}

func TestReadTSVRejectsBadLines(t *testing.T) {
	k := kb.New(nil)
	if _, err := k.ReadTSV(strings.NewReader("only\ttwo\n")); err == nil {
		t.Error("want field-count error")
	}
}

// TestMembershipMatchesReference property: the KB agrees with a plain
// map on membership for random triple streams with duplicates.
func TestMembershipMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := kb.New(nil)
		ref := make(map[[3]string]bool)
		for i := 0; i < 300; i++ {
			s := fmt.Sprintf("s%d", rng.Intn(20))
			p := fmt.Sprintf("p%d", rng.Intn(5))
			o := fmt.Sprintf("o%d", rng.Intn(20))
			key := [3]string{s, p, o}
			added := k.AddStrings(s, p, o)
			if added == ref[key] {
				return false // must be new iff absent from reference
			}
			ref[key] = true
		}
		if k.Size() != len(ref) {
			return false
		}
		for key := range ref {
			if !k.ContainsStrings(key[0], key[1], key[2]) {
				return false
			}
		}
		return len(k.Triples()) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTriplesSorted: Triples() returns (S,P,O)-sorted output.
func TestTriplesSorted(t *testing.T) {
	k := kb.New(nil)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		k.AddStrings(fmt.Sprintf("s%d", rng.Intn(10)), fmt.Sprintf("p%d", rng.Intn(4)), fmt.Sprintf("o%d", rng.Intn(30)))
	}
	ts := k.Triples()
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			t.Fatalf("triples unsorted at %d", i)
		}
	}
}

func TestSharedSpaceIntern(t *testing.T) {
	sp := kb.NewSpace()
	k := kb.New(sp)
	tr := sp.Intern("x", "y", "z")
	k.Add(tr)
	s, p, o := sp.StringTriple(tr)
	if s != "x" || p != "y" || o != "z" {
		t.Errorf("StringTriple = %q %q %q", s, p, o)
	}
	if !k.Contains(tr) {
		t.Error("interned triple missing")
	}
}
