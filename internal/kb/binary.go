package kb

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"midas/internal/binio"
	"midas/internal/obs"
)

// Binary format: "MKB1", then the three position dictionaries restricted
// to the strings the KB actually uses (count + strings each), then the
// triple count and the triples as varint-encoded local indexes with the
// subject delta-encoded (triples are sorted). The format is
// self-contained: IDs are remapped on load into the destination space.

const kbMagic = "MKB1"

// WriteBinary serializes the KB in the compact binary format.
func (k *KB) WriteBinary(w io.Writer) error {
	triples := k.Triples()

	// Collect the used strings per position, assigning local indexes.
	subjIdx := make(map[int32]uint64)
	predIdx := make(map[int32]uint64)
	objIdx := make(map[int32]uint64)
	var subjs, preds, objs []string
	for _, t := range triples {
		if _, ok := subjIdx[t.S]; !ok {
			subjIdx[t.S] = uint64(len(subjs))
			subjs = append(subjs, k.space.Subjects.String(t.S))
		}
		if _, ok := predIdx[t.P]; !ok {
			predIdx[t.P] = uint64(len(preds))
			preds = append(preds, k.space.Predicates.String(t.P))
		}
		if _, ok := objIdx[t.O]; !ok {
			objIdx[t.O] = uint64(len(objs))
			objs = append(objs, k.space.Objects.String(t.O))
		}
	}

	bw := binio.NewWriter(w)
	bw.Magic(kbMagic)
	for _, sec := range [][]string{subjs, preds, objs} {
		bw.Int(len(sec))
		for _, s := range sec {
			bw.String(s)
		}
	}
	// Triples are sorted, and local subject indexes are assigned in
	// first-seen order over that same walk, so they are non-decreasing
	// and delta-encode cheaply.
	bw.Int(len(triples))
	var prevS uint64
	for i, t := range triples {
		s := subjIdx[t.S]
		if i == 0 {
			bw.Uvarint(s)
		} else {
			bw.Uvarint(s - prevS)
		}
		prevS = s
		bw.Uvarint(predIdx[t.P])
		bw.Uvarint(objIdx[t.O])
	}
	return bw.Flush()
}

// ReadBinary loads a binary KB stream into the receiver (interning into
// its space), returning the number of facts added.
func (k *KB) ReadBinary(r io.Reader) (int, error) {
	return k.ReadBinaryContext(context.Background(), r)
}

// ReadBinaryContext is ReadBinary with span tracing: the load records a
// "kb/load_binary" span as a child of ctx's span, or as a root span on
// the default tracer when ctx carries none.
func (k *KB) ReadBinaryContext(ctx context.Context, r io.Reader) (int, error) {
	start := time.Now()
	added := 0
	_, span := obs.StartSpanOrRoot(ctx, "kb/load_binary")
	defer func() {
		k.recordLoad("binary", added, time.Since(start))
		span.Arg("added", strconv.Itoa(added)).End()
	}()
	br := binio.NewReader(r)
	br.Magic(kbMagic)
	readSection := func() []string {
		n := br.Int()
		if br.Err() != nil {
			return nil
		}
		// Preallocation is capped: every entry costs at least one stream
		// byte, so a corrupt count fails at read time instead of forcing
		// a huge allocation up front.
		out := make([]string, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			out = append(out, br.String())
		}
		return out
	}
	subjs := readSection()
	preds := readSection()
	objs := readSection()
	count := br.Int()
	if err := br.Err(); err != nil {
		return 0, err
	}

	// Remap local indexes into the destination space.
	subjIDs := make([]int32, len(subjs))
	for i, s := range subjs {
		subjIDs[i] = k.space.Subjects.Put(s)
	}
	predIDs := make([]int32, len(preds))
	for i, s := range preds {
		predIDs[i] = k.space.Predicates.Put(s)
	}
	objIDs := make([]int32, len(objs))
	for i, s := range objs {
		objIDs[i] = k.space.Objects.Put(s)
	}

	var prevS uint64
	for i := 0; i < count; i++ {
		var s uint64
		if i == 0 {
			s = br.Uvarint()
		} else {
			s = prevS + br.Uvarint()
		}
		prevS = s
		p := br.Uvarint()
		o := br.Uvarint()
		if err := br.Err(); err != nil {
			return added, err
		}
		if s >= uint64(len(subjIDs)) || p >= uint64(len(predIDs)) || o >= uint64(len(objIDs)) {
			return added, fmt.Errorf("%w: triple %d references out-of-range string", binio.ErrCorrupt, i)
		}
		if k.Add(Triple{S: subjIDs[s], P: predIDs[p], O: objIDs[o]}) {
			added++
		}
	}
	return added, nil
}
