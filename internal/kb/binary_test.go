package kb_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"midas/internal/kb"
)

func TestBinaryRoundTrip(t *testing.T) {
	k := kb.New(nil)
	k.AddStrings("Project Mercury", "category", "space_program")
	k.AddStrings("Atlas", "sponsor", "NASA")
	k.AddStrings("Atlas", "started", "1957")

	var buf bytes.Buffer
	if err := k.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	k2 := kb.New(nil)
	n, err := k2.ReadBinary(&buf)
	if err != nil || n != 3 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	for _, tr := range [][3]string{
		{"Project Mercury", "category", "space_program"},
		{"Atlas", "sponsor", "NASA"},
		{"Atlas", "started", "1957"},
	} {
		if !k2.ContainsStrings(tr[0], tr[1], tr[2]) {
			t.Errorf("lost %v", tr)
		}
	}
	if k2.Size() != 3 {
		t.Errorf("size = %d", k2.Size())
	}
}

func TestBinaryEmptyKB(t *testing.T) {
	var buf bytes.Buffer
	if err := kb.New(nil).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	k := kb.New(nil)
	if n, err := k.ReadBinary(&buf); err != nil || n != 0 {
		t.Errorf("n=%d err=%v", n, err)
	}
}

func TestBinaryIntoPopulatedSpace(t *testing.T) {
	// Loading must remap IDs correctly even when the destination space
	// already has conflicting ID assignments.
	k := kb.New(nil)
	k.AddStrings("a", "p", "x")
	k.AddStrings("b", "q", "y")
	var buf bytes.Buffer
	if err := k.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}

	dst := kb.New(nil)
	dst.AddStrings("zzz", "q", "other") // shifts ID assignments
	if _, err := dst.ReadBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !dst.ContainsStrings("a", "p", "x") || !dst.ContainsStrings("b", "q", "y") {
		t.Error("remapped load lost facts")
	}
	if !dst.ContainsStrings("zzz", "q", "other") {
		t.Error("pre-existing facts lost")
	}
}

func TestBinaryCorruptInput(t *testing.T) {
	k := kb.New(nil)
	if _, err := k.ReadBinary(bytes.NewReader([]byte("JUNKDATA"))); err == nil {
		t.Error("want error for bad magic")
	}
	// Valid stream truncated mid-triples.
	full := kb.New(nil)
	for i := 0; i < 50; i++ {
		full.AddStrings(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i))
	}
	var buf bytes.Buffer
	if err := full.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := kb.New(nil).ReadBinary(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("want error for truncated stream")
	}
}

// TestBinaryQuick property: random KBs round-trip exactly.
func TestBinaryQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := kb.New(nil)
		for i := 0; i < rng.Intn(200); i++ {
			k.AddStrings(
				fmt.Sprintf("s%d", rng.Intn(30)),
				fmt.Sprintf("p%d", rng.Intn(6)),
				fmt.Sprintf("o%d", rng.Intn(40)))
		}
		var buf bytes.Buffer
		if err := k.WriteBinary(&buf); err != nil {
			return false
		}
		k2 := kb.New(nil)
		n, err := k2.ReadBinary(&buf)
		if err != nil || n != k.Size() || k2.Size() != k.Size() {
			return false
		}
		// Compare as string sets: the two spaces assign IDs in
		// different orders, so Triples() ordering differs.
		set := make(map[[3]string]bool, k.Size())
		for _, tr := range k.Triples() {
			s, p, o := k.Space().StringTriple(tr)
			set[[3]string{s, p, o}] = true
		}
		for _, tr := range k2.Triples() {
			s, p, o := k2.Space().StringTriple(tr)
			if !set[[3]string{s, p, o}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBinarySmallerThanTSV sanity: the binary format should not be
// larger than the TSV for a repetitive KB.
func TestBinarySmallerThanTSV(t *testing.T) {
	k := kb.New(nil)
	for i := 0; i < 500; i++ {
		k.AddStrings(fmt.Sprintf("subject-%d", i%50), "a-shared-predicate-name", fmt.Sprintf("object-value-%d", i))
	}
	var bin, tsv bytes.Buffer
	if err := k.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := k.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= tsv.Len() {
		t.Errorf("binary %d bytes ≥ TSV %d bytes", bin.Len(), tsv.Len())
	}
}
