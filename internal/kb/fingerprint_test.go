package kb

import "testing"

// TestFingerprintCollisionFallback drives two distinct triples through
// the membership index under the same (synthetic) fingerprint: both
// must remain individually addressable, duplicates must still be
// rejected, and absent triples sharing the fingerprint must not become
// false positives.
func TestFingerprintCollisionFallback(t *testing.T) {
	k := New(NewSpace())
	const fp = uint64(0xDEADBEEF)
	t1 := Triple{S: 1, P: 2, O: 3}
	t2 := Triple{S: 4, P: 5, O: 6}
	t3 := Triple{S: 7, P: 8, O: 9}

	if !k.insertMembership(fp, t1) {
		t.Fatal("first insert reported duplicate")
	}
	if !k.insertMembership(fp, t2) {
		t.Fatal("colliding insert of a distinct triple reported duplicate")
	}
	if k.insertMembership(fp, t1) || k.insertMembership(fp, t2) {
		t.Fatal("re-insert not detected as duplicate")
	}
	for _, want := range []Triple{t1, t2} {
		if !containsFP(k.facts, k.over, fp, want) {
			t.Errorf("triple %v lost under colliding fingerprint", want)
		}
	}
	if containsFP(k.facts, k.over, fp, t3) {
		t.Error("false positive: absent triple matched by fingerprint alone")
	}
	if len(k.over[fp]) != 1 {
		t.Errorf("overflow chain length = %d, want 1", len(k.over[fp]))
	}
}

// TestFingerprintDeterministic pins the triple hash so the on-disk
// independence of the binary format is not accidentally coupled to it.
func TestFingerprintDeterministic(t *testing.T) {
	a := Triple{S: 10, P: 20, O: 30}
	if a.fingerprint() != (Triple{S: 10, P: 20, O: 30}).fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if a.fingerprint() == (Triple{S: 30, P: 20, O: 10}).fingerprint() {
		t.Fatal("position-swapped triple hashed identically")
	}
}
