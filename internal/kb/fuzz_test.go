package kb

import (
	"bytes"
	"testing"
)

// FuzzKBReadBinary throws arbitrary bytes at the binary KB decoder —
// the same decoder recovery replays WAL-logged KB bulk loads through —
// and requires it to either reject the input with an error or produce a
// KB that round-trips: re-serializing and re-reading an accepted input
// must yield the identical triple set.
func FuzzKBReadBinary(f *testing.F) {
	seed := New(nil)
	seed.AddStrings("alpha entity", "kind", "alpha")
	seed.AddStrings("alpha entity", "id", "a-1")
	seed.AddStrings("beta entity", "kind", "beta")
	var buf bytes.Buffer
	if err := seed.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(kbMagic))
	f.Add([]byte(kbMagic + "\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // length cap: the interesting structure is small
		}
		k := New(nil)
		n, err := k.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected; no panic, no runaway allocation is the property
		}
		if n != k.Size() {
			t.Fatalf("ReadBinary reported %d added, KB holds %d", n, k.Size())
		}
		var out bytes.Buffer
		if err := k.WriteBinary(&out); err != nil {
			t.Fatalf("re-serializing an accepted KB: %v", err)
		}
		again := New(nil)
		m, err := again.ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own serialization: %v", err)
		}
		if m != k.Size() || again.Size() != k.Size() {
			t.Fatalf("round trip changed size: %d -> %d", k.Size(), again.Size())
		}
		for _, tr := range k.Triples() {
			s, p, o := k.space.StringTriple(tr)
			if !again.ContainsStrings(s, p, o) {
				t.Fatalf("round trip lost triple (%q, %q, %q)", s, p, o)
			}
		}
	})
}
