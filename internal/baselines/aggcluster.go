package baselines

import (
	"container/heap"
	"sort"

	"midas/internal/dict"
	"midas/internal/fact"
	"midas/internal/idset"
	"midas/internal/slice"
)

// AggCluster discovers slices in one fact table by agglomerative
// clustering of its entities (Section IV-B): every entity starts as its
// own cluster; at each iteration the two clusters whose merge yields the
// highest non-negative profit gain are merged. A cluster is scored by
// the profit of the slice its common properties induce (the slice
// selecting every entity of the table that carries all of the cluster's
// common properties); clusters with no common properties never merge,
// since they would describe no slice. The surviving clusters' induced
// slices with positive profit are returned, deduplicated.
//
// The complexity is O(|E|² log |E|) in the number of entities, which is
// what makes this baseline an order of magnitude slower than MIDASalg
// on large sources (Figures 10b/10d).
func AggCluster(table *fact.Table, cost slice.CostModel) []*slice.Slice {
	n := len(table.Entities)
	if n == 0 {
		return nil
	}
	ind := newInducer(table, cost)

	// Initial clusters: one per entity, as in classic agglomerative
	// clustering. (No shortcuts: the O(|E|²) pair evaluation below is
	// the algorithm's actual cost profile, which Figures 10/11 measure.)
	clusters := make([]*cluster, 0, n)
	for i := range table.Entities {
		c := &cluster{id: i, props: table.Entities[i].Props, rows: []int32{int32(i)}, active: true}
		c.profit = ind.profit(c.props)
		clusters = append(clusters, c)
	}

	// All-pairs initial gains; merges with no common properties are
	// invalid (they would describe no slice) and are not enqueued.
	h := &gainHeap{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pushGain(h, ind, clusters[i], clusters[j])
		}
	}
	heap.Init(h)

	// Merge while the best gain is non-negative.
	for h.Len() > 0 {
		e := heap.Pop(h).(gainEntry)
		a, b := clusters[e.a], clusters[e.b]
		if !a.active || !b.active || a.version != e.va || b.version != e.vb {
			continue
		}
		if e.gain < 0 {
			break
		}
		a.active, b.active = false, false
		m := &cluster{
			id:     len(clusters),
			props:  intersectProps(a.props, b.props),
			rows:   append(append([]int32{}, a.rows...), b.rows...),
			active: true,
		}
		m.profit = ind.profit(m.props)
		clusters = append(clusters, m)
		for _, c := range clusters[:m.id] {
			if c.active {
				pushHeapGain(h, ind, m, c)
			}
		}
	}

	// Induced slices of the surviving clusters, deduplicated by interned
	// property-set ID.
	outKeys := make(map[idset.SetID]struct{})
	var out []*slice.Slice
	for _, c := range clusters {
		if !c.active || len(c.props) == 0 {
			continue
		}
		key := ind.props.Intern(c.props)
		if _, dup := outKeys[key]; dup {
			continue
		}
		outKeys[key] = struct{}{}
		if sl := ind.slice(c.props); sl != nil && sl.Profit > 0 {
			out = append(out, sl)
		}
	}
	slice.ByProfitDesc(out)
	return out
}

type cluster struct {
	id      int
	props   []fact.Property // common properties of the cluster's rows
	rows    []int32
	profit  float64 // profit of the induced slice
	active  bool
	version int
}

type gainEntry struct {
	gain   float64
	a, b   int
	va, vb int
}

type gainHeap []gainEntry

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// pushGain appends a gain entry without restoring heap order (bulk
// initialization; call heap.Init afterwards).
func pushGain(h *gainHeap, ind *inducer, a, b *cluster) {
	if g, ok := mergeGain(ind, a, b); ok {
		*h = append(*h, gainEntry{gain: g, a: a.id, b: b.id, va: a.version, vb: b.version})
	}
}

// pushHeapGain pushes a gain entry maintaining heap order.
func pushHeapGain(h *gainHeap, ind *inducer, a, b *cluster) {
	if g, ok := mergeGain(ind, a, b); ok {
		heap.Push(h, gainEntry{gain: g, a: a.id, b: b.id, va: a.version, vb: b.version})
	}
}

func mergeGain(ind *inducer, a, b *cluster) (float64, bool) {
	common := intersectProps(a.props, b.props)
	if len(common) == 0 {
		return 0, false
	}
	return ind.profit(common) - a.profit - b.profit, true
}

// inducer evaluates the slice induced by a property set, with caching
// keyed by interned property-set ID.
type inducer struct {
	table *fact.Table
	cost  slice.CostModel
	post  map[fact.Property][]int32 // rows carrying each property
	props *idset.Interner[fact.Property]
	cache map[idset.SetID]inducedStats
}

type inducedStats struct {
	rows         []int32
	facts, fresh int
	profit       float64
}

func newInducer(table *fact.Table, cost slice.CostModel) *inducer {
	ind := &inducer{
		table: table,
		cost:  cost,
		post:  make(map[fact.Property][]int32),
		props: idset.NewInterner[fact.Property](),
		cache: make(map[idset.SetID]inducedStats),
	}
	for i := range table.Entities {
		for _, p := range table.Entities[i].Props {
			ind.post[p] = append(ind.post[p], int32(i))
		}
	}
	return ind
}

func (ind *inducer) stats(props []fact.Property) inducedStats {
	key := ind.props.Intern(props)
	if s, ok := ind.cache[key]; ok {
		return s
	}
	// Intersect posting lists, smallest first.
	lists := make([][]int32, len(props))
	for i, p := range props {
		lists[i] = ind.post[p]
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	rows := lists[0]
	for _, l := range lists[1:] {
		rows = intersectRows(rows, l)
		if len(rows) == 0 {
			break
		}
	}
	s := inducedStats{rows: rows}
	for _, r := range rows {
		s.facts += ind.table.Entities[r].Facts()
		s.fresh += ind.table.Entities[r].NewCount
	}
	s.profit = ind.cost.SliceProfit(s.fresh, s.facts, ind.table.TotalFacts)
	ind.cache[key] = s
	return s
}

func (ind *inducer) profit(props []fact.Property) float64 {
	if len(props) == 0 {
		return 0
	}
	return ind.stats(props).profit
}

func (ind *inducer) slice(props []fact.Property) *slice.Slice {
	s := ind.stats(props)
	if len(s.rows) == 0 {
		return nil
	}
	ents := make([]dict.ID, len(s.rows))
	for i, r := range s.rows {
		ents[i] = ind.table.Entities[r].Subject
	}
	ps := make([]fact.Property, len(props))
	copy(ps, props)
	return &slice.Slice{
		Source:   ind.table.Source,
		Props:    ps,
		Entities: idset.FromSorted(ents),
		Facts:    s.facts,
		NewFacts: s.fresh,
		Profit:   s.profit,
	}
}

func intersectProps(a, b []fact.Property) []fact.Property {
	return idset.AppendIntersect(nil, a, b)
}

func intersectRows(a, b []int32) []int32 {
	return idset.AppendIntersect(nil, a, b)
}
