package baselines

import (
	"midas/internal/fact"
	"midas/internal/hierarchy"
	"midas/internal/slice"
)

// The functions below adapt the baselines to the multi-source
// framework's Detector signature. All baselines ignore the child-slice
// seeds: none of them reasons about the source hierarchy (which is
// exactly why the framework's consolidation matters for them — without
// seeds, redundant parent/child slices are only caught by the
// consolidation phase).

// NaiveDetector returns a Detector producing NAIVE's whole-source slice.
func NaiveDetector() func(*fact.Table, []hierarchy.Seed) []*slice.Slice {
	return func(t *fact.Table, _ []hierarchy.Seed) []*slice.Slice {
		if s := Naive(t); s != nil {
			return []*slice.Slice{s}
		}
		return nil
	}
}

// GreedyDetector returns a Detector producing GREEDY's single best
// slice per source.
func GreedyDetector(cost slice.CostModel) func(*fact.Table, []hierarchy.Seed) []*slice.Slice {
	return func(t *fact.Table, _ []hierarchy.Seed) []*slice.Slice {
		if s := Greedy(t, cost); s != nil {
			return []*slice.Slice{s}
		}
		return nil
	}
}

// AggClusterDetector returns a Detector running agglomerative
// clustering per source.
func AggClusterDetector(cost slice.CostModel) func(*fact.Table, []hierarchy.Seed) []*slice.Slice {
	return func(t *fact.Table, _ []hierarchy.Seed) []*slice.Slice {
		return AggCluster(t, cost)
	}
}
