package baselines

import (
	"sort"

	"midas/internal/dict"
	"midas/internal/fact"
	"midas/internal/idset"
	"midas/internal/slice"
)

// Greedy derives at most one slice from a fact table: starting from an
// empty condition set, it repeatedly adds the (predicate, value)
// property that improves the profit of the prospective slice the most
// (the first iteration picks the single most profitable property), and
// stops when no property improves it. It returns nil when even the best
// reachable slice has non-positive profit.
func Greedy(table *fact.Table, cost slice.CostModel) *slice.Slice {
	if len(table.Entities) == 0 {
		return nil
	}
	// Current state: no conditions yet. The condition-less state is not
	// a slice (Definition 5 requires C ≠ ∅), so its profit is the zero
	// baseline the first condition must beat.
	rows := make([]int32, len(table.Entities))
	for i := range table.Entities {
		rows[i] = int32(i)
	}
	facts, newFacts := 0, 0
	var props []fact.Property
	profit := 0.0

	for {
		// Candidate properties: those held by at least one current
		// entity and not yet selected.
		cands := make(map[fact.Property]struct{})
		for _, r := range rows {
			for _, p := range table.Entities[r].Props {
				cands[p] = struct{}{}
			}
		}
		for _, p := range props {
			delete(cands, p)
		}
		ordered := make([]fact.Property, 0, len(cands))
		for p := range cands {
			ordered = append(ordered, p)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

		bestProfit := profit
		var bestProp fact.Property
		var bestRows []int32
		found := false
		for _, p := range ordered {
			nRows := make([]int32, 0, len(rows))
			nFacts, nNew := 0, 0
			for _, r := range rows {
				if table.Entities[r].HasProp(p) {
					nRows = append(nRows, r)
					nFacts += table.Entities[r].Facts()
					nNew += table.Entities[r].NewCount
				}
			}
			if len(nRows) == 0 {
				continue
			}
			pr := cost.SliceProfit(nNew, nFacts, table.TotalFacts)
			if pr > bestProfit {
				bestProfit, bestProp, bestRows, found = pr, p, nRows, true
			}
		}
		if !found {
			break
		}
		props = append(props, bestProp)
		rows = bestRows
		profit = bestProfit
		facts, newFacts = 0, 0
		for _, r := range rows {
			facts += table.Entities[r].Facts()
			newFacts += table.Entities[r].NewCount
		}
	}

	if profit <= 0 {
		return nil
	}
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	ents := make([]dict.ID, len(rows))
	for i, r := range rows {
		ents[i] = table.Entities[r].Subject
	}
	return &slice.Slice{
		Source:   table.Source,
		Props:    props,
		Entities: idset.FromSorted(ents),
		Facts:    facts,
		NewFacts: newFacts,
		Profit:   profit,
	}
}
