// Package baselines implements the three comparison methods of
// Section IV-B:
//
//   - NAIVE ranks entire web sources (not slices of their content) by
//     the number of new facts they contribute;
//   - GREEDY derives a single slice per web source by iteratively adding
//     the property that improves the profit function the most;
//   - AGGCLUSTER runs agglomerative clustering over the source's
//     entities, merging the two clusters with the highest non-negative
//     profit gain at each iteration, with the profit function as the
//     merge objective (O(|E|² log |E|)).
//
// All three expose framework.Detector-compatible entry points so they
// run under the same parallel multi-source framework as MIDASalg.
package baselines

import (
	"midas/internal/dict"
	"midas/internal/fact"
	"midas/internal/idset"
	"midas/internal/slice"
)

// Naive returns the whole-source slice of a fact table: no properties,
// every entity. Its Profit field is set to the number of new facts —
// NAIVE's ranking score — because NAIVE ranks sources by new-fact count
// rather than by the profit function.
func Naive(table *fact.Table) *slice.Slice {
	if table.TotalNew == 0 {
		return nil
	}
	ents := make([]dict.ID, len(table.Entities))
	for i := range table.Entities {
		ents[i] = table.Entities[i].Subject
	}
	return &slice.Slice{
		Source:   table.Source,
		Entities: idset.FromSorted(ents),
		Facts:    table.TotalFacts,
		NewFacts: table.TotalNew,
		Profit:   float64(table.TotalNew),
	}
}
