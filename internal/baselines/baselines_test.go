package baselines_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"midas/internal/baselines"
	"midas/internal/core"
	"midas/internal/fact"
	"midas/internal/kb"
	"midas/internal/slice"
)

// twoVerticalTable plants two clean verticals: 20 "rockets" (all new)
// and 20 "programs" (all known).
func twoVerticalTable() (*fact.Table, *kb.Space) {
	sp := kb.NewSpace()
	existing := kb.New(sp)
	var triples []kb.Triple
	for i := 0; i < 20; i++ {
		s := fmt.Sprintf("rocket%d", i)
		triples = append(triples,
			sp.Intern(s, "category", "rocket"),
			sp.Intern(s, "sponsor", "NASA"),
			sp.Intern(s, "serial", fmt.Sprintf("r-%d", i)))
	}
	for i := 0; i < 20; i++ {
		s := fmt.Sprintf("program%d", i)
		ts := []kb.Triple{
			sp.Intern(s, "category", "program"),
			sp.Intern(s, "sponsor", "NASA"),
		}
		for _, t := range ts {
			existing.Add(t)
		}
		triples = append(triples, ts...)
	}
	return fact.Build("src", sp, triples, existing), sp
}

func TestNaive(t *testing.T) {
	table, _ := twoVerticalTable()
	s := baselines.Naive(table)
	if s == nil {
		t.Fatal("naive returned nil on a source with new facts")
	}
	if s.Facts != table.TotalFacts || s.NewFacts != table.TotalNew {
		t.Errorf("whole-source stats = %d/%d, want %d/%d", s.Facts, s.NewFacts, table.TotalFacts, table.TotalNew)
	}
	if len(s.Props) != 0 {
		t.Error("naive slice should have no properties")
	}
	if s.Profit != float64(table.TotalNew) {
		t.Errorf("naive ranking score = %f, want new-fact count %d", s.Profit, table.TotalNew)
	}
}

func TestNaiveNothingNew(t *testing.T) {
	sp := kb.NewSpace()
	existing := kb.New(sp)
	tr := sp.Intern("a", "b", "c")
	existing.Add(tr)
	table := fact.Build("src", sp, []kb.Triple{tr}, existing)
	if s := baselines.Naive(table); s != nil {
		t.Error("naive should skip sources with no new facts")
	}
}

// TestGreedyFindsBestSingleSlice: greedy must isolate the fresh rocket
// vertical, not the known programs and not the conflating sponsor
// property.
func TestGreedyFindsBestSingleSlice(t *testing.T) {
	table, sp := twoVerticalTable()
	s := baselines.Greedy(table, slice.ExampleCostModel())
	if s == nil {
		t.Fatal("greedy found nothing")
	}
	if s.NewFacts != 60 {
		t.Errorf("new facts = %d, want 60 (the rocket vertical)", s.NewFacts)
	}
	has := false
	for _, p := range s.Props {
		if p.Format(sp) == "category = rocket" {
			has = true
		}
	}
	if !has {
		t.Errorf("greedy slice %v should include category = rocket", s.Props)
	}
}

func TestGreedyEmptyAndUnprofitable(t *testing.T) {
	sp := kb.NewSpace()
	if s := baselines.Greedy(fact.Build("src", sp, nil, nil), slice.DefaultCostModel()); s != nil {
		t.Error("greedy on empty table should return nil")
	}
	// One new fact cannot pay the training cost.
	table := fact.Build("src", sp, []kb.Triple{sp.Intern("a", "b", "c")}, nil)
	if s := baselines.Greedy(table, slice.DefaultCostModel()); s != nil {
		t.Error("greedy should return nil when nothing is profitable")
	}
}

// TestGreedyRarelyBeatsMIDAS: the slice discovery problem is
// APX-complete, so MIDASalg's greedy traversal can occasionally be
// out-tiled even by GREEDY's single slice on adversarial random tables;
// the paper's claim is aggregate. Over many random sources GREEDY must
// win only rarely and narrowly, and never on aggregate.
func TestGreedyRarelyBeatsMIDAS(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cost := slice.ExampleCostModel()
	wins, trials := 0, 120
	var midasSum, greedySum float64
	for trial := 0; trial < trials; trial++ {
		sp := kb.NewSpace()
		existing := kb.New(sp)
		var triples []kb.Triple
		for e := 0; e < 4+rng.Intn(20); e++ {
			for p := 0; p < 1+rng.Intn(4); p++ {
				tr := sp.Intern(
					fmt.Sprintf("e%d", e),
					fmt.Sprintf("p%d", p),
					fmt.Sprintf("v%d", rng.Intn(3)))
				triples = append(triples, tr)
				if rng.Float64() < 0.3 {
					existing.Add(tr)
				}
			}
		}
		table := fact.Build("src", sp, triples, existing)
		g := baselines.Greedy(table, cost)
		res := core.DiscoverTable(table, core.Options{Cost: cost})
		gp := 0.0
		if g != nil {
			gp = g.Profit
		}
		midasSum += res.TotalProfit
		greedySum += gp
		if gp > res.TotalProfit+1e-9 {
			wins++
			if gp > res.TotalProfit+cost.Fp+1e-9 {
				t.Errorf("trial %d: greedy %f beats midas %f by more than one f_p", trial, gp, res.TotalProfit)
			}
		}
	}
	if wins*10 > trials {
		t.Errorf("greedy won %d of %d trials; want < 10%%", wins, trials)
	}
	if midasSum < greedySum {
		t.Errorf("aggregate: midas %f below greedy %f", midasSum, greedySum)
	}
}

func TestAggClusterSeparatesVerticals(t *testing.T) {
	table, sp := twoVerticalTable()
	out := baselines.AggCluster(table, slice.ExampleCostModel())
	if len(out) == 0 {
		t.Fatal("aggcluster found nothing")
	}
	// The rocket vertical must be recovered; the known programs are
	// unprofitable and must not be.
	foundRocket := false
	for _, s := range out {
		desc := s.Description(sp)
		if s.NewFacts == 60 {
			foundRocket = true
		}
		if desc == "category = program AND sponsor = NASA" {
			t.Error("aggcluster reported the fully-known program vertical")
		}
	}
	if !foundRocket {
		for _, s := range out {
			t.Logf("got: %s (new=%d, profit=%.2f)", s.Description(sp), s.NewFacts, s.Profit)
		}
		t.Error("aggcluster missed the rocket vertical")
	}
}

func TestAggClusterEmptyTable(t *testing.T) {
	sp := kb.NewSpace()
	if out := baselines.AggCluster(fact.Build("src", sp, nil, nil), slice.DefaultCostModel()); out != nil {
		t.Error("aggcluster on empty table should return nil")
	}
}

// TestAggClusterSlicesAreValid property: every reported slice's
// entities carry all its properties and profits are positive.
func TestAggClusterSlicesAreValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := kb.NewSpace()
		var triples []kb.Triple
		for e := 0; e < 5+rng.Intn(25); e++ {
			for p := 0; p < 1+rng.Intn(3); p++ {
				triples = append(triples, sp.Intern(
					fmt.Sprintf("e%d", e),
					fmt.Sprintf("p%d", p),
					fmt.Sprintf("v%d", rng.Intn(2))))
			}
		}
		table := fact.Build("src", sp, triples, nil)
		rows := make(map[int32]int, len(table.Entities))
		for i := range table.Entities {
			rows[table.Entities[i].Subject] = i
		}
		for _, s := range baselines.AggCluster(table, slice.ExampleCostModel()) {
			if s.Profit <= 0 || len(s.Props) == 0 || s.Entities.Empty() {
				return false
			}
			for _, subj := range s.Entities.Values() {
				e := &table.Entities[rows[subj]]
				for _, p := range s.Props {
					if !e.HasProp(p) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDetectorsIgnoreSeeds(t *testing.T) {
	table, _ := twoVerticalTable()
	cost := slice.ExampleCostModel()
	if got := baselines.NaiveDetector()(table, nil); len(got) != 1 {
		t.Errorf("naive detector returned %d slices", len(got))
	}
	if got := baselines.GreedyDetector(cost)(table, nil); len(got) != 1 {
		t.Errorf("greedy detector returned %d slices", len(got))
	}
	if got := baselines.AggClusterDetector(cost)(table, nil); len(got) == 0 {
		t.Error("aggcluster detector returned nothing")
	}
}
