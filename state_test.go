// Differential proof of the session state block: a session restored
// with ReadState must be fingerprint-identical to the one WriteState
// serialized, and must stay lockstep-identical — fingerprints and
// discovery results slice-for-slice — as both sessions are driven
// through the same further mutations.
package midas_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"midas"
	"midas/internal/datagen"
)

func TestStateRoundTrip(t *testing.T) {
	world := datagen.ReVerbSlim(datagen.SlimParams{Domains: 8, GoodDomains: 4, Seed: 11})
	facts := worldFacts(world)
	mainBatch, heldA, heldB := splitHoldback(facts)
	if len(heldA) == 0 || len(heldB) == 0 {
		t.Fatal("holdback split produced empty deltas")
	}

	live := midas.NewSession(nil, nil)
	live.AddFacts(mainBatch...)
	res, err := live.DiscoverContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) == 0 {
		t.Fatal("no slices discovered")
	}
	// Absorb twice: the duplicate adds nothing but advances the epoch
	// past the KB size, which the state block must capture exactly.
	if live.Absorb(res.Slices[0]) == 0 {
		t.Fatal("absorb added nothing")
	}
	live.Absorb(res.Slices[0])
	if live.KBEpoch() <= uint64(live.KB().Size()) {
		t.Fatalf("epoch %d should exceed KB size %d after duplicate absorb",
			live.KBEpoch(), live.KB().Size())
	}

	var buf bytes.Buffer
	if err := live.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := midas.ReadState(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}

	check := func(label string) {
		t.Helper()
		if lf, rf := live.Fingerprint(), restored.Fingerprint(); lf != rf {
			t.Fatalf("%s: fingerprint %016x live vs %016x restored", label, lf, rf)
		}
		if le, re := live.KBEpoch(), restored.KBEpoch(); le != re {
			t.Fatalf("%s: epoch %d live vs %d restored", label, le, re)
		}
		if ls, rs := live.KB().Size(), restored.KB().Size(); ls != rs {
			t.Fatalf("%s: KB size %d live vs %d restored", label, ls, rs)
		}
		lr, err := live.DiscoverContext(context.Background())
		if err != nil {
			t.Fatalf("%s: live discover: %v", label, err)
		}
		rr, err := restored.DiscoverContext(context.Background())
		if err != nil {
			t.Fatalf("%s: restored discover: %v", label, err)
		}
		if !reflect.DeepEqual(lr.Slices, rr.Slices) {
			t.Fatalf("%s: discovery diverged\nlive:     %+v\nrestored: %+v",
				label, lr.Slices, rr.Slices)
		}
	}
	check("restore")

	// Drive both sessions through identical further mutations: new IDs
	// must be assigned identically on both sides.
	live.AddFacts(heldA...)
	restored.AddFacts(heldA...)
	check("facts-delta")

	lr, _ := live.DiscoverContext(context.Background())
	if len(lr.Slices) == 0 {
		t.Fatal("no slices after delta")
	}
	sl := lr.Slices[len(lr.Slices)-1]
	if a, b := live.Absorb(sl), restored.Absorb(sl); a != b {
		t.Fatalf("absorb added %d live vs %d restored", a, b)
	}
	live.AddFacts(heldB...)
	restored.AddFacts(heldB...)
	check("absorb-and-more-facts")
}

// TestStateEmptySession pins the degenerate case recovery hits when a
// crash lands right after session creation.
func TestStateEmptySession(t *testing.T) {
	var buf bytes.Buffer
	if err := midas.NewSession(nil, nil).WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := midas.ReadState(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fp, want := restored.Fingerprint(), midas.NewSession(nil, nil).Fingerprint(); fp != want {
		t.Fatalf("empty restored fingerprint %016x, want %016x", fp, want)
	}
}

// TestStateCorrupt: decoding must reject, not panic on, damaged blocks.
func TestStateCorrupt(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(sessionCorpusFacts()...)
	var buf bytes.Buffer
	if err := sess.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 2, len(full) / 3, len(full) - 1} {
		if _, err := midas.ReadState(bytes.NewReader(full[:cut]), nil); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
	for _, flip := range []int{4, len(full) / 2} {
		mut := append([]byte(nil), full...)
		mut[flip] ^= 0xff
		// A flipped byte may or may not be structurally detectable, but
		// it must never panic; most positions fail magic/length checks.
		midas.ReadState(bytes.NewReader(mut), nil)
	}
}
