// Differential proof of the delta-aware discovery path: a Session's
// incremental Discover — after arbitrary interleavings of AddFacts,
// Absorb, and untracked KB writes — must be result-identical,
// slice-for-slice including profits, to a from-scratch Discover over
// the same corpus and KB. The suite runs the Slim corpus generators at
// reduced scale for the interleavings and at full paper scale for the
// reuse-ratio acceptance bound.
package midas_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"midas"
	"midas/internal/datagen"
	"midas/internal/source"
)

// worldFacts resolves a generated world's interned corpus back to the
// public string form a Session ingests.
func worldFacts(w *datagen.World) []midas.Fact {
	out := make([]midas.Fact, 0, len(w.Corpus.Facts))
	for _, e := range w.Corpus.Facts {
		s, p, o := w.Corpus.Space.StringTriple(e.Triple)
		out = append(out, midas.Fact{
			Subject: s, Predicate: p, Object: o,
			Confidence: float64(e.Conf),
			URL:        w.Corpus.URLs.String(e.URL),
		})
	}
	return out
}

// splitHoldback partitions facts into a main batch and the facts of two
// sources held back to replay later as deltas. Sources are chosen
// deterministically (first two distinct normalized sources in corpus
// order).
func splitHoldback(facts []midas.Fact) (main, heldA, heldB []midas.Fact) {
	var srcA, srcB string
	for _, f := range facts {
		src := source.Normalize(f.URL)
		switch {
		case srcA == "" || src == srcA:
			srcA = src
			heldA = append(heldA, f)
		case srcB == "" || src == srcB:
			srcB = src
			heldB = append(heldB, f)
		default:
			main = append(main, f)
		}
	}
	return main, heldA, heldB
}

func TestIncrementalDiscoverEquivalence(t *testing.T) {
	worlds := []struct {
		name  string
		world *datagen.World
	}{
		{"reverb-slim", datagen.ReVerbSlim(datagen.SlimParams{Domains: 10, GoodDomains: 5, Seed: 42})},
		{"nell-slim", datagen.NELLSlim(datagen.SlimParams{Domains: 10, GoodDomains: 5, Seed: 43})},
	}
	workerSet := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerSet = append(workerSet, n)
	}
	for _, tc := range worlds {
		facts := worldFacts(tc.world)
		for _, workers := range workerSet {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				opts := &midas.Options{Workers: workers}
				sess := midas.NewSession(nil, opts)
				var log []midas.Fact
				add := func(fs []midas.Fact) {
					sess.AddFacts(fs...)
					log = append(log, fs...)
				}
				// check runs the session's incremental discovery and
				// compares it against a from-scratch reference over an
				// identical corpus and the session's live KB.
				check := func(label string) *midas.Result {
					t.Helper()
					res, err := sess.DiscoverContext(context.Background())
					if err != nil {
						t.Fatalf("%s: discover: %v", label, err)
					}
					ref := midas.NewCorpus(sess.KB())
					for _, f := range log {
						ref.Add(f)
					}
					refRes := midas.Discover(ref, sess.KB(), opts)
					if len(res.Slices) != len(refRes.Slices) {
						t.Fatalf("%s: %d slices incremental vs %d from scratch",
							label, len(res.Slices), len(refRes.Slices))
					}
					for i := range res.Slices {
						if !reflect.DeepEqual(res.Slices[i], refRes.Slices[i]) {
							t.Fatalf("%s: slice %d differs\nincremental: %+v\nfrom scratch: %+v",
								label, i, res.Slices[i], refRes.Slices[i])
						}
					}
					return res
				}

				mainBatch, heldA, heldB := splitHoldback(facts)
				if len(heldA) == 0 || len(heldB) == 0 {
					t.Fatal("holdback split produced empty deltas")
				}

				add(mainBatch)
				r := check("prime")
				if r.SourcesReused != 0 {
					t.Errorf("prime run reused %d sources, want 0", r.SourcesReused)
				}

				r = check("steady")
				if r.SourcesProcessed != 0 || r.SourcesReused == 0 {
					t.Errorf("steady rerun: processed %d reused %d, want 0/>0",
						r.SourcesProcessed, r.SourcesReused)
				}

				add(heldA)
				r = check("facts-delta")
				if r.SourcesReused == 0 {
					t.Error("facts delta must reuse the untouched sources")
				}

				if len(r.Slices) == 0 {
					t.Fatal("no slices to absorb")
				}
				top := r.Slices[0]
				if sess.Absorb(top) == 0 {
					t.Fatalf("absorbing %q added nothing", top.Source)
				}
				r = check("absorb")
				if r.SourcesReused == 0 {
					t.Error("absorb must keep sources without the absorbed facts reused")
				}

				// Absorbing the same slice again adds no triples but
				// still bumps the KB epoch; the empty delta proves the
				// KB answer set unchanged, so everything is reused.
				if n := sess.Absorb(top); n != 0 {
					t.Fatalf("duplicate absorb added %d facts", n)
				}
				r = check("absorb-dup")
				if r.SourcesProcessed != 0 {
					t.Errorf("duplicate absorb forced %d re-detections, want 0", r.SourcesProcessed)
				}

				// Mixed mutation: new facts on one source plus another
				// absorption before the next discovery.
				add(heldB)
				if len(r.Slices) > 1 {
					sess.Absorb(r.Slices[len(r.Slices)-1])
				}
				check("mixed")

				// An untracked KB write (through KB()) breaks the delta
				// trail: the next discovery must fall back to a full
				// rebuild — and still match from scratch.
				sess.KB().Add("untracked subject", "came from", "outside the session")
				r = check("untracked-kb-write")
				if r.SourcesReused != 0 {
					t.Errorf("untracked KB write reused %d sources, want 0 (trail broken)", r.SourcesReused)
				}

				check("recovered")
			})
		}
	}
}

// TestIncrementalReuseRatio pins the acceptance bound: on the paper's
// 100-domain Slim corpus, re-discovering after a delta confined to one
// source must answer at least 90% of the sources from the prior run.
func TestIncrementalReuseRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Slim corpus")
	}
	w := datagen.ReVerbSlim(datagen.DefaultSlimParams(7))
	facts := worldFacts(w)
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(facts...)
	if _, err := sess.DiscoverContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	sess.AddFacts(midas.Fact{
		Subject: "delta entity", Predicate: "kind", Object: "delta kind",
		Confidence: 0.9, URL: facts[0].URL,
	})
	res, err := sess.DiscoverContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	total := res.SourcesReused + res.SourcesProcessed
	if total == 0 {
		t.Fatal("no sources seen")
	}
	ratio := float64(res.SourcesReused) / float64(total)
	if ratio < 0.9 {
		t.Fatalf("reuse ratio %.3f (%d/%d) below the 0.9 floor",
			ratio, res.SourcesReused, total)
	}
}

// TestFingerprintAbsorbEpoch pins the epoch fold: an Absorb that adds
// only already-known triples leaves the KB size unchanged but must
// still move the session fingerprint, or the serve cache would return
// a stale result for a session that saw a write.
func TestFingerprintAbsorbEpoch(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(sessionCorpusFacts()...)
	res := sess.Discover()
	if len(res.Slices) == 0 {
		t.Fatal("no slices discovered")
	}
	if sess.Absorb(res.Slices[0]) == 0 {
		t.Fatal("first absorb added nothing")
	}
	fp1 := sess.Fingerprint()
	if n := sess.Absorb(res.Slices[0]); n != 0 {
		t.Fatalf("duplicate absorb added %d facts", n)
	}
	if fp2 := sess.Fingerprint(); fp2 == fp1 {
		t.Fatal("duplicate absorb (size unchanged) must still move the fingerprint")
	}
}

// TestDirtySourceTracking covers the advisory mutation signals:
// DirtySources accumulates touched sources and clears on a completed
// discovery; SourceFingerprints moves only for touched sources.
func TestDirtySourceTracking(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(sessionCorpusFacts()...)
	if len(sess.DirtySources()) == 0 {
		t.Fatal("AddFacts must dirty its sources")
	}
	before := sess.SourceFingerprints()
	if len(before) == 0 {
		t.Fatal("no source fingerprints")
	}
	sess.Discover()
	if ds := sess.DirtySources(); len(ds) != 0 {
		t.Fatalf("completed discovery must clear dirty sources, got %v", ds)
	}

	touched := midas.Fact{
		Subject: "fresh entity", Predicate: "kind", Object: "fresh kind",
		Confidence: 0.9, URL: "http://site0.example.com/wiki/e0.htm",
	}
	sess.AddFacts(touched)
	want := source.Normalize(touched.URL)
	ds := sess.DirtySources()
	if len(ds) != 1 || ds[0] != want {
		t.Fatalf("dirty sources %v, want [%s]", ds, want)
	}
	after := sess.SourceFingerprints()
	changed := 0
	for src, fp := range before {
		if after[src] != fp {
			changed++
			if src != want {
				t.Errorf("untouched source %s changed fingerprint", src)
			}
		}
	}
	if changed != 1 {
		t.Errorf("%d source fingerprints changed, want exactly 1", changed)
	}
}
