module midas

go 1.23
