module midas

go 1.22
