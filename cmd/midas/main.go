// Command midas runs web-source slice discovery over a fact file.
//
// Input facts are tab-separated lines:
//
//	subject <TAB> predicate <TAB> object <TAB> confidence <TAB> url
//
// (confidence and url optional; missing confidence defaults to 1.0,
// missing url groups everything as one source), or W3C N-Quads when the
// file ends in .nq/.nt (the graph term is the page URL). The existing
// knowledge base, if any, is a TSV of subject/predicate/object lines, a
// .bin file from midas-datagen, or N-Triples (.nt).
//
// Usage:
//
//	midas -facts extractions.tsv [-kb existing.tsv] [-top 20]
//	      [-min-conf 0.7] [-fp 10 -fc 0.001 -fd 0.01 -fv 0.1]
//	      [-stats run-stats.json] [-listen localhost:9090]
//	      [-trace run-trace.json] [-pprof localhost:6060]
//
// -listen serves live telemetry while the run is in flight: /metrics
// (OpenMetrics text for any Prometheus-compatible scraper), /debug/vars
// (expvar JSON), and /debug/pprof. -trace records spans for every
// pipeline phase and writes Chrome trace-event JSON on exit — load it
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"midas"
)

func main() {
	var (
		factsPath = flag.String("facts", "", "TSV file of extracted facts (required)")
		kbPath    = flag.String("kb", "", "TSV file of existing knowledge-base facts")
		top       = flag.Int("top", 20, "number of slices to report (0 = all)")
		minConf   = flag.Float64("min-conf", 0.7, "drop extractions at or below this confidence")
		fp        = flag.Float64("fp", 10, "per-slice training cost")
		fc        = flag.Float64("fc", 0.001, "per-fact crawling cost")
		fd        = flag.Float64("fd", 0.01, "per-fact de-duplication cost")
		fv        = flag.Float64("fv", 0.1, "per-new-fact validation cost")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		entities  = flag.Bool("entities", false, "list each slice's entities")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON (machine-readable, for midas-eval)")
		report    = flag.String("report", "", "write a report file (.md or .csv by extension)")
		budget    = flag.Int("budget", 0, "keep at most this many slices (0 = all)")
		statsPath = flag.String("stats", "", "write a JSON metrics snapshot (phase timings, pruning counters) to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		listen    = flag.String("listen", "", "serve live telemetry (/metrics, /debug/vars, /debug/pprof) on this address (e.g. localhost:9090)")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON of the run's spans to this file (load in Perfetto)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error|off")
		logFormat = flag.String("log-format", "logfmt", "log encoding: logfmt|json")
	)
	flag.Parse()
	if err := midas.ConfigureLogging(os.Stderr, *logLevel, *logFormat); err != nil {
		fatal(err)
	}
	if *factsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	servePprof(*pprofAddr)
	if *listen != "" {
		addr, err := midas.DefaultMetrics().Serve(*listen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving live telemetry on http://%s/metrics\n", addr)
	}
	var tracer *midas.Tracer
	if *tracePath != "" {
		tracer = midas.NewTracer()
	}

	existing := midas.NewKB()
	if *kbPath != "" {
		f, err := os.Open(*kbPath)
		if err != nil {
			fatal(err)
		}
		var n int
		switch {
		case strings.HasSuffix(*kbPath, ".bin"):
			n, err = existing.LoadBinary(f)
		case strings.HasSuffix(*kbPath, ".nt") || strings.HasSuffix(*kbPath, ".nq"):
			n, err = existing.LoadNTriples(f)
		default:
			n, err = existing.LoadTSV(f)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d KB facts from %s\n", n, *kbPath)
	}

	corpus := midas.NewCorpus(existing)
	switch {
	case strings.HasSuffix(*factsPath, ".nq") || strings.HasSuffix(*factsPath, ".nt"):
		f, err := os.Open(*factsPath)
		if err != nil {
			fatal(err)
		}
		_, err = corpus.LoadNQuads(f, 1.0)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case strings.HasSuffix(*factsPath, ".bin"):
		f, err := os.Open(*factsPath)
		if err != nil {
			fatal(err)
		}
		_, err = corpus.LoadBinary(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		if err := loadFacts(corpus, *factsPath); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "loaded %d extracted facts from %s\n", corpus.Len(), *factsPath)

	res := midas.Discover(corpus, existing, &midas.Options{
		Cost:          midas.CostModel{Fp: *fp, Fc: *fc, Fd: *fd, Fv: *fv},
		Workers:       *workers,
		MinConfidence: *minConf,
		MaxSlices:     *budget,
		Trace:         tracer,
	})
	fmt.Fprintf(os.Stderr, "processed %d sources in %d rounds; %d slices\n",
		res.SourcesProcessed, res.Rounds, len(res.Slices))

	if *statsPath != "" {
		if err := midas.DefaultMetrics().WriteFile(*statsPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *statsPath)
	}
	if tracer != nil {
		if err := tracer.WriteFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s\n", *tracePath)
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*report, ".csv") {
			err = res.WriteCSVReport(f)
		} else {
			err = res.WriteMarkdownReport(f, 20)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote report to %s\n", *report)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tProfit\tNew\tFacts\tSource\tSlice")
	for i, s := range res.Slices {
		if *top > 0 && i >= *top {
			break
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%d\t%d\t%s\t%s\n", i+1, s.Profit, s.NewFacts, s.Facts, s.Source, s.Description)
		if *entities {
			fmt.Fprintf(tw, "\t\t\t\t\tentities: %s\n", strings.Join(s.Entities, ", "))
		}
	}
	tw.Flush()
}

func loadFacts(corpus *midas.Corpus, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) < 3 {
			return fmt.Errorf("%s:%d: want ≥3 tab-separated fields, got %d", path, line, len(parts))
		}
		fact := midas.Fact{Subject: parts[0], Predicate: parts[1], Object: parts[2], Confidence: 1}
		if len(parts) > 3 && parts[3] != "" {
			c, err := strconv.ParseFloat(parts[3], 64)
			if err != nil {
				return fmt.Errorf("%s:%d: bad confidence %q", path, line, parts[3])
			}
			fact.Confidence = c
		}
		if len(parts) > 4 {
			fact.URL = parts[4]
		}
		corpus.Add(fact)
	}
	return sc.Err()
}

// servePprof exposes net/http/pprof on addr (no-op when addr is empty)
// so long discovery runs can be profiled live.
func servePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "midas: pprof:", err)
		}
	}()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "midas:", err)
	os.Exit(1)
}
