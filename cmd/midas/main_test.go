package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"midas"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadFacts(t *testing.T) {
	path := writeTemp(t, "facts.tsv", strings.Join([]string{
		"Atlas\tsponsor\tNASA\t0.9\thttp://a.com/x.htm",
		"# a comment line",
		"",
		"Castor\tsponsor\tNASA", // confidence and URL optional
		"Gemini\tcategory\tprogram\t0.5",
	}, "\n")+"\n")
	corpus := midas.NewCorpus(nil)
	if err := loadFacts(corpus, path); err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != 3 {
		t.Errorf("facts = %d, want 3", corpus.Len())
	}
}

func TestLoadFactsErrors(t *testing.T) {
	tooFew := writeTemp(t, "short.tsv", "only\ttwo\n")
	if err := loadFacts(midas.NewCorpus(nil), tooFew); err == nil {
		t.Error("want field-count error")
	}
	badConf := writeTemp(t, "conf.tsv", "a\tb\tc\tnot-a-number\tu\n")
	if err := loadFacts(midas.NewCorpus(nil), badConf); err == nil {
		t.Error("want confidence parse error")
	}
	if err := loadFacts(midas.NewCorpus(nil), filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Error("want open error")
	}
}
