// Command midas-serve runs the MIDAS discovery engine as a long-lived
// HTTP service: named sessions, KB and fact ingestion, asynchronous
// discovery jobs with result caching, and slice absorption, with the
// live-telemetry endpoints on the same listener.
//
// Usage:
//
//	midas-serve [-listen :8080] [-max-discoveries N]
//	      [-request-timeout 30s] [-job-timeout 0]
//	      [-read-timeout 0] [-idle-timeout 2m]
//	      [-data-dir DIR] [-fsync batch] [-snapshot-bytes 4194304]
//	      [-drain-grace 0s] [-drain-timeout 30s]
//	      [-log-level info] [-log-format logfmt]
//	      [-stats final-stats.json]
//
// API (JSON; see README.md "Serving" for the full table):
//
//	POST   /api/sessions                  create a session
//	POST   /api/sessions/{s}/kb           load KB (TSV, ?format=binary|ntriples)
//	POST   /api/sessions/{s}/facts        add facts (JSON array or TSV)
//	POST   /api/sessions/{s}/discover     start a discovery job (?wait=true)
//	GET    /api/jobs/{id}                 poll a job
//	GET    /api/jobs/{id}/result          fetch the discovered slices
//	POST   /api/sessions/{s}/absorb       absorb result slices into the KB
//	GET    /api/sessions/{s}/progress     KB size and corpus coverage
//
// With -data-dir set, sessions are durable: every confirmed mutation is
// written to a per-session write-ahead log before the 2xx ack (-fsync
// picks the group-commit policy), compacting snapshots bound recovery
// time, and on startup every prior session is restored and verified
// against its stamped fingerprint — sessions that fail verification are
// quarantined under <data-dir>/quarantine and logged, never served and
// never deleted. Recovered sessions report "recovered": true in
// GET /api/sessions until their first post-restart mutation... and after
// it too: the flag marks provenance of this process's copy, not
// staleness.
//
// On SIGTERM/SIGINT the service first flips /readyz to 503 and keeps
// serving for -drain-grace (so load balancers observe the readiness
// drop and stop routing before the listener closes), then drains
// running discovery jobs (canceling them if -drain-timeout expires;
// canceled jobs finish with partial results), snapshots every durable
// session, writes the final metrics snapshot to -stats — runtime gauges
// included — and exits 0.
//
// Structured logs (access lines, job lifecycle) go to stderr; set
// -log-format json to pipe them through jq, -log-level debug to also
// log probe traffic, -log-level off to silence.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"midas/internal/obs"
	"midas/internal/serve"
	"midas/internal/store"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "address to serve the API and telemetry on")
		maxDisc      = flag.Int("max-discoveries", 0, "max concurrent discovery jobs before shedding with 429 (0 = GOMAXPROCS)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (sync discoveries return partial results at it; -1s disables)")
		jobTimeout   = flag.Duration("job-timeout", 0, "async discovery job budget (0 = unlimited)")
		readTimeout  = flag.Duration("read-timeout", 0, "max duration for reading an entire request including the body (0 = header timeout only)")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "how long a keep-alive connection may sit idle before the server closes it")
		dataDir      = flag.String("data-dir", "", "durable session state directory: write-ahead logs, snapshots, crash recovery (empty = memory only)")
		fsyncPolicy  = flag.String("fsync", "batch", "WAL durability policy: always (fsync per mutation) | batch (group commit) | none (page cache only)")
		snapBytes    = flag.Int64("snapshot-bytes", 4<<20, "per-session WAL size that triggers a compacting snapshot")
		drainGrace   = flag.Duration("drain-grace", 0, "keep serving this long after readiness drops, so routers observe /readyz 503 before the listener closes")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs before canceling them")
		statsPath    = flag.String("stats", "", "write a final JSON metrics snapshot to this file on shutdown")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug|info|warn|error|off")
		logFormat    = flag.String("log-format", "logfmt", "log encoding: logfmt|json")
	)
	flag.Parse()
	if err := obs.InstallDefaultLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "midas-serve:", err)
		os.Exit(1)
	}

	reg := obs.Default()
	rc := obs.NewRuntimeCollector(reg, 10*time.Second)

	var st *store.Store
	if *dataDir != "" {
		policy, err := store.ParsePolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "midas-serve:", err)
			os.Exit(1)
		}
		st, err = store.Open(store.Options{
			Dir:           *dataDir,
			Fsync:         policy,
			SnapshotBytes: *snapBytes,
			Registry:      reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "midas-serve: opening data dir:", err)
			os.Exit(1)
		}
	}

	srv := serve.New(serve.Options{
		MaxInFlight:    *maxDisc,
		RequestTimeout: *reqTimeout,
		JobTimeout:     *jobTimeout,
		Registry:       reg,
		Store:          st,
	})

	// Recovery runs before the listener binds: by the time /readyz can
	// say yes, every surviving session answers with its pre-crash state.
	if st != nil {
		rec, err := srv.Recover(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "midas-serve: recovering sessions:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "midas-serve: recovered %d session(s) from %s", len(rec.Sessions), *dataDir)
		if len(rec.Quarantined) > 0 {
			fmt.Fprintf(os.Stderr, " (%d quarantined — inspect %s/quarantine)", len(rec.Quarantined), *dataDir)
		}
		if len(rec.Dropped) > 0 {
			fmt.Fprintf(os.Stderr, " (%d unacknowledged creation(s) dropped)", len(rec.Dropped))
		}
		fmt.Fprintln(os.Stderr)
	}

	// ReadHeaderTimeout bounds how long a connection may sit between
	// accept and a complete request header, so idle or trickling clients
	// cannot pin accept slots indefinitely (Slowloris); ReadTimeout
	// extends that bound over the body, and IdleTimeout reclaims
	// keep-alive connections parked between requests.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "midas-serve:", err)
		os.Exit(1)
	}
	srv.SetReady(true)
	fmt.Fprintf(os.Stderr, "midas-serve: serving on http://%s/ (API under /api, telemetry at /metrics)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "midas-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Shutdown sequence: readiness drops first and the listener keeps
	// serving for the grace window — routers see /readyz 503 (and
	// /healthz still 200) and stop sending traffic. Then drain running
	// jobs with the listener still open (so probes and job polls keep
	// answering mid-drain), snapshot and close the store, close the
	// listener, and flush the final snapshot with a last runtime-gauge
	// sample.
	fmt.Fprintln(os.Stderr, "midas-serve: draining...")
	srv.SetReady(false)
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	inFlight := srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
	}
	srv.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "midas-serve: closing store:", err)
		}
	}
	rc.Stop()
	if *statsPath != "" {
		if err := reg.WriteFile(*statsPath); err != nil {
			fmt.Fprintln(os.Stderr, "midas-serve: writing final stats:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "midas-serve: drained cleanly (%d jobs were in flight)\n", inFlight)
}
