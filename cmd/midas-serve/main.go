// Command midas-serve runs the MIDAS discovery engine as a long-lived
// HTTP service: named sessions, KB and fact ingestion, asynchronous
// discovery jobs with result caching, and slice absorption, with the
// live-telemetry endpoints on the same listener.
//
// Usage:
//
//	midas-serve [-listen :8080] [-max-discoveries N]
//	      [-request-timeout 30s] [-job-timeout 0]
//	      [-drain-grace 0s] [-drain-timeout 30s]
//	      [-log-level info] [-log-format logfmt]
//	      [-stats final-stats.json]
//
// API (JSON; see README.md "Serving" for the full table):
//
//	POST   /api/sessions                  create a session
//	POST   /api/sessions/{s}/kb           load KB (TSV, ?format=binary|ntriples)
//	POST   /api/sessions/{s}/facts        add facts (JSON array or TSV)
//	POST   /api/sessions/{s}/discover     start a discovery job (?wait=true)
//	GET    /api/jobs/{id}                 poll a job
//	GET    /api/jobs/{id}/result          fetch the discovered slices
//	POST   /api/sessions/{s}/absorb       absorb result slices into the KB
//	GET    /api/sessions/{s}/progress     KB size and corpus coverage
//
// On SIGTERM/SIGINT the service first flips /readyz to 503 and keeps
// serving for -drain-grace (so load balancers observe the readiness
// drop and stop routing before the listener closes), then drains
// running discovery jobs (canceling them if -drain-timeout expires;
// canceled jobs finish with partial results), writes the final metrics
// snapshot to -stats — runtime gauges included — and exits 0.
//
// Structured logs (access lines, job lifecycle) go to stderr; set
// -log-format json to pipe them through jq, -log-level debug to also
// log probe traffic, -log-level off to silence.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"midas/internal/obs"
	"midas/internal/serve"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "address to serve the API and telemetry on")
		maxDisc      = flag.Int("max-discoveries", 0, "max concurrent discovery jobs before shedding with 429 (0 = GOMAXPROCS)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (sync discoveries return partial results at it; -1s disables)")
		jobTimeout   = flag.Duration("job-timeout", 0, "async discovery job budget (0 = unlimited)")
		drainGrace   = flag.Duration("drain-grace", 0, "keep serving this long after readiness drops, so routers observe /readyz 503 before the listener closes")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs before canceling them")
		statsPath    = flag.String("stats", "", "write a final JSON metrics snapshot to this file on shutdown")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug|info|warn|error|off")
		logFormat    = flag.String("log-format", "logfmt", "log encoding: logfmt|json")
	)
	flag.Parse()
	if err := obs.InstallDefaultLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "midas-serve:", err)
		os.Exit(1)
	}

	reg := obs.Default()
	rc := obs.NewRuntimeCollector(reg, 10*time.Second)
	srv := serve.New(serve.Options{
		MaxInFlight:    *maxDisc,
		RequestTimeout: *reqTimeout,
		JobTimeout:     *jobTimeout,
		Registry:       reg,
	})
	// ReadHeaderTimeout bounds how long a connection may sit between
	// accept and a complete request header, so idle or trickling clients
	// cannot pin accept slots indefinitely (Slowloris).
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "midas-serve:", err)
		os.Exit(1)
	}
	srv.SetReady(true)
	fmt.Fprintf(os.Stderr, "midas-serve: serving on http://%s/ (API under /api, telemetry at /metrics)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "midas-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Shutdown sequence: readiness drops first and the listener keeps
	// serving for the grace window — routers see /readyz 503 (and
	// /healthz still 200) and stop sending traffic. Then drain running
	// jobs with the listener still open (so probes and job polls keep
	// answering mid-drain), close the listener, and flush the final
	// snapshot with a last runtime-gauge sample.
	fmt.Fprintln(os.Stderr, "midas-serve: draining...")
	srv.SetReady(false)
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	inFlight := srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
	}
	srv.Close()
	rc.Stop()
	if *statsPath != "" {
		if err := reg.WriteFile(*statsPath); err != nil {
			fmt.Fprintln(os.Stderr, "midas-serve: writing final stats:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "midas-serve: drained cleanly (%d jobs were in flight)\n", inFlight)
}
