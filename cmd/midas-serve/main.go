// Command midas-serve runs the MIDAS discovery engine as a long-lived
// HTTP service: named sessions, KB and fact ingestion, asynchronous
// discovery jobs with result caching, and slice absorption, with the
// live-telemetry endpoints on the same listener.
//
// Usage:
//
//	midas-serve [-listen :8080] [-max-discoveries N]
//	      [-request-timeout 30s] [-job-timeout 0]
//	      [-drain-timeout 30s] [-stats final-stats.json]
//
// API (JSON; see README.md "Serving" for the full table):
//
//	POST   /api/sessions                  create a session
//	POST   /api/sessions/{s}/kb           load KB (TSV, ?format=binary|ntriples)
//	POST   /api/sessions/{s}/facts        add facts (JSON array or TSV)
//	POST   /api/sessions/{s}/discover     start a discovery job (?wait=true)
//	GET    /api/jobs/{id}                 poll a job
//	GET    /api/jobs/{id}/result          fetch the discovered slices
//	POST   /api/sessions/{s}/absorb       absorb result slices into the KB
//	GET    /api/sessions/{s}/progress     KB size and corpus coverage
//
// On SIGTERM/SIGINT the service stops accepting connections, drains
// running discovery jobs (canceling them if -drain-timeout expires;
// canceled jobs finish with partial results), writes the final metrics
// snapshot to -stats, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"midas/internal/obs"
	"midas/internal/serve"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "address to serve the API and telemetry on")
		maxDisc      = flag.Int("max-discoveries", 0, "max concurrent discovery jobs before shedding with 429 (0 = GOMAXPROCS)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (sync discoveries return partial results at it; -1s disables)")
		jobTimeout   = flag.Duration("job-timeout", 0, "async discovery job budget (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs before canceling them")
		statsPath    = flag.String("stats", "", "write a final JSON metrics snapshot to this file on shutdown")
	)
	flag.Parse()

	reg := obs.Default()
	srv := serve.New(serve.Options{
		MaxInFlight:    *maxDisc,
		RequestTimeout: *reqTimeout,
		JobTimeout:     *jobTimeout,
		Registry:       reg,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "midas-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "midas-serve: serving on http://%s/ (API under /api, telemetry at /metrics)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "midas-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Drain: stop accepting, let running jobs finish (cancel at the
	// deadline — the pipeline hands back partial results), then flush
	// the final snapshot.
	fmt.Fprintln(os.Stderr, "midas-serve: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- httpSrv.Shutdown(drainCtx) }()
	inFlight := srv.Drain(drainCtx)
	if err := <-shutdownErr; err != nil {
		httpSrv.Close()
	}
	srv.Close()
	if *statsPath != "" {
		if err := reg.WriteFile(*statsPath); err != nil {
			fmt.Fprintln(os.Stderr, "midas-serve: writing final stats:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "midas-serve: drained cleanly (%d jobs were in flight)\n", inFlight)
}
