// Command midas-benchdiff turns the CI bench-smoke artifact into a
// regression gate: it compares the current run's metrics snapshot
// (BENCH_stats.json, written by midas-bench -stats) against the
// previous run's and fails when the pipeline got materially slower or
// the pruning strategies got materially weaker.
//
// Checks:
//
//   - wall time: the framework/run phase timer's total seconds must not
//     regress by more than -max-wall-regress (default 20%). Baselines
//     below -min-seconds are skipped as noise — CI runners cannot
//     resolve a 20% change of a 10ms phase.
//   - pruning ratio: (pruned_canonicity + pruned_profit_bound) /
//     nodes_generated must not drop by more than -max-prune-drop
//     relative (default 20%). A drop means the hierarchy builder is
//     materializing lattice nodes it used to eliminate — the quantity
//     behind the paper's Section V pruning tables.
//   - per-level pruning: the same ratio check applied to each lattice
//     level from the hierarchy/level/* counter vectors, so a regression
//     confined to one level cannot hide inside a healthy aggregate.
//     Levels whose baseline generated fewer than -min-level-nodes nodes
//     are skipped as noise.
//   - per-depth round time: each URL-hierarchy depth's round timer
//     (framework/depth timer vector) gets the wall-time check, with the
//     same -max-wall-regress limit and -min-seconds noise floor, so a
//     slowdown confined to one round (e.g. the domain-level merge)
//     cannot hide inside a stable total.
//   - reuse ratio (optional, for delta-workload snapshots): the share
//     of sources the framework answered from a prior run,
//     framework/sources_reused / (sources_reused + sources_processed),
//     measured on the *current* snapshot only, must not fall below
//     -min-reuse-ratio. Disabled at the default 0 — from-scratch bench
//     runs reuse nothing; enable it on snapshots of incremental
//     workloads (e.g. service-smoke's re-discover after a one-source
//     facts POST).
//   - request p99 (optional, for serving-path snapshots such as the
//     final -stats dump of midas-serve): per-endpoint p99 latency
//     estimated from the serve/request_seconds histogram vector must
//     not regress by more than -max-p99-regress. Endpoints present only
//     in the serve/request timer vector fall back to the timer's
//     recorded max as a conservative p99 bound. Disabled at the default
//     -max-p99-regress 0; baselines below -min-p99-seconds are skipped
//     as noise.
//
// Usage:
//
//	midas-benchdiff -old previous/BENCH_stats.json -new BENCH_stats.json
//	midas-benchdiff -old prev/SERVE_stats.json -new SERVE_stats.json -max-p99-regress 0.5
//
// Exits 0 when within thresholds, 1 on a regression, 2 on usage or
// unreadable input. -allow-missing exits 0 when the old snapshot does
// not exist (first run, empty CI cache).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"midas/internal/obs"
)

func main() {
	var (
		oldPath      = flag.String("old", "", "previous metrics snapshot (required)")
		newPath      = flag.String("new", "", "current metrics snapshot (required)")
		maxWall      = flag.Float64("max-wall-regress", 0.20, "max relative framework/run wall-time regression")
		maxPruneDrop = flag.Float64("max-prune-drop", 0.20, "max relative pruning-ratio drop")
		minSeconds   = flag.Float64("min-seconds", 0.05, "skip the wall-time check below this baseline (noise floor)")
		minLevelGen  = flag.Int64("min-level-nodes", 200, "skip per-level pruning checks below this baseline node count (noise floor)")
		maxP99       = flag.Float64("max-p99-regress", 0, "max relative per-endpoint request-p99 regression (0 = check disabled)")
		minReuse     = flag.Float64("min-reuse-ratio", 0, "min framework source-reuse ratio in the current snapshot (0 = check disabled)")
		minP99       = flag.Float64("min-p99-seconds", 0.005, "skip the p99 check below this baseline (noise floor)")
		allowMissing = flag.Bool("allow-missing", false, "exit 0 when the old snapshot does not exist")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug|info|warn|error|off")
		logFormat    = flag.String("log-format", "logfmt", "log encoding: logfmt|json")
	)
	flag.Parse()
	if err := obs.InstallDefaultLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		fatal(err)
	}
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *allowMissing {
		if _, err := os.Stat(*oldPath); os.IsNotExist(err) {
			fmt.Printf("benchdiff: no baseline at %s, skipping (first run)\n", *oldPath)
			return
		}
	}
	oldSnap, err := loadSnapshot(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := loadSnapshot(*newPath)
	if err != nil {
		fatal(err)
	}
	report := Compare(oldSnap, newSnap, Thresholds{
		MaxWallRegress: *maxWall,
		MaxPruneDrop:   *maxPruneDrop,
		MinSeconds:     *minSeconds,
		MinLevelNodes:  *minLevelGen,
		MaxP99Regress:  *maxP99,
		MinP99Seconds:  *minP99,
		MinReuseRatio:  *minReuse,
	})
	for _, line := range report.Lines {
		fmt.Println(line)
	}
	if len(report.Regressions) > 0 {
		for _, r := range report.Regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: within thresholds")
}

// Thresholds bounds the accepted drift between two snapshots.
type Thresholds struct {
	// MaxWallRegress is the max relative increase of framework/run
	// total wall time (0.20 = +20%).
	MaxWallRegress float64
	// MaxPruneDrop is the max relative decrease of the hierarchy
	// pruning ratio.
	MaxPruneDrop float64
	// MinSeconds is the wall-time noise floor: baselines below it skip
	// the wall check (total and per-depth alike).
	MinSeconds float64
	// MinLevelNodes is the per-level noise floor: lattice levels whose
	// baseline generated fewer nodes skip the per-level pruning check.
	MinLevelNodes int64
	// MaxP99Regress is the max relative increase of an endpoint's
	// estimated request p99 (0 disables the check — bench snapshots
	// carry no serving-path histograms).
	MaxP99Regress float64
	// MinP99Seconds is the p99 noise floor: endpoints whose baseline
	// p99 is below it skip the check.
	MinP99Seconds float64
	// MinReuseRatio is the floor on the current snapshot's framework
	// source-reuse ratio, sources_reused / (reused + processed). 0
	// disables the check; it only makes sense for snapshots of
	// incremental (delta) workloads.
	MinReuseRatio float64
}

// Report is the outcome of a comparison: human-readable lines plus the
// subset that breached a threshold.
type Report struct {
	Lines       []string
	Regressions []string
}

// Compare checks the current snapshot against the baseline.
func Compare(oldSnap, newSnap obs.Snapshot, th Thresholds) Report {
	var rep Report

	oldWall := oldSnap.Timers["framework/run"].TotalSeconds
	newWall := newSnap.Timers["framework/run"].TotalSeconds
	switch {
	case oldWall <= 0:
		rep.Lines = append(rep.Lines, "wall time: no framework/run baseline, skipping")
	case oldWall < th.MinSeconds:
		rep.Lines = append(rep.Lines, fmt.Sprintf(
			"wall time: baseline %.3fs below %.3fs noise floor, skipping", oldWall, th.MinSeconds))
	default:
		rel := newWall/oldWall - 1
		line := fmt.Sprintf("wall time: framework/run %.3fs → %.3fs (%+.1f%%, limit +%.0f%%)",
			oldWall, newWall, rel*100, th.MaxWallRegress*100)
		rep.Lines = append(rep.Lines, line)
		if rel > th.MaxWallRegress {
			rep.Regressions = append(rep.Regressions, line)
		}
	}

	oldRatio, oldOK := pruneRatio(oldSnap)
	newRatio, newOK := pruneRatio(newSnap)
	switch {
	case !oldOK:
		rep.Lines = append(rep.Lines, "pruning: no baseline hierarchy counters, skipping")
	case !newOK:
		line := "pruning: current snapshot has no hierarchy counters"
		rep.Lines = append(rep.Lines, line)
		rep.Regressions = append(rep.Regressions, line)
	default:
		drop := 1 - newRatio/oldRatio
		line := fmt.Sprintf("pruning ratio: %.4f → %.4f (drop %.1f%%, limit %.0f%%)",
			oldRatio, newRatio, drop*100, th.MaxPruneDrop*100)
		rep.Lines = append(rep.Lines, line)
		if drop > th.MaxPruneDrop {
			rep.Regressions = append(rep.Regressions, line)
		}
	}

	comparePerLevel(&rep, oldSnap, newSnap, th)
	comparePerDepth(&rep, oldSnap, newSnap, th)
	compareP99(&rep, oldSnap, newSnap, th)
	compareReuse(&rep, newSnap, th)
	return rep
}

// compareReuse enforces the incremental-discovery floor: on a delta
// workload, the framework must answer at least MinReuseRatio of its
// sources from the prior run. Unlike the other checks it reads only
// the current snapshot — the baseline has no say in how much reuse the
// new code achieves.
func compareReuse(rep *Report, newSnap obs.Snapshot, th Thresholds) {
	if th.MinReuseRatio <= 0 {
		return
	}
	reused := newSnap.Counters["framework/sources_reused"]
	processed := newSnap.Counters["framework/sources_processed"]
	total := reused + processed
	if total == 0 {
		line := "reuse ratio: current snapshot has no framework source counters"
		rep.Lines = append(rep.Lines, line)
		rep.Regressions = append(rep.Regressions, line)
		return
	}
	ratio := float64(reused) / float64(total)
	line := fmt.Sprintf("reuse ratio: %d reused / %d total = %.3f (floor %.3f)",
		reused, total, ratio, th.MinReuseRatio)
	rep.Lines = append(rep.Lines, line)
	if ratio < th.MinReuseRatio {
		rep.Regressions = append(rep.Regressions, line)
	}
}

// compareP99 applies the latency check to each endpoint of the
// serving-path request instrumentation: p99 estimated from the
// serve/request_seconds histogram vector, falling back to the
// serve/request timer vector's recorded max (a conservative upper
// bound on p99) for endpoints the histogram is missing. Disabled
// unless the limit is positive — bench snapshots have no serving-path
// traffic — and endpoints below the baseline noise floor are skipped.
func compareP99(rep *Report, oldSnap, newSnap obs.Snapshot, th Thresholds) {
	if th.MaxP99Regress <= 0 {
		return
	}
	oldP99 := endpointP99s(oldSnap)
	if len(oldP99) == 0 {
		rep.Lines = append(rep.Lines, "p99 latency: no baseline request histograms or timers, skipping")
		return
	}
	newP99 := endpointP99s(newSnap)
	for _, ep := range sortedKeys(oldP99) {
		op := oldP99[ep]
		np, inNew := newP99[ep]
		if op < th.MinP99Seconds {
			continue // baseline too fast to resolve a relative change
		}
		if !inNew {
			rep.Lines = append(rep.Lines, fmt.Sprintf(
				"p99 latency: endpoint %s vanished from current snapshot (%.4fs baseline)", ep, op))
			continue
		}
		rel := np/op - 1
		line := fmt.Sprintf("p99 latency: %s %.4fs → %.4fs (%+.1f%%, limit +%.0f%%)",
			ep, op, np, rel*100, th.MaxP99Regress*100)
		rep.Lines = append(rep.Lines, line)
		if rel > th.MaxP99Regress {
			rep.Regressions = append(rep.Regressions, line)
		}
	}
}

// endpointP99s maps endpoint → estimated p99 seconds, preferring the
// request-latency histogram and falling back to the request timer's
// max for endpoints only the timer saw.
func endpointP99s(s obs.Snapshot) map[string]float64 {
	out := make(map[string]float64)
	for _, series := range s.HistogramVecs["serve/request_seconds"].Series {
		ep, ok := series.Labels["endpoint"]
		if !ok {
			continue
		}
		if p, ok := histQuantile(series.HistogramSnapshot, 0.99); ok {
			out[ep] = p
		}
	}
	for _, series := range s.TimerVecs["serve/request"].Series {
		ep, ok := series.Labels["endpoint"]
		if !ok || series.Count == 0 {
			continue
		}
		if _, have := out[ep]; !have {
			out[ep] = series.MaxSeconds
		}
	}
	return out
}

// histQuantile estimates quantile q from a bucketed snapshot: linear
// interpolation inside the bucket holding the q-th observation, with
// the recorded Min/Max clamping the first and overflow buckets (the
// snapshot omits empty buckets, so a bucket's lower edge is the
// previous retained bound). Reports false when nothing was observed.
func histQuantile(h obs.HistogramSnapshot, q float64) (float64, bool) {
	if h.Count == 0 {
		return 0, false
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	lo := h.Min
	for _, b := range h.Buckets {
		if cum+b.Count >= rank {
			ub := float64(b.UpperBound)
			if math.IsInf(ub, 1) {
				return h.Max, true
			}
			v := lo + (ub-lo)*float64(rank-cum)/float64(b.Count)
			return math.Min(math.Max(v, h.Min), h.Max), true
		}
		cum += b.Count
		lo = float64(b.UpperBound)
	}
	return h.Max, true
}

// comparePerLevel applies the pruning-ratio check to each lattice level
// from the hierarchy/level/* counter vectors (label "level"): a
// regression confined to one level must not hide inside a healthy
// aggregate. Levels below the baseline node-count noise floor, or
// absent from either snapshot, are skipped.
func comparePerLevel(rep *Report, oldSnap, newSnap obs.Snapshot, th Thresholds) {
	oldGen := counterVecValues(oldSnap, "hierarchy/level/nodes_generated", "level")
	if len(oldGen) == 0 {
		rep.Lines = append(rep.Lines, "per-level pruning: no baseline level vectors, skipping")
		return
	}
	newGen := counterVecValues(newSnap, "hierarchy/level/nodes_generated", "level")
	oldPruned := sumVecValues(
		counterVecValues(oldSnap, "hierarchy/level/pruned_canonicity", "level"),
		counterVecValues(oldSnap, "hierarchy/level/pruned_profit_bound", "level"))
	newPruned := sumVecValues(
		counterVecValues(newSnap, "hierarchy/level/pruned_canonicity", "level"),
		counterVecValues(newSnap, "hierarchy/level/pruned_profit_bound", "level"))
	for _, level := range sortedKeys(oldGen) {
		og := oldGen[level]
		ng, inNew := newGen[level]
		switch {
		case og < th.MinLevelNodes:
			continue // baseline too small to resolve a ratio change
		case !inNew || ng == 0:
			line := fmt.Sprintf("per-level pruning: level %s vanished from current snapshot (%d baseline nodes)", level, og)
			rep.Lines = append(rep.Lines, line)
			continue
		}
		oldRatio := float64(oldPruned[level]) / float64(og)
		newRatio := float64(newPruned[level]) / float64(ng)
		if oldRatio <= 0 {
			continue // nothing was pruned at this level before; no ratio to defend
		}
		drop := 1 - newRatio/oldRatio
		line := fmt.Sprintf("per-level pruning: level %s ratio %.4f → %.4f (drop %.1f%%, limit %.0f%%)",
			level, oldRatio, newRatio, drop*100, th.MaxPruneDrop*100)
		rep.Lines = append(rep.Lines, line)
		if drop > th.MaxPruneDrop {
			rep.Regressions = append(rep.Regressions, line)
		}
	}
}

// comparePerDepth applies the wall-time check to each URL-hierarchy
// depth's round timer (framework/depth timer vector, label "depth"),
// with the same regression limit and noise floor as the total.
func comparePerDepth(rep *Report, oldSnap, newSnap obs.Snapshot, th Thresholds) {
	oldSec := timerVecSeconds(oldSnap, "framework/depth", "depth")
	if len(oldSec) == 0 {
		rep.Lines = append(rep.Lines, "per-depth wall time: no baseline depth timers, skipping")
		return
	}
	newSec := timerVecSeconds(newSnap, "framework/depth", "depth")
	for _, depth := range sortedKeys(oldSec) {
		os := oldSec[depth]
		ns, inNew := newSec[depth]
		if os < th.MinSeconds {
			continue
		}
		if !inNew {
			rep.Lines = append(rep.Lines, fmt.Sprintf(
				"per-depth wall time: depth %s vanished from current snapshot (%.3fs baseline)", depth, os))
			continue
		}
		rel := ns/os - 1
		line := fmt.Sprintf("per-depth wall time: depth %s %.3fs → %.3fs (%+.1f%%, limit +%.0f%%)",
			depth, os, ns, rel*100, th.MaxWallRegress*100)
		rep.Lines = append(rep.Lines, line)
		if rel > th.MaxWallRegress {
			rep.Regressions = append(rep.Regressions, line)
		}
	}
}

// counterVecValues flattens one counter vector into labelValue → count,
// for vectors with a single label name.
func counterVecValues(s obs.Snapshot, name, label string) map[string]int64 {
	out := make(map[string]int64)
	for _, series := range s.CounterVecs[name].Series {
		if v, ok := series.Labels[label]; ok {
			out[v] += series.Value
		}
	}
	return out
}

// timerVecSeconds flattens one timer vector into labelValue → total
// seconds.
func timerVecSeconds(s obs.Snapshot, name, label string) map[string]float64 {
	out := make(map[string]float64)
	for _, series := range s.TimerVecs[name].Series {
		if v, ok := series.Labels[label]; ok {
			out[v] += series.TotalSeconds
		}
	}
	return out
}

func sumVecValues(a, b map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(a)+len(b))
	for k, v := range a {
		out[k] += v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}

// sortedKeys orders label values lexically; the fixed-width level/depth
// labels ("02", "10") make that numeric order too.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pruneRatio computes the fraction of generated lattice nodes that the
// two pruning strategies eliminated.
func pruneRatio(s obs.Snapshot) (float64, bool) {
	generated := s.Counters["hierarchy/nodes_generated"]
	if generated == 0 {
		return 0, false
	}
	pruned := s.Counters["hierarchy/pruned_canonicity"] + s.Counters["hierarchy/pruned_profit_bound"]
	return float64(pruned) / float64(generated), true
}

func loadSnapshot(path string) (obs.Snapshot, error) {
	var s obs.Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "midas-benchdiff:", err)
	os.Exit(2)
}
