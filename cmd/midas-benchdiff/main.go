// Command midas-benchdiff turns the CI bench-smoke artifact into a
// regression gate: it compares the current run's metrics snapshot
// (BENCH_stats.json, written by midas-bench -stats) against the
// previous run's and fails when the pipeline got materially slower or
// the pruning strategies got materially weaker.
//
// Checks:
//
//   - wall time: the framework/run phase timer's total seconds must not
//     regress by more than -max-wall-regress (default 20%). Baselines
//     below -min-seconds are skipped as noise — CI runners cannot
//     resolve a 20% change of a 10ms phase.
//   - pruning ratio: (pruned_canonicity + pruned_profit_bound) /
//     nodes_generated must not drop by more than -max-prune-drop
//     relative (default 20%). A drop means the hierarchy builder is
//     materializing lattice nodes it used to eliminate — the quantity
//     behind the paper's Section V pruning tables.
//   - per-level pruning: the same ratio check applied to each lattice
//     level from the hierarchy/level/* counter vectors, so a regression
//     confined to one level cannot hide inside a healthy aggregate.
//     Levels whose baseline generated fewer than -min-level-nodes nodes
//     are skipped as noise.
//   - per-depth round time: each URL-hierarchy depth's round timer
//     (framework/depth timer vector) gets the wall-time check, with the
//     same -max-wall-regress limit and -min-seconds noise floor, so a
//     slowdown confined to one round (e.g. the domain-level merge)
//     cannot hide inside a stable total.
//
// Usage:
//
//	midas-benchdiff -old previous/BENCH_stats.json -new BENCH_stats.json
//
// Exits 0 when within thresholds, 1 on a regression, 2 on usage or
// unreadable input. -allow-missing exits 0 when the old snapshot does
// not exist (first run, empty CI cache).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"midas/internal/obs"
)

func main() {
	var (
		oldPath      = flag.String("old", "", "previous metrics snapshot (required)")
		newPath      = flag.String("new", "", "current metrics snapshot (required)")
		maxWall      = flag.Float64("max-wall-regress", 0.20, "max relative framework/run wall-time regression")
		maxPruneDrop = flag.Float64("max-prune-drop", 0.20, "max relative pruning-ratio drop")
		minSeconds   = flag.Float64("min-seconds", 0.05, "skip the wall-time check below this baseline (noise floor)")
		minLevelGen  = flag.Int64("min-level-nodes", 200, "skip per-level pruning checks below this baseline node count (noise floor)")
		allowMissing = flag.Bool("allow-missing", false, "exit 0 when the old snapshot does not exist")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *allowMissing {
		if _, err := os.Stat(*oldPath); os.IsNotExist(err) {
			fmt.Printf("benchdiff: no baseline at %s, skipping (first run)\n", *oldPath)
			return
		}
	}
	oldSnap, err := loadSnapshot(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := loadSnapshot(*newPath)
	if err != nil {
		fatal(err)
	}
	report := Compare(oldSnap, newSnap, Thresholds{
		MaxWallRegress: *maxWall,
		MaxPruneDrop:   *maxPruneDrop,
		MinSeconds:     *minSeconds,
		MinLevelNodes:  *minLevelGen,
	})
	for _, line := range report.Lines {
		fmt.Println(line)
	}
	if len(report.Regressions) > 0 {
		for _, r := range report.Regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: within thresholds")
}

// Thresholds bounds the accepted drift between two snapshots.
type Thresholds struct {
	// MaxWallRegress is the max relative increase of framework/run
	// total wall time (0.20 = +20%).
	MaxWallRegress float64
	// MaxPruneDrop is the max relative decrease of the hierarchy
	// pruning ratio.
	MaxPruneDrop float64
	// MinSeconds is the wall-time noise floor: baselines below it skip
	// the wall check (total and per-depth alike).
	MinSeconds float64
	// MinLevelNodes is the per-level noise floor: lattice levels whose
	// baseline generated fewer nodes skip the per-level pruning check.
	MinLevelNodes int64
}

// Report is the outcome of a comparison: human-readable lines plus the
// subset that breached a threshold.
type Report struct {
	Lines       []string
	Regressions []string
}

// Compare checks the current snapshot against the baseline.
func Compare(oldSnap, newSnap obs.Snapshot, th Thresholds) Report {
	var rep Report

	oldWall := oldSnap.Timers["framework/run"].TotalSeconds
	newWall := newSnap.Timers["framework/run"].TotalSeconds
	switch {
	case oldWall <= 0:
		rep.Lines = append(rep.Lines, "wall time: no framework/run baseline, skipping")
	case oldWall < th.MinSeconds:
		rep.Lines = append(rep.Lines, fmt.Sprintf(
			"wall time: baseline %.3fs below %.3fs noise floor, skipping", oldWall, th.MinSeconds))
	default:
		rel := newWall/oldWall - 1
		line := fmt.Sprintf("wall time: framework/run %.3fs → %.3fs (%+.1f%%, limit +%.0f%%)",
			oldWall, newWall, rel*100, th.MaxWallRegress*100)
		rep.Lines = append(rep.Lines, line)
		if rel > th.MaxWallRegress {
			rep.Regressions = append(rep.Regressions, line)
		}
	}

	oldRatio, oldOK := pruneRatio(oldSnap)
	newRatio, newOK := pruneRatio(newSnap)
	switch {
	case !oldOK:
		rep.Lines = append(rep.Lines, "pruning: no baseline hierarchy counters, skipping")
	case !newOK:
		line := "pruning: current snapshot has no hierarchy counters"
		rep.Lines = append(rep.Lines, line)
		rep.Regressions = append(rep.Regressions, line)
	default:
		drop := 1 - newRatio/oldRatio
		line := fmt.Sprintf("pruning ratio: %.4f → %.4f (drop %.1f%%, limit %.0f%%)",
			oldRatio, newRatio, drop*100, th.MaxPruneDrop*100)
		rep.Lines = append(rep.Lines, line)
		if drop > th.MaxPruneDrop {
			rep.Regressions = append(rep.Regressions, line)
		}
	}

	comparePerLevel(&rep, oldSnap, newSnap, th)
	comparePerDepth(&rep, oldSnap, newSnap, th)
	return rep
}

// comparePerLevel applies the pruning-ratio check to each lattice level
// from the hierarchy/level/* counter vectors (label "level"): a
// regression confined to one level must not hide inside a healthy
// aggregate. Levels below the baseline node-count noise floor, or
// absent from either snapshot, are skipped.
func comparePerLevel(rep *Report, oldSnap, newSnap obs.Snapshot, th Thresholds) {
	oldGen := counterVecValues(oldSnap, "hierarchy/level/nodes_generated", "level")
	if len(oldGen) == 0 {
		rep.Lines = append(rep.Lines, "per-level pruning: no baseline level vectors, skipping")
		return
	}
	newGen := counterVecValues(newSnap, "hierarchy/level/nodes_generated", "level")
	oldPruned := sumVecValues(
		counterVecValues(oldSnap, "hierarchy/level/pruned_canonicity", "level"),
		counterVecValues(oldSnap, "hierarchy/level/pruned_profit_bound", "level"))
	newPruned := sumVecValues(
		counterVecValues(newSnap, "hierarchy/level/pruned_canonicity", "level"),
		counterVecValues(newSnap, "hierarchy/level/pruned_profit_bound", "level"))
	for _, level := range sortedKeys(oldGen) {
		og := oldGen[level]
		ng, inNew := newGen[level]
		switch {
		case og < th.MinLevelNodes:
			continue // baseline too small to resolve a ratio change
		case !inNew || ng == 0:
			line := fmt.Sprintf("per-level pruning: level %s vanished from current snapshot (%d baseline nodes)", level, og)
			rep.Lines = append(rep.Lines, line)
			continue
		}
		oldRatio := float64(oldPruned[level]) / float64(og)
		newRatio := float64(newPruned[level]) / float64(ng)
		if oldRatio <= 0 {
			continue // nothing was pruned at this level before; no ratio to defend
		}
		drop := 1 - newRatio/oldRatio
		line := fmt.Sprintf("per-level pruning: level %s ratio %.4f → %.4f (drop %.1f%%, limit %.0f%%)",
			level, oldRatio, newRatio, drop*100, th.MaxPruneDrop*100)
		rep.Lines = append(rep.Lines, line)
		if drop > th.MaxPruneDrop {
			rep.Regressions = append(rep.Regressions, line)
		}
	}
}

// comparePerDepth applies the wall-time check to each URL-hierarchy
// depth's round timer (framework/depth timer vector, label "depth"),
// with the same regression limit and noise floor as the total.
func comparePerDepth(rep *Report, oldSnap, newSnap obs.Snapshot, th Thresholds) {
	oldSec := timerVecSeconds(oldSnap, "framework/depth", "depth")
	if len(oldSec) == 0 {
		rep.Lines = append(rep.Lines, "per-depth wall time: no baseline depth timers, skipping")
		return
	}
	newSec := timerVecSeconds(newSnap, "framework/depth", "depth")
	for _, depth := range sortedKeys(oldSec) {
		os := oldSec[depth]
		ns, inNew := newSec[depth]
		if os < th.MinSeconds {
			continue
		}
		if !inNew {
			rep.Lines = append(rep.Lines, fmt.Sprintf(
				"per-depth wall time: depth %s vanished from current snapshot (%.3fs baseline)", depth, os))
			continue
		}
		rel := ns/os - 1
		line := fmt.Sprintf("per-depth wall time: depth %s %.3fs → %.3fs (%+.1f%%, limit +%.0f%%)",
			depth, os, ns, rel*100, th.MaxWallRegress*100)
		rep.Lines = append(rep.Lines, line)
		if rel > th.MaxWallRegress {
			rep.Regressions = append(rep.Regressions, line)
		}
	}
}

// counterVecValues flattens one counter vector into labelValue → count,
// for vectors with a single label name.
func counterVecValues(s obs.Snapshot, name, label string) map[string]int64 {
	out := make(map[string]int64)
	for _, series := range s.CounterVecs[name].Series {
		if v, ok := series.Labels[label]; ok {
			out[v] += series.Value
		}
	}
	return out
}

// timerVecSeconds flattens one timer vector into labelValue → total
// seconds.
func timerVecSeconds(s obs.Snapshot, name, label string) map[string]float64 {
	out := make(map[string]float64)
	for _, series := range s.TimerVecs[name].Series {
		if v, ok := series.Labels[label]; ok {
			out[v] += series.TotalSeconds
		}
	}
	return out
}

func sumVecValues(a, b map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(a)+len(b))
	for k, v := range a {
		out[k] += v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}

// sortedKeys orders label values lexically; the fixed-width level/depth
// labels ("02", "10") make that numeric order too.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pruneRatio computes the fraction of generated lattice nodes that the
// two pruning strategies eliminated.
func pruneRatio(s obs.Snapshot) (float64, bool) {
	generated := s.Counters["hierarchy/nodes_generated"]
	if generated == 0 {
		return 0, false
	}
	pruned := s.Counters["hierarchy/pruned_canonicity"] + s.Counters["hierarchy/pruned_profit_bound"]
	return float64(pruned) / float64(generated), true
}

func loadSnapshot(path string) (obs.Snapshot, error) {
	var s obs.Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "midas-benchdiff:", err)
	os.Exit(2)
}
