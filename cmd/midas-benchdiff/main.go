// Command midas-benchdiff turns the CI bench-smoke artifact into a
// regression gate: it compares the current run's metrics snapshot
// (BENCH_stats.json, written by midas-bench -stats) against the
// previous run's and fails when the pipeline got materially slower or
// the pruning strategies got materially weaker.
//
// Checks:
//
//   - wall time: the framework/run phase timer's total seconds must not
//     regress by more than -max-wall-regress (default 20%). Baselines
//     below -min-seconds are skipped as noise — CI runners cannot
//     resolve a 20% change of a 10ms phase.
//   - pruning ratio: (pruned_canonicity + pruned_profit_bound) /
//     nodes_generated must not drop by more than -max-prune-drop
//     relative (default 20%). A drop means the hierarchy builder is
//     materializing lattice nodes it used to eliminate — the quantity
//     behind the paper's Section V pruning tables.
//
// Usage:
//
//	midas-benchdiff -old previous/BENCH_stats.json -new BENCH_stats.json
//
// Exits 0 when within thresholds, 1 on a regression, 2 on usage or
// unreadable input. -allow-missing exits 0 when the old snapshot does
// not exist (first run, empty CI cache).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"midas/internal/obs"
)

func main() {
	var (
		oldPath      = flag.String("old", "", "previous metrics snapshot (required)")
		newPath      = flag.String("new", "", "current metrics snapshot (required)")
		maxWall      = flag.Float64("max-wall-regress", 0.20, "max relative framework/run wall-time regression")
		maxPruneDrop = flag.Float64("max-prune-drop", 0.20, "max relative pruning-ratio drop")
		minSeconds   = flag.Float64("min-seconds", 0.05, "skip the wall-time check below this baseline (noise floor)")
		allowMissing = flag.Bool("allow-missing", false, "exit 0 when the old snapshot does not exist")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *allowMissing {
		if _, err := os.Stat(*oldPath); os.IsNotExist(err) {
			fmt.Printf("benchdiff: no baseline at %s, skipping (first run)\n", *oldPath)
			return
		}
	}
	oldSnap, err := loadSnapshot(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := loadSnapshot(*newPath)
	if err != nil {
		fatal(err)
	}
	report := Compare(oldSnap, newSnap, Thresholds{
		MaxWallRegress: *maxWall,
		MaxPruneDrop:   *maxPruneDrop,
		MinSeconds:     *minSeconds,
	})
	for _, line := range report.Lines {
		fmt.Println(line)
	}
	if len(report.Regressions) > 0 {
		for _, r := range report.Regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: within thresholds")
}

// Thresholds bounds the accepted drift between two snapshots.
type Thresholds struct {
	// MaxWallRegress is the max relative increase of framework/run
	// total wall time (0.20 = +20%).
	MaxWallRegress float64
	// MaxPruneDrop is the max relative decrease of the hierarchy
	// pruning ratio.
	MaxPruneDrop float64
	// MinSeconds is the wall-time noise floor: baselines below it skip
	// the wall check.
	MinSeconds float64
}

// Report is the outcome of a comparison: human-readable lines plus the
// subset that breached a threshold.
type Report struct {
	Lines       []string
	Regressions []string
}

// Compare checks the current snapshot against the baseline.
func Compare(oldSnap, newSnap obs.Snapshot, th Thresholds) Report {
	var rep Report

	oldWall := oldSnap.Timers["framework/run"].TotalSeconds
	newWall := newSnap.Timers["framework/run"].TotalSeconds
	switch {
	case oldWall <= 0:
		rep.Lines = append(rep.Lines, "wall time: no framework/run baseline, skipping")
	case oldWall < th.MinSeconds:
		rep.Lines = append(rep.Lines, fmt.Sprintf(
			"wall time: baseline %.3fs below %.3fs noise floor, skipping", oldWall, th.MinSeconds))
	default:
		rel := newWall/oldWall - 1
		line := fmt.Sprintf("wall time: framework/run %.3fs → %.3fs (%+.1f%%, limit +%.0f%%)",
			oldWall, newWall, rel*100, th.MaxWallRegress*100)
		rep.Lines = append(rep.Lines, line)
		if rel > th.MaxWallRegress {
			rep.Regressions = append(rep.Regressions, line)
		}
	}

	oldRatio, oldOK := pruneRatio(oldSnap)
	newRatio, newOK := pruneRatio(newSnap)
	switch {
	case !oldOK:
		rep.Lines = append(rep.Lines, "pruning: no baseline hierarchy counters, skipping")
	case !newOK:
		line := "pruning: current snapshot has no hierarchy counters"
		rep.Lines = append(rep.Lines, line)
		rep.Regressions = append(rep.Regressions, line)
	default:
		drop := 1 - newRatio/oldRatio
		line := fmt.Sprintf("pruning ratio: %.4f → %.4f (drop %.1f%%, limit %.0f%%)",
			oldRatio, newRatio, drop*100, th.MaxPruneDrop*100)
		rep.Lines = append(rep.Lines, line)
		if drop > th.MaxPruneDrop {
			rep.Regressions = append(rep.Regressions, line)
		}
	}
	return rep
}

// pruneRatio computes the fraction of generated lattice nodes that the
// two pruning strategies eliminated.
func pruneRatio(s obs.Snapshot) (float64, bool) {
	generated := s.Counters["hierarchy/nodes_generated"]
	if generated == 0 {
		return 0, false
	}
	pruned := s.Counters["hierarchy/pruned_canonicity"] + s.Counters["hierarchy/pruned_profit_bound"]
	return float64(pruned) / float64(generated), true
}

func loadSnapshot(path string) (obs.Snapshot, error) {
	var s obs.Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "midas-benchdiff:", err)
	os.Exit(2)
}
