package main

import (
	"strings"
	"testing"

	"midas/internal/obs"
)

func snap(runSeconds float64, generated, prunedCanon, prunedProfit int64) obs.Snapshot {
	return obs.Snapshot{
		Timers: map[string]obs.TimerSnapshot{
			"framework/run": {Count: 1, TotalSeconds: runSeconds},
		},
		Counters: map[string]int64{
			"hierarchy/nodes_generated":     generated,
			"hierarchy/pruned_canonicity":   prunedCanon,
			"hierarchy/pruned_profit_bound": prunedProfit,
		},
	}
}

var defaultTh = Thresholds{MaxWallRegress: 0.20, MaxPruneDrop: 0.20, MinSeconds: 0.05}

func TestCompareWithinThresholds(t *testing.T) {
	rep := Compare(snap(1.0, 1000, 300, 200), snap(1.1, 1000, 310, 190), defaultTh)
	if len(rep.Regressions) != 0 {
		t.Errorf("regressions = %v, want none", rep.Regressions)
	}
}

func TestCompareWallRegression(t *testing.T) {
	rep := Compare(snap(1.0, 1000, 300, 200), snap(1.5, 1000, 300, 200), defaultTh)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "wall time") {
		t.Errorf("regressions = %v, want one wall-time regression", rep.Regressions)
	}
}

func TestComparePruningDrop(t *testing.T) {
	// Ratio 0.5 → 0.3 is a 40% relative drop.
	rep := Compare(snap(1.0, 1000, 300, 200), snap(1.0, 1000, 200, 100), defaultTh)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "pruning ratio") {
		t.Errorf("regressions = %v, want one pruning regression", rep.Regressions)
	}
}

func TestCompareNoiseFloorSkipsWall(t *testing.T) {
	// A 10ms baseline tripling is noise, not a regression.
	rep := Compare(snap(0.010, 1000, 300, 200), snap(0.030, 1000, 300, 200), defaultTh)
	if len(rep.Regressions) != 0 {
		t.Errorf("regressions = %v, want none below the noise floor", rep.Regressions)
	}
}

func TestCompareMissingBaselineCounters(t *testing.T) {
	rep := Compare(obs.Snapshot{}, snap(1.0, 1000, 300, 200), defaultTh)
	if len(rep.Regressions) != 0 {
		t.Errorf("regressions = %v, want none when the baseline is empty", rep.Regressions)
	}
	// The reverse — a current snapshot that lost its hierarchy counters
	// entirely — is a gate failure, not a skip.
	rep = Compare(snap(1.0, 1000, 300, 200), obs.Snapshot{}, defaultTh)
	found := false
	for _, r := range rep.Regressions {
		if strings.Contains(r, "no hierarchy counters") {
			found = true
		}
	}
	if !found {
		t.Errorf("regressions = %v, want missing-counters failure", rep.Regressions)
	}
}

func TestPruneRatio(t *testing.T) {
	if r, ok := pruneRatio(snap(0, 1000, 300, 200)); !ok || r != 0.5 {
		t.Errorf("pruneRatio = %v/%v, want 0.5/true", r, ok)
	}
	if _, ok := pruneRatio(obs.Snapshot{}); ok {
		t.Error("pruneRatio on empty snapshot should report not-ok")
	}
}
