package main

import (
	"math"
	"strings"
	"testing"

	"midas/internal/obs"
)

func snap(runSeconds float64, generated, prunedCanon, prunedProfit int64) obs.Snapshot {
	return obs.Snapshot{
		Timers: map[string]obs.TimerSnapshot{
			"framework/run": {Count: 1, TotalSeconds: runSeconds},
		},
		Counters: map[string]int64{
			"hierarchy/nodes_generated":     generated,
			"hierarchy/pruned_canonicity":   prunedCanon,
			"hierarchy/pruned_profit_bound": prunedProfit,
		},
	}
}

var defaultTh = Thresholds{MaxWallRegress: 0.20, MaxPruneDrop: 0.20, MinSeconds: 0.05, MinLevelNodes: 200}

func TestCompareWithinThresholds(t *testing.T) {
	rep := Compare(snap(1.0, 1000, 300, 200), snap(1.1, 1000, 310, 190), defaultTh)
	if len(rep.Regressions) != 0 {
		t.Errorf("regressions = %v, want none", rep.Regressions)
	}
}

func TestCompareWallRegression(t *testing.T) {
	rep := Compare(snap(1.0, 1000, 300, 200), snap(1.5, 1000, 300, 200), defaultTh)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "wall time") {
		t.Errorf("regressions = %v, want one wall-time regression", rep.Regressions)
	}
}

func TestComparePruningDrop(t *testing.T) {
	// Ratio 0.5 → 0.3 is a 40% relative drop.
	rep := Compare(snap(1.0, 1000, 300, 200), snap(1.0, 1000, 200, 100), defaultTh)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "pruning ratio") {
		t.Errorf("regressions = %v, want one pruning regression", rep.Regressions)
	}
}

func TestCompareNoiseFloorSkipsWall(t *testing.T) {
	// A 10ms baseline tripling is noise, not a regression.
	rep := Compare(snap(0.010, 1000, 300, 200), snap(0.030, 1000, 300, 200), defaultTh)
	if len(rep.Regressions) != 0 {
		t.Errorf("regressions = %v, want none below the noise floor", rep.Regressions)
	}
}

func TestCompareMissingBaselineCounters(t *testing.T) {
	rep := Compare(obs.Snapshot{}, snap(1.0, 1000, 300, 200), defaultTh)
	if len(rep.Regressions) != 0 {
		t.Errorf("regressions = %v, want none when the baseline is empty", rep.Regressions)
	}
	// The reverse — a current snapshot that lost its hierarchy counters
	// entirely — is a gate failure, not a skip.
	rep = Compare(snap(1.0, 1000, 300, 200), obs.Snapshot{}, defaultTh)
	found := false
	for _, r := range rep.Regressions {
		if strings.Contains(r, "no hierarchy counters") {
			found = true
		}
	}
	if !found {
		t.Errorf("regressions = %v, want missing-counters failure", rep.Regressions)
	}
}

// vecSnap extends a base snapshot with one per-level counter-vector
// triple and a per-depth timer vector.
func vecSnap(base obs.Snapshot, gen, canon, profit map[string]int64, depthSec map[string]float64) obs.Snapshot {
	cvec := func(m map[string]int64) obs.CounterVecSnapshot {
		s := obs.CounterVecSnapshot{LabelNames: []string{"level"}}
		for _, k := range sortedKeys(m) {
			s.Series = append(s.Series, obs.LabeledCounter{Labels: map[string]string{"level": k}, Value: m[k]})
		}
		return s
	}
	base.CounterVecs = map[string]obs.CounterVecSnapshot{
		"hierarchy/level/nodes_generated":     cvec(gen),
		"hierarchy/level/pruned_canonicity":   cvec(canon),
		"hierarchy/level/pruned_profit_bound": cvec(profit),
	}
	tvec := obs.TimerVecSnapshot{LabelNames: []string{"depth"}}
	for _, k := range sortedKeys(depthSec) {
		tvec.Series = append(tvec.Series, obs.LabeledTimer{
			Labels:        map[string]string{"depth": k},
			TimerSnapshot: obs.TimerSnapshot{Count: 1, TotalSeconds: depthSec[k]},
		})
	}
	base.TimerVecs = map[string]obs.TimerVecSnapshot{"framework/depth": tvec}
	return base
}

func regressionsMatching(rep Report, substr string) int {
	n := 0
	for _, r := range rep.Regressions {
		if strings.Contains(r, substr) {
			n++
		}
	}
	return n
}

func TestComparePerLevelPruningDrop(t *testing.T) {
	oldSnap := vecSnap(snap(1.0, 1000, 300, 200),
		map[string]int64{"01": 600, "02": 400},
		map[string]int64{"01": 180, "02": 200},
		map[string]int64{"01": 120, "02": 120},
		nil)
	// Aggregate ratio holds at 0.5 but level 02 collapses from 0.8 to
	// 0.4 while level 01 doubles — only the per-level check can see it.
	newSnap := vecSnap(snap(1.0, 1000, 300, 200),
		map[string]int64{"01": 600, "02": 400},
		map[string]int64{"01": 220, "02": 100},
		map[string]int64{"01": 120, "02": 60},
		nil)
	rep := Compare(oldSnap, newSnap, defaultTh)
	if regressionsMatching(rep, "per-level pruning: level 02") != 1 {
		t.Errorf("regressions = %v, want exactly one for level 02", rep.Regressions)
	}
	if regressionsMatching(rep, "level 01") != 0 {
		t.Errorf("regressions = %v, level 01 improved and must not regress", rep.Regressions)
	}
}

func TestComparePerLevelNoiseFloor(t *testing.T) {
	// 100 baseline nodes is below the 200-node floor: even a total
	// pruning collapse at that level is noise, not a regression.
	oldSnap := vecSnap(snap(1.0, 1000, 300, 200),
		map[string]int64{"04": 100}, map[string]int64{"04": 60}, map[string]int64{"04": 20}, nil)
	newSnap := vecSnap(snap(1.0, 1000, 300, 200),
		map[string]int64{"04": 100}, map[string]int64{"04": 0}, map[string]int64{"04": 0}, nil)
	rep := Compare(oldSnap, newSnap, defaultTh)
	if regressionsMatching(rep, "per-level") != 0 {
		t.Errorf("regressions = %v, want none below the per-level noise floor", rep.Regressions)
	}
}

func TestComparePerDepthWallRegression(t *testing.T) {
	oldSnap := vecSnap(snap(2.0, 1000, 300, 200), nil, nil, nil,
		map[string]float64{"01": 1.0, "02": 0.8, "03": 0.02})
	// Depth 02 slows 50%; depth 03 triples but sits below the noise
	// floor; depth 01 is within tolerance.
	newSnap := vecSnap(snap(2.1, 1000, 300, 200), nil, nil, nil,
		map[string]float64{"01": 1.1, "02": 1.2, "03": 0.06})
	rep := Compare(oldSnap, newSnap, defaultTh)
	if regressionsMatching(rep, "per-depth wall time: depth 02") != 1 {
		t.Errorf("regressions = %v, want exactly one for depth 02", rep.Regressions)
	}
	if got := regressionsMatching(rep, "per-depth"); got != 1 {
		t.Errorf("regressions = %v, want exactly one per-depth regression total", rep.Regressions)
	}
}

// TestCompareFixtures runs the whole gate over the two synthetic
// BENCH_stats fixtures: aggregate wall and pruning drift stay inside
// tolerance (the pruning drop lands at 19.6%, just under the 20%
// limit), while level 02's pruning collapse and depth 02's slowdown
// are flagged — and level 04 / depth 03 stay quiet under their noise
// floors.
func TestCompareFixtures(t *testing.T) {
	oldSnap, err := loadSnapshot("testdata/old.json")
	if err != nil {
		t.Fatal(err)
	}
	newSnap, err := loadSnapshot("testdata/new.json")
	if err != nil {
		t.Fatal(err)
	}
	th := defaultTh
	th.MinLevelNodes = 200
	rep := Compare(oldSnap, newSnap, th)
	if len(rep.Regressions) != 2 {
		t.Fatalf("regressions = %v, want exactly 2", rep.Regressions)
	}
	if regressionsMatching(rep, "per-level pruning: level 02") != 1 ||
		regressionsMatching(rep, "per-depth wall time: depth 02") != 1 {
		t.Errorf("regressions = %v, want level 02 pruning + depth 02 wall", rep.Regressions)
	}
	for _, banned := range []string{"level 04", "depth 03", "wall time: framework/run", "pruning ratio:"} {
		if regressionsMatching(rep, banned) != 0 {
			t.Errorf("regressions = %v, %q must stay within tolerance", rep.Regressions, banned)
		}
	}
}

func TestPruneRatio(t *testing.T) {
	if r, ok := pruneRatio(snap(0, 1000, 300, 200)); !ok || r != 0.5 {
		t.Errorf("pruneRatio = %v/%v, want 0.5/true", r, ok)
	}
	if _, ok := pruneRatio(obs.Snapshot{}); ok {
		t.Error("pruneRatio on empty snapshot should report not-ok")
	}
}

// latSnap extends a base snapshot with request-latency series: hist
// maps endpoint → histogram, timerMax maps endpoint → the request
// timer's recorded max (the fallback source for endpoints without a
// histogram).
func latSnap(base obs.Snapshot, hist map[string]obs.HistogramSnapshot, timerMax map[string]float64) obs.Snapshot {
	hv := obs.HistogramVecSnapshot{LabelNames: []string{"endpoint"}}
	for _, ep := range sortedKeys(hist) {
		hv.Series = append(hv.Series, obs.LabeledHistogram{
			Labels:            map[string]string{"endpoint": ep},
			HistogramSnapshot: hist[ep],
		})
	}
	base.HistogramVecs = map[string]obs.HistogramVecSnapshot{"serve/request_seconds": hv}
	tv := obs.TimerVecSnapshot{LabelNames: []string{"endpoint"}}
	for _, ep := range sortedKeys(timerMax) {
		tv.Series = append(tv.Series, obs.LabeledTimer{
			Labels:        map[string]string{"endpoint": ep},
			TimerSnapshot: obs.TimerSnapshot{Count: 10, TotalSeconds: 1, MaxSeconds: timerMax[ep]},
		})
	}
	if base.TimerVecs == nil {
		base.TimerVecs = map[string]obs.TimerVecSnapshot{}
	}
	base.TimerVecs["serve/request"] = tv
	return base
}

// hist builds a snapshot whose p99 lands 90% of the way into the
// second bucket: with buckets (lo, 90 obs) and (hi, 10 obs) the 99th
// of 100 observations interpolates to lo + 0.9*(hi-lo).
func hist(lo, hi float64) obs.HistogramSnapshot {
	return obs.HistogramSnapshot{
		Count: 100, Sum: 50, Min: lo / 2, Max: hi,
		Buckets: []obs.Bucket{
			{UpperBound: obs.JSONFloat(lo), Count: 90},
			{UpperBound: obs.JSONFloat(hi), Count: 10},
		},
	}
}

func TestHistQuantile(t *testing.T) {
	if _, ok := histQuantile(obs.HistogramSnapshot{}, 0.99); ok {
		t.Error("empty histogram should report not-ok")
	}
	// 99th of 100: 9 observations into the 10-count (0.05, 0.1] bucket.
	if p, ok := histQuantile(hist(0.05, 0.1), 0.99); !ok || p < 0.094 || p > 0.096 {
		t.Errorf("p99 = %v/%v, want ≈0.095", p, ok)
	}
	// Median falls inside the first bucket, whose lower edge is Min.
	if p, ok := histQuantile(hist(0.05, 0.1), 0.50); !ok || p <= 0.025 || p >= 0.05 {
		t.Errorf("p50 = %v/%v, want inside (Min, 0.05)", p, ok)
	}
	// An overflow bucket answers with the recorded max, not infinity.
	h := obs.HistogramSnapshot{
		Count: 100, Max: 2.5,
		Buckets: []obs.Bucket{
			{UpperBound: obs.JSONFloat(0.1), Count: 50},
			{UpperBound: obs.JSONFloat(inf()), Count: 50},
		},
	}
	if p, ok := histQuantile(h, 0.99); !ok || p != 2.5 {
		t.Errorf("overflow p99 = %v/%v, want Max 2.5", p, ok)
	}
}

func inf() float64 { return math.Inf(1) }

func TestCompareP99DisabledByDefault(t *testing.T) {
	oldSnap := latSnap(snap(1.0, 1000, 300, 200), map[string]obs.HistogramSnapshot{"GET /api/jobs": hist(0.01, 0.02)}, nil)
	newSnap := latSnap(snap(1.0, 1000, 300, 200), map[string]obs.HistogramSnapshot{"GET /api/jobs": hist(1, 2)}, nil)
	rep := Compare(oldSnap, newSnap, defaultTh) // MaxP99Regress zero
	if regressionsMatching(rep, "p99") != 0 {
		t.Errorf("regressions = %v, p99 check must stay disabled at limit 0", rep.Regressions)
	}
}

func TestCompareP99Regression(t *testing.T) {
	th := defaultTh
	th.MaxP99Regress = 0.5
	th.MinP99Seconds = 0.005
	oldSnap := latSnap(snap(1.0, 1000, 300, 200), map[string]obs.HistogramSnapshot{
		"POST /api/sessions/{name}/discover": hist(0.05, 0.1),    // regresses 10×
		"GET /api/jobs":                      hist(0.05, 0.1),    // stays put
		"GET /healthz":                       hist(0.001, 0.002), // below noise floor
	}, map[string]float64{"POST /api/sessions": 0.1}) // timer-only endpoint
	newSnap := latSnap(snap(1.0, 1000, 300, 200), map[string]obs.HistogramSnapshot{
		"POST /api/sessions/{name}/discover": hist(0.5, 1.0),
		"GET /api/jobs":                      hist(0.05, 0.1),
		"GET /healthz":                       hist(0.5, 1.0),
	}, map[string]float64{"POST /api/sessions": 0.3}) // tripled: timer fallback must catch it
	rep := Compare(oldSnap, newSnap, th)
	if regressionsMatching(rep, "p99 latency: POST /api/sessions/{name}/discover") != 1 {
		t.Errorf("regressions = %v, want the discover endpoint flagged", rep.Regressions)
	}
	if regressionsMatching(rep, "p99 latency: POST /api/sessions ") != 1 {
		t.Errorf("regressions = %v, want the timer-fallback endpoint flagged", rep.Regressions)
	}
	if got := regressionsMatching(rep, "p99"); got != 2 {
		t.Errorf("regressions = %v, want exactly two p99 regressions", rep.Regressions)
	}
}

// reuseSnap layers framework source counters onto a baseline snapshot.
func reuseSnap(base obs.Snapshot, reused, processed int64) obs.Snapshot {
	base.Counters["framework/sources_reused"] = reused
	base.Counters["framework/sources_processed"] = processed
	return base
}

func TestCompareReuseDisabledByDefault(t *testing.T) {
	newSnap := reuseSnap(snap(1.0, 1000, 300, 200), 0, 100)
	rep := Compare(snap(1.0, 1000, 300, 200), newSnap, defaultTh) // MinReuseRatio zero
	if regressionsMatching(rep, "reuse") != 0 {
		t.Errorf("regressions = %v, reuse check must stay disabled at floor 0", rep.Regressions)
	}
}

func TestCompareReuseWithinFloor(t *testing.T) {
	th := defaultTh
	th.MinReuseRatio = 0.9
	newSnap := reuseSnap(snap(1.0, 1000, 300, 200), 95, 5)
	rep := Compare(snap(1.0, 1000, 300, 200), newSnap, th)
	if regressionsMatching(rep, "reuse") != 0 {
		t.Errorf("regressions = %v, want none at 95%% reuse", rep.Regressions)
	}
}

func TestCompareReuseBelowFloor(t *testing.T) {
	th := defaultTh
	th.MinReuseRatio = 0.9
	newSnap := reuseSnap(snap(1.0, 1000, 300, 200), 50, 50)
	rep := Compare(snap(1.0, 1000, 300, 200), newSnap, th)
	if regressionsMatching(rep, "reuse ratio") != 1 {
		t.Errorf("regressions = %v, want one reuse regression", rep.Regressions)
	}
}

func TestCompareReuseMissingCounters(t *testing.T) {
	th := defaultTh
	th.MinReuseRatio = 0.9
	rep := Compare(snap(1.0, 1000, 300, 200), snap(1.0, 1000, 300, 200), th)
	if regressionsMatching(rep, "reuse") != 1 {
		t.Errorf("regressions = %v, want a regression when counters are absent but the floor is set", rep.Regressions)
	}
}
