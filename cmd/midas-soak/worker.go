package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"midas"
	"midas/internal/serve"
)

// worker owns a deterministic op stream: its PRNG is seeded from the
// run seed and its ID, so the sequence of operations it issues is a
// pure function of (-seed, worker index) no matter how the goroutines
// interleave. Each worker owns its sessions outright — no other worker
// mutates them — which is what makes the client-side oracles exact.
type worker struct {
	h   *seedHarness
	id  int
	rng *rand.Rand

	// opGen is the server generation the current op started against;
	// failures are judged against it (see restartHit).
	opGen int64

	sessions []*wsession
	created  int
}

// wsession pairs a server-side session with its client-side oracles:
// a mirror midas.Session that replays every confirmed mutation through
// the public API (incremental path), and the raw mutation log from
// which finalChecks builds a from-scratch session. tainted flips when
// a fault left the server state unknowable (a KB upload that died
// mid-stream loads a prefix server-side), after which the oracles
// stand down for this session.
type wsession struct {
	name    string
	mirror  *midas.Session
	log     []mutation
	tainted bool
	rows    int               // fact rows ingested, capped by -max-facts
	digests map[string]string // result fingerprint → slice digest
}

type mutation struct {
	facts []midas.Fact // facts ingest (atomic server-side)
	kb    []byte       // KB TSV body
	slice midas.Slice  // absorb (Source+Entities are all Absorb reads)
}

func newWorker(h *seedHarness, id int) *worker {
	return &worker{h: h, id: id, rng: rand.New(rand.NewSource(h.seed*1000 + int64(id)))}
}

// restartHit downgrades a failure that overlaps a server restart from
// a violation to a taint: the op's outcome is unknowable (the request
// may have died client-side, server-side, or against a frozen store),
// so the session stands its oracles down instead of crying wolf.
func (w *worker) restartHit(seq int, sn *wsession, note string) bool {
	if !w.h.interrupted(w.opGen) {
		return false
	}
	name := ""
	if sn != nil {
		sn.tainted = true
		name = sn.name
	}
	w.h.record(w.id, seq, "restart-hit", name, 0, note)
	return true
}

func (w *worker) removeSession(sn *wsession) {
	for i, s := range w.sessions {
		if s == sn {
			w.sessions = append(w.sessions[:i], w.sessions[i+1:]...)
			break
		}
	}
}

// step issues one operation drawn from the worker's op distribution.
func (w *worker) step(seq int) {
	w.opGen = w.h.gen.Load()
	if len(w.sessions) == 0 {
		w.createSession(seq)
		return
	}
	sn := w.sessions[w.rng.Intn(len(w.sessions))]
	switch p := w.rng.Float64(); {
	case p < 0.05 && len(w.sessions) < 2:
		w.createSession(seq)
	case p < 0.08:
		w.deleteSession(seq, sn)
	case p < 0.30:
		w.ingestFacts(seq, sn)
	case p < 0.40:
		w.loadKB(seq, sn)
	case p < 0.60:
		w.discoverAsync(seq, sn)
	case p < 0.72:
		w.discoverSync(seq, sn)
	case p < 0.77:
		w.disconnect(seq, sn)
	case p < 0.85:
		w.mirrorCheck(seq, sn)
	default:
		w.reads(seq, sn)
	}
}

func (w *worker) createSession(seq int) {
	w.created++
	name := fmt.Sprintf("s%d-w%d-%d", w.h.seed, w.id, w.created)
	body := strings.NewReader(fmt.Sprintf(`{"name":%q}`, name))
	code, err := w.h.doJSON(w.h.hc, "POST", "/api/sessions", body, "application/json", nil)
	w.h.record(w.id, seq, "create", name, code, "")
	if err != nil || code != http.StatusCreated {
		if !w.restartHit(seq, nil, "create") {
			w.h.violate(w.id, seq, "create-session", fmt.Sprintf("%s: HTTP %d (%v)", name, code, err))
		}
		return
	}
	w.sessions = append(w.sessions, &wsession{
		name:    name,
		mirror:  midas.NewSession(nil, nil),
		digests: make(map[string]string),
	})
}

func (w *worker) deleteSession(seq int, sn *wsession) {
	code, err := w.h.doJSON(w.h.hc, "DELETE", "/api/sessions/"+sn.name, nil, "", nil)
	w.h.record(w.id, seq, "delete", sn.name, code, "")
	if err != nil || code != http.StatusNoContent {
		if w.restartHit(seq, sn, "delete") {
			// The delete may or may not have landed; either way this
			// worker is done with the session.
			w.removeSession(sn)
			return
		}
		w.h.violate(w.id, seq, "delete-session", fmt.Sprintf("%s: HTTP %d (%v)", sn.name, code, err))
		return
	}
	w.removeSession(sn)
}

// drawFacts picks a deterministic batch from the shared pool.
func (w *worker) drawFacts(n int) []midas.Fact {
	pool := w.h.cfg.pool
	facts := make([]midas.Fact, 0, n)
	start := w.rng.Intn(len(pool))
	for i := 0; i < n; i++ {
		r := pool[(start+i)%len(pool)]
		facts = append(facts, midas.Fact{
			Subject: r.subject, Predicate: r.predicate, Object: r.object,
			Confidence: r.confidence, URL: r.url,
		})
	}
	return facts
}

func (w *worker) ingestFacts(seq int, sn *wsession) {
	if sn.rows >= w.h.cfg.maxFacts {
		w.reads(seq, sn)
		return
	}
	// One batch in seven is deliberately malformed: the server must
	// reject it whole (400) and, ingestion being atomic, leave the
	// session untouched — so the mirror skips it too, no taint.
	if w.rng.Float64() < 1.0/7 {
		bad := "subject-only\n"
		code, err := w.h.doJSON(w.h.hc, "POST", "/api/sessions/"+sn.name+"/facts",
			strings.NewReader(bad), "text/tab-separated-values", nil)
		w.h.record(w.id, seq, "facts-bad", sn.name, code, "")
		if err == nil && code != http.StatusBadRequest && !w.restartHit(seq, sn, "facts-bad") {
			w.h.violate(w.id, seq, "facts-malformed", fmt.Sprintf("malformed batch: HTTP %d, want 400", code))
		}
		return
	}
	facts := w.drawFacts(5 + w.rng.Intn(20))
	asJSON := w.rng.Float64() < 0.5
	var body bytes.Buffer
	contentType := "text/tab-separated-values"
	if asJSON {
		contentType = "application/json"
		type jf struct {
			Subject    string  `json:"subject"`
			Predicate  string  `json:"predicate"`
			Object     string  `json:"object"`
			Confidence float64 `json:"confidence"`
			URL        string  `json:"url"`
		}
		arr := make([]jf, len(facts))
		for i, f := range facts {
			arr[i] = jf{f.Subject, f.Predicate, f.Object, f.Confidence, f.URL}
		}
		json.NewEncoder(&body).Encode(arr)
	} else {
		for _, f := range facts {
			fmt.Fprintf(&body, "%s\t%s\t%s\t%g\t%s\n", f.Subject, f.Predicate, f.Object, f.Confidence, f.URL)
		}
	}
	var out struct {
		Added int `json:"added"`
	}
	code, err := w.h.doJSON(w.h.hc, "POST", "/api/sessions/"+sn.name+"/facts", &body, contentType, &out)
	w.h.record(w.id, seq, "facts", sn.name, code, fmt.Sprintf("n=%d", len(facts)))
	switch {
	case err != nil:
		// The response was lost: the server may or may not have applied
		// the batch, so this session's oracles are done.
		sn.tainted = true
	case code != http.StatusOK:
		if !w.restartHit(seq, sn, "facts") {
			w.h.violate(w.id, seq, "facts-ingest", fmt.Sprintf("HTTP %d", code))
		}
	case out.Added != len(facts):
		w.h.violate(w.id, seq, "facts-count", fmt.Sprintf("added %d, sent %d", out.Added, len(facts)))
	default:
		sn.rows += len(facts)
		sn.mirror.AddFacts(facts...)
		sn.log = append(sn.log, mutation{facts: facts})
	}
}

// loadKB uploads a KB TSV whose request body runs through the
// injector's fault Reader — the KB-load latency/error seam. KB loads
// are not atomic, so any failed upload leaves an unknown prefix loaded
// server-side and taints the session for oracle purposes.
func (w *worker) loadKB(seq int, sn *wsession) {
	n := 3 + w.rng.Intn(10)
	var body bytes.Buffer
	start := w.rng.Intn(len(w.h.cfg.pool))
	for i := 0; i < n; i++ {
		r := w.h.cfg.pool[(start+i)%len(w.h.cfg.pool)]
		fmt.Fprintf(&body, "%s\t%s\t%s\n", r.subject, r.predicate, r.object)
	}
	raw := body.Bytes()
	var out struct {
		Added int `json:"added"`
	}
	code, err := w.h.doJSON(w.h.hc, "POST", "/api/sessions/"+sn.name+"/kb",
		w.h.inj.Reader(bytes.NewReader(raw)), "text/tab-separated-values", &out)
	w.h.record(w.id, seq, "kb", sn.name, code, fmt.Sprintf("n=%d", n))
	if err != nil || code != http.StatusOK {
		sn.tainted = true
		return
	}
	if _, err := sn.mirror.KB().LoadTSV(bytes.NewReader(raw)); err != nil {
		w.h.violate(w.id, seq, "mirror-kb", fmt.Sprintf("mirror rejected a body the server took: %v", err))
	}
	sn.log = append(sn.log, mutation{kb: raw})
}

type jobStatus struct {
	Job    string `json:"job"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Slices int    `json:"slices"`
}

type normProp struct {
	Predicate string `json:"predicate"`
	Value     string `json:"value"`
}

type normSlice struct {
	Source      string     `json:"source"`
	Description string     `json:"description"`
	Properties  []normProp `json:"properties"`
	Entities    []string   `json:"entities"`
	Facts       int        `json:"facts"`
	NewFacts    int        `json:"new_facts"`
	Profit      float64    `json:"profit"`
}

type resultPayload struct {
	Job         string      `json:"job"`
	Status      string      `json:"status"`
	Cached      bool        `json:"cached"`
	Rounds      int         `json:"rounds"`
	Fingerprint string      `json:"fingerprint"`
	Slices      []normSlice `json:"slices"`
}

// checkResult applies the cache-coherence invariant to a fetched
// complete result: a given (session, fingerprint) pair must always map
// to the same slices, and a cache hit must reproduce the digest of the
// completed run that populated it.
func (w *worker) checkResult(seq int, sn *wsession, res *resultPayload) {
	d := digest(res.Slices)
	if prev, ok := sn.digests[res.Fingerprint]; ok {
		if prev != d {
			w.h.violate(w.id, seq, "cache-coherence",
				fmt.Sprintf("session %s fingerprint %s served two different results (cached=%v)",
					sn.name, res.Fingerprint, res.Cached))
		}
	} else {
		sn.digests[res.Fingerprint] = d
	}
}

// pollJob waits a job out, enforcing the status invariants along the
// way: cached implies done, partial implies not cached.
func (w *worker) pollJob(seq int, sn *wsession, j *jobStatus) bool {
	deadline := time.Now().Add(60 * time.Second)
	for j.Status == serve.StateRunning {
		if time.Now().After(deadline) {
			w.h.violate(w.id, seq, "job-stuck", fmt.Sprintf("job %s still running after 60s", j.Job))
			return false
		}
		time.Sleep(time.Duration(1+w.rng.Intn(5)) * time.Millisecond)
		if code, err := w.h.doJSON(w.h.hc, "GET", "/api/jobs/"+j.Job, nil, "", j); err != nil || code != http.StatusOK {
			if !w.restartHit(seq, sn, "job-poll") {
				w.h.violate(w.id, seq, "job-poll", fmt.Sprintf("job %s: HTTP %d (%v)", j.Job, code, err))
			}
			return false
		}
	}
	if j.Cached && j.Status != serve.StateDone {
		w.h.violate(w.id, seq, "cached-not-done", fmt.Sprintf("job %s cached with status %s", j.Job, j.Status))
	}
	if j.Status == serve.StatePartial && j.Cached {
		w.h.violate(w.id, seq, "partial-cached", fmt.Sprintf("job %s partial yet cached", j.Job))
	}
	return true
}

func (w *worker) fetchResult(seq int, sn *wsession, job string) *resultPayload {
	var res resultPayload
	code, err := w.h.doJSON(w.h.hc, "GET", "/api/jobs/"+job+"/result", nil, "", &res)
	if err != nil || code != http.StatusOK {
		if !w.restartHit(seq, sn, "result-fetch") {
			w.h.violate(w.id, seq, "result-fetch", fmt.Sprintf("job %s: HTTP %d (%v)", job, code, err))
		}
		return nil
	}
	return &res
}

func (w *worker) discoverAsync(seq int, sn *wsession) {
	var j jobStatus
	code, err := w.h.doJSON(w.h.hc, "POST", "/api/sessions/"+sn.name+"/discover", nil, "", &j)
	w.h.record(w.id, seq, "discover", sn.name, code, j.Job)
	switch {
	case err != nil:
		return
	case code == http.StatusTooManyRequests:
		return // shed; reconciled against serve/shed at the end
	case code != http.StatusAccepted && code != http.StatusOK:
		if !w.restartHit(seq, sn, "discover") {
			w.h.violate(w.id, seq, "discover", fmt.Sprintf("HTTP %d", code))
		}
		return
	}
	if !w.pollJob(seq, sn, &j) {
		return
	}
	if j.Status != serve.StateDone {
		return
	}
	res := w.fetchResult(seq, sn, j.Job)
	if res == nil {
		return
	}
	w.checkResult(seq, sn, res)
	if len(res.Slices) > 0 && w.rng.Float64() < 0.5 {
		w.absorb(seq, sn, res)
	}
}

func (w *worker) absorb(seq int, sn *wsession, res *resultPayload) {
	k := 1 + w.rng.Intn(len(res.Slices))
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	body, _ := json.Marshal(map[string]any{"job": res.Job, "slices": idx})
	var out struct {
		Absorbed int `json:"absorbed"`
	}
	code, err := w.h.doJSON(w.h.hc, "POST", "/api/sessions/"+sn.name+"/absorb",
		bytes.NewReader(body), "application/json", &out)
	w.h.record(w.id, seq, "absorb", sn.name, code, fmt.Sprintf("job=%s k=%d", res.Job, k))
	switch {
	case err != nil:
		sn.tainted = true // absorb applies per-slice; outcome unknown
	case code != http.StatusOK:
		if !w.restartHit(seq, sn, "absorb") {
			w.h.violate(w.id, seq, "absorb", fmt.Sprintf("HTTP %d", code))
		}
	default:
		for _, i := range idx {
			sl := midas.Slice{Source: res.Slices[i].Source, Entities: res.Slices[i].Entities}
			sn.mirror.Absorb(sl)
			sn.log = append(sn.log, mutation{slice: sl})
		}
	}
}

// discoverSync exercises the wait=true path, including the
// deterministic-partial probe: a 1ns budget must yield a partial
// result (or an instant cache hit), never a fabricated completion.
func (w *worker) discoverSync(seq int, sn *wsession) {
	timeouts := []string{"1ns", "50ms", "2s", ""}
	timeout := timeouts[w.rng.Intn(len(timeouts))]
	path := "/api/sessions/" + sn.name + "/discover?wait=true"
	if timeout != "" {
		path += "&timeout=" + timeout
	}
	var j jobStatus
	code, err := w.h.doJSON(w.h.hc, "POST", path, nil, "", &j)
	w.h.record(w.id, seq, "discover-sync", sn.name, code, timeout)
	switch {
	case err != nil:
		return
	case code == http.StatusTooManyRequests:
		return
	case code != http.StatusOK:
		if !w.restartHit(seq, sn, "discover-sync") {
			w.h.violate(w.id, seq, "discover-sync", fmt.Sprintf("HTTP %d", code))
		}
		return
	}
	if j.Status == serve.StateRunning {
		w.h.violate(w.id, seq, "sync-running", fmt.Sprintf("job %s answered wait=true still running", j.Job))
		return
	}
	if j.Cached && j.Status != serve.StateDone {
		w.h.violate(w.id, seq, "cached-not-done", fmt.Sprintf("job %s cached with status %s", j.Job, j.Status))
	}
	if j.Status == serve.StateDone {
		res := w.fetchResult(seq, sn, j.Job)
		if res == nil {
			return
		}
		w.checkResult(seq, sn, res)
		// The deterministic-partial invariant: a 1ns budget is expired
		// before the pipeline's first context check, so an uncached
		// "done" must mean the run had no rounds to do (empty corpus) —
		// any actual pipeline work completing under that budget means a
		// deadline was ignored.
		if timeout == "1ns" && !j.Cached && (res.Rounds > 0 || len(res.Slices) > 0) {
			w.h.violate(w.id, seq, "deadline-partial",
				fmt.Sprintf("job %s completed %d rounds, %d slices inside a 1ns budget",
					j.Job, res.Rounds, len(res.Slices)))
		}
	}
}

// disconnect abandons a request client-side mid-flight; the server
// must absorb it (counted, never wedged — the metrics bounds and drain
// checks pick up the fallout).
func (w *worker) disconnect(seq int, sn *wsession) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+w.rng.Intn(5))*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", w.h.base()+"/api/sessions/"+sn.name+"/discover?wait=true", nil)
	resp, err := w.h.hc.Do(req)
	if err != nil {
		w.h.disconns.Add(1)
		w.h.record(w.id, seq, "disconnect", sn.name, 0, "abandoned")
		return
	}
	resp.Body.Close()
	w.h.responses.Add(1)
	if resp.StatusCode == http.StatusTooManyRequests {
		w.h.shed429.Add(1)
	}
	w.h.record(w.id, seq, "disconnect", sn.name, resp.StatusCode, "answered first")
}

// syncDiscoverComplete runs a sync discovery to a complete result,
// retrying through shed responses; nil when the session can't produce
// one right now.
func (w *worker) syncDiscoverComplete(seq int, sn *wsession) *resultPayload {
	for attempt := 0; attempt < 5; attempt++ {
		var j jobStatus
		code, err := w.h.doJSON(w.h.hc, "POST", "/api/sessions/"+sn.name+"/discover?wait=true", nil, "", &j)
		if err != nil {
			return nil
		}
		if code == http.StatusTooManyRequests {
			time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
			continue
		}
		if code != http.StatusOK {
			if !w.restartHit(seq, sn, "discover-sync") {
				w.h.violate(w.id, seq, "discover-sync", fmt.Sprintf("HTTP %d", code))
			}
			return nil
		}
		if j.Status != serve.StateDone {
			continue // an injected cancel made it partial; try again
		}
		return w.fetchResult(seq, sn, j.Job)
	}
	return nil
}

// mirrorCheck is the incremental-vs-oracle invariant: the server's
// completed result for a session must match what the client-side
// mirror session computes from the same confirmed mutations — same
// fingerprint, same slices, bit for bit.
func (w *worker) mirrorCheck(seq int, sn *wsession) {
	if sn.tainted {
		w.reads(seq, sn)
		return
	}
	res := w.syncDiscoverComplete(seq, sn)
	w.h.record(w.id, seq, "mirror-check", sn.name, 0, "")
	if res == nil {
		return
	}
	w.checkResult(seq, sn, res)
	w.compareOracle(seq, sn, res, sn.mirror, "mirror")
}

func (w *worker) compareOracle(seq int, sn *wsession, res *resultPayload, oracle *midas.Session, kind string) {
	if fp := fmt.Sprintf("%016x", oracle.Fingerprint()); fp != res.Fingerprint {
		w.h.violate(w.id, seq, kind+"-fingerprint",
			fmt.Sprintf("session %s: server result at %s, %s at %s", sn.name, res.Fingerprint, kind, fp))
		return
	}
	want := normalize(oracle.Discover().Slices)
	if !sameSlices(res.Slices, want) {
		w.h.violate(w.id, seq, kind+"-result",
			fmt.Sprintf("session %s: server %d slices (digest %s), %s %d slices (digest %s)",
				sn.name, len(res.Slices), digest(res.Slices), kind, len(want), digest(want)))
	}
}

func normalize(slices []midas.Slice) []normSlice {
	out := make([]normSlice, len(slices))
	for i, s := range slices {
		props := make([]normProp, len(s.Properties))
		for k, p := range s.Properties {
			props[k] = normProp{Predicate: p.Predicate, Value: p.Value}
		}
		ents := s.Entities
		if ents == nil {
			ents = []string{}
		}
		out[i] = normSlice{
			Source: s.Source, Description: s.Description, Properties: props,
			Entities: ents, Facts: s.Facts, NewFacts: s.NewFacts, Profit: s.Profit,
		}
	}
	return out
}

func (w *worker) reads(seq int, sn *wsession) {
	paths := []string{
		"/api/sessions/" + sn.name + "/progress",
		"/api/sessions/" + sn.name,
		"/api/sessions",
		"/api/jobs",
		"/readyz",
	}
	path := paths[w.rng.Intn(len(paths))]
	code, err := w.h.doJSON(w.h.hc, "GET", path, nil, "", nil)
	w.h.record(w.id, seq, "read", sn.name, code, path)
	if err == nil && code != http.StatusOK && !w.restartHit(seq, sn, "read") {
		w.h.violate(w.id, seq, "read", fmt.Sprintf("GET %s: HTTP %d", path, code))
	}
}

// finalChecks closes each untainted session's loop: repeated rounds of
// complete discovery compared against BOTH oracles — the incremental
// mirror and a from-scratch session rebuilt from the mutation log —
// nudging the fingerprint between rounds so every round is a fresh
// pipeline run, not a cache hit.
func (w *worker) finalChecks() {
	for _, sn := range w.sessions {
		if sn.tainted {
			continue
		}
		for round := 0; round < 3; round++ {
			w.opGen = w.h.gen.Load()
			res := w.syncDiscoverComplete(-1, sn)
			if res == nil {
				break
			}
			w.checkResult(-1, sn, res)
			w.compareOracle(-1, sn, res, sn.mirror, "mirror")
			w.compareOracle(-1, sn, res, w.replayFresh(sn), "oracle")
			if round < 2 {
				w.nudge(sn)
			}
		}
	}
}

// replayFresh rebuilds the session from zero out of the mutation log —
// the from-scratch oracle the incremental server path must match.
func (w *worker) replayFresh(sn *wsession) *midas.Session {
	fresh := midas.NewSession(nil, nil)
	for _, m := range sn.log {
		switch {
		case m.facts != nil:
			fresh.AddFacts(m.facts...)
		case m.kb != nil:
			fresh.KB().LoadTSV(bytes.NewReader(m.kb))
		default:
			fresh.Absorb(m.slice)
		}
	}
	return fresh
}

// nudge moves the session's fingerprint with one confirmed fact.
func (w *worker) nudge(sn *wsession) {
	facts := w.drawFacts(1)
	facts[0].Subject = fmt.Sprintf("%s nudge %d", facts[0].Subject, w.rng.Int63())
	b, _ := json.Marshal([]map[string]any{{
		"subject": facts[0].Subject, "predicate": facts[0].Predicate,
		"object": facts[0].Object, "confidence": facts[0].Confidence, "url": facts[0].URL,
	}})
	code, err := w.h.doJSON(w.h.hc, "POST", "/api/sessions/"+sn.name+"/facts",
		bytes.NewReader(b), "application/json", nil)
	if err != nil {
		sn.tainted = true
		return
	}
	if code == http.StatusOK {
		sn.mirror.AddFacts(facts...)
		sn.log = append(sn.log, mutation{facts: facts})
	}
}
