package main

import (
	"encoding/json"
	"testing"
)

func testConfig(breakIt bool) config {
	return config{ops: 80, clients: 4, maxFacts: 200, breakIt: breakIt, pool: syntheticPool()}
}

// TestSoakCleanRun: without injected breaks, a soak seed completes with
// zero invariant violations — faults fire, the server absorbs them.
func TestSoakCleanRun(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		r := runSeed(testConfig(false), seed)
		for _, v := range r.Violations {
			t.Errorf("seed %d: [%s] w%d#%d: %s", seed, v.Kind, v.Worker, v.Seq, v.Detail)
		}
		if len(r.Ops) == 0 {
			t.Errorf("seed %d: no operations recorded", seed)
		}
	}
}

// TestSoakRestartRun: with -restart semantics, the server is backed by
// a durable store, hard-killed mid-workload, and recovered — and the
// workload's oracles hold across the boundary: zero violations, every
// acknowledged mutation intact in the new generation.
func TestSoakRestartRun(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		cfg := testConfig(false)
		cfg.restart = true
		r := runSeed(cfg, seed)
		for _, v := range r.Violations {
			t.Errorf("seed %d: [%s] w%d#%d: %s", seed, v.Kind, v.Worker, v.Seq, v.Detail)
		}
		if r.Restarts != 1 {
			t.Errorf("seed %d: %d restarts, want 1", seed, r.Restarts)
		}
	}
}

// TestSoakBreakCaught: the deliberately injected invariant break (a
// corrupted discovery result) is detected by the oracles, and the
// failing seed replays to a failure again — the property that makes a
// soak artifact actionable.
func TestSoakBreakCaught(t *testing.T) {
	var failing int64
	for seed := int64(1); seed <= 3; seed++ {
		r := runSeed(testConfig(true), seed)
		if len(r.Violations) > 0 {
			failing = seed
			if r.FaultCounts["corrupt"] == 0 {
				t.Errorf("seed %d: violations without any injected corruption", seed)
			}
			break
		}
	}
	if failing == 0 {
		t.Fatal("injected result corruption was never caught across 3 seeds")
	}

	replay := runSeed(testConfig(true), failing)
	if len(replay.Violations) == 0 {
		t.Fatalf("seed %d failed once but replayed clean", failing)
	}

	// The report must serialize: it is the failure artifact.
	if _, err := json.Marshal(replay); err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
}

// TestSoakReportShape: a report carries everything a replay needs.
func TestSoakReportShape(t *testing.T) {
	r := runSeed(testConfig(false), 42)
	if r.Seed != 42 {
		t.Errorf("report seed = %d", r.Seed)
	}
	if r.Plan.ReadErrProb == 0 {
		t.Error("report carries no fault plan")
	}
	if r.Requests == 0 {
		t.Error("report counted no responses")
	}
}
