package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"midas"
	"midas/internal/faultinject"
	"midas/internal/obs"
	"midas/internal/serve"
	"midas/internal/testutil"
)

// config is one soak invocation's knobs, shared by every seed it runs.
type config struct {
	ops      int
	clients  int
	maxFacts int
	breakIt  bool
	verbose  bool
	pool     []poolRow
}

// report is the per-seed outcome — serialized verbatim as the failure
// artifact, so a violation ships with everything needed to replay it:
// the seed, the fault plan it drew, what was injected, the full op log,
// and the violations themselves.
type report struct {
	Seed        int64            `json:"seed"`
	Plan        faultinject.Plan `json:"plan"`
	FaultCounts map[string]int64 `json:"fault_counts"`
	Requests    int64            `json:"requests"`
	Disconnects int64            `json:"disconnects"`
	Shed        int64            `json:"shed"`
	Ops         []opRecord       `json:"ops"`
	Violations  []violation      `json:"violations"`
}

type opRecord struct {
	Worker  int    `json:"worker"`
	Seq     int    `json:"seq"`
	Op      string `json:"op"`
	Session string `json:"session,omitempty"`
	Code    int    `json:"code,omitempty"`
	Note    string `json:"note,omitempty"`
}

type violation struct {
	Worker int    `json:"worker"`
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// seedHarness runs one seed: an in-process serve.Server with every
// fault seam wired to one seeded Injector, hammered by cfg.clients
// deterministic workers, then checked against the end-of-run
// invariants (drain behavior, metrics consistency, goroutine leaks).
type seedHarness struct {
	cfg  config
	seed int64
	inj  *faultinject.Injector
	reg  *obs.Registry
	srv  *serve.Server
	ts   *httptest.Server
	hc   *http.Client

	responses atomic.Int64 // HTTP responses the clients observed
	disconns  atomic.Int64 // requests abandoned client-side
	shed429   atomic.Int64 // 429s the clients observed

	mu    sync.Mutex
	ops   []opRecord
	viols []violation
}

func runSeed(cfg config, seed int64) *report {
	if cfg.clients <= 0 {
		cfg.clients = 4
	}
	before := testutil.Goroutines()
	inj := faultinject.New(seed, faultinject.DefaultPlan())
	reg := obs.New()
	maxInFlight := cfg.clients/2 + 1 // tight enough that shedding happens
	opts := serve.Options{
		Registry:       reg,
		MaxInFlight:    maxInFlight,
		RequestTimeout: 30 * time.Second,
		IDs:            serve.NewIDSource(seed),
		Now:            inj.Clock(),
		NewSession: func(o *midas.Options) *midas.Session {
			if o == nil {
				o = &midas.Options{}
			}
			o.Detect = inj.Detector()
			return midas.NewSession(nil, o)
		},
		WrapDiscover: func(next serve.Discover) serve.Discover {
			d := inj.Discover(faultinject.DiscoverFunc(next))
			if cfg.breakIt {
				d = inj.CorruptResults(d)
			}
			return serve.Discover(d)
		},
	}
	srv := serve.New(opts)
	srv.SetReady(true)
	ts := httptest.NewServer(srv.Handler())
	h := &seedHarness{
		cfg: cfg, seed: seed, inj: inj, reg: reg, srv: srv, ts: ts,
		hc: &http.Client{Timeout: 60 * time.Second},
	}

	// A sentinel session no worker touches: never discovered before the
	// drain, so its result cache is empty and checkDrain's probe must
	// reach the drain gate rather than a cache hit or a 404.
	if code, err := h.doJSON(h.hc, "POST", "/api/sessions",
		strings.NewReader(`{"name":"drain-probe"}`), "application/json", nil); err != nil || code != http.StatusCreated {
		h.violate(-1, -1, "setup", fmt.Sprintf("creating drain-probe session: HTTP %d (%v)", code, err))
	}

	perWorker := cfg.ops / cfg.clients
	if perWorker <= 0 {
		perWorker = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWorker(h, id)
			for seq := 0; seq < perWorker; seq++ {
				w.step(seq)
			}
			w.finalChecks()
		}(i)
	}
	wg.Wait()

	h.checkDrain()
	h.checkMetrics()

	ts.Close()
	srv.Close()
	h.hc.CloseIdleConnections()
	if leaks := testutil.Leaked(before, 5*time.Second); len(leaks) > 0 {
		h.violate(-1, -1, "goroutine-leak", fmt.Sprintf("%v", leaks))
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	return &report{
		Seed:        seed,
		Plan:        inj.Plan(),
		FaultCounts: inj.Counts(),
		Requests:    h.responses.Load(),
		Disconnects: h.disconns.Load(),
		Shed:        h.shed429.Load(),
		Ops:         h.ops,
		Violations:  h.viols,
	}
}

func (h *seedHarness) record(worker, seq int, op, session string, code int, note string) {
	if h.cfg.verbose {
		fmt.Printf("seed %d w%d #%d %-14s %-12s %d %s\n", h.seed, worker, seq, op, session, code, note)
	}
	h.mu.Lock()
	h.ops = append(h.ops, opRecord{Worker: worker, Seq: seq, Op: op, Session: session, Code: code, Note: note})
	h.mu.Unlock()
}

func (h *seedHarness) violate(worker, seq int, kind, detail string) {
	h.mu.Lock()
	h.viols = append(h.viols, violation{Worker: worker, Seq: seq, Kind: kind, Detail: detail})
	h.mu.Unlock()
}

// doJSON issues one request against the harness server, decoding the
// JSON response into out when non-nil. A transport-level failure
// returns code 0 with the error; response bodies that fail to decode
// are reported as a harness violation (the API must always answer
// well-formed JSON).
func (h *seedHarness) doJSON(client *http.Client, method, path string, body io.Reader, contentType string, out any) (int, error) {
	req, err := http.NewRequest(method, h.ts.URL+path, body)
	if err != nil {
		return 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := client.Do(req)
	if err != nil {
		h.disconns.Add(1)
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		h.disconns.Add(1)
		return 0, err
	}
	h.responses.Add(1)
	if resp.StatusCode == http.StatusTooManyRequests {
		h.shed429.Add(1)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			h.violate(-1, -1, "malformed-response", fmt.Sprintf("%s %s: %v in %.200q", method, path, err, raw))
		}
	}
	return resp.StatusCode, nil
}

// checkDrain verifies shutdown semantics: Drain leaves no job running,
// and a draining server refuses discovery with 503 while /healthz stays
// alive.
func (h *seedHarness) checkDrain() {
	ctx, cancel := contextWithTimeout(10 * time.Second)
	defer cancel()
	h.srv.Drain(ctx)

	var errResp struct {
		Error string `json:"error"`
	}
	code, err := h.doJSON(h.hc, "POST", "/api/sessions/drain-probe/discover", nil, "", &errResp)
	if err == nil && code != http.StatusServiceUnavailable {
		h.violate(-1, -1, "drain-503", fmt.Sprintf("discover during drain: HTTP %d, want 503", code))
	}
	if code, err := h.doJSON(h.hc, "GET", "/healthz", nil, "", nil); err != nil || code != http.StatusOK {
		h.violate(-1, -1, "drain-healthz", fmt.Sprintf("healthz during drain: HTTP %d (%v)", code, err))
	}

	var jobs struct {
		Jobs []struct {
			Job    string `json:"job"`
			Status string `json:"status"`
			Cached bool   `json:"cached"`
		} `json:"jobs"`
	}
	if code, err := h.doJSON(h.hc, "GET", "/api/jobs", nil, "", &jobs); err != nil || code != http.StatusOK {
		h.violate(-1, -1, "drain-jobs", fmt.Sprintf("job list after drain: HTTP %d (%v)", code, err))
		return
	}
	ran, cached := int64(0), int64(0)
	for _, j := range jobs.Jobs {
		if j.Status == serve.StateRunning {
			h.violate(-1, -1, "drain-left-running", fmt.Sprintf("job %s still running after Drain", j.Job))
		}
		if j.Cached {
			cached++
		} else {
			ran++
		}
	}
	// The authoritative job list must reconcile exactly with the
	// serve/* counters: every non-cached job was executed and finished,
	// every cached one hit the result cache.
	h.reconcile("jobs/finished", ran, func() int64 { return h.reg.Counter("serve/jobs/finished").Value() })
	h.reconcile("cache/hit", cached, func() int64 { return h.reg.Counter("serve/cache/hit").Value() })
}

// reconcile retries an exact counter comparison briefly: a handler that
// already answered its client may still be a few instructions away from
// bumping its counters.
func (h *seedHarness) reconcile(name string, want int64, got func() int64) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got() == want || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g := got(); g != want {
		h.violate(-1, -1, "metrics-"+name, fmt.Sprintf("serve/%s = %d, observed %d", name, g, want))
	}
}

// checkMetrics bounds the request counters against what the clients
// observed: the server counts every handler completion, so its total
// must cover every client-observed response and exceed it by at most
// the number of abandoned requests.
func (h *seedHarness) checkMetrics() {
	observed := h.responses.Load()
	dropped := h.disconns.Load()
	total := func() int64 {
		var n int64
		for _, s := range h.reg.Snapshot().CounterVecs["serve/requests"].Series {
			n += s.Value
		}
		return n
	}
	deadline := time.Now().Add(2 * time.Second)
	for total() < observed && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := total(); got < observed || got > observed+dropped {
		h.violate(-1, -1, "metrics-requests",
			fmt.Sprintf("serve/requests total %d outside [%d, %d] (observed, +%d disconnects)",
				got, observed, observed+dropped, dropped))
	}
	shed := h.reg.Counter("serve/shed").Value()
	if seen := h.shed429.Load(); shed < seen || shed > seen+dropped {
		h.violate(-1, -1, "metrics-shed",
			fmt.Sprintf("serve/shed = %d outside [%d, %d]", shed, seen, seen+dropped))
	}
	if running := h.reg.Gauge("serve/jobs/running").Value(); running != 0 {
		h.violate(-1, -1, "metrics-running", fmt.Sprintf("serve/jobs/running = %v after drain", running))
	}
}

// digest condenses a result's slices into a comparable fingerprint.
func digest(slices []normSlice) string {
	b, _ := json.Marshal(slices)
	sum := fnv.New64a()
	sum.Write(b)
	return fmt.Sprintf("%016x", sum.Sum64())
}

func sameSlices(a, b []normSlice) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return bytes.Equal(ab, bb)
}
